package authorindex

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
)

func openT(t *testing.T, dir string) *Index {
	t.Helper()
	ix, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return ix
}

func sampleWork(title, cite string, authors ...string) Work {
	w := Work{Title: title}
	var err error
	if w.Citation, err = ParseCitation(cite); err != nil {
		panic(err)
	}
	for _, s := range authors {
		a, err := ParseAuthor(s)
		if err != nil {
			panic(err)
		}
		w.Authors = append(w.Authors, a)
	}
	return w
}

func TestEndToEndLifecycle(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)

	id1, err := ix.Add(sampleWork("Unlocking the Fire", "94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S."))
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	id2, err := ix.Add(sampleWork("The Silent Revolution in Nuisance Law", "92:235 (1989)", "Lewin, Jeff L."))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.AddSeeAlso("Lewin, J.", "Lewin, Jeff L."); err != nil {
		t.Fatalf("AddSeeAlso: %v", err)
	}

	entry, ok := ix.Author("Lewin, Jeff L.")
	if !ok || len(entry.Works) != 2 {
		t.Fatalf("Author lookup = %+v,%v", entry, ok)
	}
	if entry.Works[0].ID != id2 {
		t.Errorf("citation order wrong: first work is %d", entry.Works[0].ID)
	}
	if got := ix.Search("nuisance", 0); len(got) != 1 || got[0].ID != id2 {
		t.Errorf("Search = %v", got)
	}

	// Crash-free restart: everything must come back, including see-also.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2 := openT(t, dir)
	defer ix2.Close()
	if ix2.Len() != 2 {
		t.Fatalf("recovered %d works", ix2.Len())
	}
	if got := ix2.Search("unlocking", 0); len(got) != 1 || got[0].ID != id1 {
		t.Errorf("post-recovery search = %v", got)
	}
	ref, ok := ix2.Author("Lewin, J.")
	if !ok || len(ref.SeeAlso) != 1 {
		t.Errorf("post-recovery see-also = %+v,%v", ref, ok)
	}
	var buf bytes.Buffer
	if err := ix2.Render(&buf, RenderOptions{Format: Text}); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Lewin, Jeff L.", "Peng, Syd S.", "94:563 (1992)", "See also"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestDeleteAndStats(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	id, _ := ix.Add(sampleWork("Solo Work", "90:1 (1988)", "Only, Author"))
	st := ix.Stats()
	if st.Works != 1 || st.Authors != 1 || !st.InMemory {
		t.Errorf("stats = %+v", st)
	}
	if err := ix.Delete(id); err != nil {
		t.Fatal(err)
	}
	if err := ix.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v", err)
	}
	if st := ix.Stats(); st.Works != 0 || st.Authors != 0 {
		t.Errorf("stats after delete = %+v", st)
	}
	if _, ok := ix.Get(id); ok {
		t.Error("deleted work gettable")
	}
}

func TestAuthorsPrefixAndRanges(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	ix.Add(sampleWork("A", "70:10 (1967)", "Abrams, Dennis M."))
	ix.Add(sampleWork("B", "75:20 (1972)", "Abramovsky, Deborah"))
	ix.Add(sampleWork("C", "80:30 (1977)", "Cardi, Vincent P."))
	if got := ix.Authors("abr", 0); len(got) != 2 {
		t.Errorf("Authors(abr) = %d", len(got))
	}
	if got := ix.YearRange(1967, 1972, 0); len(got) != 2 {
		t.Errorf("YearRange = %d", len(got))
	}
	if got := ix.VolumeWorks(80, 0); len(got) != 1 || got[0].Title != "C" {
		t.Errorf("VolumeWorks = %v", got)
	}
	if got := ix.Sections(); len(got) != 2 {
		t.Errorf("Sections = %d", len(got))
	}
}

func TestImportTSVRoundTrip(t *testing.T) {
	src := openT(t, "")
	defer src.Close()
	for _, w := range GenerateCorpus(CorpusConfig{Seed: 41, Works: 150}) {
		if _, err := src.Add(*w); err != nil {
			t.Fatal(err)
		}
	}
	var tsv bytes.Buffer
	if err := src.Render(&tsv, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}

	dst := openT(t, "")
	defer dst.Close()
	res, err := dst.ImportTSV(bytes.NewReader(tsv.Bytes()), false)
	if err != nil {
		t.Fatalf("ImportTSV: %v", err)
	}
	if res.Skipped != 0 {
		t.Errorf("skipped %d", res.Skipped)
	}
	a, b := src.Stats(), dst.Stats()
	if a.Works != b.Works || a.Authors != b.Authors || a.Postings != b.Postings {
		t.Errorf("round trip stats: %+v vs %+v", a, b)
	}
	var second bytes.Buffer
	if err := dst.Render(&second, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tsv.Bytes(), second.Bytes()) {
		t.Error("TSV import→render is not a fixed point")
	}
}

func TestImportCSV(t *testing.T) {
	src := openT(t, "")
	defer src.Close()
	src.Add(sampleWork("Only Work", "90:1 (1988)", "Writer, Some"))
	var csvBuf bytes.Buffer
	if err := src.Render(&csvBuf, RenderOptions{Format: CSV}); err != nil {
		t.Fatal(err)
	}
	dst := openT(t, "")
	defer dst.Close()
	if _, err := dst.ImportCSV(bytes.NewReader(csvBuf.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != 1 {
		t.Errorf("imported %d works", dst.Len())
	}
}

func TestCompactKeepsEverything(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	for i := 0; i < 40; i++ {
		ix.Add(sampleWork(fmt.Sprintf("W%02d", i), fmt.Sprintf("90:%d (1988)", i+1), "Fam, G."))
	}
	if err := ix.Compact(); err != nil {
		t.Fatal(err)
	}
	st := ix.Stats()
	if st.SnapshotBytes == 0 || st.WALBytes != 0 {
		t.Errorf("post-compact stats = %+v", st)
	}
	ix.Close()
	ix2 := openT(t, dir)
	defer ix2.Close()
	if ix2.Len() != 40 {
		t.Errorf("recovered %d", ix2.Len())
	}
}

func TestConcurrentUse(t *testing.T) {
	ix := openT(t, t.TempDir())
	defer ix.Close()
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 100; i++ {
				switch r.Intn(4) {
				case 0:
					ix.Add(sampleWork(
						fmt.Sprintf("Work g%d i%d", g, i),
						fmt.Sprintf("90:%d (1988)", 1+r.Intn(900)),
						fmt.Sprintf("Family%d, G.", r.Intn(20))))
				case 1:
					ix.Search("work", 5)
				case 2:
					ix.Authors("fam", 3)
				case 3:
					ix.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCustomCollation(t *testing.T) {
	coll := DefaultCollation()
	coll.McAsMac = true
	ix, err := Open("", &Options{Collation: &coll})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	ix.Add(sampleWork("A", "90:1 (1988)", "McAteer, J. Davitt"))
	ix.Add(sampleWork("B", "90:2 (1988)", "MacLeod, John A."))
	ix.Add(sampleWork("C", "90:3 (1988)", "Maxwell, Robert E."))
	var order []string
	for _, e := range ix.Authors("", 0) {
		order = append(order, e.Author.Family)
	}
	want := []string{"McAteer", "MacLeod", "Maxwell"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("Mc-as-Mac order = %v, want %v", order, want)
		}
	}
}

func TestZeroOptionsOpen(t *testing.T) {
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if _, err := ix.Add(sampleWork("X", "90:1 (1988)", "F, G.")); err != nil {
		t.Fatal(err)
	}
	if ix.Stats().Collation != "word-by-word" {
		t.Errorf("default collation = %q", ix.Stats().Collation)
	}
}

func TestRemoveSeeAlso(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	ix.Add(sampleWork("Real", "90:1 (1988)", "Target, Ann"))
	if err := ix.AddSeeAlso("Source, Bea", "Target, Ann"); err != nil {
		t.Fatal(err)
	}
	if err := ix.RemoveSeeAlso("Source, Bea", "Target, Ann"); err != nil {
		t.Fatalf("RemoveSeeAlso: %v", err)
	}
	if _, ok := ix.Author("Source, Bea"); ok {
		t.Error("empty cross-ref heading survives removal")
	}
	if err := ix.RemoveSeeAlso("Source, Bea", "Target, Ann"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double remove = %v", err)
	}
	// Removal is durable.
	ix.Close()
	ix2 := openT(t, dir)
	defer ix2.Close()
	if st := ix2.Stats(); st.CrossRefs != 0 {
		t.Errorf("cross-refs after reopen = %d", st.CrossRefs)
	}
}

func TestRenderTitleIndexFacade(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	ix.Add(sampleWork("The Zebra Question", "90:1 (1988)", "Writer, A."))
	ix.Add(sampleWork("An Aardvark Answer", "90:2 (1988)", "Writer, B."))
	var buf bytes.Buffer
	if err := ix.RenderTitleIndex(&buf, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 || !strings.HasPrefix(lines[0], "An Aardvark") || !strings.HasPrefix(lines[1], "The Zebra") {
		t.Errorf("title order = %v", lines)
	}
	if err := ix.RenderTitleIndex(&buf, RenderOptions{Format: CSV}); err == nil {
		t.Error("title index CSV accepted")
	}
}

func TestDuplicateSuggestions(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	ix.Add(sampleWork("Student Note", "81:675 (1979)", "Barrett, Joshua I.*"))
	ix.Add(sampleWork("Later Article", "94:693 (1992)", "Barrett, Joshua I."))
	ix.Add(sampleWork("Accented", "90:1 (1988)", "Müller, Jörg"))
	ix.Add(sampleWork("Plain", "91:1 (1989)", "Muller, Jorg"))
	ix.Add(sampleWork("Unrelated", "92:1 (1990)", "Zimmer, Q."))
	got := ix.DuplicateSuggestions()
	if len(got) != 2 {
		t.Fatalf("suggestions = %+v", got)
	}
	if got[0].Reason != SpellingVariant || got[1].Reason != StudentVariant {
		t.Errorf("reasons = %v, %v", got[0].Reason, got[1].Reason)
	}
}

func TestVerify(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	for _, w := range GenerateCorpus(CorpusConfig{Seed: 61, Works: 200}) {
		if _, err := ix.Add(*w); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("fresh index fails Verify: %v", err)
	}
	// Mutations keep it consistent.
	ix.Delete(5)
	ix.Add(sampleWork("Replacement", "99:1 (1996)", "New, Author"))
	ix.Compact()
	if err := ix.Verify(); err != nil {
		t.Fatalf("after churn: %v", err)
	}
	// And across recovery.
	ix.Close()
	ix2 := openT(t, dir)
	defer ix2.Close()
	if err := ix2.Verify(); err != nil {
		t.Fatalf("after recovery: %v", err)
	}
}

func TestAuthorsPageCursor(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	for _, w := range GenerateCorpus(CorpusConfig{Seed: 51, Works: 300}) {
		if _, err := ix.Add(*w); err != nil {
			t.Fatal(err)
		}
	}
	// Walk the entire index in pages of 7; the union must equal a full
	// prefix-scan, in the same order, with no duplicates.
	var paged []string
	cursor := ""
	for {
		page := ix.AuthorsPage(cursor, 7)
		if len(page) == 0 {
			break
		}
		for _, e := range page {
			paged = append(paged, FormatAuthor(e.Author))
		}
		cursor = FormatAuthor(page[len(page)-1].Author)
		if len(page) < 7 {
			break
		}
	}
	var full []string
	for _, e := range ix.Authors("", 0) {
		full = append(full, FormatAuthor(e.Author))
	}
	if len(paged) != len(full) {
		t.Fatalf("paged %d headings, full scan %d", len(paged), len(full))
	}
	for i := range full {
		if paged[i] != full[i] {
			t.Fatalf("page order diverges at %d: %q vs %q", i, paged[i], full[i])
		}
	}
	// A bogus cursor yields nothing rather than an error.
	if got := ix.AuthorsPage("***", 5); got != nil {
		t.Errorf("bogus cursor returned %d entries", len(got))
	}
}

func TestSubjectsFacade(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	w := sampleWork("Methane Rights", "94:563 (1992)", "Lewin, Jeff L.")
	w.Subjects = []string{"Mining Law", "Property"}
	if _, err := ix.Add(w); err != nil {
		t.Fatal(err)
	}
	w2 := sampleWork("Jury Reform", "87:219 (1984)", "DiSalvo, Charles R.")
	w2.Subjects = []string{"Civil Procedure"}
	ix.Add(w2)

	subs := ix.Subjects()
	if len(subs) != 3 {
		t.Fatalf("Subjects = %+v", subs)
	}
	if got := ix.BySubject("property", 0); len(got) != 1 || got[0].Title != "Methane Rights" {
		t.Errorf("BySubject = %v", got)
	}
	var buf bytes.Buffer
	if err := ix.RenderSubjectIndex(&buf, RenderOptions{Format: Text}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "MINING LAW") {
		t.Error("subject index render missing heading")
	}
	// Subjects survive persistence.
	ix.Close()
	ix2 := openT(t, dir)
	defer ix2.Close()
	if got := ix2.BySubject("Mining Law", 0); len(got) != 1 {
		t.Errorf("subjects lost across reopen: %v", got)
	}
	// And survive the TSV import/export cycle.
	var tsv bytes.Buffer
	if err := ix2.Render(&tsv, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	ix3 := openT(t, "")
	defer ix3.Close()
	if _, err := ix3.ImportTSV(bytes.NewReader(tsv.Bytes()), false); err != nil {
		t.Fatal(err)
	}
	if got := ix3.BySubject("Civil Procedure", 0); len(got) != 1 {
		t.Errorf("subjects lost through TSV round trip: %v", got)
	}
}

func TestInvalidInputsSurfaceErrors(t *testing.T) {
	ix := openT(t, "")
	defer ix.Close()
	if _, err := ix.Add(Work{Title: "no authors"}); err == nil {
		t.Error("invalid work accepted")
	}
	if err := ix.AddSeeAlso("", "Someone, Real"); err == nil {
		t.Error("empty see-also source accepted")
	}
	if err := ix.AddSeeAlso("Same, One", "Same, One"); err == nil {
		t.Error("self see-also accepted")
	}
	if _, err := ix.ImportTSV(strings.NewReader("bad line\n"), false); err == nil {
		t.Error("bad TSV accepted in strict mode")
	}
}
