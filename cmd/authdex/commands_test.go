package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout runs fn with os.Stdout redirected and returns what it
// printed.
func captureStdout(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		n, _ := r.Read(buf)
		done <- string(buf[:n])
	}()
	ferr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	r.Close()
	if ferr != nil {
		t.Fatalf("command failed: %v\noutput: %s", ferr, out)
	}
	return out
}

// TestCLIPipeline drives the full command surface: gen → build → add →
// lookup → prefix → search → years → volume → subjects → render →
// titles → xref → stats → verify → compact.
func TestCLIPipeline(t *testing.T) {
	work := t.TempDir()
	corpus := filepath.Join(work, "corpus.tsv")
	idx := filepath.Join(work, "idx")

	captureStdout(t, func() error {
		return cmdGen(context.Background(), []string{"-works", "60", "-seed", "9", "-out", corpus})
	})
	if fi, err := os.Stat(corpus); err != nil || fi.Size() == 0 {
		t.Fatalf("gen wrote nothing: %v", err)
	}

	out := captureStdout(t, func() error {
		return cmdBuild(context.Background(), []string{"-dir", idx, "-nosync", "-in", corpus})
	})
	if !strings.Contains(out, "imported 60 works") {
		t.Fatalf("build output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdAdd(context.Background(), []string{"-dir", idx, "-nosync",
			"-title", "Handmade Entry", "-cite", "99:1 (1996)",
			"-author", "Manual, Added A.", "-author", "Second, Author B."})
	})
	if !strings.Contains(out, "added work #61") {
		t.Fatalf("add output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdLookup(context.Background(), []string{"-dir", idx, "-nosync", "-author", "Manual, Added A."})
	})
	if !strings.Contains(out, "Handmade Entry") {
		t.Fatalf("lookup output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdPrefix(context.Background(), []string{"-dir", idx, "-nosync", "-p", "man", "-n", "5"})
	})
	if !strings.Contains(out, "Manual, Added A.") {
		t.Fatalf("prefix output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdSearch(context.Background(), []string{"-dir", idx, "-nosync", "-q", "handmade"})
	})
	if !strings.Contains(out, "Handmade Entry") {
		t.Fatalf("search output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdYears(context.Background(), []string{"-dir", idx, "-nosync", "-from", "1996", "-to", "1996"})
	})
	if !strings.Contains(out, "99:1 (1996)") {
		t.Fatalf("years output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdVolume(context.Background(), []string{"-dir", idx, "-nosync", "-v", "99"})
	})
	if !strings.Contains(out, "Handmade Entry") {
		t.Fatalf("volume output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdSubjects(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if !strings.Contains(out, "works") {
		t.Fatalf("subjects output: %q", out)
	}

	rendered := filepath.Join(work, "index.txt")
	captureStdout(t, func() error {
		return cmdRender(context.Background(), []string{"-dir", idx, "-nosync", "-out", rendered,
			"-publication", "TEST REV.", "-volnum", "99", "-year", "1996"})
	})
	data, err := os.ReadFile(rendered)
	if err != nil || !strings.Contains(string(data), "AUTHOR INDEX") {
		t.Fatalf("render file: %v", err)
	}

	out = captureStdout(t, func() error {
		return cmdTitles(context.Background(), []string{"-dir", idx, "-nosync", "-format", "tsv"})
	})
	if !strings.Contains(out, "Handmade Entry\t") {
		t.Fatalf("titles output: %q", out)
	}

	captureStdout(t, func() error {
		return cmdXref(context.Background(), []string{"-dir", idx, "-nosync",
			"-from", "Olde, Name", "-to", "Manual, Added A."})
	})

	out = captureStdout(t, func() error {
		return cmdStats(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if !strings.Contains(out, "works:          61") || !strings.Contains(out, "cross-refs:     1") {
		t.Fatalf("stats output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdMetrics(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if !strings.Contains(out, "works:            61") || !strings.Contains(out, "scheme:           harmonic") {
		t.Fatalf("metrics summary output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdMetrics(context.Background(), []string{"-dir", idx, "-nosync", "-author", "Manual, Added A."})
	})
	if !strings.Contains(out, "Manual, Added A.") || !strings.Contains(out, "h-index:") {
		t.Fatalf("metrics author output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdRank(context.Background(), []string{"-dir", idx, "-nosync", "-by", "weighted", "-limit", "5"})
	})
	if !strings.Contains(out, "rank") || len(strings.Split(strings.TrimSpace(out), "\n")) != 6 {
		t.Fatalf("rank output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdRank(context.Background(), []string{"-dir", idx, "-nosync", "-by", "h", "-scheme", "arithmetic", "-limit", "3"})
	})
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 4 {
		t.Fatalf("rank by h output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdVerify(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if !strings.Contains(out, "ok:") {
		t.Fatalf("verify output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdReport(context.Background(), []string{"-dir", idx, "-nosync", "-top", "3"})
	})
	if !strings.Contains(out, "headings per letter:") || !strings.Contains(out, "most prolific") {
		t.Fatalf("report output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdDupes(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if out == "" {
		t.Fatal("dupes printed nothing")
	}

	out = captureStdout(t, func() error {
		return cmdCompact(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	if !strings.Contains(out, "compacted") {
		t.Fatalf("compact output: %q", out)
	}

	// Subject render path.
	out = captureStdout(t, func() error {
		return cmdSubjects(context.Background(), []string{"-dir", idx, "-nosync", "-render", "-format", "markdown"})
	})
	if !strings.Contains(out, "# SUBJECT INDEX") {
		t.Fatalf("subject render output: %q", out)
	}

	// Render with the statistics appendix.
	out = captureStdout(t, func() error {
		return cmdRender(context.Background(), []string{"-dir", idx, "-nosync", "-format", "markdown", "-stats", "-stats-top", "3"})
	})
	if !strings.Contains(out, "## Statistics") {
		t.Fatalf("render -stats output: %q", out)
	}
}

func TestCLIErrors(t *testing.T) {
	if err := cmdBuild(context.Background(), []string{"-dir", t.TempDir()}); err == nil {
		t.Error("build without -in succeeded")
	}
	if err := cmdLookup(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-author", "Missing, Person"}); err == nil {
		t.Error("lookup of missing author succeeded")
	}
	if err := cmdLookup(context.Background(), []string{"-author", "X, Y."}); err == nil {
		t.Error("lookup without -dir succeeded")
	}
	if err := cmdAdd(context.Background(), []string{"-dir", t.TempDir(), "-title", "t"}); err == nil {
		t.Error("add without cite/author succeeded")
	}
	if err := cmdSearch(context.Background(), []string{"-dir", t.TempDir(), "-nosync"}); err == nil {
		t.Error("search without -q succeeded")
	}
	if err := cmdYears(context.Background(), []string{"-dir", t.TempDir(), "-nosync"}); err == nil {
		t.Error("years without range succeeded")
	}
	if err := cmdVolume(context.Background(), []string{"-dir", t.TempDir(), "-nosync"}); err == nil {
		t.Error("volume without -v succeeded")
	}
	if err := cmdXref(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-from", "A, B."}); err == nil {
		t.Error("xref without -to succeeded")
	}
	if err := cmdGen(context.Background(), []string{"-format", "json", "-works", "1"}); err == nil {
		t.Error("gen with json format succeeded")
	}
	if err := cmdRender(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-format", "nope"}); err == nil {
		t.Error("render with unknown format succeeded")
	}
	if err := cmdBuild(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-in", "/nonexistent/file.tsv"}); err == nil {
		t.Error("build with missing input succeeded")
	}
	if err := cmdBuild(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-in", "-", "-format", "xml"}); err == nil {
		t.Error("build with unknown format succeeded")
	}
	if _, err := parseKind("haiku"); err == nil {
		t.Error("parseKind accepted unknown kind")
	}
	if err := cmdRank(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-by", "citations"}); err == nil {
		t.Error("rank with unknown key succeeded")
	}
	if err := cmdRank(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-scheme", "alphabetical"}); err == nil {
		t.Error("rank with unknown scheme succeeded")
	}
	if err := cmdMetrics(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-author", "Missing, Person"}); err == nil {
		t.Error("metrics for missing author succeeded")
	}
}
