package main

import (
	"context"
	"strings"
	"testing"
)

// The HTTP graph endpoints are tested with the rest of the HTTP surface
// in internal/httpapi; this file covers the CLI graph commands.

func TestCLIGraphCommands(t *testing.T) {
	idx := t.TempDir()
	add := func(title, cite string, headings ...string) {
		args := []string{"-dir", idx, "-nosync", "-title", title, "-cite", cite}
		for _, h := range headings {
			args = append(args, "-author", h)
		}
		captureStdout(t, func() error { return cmdAdd(context.Background(), args) })
	}
	add("One", "90:1 (1988)", "Lewin, Jeff L.", "Peng, Syd S.")
	add("Two", "90:50 (1988)", "Peng, Syd S.", "Cardi, Vincent P.")
	add("Three", "90:99 (1988)", "Adler, Mortimer J.")

	out := captureStdout(t, func() error {
		return cmdPath(context.Background(), []string{"-dir", idx, "-nosync", "-from", "Lewin, Jeff L.", "-to", "Cardi, Vincent P."})
	})
	if !strings.Contains(out, "2 hop(s)") || !strings.Contains(out, "Peng, Syd S.") {
		t.Errorf("path output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdGraph(context.Background(), []string{"-dir", idx, "-nosync"})
	})
	for _, want := range []string{"authors:           4", "collab pairs:      2", "components:        2", "largest component: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph summary output lacks %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() error {
		return cmdGraph(context.Background(), []string{"-dir", idx, "-nosync", "-central", "2", "-damping", "0.5"})
	})
	if !strings.Contains(out, "Peng, Syd S.") || !strings.Contains(strings.SplitN(out, "\n", 2)[0], "centrality") {
		t.Errorf("graph -central output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdGraph(context.Background(), []string{"-dir", idx, "-nosync", "-author", "Peng, Syd S."})
	})
	if !strings.Contains(out, "co-authors:      2") {
		t.Errorf("graph -author output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdRank(context.Background(), []string{"-dir", idx, "-nosync", "-by", "central", "-limit", "1"})
	})
	if !strings.Contains(out, "Peng, Syd S.") {
		t.Errorf("rank -by central output: %q", out)
	}
}

func TestCLIGraphErrors(t *testing.T) {
	if err := cmdPath(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-from", "A, B."}); err == nil {
		t.Error("path without -to succeeded")
	}
	if err := cmdPath(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-from", "A, B.", "-to", "C, D."}); err == nil {
		t.Error("path between unknown headings succeeded")
	}
	if err := cmdGraph(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-author", "Missing, Person"}); err == nil {
		t.Error("graph for missing author succeeded")
	}
	if err := cmdGraph(context.Background(), []string{"-dir", t.TempDir(), "-nosync", "-damping", "1.5"}); err == nil {
		t.Error("graph with invalid damping succeeded")
	}
}
