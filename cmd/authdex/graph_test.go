package main

import (
	"strings"
	"testing"

	authorindex "repro"
)

// ---- HTTP surface ----

func TestServeGraphSummary(t *testing.T) {
	ts, _ := testServer(t)
	var s authorindex.GraphSummary
	if code := getJSON(t, ts.URL+"/graph", &s); code != 200 {
		t.Fatalf("status %d", code)
	}
	// Fixture: Cardi solo, Lewin+Peng shared, Filed solo.
	if s.Nodes != 4 || s.Edges != 1 || s.Components != 3 || s.LargestComponent != 2 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.TopCentral) == 0 {
		t.Error("no central authors in summary")
	}
}

func TestServeGraphPath(t *testing.T) {
	ts, _ := testServer(t)
	var p wirePath
	url := ts.URL + "/graph/path?from=Lewin,+Jeff+L.&to=Peng,+Syd+S."
	if code := getJSON(t, url, &p); code != 200 {
		t.Fatalf("status %d", code)
	}
	if p.Distance != 1 || len(p.Path) != 2 || p.Path[1] != "Peng, Syd S." {
		t.Errorf("path = %+v", p)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Lewin,+Jeff+L.&to=Cardi,+Vincent+P.", nil); code != 404 {
		t.Errorf("disconnected pair gave %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Lewin,+Jeff+L.", nil); code != 400 {
		t.Errorf("missing to gave %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Nobody,+X.&to=Peng,+Syd+S.", nil); code != 404 {
		t.Errorf("unknown heading gave %d, want 404", code)
	}
}

func TestServeGraphCentral(t *testing.T) {
	ts, _ := testServer(t)
	var cs []authorindex.CentralAuthor
	if code := getJSON(t, ts.URL+"/graph/central?limit=2", &cs); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d central authors, want 2", len(cs))
	}
	// The collaborating pair outranks the isolated authors.
	for _, c := range cs {
		if c.Heading != "Lewin, Jeff L." && c.Heading != "Peng, Syd S." {
			t.Errorf("unexpected central author %q", c.Heading)
		}
	}
}

func TestServeRankByCentral(t *testing.T) {
	ts, _ := testServer(t)
	var ms []authorindex.AuthorMetrics
	if code := getJSON(t, ts.URL+"/rank?by=central&limit=1", &ms); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(ms) != 1 {
		t.Fatalf("rank returned %d entries", len(ms))
	}
	if h := ms[0].Heading; h != "Lewin, Jeff L." && h != "Peng, Syd S." {
		t.Errorf("top central = %q", h)
	}
}

// ---- CLI surface ----

func TestCLIGraphCommands(t *testing.T) {
	idx := t.TempDir()
	add := func(title, cite string, headings ...string) {
		args := []string{"-dir", idx, "-nosync", "-title", title, "-cite", cite}
		for _, h := range headings {
			args = append(args, "-author", h)
		}
		captureStdout(t, func() error { return cmdAdd(args) })
	}
	add("One", "90:1 (1988)", "Lewin, Jeff L.", "Peng, Syd S.")
	add("Two", "90:50 (1988)", "Peng, Syd S.", "Cardi, Vincent P.")
	add("Three", "90:99 (1988)", "Adler, Mortimer J.")

	out := captureStdout(t, func() error {
		return cmdPath([]string{"-dir", idx, "-nosync", "-from", "Lewin, Jeff L.", "-to", "Cardi, Vincent P."})
	})
	if !strings.Contains(out, "2 hop(s)") || !strings.Contains(out, "Peng, Syd S.") {
		t.Errorf("path output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdGraph([]string{"-dir", idx, "-nosync"})
	})
	for _, want := range []string{"authors:           4", "collab pairs:      2", "components:        2", "largest component: 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("graph summary output lacks %q:\n%s", want, out)
		}
	}

	out = captureStdout(t, func() error {
		return cmdGraph([]string{"-dir", idx, "-nosync", "-central", "2", "-damping", "0.5"})
	})
	if !strings.Contains(out, "Peng, Syd S.") || !strings.Contains(strings.SplitN(out, "\n", 2)[0], "centrality") {
		t.Errorf("graph -central output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdGraph([]string{"-dir", idx, "-nosync", "-author", "Peng, Syd S."})
	})
	if !strings.Contains(out, "co-authors:      2") {
		t.Errorf("graph -author output: %q", out)
	}

	out = captureStdout(t, func() error {
		return cmdRank([]string{"-dir", idx, "-nosync", "-by", "central", "-limit", "1"})
	})
	if !strings.Contains(out, "Peng, Syd S.") {
		t.Errorf("rank -by central output: %q", out)
	}
}

func TestCLIGraphErrors(t *testing.T) {
	if err := cmdPath([]string{"-dir", t.TempDir(), "-nosync", "-from", "A, B."}); err == nil {
		t.Error("path without -to succeeded")
	}
	if err := cmdPath([]string{"-dir", t.TempDir(), "-nosync", "-from", "A, B.", "-to", "C, D."}); err == nil {
		t.Error("path between unknown headings succeeded")
	}
	if err := cmdGraph([]string{"-dir", t.TempDir(), "-nosync", "-author", "Missing, Person"}); err == nil {
		t.Error("graph for missing author succeeded")
	}
	if err := cmdGraph([]string{"-dir", t.TempDir(), "-nosync", "-damping", "1.5"}); err == nil {
		t.Error("graph with invalid damping succeeded")
	}
}
