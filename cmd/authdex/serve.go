package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	authorindex "repro"
)

// cmdServe exposes a read-mostly HTTP API over an index directory:
//
//	GET /stats                         counters as JSON
//	GET /authors?prefix=ab&n=20        headings by prefix
//	GET /authors/{heading}             one heading with works
//	GET /works/{id}                    one work
//	GET /search?q=surface+mining&n=20  boolean title search
//	GET /years?from=1980&to=1989&n=20  year-range scan
//	GET /volume?v=95                   volume scan
//	GET /index?format=text|tsv|md|csv|json   the rendered artifact
//	GET /metrics                       corpus bibliometrics summary
//	GET /rank?by=weighted&limit=10     top contributors by rank key
//	GET /authors/{heading}/metrics     one heading's bibliometrics
//	GET /graph                         coauthorship-network summary
//	GET /graph/path?from=A&to=B        shortest collaboration chain
//	GET /graph/central?limit=10        most central authors (PageRank)
//	POST /works                        add a work (JSON body)
//	POST /works:batch                  add N works in one group commit (JSON array)
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	open := openFlags(fs)
	addr := fs.String("addr", ":8377", "listen address")
	scheme := fs.String("scheme", "harmonic", "metrics credit scheme: harmonic, arithmetic, geometric or fractional")
	damping := fs.Float64("damping", 0, "PageRank damping factor for /graph endpoints (0 = default 0.85)")
	fs.Parse(args)

	s, err := authorindex.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := open(withScheme(s), withDamping(*damping))
	if err != nil {
		return err
	}
	defer ix.Close()

	log.Printf("authdex: serving on %s", *addr)
	return http.ListenAndServe(*addr, (&server{ix: ix}).routes())
}

type server struct{ ix *authorindex.Index }

// routes registers every handler on a fresh mux; the serve command and
// the test harness share it so the surfaces cannot drift.
func (s *server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", s.stats)
	mux.HandleFunc("GET /authors", s.authors)
	mux.HandleFunc("GET /authors/{heading}", s.author)
	mux.HandleFunc("GET /authors/{heading}/metrics", s.authorMetrics)
	mux.HandleFunc("GET /works/{id}", s.work)
	mux.HandleFunc("GET /search", s.search)
	mux.HandleFunc("GET /years", s.years)
	mux.HandleFunc("GET /volume", s.volume)
	mux.HandleFunc("GET /index", s.index)
	mux.HandleFunc("GET /titles", s.titles)
	mux.HandleFunc("GET /subjects", s.subjects)
	mux.HandleFunc("GET /subjects/{subject}", s.bySubject)
	mux.HandleFunc("GET /metrics", s.metrics)
	mux.HandleFunc("GET /rank", s.rank)
	mux.HandleFunc("GET /graph", s.graph)
	mux.HandleFunc("GET /graph/path", s.graphPath)
	mux.HandleFunc("GET /graph/central", s.graphCentral)
	mux.HandleFunc("POST /works", s.addWork)
	mux.HandleFunc("POST /works:batch", s.addWorksBatch)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// limitParam reads the result limit from ?limit= (or the legacy ?n=)
// and clamps it with the helper every layer shares: missing, negative
// or unparseable values fall back to 20, zero and absurd values clamp
// to authorindex.MaxLimit.
func limitParam(r *http.Request) int {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		raw = r.URL.Query().Get("n")
	}
	if raw == "" {
		return 20
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 20
	}
	return authorindex.ClampLimit(n, 20)
}

// wire representations -------------------------------------------------

type wireWork struct {
	ID       authorindex.WorkID `json:"id,omitempty"`
	Title    string             `json:"title"`
	Kind     string             `json:"kind"`
	Authors  []string           `json:"authors"`
	Citation string             `json:"citation"`
}

func toWireWork(w *authorindex.Work) wireWork {
	out := wireWork{
		ID:       w.ID,
		Title:    w.Title,
		Kind:     w.Kind.String(),
		Citation: w.Citation.String(),
	}
	for _, a := range w.Authors {
		out.Authors = append(out.Authors, authorindex.FormatAuthor(a))
	}
	return out
}

func toWireWorks(ws []*authorindex.Work) []wireWork {
	out := make([]wireWork, len(ws))
	for i, w := range ws {
		out[i] = toWireWork(w)
	}
	return out
}

type wireEntry struct {
	Heading string     `json:"heading"`
	SeeAlso []string   `json:"seeAlso,omitempty"`
	Works   []wireWork `json:"works"`
}

func toWireEntry(e *authorindex.Entry) wireEntry {
	out := wireEntry{Heading: authorindex.FormatAuthor(e.Author)}
	for _, ref := range e.SeeAlso {
		out.SeeAlso = append(out.SeeAlso, authorindex.FormatAuthor(ref))
	}
	for i := range e.Works {
		out.Works = append(out.Works, toWireWork(&e.Works[i]))
	}
	return out
}

// handlers --------------------------------------------------------------

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Stats())
}

func (s *server) authors(w http.ResponseWriter, r *http.Request) {
	var entries []*authorindex.Entry
	if after := r.URL.Query().Get("after"); after != "" {
		entries = s.ix.AuthorsPage(after, limitParam(r))
	} else {
		entries = s.ix.Authors(r.URL.Query().Get("prefix"), limitParam(r))
	}
	out := make([]wireEntry, len(entries))
	for i, e := range entries {
		out[i] = toWireEntry(e)
	}
	writeJSON(w, out)
}

func (s *server) author(w http.ResponseWriter, r *http.Request) {
	heading := r.PathValue("heading")
	entry, ok := s.ix.Author(heading)
	if !ok {
		httpErr(w, http.StatusNotFound, "no heading %q", heading)
		return
	}
	writeJSON(w, toWireEntry(entry))
}

func (s *server) work(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	work, ok := s.ix.Get(authorindex.WorkID(id))
	if !ok {
		httpErr(w, http.StatusNotFound, "no work %d", id)
		return
	}
	writeJSON(w, toWireWork(work))
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	writeJSON(w, toWireWorks(s.ix.Search(q, limitParam(r))))
}

func (s *server) years(w http.ResponseWriter, r *http.Request) {
	from, err1 := strconv.Atoi(r.URL.Query().Get("from"))
	to, err2 := strconv.Atoi(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil {
		httpErr(w, http.StatusBadRequest, "from and to must be years")
		return
	}
	writeJSON(w, toWireWorks(s.ix.YearRange(from, to, limitParam(r))))
}

func (s *server) volume(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("v"))
	if err != nil {
		httpErr(w, http.StatusBadRequest, "v must be a volume number")
		return
	}
	writeJSON(w, toWireWorks(s.ix.VolumeWorks(v, limitParam(r))))
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch f {
	case authorindex.JSON:
		w.Header().Set("Content-Type", "application/json")
	case authorindex.CSV:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	case authorindex.HTMLPage:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := s.ix.Render(w, authorindex.RenderOptions{Format: f}); err != nil {
		httpErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *server) titles(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.ix.RenderTitleIndex(w, authorindex.RenderOptions{Format: f}); err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *server) subjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Subjects())
}

func (s *server) bySubject(w http.ResponseWriter, r *http.Request) {
	subject := r.PathValue("subject")
	works := s.ix.BySubject(subject, limitParam(r))
	if len(works) == 0 {
		httpErr(w, http.StatusNotFound, "no works under subject %q", subject)
		return
	}
	writeJSON(w, toWireWorks(works))
}

func (s *server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.MetricsSummary())
}

func (s *server) rank(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("by")
	if name == "" {
		name = "weighted"
	}
	by, err := authorindex.ParseRankKey(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, s.ix.TopAuthors(by, limitParam(r)))
}

func (s *server) graph(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.GraphSummary())
}

// wirePath is the /graph/path response: the chain plus its hop count.
type wirePath struct {
	From     string   `json:"from"`
	To       string   `json:"to"`
	Distance int      `json:"distance"`
	Path     []string `json:"path"`
}

func (s *server) graphPath(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	to := r.URL.Query().Get("to")
	if from == "" || to == "" {
		httpErr(w, http.StatusBadRequest, "from and to parameters are required")
		return
	}
	path, ok := s.ix.CollaborationPath(from, to)
	if !ok {
		httpErr(w, http.StatusNotFound, "no collaboration path from %q to %q", from, to)
		return
	}
	writeJSON(w, wirePath{From: from, To: to, Distance: len(path) - 1, Path: path})
}

func (s *server) graphCentral(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.TopCentral(limitParam(r)))
}

func (s *server) authorMetrics(w http.ResponseWriter, r *http.Request) {
	heading := r.PathValue("heading")
	m, ok := s.ix.AuthorMetrics(heading)
	if !ok {
		httpErr(w, http.StatusNotFound, "no heading %q", heading)
		return
	}
	writeJSON(w, m)
}

func (s *server) addWork(w http.ResponseWriter, r *http.Request) {
	var in wireWork
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	work, err := fromWireWork(in)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.ix.Add(work)
	if err != nil {
		httpErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]authorindex.WorkID{"id": id})
}

// addWorksBatch accepts a JSON array of works and commits them as one
// batch: a single WAL append and fsync however many works arrive, and
// all-or-nothing visibility — one bad work rejects the whole request.
func (s *server) addWorksBatch(w http.ResponseWriter, r *http.Request) {
	var in []wireWork
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(in) == 0 {
		httpErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	works := make([]authorindex.Work, len(in))
	for i, ww := range in {
		work, err := fromWireWork(ww)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "work %d: %v", i, err)
			return
		}
		works[i] = work
	}
	ids, err := s.ix.AddBatch(works)
	if err != nil {
		httpErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string][]authorindex.WorkID{"ids": ids})
}

func fromWireWork(in wireWork) (authorindex.Work, error) {
	work := authorindex.Work{ID: in.ID, Title: in.Title}
	var err error
	if work.Citation, err = authorindex.ParseCitation(in.Citation); err != nil {
		return work, err
	}
	kindName := in.Kind
	if kindName == "" {
		kindName = "article"
	}
	if work.Kind, err = parseKind(strings.ToLower(kindName)); err != nil {
		return work, err
	}
	if len(in.Authors) == 0 {
		return work, errors.New("at least one author is required")
	}
	for _, h := range in.Authors {
		a, err := authorindex.ParseAuthor(h)
		if err != nil {
			return work, err
		}
		work.Authors = append(work.Authors, a)
	}
	return work, nil
}
