package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	authorindex "repro"
	"repro/internal/httpapi"
)

// Environment fallbacks for the serve flags. Precedence is strict:
// an explicitly set flag wins over the variable, the variable wins
// over the default.
const (
	envAddr         = "AUTHDEX_ADDR"
	envLogLevel     = "AUTHDEX_LOG_LEVEL"
	envReadTimeout  = "AUTHDEX_READ_TIMEOUT"
	envWriteTimeout = "AUTHDEX_WRITE_TIMEOUT"
	envSlowlog      = "AUTHDEX_SLOWLOG"
)

// serveConfig is everything cmdServe needs beyond the index itself;
// split out (with applyEnv separate from flag parsing) so the
// precedence rules are testable without binding sockets.
type serveConfig struct {
	addr         string
	logLevel     string
	logFormat    string
	readTimeout  time.Duration
	writeTimeout time.Duration
	drainTimeout time.Duration
	slowlog      time.Duration
	maxInFlight  int
	debug        bool
	verifyBoot   bool
}

func serveFlags(fs *flag.FlagSet) *serveConfig {
	cfg := &serveConfig{}
	fs.StringVar(&cfg.addr, "addr", ":8377", "listen address (env "+envAddr+")")
	fs.StringVar(&cfg.logLevel, "log-level", "info", "access-log level: debug, info, warn or error (env "+envLogLevel+")")
	fs.StringVar(&cfg.logFormat, "log-format", "text", "access-log encoding: text or json")
	fs.DurationVar(&cfg.readTimeout, "read-timeout", 10*time.Second, "HTTP read timeout (env "+envReadTimeout+")")
	fs.DurationVar(&cfg.writeTimeout, "write-timeout", 60*time.Second, "HTTP write timeout; renders of large corpora need headroom (env "+envWriteTimeout+")")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 15*time.Second, "how long a SIGTERM/SIGINT shutdown waits for in-flight requests before aborting them")
	fs.DurationVar(&cfg.slowlog, "slowlog", 250*time.Millisecond, "emit the full span tree of requests at least this slow; 0 disables (env "+envSlowlog+")")
	fs.IntVar(&cfg.maxInFlight, "max-inflight", 0, "shed requests with 503 beyond this many in flight; 0 disables the gate")
	fs.BoolVar(&cfg.debug, "debug", false, "mount net/http/pprof under /debug/pprof/")
	fs.BoolVar(&cfg.verifyBoot, "verify-boot", false, "run a full Verify pass before /readyz reports ready")
	return cfg
}

// applyEnv fills unset flags from the environment. fs must already be
// parsed; flags the command line set explicitly are left alone.
func applyEnv(fs *flag.FlagSet, cfg *serveConfig, getenv func(string) string) error {
	set := make(map[string]bool)
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if v := getenv(envAddr); v != "" && !set["addr"] {
		cfg.addr = v
	}
	if v := getenv(envLogLevel); v != "" && !set["log-level"] {
		cfg.logLevel = v
	}
	if v := getenv(envReadTimeout); v != "" && !set["read-timeout"] {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("%s: %w", envReadTimeout, err)
		}
		cfg.readTimeout = d
	}
	if v := getenv(envWriteTimeout); v != "" && !set["write-timeout"] {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("%s: %w", envWriteTimeout, err)
		}
		cfg.writeTimeout = d
	}
	if v := getenv(envSlowlog); v != "" && !set["slowlog"] {
		d, err := time.ParseDuration(v)
		if err != nil {
			return fmt.Errorf("%s: %w", envSlowlog, err)
		}
		cfg.slowlog = d
	}
	return nil
}

// logger builds the slog access logger the config describes.
func (cfg *serveConfig) logger() (*slog.Logger, error) {
	var level slog.Level
	switch strings.ToLower(cfg.logLevel) {
	case "debug":
		level = slog.LevelDebug
	case "info":
		level = slog.LevelInfo
	case "warn":
		level = slog.LevelWarn
	case "error":
		level = slog.LevelError
	default:
		return nil, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", cfg.logLevel)
	}
	opts := &slog.HandlerOptions{Level: level}
	switch strings.ToLower(cfg.logFormat) {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("unknown log format %q (want text or json)", cfg.logFormat)
	}
}

// cmdServe exposes the index over HTTP. The full route table lives in
// internal/httpapi; this command only adds process concerns — flags,
// environment fallbacks, logging, timeouts, the listener and the
// graceful-shutdown sequence.
func cmdServe(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	open := openFlags(fs)
	cfg := serveFlags(fs)
	scheme := fs.String("scheme", "harmonic", "metrics credit scheme: harmonic, arithmetic, geometric or fractional")
	damping := fs.Float64("damping", 0, "PageRank damping factor for /graph endpoints (0 = default 0.85)")
	fs.Parse(args)
	if err := applyEnv(fs, cfg, os.Getenv); err != nil {
		return err
	}
	logger, err := cfg.logger()
	if err != nil {
		return err
	}

	s, err := authorindex.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := open(withScheme(s), withDamping(*damping))
	if err != nil {
		return err
	}

	api := httpapi.New(ix, httpapi.Config{
		Logger:       logger,
		Debug:        cfg.debug,
		VerifyOnBoot: cfg.verifyBoot,
		Slowlog:      cfg.slowlog,
		MaxInFlight:  cfg.maxInFlight,
	})
	return serve(ctx, api, ix, cfg, logger, nil)
}

// serve listens and serves until ctx is canceled — which SIGINT and
// SIGTERM do — or the listener dies, then runs the shutdown sequence
// in order: flip /readyz to 503 so load balancers route away, drain
// in-flight requests up to cfg.drainTimeout (aborting stragglers),
// and only then close the index so every served request saw an open
// one. It owns ix and closes it on every path. A non-nil addrCh
// receives the bound address once the listener is up (tests bind
// ":0").
func serve(ctx context.Context, api *httpapi.Server, ix *authorindex.Index, cfg *serveConfig, logger *slog.Logger, addrCh chan<- string) error {
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	srv := &http.Server{
		Handler:      api.Handler(),
		ReadTimeout:  cfg.readTimeout,
		WriteTimeout: cfg.writeTimeout,
		IdleTimeout:  2 * time.Minute,
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		ix.Close()
		return err
	}
	if addrCh != nil {
		addrCh <- ln.Addr().String()
	}
	logger.Info("authdex serving", "addr", ln.Addr().String(), "debug", cfg.debug,
		"verify_boot", cfg.verifyBoot, "slowlog", cfg.slowlog, "max_inflight", cfg.maxInFlight)

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	select {
	case err := <-serveErr:
		ix.Close()
		return err
	case <-ctx.Done():
	}

	logger.Info("shutdown: draining in-flight requests", "timeout", cfg.drainTimeout)
	api.BeginShutdown()
	dctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Warn("drain window expired; aborting remaining requests", "error", err)
		srv.Close()
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Warn("listener error during shutdown", "error", err)
	}
	if err := ix.Close(); err != nil {
		return fmt.Errorf("closing index: %w", err)
	}
	logger.Info("shutdown complete")
	return nil
}
