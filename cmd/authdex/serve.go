package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"

	authorindex "repro"
)

// cmdServe exposes a read-mostly HTTP API over an index directory:
//
//	GET /stats                         counters as JSON
//	GET /authors?prefix=ab&n=20        headings by prefix
//	GET /authors/{heading}             one heading with works
//	GET /works/{id}                    one work
//	GET /search?q=surface+mining&n=20  boolean title search
//	GET /years?from=1980&to=1989&n=20  year-range scan
//	GET /volume?v=95                   volume scan
//	GET /index?format=text|tsv|md|csv|json   the rendered artifact
//	POST /works                        add a work (JSON body)
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	open := openFlags(fs)
	addr := fs.String("addr", ":8377", "listen address")
	fs.Parse(args)

	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()

	mux := http.NewServeMux()
	srv := &server{ix: ix}
	mux.HandleFunc("GET /stats", srv.stats)
	mux.HandleFunc("GET /authors", srv.authors)
	mux.HandleFunc("GET /authors/{heading}", srv.author)
	mux.HandleFunc("GET /works/{id}", srv.work)
	mux.HandleFunc("GET /search", srv.search)
	mux.HandleFunc("GET /years", srv.years)
	mux.HandleFunc("GET /volume", srv.volume)
	mux.HandleFunc("GET /index", srv.index)
	mux.HandleFunc("GET /titles", srv.titles)
	mux.HandleFunc("GET /subjects", srv.subjects)
	mux.HandleFunc("GET /subjects/{subject}", srv.bySubject)
	mux.HandleFunc("POST /works", srv.addWork)

	log.Printf("authdex: serving on %s", *addr)
	return http.ListenAndServe(*addr, mux)
}

type server struct{ ix *authorindex.Index }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

func limitParam(r *http.Request) int {
	n, err := strconv.Atoi(r.URL.Query().Get("n"))
	if err != nil || n < 0 {
		return 20
	}
	return n
}

// wire representations -------------------------------------------------

type wireWork struct {
	ID       authorindex.WorkID `json:"id,omitempty"`
	Title    string             `json:"title"`
	Kind     string             `json:"kind"`
	Authors  []string           `json:"authors"`
	Citation string             `json:"citation"`
}

func toWireWork(w *authorindex.Work) wireWork {
	out := wireWork{
		ID:       w.ID,
		Title:    w.Title,
		Kind:     w.Kind.String(),
		Citation: w.Citation.String(),
	}
	for _, a := range w.Authors {
		out.Authors = append(out.Authors, authorindex.FormatAuthor(a))
	}
	return out
}

func toWireWorks(ws []*authorindex.Work) []wireWork {
	out := make([]wireWork, len(ws))
	for i, w := range ws {
		out[i] = toWireWork(w)
	}
	return out
}

type wireEntry struct {
	Heading string     `json:"heading"`
	SeeAlso []string   `json:"seeAlso,omitempty"`
	Works   []wireWork `json:"works"`
}

func toWireEntry(e *authorindex.Entry) wireEntry {
	out := wireEntry{Heading: authorindex.FormatAuthor(e.Author)}
	for _, ref := range e.SeeAlso {
		out.SeeAlso = append(out.SeeAlso, authorindex.FormatAuthor(ref))
	}
	for i := range e.Works {
		out.Works = append(out.Works, toWireWork(&e.Works[i]))
	}
	return out
}

// handlers --------------------------------------------------------------

func (s *server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Stats())
}

func (s *server) authors(w http.ResponseWriter, r *http.Request) {
	var entries []*authorindex.Entry
	if after := r.URL.Query().Get("after"); after != "" {
		entries = s.ix.AuthorsPage(after, limitParam(r))
	} else {
		entries = s.ix.Authors(r.URL.Query().Get("prefix"), limitParam(r))
	}
	out := make([]wireEntry, len(entries))
	for i, e := range entries {
		out[i] = toWireEntry(e)
	}
	writeJSON(w, out)
}

func (s *server) author(w http.ResponseWriter, r *http.Request) {
	heading := r.PathValue("heading")
	entry, ok := s.ix.Author(heading)
	if !ok {
		httpErr(w, http.StatusNotFound, "no heading %q", heading)
		return
	}
	writeJSON(w, toWireEntry(entry))
}

func (s *server) work(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	work, ok := s.ix.Get(authorindex.WorkID(id))
	if !ok {
		httpErr(w, http.StatusNotFound, "no work %d", id)
		return
	}
	writeJSON(w, toWireWork(work))
}

func (s *server) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	writeJSON(w, toWireWorks(s.ix.Search(q, limitParam(r))))
}

func (s *server) years(w http.ResponseWriter, r *http.Request) {
	from, err1 := strconv.Atoi(r.URL.Query().Get("from"))
	to, err2 := strconv.Atoi(r.URL.Query().Get("to"))
	if err1 != nil || err2 != nil {
		httpErr(w, http.StatusBadRequest, "from and to must be years")
		return
	}
	writeJSON(w, toWireWorks(s.ix.YearRange(from, to, limitParam(r))))
}

func (s *server) volume(w http.ResponseWriter, r *http.Request) {
	v, err := strconv.Atoi(r.URL.Query().Get("v"))
	if err != nil {
		httpErr(w, http.StatusBadRequest, "v must be a volume number")
		return
	}
	writeJSON(w, toWireWorks(s.ix.VolumeWorks(v, limitParam(r))))
}

func (s *server) index(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	switch f {
	case authorindex.JSON:
		w.Header().Set("Content-Type", "application/json")
	case authorindex.CSV:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	case authorindex.HTMLPage:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := s.ix.Render(w, authorindex.RenderOptions{Format: f}); err != nil {
		httpErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *server) titles(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.ix.RenderTitleIndex(w, authorindex.RenderOptions{Format: f}); err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *server) subjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.ix.Subjects())
}

func (s *server) bySubject(w http.ResponseWriter, r *http.Request) {
	subject := r.PathValue("subject")
	works := s.ix.BySubject(subject, limitParam(r))
	if len(works) == 0 {
		httpErr(w, http.StatusNotFound, "no works under subject %q", subject)
		return
	}
	writeJSON(w, toWireWorks(works))
}

func (s *server) addWork(w http.ResponseWriter, r *http.Request) {
	var in wireWork
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	work, err := fromWireWork(in)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.ix.Add(work)
	if err != nil {
		httpErr(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(w, map[string]authorindex.WorkID{"id": id})
}

func fromWireWork(in wireWork) (authorindex.Work, error) {
	work := authorindex.Work{ID: in.ID, Title: in.Title}
	var err error
	if work.Citation, err = authorindex.ParseCitation(in.Citation); err != nil {
		return work, err
	}
	kindName := in.Kind
	if kindName == "" {
		kindName = "article"
	}
	if work.Kind, err = parseKind(strings.ToLower(kindName)); err != nil {
		return work, err
	}
	if len(in.Authors) == 0 {
		return work, errors.New("at least one author is required")
	}
	for _, h := range in.Authors {
		a, err := authorindex.ParseAuthor(h)
		if err != nil {
			return work, err
		}
		work.Authors = append(work.Authors, a)
	}
	return work, nil
}
