package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	authorindex "repro"
)

// openFlags declares the flags every index-touching command shares and
// returns an opener bound to them. Tweaks adjust the Options before
// Open (e.g. the metrics commands set the credit scheme so the tracker
// is built once, during the rebuild from the store).
func openFlags(fs *flag.FlagSet) func(tweaks ...func(*authorindex.Options)) (*authorindex.Index, error) {
	dir := fs.String("dir", "", "index directory (required)")
	nosync := fs.Bool("nosync", false, "skip fsync on writes (faster, less durable)")
	compactEvery := fs.Int("compact-every", 0, "auto-compact after N logged operations")
	shards := fs.Int("shards", 0, "hash-partition the index across N engine shards (0 = 1, unsharded)")
	return func(tweaks ...func(*authorindex.Options)) (*authorindex.Index, error) {
		if *dir == "" {
			return nil, errors.New("-dir is required")
		}
		opts := authorindex.Options{
			NoSync:       *nosync,
			CompactEvery: *compactEvery,
			Shards:       *shards,
		}
		for _, tweak := range tweaks {
			tweak(&opts)
		}
		return authorindex.Open(*dir, &opts)
	}
}

// withScheme is the opener tweak the metrics-facing commands share.
func withScheme(s authorindex.Scheme) func(*authorindex.Options) {
	return func(o *authorindex.Options) { o.MetricsScheme = s }
}

func outWriter(path string) (io.WriteCloser, error) {
	if path == "" || path == "-" {
		return nopCloser{os.Stdout}, nil
	}
	return os.Create(path)
}

type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

func cmdGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	works := fs.Int("works", 1000, "number of works")
	seed := fs.Int64("seed", 1, "generator seed")
	zipf := fs.Float64("zipf", 0, "author-productivity skew (>1 enables; try 1.2)")
	volumes := fs.Int("volumes", 0, "volume count (0 = default 27)")
	plain := fs.Bool("plain", false, "suppress diacritics/particles/suffixes")
	format := fs.String("format", "tsv", "output format: tsv or csv")
	out := fs.String("out", "-", "output file (- for stdout)")
	fs.Parse(args)

	corpus := authorindex.GenerateCorpus(authorindex.CorpusConfig{
		Seed: *seed, Works: *works, ZipfS: *zipf, Volumes: *volumes, Plain: *plain,
	})
	ix, err := authorindex.Open("", nil)
	if err != nil {
		return err
	}
	defer ix.Close()
	for _, w := range corpus {
		if _, err := ix.Add(*w); err != nil {
			return err
		}
	}
	f, err := authorindex.ParseFormat(*format)
	if err != nil {
		return err
	}
	if f != authorindex.TSV && f != authorindex.CSV {
		return fmt.Errorf("gen writes tsv or csv, not %s", f)
	}
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	return ix.RenderCtx(ctx, w, authorindex.RenderOptions{Format: f})
}

func cmdBuild(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	open := openFlags(fs)
	in := fs.String("in", "", "input corpus file (required; - for stdin)")
	format := fs.String("format", "tsv", "input format: tsv or csv")
	lenient := fs.Bool("lenient", false, "skip malformed lines instead of failing")
	batch := fs.Int("batch", 0, "works per group commit (0 = default 256)")
	fs.Parse(args)

	if *in == "" {
		return errors.New("-in is required")
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	ix, err := open(func(o *authorindex.Options) { o.IngestBatchSize = *batch })
	if err != nil {
		return err
	}
	defer ix.Close()
	before := ix.Stats()
	var res *authorindex.IngestResult
	switch strings.ToLower(*format) {
	case "tsv":
		res, err = ix.ImportTSV(r, *lenient)
	case "csv":
		res, err = ix.ImportCSV(r, *lenient)
	default:
		return fmt.Errorf("build reads tsv or csv, not %q", *format)
	}
	if err != nil {
		return err
	}
	after := ix.Stats()
	fmt.Printf("imported %d works, %d cross-refs (%d lines skipped)\n",
		len(res.Works), len(res.CrossRefs), res.Skipped)
	fmt.Printf("group commit: %d batches, %d fsyncs issued, %d fsyncs saved vs per-work writes\n",
		after.BatchesCommitted-before.BatchesCommitted,
		after.WALSyncs-before.WALSyncs,
		after.FsyncsSaved-before.FsyncsSaved)
	return nil
}

type authorList []string

func (a *authorList) String() string     { return strings.Join(*a, "; ") }
func (a *authorList) Set(s string) error { *a = append(*a, s); return nil }

func cmdAdd(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("add", flag.ExitOnError)
	open := openFlags(fs)
	title := fs.String("title", "", "work title (required)")
	cite := fs.String("cite", "", `citation, e.g. "95:1365 (1993)" (required)`)
	kind := fs.String("kind", "article", "work kind")
	var authors authorList
	fs.Var(&authors, "author", `author heading, repeatable, e.g. "Lewin, Jeff L."`)
	fs.Parse(args)

	if *title == "" || *cite == "" || len(authors) == 0 {
		return errors.New("-title, -cite and at least one -author are required")
	}
	w := authorindex.Work{Title: *title}
	var err error
	if w.Citation, err = authorindex.ParseCitation(*cite); err != nil {
		return err
	}
	if w.Kind, err = parseKind(*kind); err != nil {
		return err
	}
	for _, s := range authors {
		a, err := authorindex.ParseAuthor(s)
		if err != nil {
			return err
		}
		w.Authors = append(w.Authors, a)
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	id, err := ix.Add(w)
	if err != nil {
		return err
	}
	fmt.Printf("added work #%d\n", id)
	return nil
}

func parseKind(s string) (authorindex.Kind, error) {
	for _, k := range []authorindex.Kind{
		authorindex.KindArticle, authorindex.KindStudentNote,
		authorindex.KindEssay, authorindex.KindBookReview,
		authorindex.KindComment, authorindex.KindCaseNote,
		authorindex.KindTribute,
	} {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("unknown kind %q", s)
}

func printWorks(works []*authorindex.Work) {
	for _, w := range works {
		names := make([]string, len(w.Authors))
		for i, a := range w.Authors {
			names[i] = authorindex.FormatAuthor(a)
		}
		fmt.Printf("#%-6d %-14s %s — %s [%s]\n",
			w.ID, w.Citation, strings.Join(names, "; "), w.Title, w.Kind)
	}
}

func cmdLookup(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	open := openFlags(fs)
	author := fs.String("author", "", `heading, e.g. "Lewin, Jeff L." (required)`)
	fs.Parse(args)
	if *author == "" {
		return errors.New("-author is required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	entry, ok := ix.Author(*author)
	if !ok {
		return fmt.Errorf("no heading %q", *author)
	}
	fmt.Println(authorindex.FormatAuthor(entry.Author))
	for _, ref := range entry.SeeAlso {
		fmt.Printf("  see also: %s\n", authorindex.FormatAuthor(ref))
	}
	for _, w := range entry.Works {
		fmt.Printf("  %-14s %s\n", w.Citation, w.Title)
	}
	return nil
}

func cmdPrefix(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("prefix", flag.ExitOnError)
	open := openFlags(fs)
	p := fs.String("p", "", "heading prefix (empty = all)")
	n := fs.Int("n", 20, "max headings (0 = all, capped at 10000)")
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	for _, e := range ix.Authors(*p, authorindex.ClampLimit(*n, 20)) {
		fmt.Printf("%-40s %d works\n", authorindex.FormatAuthor(e.Author), len(e.Works))
	}
	return nil
}

func cmdSearch(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("search", flag.ExitOnError)
	open := openFlags(fs)
	q := fs.String("q", "", `query, e.g. "surface mining -tax" or "coal*" (required)`)
	n := fs.Int("n", 20, "max results (0 = all, capped at 10000)")
	fs.Parse(args)
	if *q == "" {
		return errors.New("-q is required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	printWorks(ix.SearchCtx(ctx, *q, authorindex.ClampLimit(*n, 20)))
	return nil
}

func cmdYears(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("years", flag.ExitOnError)
	open := openFlags(fs)
	from := fs.Int("from", 0, "first year (required)")
	to := fs.Int("to", 0, "last year (required)")
	n := fs.Int("n", 20, "max results (0 = all, capped at 10000)")
	fs.Parse(args)
	if *from == 0 || *to == 0 {
		return errors.New("-from and -to are required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	printWorks(ix.YearRangeCtx(ctx, *from, *to, authorindex.ClampLimit(*n, 20)))
	return nil
}

func cmdVolume(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("volume", flag.ExitOnError)
	open := openFlags(fs)
	v := fs.Int("v", 0, "volume number (required)")
	n := fs.Int("n", 0, "max results (0 = all, capped at 10000)")
	fs.Parse(args)
	if *v == 0 {
		return errors.New("-v is required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	printWorks(ix.VolumeWorksCtx(ctx, *v, authorindex.ClampLimit(*n, 20)))
	return nil
}

func cmdRender(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("render", flag.ExitOnError)
	open := openFlags(fs)
	format := fs.String("format", "text", "text, tsv, markdown, csv or json")
	out := fs.String("out", "-", "output file (- for stdout)")
	pagelen := fs.Int("pagelen", 0, "lines per page (0 = no pagination)")
	width := fs.Int("width", 78, "page width")
	pub := fs.String("publication", "", "running-head publication name")
	volnum := fs.Int("volnum", 0, "running-head volume number")
	year := fs.Int("year", 0, "running-head year")
	stats := fs.Bool("stats", false, "append the contributor-statistics appendix (text/markdown/json)")
	statsTop := fs.Int("stats-top", 10, "ranked contributors in the appendix")
	network := fs.Bool("network", false, "append the collaboration-network appendix (text/markdown/json)")
	networkTop := fs.Int("network-top", 10, "ranked central authors in the network appendix")
	fs.Parse(args)

	f, err := authorindex.ParseFormat(*format)
	if err != nil {
		return err
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	return ix.RenderCtx(ctx, w, authorindex.RenderOptions{
		Format:       f,
		PageLength:   *pagelen,
		PageWidth:    *width,
		Volume:       authorindex.Volume{Publication: *pub, Number: *volnum, Year: *year},
		Statistics:   *stats,
		StatsLimit:   *statsTop,
		Network:      *network,
		NetworkLimit: *networkTop,
	})
}

func cmdTitles(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("titles", flag.ExitOnError)
	open := openFlags(fs)
	format := fs.String("format", "text", "text, tsv or markdown")
	out := fs.String("out", "-", "output file (- for stdout)")
	pagelen := fs.Int("pagelen", 0, "lines per page (0 = no pagination)")
	width := fs.Int("width", 78, "page width")
	fs.Parse(args)

	f, err := authorindex.ParseFormat(*format)
	if err != nil {
		return err
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	w, err := outWriter(*out)
	if err != nil {
		return err
	}
	defer w.Close()
	return ix.RenderTitleIndex(w, authorindex.RenderOptions{
		Format:     f,
		PageLength: *pagelen,
		PageWidth:  *width,
	})
}

func cmdSubjects(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("subjects", flag.ExitOnError)
	open := openFlags(fs)
	s := fs.String("s", "", "show works under this subject (default: list all headings)")
	renderIt := fs.Bool("render", false, "render the full subject index instead")
	format := fs.String("format", "text", "render format: text, tsv or markdown")
	n := fs.Int("n", 0, "max results (0 = all, capped at 10000)")
	fs.Parse(args)

	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	switch {
	case *renderIt:
		f, err := authorindex.ParseFormat(*format)
		if err != nil {
			return err
		}
		return ix.RenderSubjectIndex(os.Stdout, authorindex.RenderOptions{Format: f})
	case *s != "":
		printWorks(ix.BySubjectCtx(ctx, *s, authorindex.ClampLimit(*n, 20)))
	default:
		for _, sc := range ix.Subjects() {
			fmt.Printf("%-50s %d works\n", sc.Subject, sc.Works)
		}
	}
	return nil
}

func cmdXref(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("xref", flag.ExitOnError)
	open := openFlags(fs)
	from := fs.String("from", "", "source heading (required)")
	to := fs.String("to", "", "target heading (required)")
	fs.Parse(args)
	if *from == "" || *to == "" {
		return errors.New("-from and -to are required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	return ix.AddSeeAlso(*from, *to)
}

func cmdStats(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	open := openFlags(fs)
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	st := ix.Stats()
	fmt.Printf("works:          %d\n", st.Works)
	fmt.Printf("headings:       %d\n", st.Authors)
	fmt.Printf("postings:       %d\n", st.Postings)
	fmt.Printf("student notes:  %d\n", st.StudentNotes)
	fmt.Printf("cross-refs:     %d\n", st.CrossRefs)
	fmt.Printf("search terms:   %d\n", st.Terms)
	fmt.Printf("graph nodes:    %d\n", st.GraphNodes)
	fmt.Printf("graph edges:    %d\n", st.GraphEdges)
	fmt.Printf("components:     %d\n", st.GraphComponents)
	fmt.Printf("collation:      %s\n", st.Collation)
	fmt.Printf("batches:        %d\n", st.BatchesCommitted)
	fmt.Printf("fsyncs saved:   %d\n", st.FsyncsSaved)
	fmt.Printf("WAL bytes:      %d\n", st.WALBytes)
	fmt.Printf("snapshot bytes: %d\n", st.SnapshotBytes)
	return nil
}

func cmdReport(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	open := openFlags(fs)
	top := fs.Int("top", 5, "how many most-prolific authors to list")
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()

	st := ix.Stats()
	fmt.Printf("corpus: %d works, %d headings, %d postings (%d student), %d subjects\n\n",
		st.Works, st.Authors, st.Postings, st.StudentNotes, len(ix.Subjects()))

	fmt.Println("headings per letter:")
	maxEntries := 1
	sections := ix.Sections()
	for _, sec := range sections {
		if n := len(sec.Entries); n > maxEntries {
			maxEntries = n
		}
	}
	for _, sec := range sections {
		n := len(sec.Entries)
		bar := strings.Repeat("█", max(1, n*40/maxEntries))
		fmt.Printf("  %c %4d %s\n", sec.Letter, n, bar)
	}

	type prolific struct {
		heading string
		works   int
	}
	var authors []prolific
	for _, sec := range sections {
		for _, e := range sec.Entries {
			if len(e.Works) > 0 {
				authors = append(authors, prolific{authorindex.FormatAuthor(e.Author), len(e.Works)})
			}
		}
	}
	sort.SliceStable(authors, func(i, j int) bool { return authors[i].works > authors[j].works })
	fmt.Printf("\nmost prolific (top %d):\n", *top)
	for i, a := range authors {
		if i >= *top {
			break
		}
		fmt.Printf("  %-40s %d works\n", a.heading, a.works)
	}
	return nil
}

// cmdMetrics prints the bibliometrics snapshot for one heading, or the
// corpus-level summary when no -author is given.
func cmdMetrics(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("metrics", flag.ExitOnError)
	open := openFlags(fs)
	author := fs.String("author", "", `heading, e.g. "Lewin, Jeff L." (default: corpus summary)`)
	scheme := fs.String("scheme", "harmonic", "credit scheme: harmonic, arithmetic, geometric or fractional")
	fs.Parse(args)

	s, err := authorindex.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := open(withScheme(s))
	if err != nil {
		return err
	}
	defer ix.Close()

	if *author == "" {
		sum := ix.MetricsSummary()
		fmt.Printf("works:            %d\n", sum.Works)
		fmt.Printf("contributors:     %d\n", sum.Authors)
		fmt.Printf("postings:         %d\n", sum.Postings)
		fmt.Printf("solo works:       %d\n", sum.SoloWorks)
		fmt.Printf("collab pairs:     %d\n", sum.Pairs)
		fmt.Printf("authors per work: %.2f\n", sum.MeanAuthorsPerWork)
		fmt.Printf("scheme:           %s\n", sum.Scheme)
		return nil
	}
	m, ok := ix.AuthorMetrics(*author)
	if !ok {
		return fmt.Errorf("no heading %q", *author)
	}
	fmt.Println(m.Heading)
	fmt.Printf("  works:          %d (first-authored %d)\n", m.Works, m.FirstAuthored)
	fmt.Printf("  credit:         %.3f weighted (%s), %.3f fractional\n", m.Weighted, *scheme, m.Fractional)
	fmt.Printf("  h-index:        %d\n", m.HIndex)
	fmt.Printf("  collaborators:  %d\n", m.Collaborators)
	kinds := make([]string, 0, len(m.ByKind))
	for kind := range m.ByKind {
		kinds = append(kinds, kind)
	}
	sort.Strings(kinds)
	for _, kind := range kinds {
		fmt.Printf("  kind %-14s %d\n", kind+":", m.ByKind[kind])
	}
	years := make([]int, 0, len(m.ByYear))
	for y := range m.ByYear {
		years = append(years, y)
	}
	sort.Ints(years)
	for _, y := range years {
		fmt.Printf("  year %d:      %d\n", y, m.ByYear[y])
	}
	for _, c := range m.TopCollaborators {
		fmt.Printf("  with %-34s %d works\n", c.Heading, c.Works)
	}
	return nil
}

// cmdRank prints the top contributors under a chosen statistic.
func cmdRank(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("rank", flag.ExitOnError)
	open := openFlags(fs)
	by := fs.String("by", "weighted", "rank key: works, weighted, fractional, h, collabs, first or central")
	limit := fs.Int("limit", 10, "how many authors to list (0 = all, clamped)")
	scheme := fs.String("scheme", "harmonic", "credit scheme: harmonic, arithmetic, geometric or fractional")
	fs.Parse(args)

	key, err := authorindex.ParseRankKey(*by)
	if err != nil {
		return err
	}
	s, err := authorindex.ParseScheme(*scheme)
	if err != nil {
		return err
	}
	ix, err := open(withScheme(s))
	if err != nil {
		return err
	}
	defer ix.Close()

	fmt.Printf("%-4s %-40s %5s %5s %8s %3s %7s\n", "rank", "author", "works", "first", "credit", "h", "collabs")
	for i, m := range ix.TopAuthorsCtx(ctx, key, authorindex.ClampLimit(*limit, 10)) {
		fmt.Printf("%-4d %-40s %5d %5d %8.3f %3d %7d\n",
			i+1, m.Heading, m.Works, m.FirstAuthored, m.Weighted, m.HIndex, m.Collaborators)
	}
	return nil
}

// withDamping is the opener tweak the graph-facing commands share.
func withDamping(d float64) func(*authorindex.Options) {
	return func(o *authorindex.Options) { o.GraphDamping = d }
}

// cmdPath prints the shortest collaboration chain between two headings.
func cmdPath(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("path", flag.ExitOnError)
	open := openFlags(fs)
	from := fs.String("from", "", `source heading, e.g. "Lewin, Jeff L." (required)`)
	to := fs.String("to", "", "target heading (required)")
	fs.Parse(args)
	if *from == "" || *to == "" {
		return errors.New("-from and -to are required")
	}
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	path, ok := ix.CollaborationPath(*from, *to)
	if !ok {
		return fmt.Errorf("no collaboration path from %q to %q", *from, *to)
	}
	fmt.Printf("%d hop(s):\n", len(path)-1)
	for i, h := range path {
		if i == 0 {
			fmt.Printf("  %s\n", h)
		} else {
			fmt.Printf("  └─ %s\n", h)
		}
	}
	return nil
}

// cmdGraph prints the coauthorship-network summary, one author's
// network position, or the most central authors.
func cmdGraph(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("graph", flag.ExitOnError)
	open := openFlags(fs)
	author := fs.String("author", "", "show one heading's network position (default: network summary)")
	central := fs.Int("central", 0, "list the N most central authors instead")
	damping := fs.Float64("damping", 0, "PageRank damping factor (0 = default 0.85)")
	fs.Parse(args)

	ix, err := open(withDamping(*damping))
	if err != nil {
		return err
	}
	defer ix.Close()
	switch {
	case *author != "":
		c, ok := ix.Centrality(*author)
		if !ok {
			return fmt.Errorf("no heading %q", *author)
		}
		cs := ix.Collaborators(*author)
		shared := 0
		for _, n := range cs {
			shared += n.Works
		}
		fmt.Println(*author)
		fmt.Printf("  co-authors:      %d (%d shared works)\n", len(cs), shared)
		fmt.Printf("  centrality:      %.6f\n", c)
		for _, n := range cs {
			fmt.Printf("  with %-34s %d works\n", n.Heading, n.Works)
		}
	case *central > 0:
		fmt.Printf("%-4s %-40s %s\n", "rank", "author", "centrality")
		for i, c := range ix.TopCentral(*central) {
			fmt.Printf("%-4d %-40s %.6f\n", i+1, c.Heading, c.Score)
		}
	default:
		s := ix.GraphSummary()
		fmt.Printf("authors:           %d\n", s.Nodes)
		fmt.Printf("collab pairs:      %d\n", s.Edges)
		fmt.Printf("components:        %d\n", s.Components)
		fmt.Printf("largest component: %d\n", s.LargestComponent)
		fmt.Printf("density:           %.6f\n", s.Density)
		fmt.Printf("damping:           %.2f\n", s.Damping)
		for _, c := range s.TopCentral {
			fmt.Printf("  central: %-34s %.6f\n", c.Heading, c.Score)
		}
	}
	return nil
}

func cmdVerify(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	open := openFlags(fs)
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	if err := ix.Verify(); err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Printf("ok: %d works, %d headings, %d postings all consistent\n",
		st.Works, st.Authors, st.Postings)
	return nil
}

func cmdDupes(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("dupes", flag.ExitOnError)
	open := openFlags(fs)
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	suggestions := ix.DuplicateSuggestions()
	if len(suggestions) == 0 {
		fmt.Println("no duplicate-heading candidates found")
		return nil
	}
	for _, s := range suggestions {
		fmt.Printf("%-18s %s  ↔  %s\n", s.Reason, authorindex.FormatAuthor(s.A), authorindex.FormatAuthor(s.B))
	}
	return nil
}

func cmdCompact(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	open := openFlags(fs)
	fs.Parse(args)
	ix, err := open()
	if err != nil {
		return err
	}
	defer ix.Close()
	if err := ix.Compact(); err != nil {
		return err
	}
	st := ix.Stats()
	fmt.Printf("compacted: snapshot %d bytes, WAL %d bytes\n", st.SnapshotBytes, st.WALBytes)
	return nil
}
