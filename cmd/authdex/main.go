// Command authdex is the command-line front end of the author-index
// engine: generate corpora, build durable indexes, query them, render
// the printed artifact and serve it over HTTP.
//
// Usage:
//
//	authdex gen     -works 1000 -seed 1 -format tsv -out corpus.tsv
//	authdex build   -dir ./idx -in corpus.tsv [-format tsv] [-lenient] [-batch 256]
//	authdex add     -dir ./idx -title T -cite "95:1365 (1993)" -author "Lewin, Jeff L." [-author ...]
//	authdex lookup  -dir ./idx -author "Lewin, Jeff L."
//	authdex prefix  -dir ./idx -p abr [-n 10]
//	authdex search  -dir ./idx -q "surface mining -tax" [-n 10]
//	authdex years   -dir ./idx -from 1980 -to 1989 [-n 10]
//	authdex volume  -dir ./idx -v 95 [-n 10]
//	authdex render  -dir ./idx [-format text] [-out -] [-pagelen 58] [-width 78] [-stats]
//	authdex xref    -dir ./idx -from "Old, Name" -to "New, Name"
//	authdex stats   -dir ./idx
//	authdex metrics -dir ./idx [-author "Lewin, Jeff L."] [-scheme harmonic]
//	authdex rank    -dir ./idx [-by weighted] [-limit 10] [-scheme harmonic]
//	authdex path    -dir ./idx -from "Lewin, Jeff L." -to "Cardi, Vincent P."
//	authdex graph   -dir ./idx [-author "Lewin, Jeff L."] [-central 10] [-damping 0.85]
//	authdex compact -dir ./idx
//	authdex serve   -dir ./idx -addr :8377 [-damping 0.85]
package main

import (
	"context"
	"fmt"
	"log/slog"
	"os"
	"time"

	"repro/internal/trace"
)

type command struct {
	name, summary string
	run           func(ctx context.Context, args []string) error
}

var commands = []command{
	{"gen", "generate a synthetic corpus file", cmdGen},
	{"build", "ingest a corpus file into an index directory", cmdBuild},
	{"add", "add one work", cmdAdd},
	{"lookup", "look up an exact author heading", cmdLookup},
	{"prefix", "list headings by prefix", cmdPrefix},
	{"search", "boolean title search", cmdSearch},
	{"years", "list works in a year range", cmdYears},
	{"volume", "list works in a volume", cmdVolume},
	{"render", "render the author index (text/tsv/markdown/csv/json)", cmdRender},
	{"titles", "render the companion title index (text/tsv/markdown)", cmdTitles},
	{"subjects", "list subject headings or render/query the subject index", cmdSubjects},
	{"xref", "add a see-also cross-reference", cmdXref},
	{"stats", "print index statistics", cmdStats},
	{"metrics", "per-author bibliometrics or the corpus summary", cmdMetrics},
	{"rank", "top contributors by works/credit/h-index/collaboration", cmdRank},
	{"path", "shortest collaboration chain between two headings", cmdPath},
	{"graph", "coauthorship-network summary, author position or top central", cmdGraph},
	{"report", "editorial summary: per-letter histogram, top authors, volumes", cmdReport},
	{"verify", "cross-check store and index invariants", cmdVerify},
	{"dupes", "suggest headings that may be the same person", cmdDupes},
	{"compact", "snapshot and truncate the WAL", cmdCompact},
	{"serve", "serve the index over HTTP", cmdServe},
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	for _, c := range commands {
		if c.name == name {
			ctx, finish := commandTrace(name)
			err := c.run(ctx, os.Args[2:])
			finish()
			if err != nil {
				fmt.Fprintf(os.Stderr, "authdex %s: %v\n", name, err)
				os.Exit(1)
			}
			return
		}
	}
	fmt.Fprintf(os.Stderr, "authdex: unknown command %q\n\n", name)
	usage()
	os.Exit(2)
}

// commandTrace opens a root span for one CLI invocation, mirroring
// the per-request root span the HTTP server starts. With
// AUTHDEX_SLOWLOG set (e.g. "200ms"), a command that runs at least
// that long logs its full span tree to stderr on exit — the same
// per-layer breakdown /debug/traces serves, without a server.
func commandTrace(name string) (context.Context, func()) {
	ctx := context.Background()
	threshold, err := time.ParseDuration(os.Getenv(envSlowlog))
	if err != nil || threshold <= 0 {
		return ctx, func() {}
	}
	tracer := trace.NewTracer(trace.Config{
		Slowlog: threshold,
		Logger:  slog.New(slog.NewTextHandler(os.Stderr, nil)),
	})
	ctx, tr := tracer.StartRoot(ctx, "", "cli "+name)
	return ctx, func() { tr.Finish("cli " + name) }
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: authdex <command> [flags]")
	fmt.Fprintln(os.Stderr, "\ncommands:")
	for _, c := range commands {
		fmt.Fprintf(os.Stderr, "  %-8s %s\n", c.name, c.summary)
	}
	fmt.Fprintln(os.Stderr, "\nrun 'authdex <command> -h' for flags")
}
