package main

import (
	"context"
	"flag"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	authorindex "repro"
	"repro/internal/httpapi"
	"repro/internal/obs"
)

// fakeEnv is a getenv for precedence tests.
func fakeEnv(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

// parseServe parses args through the same FlagSet wiring cmdServe uses
// and applies the given environment.
func parseServe(t *testing.T, args []string, env map[string]string) *serveConfig {
	t.Helper()
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := applyEnv(fs, cfg, fakeEnv(env)); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestServeConfigPrecedence pins the rule: explicit flag > environment
// variable > built-in default, per setting.
func TestServeConfigPrecedence(t *testing.T) {
	// Defaults with nothing set.
	cfg := parseServe(t, nil, nil)
	if cfg.addr != ":8377" || cfg.logLevel != "info" || cfg.readTimeout != 10*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.slowlog != 250*time.Millisecond {
		t.Errorf("slowlog default = %v", cfg.slowlog)
	}

	// Environment fills unset flags.
	env := map[string]string{
		envAddr:        ":9000",
		envLogLevel:    "debug",
		envReadTimeout: "3s",
		envSlowlog:     "75ms",
	}
	cfg = parseServe(t, nil, env)
	if cfg.addr != ":9000" || cfg.logLevel != "debug" || cfg.readTimeout != 3*time.Second {
		t.Errorf("env fallback = %+v", cfg)
	}
	if cfg.slowlog != 75*time.Millisecond {
		t.Errorf("slowlog env fallback = %v", cfg.slowlog)
	}

	// Explicit flags beat the environment, per setting: addr comes from
	// the flag, the untouched settings still come from the environment.
	cfg = parseServe(t, []string{"-addr", ":7000", "-slowlog", "1s"}, env)
	if cfg.addr != ":7000" {
		t.Errorf("flag did not beat env: addr = %q", cfg.addr)
	}
	if cfg.slowlog != time.Second {
		t.Errorf("slowlog flag did not beat env: %v", cfg.slowlog)
	}
	if cfg.logLevel != "debug" || cfg.readTimeout != 3*time.Second {
		t.Errorf("env lost for unset flags: %+v", cfg)
	}

	// A flag explicitly set to its default value still beats the env.
	cfg = parseServe(t, []string{"-addr", ":8377", "-slowlog", "250ms"}, env)
	if cfg.addr != ":8377" {
		t.Errorf("explicit default did not beat env: addr = %q", cfg.addr)
	}
	if cfg.slowlog != 250*time.Millisecond {
		t.Errorf("explicit default slowlog did not beat env: %v", cfg.slowlog)
	}

	// A zero slowlog disables tracing's slow path entirely.
	cfg = parseServe(t, []string{"-slowlog", "0"}, env)
	if cfg.slowlog != 0 {
		t.Errorf("slowlog 0 = %v", cfg.slowlog)
	}
}

// TestServeConfigWriteTimeoutEnv pins the AUTHDEX_WRITE_TIMEOUT
// fallback for -write-timeout under the same precedence rules as the
// other settings.
func TestServeConfigWriteTimeoutEnv(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		env     map[string]string
		want    time.Duration
		wantErr bool
	}{
		{"default", nil, nil, 60 * time.Second, false},
		{"env fills unset flag", nil, map[string]string{envWriteTimeout: "5s"}, 5 * time.Second, false},
		{"flag beats env", []string{"-write-timeout", "2s"}, map[string]string{envWriteTimeout: "5s"}, 2 * time.Second, false},
		{"explicit default beats env", []string{"-write-timeout", "60s"}, map[string]string{envWriteTimeout: "5s"}, 60 * time.Second, false},
		{"bad env rejected", nil, map[string]string{envWriteTimeout: "soon"}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("serve", flag.ContinueOnError)
			cfg := serveFlags(fs)
			if err := fs.Parse(tc.args); err != nil {
				t.Fatal(err)
			}
			err := applyEnv(fs, cfg, fakeEnv(tc.env))
			if tc.wantErr {
				if err == nil {
					t.Fatal("bad AUTHDEX_WRITE_TIMEOUT accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if cfg.writeTimeout != tc.want {
				t.Errorf("writeTimeout = %v, want %v", cfg.writeTimeout, tc.want)
			}
		})
	}
}

// startServe runs serve() on a loopback port and returns the bound
// address and the channel its exit error lands on.
func startServe(t *testing.T, ctx context.Context, drain time.Duration) (string, chan error) {
	t.Helper()
	ix, err := authorindex.Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	logger := slog.New(slog.NewTextHandler(io.Discard, nil))
	cfg := &serveConfig{
		addr:         "127.0.0.1:0",
		readTimeout:  5 * time.Second,
		writeTimeout: 5 * time.Second,
		drainTimeout: drain,
	}
	api := httpapi.New(ix, httpapi.Config{Logger: logger, Registry: obs.NewRegistry()})
	addrCh := make(chan string, 1)
	done := make(chan error, 1)
	go func() { done <- serve(ctx, api, ix, cfg, logger, addrCh) }()
	select {
	case addr := <-addrCh:
		return addr, done
	case err := <-done:
		t.Fatalf("serve exited before listening: %v", err)
		return "", nil
	}
}

// TestServeShutdownOnSignal: a real SIGTERM drains the server and
// serve returns nil with the listener closed and the index closed —
// the `kill -TERM` acceptance path.
func TestServeShutdownOnSignal(t *testing.T) {
	addr, done := startServe(t, context.Background(), 5*time.Second)

	resp, err := http.Get("http://" + addr + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz = %d, want 200", resp.StatusCode)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve after SIGTERM = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve did not exit within the drain window after SIGTERM")
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("listener still accepting after shutdown")
	}
}

// TestServeShutdownAbortsStragglers: a connection stuck mid-request
// cannot hold shutdown past the drain timeout; serve force-closes it
// and still exits cleanly.
func TestServeShutdownAbortsStragglers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	addr, done := startServe(t, ctx, 300*time.Millisecond)

	// A half-sent request parks the connection in the active state.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := io.WriteString(conn, "GET /stats HTTP/1.1\r\nHost: x\r\n"); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	cancel() // same path a signal takes: the serve ctx ends
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serve = %v, want nil after forced drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("straggling connection held shutdown past the drain timeout")
	}
	if elapsed := time.Since(start); elapsed < 250*time.Millisecond {
		t.Errorf("shutdown finished in %v, before the drain window could have expired", elapsed)
	}
}

func TestServeConfigBadSlowlogEnv(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := applyEnv(fs, cfg, fakeEnv(map[string]string{envSlowlog: "fast"}))
	if err == nil {
		t.Error("bad AUTHDEX_SLOWLOG accepted")
	}
}

func TestServeConfigBadEnvDuration(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := applyEnv(fs, cfg, fakeEnv(map[string]string{envReadTimeout: "not-a-duration"}))
	if err == nil {
		t.Error("bad AUTHDEX_READ_TIMEOUT accepted")
	}
}

func TestServeLoggerValidation(t *testing.T) {
	for _, ok := range []serveConfig{
		{logLevel: "debug", logFormat: "text"},
		{logLevel: "INFO", logFormat: "json"},
		{logLevel: "warn", logFormat: "TEXT"},
		{logLevel: "error", logFormat: "json"},
	} {
		if _, err := ok.logger(); err != nil {
			t.Errorf("logger(%+v): %v", ok, err)
		}
	}
	for _, bad := range []serveConfig{
		{logLevel: "verbose", logFormat: "text"},
		{logLevel: "info", logFormat: "xml"},
	} {
		if _, err := bad.logger(); err == nil {
			t.Errorf("logger(%+v) accepted", bad)
		}
	}
}
