package main

import (
	"flag"
	"testing"
	"time"
)

// fakeEnv is a getenv for precedence tests.
func fakeEnv(m map[string]string) func(string) string {
	return func(k string) string { return m[k] }
}

// parseServe parses args through the same FlagSet wiring cmdServe uses
// and applies the given environment.
func parseServe(t *testing.T, args []string, env map[string]string) *serveConfig {
	t.Helper()
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if err := applyEnv(fs, cfg, fakeEnv(env)); err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestServeConfigPrecedence pins the rule: explicit flag > environment
// variable > built-in default, per setting.
func TestServeConfigPrecedence(t *testing.T) {
	// Defaults with nothing set.
	cfg := parseServe(t, nil, nil)
	if cfg.addr != ":8377" || cfg.logLevel != "info" || cfg.readTimeout != 10*time.Second {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.slowlog != 250*time.Millisecond {
		t.Errorf("slowlog default = %v", cfg.slowlog)
	}

	// Environment fills unset flags.
	env := map[string]string{
		envAddr:        ":9000",
		envLogLevel:    "debug",
		envReadTimeout: "3s",
		envSlowlog:     "75ms",
	}
	cfg = parseServe(t, nil, env)
	if cfg.addr != ":9000" || cfg.logLevel != "debug" || cfg.readTimeout != 3*time.Second {
		t.Errorf("env fallback = %+v", cfg)
	}
	if cfg.slowlog != 75*time.Millisecond {
		t.Errorf("slowlog env fallback = %v", cfg.slowlog)
	}

	// Explicit flags beat the environment, per setting: addr comes from
	// the flag, the untouched settings still come from the environment.
	cfg = parseServe(t, []string{"-addr", ":7000", "-slowlog", "1s"}, env)
	if cfg.addr != ":7000" {
		t.Errorf("flag did not beat env: addr = %q", cfg.addr)
	}
	if cfg.slowlog != time.Second {
		t.Errorf("slowlog flag did not beat env: %v", cfg.slowlog)
	}
	if cfg.logLevel != "debug" || cfg.readTimeout != 3*time.Second {
		t.Errorf("env lost for unset flags: %+v", cfg)
	}

	// A flag explicitly set to its default value still beats the env.
	cfg = parseServe(t, []string{"-addr", ":8377", "-slowlog", "250ms"}, env)
	if cfg.addr != ":8377" {
		t.Errorf("explicit default did not beat env: addr = %q", cfg.addr)
	}
	if cfg.slowlog != 250*time.Millisecond {
		t.Errorf("explicit default slowlog did not beat env: %v", cfg.slowlog)
	}

	// A zero slowlog disables tracing's slow path entirely.
	cfg = parseServe(t, []string{"-slowlog", "0"}, env)
	if cfg.slowlog != 0 {
		t.Errorf("slowlog 0 = %v", cfg.slowlog)
	}
}

func TestServeConfigBadSlowlogEnv(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := applyEnv(fs, cfg, fakeEnv(map[string]string{envSlowlog: "fast"}))
	if err == nil {
		t.Error("bad AUTHDEX_SLOWLOG accepted")
	}
}

func TestServeConfigBadEnvDuration(t *testing.T) {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	cfg := serveFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	err := applyEnv(fs, cfg, fakeEnv(map[string]string{envReadTimeout: "not-a-duration"}))
	if err == nil {
		t.Error("bad AUTHDEX_READ_TIMEOUT accepted")
	}
}

func TestServeLoggerValidation(t *testing.T) {
	for _, ok := range []serveConfig{
		{logLevel: "debug", logFormat: "text"},
		{logLevel: "INFO", logFormat: "json"},
		{logLevel: "warn", logFormat: "TEXT"},
		{logLevel: "error", logFormat: "json"},
	} {
		if _, err := ok.logger(); err != nil {
			t.Errorf("logger(%+v): %v", ok, err)
		}
	}
	for _, bad := range []serveConfig{
		{logLevel: "verbose", logFormat: "text"},
		{logLevel: "info", logFormat: "xml"},
	} {
		if _, err := bad.logger(); err == nil {
			t.Errorf("logger(%+v) accepted", bad)
		}
	}
}
