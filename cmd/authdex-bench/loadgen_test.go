package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenSmoke runs the full loadgen path — self-hosted server,
// open-loop dispatch, metrics scrape, report write — at a tiny scale
// and checks the report invariants CI relies on: requests were sent,
// none failed, every route has quantiles, and the scrape is non-empty.
func TestLoadgenSmoke(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench6.json")
	err := cmdLoadgen([]string{
		"-works", "300", "-duration", "1s", "-rate", "300", "-out", out, "-check",
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("requests=%d errors=%d, want >0 and 0", rep.Requests, rep.Errors)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %f", rep.ThroughputRPS)
	}
	if len(rep.Routes) == 0 {
		t.Fatal("no per-route stats")
	}
	for _, r := range rep.Routes {
		if r.Count == 0 || r.P50Ns == 0 || r.P999Ns < r.P50Ns {
			t.Errorf("route %s: count=%d p50=%d p999=%d", r.Route, r.Count, r.P50Ns, r.P999Ns)
		}
	}
	if len(rep.ServerMetrics) == 0 {
		t.Error("no server metrics scraped")
	}
}
