package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenSmoke runs the full loadgen path — self-hosted durable
// server, open-loop dispatch, metrics and trace scrapes, report write —
// at a tiny scale and checks the report invariants CI relies on:
// requests were sent, none failed, every route has quantiles, both
// scrapes are non-empty, and the captured traces carry real span trees.
func TestLoadgenSmoke(t *testing.T) {
	tmp := t.TempDir()
	out := filepath.Join(tmp, "bench.json")
	err := cmdLoadgen([]string{
		"-works", "300", "-duration", "1s", "-rate", "300",
		"-dir", filepath.Join(tmp, "idx"), "-out", out, "-check",
	})
	if err != nil {
		t.Fatalf("loadgen: %v", err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep benchReport
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Requests == 0 || rep.Errors != 0 {
		t.Errorf("requests=%d errors=%d, want >0 and 0", rep.Requests, rep.Errors)
	}
	if rep.ThroughputRPS <= 0 {
		t.Errorf("throughput = %f", rep.ThroughputRPS)
	}
	if len(rep.Routes) == 0 {
		t.Fatal("no per-route stats")
	}
	for _, r := range rep.Routes {
		if r.Count == 0 || r.P50Ns == 0 || r.P999Ns < r.P50Ns {
			t.Errorf("route %s: count=%d p50=%d p999=%d", r.Route, r.Count, r.P50Ns, r.P999Ns)
		}
	}
	if len(rep.ServerMetrics) == 0 {
		t.Error("no server metrics scraped")
	}
	if len(rep.ServerTraces) == 0 {
		t.Fatal("no server traces scraped")
	}
	var withSpans int
	for _, fam := range rep.ServerTraces {
		if len(fam.Recent) != 0 {
			t.Errorf("family %s kept recent traces; the report wants only the slowest", fam.Family)
		}
		if len(fam.Slowest) == 0 || len(fam.Slowest) > 3 {
			t.Errorf("family %s kept %d slowest traces, want 1..3", fam.Family, len(fam.Slowest))
		}
		for _, td := range fam.Slowest {
			if td.DurNS <= 0 {
				t.Errorf("family %s trace has no duration: %+v", fam.Family, td.Root)
			}
			if len(td.Root.Children) > 0 {
				withSpans++
			}
		}
	}
	// The interesting families (search, writes) must carry real span
	// trees; only trivial endpoints may be childless.
	if withSpans == 0 {
		t.Error("no captured trace has a span tree")
	}
}
