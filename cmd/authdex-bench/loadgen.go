package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	authorindex "repro"
	"repro/internal/httpapi"
	"repro/internal/obs"
	"repro/internal/trace"
)

// benchPR numbers the BENCH artifact this harness emits; bump it per
// PR so each run's report lands beside its predecessors instead of
// overwriting them.
const benchPR = 10

// cmdLoadgen is the HTTP load harness: it replays a mixed query/ingest
// workload against an authdex server at a fixed dispatch rate (open
// loop — arrivals do not wait for completions), records client-side
// latency per route, scrapes the server's /debug/metrics and
// /debug/traces at the end, and writes the whole run to a JSON report
// (BENCH_<pr>.json by default) whose server_traces block carries the
// slowest server-side span trees — the report explains its own tail.
//
// With no -target it self-hosts: an index is bulk-loaded with a
// generated corpus and served over a loopback listener, so the run
// measures the full HTTP stack without an external setup step. The
// self-hosted index is in-memory unless -dir points at a directory,
// in which case writes pay real WAL fsyncs and the captured write
// traces include the wal.encode/wal.fsync spans.
// Every request in the generated workload is valid against that corpus
// (known IDs, well-formed bodies), so a healthy run reports 0 errors —
// which CI asserts.
func cmdLoadgen(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ExitOnError)
	target := fs.String("target", "", "base URL of a running authdex server (default: self-host an in-memory index)")
	works := fs.Int("works", 10_000, "corpus size for the self-hosted index and workload synthesis")
	seed := fs.Int64("seed", 1, "corpus and workload seed")
	duration := fs.Duration("duration", 10*time.Second, "how long to dispatch load")
	rate := fs.Int("rate", 2000, "dispatch rate, requests/second (open loop)")
	inflight := fs.Int("max-inflight", 256, "backpressure cap on concurrent requests")
	dir := fs.String("dir", "", "self-host on a durable index at this directory (default: in-memory, no WAL)")
	out := fs.String("out", fmt.Sprintf("BENCH_%d.json", benchPR), "report path")
	check := fs.Bool("check", false, "exit nonzero unless requests were sent and every one succeeded")
	writes := fs.Float64("writes", 0.1, "fraction of dispatched requests that are writes (single adds plus POST /works:batch group commits)")
	baseline := fs.String("baseline", "", "prior BENCH report; prints before/after p999 per route against it")
	shards := fs.Int("shards", 0, "shard count for the self-hosted index (0 = 1, unsharded)")
	sweep := fs.String("sweep", "", "comma-separated shard counts (e.g. 1,4,16): self-host once per count and emit every run in one report; overrides -target and -shards")
	fs.Parse(args)
	if *writes < 0 || *writes > 1 {
		return fmt.Errorf("loadgen: -writes %v out of range [0,1]", *writes)
	}

	corpus := authorindex.GenerateCorpus(authorindex.CorpusConfig{Seed: *seed, Works: *works, ZipfS: 1.1})

	// runOnce self-hosts (unless targeting) at the given shard count and
	// replays the workload; every sweep entry comes from this same path.
	runOnce := func(nShards int, selfHostOnly bool) (*benchReport, error) {
		base := *target
		if selfHostOnly {
			base = ""
		}
		var shutdown func()
		if base == "" {
			d := *dir
			if d != "" && selfHostOnly {
				// One durable index per sweep entry, not one shared WAL.
				d = fmt.Sprintf("%s/shards-%d", strings.TrimRight(d, "/"), nShards)
				if err := os.MkdirAll(d, 0o755); err != nil {
					return nil, err
				}
			}
			url, sd, err := selfHost(corpus, d, nShards)
			if err != nil {
				return nil, err
			}
			shutdown = sd
			base = url
		}
		if shutdown != nil {
			defer shutdown()
		}
		base = strings.TrimRight(base, "/")

		plan := buildPlan(corpus, *seed, *writes)
		res := runLoad(base, plan, *rate, *duration, *inflight)
		res.ServerMetrics = scrapeMetrics(base)
		res.ServerTraces = scrapeTraces(base)
		res.Config = loadgenConfig{
			Target: base, Works: *works, Seed: *seed,
			DurationSec: duration.Seconds(), Rate: *rate,
			WriteFrac: *writes, Shards: max(nShards, 1),
		}
		fmt.Printf("loadgen[shards=%d]: %d requests in %.1fs (%.0f req/s), %d errors\n",
			max(nShards, 1), res.Requests, res.ElapsedSec, res.ThroughputRPS, res.Errors)
		for _, r := range res.Routes {
			fmt.Printf("   %-22s %7d reqs  p50 %s  p95 %s  p99 %s  p999 %s\n",
				r.Route, r.Count, fmtNs(r.P50Ns), fmtNs(r.P95Ns), fmtNs(r.P99Ns), fmtNs(r.P999Ns))
		}
		if *baseline != "" {
			if err := printBaselineDelta(*baseline, res); err != nil {
				fmt.Printf("   (baseline %s unusable: %v)\n", *baseline, err)
			}
		}
		if *check {
			if res.Requests == 0 {
				return nil, fmt.Errorf("loadgen check: no requests dispatched")
			}
			if res.Errors != 0 {
				return nil, fmt.Errorf("loadgen check: %d of %d requests failed", res.Errors, res.Requests)
			}
			if len(res.Routes) == 0 {
				return nil, fmt.Errorf("loadgen check: no per-route stats recorded")
			}
		}
		return res, nil
	}

	var report *benchReport
	if *sweep == "" {
		res, err := runOnce(*shards, false)
		if err != nil {
			return err
		}
		report = res
	} else {
		// Shard sweep: identical corpus, workload and rate per entry, so
		// the per-entry route tails are directly comparable.
		report = &benchReport{Experiment: fmt.Sprintf("bench_%d_shard_sweep", benchPR)}
		for _, part := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil || n < 1 {
				return fmt.Errorf("loadgen: bad -sweep entry %q", part)
			}
			res, err := runOnce(n, true)
			if err != nil {
				return err
			}
			// Traces per entry would triple the artifact without adding
			// cross-shard signal; the per-route tails carry the story.
			res.ServerTraces = nil
			report.Sweep = append(report.Sweep, res)
			report.Requests += res.Requests
			report.Errors += res.Errors
		}
	}

	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: report -> %s\n", *out)
	return nil
}

// loadgenConfig echoes the run parameters into the report.
type loadgenConfig struct {
	Target      string  `json:"target"`
	Works       int     `json:"works"`
	Seed        int64   `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	Rate        int     `json:"rate_rps"`
	WriteFrac   float64 `json:"write_frac"`
	Shards      int     `json:"shards,omitempty"`
}

// printBaselineDelta reads a prior BENCH report and prints, per route
// present in both runs, the tail shift: before/after p999 (and p99)
// with the improvement factor. This is the before/after evidence the
// snapshot-read work is judged by — the write stream is expected to
// stop dragging read tails.
func printBaselineDelta(path string, res *benchReport) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base benchReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return err
	}
	before := map[string]routeReport{}
	for _, r := range base.Routes {
		before[r.Route] = r
	}
	fmt.Printf("   vs %s (%s):\n", path, base.Experiment)
	for _, r := range res.Routes {
		b, ok := before[r.Route]
		if !ok {
			continue
		}
		factor := func(was, now int64) string {
			if now <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1fx", float64(was)/float64(now))
		}
		fmt.Printf("   %-22s p99 %s -> %s (%s)  p999 %s -> %s (%s)\n",
			r.Route,
			fmtNs(b.P99Ns), fmtNs(r.P99Ns), factor(b.P99Ns, r.P99Ns),
			fmtNs(b.P999Ns), fmtNs(r.P999Ns), factor(b.P999Ns, r.P999Ns))
	}
	return nil
}

// routeReport is the client-observed latency profile of one route.
type routeReport struct {
	Route  string `json:"route"`
	Count  int64  `json:"count"`
	Errors int64  `json:"errors"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
	MaxNs  int64  `json:"max_ns"`
}

// benchReport is the BENCH_<pr>.json schema.
type benchReport struct {
	Experiment    string        `json:"experiment"`
	Config        loadgenConfig `json:"config"`
	ElapsedSec    float64       `json:"elapsed_sec"`
	Requests      int64         `json:"requests"`
	Errors        int64         `json:"errors"`
	ThroughputRPS float64       `json:"throughput_rps"`
	Routes        []routeReport `json:"routes"`
	ServerMetrics []string      `json:"server_metrics,omitempty"`
	// ServerTraces carries, per op family, the slowest server-side
	// span trees captured during the run (scraped from /debug/traces),
	// so the report's tail latencies come with their causal story.
	ServerTraces []trace.FamilySnapshot `json:"server_traces,omitempty"`
	// Sweep, when set, holds one full run per shard count (-sweep); the
	// top-level report then only aggregates request and error totals.
	Sweep []*benchReport `json:"sweep,omitempty"`
}

// selfHost bulk-loads the corpus into an in-memory index and serves it
// on a loopback listener through the same httpapi surface `authdex
// serve` uses (process-wide registry, so /debug/metrics carries the
// engine, WAL and runtime series too).
func selfHost(corpus []*authorindex.Work, dir string, shards int) (string, func(), error) {
	ix, err := authorindex.Open(dir, &authorindex.Options{Shards: shards})
	if err != nil {
		return "", nil, err
	}
	const chunk = 1024
	for s := 0; s < len(corpus); s += chunk {
		end := min(s+chunk, len(corpus))
		batch := make([]authorindex.Work, 0, end-s)
		for _, w := range corpus[s:end] {
			batch = append(batch, *w) // keep generated IDs 1..N
		}
		if _, err := ix.AddBatch(batch); err != nil {
			ix.Close()
			return "", nil, err
		}
	}
	api := httpapi.New(ix, httpapi.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		ix.Close()
		return "", nil, err
	}
	srv := &http.Server{
		Handler: api.Handler(),
		// The generator is the only client, but a wedged run must not
		// leave connections (or the CI job) hanging forever.
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 2 * time.Minute,
		IdleTimeout:  2 * time.Minute,
	}
	go srv.Serve(ln)
	shutdown := func() {
		// Drain instead of slamming the door: the final scrape of
		// /debug/metrics and /debug/traces may still be in flight.
		api.BeginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			srv.Close()
		}
		ix.Close()
	}
	return "http://" + ln.Addr().String(), shutdown, nil
}

// wireOp is one planned request.
type wireOp struct {
	route  string // client-side label, matches the server's pattern
	method string
	path   string
	body   string
}

// buildPlan synthesizes a deterministic mixed workload from the corpus:
// title search, author prefix scans, point gets, year ranges, rankings,
// subject listings and a write stream (single adds plus group-commit
// POST /works:batch). writeFrac is the fraction of the schedule that is
// writes (80% single adds, 20% five-work batches); the read mix keeps
// its relative proportions in the remaining share. Everything is valid
// against the corpus, so a correct server answers every request with 2xx.
func buildPlan(corpus []*authorindex.Work, seed int64, writeFrac float64) []wireOp {
	r := rand.New(rand.NewSource(seed + 42))

	var terms, prefixes []string
	for _, w := range corpus {
		for _, f := range strings.Fields(w.Title) {
			f = strings.Trim(strings.ToLower(f), ",.:;")
			if len(f) > 4 {
				terms = append(terms, f)
			}
		}
		for _, a := range w.Authors {
			if len(a.Family) >= 2 {
				prefixes = append(prefixes, strings.ToLower(a.Family[:2]))
			}
		}
	}
	minYear, maxYear := corpus[0].Citation.Year, corpus[0].Citation.Year
	for _, w := range corpus {
		minYear = min(minYear, w.Citation.Year)
		maxYear = max(maxYear, w.Citation.Year)
	}

	postBody := func(i int) string {
		return fmt.Sprintf(`{"title":"Loadgen Work %d","citation":"998:%d (1997)","authors":["Loadgen, Author %c."]}`,
			i, 1+i%1400, 'A'+i%26)
	}
	// Cumulative cut points: the historical read mix (30/20/20/10/5/5 of
	// a 90% read share) rescaled to 1-writeFrac, then single adds vs
	// batches splitting the write share 80/20.
	read := 1 - writeFrac
	cut := [7]float64{}
	for i, frac := range []float64{0.30, 0.20, 0.20, 0.10, 0.05, 0.05} {
		prev := 0.0
		if i > 0 {
			prev = cut[i-1]
		}
		cut[i] = prev + frac/0.90*read
	}
	cut[6] = read + 0.8*writeFrac
	const planSize = 4096
	plan := make([]wireOp, 0, planSize)
	for i := 0; i < planSize; i++ {
		switch p := r.Float64(); {
		case p < cut[0]:
			plan = append(plan, wireOp{"GET /search", "GET", "/search?q=" + terms[r.Intn(len(terms))] + "&limit=20", ""})
		case p < cut[1]:
			plan = append(plan, wireOp{"GET /authors", "GET", "/authors?prefix=" + prefixes[r.Intn(len(prefixes))] + "&limit=20", ""})
		case p < cut[2]:
			plan = append(plan, wireOp{"GET /works/{id}", "GET", fmt.Sprintf("/works/%d", 1+r.Intn(len(corpus))), ""})
		case p < cut[3]:
			from := minYear + r.Intn(maxYear-minYear+1)
			plan = append(plan, wireOp{"GET /years", "GET", fmt.Sprintf("/years?from=%d&to=%d&limit=20", from, from+2), ""})
		case p < cut[4]:
			plan = append(plan, wireOp{"GET /rank", "GET", "/rank?by=weighted&limit=10", ""})
		case p < cut[5]:
			plan = append(plan, wireOp{"GET /subjects", "GET", "/subjects", ""})
		case p < cut[6]:
			plan = append(plan, wireOp{"POST /works", "POST", "/works", postBody(i)})
		default:
			var sb strings.Builder
			sb.WriteByte('[')
			for j := 0; j < 5; j++ {
				if j > 0 {
					sb.WriteByte(',')
				}
				sb.WriteString(postBody(i*8 + j))
			}
			sb.WriteByte(']')
			plan = append(plan, wireOp{"POST /works:batch", "POST", "/works:batch", sb.String()})
		}
	}
	return plan
}

// runLoad dispatches the plan open-loop at the target rate: arrivals
// are scheduled by wall clock, not by completions, so server slowdowns
// surface as latency (queueing) instead of silently shedding load. The
// in-flight cap is the only backpressure, to keep socket counts sane.
func runLoad(base string, plan []wireOp, rate int, duration time.Duration, maxInflight int) *benchReport {
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        maxInflight,
			MaxIdleConnsPerHost: maxInflight,
		},
	}
	reg := obs.NewRegistry()
	var (
		wg          sync.WaitGroup
		requests    atomic.Int64
		errs        atomic.Int64
		routeErrs   sync.Map // route -> *atomic.Int64
		sem         = make(chan struct{}, maxInflight)
		start       = time.Now()
		dispatched  int64
		totalBudget = int64(float64(rate) * duration.Seconds())
	)
	hist := func(route string) *obs.Histogram {
		return reg.Histogram("loadgen_request_duration_seconds",
			"Client-observed request latency.", "route", route)
	}
	for time.Since(start) < duration {
		elapsed := time.Since(start).Seconds()
		want := min(int64(float64(rate)*elapsed), totalBudget)
		for dispatched < want {
			op := plan[dispatched%int64(len(plan))]
			dispatched++
			wg.Add(1)
			sem <- struct{}{}
			go func(op wireOp) {
				defer wg.Done()
				defer func() { <-sem }()
				var body io.Reader
				if op.body != "" {
					body = strings.NewReader(op.body)
				}
				req, err := http.NewRequest(op.method, base+op.path, body)
				if err != nil {
					errs.Add(1)
					return
				}
				if op.body != "" {
					req.Header.Set("Content-Type", "application/json")
				}
				t0 := time.Now()
				resp, err := client.Do(req)
				d := time.Since(t0)
				requests.Add(1)
				hist(op.route).Observe(d)
				ok := err == nil && resp.StatusCode >= 200 && resp.StatusCode < 300
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				if !ok {
					errs.Add(1)
					v, _ := routeErrs.LoadOrStore(op.route, new(atomic.Int64))
					v.(*atomic.Int64).Add(1)
				}
			}(op)
		}
		time.Sleep(2 * time.Millisecond)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &benchReport{
		Experiment:    fmt.Sprintf("bench_%d_loadgen", benchPR),
		ElapsedSec:    elapsed.Seconds(),
		Requests:      requests.Load(),
		Errors:        errs.Load(),
		ThroughputRPS: float64(requests.Load()) / elapsed.Seconds(),
	}
	seen := map[string]bool{}
	for _, op := range plan {
		if seen[op.route] {
			continue
		}
		seen[op.route] = true
		snap := hist(op.route).Snapshot()
		if snap.Count == 0 {
			continue
		}
		var rerr int64
		if v, ok := routeErrs.Load(op.route); ok {
			rerr = v.(*atomic.Int64).Load()
		}
		res.Routes = append(res.Routes, routeReport{
			Route:  op.route,
			Count:  snap.Count,
			Errors: rerr,
			MeanNs: int64(snap.Mean()),
			P50Ns:  snap.Quantile(0.50),
			P95Ns:  snap.Quantile(0.95),
			P99Ns:  snap.Quantile(0.99),
			P999Ns: snap.Quantile(0.999),
			MaxNs:  snap.Max,
		})
	}
	sort.Slice(res.Routes, func(i, j int) bool { return res.Routes[i].Route < res.Routes[j].Route })
	return res
}

// scrapeMetrics pulls the server's Prometheus exposition and keeps the
// summary series (every line except the histogram bucket ladders, which
// would dominate the report without adding readable signal).
func scrapeMetrics(base string) []string {
	resp, err := http.Get(base + "/debug/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return nil
	}
	var kept []string
	for _, line := range strings.Split(string(blob), "\n") {
		if line == "" || strings.HasPrefix(line, "#") || strings.Contains(line, "_bucket{") {
			continue
		}
		kept = append(kept, line)
	}
	return kept
}

// scrapeTraces pulls the server's retained traces and keeps the
// slowest few per op family — the recent ring is dropped because the
// report wants the tail's explanation, not a request transcript.
func scrapeTraces(base string) []trace.FamilySnapshot {
	resp, err := http.Get(base + "/debug/traces?format=json")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var snap []trace.FamilySnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&snap); err != nil {
		return nil
	}
	const keep = 3
	for i := range snap {
		snap[i].Recent = nil
		if len(snap[i].Slowest) > keep {
			snap[i].Slowest = snap[i].Slowest[:keep]
		}
	}
	return snap
}

func fmtNs(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}
