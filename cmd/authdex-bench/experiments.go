package main

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	authorindex "repro"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/inverted"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/storage"
	"repro/internal/wal"
)

func corpusSizes(c config) []int {
	if c.quick {
		return []int{1_000, 10_000, 50_000}
	}
	return []int{1_000, 10_000, 100_000, 500_000}
}

// E1: build throughput vs corpus size.
func runE1(c config) {
	t := &table{header: []string{"works", "headings", "postings", "build", "works/s"}}
	for _, n := range corpusSizes(c) {
		works := gen.Generate(gen.Config{Seed: c.seed, Works: n, ZipfS: 1.1})
		start := time.Now()
		ix, err := core.Rebuild(collate.Default(), works)
		if err != nil {
			panic(err)
		}
		d := time.Since(start)
		st := ix.Stats()
		t.add(fmt.Sprint(n), fmt.Sprint(st.Authors), fmt.Sprint(st.Postings),
			d.Round(time.Millisecond).String(), persec(d, n))
	}
	t.print()
}

// E2: point lookups across the three ordered containers.
func runE2(c config) {
	sizes := []int{1_000, 10_000, 100_000}
	if c.quick {
		sizes = []int{1_000, 10_000}
	}
	const lookups = 20_000
	t := &table{header: []string{"keys", "container", "build", "ns/lookup", "speedup vs scan"}}
	for _, n := range sizes {
		keys := make([][]byte, n)
		for i := range keys {
			keys[i] = []byte(fmt.Sprintf("key-%09d", i*7919%n*1000+i))
		}
		probe := make([][]byte, lookups)
		r := rand.New(rand.NewSource(c.seed))
		for i := range probe {
			probe[i] = keys[r.Intn(n)]
		}
		type result struct {
			name   string
			build  time.Duration
			lookup time.Duration
			nOps   int
		}
		var results []result
		measure := func(name string, m btree.OrderedMap[int], nOps int) {
			start := time.Now()
			for i, k := range keys {
				m.Set(k, i)
			}
			build := time.Since(start)
			start = time.Now()
			for i := 0; i < nOps; i++ {
				m.Get(probe[i%len(probe)])
			}
			results = append(results, result{name, build, time.Since(start), nOps})
		}
		measure("btree", btree.New[int](), lookups)
		measure("sorted-slice", btree.NewSortedSlice[int](), lookups)
		// Linear scan is O(n); cap its probes so the run stays bounded.
		scanOps := lookups
		if n >= 100_000 {
			scanOps = 200
		} else if n >= 10_000 {
			scanOps = 2_000
		}
		measure("linear-scan", btree.NewLinearScan[int](), scanOps)

		scanNs := float64(results[2].lookup.Nanoseconds()) / float64(results[2].nOps)
		for _, res := range results {
			perOp := float64(res.lookup.Nanoseconds()) / float64(res.nOps)
			t.add(fmt.Sprint(n), res.name, res.build.Round(time.Millisecond).String(),
				fmt.Sprintf("%.0f", perOp), fmt.Sprintf("%.1fx", scanNs/perOp))
		}
	}
	t.print()
}

// E3: incremental maintenance vs full rebuild at varying batch sizes.
func runE3(c config) {
	base := 100_000
	if c.quick {
		base = 20_000
	}
	works := gen.Generate(gen.Config{Seed: c.seed, Works: base + 10_000, ZipfS: 1.1})
	baseWorks, extra := works[:base], works[base:]
	ix, err := core.Rebuild(collate.Default(), baseWorks)
	if err != nil {
		panic(err)
	}
	t := &table{header: []string{"batch", "incremental", "full rebuild", "winner"}}
	for _, b := range []int{1, 10, 100, 1_000, 10_000} {
		batch := extra[:b]
		start := time.Now()
		for _, w := range batch {
			if err := ix.Add(w); err != nil {
				panic(err)
			}
		}
		inc := time.Since(start)
		// Undo so the next batch starts from the same base.
		for _, w := range batch {
			ix.Remove(w)
		}
		start = time.Now()
		if _, err := core.Rebuild(collate.Default(), append(baseWorks[:base:base], batch...)); err != nil {
			panic(err)
		}
		full := time.Since(start)
		winner := "incremental"
		if full < inc {
			winner = "rebuild"
		}
		t.add(fmt.Sprint(b), inc.Round(time.Microsecond).String(),
			full.Round(time.Millisecond).String(), winner)
	}
	t.print()
}

// E10: author metrics — per-mutation cost of incremental maintenance
// vs corpus size (must stay flat), top-k ranking latency, and the full
// rebuild baseline.
func runE10(c config) {
	const rounds = 2_000
	t := &table{header: []string{"corpus", "authors", "ns/update", "top-10", "rebuild", "rank/s"}}
	for _, n := range corpusSizes(c) {
		all := gen.Generate(gen.Config{Seed: c.seed, Works: n + 1, ZipfS: 1.1})
		works, extra := all[:n], all[n]
		tr := metrics.NewEngine(metrics.Harmonic)
		for _, w := range works {
			tr.Add(w)
		}
		start := time.Now()
		for i := 0; i < rounds; i++ {
			tr.Add(extra)
			tr.Remove(extra)
		}
		update := time.Since(start)

		rankOps := 200
		if n >= 100_000 {
			rankOps = 20
		}
		start = time.Now()
		for i := 0; i < rankOps; i++ {
			if len(tr.TopAuthors(metrics.ByWeighted, 10)) == 0 {
				panic("no authors ranked")
			}
		}
		rank := time.Since(start)

		start = time.Now()
		fresh := metrics.NewEngine(metrics.Harmonic)
		fresh.Rebuild(works)
		rebuild := time.Since(start)

		t.add(fmt.Sprint(n), fmt.Sprint(tr.Len()), ns(update, 2*rounds),
			(rank / time.Duration(rankOps)).Round(time.Microsecond).String(),
			rebuild.Round(time.Millisecond).String(), persec(rank, rankOps))
	}
	t.print()
}

// E11: coauthorship graph — per-mutation cost of incremental
// maintenance vs corpus size (must stay flat: O(authors-per-work²) per
// work, independent of corpus size), BFS path latency, PageRank
// convergence time, and the full rebuild baseline.
func runE11(c config) {
	const rounds = 2_000
	t := &table{header: []string{"corpus", "nodes", "edges", "components", "ns/update", "path", "pagerank", "rebuild"}}
	for _, n := range corpusSizes(c) {
		all := gen.Generate(gen.Config{Seed: c.seed, Works: n + 1, ZipfS: 1.1})
		works, extra := all[:n], all[n]
		g := graph.NewFromWorks(0, works)

		start := time.Now()
		for i := 0; i < rounds; i++ {
			g.Add(extra)
			g.Remove(extra)
		}
		update := time.Since(start)

		// Path probes between headings sampled across the corpus; the
		// first query also pays the lazy union-find rebuild.
		var endpoints []string
		for i := 0; i < len(works); i += max(1, len(works)/64) {
			endpoints = append(endpoints, works[i].Authors[0].Display())
		}
		pathOps := 500
		if n >= 100_000 {
			pathOps = 100
		}
		start = time.Now()
		for i := 0; i < pathOps; i++ {
			from := endpoints[i%len(endpoints)]
			to := endpoints[(i+len(endpoints)/2)%len(endpoints)]
			g.Path(from, to)
		}
		path := time.Since(start)

		// PageRank with the cache busted each round via the damping knob.
		prOps := 20
		if n >= 100_000 {
			prOps = 3
		}
		start = time.Now()
		for i := 0; i < prOps; i++ {
			g.SetDamping(0.85 - float64(i%2)*0.05)
			if len(g.TopCentral(10)) == 0 {
				panic("no central authors")
			}
		}
		pagerank := time.Since(start)

		start = time.Now()
		fresh := graph.New(0)
		fresh.Rebuild(works)
		rebuild := time.Since(start)

		t.add(fmt.Sprint(n), fmt.Sprint(g.Nodes()), fmt.Sprint(g.Edges()),
			fmt.Sprint(g.Components()), ns(update, 2*rounds),
			(path / time.Duration(pathOps)).Round(time.Microsecond).String(),
			(pagerank / time.Duration(prOps)).Round(time.Millisecond).String(),
			rebuild.Round(time.Millisecond).String())
	}
	t.print()
}

// E4: render throughput and bytes by format.
func runE4(c config) {
	n := 10_000
	if c.quick {
		n = 3_000
	}
	ix, err := core.Rebuild(collate.Default(), gen.Generate(gen.Config{Seed: c.seed, Works: n}))
	if err != nil {
		panic(err)
	}
	t := &table{header: []string{"format", "time", "bytes", "MiB/s"}}
	for _, f := range []render.Format{render.Text, render.TSV, render.Markdown, render.CSV, render.JSON} {
		var buf bytes.Buffer
		start := time.Now()
		if err := render.Render(&buf, ix, render.Options{Format: f}); err != nil {
			panic(err)
		}
		d := time.Since(start)
		rate := float64(buf.Len()) / (1 << 20) / d.Seconds()
		t.add(f.String(), d.Round(time.Millisecond).String(),
			fmt.Sprint(buf.Len()), fmt.Sprintf("%.1f", rate))
	}
	t.print()
}

// E5: collation key cost per scheme, and how many headings naive byte
// ordering misplaces relative to proper collation.
func runE5(c config) {
	n := 100_000
	if c.quick {
		n = 20_000
	}
	pool := gen.AuthorPool(gen.Config{Seed: c.seed, Authors: n, Works: 1})

	type scheme struct {
		name string
		key  func(model.Author) []byte
	}
	schemes := []scheme{
		{"naive-bytes", func(a model.Author) []byte { return []byte(a.Display()) }},
		{"letter-by-letter", func(a model.Author) []byte {
			return collate.KeyAuthor(a, collate.Options{Scheme: collate.LetterByLetter, GroupParticle: true})
		}},
		{"word-by-word", func(a model.Author) []byte {
			return collate.KeyAuthor(a, collate.Default())
		}},
		{"word+mc-as-mac", func(a model.Author) []byte {
			o := collate.Default()
			o.McAsMac = true
			return collate.KeyAuthor(a, o)
		}},
	}
	order := func(key func(model.Author) []byte) []string {
		keys := make([][]byte, len(pool))
		for i, a := range pool {
			keys[i] = key(a)
		}
		idx := make([]int, len(pool))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool { return bytes.Compare(keys[idx[x]], keys[idx[y]]) < 0 })
		out := make([]string, len(pool))
		for i, j := range idx {
			out[i] = pool[j].Display()
		}
		return out
	}
	// standardKey is the publication-standard ordering (word-by-word);
	// for each scheme we count adjacent pairs in its sorted output that
	// the standard would order the other way — local ordering errors a
	// reader would notice.
	standardKey := schemes[2].key
	byDisplay := make(map[string]model.Author, len(pool))
	for _, a := range pool {
		byDisplay[a.Display()] = a
	}
	reference := order(standardKey)
	t := &table{header: []string{"scheme", "key ns/name", "keys/s", "adjacent inversions", "displaced headings"}}
	for _, s := range schemes {
		start := time.Now()
		for _, a := range pool {
			s.key(a)
		}
		d := time.Since(start)
		got := order(s.key)
		inversions, displaced := 0, 0
		for i := range got {
			if got[i] != reference[i] {
				displaced++
			}
			if i == 0 {
				continue
			}
			a, b := byDisplay[got[i-1]], byDisplay[got[i]]
			if bytes.Compare(standardKey(a), standardKey(b)) > 0 {
				inversions++
			}
		}
		pct := func(n int) string {
			return fmt.Sprintf("%d (%.2f%%)", n, 100*float64(n)/float64(len(pool)))
		}
		t.add(s.name, ns(d, len(pool)), persec(d, len(pool)), pct(inversions), pct(displaced))
	}
	t.print()
}

// E6: recovery time as a function of WAL size, with the snapshot
// ablation: the same state recovered from a pure WAL vs from a snapshot.
func runE6(c config) {
	sizes := []int{5_000, 20_000, 80_000} // operations ≈ WAL MiBs below
	if c.quick {
		sizes = []int{2_000, 10_000}
	}
	t := &table{header: []string{"ops", "WAL MiB", "replay-open", "snapshot-open", "speedup"}}
	for _, n := range sizes {
		works := gen.Generate(gen.Config{Seed: c.seed, Works: n})
		mk := func(compact bool) (string, time.Duration, int64) {
			dir, err := os.MkdirTemp("", "authdex-e6-*")
			if err != nil {
				panic(err)
			}
			defer os.RemoveAll(dir)
			st, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
			if err != nil {
				panic(err)
			}
			for _, w := range works {
				if _, err := st.Put(w); err != nil {
					panic(err)
				}
			}
			walBytes := st.Stats().WALBytes
			if compact {
				if err := st.Compact(); err != nil {
					panic(err)
				}
			}
			st.Close()
			start := time.Now()
			st2, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
			if err != nil {
				panic(err)
			}
			d := time.Since(start)
			if st2.Len() != n {
				panic(fmt.Sprintf("recovered %d of %d works", st2.Len(), n))
			}
			st2.Close()
			return dir, d, walBytes
		}
		_, replay, walBytes := mk(false)
		_, snap, _ := mk(true)
		t.add(fmt.Sprint(n), mib(walBytes), replay.Round(time.Millisecond).String(),
			snap.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(replay)/float64(snap)))
	}
	t.print()
}

// E7: title search, inverted index vs brute-force scan.
func runE7(c config) {
	n := 100_000
	if c.quick {
		n = 20_000
	}
	works := gen.Generate(gen.Config{Seed: c.seed, Works: n})
	inv := inverted.New()
	titles := make(map[model.WorkID]string, n)
	for _, w := range works {
		inv.Add(w.ID, w.Title)
		titles[w.ID] = w.Title
	}
	queries := []string{
		"reclamation",
		"surface mining",
		"surface mining reclamation",
		"coal or methane",
		"mining -surface",
		"reclam*",
	}
	// The no-index baseline: tokenize every title at query time and
	// apply the boolean atoms directly.
	matchDoc := func(title string, q inverted.Query) bool {
		toks := map[string]bool{}
		for _, tok := range inverted.Tokenize(title) {
			toks[tok] = true
		}
		match := func(a inverted.Atom) bool {
			if !a.Prefix {
				return toks[a.Term]
			}
			for tok := range toks {
				if strings.HasPrefix(tok, a.Term) {
					return true
				}
			}
			return false
		}
		if len(q.All) == 0 && len(q.Any) == 0 {
			return false
		}
		for _, a := range q.All {
			if !match(a) {
				return false
			}
		}
		if len(q.Any) > 0 {
			ok := false
			for _, a := range q.Any {
				if match(a) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
		for _, a := range q.None {
			if match(a) {
				return false
			}
		}
		return true
	}
	scan := func(q inverted.Query) int {
		hits := 0
		for _, title := range titles {
			if matchDoc(title, q) {
				hits++
			}
		}
		return hits
	}
	t := &table{header: []string{"query", "hits", "indexed ns/q", "scan ns/q", "speedup"}}
	for _, qs := range queries {
		q := inverted.ParseQuery(qs)
		// Indexed timing.
		const reps = 2_000
		start := time.Now()
		var hits int
		for i := 0; i < reps; i++ {
			hits = len(inv.Eval(q))
		}
		indexed := time.Since(start)
		// Scan timing (single rep; it is O(corpus)).
		start = time.Now()
		scanHits := scan(q)
		scanD := time.Since(start)
		if hits != scanHits {
			panic(fmt.Sprintf("query %q: indexed %d != scan %d", qs, hits, scanHits))
		}
		perIndexed := float64(indexed.Nanoseconds()) / reps
		t.add(qs, fmt.Sprint(hits), fmt.Sprintf("%.0f", perIndexed),
			fmt.Sprintf("%d", scanD.Nanoseconds()),
			fmt.Sprintf("%.0fx", float64(scanD.Nanoseconds())/perIndexed))
	}
	t.print()
}

// E9: the price of durability — end-to-end Put throughput through the
// storage layer under three policies.
func runE9(c config) {
	ops := 2_000
	syncOps := 150 // each op fsyncs; keep the run bounded
	if c.quick {
		ops, syncOps = 500, 50
	}
	works := gen.Generate(gen.Config{Seed: c.seed, Works: ops})
	t := &table{header: []string{"policy", "ops", "total", "ops/s", "durability"}}
	run := func(name string, dir string, walOpts wal.Options, n int, note string) {
		st, err := storage.Open(dir, storage.Options{WAL: walOpts})
		if err != nil {
			panic(err)
		}
		defer st.Close()
		start := time.Now()
		for _, w := range works[:n] {
			if _, err := st.Put(w); err != nil {
				panic(err)
			}
		}
		d := time.Since(start)
		t.add(name, fmt.Sprint(n), d.Round(time.Millisecond).String(), persec(d, n), note)
	}
	run("in-memory", "", wal.Options{}, ops, "none (volatile)")
	dir1, err := os.MkdirTemp("", "authdex-e9-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir1)
	run("wal-nosync", dir1, wal.Options{NoSync: true}, ops, "crash-safe, may lose tail on power cut")
	dir2, err := os.MkdirTemp("", "authdex-e9-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir2)
	run("wal-fsync", dir2, wal.Options{}, syncOps, "full (fsync per op)")
	t.print()
}

// E8: render→ingest round trip: throughput and fidelity.
func runE8(c config) {
	n := 10_000
	if c.quick {
		n = 3_000
	}
	ix, err := core.Rebuild(collate.Default(), gen.Generate(gen.Config{Seed: c.seed, Works: n}))
	if err != nil {
		panic(err)
	}
	var tsv bytes.Buffer
	if err := render.Render(&tsv, ix, render.Options{Format: render.TSV}); err != nil {
		panic(err)
	}
	start := time.Now()
	res, err := ingest.TSV(bytes.NewReader(tsv.Bytes()), ingest.Options{})
	if err != nil {
		panic(err)
	}
	d := time.Since(start)
	ix2, err := core.Rebuild(collate.Default(), res.Works)
	if err != nil {
		panic(err)
	}
	var second bytes.Buffer
	if err := render.Render(&second, ix2, render.Options{Format: render.TSV}); err != nil {
		panic(err)
	}
	fidelity := "EXACT (byte-identical)"
	if !bytes.Equal(tsv.Bytes(), second.Bytes()) {
		fidelity = "DIVERGED"
	}
	postings := ix.Stats().Postings
	t := &table{header: []string{"postings", "TSV bytes", "ingest", "postings/s", "round-trip"}}
	t.add(fmt.Sprint(postings), fmt.Sprint(tsv.Len()),
		d.Round(time.Millisecond).String(), persec(d, postings), fidelity)
	t.print()
}

// E12: the concurrent ordered-query read path through the public facade.
// Each query class runs solo first — recording p50/p95 latency and
// allocations per operation — then every class together under
// GOMAXPROCS goroutines for aggregate throughput. The allocs/op column
// is the experiment's point: with precomputed citation keys, galloping
// intersection and clone-after-unlock, it stays near the result size
// (limit) instead of the match count, flat across corpus sizes.
func runE12(c config) {
	sizes := []int{1_000, 10_000, 100_000}
	if c.quick {
		sizes = []int{1_000, 10_000}
	}
	const limit = 20
	for _, n := range sizes {
		ix, err := authorindex.Open("", nil)
		if err != nil {
			panic(err)
		}
		for _, w := range gen.Generate(gen.Config{Seed: c.seed, Works: n, ZipfS: 1.1}) {
			if _, err := ix.Add(*w); err != nil {
				panic(err)
			}
		}
		subject := ix.Subjects()[0].Subject
		classes := []struct {
			name string
			run  func() int
		}{
			{"title", func() int { return len(ix.Search("surface mining", limit)) }},
			{"year", func() int { return len(ix.YearRange(1970, 1980, limit)) }},
			{"subject", func() int { return len(ix.BySubject(subject, limit)) }},
			{"rank", func() int { return len(ix.TopAuthors(authorindex.ByWeighted, 10)) }},
		}
		t := &table{header: []string{"class", "hits", "ops", "p50 µs", "p95 µs", "allocs/op", "KB/op"}}
		budget := 400 * time.Millisecond
		if c.quick {
			budget = 150 * time.Millisecond
		}
		for _, cl := range classes {
			var lat []time.Duration
			var m0, m1 runtime.MemStats
			runtime.ReadMemStats(&m0)
			hits := 0
			for start := time.Now(); time.Since(start) < budget; {
				t0 := time.Now()
				hits = cl.run()
				lat = append(lat, time.Since(t0))
			}
			runtime.ReadMemStats(&m1)
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			ops := len(lat)
			p := func(q float64) string {
				return fmt.Sprintf("%.1f", float64(lat[int(q*float64(ops-1))].Nanoseconds())/1e3)
			}
			t.add(cl.name, fmt.Sprint(hits), fmt.Sprint(ops), p(0.50), p(0.95),
				fmt.Sprintf("%.0f", float64(m1.Mallocs-m0.Mallocs)/float64(ops)),
				fmt.Sprintf("%.1f", float64(m1.TotalAlloc-m0.TotalAlloc)/float64(ops)/1024))
		}
		// Mixed classes, all cores: aggregate throughput.
		workers := runtime.GOMAXPROCS(0)
		perWorker := 400
		if c.quick {
			perWorker = 100
		}
		var wg sync.WaitGroup
		start := time.Now()
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					classes[(w+i)%len(classes)].run()
				}
			}(w)
		}
		wg.Wait()
		par := time.Since(start)
		parOps := workers * perWorker
		st := ix.Stats()
		fmt.Printf("   corpus=%d works\n", n)
		t.print()
		fmt.Printf("   mixed x%d goroutines: %d ops in %s (%s ops/s)\n",
			workers, parOps, par.Round(time.Millisecond), persec(par, parOps))
		fmt.Printf("   read-path counters: %d queries, %d works cloned, %s MiB postings scanned\n",
			st.QueriesServed, st.WorksCloned, mib(int64(st.PostingsScanned)))
		ix.Close()
	}
}

// E13: the batched write pipeline — durable ingest throughput vs batch
// size. Every run ingests the same corpus into a fresh fsync-on index
// through AddBatch at one batch size; batch=1 is the per-work baseline
// (one WAL append + one fsync per work). Group commit amortizes the
// fsync, the WAL append and the facade lock across the batch, so the
// speedup column should clear 10x by batch=256 on any hardware where
// fsync is not free.
func runE13(c config) {
	n := 4_096
	if c.quick {
		n = 512
	}
	works := gen.Generate(gen.Config{Seed: c.seed, Works: n, ZipfS: 1.1})
	t := &table{header: []string{"batch", "works", "total", "works/s", "fsyncs", "saved", "speedup"}}
	var baseline time.Duration
	for _, batch := range []int{1, 16, 256, 4096} {
		dir, err := os.MkdirTemp("", "authdex-e13-*")
		if err != nil {
			panic(err)
		}
		ix, err := authorindex.Open(dir, &authorindex.Options{}) // durability on
		if err != nil {
			panic(err)
		}
		// Warm the allocator and page cache outside the timed region so
		// the batch=1 baseline is not inflated by first-touch costs.
		warm := make([]authorindex.Work, 0, 64)
		for _, w := range works[:64] {
			cp := *w
			cp.ID = 0
			warm = append(warm, cp)
		}
		warmIDs, err := ix.AddBatch(warm)
		if err != nil {
			panic(err)
		}
		if err := ix.DeleteBatch(warmIDs); err != nil {
			panic(err)
		}
		st0 := ix.Stats()
		start := time.Now()
		if batch == 1 {
			// The literal per-work path: one Add, one WAL commit per work.
			for _, w := range works {
				cp := *w
				cp.ID = 0
				if _, err := ix.Add(cp); err != nil {
					panic(err)
				}
			}
		} else {
			for s := 0; s < len(works); s += batch {
				end := s + batch
				if end > len(works) {
					end = len(works)
				}
				chunk := make([]authorindex.Work, 0, end-s)
				for _, w := range works[s:end] {
					cp := *w
					cp.ID = 0
					chunk = append(chunk, cp)
				}
				if _, err := ix.AddBatch(chunk); err != nil {
					panic(err)
				}
			}
		}
		d := time.Since(start)
		st := ix.Stats()
		if err := ix.Verify(); err != nil {
			panic(err)
		}
		ix.Close()
		os.RemoveAll(dir)
		if batch == 1 {
			baseline = d
		}
		speedup := "-"
		if batch > 1 && d > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(baseline)/float64(d))
		}
		t.add(fmt.Sprint(batch), fmt.Sprint(n), d.Round(time.Millisecond).String(),
			persec(d, n), fmt.Sprint(st.WALSyncs-st0.WALSyncs), fmt.Sprint(st.FsyncsSaved-st0.FsyncsSaved), speedup)
	}
	t.print()
	fmt.Println("   (batch=1 is the per-work path: one WAL commit per work)")
}

// E14: cold start — bulk-load Open vs the sequential-replay baseline,
// over compacted stores of growing size. The baseline is the cold start
// this experiment retired: decode the snapshot, then replay the corpus
// into the engine one Add at a time (per-work btree descents, per-work
// posting insertion, incremental metrics and graph updates) and restore
// cross-references one engine call each. Bulk-load Open hands the
// engine the whole decoded corpus: citation keys are computed and
// sorted once, every tree is built bottom-up, and the metrics tracker
// and coauthorship graph rebuild on parallel goroutines. Both paths are
// measured in the same run, on the same store; the largest corpus is
// Verify-checked after the bulk open.
func runE14(c config) {
	sizes := []int{1_000, 10_000, 100_000}
	if c.quick {
		sizes = []int{1_000, 10_000}
	}
	t := &table{header: []string{"works", "baseline", "bulk open", "speedup", "base MB", "bulk MB", "verify"}}
	for si, n := range sizes {
		dir, err := os.MkdirTemp("", "authdex-e14-*")
		if err != nil {
			panic(err)
		}
		st, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
		if err != nil {
			panic(err)
		}
		works := gen.Generate(gen.Config{Seed: c.seed, Works: n, ZipfS: 1.1})
		for start := 0; start < len(works); start += 8192 {
			if _, err := st.PutBatch(works[start:min(start+8192, len(works))]); err != nil {
				panic(err)
			}
		}
		// Cross-references exercise the batched restore path in Open.
		for i := 0; i < 16; i++ {
			from, to := works[i].Authors[0], works[i+20].Authors[0]
			if from.Display() == to.Display() {
				continue
			}
			if err := st.AddCrossRef(storage.CrossRef{From: from, To: to}); err != nil {
				panic(err)
			}
		}
		if err := st.Compact(); err != nil {
			panic(err)
		}
		if err := st.Close(); err != nil {
			panic(err)
		}

		// Baseline: the pre-bulk-load cold start, replayed verbatim.
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		bst, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
		if err != nil {
			panic(err)
		}
		eng := query.New(collate.Default())
		if err := bst.ForEach(func(w *model.Work) error { return eng.Add(w) }); err != nil {
			panic(err)
		}
		for _, ref := range bst.CrossRefs() {
			if err := eng.Index().AddSeeAlso(ref.From, ref.To); err != nil {
				panic(err)
			}
		}
		base := time.Since(start)
		runtime.ReadMemStats(&m1)
		baseAlloc := m1.TotalAlloc - m0.TotalAlloc
		if eng.Len() != n {
			panic(fmt.Sprintf("baseline replayed %d works, want %d", eng.Len(), n))
		}
		bst.Close()

		// Bulk: the shipping Open.
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start = time.Now()
		ix, err := authorindex.Open(dir, &authorindex.Options{NoSync: true})
		if err != nil {
			panic(err)
		}
		bulk := time.Since(start)
		runtime.ReadMemStats(&m1)
		bulkAlloc := m1.TotalAlloc - m0.TotalAlloc
		if ix.Len() != n {
			panic(fmt.Sprintf("bulk open loaded %d works, want %d", ix.Len(), n))
		}
		verified := "-"
		if si == len(sizes)-1 {
			if err := ix.Verify(); err != nil {
				panic(err)
			}
			verified = "ok"
		}
		ix.Close()
		os.RemoveAll(dir)
		t.add(fmt.Sprint(n), base.Round(time.Millisecond).String(),
			bulk.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", float64(base)/float64(bulk)),
			mib(int64(baseAlloc)), mib(int64(bulkAlloc)), verified)
	}
	t.print()
	fmt.Println("   (baseline: the retired cold start — decode the snapshot, then one eng.Add per work)")
}
