// Command authdex-bench runs the evaluation suite (experiments E1–E14
// from EXPERIMENTS.md) and prints one result table per experiment.
//
// The source paper ("Author Index", VLDB 2000) is front matter with no
// evaluation section, so these experiments are defined by this
// reproduction: they measure every performance claim the engine itself
// makes, each against a baseline. See DESIGN.md and EXPERIMENTS.md.
//
// Usage:
//
//	authdex-bench [-quick] [-run E1,E3] [-seed 1] [-cpuprofile f] [-memprofile f]
//	authdex-bench loadgen [-works N] [-duration 10s] [-rate 2000] [-writes 0.1] [-target URL] [-out BENCH_8.json] [-baseline BENCH_7.json] [-check]
//
// The loadgen subcommand is the HTTP load harness: it drives a mixed
// query/ingest workload against a served index (self-hosted by default)
// and writes per-route latency quantiles plus a /debug/metrics scrape
// to a JSON report.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"
)

type experiment struct {
	id, title string
	run       func(c config)
}

type config struct {
	quick bool
	seed  int64
}

var experiments = []experiment{
	{"E1", "index build throughput vs corpus size", runE1},
	{"E2", "ordered lookup: B+tree vs binary search vs linear scan", runE2},
	{"E3", "incremental update vs full rebuild", runE3},
	{"E4", "render throughput and output size by format", runE4},
	{"E5", "collation: scheme cost and naive-byte-order errors", runE5},
	{"E6", "recovery time vs WAL size; snapshot ablation", runE6},
	{"E7", "title search: inverted index vs full scan", runE7},
	{"E8", "ingest round-trip throughput and fidelity", runE8},
	{"E9", "durability ablation: fsync vs no-sync vs in-memory", runE9},
	{"E10", "author metrics: incremental update and top-k ranking", runE10},
	{"E11", "coauthorship graph: incremental update, paths, centrality", runE11},
	{"E12", "concurrent ordered queries: latency, allocs, zero-copy read path", runE12},
	{"E13", "batched write pipeline: durable ingest throughput vs batch size", runE13},
	{"E14", "cold start: bulk-load Open vs sequential replay", runE14},
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "loadgen" {
		if err := cmdLoadgen(os.Args[2:]); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	quick := flag.Bool("quick", false, "smaller corpora, faster run")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	seed := flag.Int64("seed", 1, "corpus seed")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile taken after the selected experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}
	c := config{quick: *quick, seed: *seed}
	ran := 0
	for _, e := range experiments {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fmt.Printf("== %s: %s ==\n", e.id, e.title)
		start := time.Now()
		e.run(c)
		fmt.Printf("   (%s wall time)\n\n", time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		pprof.StopCPUProfile() // deferred handlers never run past os.Exit
		fmt.Fprintf(os.Stderr, "no experiments matched -run=%s\n", *run)
		os.Exit(2)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		runtime.GC() // materialize the final live set before sampling
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "memprofile: %v\n", err)
			os.Exit(1)
		}
	}
}

// table is a tiny aligned-column printer.
type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) print() {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Println("   " + strings.Join(parts, "  "))
	}
	line(t.header)
	rule := make([]string, len(t.header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, r := range t.rows {
		line(r)
	}
}

func ns(d time.Duration, ops int) string {
	if ops == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(d.Nanoseconds())/float64(ops))
}

func persec(d time.Duration, ops int) string {
	if d == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", float64(ops)/d.Seconds())
}

func mib(n int64) string { return fmt.Sprintf("%.1f", float64(n)/(1<<20)) }
