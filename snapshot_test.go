// Tests for epoch-based snapshot reads: a pinned snapshot must stay
// internally consistent for the pin's whole lifetime no matter how many
// commits land meanwhile, and retired epochs must actually be reclaimed
// — the epochs-alive gauge returns to 1 in quiescence, with no reader
// goroutines left behind. These run under -race in CI.
package authorindex

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// storm runs w writer goroutines, each firing iters alternating
// AddBatch / DeleteBatch commits, and returns after all have landed.
func storm(t *testing.T, ix *Index, writers, iters int) {
	t.Helper()
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				batch := make([]Work, 3)
				for j := range batch {
					batch[j] = sampleWork(
						fmt.Sprintf("Storm Work %d-%d-%d", g, i, j),
						fmt.Sprintf("8%d:%d (198%d)", g, 1+(i*3+j)%1400, g%10),
						fmt.Sprintf("Storm, Writer %d.", g))
				}
				ids, err := ix.AddBatch(batch)
				if err != nil {
					t.Errorf("storm AddBatch: %v", err)
					return
				}
				if i%2 == 1 {
					if err := ix.DeleteBatch(ids); err != nil {
						t.Errorf("storm DeleteBatch: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSnapshotPinnedFingerprintStable: readers pin a snapshot, hold it
// across a concurrent write storm, and assert the pinned engine's
// corpus fingerprint never moves between the pin and the release. This
// is the isolation guarantee in one bit: commits replace the published
// epoch, they never mutate a pinned one.
func TestSnapshotPinnedFingerprintStable(t *testing.T) {
	ix := openT(t, t.TempDir())
	defer ix.Close()
	for i := 0; i < 20; i++ {
		if _, err := ix.Add(sampleWork(
			fmt.Sprintf("Seed Work %d", i),
			fmt.Sprintf("90:%d (1988)", i+1),
			"Seed, Author A.")); err != nil {
			t.Fatal(err)
		}
	}

	const readers = 4
	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ep := ix.shards.Shard(0).Pin()
				want := ep.Eng.CorpusFingerprint()
				// Hold the pin across real reads while writers commit.
				ep.Eng.TitleSearchView("storm", 8)
				ep.Eng.AuthorPrefix("s", 8)
				time.Sleep(100 * time.Microsecond)
				if got := ep.Eng.CorpusFingerprint(); got != want {
					t.Errorf("pinned snapshot fingerprint moved: %x -> %x", want, got)
					ep.Release()
					return
				}
				ep.Release()
			}
		}()
	}
	storm(t, ix, 2, 25)
	close(stop)
	wg.Wait()

	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after storm: %v", err)
	}
}

// TestEpochReclamation: after a write storm with concurrent readers,
// every retired epoch is reclaimed — the epochs-alive gauge returns to
// exactly 1 (the current epoch) and no reader goroutines leak.
func TestEpochReclamation(t *testing.T) {
	before := runtime.NumGoroutine()
	ix := openT(t, t.TempDir())
	defer ix.Close()
	if got := ix.EpochsAlive(); got != 1 {
		t.Fatalf("EpochsAlive at open = %d, want 1", got)
	}

	for i := 0; i < 10; i++ {
		if _, err := ix.Add(sampleWork(
			fmt.Sprintf("Reclaim Work %d", i),
			fmt.Sprintf("91:%d (1989)", i+1),
			"Reclaim, Author B.")); err != nil {
			t.Fatal(err)
		}
	}

	var (
		wg   sync.WaitGroup
		stop = make(chan struct{})
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				ix.Search("storm", 8)
				ix.Authors("s", 8)
				ix.Len()
			}
		}()
	}
	storm(t, ix, 2, 20)
	close(stop)
	wg.Wait()

	if got := ix.EpochsAlive(); got != 1 {
		t.Errorf("EpochsAlive after storm = %d, want 1 (retired epochs leaked)", got)
	}

	// A held pin keeps exactly its own epoch alive across commits...
	ep := ix.shards.Shard(0).Pin()
	if _, err := ix.Add(sampleWork("After Pin", "92:1 (1990)", "Late, Writer C.")); err != nil {
		t.Fatal(err)
	}
	if got := ix.EpochsAlive(); got != 2 {
		t.Errorf("EpochsAlive with one pinned retired epoch = %d, want 2", got)
	}
	// ...and releasing the last reference retires it.
	ep.Release()
	if got := ix.EpochsAlive(); got != 1 {
		t.Errorf("EpochsAlive after release = %d, want 1", got)
	}

	// No goroutines left behind by the snapshot machinery.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines grew %d -> %d across snapshot storm", before, after)
	}
}

// TestEpochPinnedAcrossSlowRender: a render pins one snapshot for its
// whole (slow) duration; commits landing meanwhile neither block on it
// nor mutate what it renders, and the moment it finishes its epoch is
// reclaimed. The writer below yields between section writes to stretch
// the render across many commits.
func TestEpochPinnedAcrossSlowRender(t *testing.T) {
	ix := openT(t, t.TempDir())
	defer ix.Close()
	for i := 0; i < 30; i++ {
		if _, err := ix.Add(sampleWork(
			fmt.Sprintf("Render Work %d", i),
			fmt.Sprintf("93:%d (1991)", i+1),
			fmt.Sprintf("Render, Author %c.", 'A'+i%20))); err != nil {
			t.Fatal(err)
		}
	}
	renderDone := make(chan error, 1)
	var out strings.Builder
	sw := &slowWriter{w: &out, started: make(chan struct{})}
	go func() {
		renderDone <- ix.Render(sw, RenderOptions{Format: Text})
	}()

	// The first section write proves the render has pinned its epoch;
	// only then do the storm commits start, so every storm work is
	// strictly post-pin and must be invisible to the render.
	<-sw.started
	storm(t, ix, 2, 10)
	if err := <-renderDone; err != nil {
		t.Fatalf("Render: %v", err)
	}
	if strings.Contains(out.String(), "Storm Work") {
		t.Error("render output contains storm works committed after its pin")
	}

	waitQuiescent(t, ix)
	if got := ix.EpochsAlive(); got != 1 {
		t.Errorf("EpochsAlive after slow render = %d, want 1", got)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// waitQuiescent spins briefly until all retired epochs drain; the last
// release happens-before the reader returns, so one yield usually does.
func waitQuiescent(t *testing.T, ix *Index) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for ix.EpochsAlive() > 1 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
}

// slowWriter stretches a render out by yielding on every write, and
// closes started on the first one.
type slowWriter struct {
	w       io.Writer
	started chan struct{}
	once    sync.Once
}

func (s *slowWriter) Write(p []byte) (int, error) {
	s.once.Do(func() { close(s.started) })
	time.Sleep(200 * time.Microsecond)
	return s.w.Write(p)
}
