package authorindex

import (
	"math"
	"math/rand"
	"sync"
	"testing"
)

// graphFixture loads a small collaboration network:
//
//	Lewin—Peng—Cardi form a chain; Adler is isolated.
func graphFixture(t *testing.T) (*Index, []WorkID) {
	t.Helper()
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	var ids []WorkID
	add := func(page int, headings ...string) {
		w := Work{Title: "Work", Citation: Citation{Volume: 90, Page: page, Year: 1988}}
		for _, h := range headings {
			a, err := ParseAuthor(h)
			if err != nil {
				t.Fatal(err)
			}
			w.Authors = append(w.Authors, a)
		}
		id, err := ix.Add(w)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	add(1, "Lewin, Jeff L.", "Peng, Syd S.")
	add(2, "Peng, Syd S.", "Cardi, Vincent P.")
	add(3, "Adler, Mortimer J.")
	return ix, ids
}

func TestFacadeCollaborationPath(t *testing.T) {
	ix, _ := graphFixture(t)
	p, ok := ix.CollaborationPath("Lewin, Jeff L.", "Cardi, Vincent P.")
	if !ok || len(p) != 3 || p[1] != "Peng, Syd S." {
		t.Errorf("path = %v, %v", p, ok)
	}
	if _, ok := ix.CollaborationPath("Lewin, Jeff L.", "Adler, Mortimer J."); ok {
		t.Error("path to an isolated author")
	}
	if _, ok := ix.CollaborationPath("Lewin, Jeff L.", "Nobody, At All"); ok {
		t.Error("path to an unknown heading")
	}
}

func TestFacadeGraphSummaryAndStats(t *testing.T) {
	ix, _ := graphFixture(t)
	s := ix.GraphSummary()
	if s.Nodes != 4 || s.Edges != 2 || s.Components != 2 || s.LargestComponent != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.Damping != DefaultDamping {
		t.Errorf("damping = %g", s.Damping)
	}
	if len(s.TopCentral) != 4 || s.TopCentral[0].Heading != "Peng, Syd S." {
		t.Errorf("topCentral = %+v", s.TopCentral)
	}
	st := ix.Stats()
	if st.GraphNodes != 4 || st.GraphEdges != 2 || st.GraphComponents != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.GraphNodes != st.Authors {
		t.Errorf("graph nodes %d != headings %d", st.GraphNodes, st.Authors)
	}
}

func TestFacadeCentralityAndCollaborators(t *testing.T) {
	ix, _ := graphFixture(t)
	mid, ok := ix.Centrality("Peng, Syd S.")
	if !ok || mid <= 0 {
		t.Fatalf("centrality = %g, %v", mid, ok)
	}
	end, _ := ix.Centrality("Lewin, Jeff L.")
	if end >= mid {
		t.Errorf("chain end %g outranks the middle %g", end, mid)
	}
	if _, ok := ix.Centrality("Nobody, At All"); ok {
		t.Error("centrality for unknown heading")
	}
	cs := ix.Collaborators("Peng, Syd S.")
	if len(cs) != 2 {
		t.Fatalf("collaborators = %+v", cs)
	}
	top := ix.TopCentral(2)
	if len(top) != 2 || top[0].Heading != "Peng, Syd S." {
		t.Errorf("topCentral = %+v", top)
	}
	ranked := ix.TopAuthors(ByCentrality, 1)
	if len(ranked) != 1 || ranked[0].Heading != "Peng, Syd S." {
		t.Errorf("TopAuthors(ByCentrality) = %+v", ranked)
	}
}

func TestFacadeVerifyGraph(t *testing.T) {
	ix, ids := graphFixture(t)
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	// Mutate and re-verify: delete the bridge work, add a new one.
	if err := ix.Delete(ids[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(Work{
		Title:    "New Collaboration",
		Citation: Citation{Volume: 91, Page: 1, Year: 1989},
		Authors:  []Author{{Family: "Adler", Given: "Mortimer J."}, {Family: "Cardi", Given: "Vincent P."}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	ix.RebuildGraph()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeVerifyAfterRandomChurn asserts the acceptance criterion at
// the facade level: a randomized Add/Delete sequence leaves the
// incremental graph identical to a from-scratch rebuild (Verify
// compares fingerprints internally).
func TestFacadeVerifyAfterRandomChurn(t *testing.T) {
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	corpus := GenerateCorpus(CorpusConfig{Seed: 11, Works: 200, ZipfS: 1.1})
	r := rand.New(rand.NewSource(5))
	live := map[WorkID]bool{}
	for round := 0; round < 600; round++ {
		w := corpus[r.Intn(len(corpus))]
		if live[w.ID] {
			if err := ix.Delete(w.ID); err != nil {
				t.Fatal(err)
			}
			delete(live, w.ID)
		} else {
			if _, err := ix.Add(*w); err != nil {
				t.Fatal(err)
			}
			live[w.ID] = true
		}
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentGraphAccess drives every graph surface concurrently
// with mutations; the race detector flags lazy-cache writes that leak
// past the facade's locking.
func TestConcurrentGraphAccess(t *testing.T) {
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	corpus := GenerateCorpus(CorpusConfig{Seed: 13, Works: 100, ZipfS: 1.1})
	for _, w := range corpus[:50] {
		if _, err := ix.Add(*w); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 25; j++ {
				switch j % 5 {
				case 0:
					ix.GraphSummary()
				case 1:
					ix.TopAuthors(ByCentrality, 5)
				case 2:
					ix.CollaborationPath(corpus[0].Authors[0].Display(), corpus[j].Authors[0].Display())
				case 3:
					ix.Stats()
				case 4:
					if w := corpus[50+(i*25+j)%50]; true {
						ix.Add(*w)
					}
				}
			}
		}(i)
	}
	wg.Wait()
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsBadDamping(t *testing.T) {
	for _, d := range []float64{-0.1, 1, 1.5, math.NaN()} {
		if _, err := Open("", &Options{GraphDamping: d}); err == nil {
			t.Errorf("damping %g accepted", d)
		}
	}
	ix, err := Open("", &Options{GraphDamping: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if s := ix.GraphSummary(); s.Damping != 0.5 {
		t.Errorf("damping = %g, want 0.5", s.Damping)
	}
}
