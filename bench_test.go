// Benchmarks mirroring the evaluation suite (EXPERIMENTS.md). Each
// Benchmark family corresponds to one experiment; cmd/authdex-bench
// prints the same measurements as tables.
//
//	go test -bench=. -benchmem
package authorindex

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/ingest"
	"repro/internal/inverted"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/render"
	"repro/internal/storage"
	"repro/internal/wal"
)

func corpus(b *testing.B, n int) []*model.Work {
	b.Helper()
	return gen.Generate(gen.Config{Seed: 1, Works: n, ZipfS: 1.1})
}

func builtIndex(b *testing.B, n int) *core.Index {
	b.Helper()
	ix, err := core.Rebuild(collate.Default(), corpus(b, n))
	if err != nil {
		b.Fatal(err)
	}
	return ix
}

// E1 — index build throughput vs corpus size.
func BenchmarkBuild(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		works := corpus(b, n)
		b.Run(fmt.Sprintf("works=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Rebuild(collate.Default(), works); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "works/s")
		})
	}
}

// E2 — ordered lookup across container implementations.
func BenchmarkLookup(b *testing.B) {
	const n = 10_000
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("key-%09d", i*7919%n*1000+i))
	}
	r := rand.New(rand.NewSource(2))
	probes := make([][]byte, 1024)
	for i := range probes {
		probes[i] = keys[r.Intn(n)]
	}
	impls := []struct {
		name string
		mk   func() btree.OrderedMap[int]
	}{
		{"btree", func() btree.OrderedMap[int] { return btree.New[int]() }},
		{"sorted-slice", func() btree.OrderedMap[int] { return btree.NewSortedSlice[int]() }},
		{"linear-scan", func() btree.OrderedMap[int] { return btree.NewLinearScan[int]() }},
	}
	for _, impl := range impls {
		m := impl.mk()
		for i, k := range keys {
			m.Set(k, i)
		}
		b.Run(impl.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.Get(probes[i%len(probes)])
			}
		})
	}
}

// E3 — incremental maintenance vs full rebuild at two batch sizes.
func BenchmarkIncremental(b *testing.B) {
	base := 50_000
	all := corpus(b, base+10_000)
	baseWorks, extra := all[:base], all[base:]
	for _, batch := range []int{1, 100, 10_000} {
		b.Run(fmt.Sprintf("incremental/batch=%d", batch), func(b *testing.B) {
			ix, err := core.Rebuild(collate.Default(), baseWorks)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, w := range extra[:batch] {
					if err := ix.Add(w); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				for _, w := range extra[:batch] {
					ix.Remove(w)
				}
				b.StartTimer()
			}
		})
		b.Run(fmt.Sprintf("rebuild/batch=%d", batch), func(b *testing.B) {
			works := append(baseWorks[:base:base], extra[:batch]...)
			for i := 0; i < b.N; i++ {
				if _, err := core.Rebuild(collate.Default(), works); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E4 — render throughput per format.
func BenchmarkRender(b *testing.B) {
	ix := builtIndex(b, 10_000)
	for _, f := range []render.Format{render.Text, render.TSV, render.Markdown, render.CSV, render.JSON} {
		b.Run(f.String(), func(b *testing.B) {
			b.ReportAllocs()
			var buf bytes.Buffer
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := render.Render(&buf, ix, render.Options{Format: f}); err != nil {
					b.Fatal(err)
				}
			}
			b.SetBytes(int64(buf.Len()))
		})
	}
}

// E5 — collation key construction per scheme.
func BenchmarkCollate(b *testing.B) {
	pool := gen.AuthorPool(gen.Config{Seed: 1, Authors: 10_000, Works: 1})
	schemes := []struct {
		name string
		key  func(model.Author) []byte
	}{
		{"naive-bytes", func(a model.Author) []byte { return []byte(a.Display()) }},
		{"letter-by-letter", func(a model.Author) []byte {
			return collate.KeyAuthor(a, collate.Options{Scheme: collate.LetterByLetter, GroupParticle: true})
		}},
		{"word-by-word", func(a model.Author) []byte {
			return collate.KeyAuthor(a, collate.Default())
		}},
	}
	for _, s := range schemes {
		b.Run(s.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s.key(pool[i%len(pool)])
			}
		})
	}
}

// E6 — recovery: pure WAL replay vs snapshot load.
func BenchmarkRecovery(b *testing.B) {
	const n = 10_000
	works := corpus(b, n)
	prepare := func(b *testing.B, compact bool) string {
		b.Helper()
		dir, err := os.MkdirTemp("", "bench-recovery-*")
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { os.RemoveAll(dir) })
		st, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
		if err != nil {
			b.Fatal(err)
		}
		for _, w := range works {
			if _, err := st.Put(w); err != nil {
				b.Fatal(err)
			}
		}
		if compact {
			if err := st.Compact(); err != nil {
				b.Fatal(err)
			}
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
		return dir
	}
	for _, mode := range []struct {
		name    string
		compact bool
	}{{"wal-replay", false}, {"snapshot", true}} {
		b.Run(mode.name, func(b *testing.B) {
			dir := prepare(b, mode.compact)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				st, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
				if err != nil {
					b.Fatal(err)
				}
				if st.Len() != n {
					b.Fatalf("recovered %d works", st.Len())
				}
				st.Close()
			}
		})
	}
}

// E7 — title search: inverted index vs corpus scan.
func BenchmarkSearch(b *testing.B) {
	const n = 50_000
	works := corpus(b, n)
	inv := inverted.New()
	titles := make([]string, 0, n)
	for _, w := range works {
		inv.Add(w.ID, w.Title)
		titles = append(titles, w.Title)
	}
	q := inverted.ParseQuery("surface mining")
	b.Run("indexed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if len(inv.Eval(q)) == 0 {
				b.Fatal("no hits")
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			hits := 0
			for _, title := range titles {
				toks := inverted.Tokenize(title)
				found := 0
				for _, tok := range toks {
					if tok == "surface" || tok == "mining" {
						found++
					}
				}
				if found >= 2 {
					hits++
				}
			}
			if hits == 0 {
				b.Fatal("no hits")
			}
		}
	})
}

// E8 — TSV ingest throughput.
func BenchmarkIngest(b *testing.B) {
	ix := builtIndex(b, 10_000)
	var tsv bytes.Buffer
	if err := render.Render(&tsv, ix, render.Options{Format: render.TSV}); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(tsv.Len()))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ingest.TSV(bytes.NewReader(tsv.Bytes()), ingest.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E10 — author metrics: incremental maintenance and top-k ranking.
//
// Incremental measures one add+remove round trip against trackers
// holding corpora of increasing size: per-mutation cost must stay flat
// as the corpus grows (the incremental-maintenance claim). TopK and
// Rebuild scale with corpus size by design.
func BenchmarkMetrics(b *testing.B) {
	sizes := []int{1_000, 10_000, 100_000}
	for _, n := range sizes {
		all := corpus(b, n+1)
		works, extra := all[:n], all[n]
		tr := metrics.NewEngine(metrics.Harmonic)
		for _, w := range works {
			tr.Add(w)
		}
		b.Run(fmt.Sprintf("Incremental/corpus=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr.Add(extra)
				tr.Remove(extra)
			}
		})
		b.Run(fmt.Sprintf("TopK/corpus=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if len(tr.TopAuthors(metrics.ByWeighted, 10)) == 0 {
					b.Fatal("no authors ranked")
				}
			}
			b.ReportMetric(float64(tr.Len()), "authors")
		})
		b.Run(fmt.Sprintf("Rebuild/corpus=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fresh := metrics.NewEngine(metrics.Harmonic)
				fresh.Rebuild(works)
			}
		})
	}
}

// E11 — coauthorship graph: incremental maintenance, path queries and
// centrality.
//
// Incremental measures one add+remove round trip against graphs holding
// corpora of increasing size: per-mutation cost is O(authors-per-work²)
// and must stay flat as the corpus grows (the incremental-maintenance
// claim — the quadratic term is the pairwise edge update over a short
// author list). Path, PageRank and Rebuild scale with corpus size by
// design.
func BenchmarkGraph(b *testing.B) {
	sizes := []int{1_000, 10_000, 100_000}
	for _, n := range sizes {
		all := corpus(b, n+1)
		works, extra := all[:n], all[n]
		g := graph.NewFromWorks(0, works)
		endpoints := graphEndpoints(works)
		b.Run(fmt.Sprintf("Incremental/corpus=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.Add(extra)
				g.Remove(extra)
			}
		})
		b.Run(fmt.Sprintf("Path/corpus=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			hits := 0
			for i := 0; i < b.N; i++ {
				from := endpoints[i%len(endpoints)]
				to := endpoints[(i+len(endpoints)/2)%len(endpoints)]
				if _, ok := g.Path(from, to); ok {
					hits++
				}
			}
			b.ReportMetric(float64(g.Components()), "components")
		})
		b.Run(fmt.Sprintf("PageRank/corpus=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g.SetDamping(0.85 - float64(i%2)*0.05) // bust the cache each round
				if len(g.TopCentral(10)) == 0 {
					b.Fatal("no central authors")
				}
			}
			b.ReportMetric(float64(g.Nodes()), "nodes")
		})
		b.Run(fmt.Sprintf("Rebuild/corpus=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				fresh := graph.New(0)
				fresh.Rebuild(works)
			}
		})
	}
}

// graphEndpoints samples headings across the corpus for path probes.
func graphEndpoints(works []*model.Work) []string {
	var out []string
	for i := 0; i < len(works); i += max(1, len(works)/64) {
		out = append(out, works[i].Authors[0].Display())
	}
	return out
}

// E12 — the concurrent ordered-query read path through the facade:
// mixed title/year/subject/rank queries under b.RunParallel at three
// corpus sizes. The family exists to keep the zero-copy read path
// honest — precomputed citation keys, galloping intersection, and
// clone-after-unlock should hold allocs/op near the result size, not
// the match count. cmd/authdex-bench -run E12 prints the same workload
// with p50/p95 latencies.
func BenchmarkQueryParallel(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000} {
		// Corpus construction is lazy and shared across the size's
		// sub-benchmarks, so a -bench filter that excludes a size never
		// pays for indexing it.
		var ix *Index
		var subject string
		setup := func(b *testing.B) {
			if ix != nil {
				return
			}
			works := corpus(b, n)
			var err error
			if ix, err = Open("", nil); err != nil {
				b.Fatal(err)
			}
			for _, w := range works {
				if _, err := ix.Add(*w); err != nil {
					b.Fatal(err)
				}
			}
			subject = ix.Subjects()[0].Subject
		}
		classes := []struct {
			name string
			run  func(i int) int
		}{
			{"title", func(i int) int { return len(ix.Search("surface mining", 20)) }},
			{"year", func(i int) int { return len(ix.YearRange(1970, 1980, 20)) }},
			{"subject", func(i int) int { return len(ix.BySubject(subject, 20)) }},
			{"rank", func(i int) int { return len(ix.TopAuthors(ByWeighted, 10)) }},
		}
		for _, cl := range classes {
			b.Run(fmt.Sprintf("%s/works=%d", cl.name, n), func(b *testing.B) {
				setup(b)
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						if cl.run(i) == 0 {
							b.Errorf("%s query matched nothing", cl.name)
							return
						}
						i++
					}
				})
			})
		}
		b.Run(fmt.Sprintf("mixed/works=%d", n), func(b *testing.B) {
			setup(b)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if classes[i%len(classes)].run(i) == 0 {
						b.Error("mixed query matched nothing")
						return
					}
					i++
				}
			})
		})
		if ix != nil {
			ix.Close()
		}
	}
}

// E13 — the batched write pipeline: AddBatch throughput vs batch size
// under both durability policies, against growing resident corpora.
// Group commit amortizes the WAL append + fsync and the facade lock
// over the whole batch, so works/s should climb steeply with batch size
// when fsync is on, and per-work indexing cost should stay flat as the
// corpus grows. cmd/authdex-bench -run E13 prints the same measurement
// as a speedup table.
func BenchmarkWriteBatch(b *testing.B) {
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"fsync", false}, {"nosync", true}} {
		for _, resident := range []int{1_000, 100_000} {
			// One shared index per (mode, corpus) pair, preloaded in large
			// batches; construction is lazy so -bench filters skip it.
			// (os.MkdirTemp, not b.TempDir: the benchmark runner cleans
			// b.TempDir between calibration runs, under the shared index.)
			var ix *Index
			var dir string
			setup := func(b *testing.B) {
				if ix != nil {
					return
				}
				var err error
				if dir, err = os.MkdirTemp("", "bench-writebatch-*"); err != nil {
					b.Fatal(err)
				}
				if ix, err = Open(dir, &Options{NoSync: mode.noSync}); err != nil {
					b.Fatal(err)
				}
				seed := corpus(b, resident)
				for start := 0; start < len(seed); start += 4096 {
					chunk := make([]Work, 0, 4096)
					for _, w := range seed[start:min(start+4096, len(seed))] {
						cp := *w
						cp.ID = 0
						chunk = append(chunk, cp)
					}
					if _, err := ix.AddBatch(chunk); err != nil {
						b.Fatal(err)
					}
				}
			}
			for _, batch := range []int{1, 16, 256, 4096} {
				b.Run(fmt.Sprintf("%s/corpus=%d/batch=%d", mode.name, resident, batch), func(b *testing.B) {
					setup(b)
					fresh := func(i int) Work {
						return Work{
							Title:    fmt.Sprintf("Batched Work %d", i),
							Citation: Citation{Volume: 99, Page: i + 1, Year: 1999},
							Authors:  []Author{{Family: fmt.Sprintf("Writer%d", i%977), Given: "W."}},
						}
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						works := make([]Work, batch)
						for j := range works {
							works[j] = fresh(i*batch + j)
						}
						ids, err := ix.AddBatch(works)
						if err != nil {
							b.Fatal(err)
						}
						b.StopTimer()
						if err := ix.DeleteBatch(ids); err != nil {
							b.Fatal(err)
						}
						b.StartTimer()
					}
					b.ReportMetric(float64(batch)*float64(b.N)/b.Elapsed().Seconds(), "works/s")
				})
			}
			if ix != nil {
				ix.Close()
				os.RemoveAll(dir)
			}
		}
	}
}

// E14 — cold start: Open over a compacted store of growing size. Open
// bulk-loads the decoded corpus through every index bottom-up (with the
// metrics and graph trackers rebuilding in parallel), so wall time per
// work should stay near-flat as the corpus grows instead of paying
// per-work tree descents. The 1M corpus is skipped under -short so the
// CI smoke run stays cheap; cmd/authdex-bench -run E14 measures the
// same path against the sequential-replay baseline.
func BenchmarkOpen(b *testing.B) {
	for _, n := range []int{1_000, 10_000, 100_000, 1_000_000} {
		if n > 100_000 && testing.Short() {
			continue
		}
		b.Run(fmt.Sprintf("works=%d", n), func(b *testing.B) {
			dir, err := os.MkdirTemp("", "bench-open-*")
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { os.RemoveAll(dir) })
			st, err := storage.Open(dir, storage.Options{WAL: wal.Options{NoSync: true}})
			if err != nil {
				b.Fatal(err)
			}
			works := corpus(b, n)
			for start := 0; start < len(works); start += 8192 {
				if _, err := st.PutBatch(works[start:min(start+8192, len(works))]); err != nil {
					b.Fatal(err)
				}
			}
			if err := st.Compact(); err != nil {
				b.Fatal(err)
			}
			if err := st.Close(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, err := Open(dir, &Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if ix.Len() != n {
					b.Fatalf("opened %d works, want %d", ix.Len(), n)
				}
				b.StopTimer()
				ix.Close()
				b.StartTimer()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "works/s")
		})
	}
}

// E9 / end-to-end facade benchmark: the cost one Add pays through the
// full stack (validation, WAL append, every index) under each
// durability policy.
func BenchmarkFacadeAdd(b *testing.B) {
	modes := []struct {
		name    string
		durable bool
		noSync  bool
	}{
		{"memory", false, true},
		{"durable-nosync", true, true},
		{"durable-fsync", true, false},
	}
	for _, mode := range modes {
		dir := ""
		if mode.durable {
			dir = b.TempDir()
		}
		b.Run(mode.name, func(b *testing.B) {
			ix, err := Open(dir, &Options{NoSync: mode.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer ix.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_, err := ix.Add(Work{
					Title:    fmt.Sprintf("Benchmark Work %d", i),
					Citation: Citation{Volume: 90, Page: i + 1, Year: 1988},
					Authors:  []Author{{Family: fmt.Sprintf("Family%d", i%977), Given: "A."}},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
