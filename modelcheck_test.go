package authorindex

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// TestFacadeModelCheck drives the full public API with a randomized
// operation stream mirrored against plain in-memory reference state,
// with periodic compaction and crash-free reopens. Batched mutations
// (AddBatch, DeleteBatch, and deliberately failing batches) interleave
// with single-work ops, and every batched mutation is followed by a
// full Verify — the metrics- and graph-fingerprint cross-check — so a
// batch that diverges from N sequential ops dies immediately, not at
// the epoch boundary. After every epoch the index must agree with the
// model on membership, author filing, title search and year ranges.
func TestFacadeModelCheck(t *testing.T) { runModelCheck(t, 0) }

// TestFacadeModelCheckSharded runs the identical randomized stream
// against a 3-shard index: every mutation routes through home-shard
// locking and cross-shard two-phase batches, every read through the
// scatter-gather merges, and every Verify through the XOR-combined
// per-shard fingerprints — all while the observable behavior must stay
// indistinguishable from the unsharded run.
func TestFacadeModelCheckSharded(t *testing.T) { runModelCheck(t, 3) }

func runModelCheck(t *testing.T, shards int) {
	dir := t.TempDir()
	open := func() *Index {
		t.Helper()
		ix, err := Open(dir, &Options{NoSync: true, Shards: shards})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		return ix
	}
	ix := open()
	r := rand.New(rand.NewSource(1993))
	model := map[WorkID]Work{} // reference state

	families := []string{"Smith", "Jones", "Müller", "McAdam", "Van Dyke", "O'Brien", "Lee", "Garcia"}
	topics := []string{"mining", "taxation", "evidence", "zoning", "bankruptcy", "negligence"}

	randomWork := func() Work {
		nTitle := 1 + r.Intn(3)
		words := make([]string, nTitle)
		for i := range words {
			words[i] = topics[r.Intn(len(topics))]
		}
		for i, word := range words {
			words[i] = strings.ToUpper(word[:1]) + word[1:]
		}
		w := Work{
			Title: strings.Join(words, " ") + fmt.Sprintf(" No. %d", r.Intn(10_000)),
			Citation: Citation{
				Volume: 60 + r.Intn(40),
				Page:   1 + r.Intn(1500),
				Year:   1960 + r.Intn(40),
			},
		}
		for i := 0; i <= r.Intn(2); i++ {
			w.Authors = append(w.Authors, Author{
				Family:  families[r.Intn(len(families))],
				Given:   fmt.Sprintf("%c.", 'A'+r.Intn(8)),
				Student: r.Intn(4) == 0,
			})
		}
		// Occasional duplicate author in the byline would be legal but
		// confuses posting counts in the reference; dedupe.
		if len(w.Authors) == 2 && w.Authors[0] == w.Authors[1] {
			w.Authors = w.Authors[:1]
		}
		if r.Intn(2) == 0 {
			w.Subjects = []string{topics[r.Intn(len(topics))]}
		}
		return w
	}

	checkEpoch := func(epoch int) {
		t.Helper()
		if ix.Len() != len(model) {
			t.Fatalf("epoch %d: Len %d != model %d", epoch, ix.Len(), len(model))
		}
		if err := ix.Verify(); err != nil {
			t.Fatalf("epoch %d: Verify: %v", epoch, err)
		}
		// Author filing: recompute per-heading work sets from the model.
		wantByAuthor := map[string][]WorkID{}
		for id, w := range model {
			for _, a := range w.Authors {
				k := FormatAuthor(a)
				wantByAuthor[k] = append(wantByAuthor[k], id)
			}
		}
		for heading, wantIDs := range wantByAuthor {
			entry, ok := ix.Author(heading)
			if !ok {
				t.Fatalf("epoch %d: heading %q missing", epoch, heading)
			}
			gotIDs := make([]WorkID, len(entry.Works))
			for i, w := range entry.Works {
				gotIDs[i] = w.ID
			}
			sort.Slice(gotIDs, func(i, j int) bool { return gotIDs[i] < gotIDs[j] })
			sort.Slice(wantIDs, func(i, j int) bool { return wantIDs[i] < wantIDs[j] })
			if len(gotIDs) != len(wantIDs) {
				t.Fatalf("epoch %d: heading %q has %d works, want %d", epoch, heading, len(gotIDs), len(wantIDs))
			}
			for i := range wantIDs {
				if gotIDs[i] != wantIDs[i] {
					t.Fatalf("epoch %d: heading %q ids %v want %v", epoch, heading, gotIDs, wantIDs)
				}
			}
		}
		// Title search vs brute force for each topic word.
		for _, topic := range topics {
			want := 0
			for _, w := range model {
				if strings.Contains(strings.ToLower(w.Title), topic) {
					want++
				}
			}
			if got := len(ix.Search(topic, 0)); got != want {
				t.Fatalf("epoch %d: Search(%q) = %d, want %d", epoch, topic, got, want)
			}
		}
		// Year range vs brute force.
		for _, span := range [][2]int{{1960, 1999}, {1970, 1979}, {1995, 1995}} {
			want := 0
			for _, w := range model {
				if w.Citation.Year >= span[0] && w.Citation.Year <= span[1] {
					want++
				}
			}
			if got := len(ix.YearRange(span[0], span[1], 0)); got != want {
				t.Fatalf("epoch %d: YearRange%v = %d, want %d", epoch, span, got, want)
			}
		}
	}

	// verifyBatched runs after every batched mutation: the full invariant
	// sweep, including the metrics and graph fingerprint cross-checks.
	verifyBatched := func(what string) {
		t.Helper()
		if ix.Len() != len(model) {
			t.Fatalf("after %s: Len %d != model %d", what, ix.Len(), len(model))
		}
		if err := ix.Verify(); err != nil {
			t.Fatalf("after %s: Verify: %v", what, err)
		}
	}

	for epoch := 0; epoch < 6; epoch++ {
		for op := 0; op < 120; op++ {
			switch r.Intn(14) {
			case 0, 1, 2, 3, 4, 5: // add
				w := randomWork()
				id, err := ix.Add(w)
				if err != nil {
					t.Fatalf("Add: %v", err)
				}
				w.ID = id
				model[id] = w
			case 6, 7: // delete a random live work
				for id := range model {
					if err := ix.Delete(id); err != nil {
						t.Fatalf("Delete(%d): %v", id, err)
					}
					delete(model, id)
					break
				}
			case 8: // replace an existing work under the same ID
				for id, old := range model {
					w := randomWork()
					w.ID = id
					if _, err := ix.Add(w); err != nil {
						t.Fatalf("replace %d: %v", id, err)
					}
					model[id] = w
					_ = old
					break
				}
			case 9: // compact occasionally
				if op%3 == 0 {
					if err := ix.Compact(); err != nil {
						t.Fatalf("Compact: %v", err)
					}
				}
			case 10, 11: // add a batch, sometimes replacing live works in-flight
				n := 1 + r.Intn(8)
				batch := make([]Work, n)
				for i := range batch {
					batch[i] = randomWork()
				}
				if r.Intn(3) == 0 {
					// Give one batch member an explicit live ID: the batch
					// must replace it exactly as a sequential re-Add would.
					for id := range model {
						batch[r.Intn(n)].ID = id
						break
					}
				}
				ids, err := ix.AddBatch(batch)
				if err != nil {
					t.Fatalf("AddBatch(%d): %v", n, err)
				}
				if len(ids) != n {
					t.Fatalf("AddBatch returned %d ids for %d works", len(ids), n)
				}
				for i, id := range ids {
					w := batch[i]
					w.ID = id
					model[id] = w
				}
				verifyBatched(fmt.Sprintf("AddBatch(%d)", n))
			case 12: // delete a batch of random live works
				var ids []WorkID
				want := 1 + r.Intn(6)
				for id := range model {
					ids = append(ids, id)
					if len(ids) >= want {
						break
					}
				}
				if len(ids) == 0 {
					continue
				}
				if err := ix.DeleteBatch(ids); err != nil {
					t.Fatalf("DeleteBatch(%v): %v", ids, err)
				}
				for _, id := range ids {
					delete(model, id)
				}
				verifyBatched(fmt.Sprintf("DeleteBatch(%d)", len(ids)))
			case 13: // failing batch: one invalid member, nothing may change
				n := 2 + r.Intn(5)
				batch := make([]Work, n)
				for i := range batch {
					batch[i] = randomWork()
				}
				batch[r.Intn(n)].Title = "" // invalid
				if _, err := ix.AddBatch(batch); err == nil {
					t.Fatal("AddBatch accepted an invalid work")
				}
				verifyBatched("failed AddBatch")
			}
		}
		checkEpoch(epoch)
		// Reopen between epochs: recovery must reproduce the model.
		if err := ix.Close(); err != nil {
			t.Fatal(err)
		}
		ix = open()
		checkEpoch(epoch)
	}
	ix.Close()
}
