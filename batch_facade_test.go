package authorindex

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func batchOf(n, salt int) []Work {
	out := make([]Work, n)
	for i := range out {
		out[i] = Work{
			Title:    fmt.Sprintf("Group Commit Study %d-%d", salt, i),
			Authors:  []Author{{Family: fmt.Sprintf("Batcher%d", i%9), Given: "A."}},
			Citation: Citation{Volume: 80 + salt, Page: i + 1, Year: 1985},
			Subjects: []string{"Write Pipelines"},
		}
	}
	return out
}

func TestAddBatchAssignsIDsAndVerifies(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	ids, err := ix.AddBatch(batchOf(50, 0))
	if err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if len(ids) != 50 {
		t.Fatalf("got %d ids", len(ids))
	}
	for i, id := range ids {
		if id != WorkID(i+1) {
			t.Fatalf("ids[%d] = %d, want %d", i, id, i+1)
		}
	}
	if ix.Len() != 50 {
		t.Errorf("Len = %d", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after batch: %v", err)
	}
	// Recovery must rebuild the same index from the batched WAL frames.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openT(t, dir)
	defer ix.Close()
	if ix.Len() != 50 {
		t.Errorf("recovered Len = %d", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after recovery: %v", err)
	}
	if got := ix.BySubject("Write Pipelines", 0); len(got) != 50 {
		t.Errorf("subject lookup found %d works, want 50", len(got))
	}
}

// The acceptance-criterion test: an AddBatch of N works performs
// exactly one WAL fsync, however large N is.
func TestAddBatchSingleFsync(t *testing.T) {
	ix, err := Open(t.TempDir(), nil) // durability on: fsync per commit
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	for _, n := range []int{1, 16, 256} {
		before := ix.Stats()
		if _, err := ix.AddBatch(batchOf(n, n)); err != nil {
			t.Fatal(err)
		}
		st := ix.Stats()
		if got := st.WALSyncs - before.WALSyncs; got != 1 {
			t.Errorf("AddBatch of %d works issued %d fsyncs, want exactly 1", n, got)
		}
		if got := st.BatchesCommitted - before.BatchesCommitted; got != 1 {
			t.Errorf("AddBatch of %d works counted %d commits, want 1", n, got)
		}
		if got := st.FsyncsSaved - before.FsyncsSaved; got != int64(n-1) {
			t.Errorf("AddBatch of %d works saved %d fsyncs, want %d", n, got, n-1)
		}
	}
	// The per-work path costs one fsync per work, for contrast.
	before := ix.Stats()
	for _, w := range batchOf(4, 99) {
		if _, err := ix.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	if got := ix.Stats().WALSyncs - before.WALSyncs; got != 4 {
		t.Errorf("4 single Adds issued %d fsyncs, want 4", got)
	}
}

// facadeFingerprint reduces the index to everything a failed batch must
// not disturb: stats (ignoring read counters), the graph fingerprint,
// and a full citation-ordered render.
func facadeFingerprint(t *testing.T, ix *Index) string {
	t.Helper()
	st := ix.Stats()
	// Zero the observability counters: they are monotonic (a rolled-back
	// batch still counts its WAL traffic) and are not index state.
	st.QueriesServed, st.WorksCloned, st.PostingsScanned = 0, 0, 0
	st.WALBytes, st.WALSyncs, st.BatchesCommitted, st.FsyncsSaved = 0, 0, 0, 0
	var buf bytes.Buffer
	if err := ix.Render(&buf, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	ep := ix.shards.Shard(0).Pin()
	gfp := ep.Eng.Graph().Fingerprint()
	ep.Release()
	return fmt.Sprintf("%+v|%s|%s", st, gfp, buf.String())
}

func TestAddBatchFailureIsAtomic(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	if _, err := ix.AddBatch(batchOf(30, 1)); err != nil {
		t.Fatal(err)
	}
	before := facadeFingerprint(t, ix)
	beforeWAL := ix.Stats().WALBytes

	bad := batchOf(20, 2)
	bad[13].Title = "" // invalid: rejected by validation before anything commits
	if _, err := ix.AddBatch(bad); err == nil {
		t.Fatal("invalid batch accepted")
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("failed AddBatch left storage/engine/metrics/graph changed")
	}
	if got := ix.Stats().WALBytes; got != beforeWAL {
		t.Errorf("failed AddBatch wrote %d WAL bytes", got-beforeWAL)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after failed batch: %v", err)
	}
	// IDs must continue exactly where the committed state left them.
	ids, err := ix.AddBatch(batchOf(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != 31 || ids[1] != 32 {
		t.Errorf("post-failure ids = %v, want [31 32]", ids)
	}
	// And a reopen must agree the failed batch never existed.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openT(t, dir)
	defer ix.Close()
	if ix.Len() != 32 {
		t.Errorf("recovered Len = %d, want 32", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// Satellite regression: the store-accepted/engine-rejected window must
// roll the stored work back, for the single and the batched path alike.
func TestEngineFailureRollsBackStore(t *testing.T) {
	fail := errors.New("injected engine failure")
	engineAddFault = func(w *Work) error {
		if strings.Contains(w.Title, "poison") {
			return fail
		}
		return nil
	}
	defer func() { engineAddFault = nil }()

	dir := t.TempDir()
	ix := openT(t, dir)
	if _, err := ix.Add(sampleWork("Healthy Work", "90:100 (1985)", "Sound, Safe")); err != nil {
		t.Fatal(err)
	}
	before := facadeFingerprint(t, ix)

	if _, err := ix.Add(sampleWork("poison single", "90:101 (1985)", "Trouble, Tom")); !errors.Is(err, fail) {
		t.Fatalf("Add with engine failure: %v", err)
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("engine-failed Add left store and engine divergent")
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after rolled-back Add: %v", err)
	}

	batch := batchOf(6, 4)
	batch[4].Title = "poison batch member"
	if _, err := ix.AddBatch(batch); !errors.Is(err, fail) {
		t.Fatalf("AddBatch with engine failure: %v", err)
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("engine-failed AddBatch left store and engine divergent")
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after rolled-back AddBatch: %v", err)
	}

	// The overwrite case: a failing work whose explicit ID targets a
	// committed record must restore the original, not tombstone it.
	poisonOverwrite := sampleWork("poison overwrite", "90:100 (1985)", "Trouble, Tom")
	poisonOverwrite.ID = 1 // the healthy work's ID
	if _, err := ix.Add(poisonOverwrite); !errors.Is(err, fail) {
		t.Fatalf("overwriting Add with engine failure: %v", err)
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("engine-failed overwrite Add did not restore the original work")
	}
	overwriteBatch := batchOf(3, 7)
	overwriteBatch[1] = poisonOverwrite
	if _, err := ix.AddBatch(overwriteBatch); !errors.Is(err, fail) {
		t.Fatalf("overwriting AddBatch with engine failure: %v", err)
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("engine-failed overwrite AddBatch did not restore the original work")
	}
	if w, ok := ix.Get(1); !ok || w.Title != "Healthy Work" {
		t.Fatalf("original work not restored: %v, %v", w, ok)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after rolled-back overwrite: %v", err)
	}

	// Recovery must see only the healthy work: the rollback is durable.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openT(t, dir)
	defer ix.Close()
	if ix.Len() != 1 {
		t.Fatalf("recovered Len = %d, want 1", ix.Len())
	}
	if _, ok := ix.Author("Sound, Safe"); !ok {
		t.Error("healthy work lost in rollback")
	}
}

func TestDeleteBatch(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	ids, err := ix.AddBatch(batchOf(20, 5))
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.DeleteBatch(ids[:10]); err != nil {
		t.Fatalf("DeleteBatch: %v", err)
	}
	if ix.Len() != 10 {
		t.Errorf("Len = %d, want 10", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after DeleteBatch: %v", err)
	}
	before := facadeFingerprint(t, ix)
	if err := ix.DeleteBatch([]WorkID{ids[10], 9999}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("DeleteBatch with missing id: %v", err)
	}
	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("failed DeleteBatch mutated the index")
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openT(t, dir)
	defer ix.Close()
	if ix.Len() != 10 {
		t.Errorf("recovered Len = %d, want 10", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestImportUsesChunkedGroupCommits(t *testing.T) {
	// Render a corpus to TSV, then re-import it with a small batch size:
	// the import must arrive in ceil(works/batch) group commits.
	src := openT(t, t.TempDir())
	for i := 0; i < 40; i++ {
		if _, err := src.Add(Work{
			Title:    fmt.Sprintf("Imported Work %d", i),
			Authors:  []Author{{Family: fmt.Sprintf("Importer%d", i%5), Given: "B."}},
			Citation: Citation{Volume: 70, Page: i + 1, Year: 1979},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var tsv bytes.Buffer
	if err := src.Render(&tsv, RenderOptions{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	src.Close()

	dst, err := Open(t.TempDir(), &Options{NoSync: true, IngestBatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()
	res, err := dst.ImportTSV(bytes.NewReader(tsv.Bytes()), false)
	if err != nil {
		t.Fatalf("ImportTSV: %v", err)
	}
	if len(res.Works) != 40 {
		t.Fatalf("imported %d works", len(res.Works))
	}
	st := dst.Stats()
	if st.BatchesCommitted != 3 { // ceil(40/16)
		t.Errorf("import used %d group commits, want 3", st.BatchesCommitted)
	}
	if st.FsyncsSaved != 37 { // 40 works, 3 commits
		t.Errorf("import saved %d fsyncs, want 37", st.FsyncsSaved)
	}
	if err := dst.Verify(); err != nil {
		t.Fatalf("Verify after chunked import: %v", err)
	}
}

func TestOpenRejectsNegativeIngestBatch(t *testing.T) {
	if _, err := Open("", &Options{IngestBatchSize: -1}); err == nil {
		t.Error("negative IngestBatchSize accepted")
	}
}
