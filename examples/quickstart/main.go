// Quickstart: open an in-memory index, add a handful of works, query it
// and print the rendered author index.
package main

import (
	"fmt"
	"log"
	"os"

	authorindex "repro"
)

func main() {
	log.SetFlags(0)

	// An empty directory path gives a volatile in-memory index; pass a
	// real path to make it durable.
	ix, err := authorindex.Open("", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// Add three works. Citations use the traditional vol:page (year) form.
	add := func(title, cite string, headings ...string) authorindex.WorkID {
		w := authorindex.Work{Title: title}
		if w.Citation, err = authorindex.ParseCitation(cite); err != nil {
			log.Fatal(err)
		}
		for _, h := range headings {
			a, err := authorindex.ParseAuthor(h)
			if err != nil {
				log.Fatal(err)
			}
			w.Authors = append(w.Authors, a)
		}
		id, err := ix.Add(w)
		if err != nil {
			log.Fatal(err)
		}
		return id
	}
	add("Unlocking the Fire: Ownership of Coalbed Methane",
		"94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S.")
	add("The Silent Revolution in West Virginia's Law of Nuisance",
		"92:235 (1989)", "Lewin, Jeff L.")
	add("Constitutional Law — Stop and Frisk",
		"71:394 (1969)", "Anderson, John M.*") // trailing * = student note

	// Exact author lookup.
	if entry, ok := ix.Author("Lewin, Jeff L."); ok {
		fmt.Printf("%s wrote %d works; earliest: %s %s\n",
			authorindex.FormatAuthor(entry.Author), len(entry.Works),
			entry.Works[0].Title, entry.Works[0].Citation)
	}

	// Boolean title search.
	for _, w := range ix.Search("coalbed or nuisance", 10) {
		fmt.Printf("search hit: %s — %s\n", w.Title, w.Citation)
	}

	// The printed artifact.
	fmt.Println()
	err = ix.Render(os.Stdout, authorindex.RenderOptions{
		Format: authorindex.Text,
		Volume: authorindex.Volume{Publication: "QUICKSTART REV.", Number: 1, Year: 2024},
	})
	if err != nil {
		log.Fatal(err)
	}
}
