// Crashrecovery: demonstrate the engine's durability story end to end.
// The program writes works to a durable index, simulates a crash by
// tearing bytes off the write-ahead log's tail (as a power failure
// mid-write would), reopens the index, and verifies that every work
// whose append completed survives — and nothing is corrupted.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"

	authorindex "repro"
)

func main() {
	log.SetFlags(0)
	root, err := os.MkdirTemp("", "crash-demo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(root)

	// Phase 1: write 50 works, compact after 30 so state is split
	// between a snapshot and a WAL suffix — the interesting recovery case.
	ix, err := authorindex.Open(root, &authorindex.Options{NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	var ids []authorindex.WorkID
	for i := 0; i < 50; i++ {
		w := authorindex.Work{
			Title:    fmt.Sprintf("Recoverable Work %02d", i),
			Citation: authorindex.Citation{Volume: 90, Page: 10 * (i + 1), Year: 1988},
			Authors:  []authorindex.Author{{Family: "Durable", Given: fmt.Sprintf("Writer %02d", i)}},
		}
		id, err := ix.Add(w)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
		if i == 29 {
			if err := ix.Compact(); err != nil {
				log.Fatal(err)
			}
			fmt.Println("compacted after 30 works: snapshot written, WAL reset")
		}
	}
	st := ix.Stats()
	fmt.Printf("before crash: %d works (snapshot %dB, WAL %dB)\n", st.Works, st.SnapshotBytes, st.WALBytes)
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}

	// Phase 2: the "crash" — truncate the newest WAL segment mid-frame.
	walDir := filepath.Join(root, "wal")
	segs, err := filepath.Glob(filepath.Join(walDir, "wal-*.seg"))
	if err != nil || len(segs) == 0 {
		log.Fatalf("no WAL segments found: %v", err)
	}
	sort.Strings(segs)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		log.Fatal(err)
	}
	const torn = 7 // rip off a few bytes: a partially flushed frame
	if err := os.Truncate(last, fi.Size()-torn); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated crash: tore %d bytes off %s\n", torn, filepath.Base(last))

	// Phase 3: reopen. Recovery loads the snapshot, replays the intact
	// WAL prefix, truncates the torn frame, and the index is usable again.
	ix2, err := authorindex.Open(root, &authorindex.Options{NoSync: true})
	if err != nil {
		log.Fatal(err)
	}
	defer ix2.Close()
	recovered := ix2.Len()
	fmt.Printf("after recovery: %d works (the torn write — at most one — is gone)\n", recovered)
	if recovered < 49 || recovered > 50 {
		log.Fatalf("unexpected recovery count %d", recovered)
	}
	// Every recovered work is intact and queryable.
	intact := 0
	for _, id := range ids {
		if w, ok := ix2.Get(id); ok {
			if w.Citation.Volume != 90 {
				log.Fatalf("work %d corrupted: %v", id, w)
			}
			intact++
		}
	}
	fmt.Printf("verified %d recovered works field-by-field\n", intact)

	// And the index still accepts writes after recovery.
	if _, err := ix2.Add(authorindex.Work{
		Title:    "Post-Crash Work",
		Citation: authorindex.Citation{Volume: 91, Page: 1, Year: 1989},
		Authors:  []authorindex.Author{{Family: "Survivor"}},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-crash write accepted; final count %d\n", ix2.Len())
}
