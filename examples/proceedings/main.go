// Proceedings: build a single-volume conference author index — the
// VLDB-2000-style front-matter artifact — from a generated corpus of 226
// papers, then print summary statistics and the first page of the index.
//
// Flags:
//
//	-papers N   corpus size (default 226)
//	-seed S     generator seed (default 2000)
//	-full       print the whole index instead of the first page
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	authorindex "repro"
)

func main() {
	log.SetFlags(0)
	papers := flag.Int("papers", 226, "number of papers in the proceedings")
	seed := flag.Int64("seed", 2000, "corpus generator seed")
	full := flag.Bool("full", false, "print the full index")
	flag.Parse()

	ix, err := authorindex.Open("", nil)
	if err != nil {
		log.Fatal(err)
	}
	defer ix.Close()

	// One volume, one year: a conference proceedings. Citation pages
	// stand in for the paper's first page in the volume.
	corpus := authorindex.GenerateCorpus(authorindex.CorpusConfig{
		Seed:        *seed,
		Works:       *papers,
		Volumes:     1,
		FirstVolume: 26,   // 26th VLDB
		FirstYear:   2000, // Cairo, 2000
		StudentProb: 0.05, // conferences have few student-only bylines
	})
	for _, w := range corpus {
		if _, err := ix.Add(*w); err != nil {
			log.Fatal(err)
		}
	}

	st := ix.Stats()
	fmt.Printf("proceedings: %d papers, %d distinct authors, %d author–paper postings\n",
		st.Works, st.Authors, st.Postings)

	// Who wrote the most papers this year?
	type prolific struct {
		name string
		n    int
	}
	var top prolific
	for _, e := range ix.Authors("", 0) {
		if len(e.Works) > top.n {
			top = prolific{name: authorindex.FormatAuthor(e.Author), n: len(e.Works)}
		}
	}
	fmt.Printf("most prolific author: %s with %d papers\n\n", top.name, top.n)

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	var sb strings.Builder
	err = ix.Render(&sb, authorindex.RenderOptions{
		Format:     authorindex.Text,
		PageLength: 48,
		Volume:     authorindex.Volume{Publication: "Proc. VLDB", Number: 26, Year: 2000},
	})
	if err != nil {
		log.Fatal(err)
	}
	if *full {
		fmt.Fprint(out, sb.String())
		return
	}
	// Show only the first rendered page (the second running head starts
	// page two).
	text := sb.String()
	lines := strings.SplitAfter(text, "\n")
	heads := 0
	cut := len(text)
	pos := 0
	for _, line := range lines {
		if strings.Contains(line, "AUTHOR INDEX") {
			heads++
			if heads == 2 {
				cut = pos
				break
			}
		}
		pos += len(line)
	}
	fmt.Fprint(out, text[:cut])
	if cut < len(text) {
		fmt.Fprintf(out, "[... %d more bytes of index; rerun with -full ...]\n", len(text)-cut)
	}
}
