// Lawreview: maintain a durable cumulative author index across many
// volumes of a publication run — the workload behind a law review's
// cumulative index issue. The example ingests volume after volume into a
// store on disk, adds cross-references, compacts, and renders both the
// printed pages and the machine-readable TSV.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	authorindex "repro"
)

func main() {
	log.SetFlags(0)
	dir := flag.String("dir", "", "index directory (default: temp dir)")
	volumes := flag.Int("volumes", 27, "volumes to accumulate (vol. 69 onward)")
	perVolume := flag.Int("per-volume", 60, "works per volume")
	flag.Parse()

	root := *dir
	if root == "" {
		var err error
		if root, err = os.MkdirTemp("", "lawreview-index-*"); err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(root)
	}

	ix, err := authorindex.Open(root, &authorindex.Options{
		NoSync:       true, // demo speed; drop for real durability
		CompactEvery: 500,
	})
	if err != nil {
		log.Fatal(err)
	}

	// The whole run, generated once so author careers span volumes, then
	// ingested volume by volume the way a publisher accumulates issues.
	corpus := authorindex.GenerateCorpus(authorindex.CorpusConfig{
		Seed:        95,
		Works:       *volumes * *perVolume,
		Volumes:     *volumes,
		FirstVolume: 69,
		FirstYear:   1966,
		ZipfS:       1.2, // a few prolific authors dominate, as in real runs
	})
	byVolume := map[int][]*authorindex.Work{}
	for _, w := range corpus {
		byVolume[w.Citation.Volume] = append(byVolume[w.Citation.Volume], w)
	}
	for v := 69; v < 69+*volumes; v++ {
		for _, w := range byVolume[v] {
			if _, err := ix.Add(*w); err != nil {
				log.Fatal(err)
			}
		}
		if v%10 == 0 {
			st := ix.Stats()
			fmt.Printf("after vol. %d: %d works, %d headings, WAL %d bytes\n",
				v, st.Works, st.Authors, st.WALBytes)
		}
	}

	// Editorial cross-references for name changes.
	for _, ref := range [][2]string{
		{"Crain, Marion", "Crain-Mountney, Marion"},
		{"Smith, Pamela A.", "Bates-Smith, Pamela A."},
	} {
		if err := ix.AddSeeAlso(ref[0], ref[1]); err != nil {
			log.Fatal(err)
		}
	}

	if err := ix.Compact(); err != nil {
		log.Fatal(err)
	}
	st := ix.Stats()
	fmt.Printf("\ncumulative index: %d works, %d headings (%d student postings), %d cross-refs\n",
		st.Works, st.Authors, st.StudentNotes, st.CrossRefs)
	fmt.Printf("on disk: snapshot %d bytes, WAL %d bytes at %s\n", st.SnapshotBytes, st.WALBytes, root)

	// Render all three front-matter artifacts next to the store, the way
	// a cumulative index issue prints them back to back.
	vol := authorindex.Volume{Publication: "W. VA. L. REV.", Number: 69 + *volumes - 1, Year: 1966 + *volumes - 1}
	artifacts := []struct {
		path   string
		render func(f *os.File) error
	}{
		{"author-index.txt", func(f *os.File) error {
			return ix.Render(f, authorindex.RenderOptions{Format: authorindex.Text, PageLength: 58, Volume: vol})
		}},
		{"author-index.tsv", func(f *os.File) error {
			return ix.Render(f, authorindex.RenderOptions{Format: authorindex.TSV})
		}},
		{"title-index.txt", func(f *os.File) error {
			return ix.RenderTitleIndex(f, authorindex.RenderOptions{Format: authorindex.Text, PageLength: 58, Volume: vol})
		}},
		{"subject-index.txt", func(f *os.File) error {
			return ix.RenderSubjectIndex(f, authorindex.RenderOptions{Format: authorindex.Text, PageLength: 58, Volume: vol})
		}},
	}
	for _, art := range artifacts {
		path := filepath.Join(root, art.path)
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		err = art.render(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			log.Fatal(err)
		}
		fi, _ := os.Stat(path)
		fmt.Printf("wrote %s (%d bytes)\n", path, fi.Size())
	}

	// Integrity check before shipping the issue to the printer.
	if err := ix.Verify(); err != nil {
		log.Fatalf("index failed verification: %v", err)
	}
	fmt.Println("verify: store and indexes consistent")

	// A few cumulative-index queries an editor would run.
	fmt.Println("\nsample queries:")
	if hits := ix.Search("reclam* surface", 3); len(hits) > 0 {
		for _, w := range hits {
			fmt.Printf("  surface+reclam*: %s %s\n", w.Title, w.Citation)
		}
	}
	midStart := 1966 + *volumes/3
	midEnd := midStart + *volumes/3
	decade := ix.YearRange(midStart, midEnd, 0)
	fmt.Printf("  works published %d–%d: %d\n", midStart, midEnd, len(decade))
	if err := ix.Close(); err != nil {
		log.Fatal(err)
	}
}
