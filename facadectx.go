package authorindex

import (
	"context"
	"fmt"
	"io"

	"repro/internal/model"
	"repro/internal/render"
	"repro/internal/trace"
)

// Ctx variants of the facade entry points. Each wraps its operation in
// one facade span whose children separate where the time went: how
// long the caller queued for the lock (lock.rwait / lock.wait) vs what
// it did while holding it (lock.rhold / lock.hold, which parents the
// engine/store/WAL spans), plus the post-unlock clone pass. The
// non-ctx methods delegate through context.Background(), which is the
// zero-allocation disabled path.

// rlockTraced acquires the read lock, recording the wait as one child
// span and opening the hold span. The returned context parents the
// engine work under the hold span; the caller must End it right after
// RUnlock.
func (ix *Index) rlockTraced(ctx context.Context) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx)
	wait := sp.StartChild("lock.rwait")
	ix.mu.RLock()
	wait.End()
	hold := sp.StartChild("lock.rhold")
	return trace.ContextWith(ctx, hold), hold
}

// lockTraced is rlockTraced for the write lock.
func (ix *Index) lockTraced(ctx context.Context) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx)
	wait := sp.StartChild("lock.wait")
	ix.mu.Lock()
	wait.End()
	hold := sp.StartChild("lock.hold")
	return trace.ContextWith(ctx, hold), hold
}

// cloneTraced deep-copies a view under a facade.clone span.
func (ix *Index) cloneTraced(ctx context.Context, view []*model.Work) []*Work {
	_, sp := trace.StartSpan(ctx, "facade.clone")
	out := ix.eng.CloneWorks(view)
	sp.SetInt("works", int64(len(out)))
	sp.End()
	return out
}

// SearchCtx is Search carrying a trace context.
func (ix *Index) SearchCtx(ctx context.Context, q string, limit int) []*Work {
	defer ix.timeOp(opSearch)()
	ctx, sp := trace.StartSpan(ctx, "facade.search")
	defer sp.End()
	hctx, hold := ix.rlockTraced(ctx)
	view := ix.eng.TitleSearchViewCtx(hctx, q, limit)
	ix.mu.RUnlock()
	hold.End()
	return ix.cloneTraced(ctx, view)
}

// YearRangeCtx is YearRange carrying a trace context.
func (ix *Index) YearRangeCtx(ctx context.Context, from, to, limit int) []*Work {
	defer ix.timeOp(opYearRange)()
	ctx, sp := trace.StartSpan(ctx, "facade.year_range")
	defer sp.End()
	hctx, hold := ix.rlockTraced(ctx)
	view := ix.eng.YearRangeViewCtx(hctx, from, to, limit)
	ix.mu.RUnlock()
	hold.End()
	return ix.cloneTraced(ctx, view)
}

// VolumeWorksCtx is VolumeWorks carrying a trace context.
func (ix *Index) VolumeWorksCtx(ctx context.Context, v, limit int) []*Work {
	ctx, sp := trace.StartSpan(ctx, "facade.volume")
	defer sp.End()
	hctx, hold := ix.rlockTraced(ctx)
	view := ix.eng.VolumeViewCtx(hctx, v, limit)
	ix.mu.RUnlock()
	hold.End()
	return ix.cloneTraced(ctx, view)
}

// BySubjectCtx is BySubject carrying a trace context.
func (ix *Index) BySubjectCtx(ctx context.Context, subject string, limit int) []*Work {
	defer ix.timeOp(opBySubject)()
	ctx, sp := trace.StartSpan(ctx, "facade.by_subject")
	defer sp.End()
	hctx, hold := ix.rlockTraced(ctx)
	view := ix.eng.BySubjectViewCtx(hctx, subject, limit)
	ix.mu.RUnlock()
	hold.End()
	return ix.cloneTraced(ctx, view)
}

// GetCtx is Get carrying a trace context.
func (ix *Index) GetCtx(ctx context.Context, id WorkID) (*Work, bool) {
	defer ix.timeOp(opGet)()
	ctx, sp := trace.StartSpan(ctx, "facade.get")
	defer sp.End()
	_, hold := ix.rlockTraced(ctx)
	w, ok := ix.eng.WorkView(id)
	ix.mu.RUnlock()
	hold.End()
	if !ok {
		return nil, false
	}
	return ix.eng.CloneWork(w), true
}

// AuthorsCtx is Authors carrying a trace context.
func (ix *Index) AuthorsCtx(ctx context.Context, prefix string, limit int) []*Entry {
	ctx, sp := trace.StartSpan(ctx, "facade.authors")
	defer sp.End()
	_, hold := ix.rlockTraced(ctx)
	out := ix.eng.AuthorPrefix(prefix, limit)
	ix.mu.RUnlock()
	hold.End()
	sp.SetInt("entries", int64(len(out)))
	return out
}

// AuthorsPageCtx is AuthorsPage carrying a trace context.
func (ix *Index) AuthorsPageCtx(ctx context.Context, after string, limit int) []*Entry {
	ctx, sp := trace.StartSpan(ctx, "facade.authors_page")
	defer sp.End()
	_, hold := ix.rlockTraced(ctx)
	out := ix.eng.AuthorPage(after, limit)
	ix.mu.RUnlock()
	hold.End()
	sp.SetInt("entries", int64(len(out)))
	return out
}

// TopAuthorsCtx is TopAuthors carrying a trace context.
func (ix *Index) TopAuthorsCtx(ctx context.Context, by RankKey, limit int) []AuthorMetrics {
	ctx, sp := trace.StartSpan(ctx, "facade.rank")
	defer sp.End()
	_, hold := ix.rlockTraced(ctx)
	out := ix.eng.TopAuthors(by, limit)
	ix.mu.RUnlock()
	hold.End()
	sp.SetInt("authors", int64(len(out)))
	return out
}

// TopCentralCtx is TopCentral carrying a trace context.
func (ix *Index) TopCentralCtx(ctx context.Context, limit int) []CentralAuthor {
	ctx, sp := trace.StartSpan(ctx, "facade.central")
	defer sp.End()
	_, hold := ix.rlockTraced(ctx)
	out := ix.eng.Graph().TopCentral(ClampLimit(limit, 10))
	ix.mu.RUnlock()
	hold.End()
	sp.SetInt("authors", int64(len(out)))
	return out
}

// AddCtx is Add carrying a trace context; the store commit (and its
// WAL encode/fsync children) nests under the lock.hold span.
func (ix *Index) AddCtx(ctx context.Context, w Work) (WorkID, error) {
	defer ix.timeOp(opAdd)()
	ctx, sp := trace.StartSpan(ctx, "facade.add")
	defer sp.End()
	hctx, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	// Capture the version an explicit ID would overwrite; the engine's
	// copy is identical to the store's, and rollback must restore it.
	var old *model.Work
	if w.ID != 0 {
		if prev, ok := ix.eng.WorkView(w.ID); ok {
			old = prev
		}
	}
	id, err := ix.store.PutCtx(hctx, &w)
	if err != nil {
		return 0, err
	}
	w.ID = id
	if err := ix.engAdd(&w); err != nil {
		var derr error
		if old != nil {
			_, derr = ix.store.Put(old)
		} else {
			derr = ix.store.Delete(id)
		}
		if derr != nil {
			return 0, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
		}
		return 0, err
	}
	return id, nil
}

// AddBatchCtx is AddBatch carrying a trace context; the group commit
// (one WAL append, one fsync) nests under the lock.hold span.
func (ix *Index) AddBatchCtx(ctx context.Context, works []Work) ([]WorkID, error) {
	if len(works) == 0 {
		return nil, nil
	}
	defer ix.timeOp(opAddBatch)()
	ctx, sp := trace.StartSpan(ctx, "facade.add_batch")
	sp.SetInt("works", int64(len(works)))
	defer sp.End()
	hctx, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	batch := make([]*model.Work, len(works))
	for i := range works {
		cp := works[i]
		batch[i] = &cp
	}
	// Capture the versions that explicit IDs would overwrite; the
	// engine's copies are identical to the store's, and a rollback must
	// restore them rather than tombstone committed records.
	prev := make(map[WorkID]*model.Work)
	for _, w := range batch {
		if w.ID == 0 {
			continue
		}
		if _, seen := prev[w.ID]; seen {
			continue
		}
		if old, ok := ix.eng.WorkView(w.ID); ok {
			prev[w.ID] = old
		}
	}
	ids, err := ix.store.PutBatchCtx(hctx, batch)
	if err != nil {
		return nil, err
	}
	for i := range batch {
		batch[i].ID = ids[i]
	}
	if err := ix.engAddBatch(batch); err != nil {
		if derr := ix.rollbackStored(ids, prev); derr != nil {
			return nil, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
		}
		return nil, err
	}
	return ids, nil
}

// DeleteCtx is Delete carrying a trace context.
func (ix *Index) DeleteCtx(ctx context.Context, id WorkID) error {
	defer ix.timeOp(opDelete)()
	ctx, sp := trace.StartSpan(ctx, "facade.delete")
	defer sp.End()
	_, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	if err := ix.store.Delete(id); err != nil {
		return err
	}
	ix.eng.Remove(id)
	return nil
}

// DeleteBatchCtx is DeleteBatch carrying a trace context.
func (ix *Index) DeleteBatchCtx(ctx context.Context, ids []WorkID) error {
	if len(ids) == 0 {
		return nil
	}
	ctx, sp := trace.StartSpan(ctx, "facade.delete_batch")
	sp.SetInt("works", int64(len(ids)))
	defer sp.End()
	_, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	if err := ix.store.DeleteBatch(ids); err != nil {
		return err
	}
	for _, id := range ids {
		ix.eng.Remove(id)
	}
	return nil
}

// RenderCtx is Render carrying a trace context: appendix building and
// the render itself (sections, per-letter text output) record child
// spans, and a canceled ctx aborts the render between sections.
func (ix *Index) RenderCtx(ctx context.Context, w io.Writer, opts RenderOptions) error {
	defer ix.timeOp(opRender)()
	ctx, sp := trace.StartSpan(ctx, "facade.render")
	defer sp.End()
	hctx, hold := ix.rlockTraced(ctx)
	defer hold.End()
	defer ix.mu.RUnlock()
	if opts.Network && opts.NetworkAppendix == nil && render.NetworkSupported(opts.Format) {
		_, nsp := trace.StartSpan(hctx, "render.network_appendix")
		opts.NetworkAppendix = render.BuildNetwork(ix.eng.Graph(), min(opts.NetworkLimit, MaxLimit))
		nsp.End()
	}
	if opts.Statistics && opts.Appendix == nil && render.StatisticsSupported(opts.Format) {
		// BuildStatistics defaults non-positive limits to 10; the cap
		// bounds explicit limits like every other query limit.
		_, ssp := trace.StartSpan(hctx, "render.stats_appendix")
		opts.Appendix = render.BuildStatistics(ix.eng.Metrics(), min(opts.StatsLimit, MaxLimit))
		ssp.End()
	}
	return render.RenderCtx(hctx, w, ix.eng.Index(), opts)
}
