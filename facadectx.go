package authorindex

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/trace"
)

// Ctx variants of the facade entry points. Each wraps its operation in
// one facade span annotated with the snapshot epoch that served it.
// Reads pin an epoch and run lock-free, so their engine spans nest
// directly under the facade span — there is no lock wait to record.
// Writes still serialize on ix.mu: their spans keep the lock.wait /
// lock.hold children (which parent the store/WAL spans) plus the
// copy-on-write turnover measured by the snapshot-swap histogram. The
// non-ctx methods delegate through context.Background(), which is the
// zero-allocation disabled path.

// lockTraced acquires the write lock, recording the wait as one child
// span and opening the hold span. The returned context parents the
// store/engine work under the hold span; the caller must End it right
// after Unlock.
func (ix *Index) lockTraced(ctx context.Context) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx)
	wait := sp.StartChild("lock.wait")
	ix.mu.Lock()
	wait.End()
	hold := sp.StartChild("lock.hold")
	return trace.ContextWith(ctx, hold), hold
}

// pinTraced pins the current snapshot and stamps its epoch on the span.
func (ix *Index) pinTraced(sp *trace.Span) *epoch {
	ep := ix.pin()
	sp.SetInt("epoch", int64(ep.seq))
	return ep
}

// cloneTraced deep-copies a view under a facade.clone span. It runs
// after the snapshot pin is released — views hold immutable works.
func cloneTraced(ctx context.Context, eng *query.Engine, view []*model.Work) []*Work {
	_, sp := trace.StartSpan(ctx, "facade.clone")
	out := eng.CloneWorks(view)
	sp.SetInt("works", int64(len(out)))
	sp.End()
	return out
}

// SearchCtx is Search carrying a trace context.
func (ix *Index) SearchCtx(ctx context.Context, q string, limit int) []*Work {
	defer ix.timeOp(opSearch)()
	ctx, sp := trace.StartSpan(ctx, "facade.search")
	defer sp.End()
	ep := ix.pinTraced(sp)
	view := ep.eng.TitleSearchViewCtx(ctx, q, limit)
	ix.release(ep)
	return cloneTraced(ctx, ep.eng, view)
}

// YearRangeCtx is YearRange carrying a trace context.
func (ix *Index) YearRangeCtx(ctx context.Context, from, to, limit int) []*Work {
	defer ix.timeOp(opYearRange)()
	ctx, sp := trace.StartSpan(ctx, "facade.year_range")
	defer sp.End()
	ep := ix.pinTraced(sp)
	view := ep.eng.YearRangeViewCtx(ctx, from, to, limit)
	ix.release(ep)
	return cloneTraced(ctx, ep.eng, view)
}

// VolumeWorksCtx is VolumeWorks carrying a trace context.
func (ix *Index) VolumeWorksCtx(ctx context.Context, v, limit int) []*Work {
	ctx, sp := trace.StartSpan(ctx, "facade.volume")
	defer sp.End()
	ep := ix.pinTraced(sp)
	view := ep.eng.VolumeViewCtx(ctx, v, limit)
	ix.release(ep)
	return cloneTraced(ctx, ep.eng, view)
}

// BySubjectCtx is BySubject carrying a trace context.
func (ix *Index) BySubjectCtx(ctx context.Context, subject string, limit int) []*Work {
	defer ix.timeOp(opBySubject)()
	ctx, sp := trace.StartSpan(ctx, "facade.by_subject")
	defer sp.End()
	ep := ix.pinTraced(sp)
	view := ep.eng.BySubjectViewCtx(ctx, subject, limit)
	ix.release(ep)
	return cloneTraced(ctx, ep.eng, view)
}

// GetCtx is Get carrying a trace context.
func (ix *Index) GetCtx(ctx context.Context, id WorkID) (*Work, bool) {
	defer ix.timeOp(opGet)()
	_, sp := trace.StartSpan(ctx, "facade.get")
	defer sp.End()
	ep := ix.pinTraced(sp)
	w, ok := ep.eng.WorkView(id)
	ix.release(ep)
	if !ok {
		return nil, false
	}
	return ep.eng.CloneWork(w), true
}

// AuthorsCtx is Authors carrying a trace context.
func (ix *Index) AuthorsCtx(ctx context.Context, prefix string, limit int) []*Entry {
	_, sp := trace.StartSpan(ctx, "facade.authors")
	defer sp.End()
	ep := ix.pinTraced(sp)
	out := ep.eng.AuthorPrefix(prefix, limit)
	ix.release(ep)
	sp.SetInt("entries", int64(len(out)))
	return out
}

// AuthorsPageCtx is AuthorsPage carrying a trace context.
func (ix *Index) AuthorsPageCtx(ctx context.Context, after string, limit int) []*Entry {
	_, sp := trace.StartSpan(ctx, "facade.authors_page")
	defer sp.End()
	ep := ix.pinTraced(sp)
	out := ep.eng.AuthorPage(after, limit)
	ix.release(ep)
	sp.SetInt("entries", int64(len(out)))
	return out
}

// TopAuthorsCtx is TopAuthors carrying a trace context.
func (ix *Index) TopAuthorsCtx(ctx context.Context, by RankKey, limit int) []AuthorMetrics {
	_, sp := trace.StartSpan(ctx, "facade.rank")
	defer sp.End()
	ep := ix.pinTraced(sp)
	out := ep.eng.TopAuthors(by, limit)
	ix.release(ep)
	sp.SetInt("authors", int64(len(out)))
	return out
}

// TopCentralCtx is TopCentral carrying a trace context.
func (ix *Index) TopCentralCtx(ctx context.Context, limit int) []CentralAuthor {
	_, sp := trace.StartSpan(ctx, "facade.central")
	defer sp.End()
	ep := ix.pinTraced(sp)
	out := ep.eng.TopCentral(ClampLimit(limit, 10))
	ix.release(ep)
	sp.SetInt("authors", int64(len(out)))
	return out
}

// AddCtx is Add carrying a trace context; the store commit (and its
// WAL encode/fsync children) nests under the lock.hold span.
func (ix *Index) AddCtx(ctx context.Context, w Work) (WorkID, error) {
	defer ix.timeOp(opAdd)()
	ctx, sp := trace.StartSpan(ctx, "facade.add")
	defer sp.End()
	hctx, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	// Capture the version an explicit ID would overwrite; the engine's
	// copy is identical to the store's, and rollback must restore it.
	var old *model.Work
	if w.ID != 0 {
		if prev, ok := ix.eng.WorkView(w.ID); ok {
			old = prev
		}
	}
	id, err := ix.store.PutCtx(hctx, &w)
	if err != nil {
		return 0, err
	}
	w.ID = id
	// Index into a clone, then publish. An engine failure discards the
	// partly mutated clone — readers never glimpse it — and rolls the
	// committed store mutation back.
	start := time.Now()
	eng := ix.eng.Clone()
	if err := ix.engAdd(eng, &w); err != nil {
		var derr error
		if old != nil {
			_, derr = ix.store.Put(old)
		} else {
			derr = ix.store.Delete(id)
		}
		if derr != nil {
			return 0, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
		}
		return 0, err
	}
	ix.publish(start, eng)
	return id, nil
}

// AddBatchCtx is AddBatch carrying a trace context; the group commit
// (one WAL append, one fsync) nests under the lock.hold span.
func (ix *Index) AddBatchCtx(ctx context.Context, works []Work) ([]WorkID, error) {
	if len(works) == 0 {
		return nil, nil
	}
	defer ix.timeOp(opAddBatch)()
	ctx, sp := trace.StartSpan(ctx, "facade.add_batch")
	sp.SetInt("works", int64(len(works)))
	defer sp.End()
	hctx, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	batch := make([]*model.Work, len(works))
	for i := range works {
		cp := works[i]
		batch[i] = &cp
	}
	// Capture the versions that explicit IDs would overwrite; the
	// engine's copies are identical to the store's, and a rollback must
	// restore them rather than tombstone committed records.
	prev := make(map[WorkID]*model.Work)
	for _, w := range batch {
		if w.ID == 0 {
			continue
		}
		if _, seen := prev[w.ID]; seen {
			continue
		}
		if old, ok := ix.eng.WorkView(w.ID); ok {
			prev[w.ID] = old
		}
	}
	ids, err := ix.store.PutBatchCtx(hctx, batch)
	if err != nil {
		return nil, err
	}
	for i := range batch {
		batch[i].ID = ids[i]
	}
	start := time.Now()
	eng := ix.eng.Clone()
	if err := ix.engAddBatch(eng, batch); err != nil {
		if derr := ix.rollbackStored(ids, prev); derr != nil {
			return nil, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
		}
		return nil, err
	}
	ix.publish(start, eng)
	return ids, nil
}

// DeleteCtx is Delete carrying a trace context.
func (ix *Index) DeleteCtx(ctx context.Context, id WorkID) error {
	defer ix.timeOp(opDelete)()
	ctx, sp := trace.StartSpan(ctx, "facade.delete")
	defer sp.End()
	_, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	if err := ix.store.Delete(id); err != nil {
		return err
	}
	start := time.Now()
	eng := ix.eng.Clone()
	eng.Remove(id)
	ix.publish(start, eng)
	return nil
}

// DeleteBatchCtx is DeleteBatch carrying a trace context.
func (ix *Index) DeleteBatchCtx(ctx context.Context, ids []WorkID) error {
	if len(ids) == 0 {
		return nil
	}
	ctx, sp := trace.StartSpan(ctx, "facade.delete_batch")
	sp.SetInt("works", int64(len(ids)))
	defer sp.End()
	_, hold := ix.lockTraced(ctx)
	defer hold.End()
	defer ix.mu.Unlock()
	if err := ix.store.DeleteBatch(ids); err != nil {
		return err
	}
	start := time.Now()
	eng := ix.eng.Clone()
	for _, id := range ids {
		eng.Remove(id)
	}
	ix.publish(start, eng)
	return nil
}

// RenderCtx is Render carrying a trace context: appendix building and
// the render itself (sections, per-letter text output) record child
// spans, and a canceled ctx aborts the render between sections. The
// whole render runs against one pinned snapshot, so a long render
// holds its epoch alive — but blocks no writer — for the duration.
func (ix *Index) RenderCtx(ctx context.Context, w io.Writer, opts RenderOptions) error {
	defer ix.timeOp(opRender)()
	ctx, sp := trace.StartSpan(ctx, "facade.render")
	defer sp.End()
	ep := ix.pinTraced(sp)
	defer ix.release(ep)
	if opts.Network && opts.NetworkAppendix == nil && render.NetworkSupported(opts.Format) {
		_, nsp := trace.StartSpan(ctx, "render.network_appendix")
		ep.eng.ReadTrackers(func(_ metrics.Tracker, gr *graph.Graph) {
			opts.NetworkAppendix = render.BuildNetwork(gr, min(opts.NetworkLimit, MaxLimit))
		})
		nsp.End()
	}
	if opts.Statistics && opts.Appendix == nil && render.StatisticsSupported(opts.Format) {
		// BuildStatistics defaults non-positive limits to 10; the cap
		// bounds explicit limits like every other query limit.
		_, ssp := trace.StartSpan(ctx, "render.stats_appendix")
		ep.eng.ReadTrackers(func(met metrics.Tracker, _ *graph.Graph) {
			opts.Appendix = render.BuildStatistics(met, min(opts.StatsLimit, MaxLimit))
		})
		ssp.End()
	}
	return render.RenderCtx(ctx, w, ep.eng.Index(), opts)
}
