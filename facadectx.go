package authorindex

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/query"
	"repro/internal/render"
	"repro/internal/shard"
	"repro/internal/trace"
)

// Ctx variants of the facade entry points. Each wraps its operation in
// one facade span annotated with the snapshot epoch that served it.
// Reads pin each shard's epoch and run lock-free, so their engine spans
// nest directly under the facade span — there is no lock wait to
// record; with more than one shard the fan-out records one
// facade.shard_scan child per shard. Writes serialize only on their
// home shard's mutex (under the map's shared writer gate): their spans
// keep the lock.wait / lock.hold children (which parent the store/WAL
// spans) plus the copy-on-write turnover measured by the per-shard
// snapshot-swap histograms. The non-ctx methods delegate through
// context.Background(), which is the zero-allocation disabled path.

// degradedAttr marks a write span whose commit was refused by the
// degraded latch, so captured traces show the failure class at a
// glance.
func degradedAttr(sp *trace.Span, err error) {
	if errors.Is(err, ErrDegraded) {
		sp.SetAttr("degraded", "true")
	}
}

// lockShardTraced acquires one shard's writer mutex, recording the wait
// as one child span and opening the hold span annotated with the shard
// ID. The returned context parents the store/engine work under the hold
// span; the caller must End it right after Unlock. Callers already hold
// the map's writer gate.
func (ix *Index) lockShardTraced(ctx context.Context, s *shard.Shard) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx)
	wait := sp.StartChild("lock.wait")
	s.Lock()
	wait.End()
	hold := sp.StartChild("lock.hold")
	hold.SetInt("shard", int64(s.ID()))
	return trace.ContextWith(ctx, hold), hold
}

// lockShardsTraced locks the given shards — ascending IDs, the global
// lock order — under one lock.wait/lock.hold span pair.
func (ix *Index) lockShardsTraced(ctx context.Context, ids []int) (context.Context, *trace.Span) {
	sp := trace.FromContext(ctx)
	wait := sp.StartChild("lock.wait")
	for _, si := range ids {
		ix.shards.Shard(si).Lock()
	}
	wait.End()
	hold := sp.StartChild("lock.hold")
	hold.SetInt("shards", int64(len(ids)))
	return trace.ContextWith(ctx, hold), hold
}

// unlockShards releases locks taken by lockShardsTraced.
func (ix *Index) unlockShards(ids []int) {
	for i := len(ids) - 1; i >= 0; i-- {
		ix.shards.Shard(ids[i]).Unlock()
	}
}

// pinAllTraced pins every shard's epoch and stamps the first epoch's
// sequence (and the shard count, when sharded) on the span.
func (ix *Index) pinAllTraced(sp *trace.Span) shard.View {
	v := ix.shards.PinAll()
	sp.SetInt("epoch", int64(v.Epochs[0].Seq))
	if len(v.Epochs) > 1 {
		sp.SetInt("shards", int64(len(v.Epochs)))
	}
	return v
}

// cloneTraced deep-copies a view under a facade.clone span. It runs
// after the snapshot pins are released — views hold immutable works.
func cloneTraced(ctx context.Context, eng *query.Engine, view []*model.Work) []*Work {
	_, sp := trace.StartSpan(ctx, "facade.clone")
	out := eng.CloneWorks(view)
	sp.SetInt("works", int64(len(out)))
	sp.End()
	return out
}

// scatterWorks fans one ordered read out across every pinned shard and
// k-way merges the per-shard views — each already citation-ordered and
// truncated by its engine — into one view capped at limit. A single
// shard runs the query inline with no extra span, so the unsharded
// configuration traces exactly as before.
func scatterWorks(ctx context.Context, v shard.View, limit int, fn func(ctx context.Context, eng *query.Engine) []*model.Work) []*model.Work {
	if len(v.Epochs) == 1 {
		return fn(ctx, v.Epochs[0].Eng)
	}
	parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []*model.Work {
		sctx, ssp := trace.StartSpan(ctx, "facade.shard_scan")
		ssp.SetInt("shard", int64(ep.Shard))
		ssp.SetInt("epoch", int64(ep.Seq))
		defer ssp.End()
		return fn(sctx, ep.Eng)
	})
	return shard.MergeWorks(parts, limit)
}

// SearchCtx is Search carrying a trace context.
func (ix *Index) SearchCtx(ctx context.Context, q string, limit int) []*Work {
	defer ix.timeOp(opSearch)()
	ctx, sp := trace.StartSpan(ctx, "facade.search")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	view := scatterWorks(ctx, v, limit, func(ctx context.Context, eng *query.Engine) []*model.Work {
		return eng.TitleSearchViewCtx(ctx, q, limit)
	})
	eng := v.Epochs[0].Eng
	v.Release()
	return cloneTraced(ctx, eng, view)
}

// YearRangeCtx is YearRange carrying a trace context.
func (ix *Index) YearRangeCtx(ctx context.Context, from, to, limit int) []*Work {
	defer ix.timeOp(opYearRange)()
	ctx, sp := trace.StartSpan(ctx, "facade.year_range")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	view := scatterWorks(ctx, v, limit, func(ctx context.Context, eng *query.Engine) []*model.Work {
		return eng.YearRangeViewCtx(ctx, from, to, limit)
	})
	eng := v.Epochs[0].Eng
	v.Release()
	return cloneTraced(ctx, eng, view)
}

// VolumeWorksCtx is VolumeWorks carrying a trace context.
func (ix *Index) VolumeWorksCtx(ctx context.Context, vol, limit int) []*Work {
	ctx, sp := trace.StartSpan(ctx, "facade.volume")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	view := scatterWorks(ctx, v, limit, func(ctx context.Context, eng *query.Engine) []*model.Work {
		return eng.VolumeViewCtx(ctx, vol, limit)
	})
	eng := v.Epochs[0].Eng
	v.Release()
	return cloneTraced(ctx, eng, view)
}

// BySubjectCtx is BySubject carrying a trace context.
func (ix *Index) BySubjectCtx(ctx context.Context, subject string, limit int) []*Work {
	defer ix.timeOp(opBySubject)()
	ctx, sp := trace.StartSpan(ctx, "facade.by_subject")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	view := scatterWorks(ctx, v, limit, func(ctx context.Context, eng *query.Engine) []*model.Work {
		return eng.BySubjectViewCtx(ctx, subject, limit)
	})
	eng := v.Epochs[0].Eng
	v.Release()
	return cloneTraced(ctx, eng, view)
}

// GetCtx is Get carrying a trace context. A point lookup routes to the
// work's home shard — no fan-out.
func (ix *Index) GetCtx(ctx context.Context, id WorkID) (*Work, bool) {
	defer ix.timeOp(opGet)()
	_, sp := trace.StartSpan(ctx, "facade.get")
	defer sp.End()
	s := ix.shards.Shard(ix.shards.ForWork(id))
	ep := s.Pin()
	sp.SetInt("epoch", int64(ep.Seq))
	if ix.shards.N() > 1 {
		sp.SetInt("shard", int64(ep.Shard))
	}
	w, ok := ep.Eng.WorkView(id)
	ep.Release()
	if !ok {
		return nil, false
	}
	return ep.Eng.CloneWork(w), true
}

// AuthorsCtx is Authors carrying a trace context.
func (ix *Index) AuthorsCtx(ctx context.Context, prefix string, limit int) []*Entry {
	_, sp := trace.StartSpan(ctx, "facade.authors")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	var out []*Entry
	if len(v.Epochs) == 1 {
		out = v.Epochs[0].Eng.AuthorPrefix(prefix, limit)
		v.Release()
	} else {
		parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []*Entry {
			return ep.Eng.AuthorPrefix(prefix, limit)
		})
		v.Release()
		out = shard.MergeEntries(parts, ix.coll, limit)
	}
	sp.SetInt("entries", int64(len(out)))
	return out
}

// AuthorsPageCtx is AuthorsPage carrying a trace context.
func (ix *Index) AuthorsPageCtx(ctx context.Context, after string, limit int) []*Entry {
	_, sp := trace.StartSpan(ctx, "facade.authors_page")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	var out []*Entry
	if len(v.Epochs) == 1 {
		out = v.Epochs[0].Eng.AuthorPage(after, limit)
		v.Release()
	} else {
		if limit <= 0 {
			limit = query.DefaultAuthorPageLimit // applied pre-merge
		}
		parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []*Entry {
			return ep.Eng.AuthorPage(after, limit)
		})
		v.Release()
		// A heading split across shards collapses into one merged entry,
		// so a page can come up slightly short of limit; the cursor
		// contract (resume from the last returned heading) still holds.
		out = shard.MergeEntries(parts, ix.coll, limit)
	}
	sp.SetInt("entries", int64(len(out)))
	return out
}

// TopAuthorsCtx is TopAuthors carrying a trace context. Rankings come
// from the corpus-global metrics tracker, so one shard answers.
func (ix *Index) TopAuthorsCtx(ctx context.Context, by RankKey, limit int) []AuthorMetrics {
	_, sp := trace.StartSpan(ctx, "facade.rank")
	defer sp.End()
	ep := ix.trackerPin()
	sp.SetInt("epoch", int64(ep.Seq))
	out := ep.Eng.TopAuthors(by, limit)
	ep.Release()
	sp.SetInt("authors", int64(len(out)))
	return out
}

// TopCentralCtx is TopCentral carrying a trace context. Centrality
// comes from the corpus-global coauthorship graph, so one shard
// answers.
func (ix *Index) TopCentralCtx(ctx context.Context, limit int) []CentralAuthor {
	_, sp := trace.StartSpan(ctx, "facade.central")
	defer sp.End()
	ep := ix.trackerPin()
	sp.SetInt("epoch", int64(ep.Seq))
	out := ep.Eng.TopCentral(ClampLimit(limit, 10))
	ep.Release()
	sp.SetInt("authors", int64(len(out)))
	return out
}

// AddCtx is Add carrying a trace context; the store commit (and its
// WAL encode/fsync children) nests under the lock.hold span.
func (ix *Index) AddCtx(ctx context.Context, w Work) (WorkID, error) {
	defer ix.timeOp(opAdd)()
	ctx, sp := trace.StartSpan(ctx, "facade.add")
	defer sp.End()
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	if w.ID != 0 {
		// Explicit ID: the home shard is known up front, so the shard
		// lock brackets the store commit exactly as the unsharded path
		// did. Capture the version the ID overwrites; rollback must
		// restore it.
		s := ix.shards.Shard(ix.shards.ForWork(w.ID))
		hctx, hold := ix.lockShardTraced(ctx, s)
		defer hold.End()
		defer s.Unlock()
		var old *model.Work
		if prev, ok := s.Head().WorkView(w.ID); ok {
			old = prev
		}
		id, err := ix.store.PutCtx(hctx, &w)
		if err != nil {
			degradedAttr(sp, err)
			return 0, err
		}
		w.ID = id
		return ix.commitAdd(s, &w, old)
	}
	// Zero ID: the store assigns it (store-internal locking serializes
	// allocation), and only then is the home shard known — the store
	// commit precedes the shard lock. The writer gate is already held,
	// so a global operation (Verify, Close) cannot observe the window
	// between the two.
	id, err := ix.store.PutCtx(ctx, &w)
	if err != nil {
		degradedAttr(sp, err)
		return 0, err
	}
	w.ID = id
	s := ix.shards.Shard(ix.shards.ForWork(id))
	_, hold := ix.lockShardTraced(ctx, s)
	defer hold.End()
	defer s.Unlock()
	return ix.commitAdd(s, &w, nil)
}

// commitAdd indexes one stored work into a clone of its home shard's
// head and publishes it. An engine failure discards the partly mutated
// clone — readers never glimpse it — and rolls the committed store
// mutation back (old version restored, fresh ID deleted). The caller
// holds the shard lock.
func (ix *Index) commitAdd(s *shard.Shard, w *Work, old *model.Work) (WorkID, error) {
	start := time.Now()
	eng := s.Head().Clone()
	if err := ix.engAdd(eng, w); err != nil {
		var derr error
		if old != nil {
			_, derr = ix.store.Put(old)
		} else {
			derr = ix.store.Delete(w.ID)
		}
		if derr != nil {
			return 0, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
		}
		return 0, err
	}
	ix.publish(start, s, eng)
	return w.ID, nil
}

// AddBatchCtx is AddBatch carrying a trace context; the group commit
// (one WAL append, one fsync) and the two-phase index pass over the
// touched shards both nest under lock.hold.
func (ix *Index) AddBatchCtx(ctx context.Context, works []Work) ([]WorkID, error) {
	if len(works) == 0 {
		return nil, nil
	}
	defer ix.timeOp(opAddBatch)()
	ctx, sp := trace.StartSpan(ctx, "facade.add_batch")
	sp.SetInt("works", int64(len(works)))
	defer sp.End()
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	batch := make([]*model.Work, len(works))
	for i := range works {
		cp := works[i]
		batch[i] = &cp
	}
	// Reserve the batch's IDs before committing anything: fresh IDs
	// cannot be contended (the counter only moves forward) and explicit
	// IDs keep theirs, so every home shard is known — and can be locked —
	// before the store commit. The shard locks must bracket both the
	// prev capture and the commit: with only the writer gate's shared
	// side held, two writers on the same explicit ID could otherwise
	// commit to the store in one order and publish to the shard engines
	// in the other, leaving store and index permanently divergent.
	ids, err := ix.store.ReserveBatchIDs(batch)
	if err != nil {
		degradedAttr(sp, err)
		return nil, err
	}
	for i := range batch {
		batch[i].ID = ids[i]
	}
	// Two-phase across exactly the touched shards: group by home shard,
	// lock ascending, commit the store, index every group into a clone,
	// and publish all clones only once every group has succeeded — a
	// failure anywhere discards every clone and rolls the store back, so
	// no shard ever exposes a partial batch.
	groups := make(map[int][]*model.Work)
	for _, w := range batch {
		si := ix.shards.ForWork(w.ID)
		groups[si] = append(groups[si], w)
	}
	touched := make([]int, 0, len(groups))
	for si := range groups {
		touched = append(touched, si)
	}
	sort.Ints(touched)
	hctx, hold := ix.lockShardsTraced(ctx, touched)
	defer hold.End()
	defer ix.unlockShards(touched)
	// Capture the versions the batch overwrites — under the shard locks,
	// so no concurrent writer can slide a new version in between capture
	// and commit. The store's copies are identical to the engines' (both
	// share the same read-only records), and a rollback must restore
	// them rather than tombstone committed records; freshly reserved IDs
	// have no stored version and roll back to deletion.
	prev := make(map[WorkID]*model.Work)
	for _, w := range batch {
		if _, seen := prev[w.ID]; seen {
			continue
		}
		if old, ok := ix.store.Get(w.ID); ok {
			prev[w.ID] = old
		}
	}
	if _, err := ix.store.PutBatchCtx(hctx, batch); err != nil {
		degradedAttr(sp, err)
		return nil, err
	}
	start := time.Now()
	clones := make(map[int]*query.Engine, len(touched))
	for i, si := range touched {
		eng := ix.shards.Shard(si).Head().Clone()
		if err := ix.engAddBatch(eng, groups[si]); err != nil {
			// Each per-shard AddBatch is internally atomic, but the
			// metrics and graph trackers are shared across all shard
			// engines: groups already indexed into (about-to-be-
			// discarded) clones have mutated them, and those effects
			// must be reversed work by work.
			for _, sj := range touched[:i] {
				ix.undoTrackerAdds(clones[sj], groups[sj], prev)
			}
			if derr := ix.rollbackStored(ids, prev); derr != nil {
				return nil, fmt.Errorf("%w (rollback also failed: %v)", err, derr)
			}
			return nil, err
		}
		clones[si] = eng
	}
	for _, si := range touched {
		ix.publish(start, ix.shards.Shard(si), clones[si])
	}
	return ids, nil
}

// DeleteCtx is Delete carrying a trace context.
func (ix *Index) DeleteCtx(ctx context.Context, id WorkID) error {
	defer ix.timeOp(opDelete)()
	ctx, sp := trace.StartSpan(ctx, "facade.delete")
	defer sp.End()
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	s := ix.shards.Shard(ix.shards.ForWork(id))
	_, hold := ix.lockShardTraced(ctx, s)
	defer hold.End()
	defer s.Unlock()
	if err := ix.store.Delete(id); err != nil {
		degradedAttr(sp, err)
		return err
	}
	start := time.Now()
	eng := s.Head().Clone()
	eng.Remove(id)
	maybeCompactArena(eng)
	ix.publish(start, s, eng)
	return nil
}

// DeleteBatchCtx is DeleteBatch carrying a trace context.
func (ix *Index) DeleteBatchCtx(ctx context.Context, ids []WorkID) error {
	if len(ids) == 0 {
		return nil
	}
	ctx, sp := trace.StartSpan(ctx, "facade.delete_batch")
	sp.SetInt("works", int64(len(ids)))
	defer sp.End()
	ix.shards.BeginWrite()
	defer ix.shards.EndWrite()
	groups := make(map[int][]WorkID)
	for _, id := range ids {
		si := ix.shards.ForWork(id)
		groups[si] = append(groups[si], id)
	}
	touched := make([]int, 0, len(groups))
	for si := range groups {
		touched = append(touched, si)
	}
	sort.Ints(touched)
	_, hold := ix.lockShardsTraced(ctx, touched)
	defer hold.End()
	defer ix.unlockShards(touched)
	if err := ix.store.DeleteBatch(ids); err != nil {
		degradedAttr(sp, err)
		return err
	}
	start := time.Now()
	for _, si := range touched {
		s := ix.shards.Shard(si)
		eng := s.Head().Clone()
		for _, id := range groups[si] {
			eng.Remove(id)
		}
		maybeCompactArena(eng)
		ix.publish(start, s, eng)
	}
	return nil
}

// maybeCompactArena compacts the writer clone's bulk-load arena when
// the dead-slot ratio crosses the threshold, so delete-heavy workloads
// stop pinning removed works once the pre-compaction snapshots drain.
// It runs on the not-yet-published clone, where rebuilding the slab is
// invisible to readers.
func maybeCompactArena(eng *query.Engine) {
	if total, dead := eng.ArenaStats(); total > 0 && float64(dead) >= query.ArenaCompactRatio*float64(total) {
		eng.CompactArena()
	}
}

// appendixLimit normalizes a render appendix limit through the shared
// clamp: non-positive values mean the documented default of 10, and
// explicit values clamp to MaxLimit like every other caller-supplied
// limit. (An earlier version passed min(limit, MaxLimit) straight
// through, relying on each builder to re-default non-positives.)
func appendixLimit(n int) int {
	if n <= 0 {
		return 10
	}
	return ClampLimit(n, 10)
}

// RenderCtx is Render carrying a trace context: appendix building and
// the render itself (sections, per-letter text output) record child
// spans, and a canceled ctx aborts the render between sections. The
// whole render runs against one pinned view, so a long render holds
// its epochs alive — but blocks no writer — for the duration. With
// more than one shard, per-shard sections are gathered and merged in
// print order under a render.sections span, then encoded exactly as
// the single-engine path encodes its own sections.
func (ix *Index) RenderCtx(ctx context.Context, w io.Writer, opts RenderOptions) error {
	defer ix.timeOp(opRender)()
	ctx, sp := trace.StartSpan(ctx, "facade.render")
	defer sp.End()
	v := ix.pinAllTraced(sp)
	defer v.Release()
	e0 := v.Epochs[0].Eng
	if opts.Network && opts.NetworkAppendix == nil && render.NetworkSupported(opts.Format) {
		_, nsp := trace.StartSpan(ctx, "render.network_appendix")
		e0.ReadTrackers(func(_ metrics.Tracker, gr *graph.Graph) {
			opts.NetworkAppendix = render.BuildNetwork(gr, appendixLimit(opts.NetworkLimit))
		})
		nsp.End()
	}
	if opts.Statistics && opts.Appendix == nil && render.StatisticsSupported(opts.Format) {
		_, ssp := trace.StartSpan(ctx, "render.stats_appendix")
		e0.ReadTrackers(func(met metrics.Tracker, _ *graph.Graph) {
			opts.Appendix = render.BuildStatistics(met, appendixLimit(opts.StatsLimit))
		})
		ssp.End()
	}
	if len(v.Epochs) == 1 {
		return render.RenderCtx(ctx, w, e0.Index(), opts)
	}
	_, secSpan := trace.StartSpan(ctx, "render.sections")
	parts := shard.Gather(v.Epochs, func(_ int, ep *shard.Epoch) []Section {
		return ep.Eng.Index().Sections()
	})
	sections := shard.MergeSections(parts, ix.coll)
	secSpan.SetInt("sections", int64(len(sections)))
	secSpan.End()
	if err := ctx.Err(); err != nil {
		return err
	}
	return render.RenderSectionsCtx(ctx, w, sections, opts)
}
