package authorindex

import (
	"sync/atomic"
	"time"

	"repro/internal/query"
)

// Epoch-based copy-on-write snapshot reads.
//
// Every committed write publishes a fresh immutable engine snapshot:
// the writer (still serialized by ix.mu) clones the current engine in
// O(1), mutates the clone — path-copying only the index nodes it
// touches — and swaps it in with one atomic pointer store. Readers
// never take ix.mu at all: they pin the current epoch, run against its
// frozen engine, and release. A pinned snapshot is internally
// consistent for the pin's whole lifetime no matter how many commits
// land meanwhile.
//
// Reclamation is reference-counted. Each epoch starts with one
// "current" reference, dropped when the next epoch replaces it; readers
// add one per pin. When the count hits zero the epoch is retired (the
// engine itself is garbage-collected once unreachable) and the
// epochs-alive gauge steps down — in quiescence it always reads 1.

// epoch is one published engine snapshot plus its reader bookkeeping.
type epoch struct {
	eng *query.Engine
	// seq increments per publication; traces record it so a slow read
	// can be correlated with the snapshot that served it.
	seq uint64
	// pins counts outstanding references: one for being the current
	// epoch, plus one per active reader.
	pins atomic.Int64
	// drained latches the single transition to zero pins, so a late
	// pin/release pair racing the swap cannot step the gauge down twice.
	drained atomic.Bool
}

// pin acquires the current epoch for a lock-free read. The recheck
// handles the race with a concurrent publish: a pin that landed on an
// epoch after it was replaced (its current-reference possibly already
// dropped) is backed out and retried against the new pointer.
func (ix *Index) pin() *epoch {
	for {
		ep := ix.snap.Load()
		ep.pins.Add(1)
		if ix.snap.Load() == ep {
			return ep
		}
		ix.release(ep)
	}
}

// release drops one reference; the last one out retires the epoch.
func (ix *Index) release(ep *epoch) {
	if ep.pins.Add(-1) == 0 && ep.drained.CompareAndSwap(false, true) {
		ix.epochsAlive.Add(-1)
	}
}

// publish makes eng the engine every subsequent read and write sees.
// Callers hold ix.mu (writers are serialized); start marks when the
// writer began the copy-on-write turnover (clone + index mutation), so
// the recorded swap latency is the full snapshot overhead a write pays
// on top of its store commit.
func (ix *Index) publish(start time.Time, eng *query.Engine) {
	ix.eng = eng
	ep := &epoch{eng: eng, seq: ix.epochSeq.Add(1)}
	ep.pins.Store(1)
	ix.epochsAlive.Add(1)
	if old := ix.snap.Swap(ep); old != nil {
		ix.release(old) // drop the replaced epoch's current-reference
	}
	if h := ix.swapHist.Load(); h != nil {
		h.Since(start)
	}
}

// EpochsAlive reports how many snapshot epochs have not yet been
// reclaimed. Quiescent value is 1 (the current epoch); anything above
// that is epochs kept alive by in-flight readers or a not-yet-swapped
// writer.
func (ix *Index) EpochsAlive() int64 { return ix.epochsAlive.Load() }
