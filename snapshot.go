package authorindex

import (
	"time"

	"repro/internal/query"
	"repro/internal/shard"
)

// Epoch-based copy-on-write snapshot reads, per shard.
//
// Every committed write publishes a fresh immutable engine snapshot of
// its home shard: the writer (serialized per shard by the shard's
// mutex, and holding the map's writer gate) clones the shard's current
// engine in O(1), mutates the clone — path-copying only the index
// nodes it touches — and swaps it in with one atomic pointer store.
// Readers never take a write lock: they pin the current epoch of every
// shard they need, run against the frozen engines, and release. Each
// shard's pinned snapshot is internally consistent for the pin's whole
// lifetime; cross-shard atomicity is intentionally relaxed (a batch
// spanning shards may surface on some shards before others, though a
// failed batch surfaces on none).
//
// The pin/release/publish machinery itself lives in internal/shard;
// this file keeps the facade-side glue: publication with the per-shard
// swap-latency histogram, and the epochs-alive surface the gauge and
// the reclamation tests read.

// publish makes eng shard s's current engine. Callers hold s's writer
// mutex (or the map's exclusive writer gate); start marks when the
// writer began the copy-on-write turnover (clone + index mutation), so
// the recorded swap latency is the full snapshot overhead a write pays
// on top of its store commit.
func (ix *Index) publish(start time.Time, s *shard.Shard, eng *query.Engine) {
	s.Publish(eng)
	if hs := ix.swapHists.Load(); hs != nil {
		(*hs)[s.ID()].Since(start)
	}
}

// EpochsAlive reports how many snapshot epochs across all shards have
// not yet been reclaimed. Quiescent value is the shard count (one
// current epoch per shard); anything above that is epochs kept alive
// by in-flight readers or not-yet-swapped writers.
func (ix *Index) EpochsAlive() int64 { return ix.shards.EpochsAlive() }
