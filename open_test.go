package authorindex

import (
	"bytes"
	"testing"

	"repro/internal/gen"
)

// buildDurable populates a durable index with a generated corpus plus
// cross-references and returns the works it added.
func buildDurable(t *testing.T, dir string, n int) []*Work {
	t.Helper()
	ix := openT(t, dir)
	defer ix.Close()
	works := gen.Generate(gen.Config{Seed: 31, Works: n, ZipfS: 1.1})
	chunk := make([]Work, 0, 512)
	for _, w := range works {
		cp := *w.Clone()
		chunk = append(chunk, cp)
		if len(chunk) == cap(chunk) {
			if _, err := ix.AddBatch(chunk); err != nil {
				t.Fatal(err)
			}
			chunk = chunk[:0]
		}
	}
	if len(chunk) > 0 {
		if _, err := ix.AddBatch(chunk); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 12; i++ {
		from := works[i].Authors[0]
		to := works[i+40].Authors[0]
		if from.Display() == to.Display() {
			continue
		}
		if err := ix.AddSeeAlso(from.Display(), to.Display()); err != nil {
			t.Fatal(err)
		}
	}
	return works
}

// renderAll captures every rendered artifact of an index, as a deep
// observable fingerprint for reopen comparisons.
func renderAll(t *testing.T, ix *Index) string {
	t.Helper()
	var b bytes.Buffer
	for _, opts := range []RenderOptions{
		{Format: Text, Statistics: true, Network: true},
		{Format: TSV},
		{Format: JSON, Statistics: true},
	} {
		if err := ix.Render(&b, opts); err != nil {
			t.Fatal(err)
		}
	}
	if err := ix.RenderSubjectIndex(&b, RenderOptions{Format: Text}); err != nil {
		t.Fatal(err)
	}
	if err := ix.RenderTitleIndex(&b, RenderOptions{Format: Text}); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestOpenLoadAllVerify: Open's bulk-load cold start must reproduce the
// pre-shutdown index exactly — from a compacted snapshot and from a raw
// WAL replay — and pass the full Verify cross-check after reopening.
func TestOpenLoadAllVerify(t *testing.T) {
	for _, mode := range []struct {
		name    string
		compact bool
	}{{"compacted", true}, {"wal-replay", false}} {
		t.Run(mode.name, func(t *testing.T) {
			dir := t.TempDir()
			works := buildDurable(t, dir, 1500)
			ref := openT(t, dir)
			if mode.compact {
				if err := ref.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			want := renderAll(t, ref)
			wantStats := ref.Stats()
			if err := ref.Close(); err != nil {
				t.Fatal(err)
			}

			ix := openT(t, dir)
			defer ix.Close()
			if err := ix.Verify(); err != nil {
				t.Fatalf("Verify after bulk-load Open: %v", err)
			}
			if got := renderAll(t, ix); got != want {
				t.Fatal("reopened index renders differently from the pre-close index")
			}
			st := ix.Stats()
			if st.Works != wantStats.Works || st.Authors != wantStats.Authors ||
				st.Postings != wantStats.Postings || st.CrossRefs != wantStats.CrossRefs ||
				st.Terms != wantStats.Terms || st.GraphNodes != wantStats.GraphNodes ||
				st.GraphEdges != wantStats.GraphEdges || st.GraphComponents != wantStats.GraphComponents {
				t.Fatalf("stats diverge after reopen: %+v vs %+v", st, wantStats)
			}

			// The reopened index must keep working incrementally.
			id, err := ix.Add(Work{
				Title:    "Post-Reopen Work",
				Citation: Citation{Volume: 96, Page: 10, Year: 1994},
				Authors:  []Author{{Family: "Afterwards", Given: "A."}},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Delete(works[3].ID); err != nil {
				t.Fatal(err)
			}
			if _, ok := ix.Get(id); !ok {
				t.Fatal("added work missing after bulk-load reopen")
			}
			if err := ix.Verify(); err != nil {
				t.Fatalf("Verify after post-reopen mutations: %v", err)
			}
		})
	}
}

// TestOpenLoadAllEmptyStore: a fresh directory and an in-memory open
// both go through the bulk path with zero works.
func TestOpenLoadAllEmptyStore(t *testing.T) {
	ix := openT(t, t.TempDir())
	if ix.Len() != 0 {
		t.Fatalf("Len = %d", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	if _, err := ix.Add(Work{
		Title:    "First",
		Citation: Citation{Volume: 1, Page: 1, Year: 1990},
		Authors:  []Author{{Family: "Smith", Given: "A."}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestOpenLoadAllLarge reopens a compacted store at a size where the
// bulk path's parallel rebuilds actually fan out. Kept moderate so the
// suite stays fast; BenchmarkOpen and experiment E14 cover 100k+.
func TestOpenLoadAllLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large reopen skipped under -short")
	}
	dir := t.TempDir()
	buildDurable(t, dir, 5000)
	func() {
		ix := openT(t, dir)
		defer ix.Close()
		if err := ix.Compact(); err != nil {
			t.Fatal(err)
		}
	}()
	ix := openT(t, dir)
	defer ix.Close()
	if ix.Len() != 5000 {
		t.Fatalf("Len = %d, want 5000", ix.Len())
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
	// Spot-check ordered reads stream in citation order after bulk load.
	last := Citation{}
	for i, w := range ix.YearRange(1966, 1992, 0) {
		if i > 0 && w.Citation.Year < last.Year {
			t.Fatalf("year range out of order at %d", i)
		}
		last = w.Citation
	}
}
