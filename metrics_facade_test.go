package authorindex

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func metricsFixture(t *testing.T) *Index {
	t.Helper()
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	for _, w := range GenerateCorpus(CorpusConfig{Seed: 11, Works: 120, ZipfS: 1.2}) {
		cp := *w
		cp.ID = 0
		if _, err := ix.Add(cp); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestMetricsIncrementalVsRebuild is the facade-level acceptance check:
// adds followed by deletes leave metrics byte-identical to a rebuild.
func TestMetricsIncrementalVsRebuild(t *testing.T) {
	ix := metricsFixture(t)
	for id := WorkID(1); id <= 40; id++ {
		if err := ix.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	before := ix.TopAuthors(ByWeighted, 0)
	beforeJSON, _ := json.Marshal(before)
	ix.RebuildMetrics()
	after := ix.TopAuthors(ByWeighted, 0)
	afterJSON, _ := json.Marshal(after)
	if !bytes.Equal(beforeJSON, afterJSON) {
		t.Fatal("incremental metrics not byte-identical to rebuild")
	}
	if !reflect.DeepEqual(before, after) {
		t.Fatal("incremental metrics differ structurally from rebuild")
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("verify after churn: %v", err)
	}
}

func TestFacadeAuthorMetrics(t *testing.T) {
	ix := metricsFixture(t)
	top := ix.TopAuthors(ByWorks, 1)
	if len(top) != 1 || top[0].Works < 1 {
		t.Fatalf("top = %+v", top)
	}
	m, ok := ix.AuthorMetrics(top[0].Heading)
	if !ok || !reflect.DeepEqual(m, top[0]) {
		t.Fatalf("AuthorMetrics(%q) = %+v, %v", top[0].Heading, m, ok)
	}
	if _, ok := ix.AuthorMetrics("Nobody, Known"); ok {
		t.Error("metrics for unknown heading")
	}
	sum := ix.MetricsSummary()
	if sum.Works != ix.Len() || sum.Authors == 0 {
		t.Errorf("summary = %+v", sum)
	}
}

// TestMetricsSurviveReopen proves the tracker rebuilds from the store
// on Open, matching the state before close.
func TestMetricsSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	ix, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range GenerateCorpus(CorpusConfig{Seed: 2, Works: 50}) {
		cp := *w
		cp.ID = 0
		if _, err := ix.Add(cp); err != nil {
			t.Fatal(err)
		}
	}
	want := ix.TopAuthors(ByWeighted, 0)
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix2, err := Open(dir, &Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ix2.Close()
	if got := ix2.TopAuthors(ByWeighted, 0); !reflect.DeepEqual(got, want) {
		t.Fatal("metrics differ after reopen")
	}
}

func TestSchemesDiffer(t *testing.T) {
	ix := metricsFixture(t)
	harmonic := ix.TopAuthors(ByWeighted, 0)
	if err := ix.SetMetricsScheme(SchemeFractional); err != nil {
		t.Fatal(err)
	}
	fractional := ix.TopAuthors(ByWeighted, 0)
	if reflect.DeepEqual(harmonic, fractional) {
		t.Fatal("harmonic and fractional credit identical over a multi-author corpus")
	}
	// Under the fractional scheme the two credit columns coincide.
	for _, m := range fractional {
		if m.Weighted != m.Fractional {
			t.Fatalf("fractional scheme: weighted %v != fractional %v for %s", m.Weighted, m.Fractional, m.Heading)
		}
	}
	// Invalid schemes are rejected at the facade.
	if err := ix.SetMetricsScheme(Scheme(99)); err == nil {
		t.Error("SetMetricsScheme accepted an invalid scheme")
	}
	if _, err := Open("", &Options{MetricsScheme: Scheme(99)}); err == nil {
		t.Error("Open accepted an invalid metrics scheme")
	}
}

// TestRenderStatisticsFormats is the acceptance check that Render with
// Statistics: true emits the contributor appendix in Text, Markdown and
// JSON.
func TestRenderStatisticsFormats(t *testing.T) {
	ix := metricsFixture(t)
	markers := map[Format]string{
		Text:     "— STATISTICS —",
		Markdown: "## Statistics",
		JSON:     `"statistics"`,
	}
	for f, marker := range markers {
		var buf bytes.Buffer
		if err := ix.Render(&buf, RenderOptions{Format: f, Statistics: true, StatsLimit: 5}); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if !strings.Contains(buf.String(), marker) {
			t.Errorf("%v output missing %q", f, marker)
		}
	}
	// JSON appendix parses and ranks by weighted credit descending.
	var buf bytes.Buffer
	if err := ix.Render(&buf, RenderOptions{Format: JSON, Statistics: true, StatsLimit: 5}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Statistics struct {
			Top []AuthorMetrics `json:"top"`
		} `json:"statistics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Statistics.Top) != 5 {
		t.Fatalf("appendix has %d entries, want 5", len(doc.Statistics.Top))
	}
	for i := 1; i < len(doc.Statistics.Top); i++ {
		if doc.Statistics.Top[i].Weighted > doc.Statistics.Top[i-1].Weighted {
			t.Fatal("appendix not sorted by weighted credit")
		}
	}
}
