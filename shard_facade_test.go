// Facade-level sharding tests: cross-shard batch atomicity, writer
// independence across shards (runs under -race in CI), sharded reads
// matching the unsharded engine byte for byte, and arena compaction
// actually releasing deleted works once the old epochs drain.
package authorindex

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/model"
)

func openShards(t *testing.T, dir string, n int) *Index {
	t.Helper()
	ix, err := Open(dir, &Options{NoSync: true, Shards: n})
	if err != nil {
		t.Fatalf("Open(shards=%d): %v", n, err)
	}
	return ix
}

// TestShardOptionValidation: the shard count is bounded and 0 means 1.
func TestShardOptionValidation(t *testing.T) {
	for _, bad := range []int{-1, MaxShards + 1} {
		if _, err := Open("", &Options{Shards: bad}); err == nil {
			t.Errorf("Open accepted Shards=%d", bad)
		}
	}
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	if got := ix.Stats().Shards; got != 1 {
		t.Errorf("default Stats.Shards = %d, want 1", got)
	}
}

// TestShardBatchAtomicityCrossShard: a batch whose works span several
// shards and whose engine pass fails on a later shard must leave every
// shard — including the ones that had already indexed their group into
// clones — and the store byte-identical to the pre-batch state.
func TestShardBatchAtomicityCrossShard(t *testing.T) {
	dir := t.TempDir()
	ix := openShards(t, dir, 4)
	if _, err := ix.AddBatch(batchOf(12, 1)); err != nil {
		t.Fatal(err)
	}

	// Explicit fresh IDs chosen to span several shards, with the poison
	// pill routed to the highest shard ID: the two-phase pass locks
	// shards ascending, so every earlier shard has already built its
	// clone when the failure hits — exactly the rollback worth testing.
	batch := batchOf(8, 2)
	shardsHit := map[int]bool{}
	maxShard, poison := -1, -1
	for i := range batch {
		id := WorkID(1000 + i)
		batch[i].ID = id
		si := ix.shards.ForWork(id)
		shardsHit[si] = true
		if si > maxShard {
			maxShard, poison = si, i
		}
	}
	if len(shardsHit) < 2 {
		t.Fatalf("test batch landed on %d shard(s), need >= 2", len(shardsHit))
	}
	batch[poison].Title = "poison " + batch[poison].Title

	before := facadeFingerprint(t, ix)
	engineAddFault = func(w *Work) error {
		if strings.HasPrefix(w.Title, "poison ") {
			return fmt.Errorf("injected engine failure")
		}
		return nil
	}
	defer func() { engineAddFault = nil }()
	if _, err := ix.AddBatch(batch); err == nil {
		t.Fatal("poisoned cross-shard batch accepted")
	}
	engineAddFault = nil

	if after := facadeFingerprint(t, ix); after != before {
		t.Fatal("failed cross-shard batch left some shard or the store changed")
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after failed cross-shard batch: %v", err)
	}
	// A reopen (rebuilding every shard from the store) must agree.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openShards(t, dir, 4)
	defer ix.Close()
	if got := ix.Len(); got != 12 {
		t.Errorf("recovered Len = %d, want 12", got)
	}
	if err := ix.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestShardSameIDWritersConverge: concurrent writers colliding on the
// SAME explicit IDs — a batch against single Adds — must leave store
// and index identical. Regression: AddBatch once captured prior
// versions and committed the store before taking the touched shards'
// locks, so two writers on one ID could commit to the store in one
// order and publish to the shard engines in the other, leaving them
// permanently divergent (Verify failed). Each round contends on fresh
// IDs written exactly twice, so one bad interleaving anywhere sticks
// to the end instead of being papered over by a later rewrite. Runs
// under -race in CI.
func TestShardSameIDWritersConverge(t *testing.T) {
	ix := openShards(t, t.TempDir(), 4)
	defer ix.Close()

	const pairs, rounds, perRound = 2, 120, 4
	mkBatch := func(pair, round, writer int) []Work {
		base := WorkID(1 + (pair*rounds+round)*perRound)
		batch := make([]Work, perRound)
		for i := range batch {
			w := sampleWork(
				fmt.Sprintf("Contended Work %d Pair %d Writer %d", base+WorkID(i), pair, writer),
				fmt.Sprintf("%d:%d (1999)", pair+1, round+1),
				fmt.Sprintf("Writer%d, W.", writer),
			)
			w.ID = base + WorkID(i)
			batch[i] = w
		}
		return batch
	}

	var wg sync.WaitGroup
	errs := make(chan error, 2*pairs)
	for p := 0; p < pairs; p++ {
		// Writer 0 commits each round's IDs as one batch; writer 1
		// rewrites the same IDs one Add at a time, concurrently.
		for writer := 0; writer < 2; writer++ {
			wg.Add(1)
			go func(p, writer int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					if writer == 0 {
						if _, err := ix.AddBatch(mkBatch(p, r, writer)); err != nil {
							errs <- err
							return
						}
						continue
					}
					for _, w := range mkBatch(p, r, writer) {
						if _, err := ix.Add(w); err != nil {
							errs <- err
							return
						}
					}
				}
			}(p, writer)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got, want := ix.Len(), pairs*rounds*perRound; got != want {
		t.Errorf("Len = %d, want %d", got, want)
	}
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after contended same-ID writes: %v", err)
	}
}

// TestShardWritersIndependent: a writer stalled inside its home shard's
// critical section must not delay a writer on a different shard. Runs
// under -race in CI with real concurrency.
func TestShardWritersIndependent(t *testing.T) {
	ix := openShards(t, t.TempDir(), 4)
	defer ix.Close()

	// Two explicit IDs with different home shards.
	idA := WorkID(1)
	idB := WorkID(0)
	for id := WorkID(2); id < 200; id++ {
		if ix.shards.ForWork(id) != ix.shards.ForWork(idA) {
			idB = id
			break
		}
	}
	if idB == 0 {
		t.Fatal("no second shard reachable")
	}

	release := make(chan struct{})
	parked := make(chan struct{})
	var once sync.Once
	engineAddFault = func(w *Work) error {
		if strings.HasPrefix(w.Title, "Slow") {
			once.Do(func() { close(parked) })
			<-release
		}
		return nil
	}
	defer func() { engineAddFault = nil }()

	slowDone := make(chan error, 1)
	go func() {
		w := sampleWork("Slow Shard Work", "90:1 (1988)", "Stall, Writer A.")
		w.ID = idA
		_, err := ix.Add(w)
		slowDone <- err
	}()
	<-parked

	// Shard A's writer is parked holding its shard lock; a writer on
	// shard B must commit without waiting for it.
	fastDone := make(chan error, 1)
	go func() {
		w := sampleWork("Fast Shard Work", "90:2 (1988)", "Free, Writer B.")
		w.ID = idB
		_, err := ix.Add(w)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast Add: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("writer on shard B blocked behind a stalled writer on shard A")
	}

	// Reads must also proceed while the writer is parked.
	if got := ix.Len(); got != 1 {
		t.Errorf("Len during stalled write = %d, want 1", got)
	}

	close(release)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow Add: %v", err)
	}
	engineAddFault = nil
	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
}

// TestShardedReadsMatchUnsharded: the same corpus opened at shards=1
// and shards=4 must be observably identical — renders byte for byte,
// plus author, search, subject, pagination and stats agreement. This
// pins down every k-way merge at once.
func TestShardedReadsMatchUnsharded(t *testing.T) {
	dir := t.TempDir()
	ix1 := openT(t, dir)
	if _, err := ix1.AddBatch(batchOf(40, 7)); err != nil {
		t.Fatal(err)
	}
	if err := ix1.AddSeeAlso("Batch, Author 0.", "Batch, Author 1."); err != nil {
		t.Fatal(err)
	}

	render := func(ix *Index, f Format) string {
		var buf bytes.Buffer
		if err := ix.Render(&buf, RenderOptions{Format: f}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	titleIdx := func(ix *Index) string {
		var buf bytes.Buffer
		if err := ix.RenderTitleIndex(&buf, RenderOptions{Format: Text}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	// Authors returns pointers; format element-wise so the comparison
	// sees values, not addresses.
	fmtEntries := func(entries []*Entry) string {
		var sb strings.Builder
		for _, e := range entries {
			fmt.Fprintf(&sb, "%+v\n", *e)
		}
		return sb.String()
	}

	wantText, wantTSV, wantJSON := render(ix1, Text), render(ix1, TSV), render(ix1, JSON)
	wantTitles := titleIdx(ix1)
	wantAuthors := fmtEntries(ix1.Authors("", 0))
	wantPage := fmtEntries(ix1.AuthorsPage("", 7))
	wantSearch := fmt.Sprintf("%+v", ix1.Search("batch", 0))
	wantYears := fmt.Sprintf("%+v", ix1.YearRange(1960, 1999, 0))
	wantSubjects := fmt.Sprintf("%+v", ix1.Subjects())
	st1 := ix1.Stats()
	if err := ix1.Close(); err != nil {
		t.Fatal(err)
	}

	ix4 := openShards(t, dir, 4)
	defer ix4.Close()
	if err := ix4.Verify(); err != nil {
		t.Fatalf("Verify at shards=4: %v", err)
	}
	if got := render(ix4, Text); got != wantText {
		t.Error("text render differs between shards=1 and shards=4")
	}
	if got := render(ix4, TSV); got != wantTSV {
		t.Error("tsv render differs between shards=1 and shards=4")
	}
	if got := render(ix4, JSON); got != wantJSON {
		t.Error("json render differs between shards=1 and shards=4")
	}
	if got := titleIdx(ix4); got != wantTitles {
		t.Error("title index differs between shards=1 and shards=4")
	}
	if got := fmtEntries(ix4.Authors("", 0)); got != wantAuthors {
		t.Error("Authors differ between shards=1 and shards=4")
	}
	if got := fmtEntries(ix4.AuthorsPage("", 7)); got != wantPage {
		t.Error("AuthorsPage differs between shards=1 and shards=4")
	}
	if got := fmt.Sprintf("%+v", ix4.Search("batch", 0)); got != wantSearch {
		t.Error("Search differs between shards=1 and shards=4")
	}
	if got := fmt.Sprintf("%+v", ix4.YearRange(1960, 1999, 0)); got != wantYears {
		t.Error("YearRange differs between shards=1 and shards=4")
	}
	if got := fmt.Sprintf("%+v", ix4.Subjects()); got != wantSubjects {
		t.Error("Subjects differ between shards=1 and shards=4")
	}
	st4 := ix4.Stats()
	if st4.Works != st1.Works || st4.Authors != st1.Authors ||
		st4.Postings != st1.Postings || st4.CrossRefs != st1.CrossRefs {
		t.Errorf("core stats differ: shards=1 %+v, shards=4 %+v", st1, st4)
	}
	if st4.Shards != 4 {
		t.Errorf("Stats.Shards = %d, want 4", st4.Shards)
	}
	if got := ix4.EpochsAlive(); got != 4 {
		t.Errorf("EpochsAlive at shards=4 quiescence = %d, want 4", got)
	}
}

// TestArenaCompactionReclaimsMemory: after a bulk delete crosses the
// dead-slot threshold, the writer compacts the bulk-load arena; once
// the pre-compaction epochs drain, the deleted works become garbage —
// observed directly with a finalizer.
func TestArenaCompactionReclaimsMemory(t *testing.T) {
	dir := t.TempDir()
	ix := openT(t, dir)
	ids, err := ix.AddBatch(batchOf(40, 9))
	if err != nil {
		t.Fatal(err)
	}
	// Reopen: the cold start bulk-loads the corpus into the arena slab,
	// which is what pins deleted works until compaction.
	if err := ix.Close(); err != nil {
		t.Fatal(err)
	}
	ix = openT(t, dir)
	defer ix.Close()

	ep := ix.shards.Shard(0).Pin()
	if total, dead := ep.Eng.ArenaStats(); total != 40 || dead != 0 {
		t.Fatalf("arena after reopen = (%d, %d), want (40, 0)", total, dead)
	}
	victim, ok := ep.Eng.WorkView(ids[0])
	if !ok {
		t.Fatal("work 0 missing after reopen")
	}
	freed := make(chan struct{})
	runtime.SetFinalizer(victim, func(*model.Work) { close(freed) })
	victim = nil
	ep.Release()

	// Delete 30 of 40: the dead ratio crosses the 0.5 threshold inside
	// the batch, so the published engine carries a compacted arena.
	if err := ix.DeleteBatch(ids[:30]); err != nil {
		t.Fatal(err)
	}
	ep = ix.shards.Shard(0).Pin()
	if total, dead := ep.Eng.ArenaStats(); total != 10 || dead != 0 {
		t.Errorf("arena after compacting delete = (%d, %d), want (10, 0)", total, dead)
	}
	ep.Release()

	// Wait for the pre-compaction epochs to drain, then force GC until
	// the finalizer proves the deleted work was actually released.
	deadline := time.Now().Add(5 * time.Second)
	for ix.EpochsAlive() > 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	for {
		runtime.GC()
		select {
		case <-freed:
			if err := ix.Verify(); err != nil {
				t.Fatalf("Verify after compaction: %v", err)
			}
			return
		default:
		}
		if time.Now().After(deadline) {
			t.Fatal("deleted arena work never became collectible after compaction + epoch drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Satellite regression: render appendix limits route through the shared
// clamp — zero and negative limits mean the documented default of 10,
// and absurd explicit limits clamp to MaxLimit instead of passing
// through raw.
func TestRenderAppendixLimitClamped(t *testing.T) {
	for _, n := range []int{-5, 0} {
		if got := appendixLimit(n); got != 10 {
			t.Errorf("appendixLimit(%d) = %d, want 10", n, got)
		}
	}
	if got := appendixLimit(7); got != 7 {
		t.Errorf("appendixLimit(7) = %d, want 7", got)
	}
	if got := appendixLimit(MaxLimit + 1); got != MaxLimit {
		t.Errorf("appendixLimit(MaxLimit+1) = %d, want %d", got, MaxLimit)
	}

	// End to end: a render asked for a negative appendix limit behaves
	// exactly like the default top-10 render.
	ix := openT(t, t.TempDir())
	defer ix.Close()
	if _, err := ix.AddBatch(batchOf(15, 4)); err != nil {
		t.Fatal(err)
	}
	render := func(statsLimit, netLimit int) string {
		var buf bytes.Buffer
		err := ix.Render(&buf, RenderOptions{
			Format: JSON, Statistics: true, Network: true,
			StatsLimit: statsLimit, NetworkLimit: netLimit,
		})
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	want := render(10, 10)
	for _, n := range []int{-3, 0} {
		if got := render(n, n); got != want {
			t.Errorf("render with appendix limit %d differs from explicit 10", n)
		}
	}
}
