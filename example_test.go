package authorindex_test

import (
	"fmt"
	"strings"

	authorindex "repro"
)

func must[T any](v T, err error) T {
	if err != nil {
		panic(err)
	}
	return v
}

// Example shows the minimal life cycle: open, add, look up, render.
func Example() {
	ix := must(authorindex.Open("", nil)) // in-memory
	defer ix.Close()

	must(ix.Add(authorindex.Work{
		Title:    "Unlocking the Fire",
		Citation: authorindex.Citation{Volume: 94, Page: 563, Year: 1992},
		Authors: []authorindex.Author{
			{Family: "Lewin", Given: "Jeff L."},
			{Family: "Peng", Given: "Syd S."},
		},
	}))

	entry, _ := ix.Author("Lewin, Jeff L.")
	fmt.Printf("%s: %d work(s), first cited %s\n",
		authorindex.FormatAuthor(entry.Author), len(entry.Works), entry.Works[0].Citation)
	// Output: Lewin, Jeff L.: 1 work(s), first cited 94:563 (1992)
}

// ExampleIndex_Search demonstrates the boolean title-query language.
func ExampleIndex_Search() {
	ix := must(authorindex.Open("", nil))
	defer ix.Close()
	add := func(title string, page int) {
		must(ix.Add(authorindex.Work{
			Title:    title,
			Citation: authorindex.Citation{Volume: 90, Page: page, Year: 1988},
			Authors:  []authorindex.Author{{Family: "Writer"}},
		}))
	}
	add("Surface Mining Control", 1)
	add("Deep Mining Safety", 50)
	add("Surface Water Rights", 100)

	for _, w := range ix.Search("mining -deep", 0) {
		fmt.Println(w.Title)
	}
	// Output: Surface Mining Control
}

// ExampleIndex_Render prints the classic three-column artifact.
func ExampleIndex_Render() {
	ix := must(authorindex.Open("", nil))
	defer ix.Close()
	must(ix.Add(authorindex.Work{
		Title:    "Ideas of Relevance to Law",
		Citation: authorindex.Citation{Volume: 84, Page: 1, Year: 1981},
		Authors:  []authorindex.Author{{Family: "Adler", Given: "Mortimer J."}},
	}))
	var page strings.Builder
	_ = ix.Render(&page, authorindex.RenderOptions{
		Format:     authorindex.Text,
		NoSections: true,
	})
	for _, line := range strings.Split(page.String(), "\n") {
		if strings.Contains(line, "Adler") {
			fmt.Println(strings.TrimRight(line, " "))
		}
	}
	// Output: Adler, Mortimer J.       Ideas of Relevance to Law                 84:1 (1981)
}

// ExampleIndex_CollaborationPath walks the coauthorship network: who
// connects two authors, and how central is the connector?
func ExampleIndex_CollaborationPath() {
	ix := must(authorindex.Open("", nil))
	defer ix.Close()
	add := func(page int, headings ...string) {
		w := authorindex.Work{
			Title:    "Joint Work",
			Citation: authorindex.Citation{Volume: 94, Page: page, Year: 1992},
		}
		for _, h := range headings {
			w.Authors = append(w.Authors, must(authorindex.ParseAuthor(h)))
		}
		must(ix.Add(w))
	}
	add(100, "Lewin, Jeff L.", "Peng, Syd S.")
	add(200, "Peng, Syd S.", "Cardi, Vincent P.")

	path, _ := ix.CollaborationPath("Lewin, Jeff L.", "Cardi, Vincent P.")
	fmt.Printf("%d hops: %s\n", len(path)-1, strings.Join(path, " → "))

	s := ix.GraphSummary()
	fmt.Printf("network: %d authors, %d pairs, %d component(s)\n", s.Nodes, s.Edges, s.Components)
	fmt.Printf("most central: %s\n", s.TopCentral[0].Heading)
	// Output:
	// 2 hops: Lewin, Jeff L. → Peng, Syd S. → Cardi, Vincent P.
	// network: 3 authors, 2 pairs, 1 component(s)
	// most central: Peng, Syd S.
}

// ExampleParseAuthor shows heading-string parsing.
func ExampleParseAuthor() {
	a := must(authorindex.ParseAuthor("Van Tol, Joan E."))
	fmt.Printf("particle=%q family=%q given=%q\n", a.Particle, a.Family, a.Given)
	b := must(authorindex.ParseAuthor("Abdalla, Tarek F.*"))
	fmt.Printf("student=%v\n", b.Student)
	// Output:
	// particle="Van" family="Tol" given="Joan E."
	// student=true
}
