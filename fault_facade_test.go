package authorindex

import (
	"errors"
	"fmt"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// The chaos suite: for every write operation the facade exposes, first
// count how many injectable I/O calls one successful run makes, then
// re-run the operation in a fresh index failing each call site in
// turn. Whatever call fails, the same invariants must hold:
//
//   - the operation reports an error,
//   - the commit is atomically absent (no partial state),
//   - the index is degraded and the next write fails fast with
//     ErrDegraded,
//   - reads still serve the last committed state and Verify stays
//     green,
//   - Close succeeds (a failed fd is never fsynced again), and
//   - a clean reopen recovers every pre-fault commit and is writable.

// chaosOp is one write operation under test.
type chaosOp struct {
	name   string
	shards int
	run    func(ix *Index) error
}

func chaosOps() []chaosOp {
	add := func(ix *Index) error {
		_, err := ix.Add(sampleWork("Doomed Work", "99:1 (1999)", "Nobody, At All"))
		return err
	}
	addBatch := func(ix *Index) error {
		_, err := ix.AddBatch([]Work{
			sampleWork("Doomed A", "99:1 (1999)", "Nobody, At All"),
			sampleWork("Doomed B", "99:50 (1999)", "Nobody, At All", "Lewin, Jeff L."),
			sampleWork("Doomed C", "99:90 (1999)", "Peng, Syd S."),
		})
		return err
	}
	return []chaosOp{
		{"add", 1, add},
		{"add_batch", 1, addBatch},
		{"add_batch_sharded", 3, addBatch},
		{"delete", 1, func(ix *Index) error {
			return ix.Delete(1)
		}},
		{"delete_batch", 1, func(ix *Index) error {
			return ix.DeleteBatch([]WorkID{1, 2})
		}},
		{"see_also", 1, func(ix *Index) error {
			return ix.AddSeeAlso("Lewin, J.", "Lewin, Jeff L.")
		}},
		{"compact", 1, func(ix *Index) error {
			return ix.Compact()
		}},
	}
}

// seedChaos opens a durable index on the injector's FS and commits the
// two-work baseline with the injector disarmed.
func seedChaos(t *testing.T, dir string, in *fault.Injector, shards int) *Index {
	t.Helper()
	ix, err := Open(dir, &Options{FS: in, Shards: shards})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := ix.Add(sampleWork("Unlocking the Fire", "94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S.")); err != nil {
		t.Fatalf("seed add 1: %v", err)
	}
	if _, err := ix.Add(sampleWork("The Silent Revolution", "92:235 (1989)", "Lewin, Jeff L.")); err != nil {
		t.Fatalf("seed add 2: %v", err)
	}
	return ix
}

// checkBaseline asserts the two seeded commits — and nothing else —
// are visible.
func checkBaseline(t *testing.T, ix *Index, when string) {
	t.Helper()
	st := ix.Stats()
	if st.Works != 2 {
		t.Fatalf("%s: Works = %d, want the 2 seeded commits", when, st.Works)
	}
	if st.CrossRefs != 0 {
		t.Fatalf("%s: CrossRefs = %d, want 0", when, st.CrossRefs)
	}
	for id, title := range map[WorkID]string{1: "Unlocking the Fire", 2: "The Silent Revolution"} {
		w, ok := ix.Get(id)
		if !ok || w.Title != title {
			t.Fatalf("%s: Get(%d) = %v,%v — committed work lost", when, id, w, ok)
		}
	}
	if e, ok := ix.Author("Lewin, Jeff L."); !ok || len(e.Works) != 2 {
		t.Fatalf("%s: Author lookup degraded to %+v,%v", when, e, ok)
	}
}

// TestFaultChaosEveryWriteCallSite is the exhaustive sweep.
func TestFaultChaosEveryWriteCallSite(t *testing.T) {
	for _, op := range chaosOps() {
		t.Run(op.name, func(t *testing.T) {
			// Probe: count the injectable calls of one successful run.
			probe := fault.NewInjector(nil)
			ix := seedChaos(t, t.TempDir(), probe, op.shards)
			probe.Arm()
			if err := op.run(ix); err != nil {
				t.Fatalf("probe run: %v", err)
			}
			calls := probe.Calls()
			probe.Disarm()
			if err := ix.Close(); err != nil {
				t.Fatalf("probe close: %v", err)
			}
			if calls == 0 {
				t.Fatalf("%s makes no injectable I/O calls; sweep is vacuous", op.name)
			}

			for k := int64(1); k <= calls; k++ {
				t.Run(fmt.Sprintf("call_%d_of_%d", k, calls), func(t *testing.T) {
					dir := t.TempDir()
					in := fault.NewInjector(nil)
					ix := seedChaos(t, dir, in, op.shards)
					in.Arm()
					in.Fail(fault.Rule{Nth: k, Err: syscall.EIO})
					err := op.run(ix)
					in.Disarm()
					if in.Hits() == 0 {
						// The op finished before reaching call k (it can
						// make fewer calls than the probe when a failure
						// path short-circuits); nothing to assert.
						t.Skipf("call %d not reached", k)
					}
					if err == nil {
						t.Fatalf("%s with call %d failing reported success", op.name, k)
					}

					// Sticky degraded: the next write fails fast.
					if deg, cause := ix.Degraded(); !deg || cause == nil {
						t.Fatalf("not degraded after injected failure (deg=%v cause=%v)", deg, cause)
					}
					if _, err := ix.Add(sampleWork("After", "99:2 (1999)", "Late, Too")); !errors.Is(err, ErrDegraded) {
						t.Fatalf("write after fault = %v, want ErrDegraded", err)
					}

					// The failed commit is atomically absent; reads and
					// invariants hold on the degraded index.
					checkBaseline(t, ix, "degraded")
					if err := ix.Verify(); err != nil {
						t.Fatalf("Verify on degraded index: %v", err)
					}
					if err := ix.Close(); err != nil {
						t.Fatalf("close degraded index: %v", err)
					}

					// Clean reopen: everything committed recovers, the
					// latch is gone, and the index accepts writes again.
					ix2, err := Open(dir, &Options{Shards: op.shards})
					if err != nil {
						t.Fatalf("reopen: %v", err)
					}
					defer ix2.Close()
					checkBaseline(t, ix2, "reopened")
					if err := ix2.Verify(); err != nil {
						t.Fatalf("Verify after reopen: %v", err)
					}
					if deg, _ := ix2.Degraded(); deg {
						t.Fatal("reopened index inherited the degraded latch")
					}
					if _, err := ix2.Add(sampleWork("Recovered", "99:3 (1999)", "Back, Welcome")); err != nil {
						t.Fatalf("write after reopen: %v", err)
					}
				})
			}
		})
	}
}

// TestFaultChaosDegradedStatsAndMetrics pins the observability wiring:
// the facade Stats carry the latch and RegisterMetrics exposes the
// authdex_degraded gauge and degraded-commit counter.
func TestFaultChaosDegradedStatsAndMetrics(t *testing.T) {
	in := fault.NewInjector(nil)
	ix := seedChaos(t, t.TempDir(), in, 1)
	defer ix.Close()
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpSync, Nth: 1, Err: syscall.ENOSPC})
	if _, err := ix.Add(sampleWork("Doomed", "99:1 (1999)", "Nobody, At All")); err == nil {
		t.Fatal("add with failing fsync succeeded")
	}
	in.Disarm()
	st := ix.Stats()
	if !st.Degraded || st.DegradedReason == "" || st.DegradedWrites != 1 {
		t.Fatalf("degraded stats = %+v", st)
	}
	if _, err := ix.Add(sampleWork("Again", "99:2 (1999)", "Nobody, At All")); !errors.Is(err, ErrDegraded) {
		t.Fatalf("second add = %v, want ErrDegraded", err)
	}
	if st = ix.Stats(); st.DegradedWrites != 2 {
		t.Fatalf("DegradedWrites = %d, want trigger + 1 rejection", st.DegradedWrites)
	}
}
