// Tests for the traced facade: the Ctx entry points must produce
// well-formed span trees (every span ended once, children nested in
// their parents) across layers and across goroutines, and the plain
// methods — the disabled path — must not pay for tracing at all.
package authorindex

import (
	"context"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"repro/internal/trace"
)

// findSpan walks a snapshot tree depth-first for a span by name.
func findSpan(d *trace.SpanData, name string) *trace.SpanData {
	if d.Name == name {
		return d
	}
	for i := range d.Children {
		if f := findSpan(&d.Children[i], name); f != nil {
			return f
		}
	}
	return nil
}

// tracedIndex is openT plus three works, so scans have something to hit.
func tracedIndex(t *testing.T) *Index {
	t.Helper()
	ix := openT(t, t.TempDir())
	t.Cleanup(func() { ix.Close() })
	for _, w := range []Work{
		sampleWork("Surface Mining Reclamation", "75:319 (1973)", "Cardi, Vincent P."),
		sampleWork("Coalbed Methane Ownership", "94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S."),
		sampleWork("Nuisance Law Revisited", "92:235 (1989)", "Lewin, Jeff L."),
	} {
		if _, err := ix.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestTracedSearchSpanTree pins the per-layer shape of a read: the
// snapshot read path takes no lock, so the engine scan (with its
// postings-intersection child) and the clone pass nest directly under
// the facade span — there are no lock.rwait/lock.rhold spans left to
// record — and the span carries the epoch that served it.
func TestTracedSearchSpanTree(t *testing.T) {
	ix := tracedIndex(t)
	tracer := trace.NewTracer(trace.Config{})
	ctx, tr := tracer.StartRoot(context.Background(), "req-1", "test search")
	if got := ix.SearchCtx(ctx, "mining or nuisance", 10); len(got) != 2 {
		t.Fatalf("SearchCtx = %d works", len(got))
	}
	tr.Finish("test")
	if err := tr.Check(); err != nil {
		t.Fatalf("malformed trace: %v", err)
	}

	root := tr.Data().Root
	search := findSpan(&root, "facade.search")
	if search == nil {
		t.Fatalf("no facade.search span:\n%v", root)
	}
	for _, name := range []string{"engine.title_scan", "facade.clone"} {
		found := false
		for i := range search.Children {
			if search.Children[i].Name == name {
				found = true
			}
		}
		if !found {
			t.Errorf("facade.search lacks direct child %q", name)
		}
	}
	for _, stale := range []string{"lock.rwait", "lock.rhold"} {
		if findSpan(search, stale) != nil {
			t.Errorf("lock-free facade.search still records %q", stale)
		}
	}
	scan := findSpan(search, "engine.title_scan")
	if findSpan(scan, "inverted.intersect") == nil {
		t.Error("engine.title_scan lacks inverted.intersect child")
	}
	hasEpoch := false
	for _, a := range search.Attrs {
		if a.Key == "epoch" {
			hasEpoch = true
		}
	}
	if !hasEpoch {
		t.Error("facade.search span lacks epoch attribute")
	}
}

// TestTracedWriteSpanTree: a traced AddBatch carries the commit down
// to the WAL — store.put_batch under the facade span (the group commit
// runs before the home shards are known, since the store assigns the
// IDs that route works to shards), wal.encode and wal.fsync under
// that, and a lock.hold span covering the shard indexing phase.
func TestTracedWriteSpanTree(t *testing.T) {
	// A syncing index, unlike openT's NoSync one: the fsync span only
	// exists when the WAL actually reaches the disk.
	ix, err0 := Open(t.TempDir(), nil)
	if err0 != nil {
		t.Fatal(err0)
	}
	defer ix.Close()
	tracer := trace.NewTracer(trace.Config{})
	ctx, tr := tracer.StartRoot(context.Background(), "req-2", "test add")
	_, err := ix.AddBatchCtx(ctx, []Work{
		sampleWork("Batched One", "91:1 (1989)", "Pipeline, Walter A."),
		sampleWork("Batched Two", "91:2 (1989)", "Commit, Grace"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tr.Finish("test")
	if err := tr.Check(); err != nil {
		t.Fatalf("malformed trace: %v", err)
	}
	root := tr.Data().Root
	fac := findSpan(&root, "facade.add_batch")
	if fac == nil {
		t.Fatal("no facade.add_batch span")
	}
	put := findSpan(fac, "store.put_batch")
	if put == nil {
		t.Fatal("store.put_batch not nested under facade.add_batch")
	}
	for _, name := range []string{"wal.encode", "wal.fsync"} {
		if findSpan(put, name) == nil {
			t.Errorf("store.put_batch lacks %q descendant", name)
		}
	}
	if findSpan(fac, "lock.hold") == nil {
		t.Fatal("no lock.hold span under facade.add_batch")
	}
}

// TestTracedRenderSpanTree: rendering records the appendix builds and
// one span per section, all nested under the read hold.
func TestTracedRenderSpanTree(t *testing.T) {
	ix := tracedIndex(t)
	tracer := trace.NewTracer(trace.Config{})
	ctx, tr := tracer.StartRoot(context.Background(), "req-3", "test render")
	var sb strings.Builder
	if err := ix.RenderCtx(ctx, &sb, RenderOptions{Format: Text}); err != nil {
		t.Fatal(err)
	}
	tr.Finish("test")
	if err := tr.Check(); err != nil {
		t.Fatalf("malformed trace: %v", err)
	}
	root := tr.Data().Root
	rnd := findSpan(&root, "render")
	if rnd == nil {
		t.Fatal("no render span")
	}
	if findSpan(rnd, "render.sections") == nil {
		t.Error("render lacks render.sections child")
	}
	// Fixture headings span C, L and P: at least one per-letter span.
	var sections int
	for i := range rnd.Children {
		if strings.HasPrefix(rnd.Children[i].Name, "render.section ") {
			sections++
		}
	}
	if sections < 3 {
		t.Errorf("render recorded %d section spans, want >= 3", sections)
	}
}

// TestTracedRenderHonorsCancel: a context canceled mid-render aborts
// between sections with ctx.Err instead of writing the whole artifact.
func TestTracedRenderHonorsCancel(t *testing.T) {
	ix := tracedIndex(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ix.RenderCtx(ctx, io.Discard, RenderOptions{Format: Text})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Errorf("canceled render returned %v, want context.Canceled", err)
	}
}

// TestTracingDisabledPathAllocs: calling the Ctx variants with a bare
// context.Background() — what the plain methods do — must allocate
// exactly as much as an untraced call. The whole tracing subsystem
// rides on this: the facade threads contexts unconditionally.
func TestTracingDisabledPathAllocs(t *testing.T) {
	ix := tracedIndex(t)
	ctx := context.Background()
	plain := testing.AllocsPerRun(200, func() {
		if got := ix.Search("mining", 4); len(got) == 0 {
			t.Fatal("no hits")
		}
	})
	traced := testing.AllocsPerRun(200, func() {
		if got := ix.SearchCtx(ctx, "mining", 4); len(got) == 0 {
			t.Fatal("no hits")
		}
	})
	if traced > plain {
		t.Errorf("disabled-path SearchCtx allocates %v/op vs %v/op untraced", traced, plain)
	}
}

// TestTracedFacadeHammer runs traced readers against traced writers
// under -race: every resulting trace must still be a well-formed tree
// (spans ended exactly once, children nested), proving the context
// propagation does not race even while the lock spans interleave.
func TestTracedFacadeHammer(t *testing.T) {
	ix := tracedIndex(t)
	tracer := trace.NewTracer(trace.Config{RingSize: 4})

	const (
		readers = 4
		writers = 2
		iters   = 40
	)
	var wg sync.WaitGroup
	errs := make(chan error, (readers+writers)*iters)
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, tr := tracer.StartRoot(context.Background(), "", "hammer read")
				switch i % 3 {
				case 0:
					ix.SearchCtx(ctx, "mining", 8)
				case 1:
					ix.YearRangeCtx(ctx, 1970, 1995, 8)
				default:
					ix.AuthorsCtx(ctx, "", 8)
				}
				tr.Finish("hammer read")
				if err := tr.Check(); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				ctx, tr := tracer.StartRoot(context.Background(), "", "hammer write")
				w := sampleWork(
					fmt.Sprintf("Hammer Work %d-%d", g, i),
					fmt.Sprintf("9%d:%d (199%d)", g, i+1, g),
					fmt.Sprintf("Hammer, Writer %d.", g))
				if _, err := ix.AddCtx(ctx, w); err != nil {
					errs <- err
				}
				tr.Finish("hammer write")
				if err := tr.Check(); err != nil {
					errs <- err
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
