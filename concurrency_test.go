// Concurrency hammer for the zero-copy read path: parallel facade reads
// must stay consistent — and race-free under `go test -race` — while
// writers add and delete works. The read methods deliberately clone
// results after releasing the read lock, so this test is the guard that
// the works those views reference really are immutable.
package authorindex

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestParallelReadsDuringMutation(t *testing.T) {
	ix, err := Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()

	const seedWorks = 200
	mkWork := func(i int) Work {
		return Work{
			Title:    fmt.Sprintf("Surface Mining Study %d", i),
			Kind:     KindArticle,
			Authors:  []Author{{Family: fmt.Sprintf("Family%d", i%23), Given: "A."}},
			Citation: Citation{Volume: 1 + i%40, Page: 1 + i, Year: 1970 + i%30},
			Subjects: []string{"Surface Mining Reclamation"},
		}
	}
	ids := make([]WorkID, seedWorks)
	for i := range ids {
		id, err := ix.Add(mkWork(i))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}

	var (
		wg    sync.WaitGroup
		stop  atomic.Bool
		fails atomic.Int32
	)
	check := func(ok bool, format string, args ...any) {
		if !ok && fails.Add(1) < 5 {
			t.Errorf(format, args...)
		}
	}

	// Writers: churn the upper half of the corpus with delete+re-add,
	// each writer on its own quarter so the ids slots stay disjoint.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				n := seedWorks/2 + w*(seedWorks/4) + i%(seedWorks/4)
				if err := ix.Delete(ids[n]); err != nil {
					check(false, "writer %d: Delete: %v", w, err)
					return
				}
				id, err := ix.Add(mkWork(n))
				if err != nil {
					check(false, "writer %d: Add: %v", w, err)
					return
				}
				ids[n] = id // only this writer's partition index is touched concurrently
			}
		}(w)
	}

	// A batch writer: churn a dedicated slice of the corpus through
	// DeleteBatch + AddBatch so group commits race the readers and the
	// single-work writers.
	wg.Add(1)
	go func() {
		defer wg.Done()
		const lo, width = seedWorks, 16 // ids beyond the seeded range are batch-owned
		for i := 0; !stop.Load(); i++ {
			works := make([]Work, width)
			for j := range works {
				works[j] = mkWork(lo + j)
			}
			newIDs, err := ix.AddBatch(works)
			if err != nil {
				check(false, "batch writer: AddBatch: %v", err)
				return
			}
			if err := ix.DeleteBatch(newIDs); err != nil {
				check(false, "batch writer: DeleteBatch: %v", err)
				return
			}
		}
	}()

	// Readers: every ordered read plus stats, validating what comes back.
	reader := func(read func(i int)) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				read(i)
			}
		}()
	}
	reader(func(i int) {
		works := ix.Search("surface mining", 20)
		check(len(works) > 0, "Search returned nothing")
		for j := 1; j < len(works); j++ {
			check(works[j-1].Citation.Compare(works[j].Citation) <= 0,
				"Search results out of citation order: %v before %v", works[j-1].Citation, works[j].Citation)
		}
		for _, w := range works {
			check(w.Validate() == nil, "Search returned invalid work: %v", w)
		}
	})
	reader(func(i int) {
		works := ix.YearRange(1970, 1999, 15)
		check(len(works) > 0, "YearRange returned nothing")
		for j := 1; j < len(works); j++ {
			check(works[j-1].Citation.Compare(works[j].Citation) <= 0,
				"YearRange results out of citation order")
		}
	})
	reader(func(i int) {
		works := ix.BySubject("Surface Mining Reclamation", 10)
		check(len(works) > 0, "BySubject returned nothing")
	})
	reader(func(i int) {
		// The lower half is never deleted, so Get must always succeed and
		// the clone must survive mutation of everything around it.
		w, ok := ix.Get(ids[i%(seedWorks/2)])
		check(ok && w.Validate() == nil, "Get lost a stable work")
	})
	reader(func(i int) {
		st := ix.Stats()
		check(st.Works > 0, "Stats went dark: %+v", st)
		ix.VolumeWorks(1+i%40, 5)
	})

	// Let the hammer run briefly; -race needs iterations, not wall time.
	for i := 0; i < 50; i++ {
		ix.Search("mining", 5)
	}
	stop.Store(true)
	wg.Wait()

	if err := ix.Verify(); err != nil {
		t.Fatalf("Verify after hammer: %v", err)
	}
	st := ix.Stats()
	if st.Works != seedWorks {
		t.Fatalf("works = %d, want %d", st.Works, seedWorks)
	}
	if st.WorksCloned == 0 || st.PostingsScanned == 0 {
		t.Fatalf("query counters did not move: %+v", st)
	}
}
