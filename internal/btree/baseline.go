package btree

import (
	"bytes"
	"sort"
)

// OrderedMap is the contract shared by Tree and the baseline containers,
// so experiments and property tests can swap implementations.
type OrderedMap[V any] interface {
	Len() int
	Get(key []byte) (V, bool)
	Set(key []byte, v V) (prev V, replaced bool)
	Delete(key []byte) (V, bool)
	AscendRange(lo, hi []byte, fn func(key []byte, v V) bool)
}

var (
	_ OrderedMap[int] = (*Tree[int])(nil)
	_ OrderedMap[int] = (*SortedSlice[int])(nil)
	_ OrderedMap[int] = (*LinearScan[int])(nil)
)

// SortedSlice is the binary-search baseline: a single pair of parallel
// slices kept in key order. Lookup is O(log n); insert and delete are
// O(n) memmoves. It doubles as the reference model in property tests.
type SortedSlice[V any] struct {
	keys [][]byte
	vals []V
}

// NewSortedSlice returns an empty baseline container.
func NewSortedSlice[V any]() *SortedSlice[V] { return &SortedSlice[V]{} }

// Len returns the number of entries.
func (s *SortedSlice[V]) Len() int { return len(s.keys) }

func (s *SortedSlice[V]) search(key []byte) (int, bool) {
	i := sort.Search(len(s.keys), func(i int) bool {
		return bytes.Compare(s.keys[i], key) >= 0
	})
	return i, i < len(s.keys) && bytes.Equal(s.keys[i], key)
}

// Get returns the value stored under key.
func (s *SortedSlice[V]) Get(key []byte) (V, bool) {
	i, ok := s.search(key)
	if !ok {
		var zero V
		return zero, false
	}
	return s.vals[i], true
}

// Set stores v under key.
func (s *SortedSlice[V]) Set(key []byte, v V) (prev V, replaced bool) {
	i, ok := s.search(key)
	if ok {
		prev, s.vals[i] = s.vals[i], v
		return prev, true
	}
	s.keys = append(s.keys, nil)
	copy(s.keys[i+1:], s.keys[i:])
	s.keys[i] = append([]byte(nil), key...)
	var zero V
	s.vals = append(s.vals, zero)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = v
	return prev, false
}

// Delete removes key.
func (s *SortedSlice[V]) Delete(key []byte) (V, bool) {
	i, ok := s.search(key)
	if !ok {
		var zero V
		return zero, false
	}
	old := s.vals[i]
	s.keys = append(s.keys[:i], s.keys[i+1:]...)
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
	return old, true
}

// AscendRange visits entries with lo <= key < hi in order.
func (s *SortedSlice[V]) AscendRange(lo, hi []byte, fn func(key []byte, v V) bool) {
	start := 0
	if lo != nil {
		start, _ = s.search(lo)
	}
	for i := start; i < len(s.keys); i++ {
		if hi != nil && bytes.Compare(s.keys[i], hi) >= 0 {
			return
		}
		if !fn(s.keys[i], s.vals[i]) {
			return
		}
	}
}

// LinearScan is the O(n)-everything baseline: an unordered slice scanned
// front to back. It exists so experiments can show what indexes buy.
type LinearScan[V any] struct {
	keys [][]byte
	vals []V
}

// NewLinearScan returns an empty baseline container.
func NewLinearScan[V any]() *LinearScan[V] { return &LinearScan[V]{} }

// Len returns the number of entries.
func (s *LinearScan[V]) Len() int { return len(s.keys) }

func (s *LinearScan[V]) index(key []byte) int {
	for i, k := range s.keys {
		if bytes.Equal(k, key) {
			return i
		}
	}
	return -1
}

// Get returns the value stored under key by scanning.
func (s *LinearScan[V]) Get(key []byte) (V, bool) {
	if i := s.index(key); i >= 0 {
		return s.vals[i], true
	}
	var zero V
	return zero, false
}

// Set stores v under key.
func (s *LinearScan[V]) Set(key []byte, v V) (prev V, replaced bool) {
	if i := s.index(key); i >= 0 {
		prev, s.vals[i] = s.vals[i], v
		return prev, true
	}
	s.keys = append(s.keys, append([]byte(nil), key...))
	s.vals = append(s.vals, v)
	var zero V
	return zero, false
}

// Delete removes key by scanning.
func (s *LinearScan[V]) Delete(key []byte) (V, bool) {
	i := s.index(key)
	if i < 0 {
		var zero V
		return zero, false
	}
	old := s.vals[i]
	last := len(s.keys) - 1
	s.keys[i], s.vals[i] = s.keys[last], s.vals[last]
	s.keys, s.vals = s.keys[:last], s.vals[:last]
	return old, true
}

// AscendRange visits matching entries in key order; the container is
// unordered, so this sorts a copy of the qualifying entries first.
func (s *LinearScan[V]) AscendRange(lo, hi []byte, fn func(key []byte, v V) bool) {
	type kv struct {
		k []byte
		v V
	}
	var hits []kv
	for i, k := range s.keys {
		if lo != nil && bytes.Compare(k, lo) < 0 {
			continue
		}
		if hi != nil && bytes.Compare(k, hi) >= 0 {
			continue
		}
		hits = append(hits, kv{k, s.vals[i]})
	}
	sort.Slice(hits, func(i, j int) bool { return bytes.Compare(hits[i].k, hits[j].k) < 0 })
	for _, h := range hits {
		if !fn(h.k, h.v) {
			return
		}
	}
}
