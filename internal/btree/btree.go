// Package btree provides an in-memory B+tree keyed by byte strings, with
// ordered and prefix iteration and O(1) copy-on-write clones. Interior
// nodes hold only separator keys; all entries live in leaves, and range
// scans descend recursively with separator-bounded early termination.
// The package also ships two reference containers (SortedSlice,
// LinearScan) used as experiment baselines and as property-test models.
package btree

import (
	"bytes"
	"sort"
)

const (
	// maxKeys is the maximum number of keys per node; nodes split above
	// it. minKeys is the underflow threshold for rebalancing on delete.
	maxKeys = 64
	minKeys = maxKeys / 2
)

// cowTag is a unique ownership marker for copy-on-write. Every node
// carries the tag of the tree that created it; a tree may mutate a node
// in place only while the node's tag is the tree's own. The struct must
// not be zero-sized: zero-size allocations can share an address, which
// would alias ownership across unrelated trees.
type cowTag struct{ _ byte }

// Tree is a B+tree mapping []byte keys to values of type V. Keys are
// compared with bytes.Compare and copied on insert, so callers may reuse
// their buffers. The zero Tree is not usable; call New.
//
// Clone returns an O(1) snapshot: both trees share every node, and
// subsequent mutation on either side path-copies just the nodes it
// touches. Readers of a tree that is no longer mutated (a published
// snapshot) are safe against mutation of its clones; a tree that is
// itself being mutated still requires external synchronization between
// its own readers and writers.
type Tree[V any] struct {
	root node[V]
	size int
	cow  *cowTag
}

// New returns an empty tree.
func New[V any]() *Tree[V] {
	cow := &cowTag{}
	return &Tree[V]{root: &leaf[V]{tag: cow}, cow: cow}
}

// Clone returns a copy of the tree sharing every node with t. Both t
// and the clone receive fresh ownership tags, so the first mutation of
// any shared node — from either side — copies it instead of writing in
// place; unshared subtrees keep being mutated in place once copied.
func (t *Tree[V]) Clone() *Tree[V] {
	cp := *t
	t.cow = &cowTag{}
	cp.cow = &cowTag{}
	return &cp
}

type node[V any] interface{ isNode() }

type leaf[V any] struct {
	tag  *cowTag
	keys [][]byte
	vals []V
}

type inner[V any] struct {
	tag *cowTag
	// keys[i] is <= every key in children[i+1] and > every key in
	// children[i]; len(children) == len(keys)+1.
	keys     [][]byte
	children []node[V]
}

func (*leaf[V]) isNode()  {}
func (*inner[V]) isNode() {}

// Len returns the number of entries.
func (t *Tree[V]) Len() int { return t.size }

// Get returns the value stored under key.
func (t *Tree[V]) Get(key []byte) (V, bool) {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner[V]:
			n = x.children[x.childIndex(key)]
		case *leaf[V]:
			i, ok := x.find(key)
			if !ok {
				var zero V
				return zero, false
			}
			return x.vals[i], true
		}
	}
}

// Set stores v under key, returning the previous value if one existed.
func (t *Tree[V]) Set(key []byte, v V) (prev V, replaced bool) {
	t.root = t.mutable(t.root)
	prev, replaced, split := t.insert(t.root, key, v)
	if split != nil {
		t.root = &inner[V]{
			tag:      t.cow,
			keys:     [][]byte{split.key},
			children: []node[V]{t.root, split.right},
		}
	}
	if !replaced {
		t.size++
	}
	return prev, replaced
}

// Delete removes key, returning the value it held.
func (t *Tree[V]) Delete(key []byte) (V, bool) {
	t.root = t.mutable(t.root)
	old, found := t.delete(t.root, key)
	if found {
		t.size--
	}
	if in, ok := t.root.(*inner[V]); ok && len(in.children) == 1 {
		t.root = in.children[0]
	}
	return old, found
}

// Min returns the smallest key and its value.
func (t *Tree[V]) Min() ([]byte, V, bool) {
	lf := t.firstLeaf()
	if len(lf.keys) == 0 {
		var zero V
		return nil, zero, false
	}
	return lf.keys[0], lf.vals[0], true
}

// Max returns the largest key and its value.
func (t *Tree[V]) Max() ([]byte, V, bool) {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner[V]:
			n = x.children[len(x.children)-1]
		case *leaf[V]:
			if len(x.keys) == 0 {
				var zero V
				return nil, zero, false
			}
			i := len(x.keys) - 1
			return x.keys[i], x.vals[i], true
		}
	}
}

// Ascend visits every entry in key order until fn returns false.
func (t *Tree[V]) Ascend(fn func(key []byte, v V) bool) {
	t.AscendRange(nil, nil, fn)
}

// AscendRange visits entries with lo <= key < hi in order, until fn
// returns false. A nil lo starts at the minimum; a nil hi runs to the end.
func (t *Tree[V]) AscendRange(lo, hi []byte, fn func(key []byte, v V) bool) {
	ascend(t.root, lo, hi, fn)
}

// ascend walks the subtree under n in key order, honoring the bounds.
// It returns false once iteration should stop — either fn said so or a
// separator proved every remaining key is >= hi.
func ascend[V any](n node[V], lo, hi []byte, fn func(key []byte, v V) bool) bool {
	switch x := n.(type) {
	case *leaf[V]:
		start := 0
		if lo != nil {
			start = sort.Search(len(x.keys), func(i int) bool {
				return bytes.Compare(x.keys[i], lo) >= 0
			})
		}
		for i := start; i < len(x.keys); i++ {
			if hi != nil && bytes.Compare(x.keys[i], hi) >= 0 {
				return false
			}
			if !fn(x.keys[i], x.vals[i]) {
				return false
			}
		}
		return true
	case *inner[V]:
		i := 0
		if lo != nil {
			i = x.childIndex(lo)
		}
		for ; i < len(x.children); i++ {
			// children[i] holds only keys >= keys[i-1]: once a separator
			// reaches hi the rest of the subtree is out of range.
			if hi != nil && i > 0 && bytes.Compare(x.keys[i-1], hi) >= 0 {
				return false
			}
			if !ascend(x.children[i], lo, hi, fn) {
				return false
			}
			// Only the first visited child can contain keys below lo.
			lo = nil
		}
		return true
	}
	panic("btree: unknown node type")
}

// AscendPrefix visits entries whose key begins with prefix, in order.
func (t *Tree[V]) AscendPrefix(prefix []byte, fn func(key []byte, v V) bool) {
	if len(prefix) == 0 {
		t.Ascend(fn)
		return
	}
	t.AscendRange(prefix, prefixEnd(prefix), fn)
}

// prefixEnd returns the smallest key greater than every key with the
// given prefix, or nil when the prefix is all 0xff (scan to the end).
func prefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] < 0xff {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}

// ---- internals ----

// mutable returns a version of n this tree owns and may write to: n
// itself when the tags already match, otherwise a copy tagged with
// t.cow. Copies get capacity for one over-full slot so the transient
// pre-split state never reallocates mid-insert.
func (t *Tree[V]) mutable(n node[V]) node[V] {
	switch x := n.(type) {
	case *leaf[V]:
		return t.mutableLeaf(x)
	case *inner[V]:
		return t.mutableInner(x)
	}
	panic("btree: unknown node type")
}

func (t *Tree[V]) mutableLeaf(x *leaf[V]) *leaf[V] {
	if x.tag == t.cow {
		return x
	}
	cp := &leaf[V]{
		tag:  t.cow,
		keys: make([][]byte, len(x.keys), maxKeys+1),
		vals: make([]V, len(x.vals), maxKeys+1),
	}
	copy(cp.keys, x.keys)
	copy(cp.vals, x.vals)
	return cp
}

func (t *Tree[V]) mutableInner(x *inner[V]) *inner[V] {
	if x.tag == t.cow {
		return x
	}
	cp := &inner[V]{
		tag:      t.cow,
		keys:     make([][]byte, len(x.keys), maxKeys+1),
		children: make([]node[V], len(x.children), maxKeys+2),
	}
	copy(cp.keys, x.keys)
	copy(cp.children, x.children)
	return cp
}

type splitResult[V any] struct {
	key   []byte
	right node[V]
}

func (x *inner[V]) childIndex(key []byte) int {
	return sort.Search(len(x.keys), func(i int) bool {
		return bytes.Compare(key, x.keys[i]) < 0
	})
}

func (x *leaf[V]) find(key []byte) (int, bool) {
	i := sort.Search(len(x.keys), func(i int) bool {
		return bytes.Compare(x.keys[i], key) >= 0
	})
	return i, i < len(x.keys) && bytes.Equal(x.keys[i], key)
}

// insert descends into n, which the caller has already made mutable.
func (t *Tree[V]) insert(n node[V], key []byte, v V) (prev V, replaced bool, split *splitResult[V]) {
	switch x := n.(type) {
	case *leaf[V]:
		i, ok := x.find(key)
		if ok {
			prev, x.vals[i] = x.vals[i], v
			return prev, true, nil
		}
		x.keys = append(x.keys, nil)
		copy(x.keys[i+1:], x.keys[i:])
		x.keys[i] = append([]byte(nil), key...)
		var zero V
		x.vals = append(x.vals, zero)
		copy(x.vals[i+1:], x.vals[i:])
		x.vals[i] = v
		if len(x.keys) > maxKeys {
			split = x.split(t.cow)
		}
		return prev, false, split
	case *inner[V]:
		i := x.childIndex(key)
		x.children[i] = t.mutable(x.children[i])
		prev, replaced, childSplit := t.insert(x.children[i], key, v)
		if childSplit != nil {
			x.keys = append(x.keys, nil)
			copy(x.keys[i+1:], x.keys[i:])
			x.keys[i] = childSplit.key
			x.children = append(x.children, nil)
			copy(x.children[i+2:], x.children[i+1:])
			x.children[i+1] = childSplit.right
			if len(x.keys) > maxKeys {
				split = x.split(t.cow)
			}
		}
		return prev, replaced, split
	}
	panic("btree: unknown node type")
}

func (x *leaf[V]) split(tag *cowTag) *splitResult[V] {
	mid := len(x.keys) / 2
	right := &leaf[V]{
		tag:  tag,
		keys: append([][]byte(nil), x.keys[mid:]...),
		vals: append([]V(nil), x.vals[mid:]...),
	}
	x.keys = x.keys[:mid:mid]
	x.vals = x.vals[:mid:mid]
	return &splitResult[V]{key: right.keys[0], right: right}
}

func (x *inner[V]) split(tag *cowTag) *splitResult[V] {
	mid := len(x.keys) / 2
	up := x.keys[mid]
	right := &inner[V]{
		tag:      tag,
		keys:     append([][]byte(nil), x.keys[mid+1:]...),
		children: append([]node[V](nil), x.children[mid+1:]...),
	}
	x.keys = x.keys[:mid:mid]
	x.children = x.children[: mid+1 : mid+1]
	return &splitResult[V]{key: up, right: right}
}

// delete descends into n, which the caller has already made mutable.
func (t *Tree[V]) delete(n node[V], key []byte) (V, bool) {
	switch x := n.(type) {
	case *leaf[V]:
		i, ok := x.find(key)
		if !ok {
			var zero V
			return zero, false
		}
		old := x.vals[i]
		x.keys = append(x.keys[:i], x.keys[i+1:]...)
		var zero V
		x.vals = append(x.vals[:i], x.vals[i+1:]...)
		// Help the GC: clear the duplicated tail slot.
		if n := len(x.vals); n < cap(x.vals) {
			x.vals[:cap(x.vals)][n] = zero
		}
		return old, true
	case *inner[V]:
		i := x.childIndex(key)
		x.children[i] = t.mutable(x.children[i])
		old, found := t.delete(x.children[i], key)
		if found && underfull[V](x.children[i]) {
			t.rebalance(x, i)
		}
		return old, found
	}
	panic("btree: unknown node type")
}

func underfull[V any](n node[V]) bool {
	switch x := n.(type) {
	case *leaf[V]:
		return len(x.keys) < minKeys
	case *inner[V]:
		return len(x.children) < minKeys
	}
	return false
}

// rebalance restores the size invariant of x.children[i] by borrowing
// from a sibling or merging with one. The child is already mutable;
// siblings are made mutable before they are written (a merged-away
// sibling is only read, so it may stay shared). Parent separator keys
// are updated in place — x is mutable too.
func (t *Tree[V]) rebalance(x *inner[V], i int) {
	switch child := x.children[i].(type) {
	case *leaf[V]:
		if i > 0 {
			left := x.children[i-1].(*leaf[V])
			if len(left.keys) > minKeys {
				// borrow tail of left sibling
				left = t.mutableLeaf(left)
				x.children[i-1] = left
				n := len(left.keys) - 1
				child.keys = append([][]byte{left.keys[n]}, child.keys...)
				child.vals = append([]V{left.vals[n]}, child.vals...)
				left.keys, left.vals = left.keys[:n:n], left.vals[:n:n]
				x.keys[i-1] = child.keys[0]
				return
			}
		}
		if i < len(x.children)-1 {
			right := x.children[i+1].(*leaf[V])
			if len(right.keys) > minKeys {
				// borrow head of right sibling
				right = t.mutableLeaf(right)
				x.children[i+1] = right
				child.keys = append(child.keys, right.keys[0])
				child.vals = append(child.vals, right.vals[0])
				copy(right.keys, right.keys[1:])
				right.keys = right.keys[:len(right.keys)-1]
				copy(right.vals, right.vals[1:])
				var zero V
				right.vals[len(right.vals)-1] = zero
				right.vals = right.vals[:len(right.vals)-1]
				x.keys[i] = right.keys[0]
				return
			}
		}
		// merge with a sibling
		if i > 0 {
			left := t.mutableLeaf(x.children[i-1].(*leaf[V]))
			x.children[i-1] = left
			left.keys = append(left.keys, child.keys...)
			left.vals = append(left.vals, child.vals...)
			x.removeChild(i)
		} else {
			right := x.children[i+1].(*leaf[V])
			child.keys = append(child.keys, right.keys...)
			child.vals = append(child.vals, right.vals...)
			x.removeChild(i + 1)
		}
	case *inner[V]:
		if i > 0 {
			left := x.children[i-1].(*inner[V])
			if len(left.children) > minKeys {
				// rotate right through the parent separator
				left = t.mutableInner(left)
				x.children[i-1] = left
				n := len(left.keys) - 1
				child.keys = append([][]byte{x.keys[i-1]}, child.keys...)
				child.children = append([]node[V]{left.children[n+1]}, child.children...)
				x.keys[i-1] = left.keys[n]
				left.keys = left.keys[:n:n]
				left.children = left.children[: n+1 : n+1]
				return
			}
		}
		if i < len(x.children)-1 {
			right := x.children[i+1].(*inner[V])
			if len(right.children) > minKeys {
				// rotate left through the parent separator
				right = t.mutableInner(right)
				x.children[i+1] = right
				child.keys = append(child.keys, x.keys[i])
				child.children = append(child.children, right.children[0])
				x.keys[i] = right.keys[0]
				copy(right.keys, right.keys[1:])
				right.keys = right.keys[:len(right.keys)-1]
				copy(right.children, right.children[1:])
				right.children[len(right.children)-1] = nil
				right.children = right.children[:len(right.children)-1]
				return
			}
		}
		if i > 0 {
			left := t.mutableInner(x.children[i-1].(*inner[V]))
			x.children[i-1] = left
			left.keys = append(append(left.keys, x.keys[i-1]), child.keys...)
			left.children = append(left.children, child.children...)
			x.removeChild(i)
		} else {
			right := x.children[i+1].(*inner[V])
			child.keys = append(append(child.keys, x.keys[i]), right.keys...)
			child.children = append(child.children, right.children...)
			x.removeChild(i + 1)
		}
	}
}

// removeChild drops children[i] and the separator to its left (or, for
// i==0, the separator to its right — callers only use i>=1 except via the
// merge paths above, which pass the right-hand index).
func (x *inner[V]) removeChild(i int) {
	x.keys = append(x.keys[:i-1], x.keys[i:]...)
	n := len(x.children) - 1
	copy(x.children[i:], x.children[i+1:])
	x.children[n] = nil
	x.children = x.children[:n]
}

func (t *Tree[V]) firstLeaf() *leaf[V] {
	n := t.root
	for {
		switch x := n.(type) {
		case *inner[V]:
			n = x.children[0]
		case *leaf[V]:
			return x
		}
	}
}

// stats for tests: height and node counts.
func (t *Tree[V]) stats() (height, leaves, inners int) {
	n := t.root
	height = 1
	for {
		if in, ok := n.(*inner[V]); ok {
			height++
			n = in.children[0]
			continue
		}
		break
	}
	var walk func(node[V])
	walk = func(n node[V]) {
		switch x := n.(type) {
		case *leaf[V]:
			leaves++
		case *inner[V]:
			inners++
			for _, c := range x.children {
				walk(c)
			}
		}
	}
	walk(t.root)
	return height, leaves, inners
}
