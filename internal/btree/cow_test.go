package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// snapshotOf captures a tree's full contents for later comparison.
func snapshotOf(tr *Tree[int]) map[string]int {
	out := make(map[string]int, tr.Len())
	tr.Ascend(func(k []byte, v int) bool {
		out[string(k)] = v
		return true
	})
	return out
}

func requireEqual(t *testing.T, tr *Tree[int], want map[string]int, label string) {
	t.Helper()
	if tr.Len() != len(want) {
		t.Fatalf("%s: Len = %d, want %d", label, tr.Len(), len(want))
	}
	var prev []byte
	n := 0
	tr.Ascend(func(k []byte, v int) bool {
		if prev != nil && bytes.Compare(prev, k) >= 0 {
			t.Fatalf("%s: keys out of order: %q then %q", label, prev, k)
		}
		prev = append(prev[:0], k...)
		wv, ok := want[string(k)]
		if !ok || wv != v {
			t.Fatalf("%s: key %q = %d, want %d (present %v)", label, k, v, wv, ok)
		}
		n++
		return true
	})
	if n != len(want) {
		t.Fatalf("%s: Ascend visited %d entries, want %d", label, n, len(want))
	}
}

// TestCloneIsolation is the core COW property: a clone taken at any
// point keeps exactly the contents it had at clone time, no matter how
// either side is mutated afterwards — including deletes that trigger
// borrows and merges against shared siblings.
func TestCloneIsolation(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	tr := New[int]()
	live := make(map[string]int)
	type snap struct {
		tree *Tree[int]
		want map[string]int
	}
	var snaps []snap

	key := func(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
	for step := 0; step < 12_000; step++ {
		if step%997 == 0 {
			cp := tr.Clone()
			snaps = append(snaps, snap{tree: cp, want: snapshotOf(cp)})
		}
		i := r.Intn(4000)
		if r.Intn(3) == 0 {
			tr.Delete(key(i))
			delete(live, string(key(i)))
		} else {
			tr.Set(key(i), step)
			live[string(key(i))] = step
		}
	}
	requireEqual(t, tr, live, "live tree")
	for i, s := range snaps {
		requireEqual(t, s.tree, s.want, fmt.Sprintf("snapshot %d", i))
	}

	// Mutating an old snapshot must not disturb the live tree either.
	for i := 0; i < 2000; i++ {
		snaps[0].tree.Set(key(i), -1)
		snaps[0].tree.Delete(key(i + 2000))
	}
	requireEqual(t, tr, live, "live tree after snapshot mutation")
	for i, s := range snaps[1:] {
		requireEqual(t, s.tree, s.want, fmt.Sprintf("snapshot %d after snapshot-0 mutation", i+1))
	}
}

// TestCloneOfBulkLoaded: clones of a bulk-loaded tree behave exactly
// like clones of a Set-grown one.
func TestCloneOfBulkLoaded(t *testing.T) {
	pairs := sortedPairs(5000)
	tr, err := BulkLoad(pairs)
	if err != nil {
		t.Fatal(err)
	}
	want := snapshotOf(tr)
	cp := tr.Clone()
	for i := 0; i < len(pairs); i += 2 {
		tr.Delete(pairs[i].Key)
	}
	for i := 0; i < 1000; i++ {
		tr.Set([]byte(fmt.Sprintf("zz-%05d", i)), i)
	}
	requireEqual(t, cp, want, "clone of bulk-loaded tree")
	checkInvariants(t, tr)
	checkInvariants(t, cp)
}

// TestCloneSharedMutationInvariants: structural invariants hold on both
// trees after heavy interleaved mutation from a shared ancestry.
func TestCloneSharedMutationInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	a := New[int]()
	for i := 0; i < 8000; i++ {
		a.Set([]byte(fmt.Sprintf("%08d", r.Intn(50_000))), i)
	}
	b := a.Clone()
	wantA, wantB := snapshotOf(a), snapshotOf(b)
	for i := 0; i < 4000; i++ {
		ka := []byte(fmt.Sprintf("%08d", r.Intn(50_000)))
		kb := []byte(fmt.Sprintf("%08d", r.Intn(50_000)))
		if i%2 == 0 {
			a.Set(ka, i)
			wantA[string(ka)] = i
			b.Delete(kb)
			delete(wantB, string(kb))
		} else {
			a.Delete(ka)
			delete(wantA, string(ka))
			b.Set(kb, i)
			wantB[string(kb)] = i
		}
	}
	checkInvariants(t, a)
	checkInvariants(t, b)
	requireEqual(t, a, wantA, "tree a")
	requireEqual(t, b, wantB, "tree b")
}

// TestCloneConcurrentReaders: readers iterating a published clone race
// a writer mutating the original under -race. The snapshot must stay
// byte-stable for the whole read.
func TestCloneConcurrentReaders(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 6000; i++ {
		tr.Set([]byte(fmt.Sprintf("key-%06d", i)), i)
	}
	snap := tr.Clone()
	want := snapshotOf(snap)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 6000; i++ {
			if i%2 == 0 {
				tr.Delete([]byte(fmt.Sprintf("key-%06d", i)))
			} else {
				tr.Set([]byte(fmt.Sprintf("key-%06d", i)), -i)
			}
		}
	}()
	for pass := 0; pass < 4; pass++ {
		requireEqual(t, snap, want, fmt.Sprintf("concurrent read pass %d", pass))
	}
	<-done
}
