package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New[int]()
	if tr.Len() != 0 {
		t.Error("empty tree Len != 0")
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Error("Get on empty tree found something")
	}
	if _, ok := tr.Delete([]byte("x")); ok {
		t.Error("Delete on empty tree found something")
	}
	if _, _, ok := tr.Min(); ok {
		t.Error("Min on empty tree")
	}
	if _, _, ok := tr.Max(); ok {
		t.Error("Max on empty tree")
	}
	n := 0
	tr.Ascend(func([]byte, int) bool { n++; return true })
	if n != 0 {
		t.Error("Ascend on empty tree visited entries")
	}
}

func TestSetGetDeleteSmall(t *testing.T) {
	tr := New[string]()
	if _, replaced := tr.Set([]byte("b"), "B"); replaced {
		t.Error("fresh Set reported replacement")
	}
	tr.Set([]byte("a"), "A")
	tr.Set([]byte("c"), "C")
	if v, ok := tr.Get([]byte("b")); !ok || v != "B" {
		t.Errorf("Get(b) = %q,%v", v, ok)
	}
	if prev, replaced := tr.Set([]byte("b"), "B2"); !replaced || prev != "B" {
		t.Errorf("replace returned %q,%v", prev, replaced)
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
	if old, ok := tr.Delete([]byte("b")); !ok || old != "B2" {
		t.Errorf("Delete(b) = %q,%v", old, ok)
	}
	if _, ok := tr.Get([]byte("b")); ok {
		t.Error("deleted key still present")
	}
	if tr.Len() != 2 {
		t.Errorf("Len after delete = %d, want 2", tr.Len())
	}
}

func TestLargeSequentialAndSplits(t *testing.T) {
	tr := New[int]()
	const n = 10_000
	for i := 0; i < n; i++ {
		tr.Set(key(i), i)
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	h, leaves, inners := tr.stats()
	if h < 2 || leaves < n/maxKeys {
		t.Errorf("suspicious shape: height=%d leaves=%d inners=%d", h, leaves, inners)
	}
	for i := 0; i < n; i += 97 {
		if v, ok := tr.Get(key(i)); !ok || v != i {
			t.Fatalf("Get(%d) = %d,%v", i, v, ok)
		}
	}
	// Full ordered iteration.
	prev := -1
	count := 0
	tr.Ascend(func(k []byte, v int) bool {
		if v != prev+1 {
			t.Fatalf("iteration out of order: %d after %d", v, prev)
		}
		prev = v
		count++
		return true
	})
	if count != n {
		t.Errorf("Ascend visited %d, want %d", count, n)
	}
}

func TestDescendingInsertAndDeleteAll(t *testing.T) {
	tr := New[int]()
	const n = 5_000
	for i := n - 1; i >= 0; i-- {
		tr.Set(key(i), i)
	}
	// Delete every key in random order; tree must stay consistent.
	perm := rand.New(rand.NewSource(42)).Perm(n)
	for _, i := range perm {
		if _, ok := tr.Delete(key(i)); !ok {
			t.Fatalf("Delete(%d) missed", i)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len after full delete = %d", tr.Len())
	}
	if h, leaves, _ := tr.stats(); h != 1 || leaves != 1 {
		t.Errorf("tree did not collapse: height=%d leaves=%d", h, leaves)
	}
}

func TestAscendRange(t *testing.T) {
	tr := New[int]()
	for i := 0; i < 100; i++ {
		tr.Set(key(i), i)
	}
	var got []int
	tr.AscendRange(key(10), key(20), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Errorf("range [10,20) = %v", got)
	}
	// Half-open semantics: hi excluded, lo included.
	got = got[:0]
	tr.AscendRange(nil, key(3), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 {
		t.Errorf("range [nil,3) = %v", got)
	}
	// Early stop.
	n := 0
	tr.AscendRange(nil, nil, func(k []byte, v int) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early stop visited %d", n)
	}
	// Range starting between keys.
	got = got[:0]
	tr.AscendRange([]byte("key-000010x"), key(12), func(k []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 1 || got[0] != 11 {
		t.Errorf("between-keys range = %v, want [11]", got)
	}
}

func TestAscendPrefix(t *testing.T) {
	tr := New[string]()
	words := []string{"app", "apple", "applesauce", "apply", "banana", "ap"}
	for _, w := range words {
		tr.Set([]byte(w), w)
	}
	var got []string
	tr.AscendPrefix([]byte("appl"), func(k []byte, v string) bool {
		got = append(got, v)
		return true
	})
	want := []string{"apple", "applesauce", "apply"}
	if len(got) != len(want) {
		t.Fatalf("prefix scan = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prefix scan = %v, want %v", got, want)
		}
	}
	// Empty prefix = full scan.
	n := 0
	tr.AscendPrefix(nil, func([]byte, string) bool { n++; return true })
	if n != len(words) {
		t.Errorf("empty prefix visited %d, want %d", n, len(words))
	}
}

func TestPrefixEndAllFF(t *testing.T) {
	if got := prefixEnd([]byte{0xff, 0xff}); got != nil {
		t.Errorf("prefixEnd(ff ff) = %x, want nil", got)
	}
	if got := prefixEnd([]byte{0x01, 0xff}); !bytes.Equal(got, []byte{0x02}) {
		t.Errorf("prefixEnd(01 ff) = %x, want 02", got)
	}
	// A key with the 0xff prefix must be reachable.
	tr := New[int]()
	tr.Set([]byte{0xff, 0xff, 0x01}, 1)
	n := 0
	tr.AscendPrefix([]byte{0xff, 0xff}, func([]byte, int) bool { n++; return true })
	if n != 1 {
		t.Errorf("0xff prefix scan visited %d, want 1", n)
	}
}

func TestKeysAreCopied(t *testing.T) {
	tr := New[int]()
	k := []byte("mutable")
	tr.Set(k, 1)
	k[0] = 'X'
	if _, ok := tr.Get([]byte("mutable")); !ok {
		t.Error("tree affected by caller mutating key buffer")
	}
}

func TestMinMax(t *testing.T) {
	tr := New[int]()
	for _, i := range rand.New(rand.NewSource(7)).Perm(1000) {
		tr.Set(key(i), i)
	}
	if k, v, ok := tr.Min(); !ok || v != 0 || !bytes.Equal(k, key(0)) {
		t.Errorf("Min = %s,%d,%v", k, v, ok)
	}
	if k, v, ok := tr.Max(); !ok || v != 999 || !bytes.Equal(k, key(999)) {
		t.Errorf("Max = %s,%d,%v", k, v, ok)
	}
}

// opSequence applies a deterministic random op stream to both the tree
// and a model, checking agreement after every op.
func runModelCheck(t *testing.T, seed int64, ops int, keySpace int) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	tr := New[int]()
	model := map[string]int{}
	for op := 0; op < ops; op++ {
		k := key(r.Intn(keySpace))
		switch r.Intn(3) {
		case 0: // set
			v := r.Int()
			_, replacedT := tr.Set(k, v)
			_, replacedM := model[string(k)]
			if replacedT != replacedM {
				t.Fatalf("op %d: Set replaced=%v model=%v", op, replacedT, replacedM)
			}
			model[string(k)] = v
		case 1: // delete
			_, okT := tr.Delete(k)
			_, okM := model[string(k)]
			if okT != okM {
				t.Fatalf("op %d: Delete ok=%v model=%v", op, okT, okM)
			}
			delete(model, string(k))
		case 2: // get
			vT, okT := tr.Get(k)
			vM, okM := model[string(k)]
			if okT != okM || (okT && vT != vM) {
				t.Fatalf("op %d: Get %v,%v model %v,%v", op, vT, okT, vM, okM)
			}
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len %d != model %d", op, tr.Len(), len(model))
		}
	}
	// Final: iteration order must equal sorted model keys.
	var wantKeys []string
	for k := range model {
		wantKeys = append(wantKeys, k)
	}
	sort.Strings(wantKeys)
	i := 0
	tr.Ascend(func(k []byte, v int) bool {
		if i >= len(wantKeys) || string(k) != wantKeys[i] || v != model[wantKeys[i]] {
			t.Fatalf("iteration diverges at %d: %s", i, k)
		}
		i++
		return true
	})
	if i != len(wantKeys) {
		t.Fatalf("iterated %d, model has %d", i, len(wantKeys))
	}
}

func TestModelCheckDense(t *testing.T)  { runModelCheck(t, 1, 30_000, 500) }
func TestModelCheckSparse(t *testing.T) { runModelCheck(t, 2, 30_000, 100_000) }
func TestModelCheckTiny(t *testing.T)   { runModelCheck(t, 3, 5_000, 8) }

func TestModelCheckQuick(t *testing.T) {
	f := func(seed int64) bool {
		runModelCheck(t, seed, 2_000, 64)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// The three OrderedMap implementations must agree everywhere.
func TestBaselinesAgree(t *testing.T) {
	impls := map[string]OrderedMap[int]{
		"tree":   New[int](),
		"sorted": NewSortedSlice[int](),
		"linear": NewLinearScan[int](),
	}
	r := rand.New(rand.NewSource(11))
	for op := 0; op < 5_000; op++ {
		k := key(r.Intn(300))
		switch r.Intn(3) {
		case 0:
			v := r.Int()
			for _, m := range impls {
				m.Set(k, v)
			}
		case 1:
			for _, m := range impls {
				m.Delete(k)
			}
		case 2:
			want, wantOK := impls["sorted"].Get(k)
			for name, m := range impls {
				got, ok := m.Get(k)
				if ok != wantOK || (ok && got != want) {
					t.Fatalf("op %d: %s.Get = %v,%v want %v,%v", op, name, got, ok, want, wantOK)
				}
			}
		}
	}
	// Identical range scans.
	lo, hi := key(50), key(250)
	collect := func(m OrderedMap[int]) []string {
		var out []string
		m.AscendRange(lo, hi, func(k []byte, v int) bool {
			out = append(out, fmt.Sprintf("%s=%d", k, v))
			return true
		})
		return out
	}
	want := collect(impls["sorted"])
	for name, m := range impls {
		got := collect(m)
		if len(got) != len(want) {
			t.Fatalf("%s range len %d, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s range[%d] = %s, want %s", name, i, got[i], want[i])
			}
		}
	}
}

func TestEmptyAndOddKeys(t *testing.T) {
	tr := New[string]()
	// The empty key is a legal key and sorts first.
	tr.Set([]byte{}, "empty")
	tr.Set([]byte{0}, "nul")
	tr.Set([]byte("a"), "a")
	if v, ok := tr.Get([]byte{}); !ok || v != "empty" {
		t.Errorf("empty key: %q,%v", v, ok)
	}
	var order []string
	tr.Ascend(func(k []byte, v string) bool {
		order = append(order, v)
		return true
	})
	if len(order) != 3 || order[0] != "empty" || order[1] != "nul" || order[2] != "a" {
		t.Errorf("order = %v", order)
	}
	if _, ok := tr.Delete([]byte{}); !ok {
		t.Error("empty key not deletable")
	}
}

func TestSortedSliceRangeFromMissingLo(t *testing.T) {
	s := NewSortedSlice[int]()
	for i := 0; i < 10; i += 2 {
		s.Set(key(i), i)
	}
	var got []int
	s.AscendRange(key(3), key(9), func(_ []byte, v int) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 3 || got[0] != 4 || got[2] != 8 {
		t.Errorf("range = %v", got)
	}
}

func TestLinearScanDeleteSwaps(t *testing.T) {
	s := NewLinearScan[int]()
	s.Set([]byte("a"), 1)
	s.Set([]byte("b"), 2)
	s.Set([]byte("c"), 3)
	if old, ok := s.Delete([]byte("a")); !ok || old != 1 {
		t.Fatalf("Delete(a) = %d,%v", old, ok)
	}
	if v, ok := s.Get([]byte("c")); !ok || v != 3 {
		t.Error("swap-delete lost another key")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}
