package btree

import (
	"bytes"
	"fmt"
)

// Pair is one key/value item for BulkLoad.
type Pair[V any] struct {
	Key   []byte
	Value V
}

// BulkLoad builds a tree bottom-up from pairs that are already sorted
// ascending by Key with no duplicates: leaves are filled left to right
// and the interior levels are laid over them, so construction is O(n)
// with no per-key root-to-leaf descent and no node splits — the
// cold-start path for indexes whose whole corpus is known up front.
// Out-of-order or duplicate keys are rejected before any node is built.
//
// The resulting tree satisfies the same structural invariants as one
// grown by sequential Set calls (node fill between minKeys and maxKeys,
// uniform leaf depth) and iterates identically. Unlike Set, BulkLoad
// takes ownership of the key slices instead of copying them; callers
// must not modify them afterwards.
func BulkLoad[V any](pairs []Pair[V]) (*Tree[V], error) {
	if len(pairs) == 0 {
		return New[V](), nil
	}
	cow := &cowTag{}
	for i := 1; i < len(pairs); i++ {
		switch c := bytes.Compare(pairs[i-1].Key, pairs[i].Key); {
		case c == 0:
			return nil, fmt.Errorf("btree: bulk load: duplicate key %q at index %d", pairs[i].Key, i)
		case c > 0:
			return nil, fmt.Errorf("btree: bulk load: keys out of order at index %d", i)
		}
	}
	// Leaf level: full leaves left to right, with the final two
	// rebalanced so no leaf falls under minKeys.
	counts := chunkSizes(len(pairs), maxKeys)
	level := make([]node[V], 0, len(counts))
	mins := make([][]byte, 0, len(counts))
	next := 0
	for _, c := range counts {
		lf := &leaf[V]{tag: cow, keys: make([][]byte, c), vals: make([]V, c)}
		for j := 0; j < c; j++ {
			lf.keys[j] = pairs[next].Key
			lf.vals[j] = pairs[next].Value
			next++
		}
		level = append(level, lf)
		mins = append(mins, lf.keys[0])
	}
	// Interior levels: group children maxKeys+1 at a time until one node
	// remains. The separator left of child i is the smallest key in its
	// subtree, which is exactly the invariant node splits maintain.
	for len(level) > 1 {
		counts := chunkSizes(len(level), maxKeys+1)
		up := make([]node[V], 0, len(counts))
		upMins := make([][]byte, 0, len(counts))
		next := 0
		for _, c := range counts {
			in := &inner[V]{
				tag:      cow,
				keys:     append([][]byte(nil), mins[next+1:next+c]...),
				children: append([]node[V](nil), level[next:next+c]...),
			}
			up = append(up, in)
			upMins = append(upMins, mins[next])
			next += c
		}
		level, mins = up, upMins
	}
	return &Tree[V]{root: level[0], size: len(pairs), cow: cow}, nil
}

// chunkSizes partitions n items into runs of at most max, splitting the
// final overfull run in two when the remainder alone would underflow
// (max >= 2*minKeys+1, so both halves clear minKeys). A single
// undersized chunk is fine: it becomes the root.
func chunkSizes(n, max int) []int {
	if n <= max {
		return []int{n}
	}
	full, rem := n/max, n%max
	if rem == 0 {
		sizes := make([]int, full)
		for i := range sizes {
			sizes[i] = max
		}
		return sizes
	}
	sizes := make([]int, full+1)
	for i := 0; i < full; i++ {
		sizes[i] = max
	}
	sizes[full] = rem
	if rem < minKeys {
		combined := max + rem
		sizes[full-1] = (combined + 1) / 2
		sizes[full] = combined / 2
	}
	return sizes
}
