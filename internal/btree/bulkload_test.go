package btree

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// checkInvariants walks the whole tree verifying the structural
// invariants a split-grown tree maintains: sorted keys, node fill
// between minKeys and maxKeys (root excepted), separators bounding their
// subtrees, and uniform leaf depth.
func checkInvariants[V any](t *testing.T, tr *Tree[V]) {
	t.Helper()
	leafDepth := -1
	var count int
	var walk func(n node[V], depth int, lo, hi []byte)
	walk = func(n node[V], depth int, lo, hi []byte) {
		switch x := n.(type) {
		case *leaf[V]:
			if leafDepth == -1 {
				leafDepth = depth
			} else if depth != leafDepth {
				t.Fatalf("leaf at depth %d, want %d", depth, leafDepth)
			}
			if depth > 0 && len(x.keys) < minKeys {
				t.Fatalf("non-root leaf holds %d keys, min %d", len(x.keys), minKeys)
			}
			if len(x.keys) > maxKeys {
				t.Fatalf("leaf holds %d keys, max %d", len(x.keys), maxKeys)
			}
			for i, k := range x.keys {
				if i > 0 && bytes.Compare(x.keys[i-1], k) >= 0 {
					t.Fatalf("leaf keys out of order at %d", i)
				}
				if lo != nil && bytes.Compare(k, lo) < 0 {
					t.Fatalf("leaf key %q below subtree bound %q", k, lo)
				}
				if hi != nil && bytes.Compare(k, hi) >= 0 {
					t.Fatalf("leaf key %q at or above subtree bound %q", k, hi)
				}
			}
			count += len(x.keys)
		case *inner[V]:
			if len(x.children) != len(x.keys)+1 {
				t.Fatalf("inner node: %d children for %d keys", len(x.children), len(x.keys))
			}
			if depth > 0 && len(x.children) < minKeys {
				t.Fatalf("non-root inner node holds %d children, min %d", len(x.children), minKeys)
			}
			if len(x.keys) > maxKeys {
				t.Fatalf("inner node holds %d keys, max %d", len(x.keys), maxKeys)
			}
			for i, k := range x.keys {
				if i > 0 && bytes.Compare(x.keys[i-1], k) >= 0 {
					t.Fatalf("inner keys out of order at %d", i)
				}
			}
			for i, c := range x.children {
				clo, chi := lo, hi
				if i > 0 {
					clo = x.keys[i-1]
				}
				if i < len(x.keys) {
					chi = x.keys[i]
				}
				walk(c, depth+1, clo, chi)
			}
		}
	}
	walk(tr.root, 0, nil, nil)
	if count != tr.Len() {
		t.Fatalf("tree walk found %d entries, Len() = %d", count, tr.Len())
	}
}

func sortedPairs(n int) []Pair[int] {
	pairs := make([]Pair[int], n)
	for i := range pairs {
		pairs[i] = Pair[int]{Key: []byte(fmt.Sprintf("key-%08d", i*3)), Value: i}
	}
	return pairs
}

func TestBulkLoadEmpty(t *testing.T) {
	tr, err := BulkLoad[int](nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len = %d, want 0", tr.Len())
	}
	checkInvariants(t, tr)
	// The empty tree must be fully usable.
	if _, replaced := tr.Set([]byte("a"), 1); replaced {
		t.Fatal("Set on empty bulk-loaded tree reported a replacement")
	}
	if v, ok := tr.Get([]byte("a")); !ok || v != 1 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
}

func TestBulkLoadSingle(t *testing.T) {
	tr, err := BulkLoad([]Pair[int]{{Key: []byte("only"), Value: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := tr.Get([]byte("only")); !ok || v != 7 {
		t.Fatalf("Get = %d, %v", v, ok)
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1", tr.Len())
	}
	checkInvariants(t, tr)
}

func TestBulkLoadDuplicateKeysRejected(t *testing.T) {
	_, err := BulkLoad([]Pair[int]{
		{Key: []byte("a"), Value: 1},
		{Key: []byte("b"), Value: 2},
		{Key: []byte("b"), Value: 3},
	})
	if err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("want duplicate-key error, got %v", err)
	}
}

func TestBulkLoadUnsortedRejected(t *testing.T) {
	_, err := BulkLoad([]Pair[int]{
		{Key: []byte("b"), Value: 1},
		{Key: []byte("a"), Value: 2},
	})
	if err == nil || !strings.Contains(err.Error(), "out of order") {
		t.Fatalf("want out-of-order error, got %v", err)
	}
}

// TestBulkLoadEquivalentToSet is the core property: for random corpora,
// BulkLoad over sorted unique pairs produces a tree with the same
// structural invariants and the same iteration output as sequential Set,
// and the two trees keep agreeing after further mutations.
func TestBulkLoadEquivalentToSet(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	sizes := []int{0, 1, 2, minKeys, maxKeys - 1, maxKeys, maxKeys + 1,
		maxKeys*2 + minKeys - 1, 1000, 4097}
	for round := 0; round < 8; round++ {
		sizes = append(sizes, 1+r.Intn(20_000))
	}
	for _, n := range sizes {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			// Random unique keys of varying length, sorted.
			seen := make(map[string]bool, n)
			pairs := make([]Pair[int], 0, n)
			for len(pairs) < n {
				k := fmt.Sprintf("%0*x", 4+r.Intn(12), r.Int63())
				if seen[k] {
					continue
				}
				seen[k] = true
				pairs = append(pairs, Pair[int]{Key: []byte(k), Value: len(pairs)})
			}
			sortPairs(pairs)
			bulk, err := BulkLoad(pairs)
			if err != nil {
				t.Fatal(err)
			}
			inc := New[int]()
			for _, p := range rand.New(rand.NewSource(int64(n))).Perm(len(pairs)) {
				inc.Set(pairs[p].Key, pairs[p].Value)
			}
			checkInvariants(t, bulk)
			checkInvariants(t, inc)
			compareTrees(t, bulk, inc)
			// Both trees must stay equivalent under subsequent mutation.
			for i := 0; i < 200; i++ {
				if i%3 == 0 && len(pairs) > 0 {
					k := pairs[r.Intn(len(pairs))].Key
					bulk.Delete(k)
					inc.Delete(k)
				} else {
					k := []byte(fmt.Sprintf("new-%06d", r.Intn(500)))
					bulk.Set(k, i)
					inc.Set(k, i)
				}
			}
			checkInvariants(t, bulk)
			compareTrees(t, bulk, inc)
		})
	}
}

func sortPairs(pairs []Pair[int]) {
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0 && bytes.Compare(pairs[j].Key, pairs[j-1].Key) < 0; j-- {
			pairs[j], pairs[j-1] = pairs[j-1], pairs[j]
		}
	}
}

func compareTrees(t *testing.T, a, b *Tree[int]) {
	t.Helper()
	if a.Len() != b.Len() {
		t.Fatalf("Len %d vs %d", a.Len(), b.Len())
	}
	type kv struct {
		k string
		v int
	}
	collect := func(tr *Tree[int]) []kv {
		var out []kv
		tr.Ascend(func(k []byte, v int) bool {
			out = append(out, kv{string(k), v})
			return true
		})
		return out
	}
	av, bv := collect(a), collect(b)
	if len(av) != len(bv) {
		t.Fatalf("Ascend yields %d vs %d entries", len(av), len(bv))
	}
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("Ascend diverges at %d: %v vs %v", i, av[i], bv[i])
		}
	}
}
