// Package core implements the author index itself: an alphabetized,
// incrementally maintained mapping from authors to the works they wrote,
// with per-letter sections and "see also" cross-references — the data
// structure whose printed form is the front-matter artifact.
//
// Entries are keyed by collation key in a B+tree, so iteration order is
// print order. The index is not safe for concurrent mutation; the public
// facade serializes access.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/model"
	"repro/internal/parallel"
)

// Entry is one author heading and the works filed under it. A heading
// with no works may still exist to carry cross-references.
type Entry struct {
	Author model.Author
	// Works are sorted by citation (volume, page, year), then title.
	Works []model.Work
	// SeeAlso lists alternate headings the reader should consult,
	// maintained in collation order.
	SeeAlso []model.Author
}

// Clone returns a deep copy so readers can hold results across
// mutations. Ascend callbacks receive live entries; cloning the visited
// entry directly avoids re-searching the tree with Lookup.
func (e *Entry) Clone() *Entry { return e.clone() }

// clone returns a deep copy so readers can hold results across mutations.
func (e *Entry) clone() *Entry {
	c := &Entry{Author: e.Author}
	c.Works = make([]model.Work, len(e.Works))
	for i := range e.Works {
		c.Works[i] = *e.Works[i].Clone()
	}
	c.SeeAlso = append([]model.Author(nil), e.SeeAlso...)
	return c
}

// Section is one letter group of the printed index.
type Section struct {
	Letter  byte // 'A'..'Z', or '#' for headings that file under none
	Entries []*Entry
}

// Stats summarizes index contents.
type Stats struct {
	Authors      int // distinct headings (entries)
	Works        int // distinct works
	Postings     int // author–work pairs
	StudentNotes int // postings under student headings
	CrossRefs    int // see-also references
}

// Index is the author index over a corpus of works.
//
// Mutations follow a copy-on-write discipline: a filed *Entry is never
// modified in place — the mutating method copies it, edits the copy, and
// replaces the tree value — so a Clone taken before the mutation keeps a
// frozen, internally consistent view with zero coordination.
type Index struct {
	opts    collate.Options
	entries *btree.Tree[*Entry]
	// workRefs counts how many headings each work appears under. It is
	// writer-only bookkeeping shared across clones (snapshot readers
	// never touch it); the distinct counter below is the value-copied
	// summary they read instead.
	workRefs map[model.WorkID]int
	distinct int // distinct works, maintained on 0→1 / 1→0 ref transitions
	postings int
	students int
	crossRef int
}

// New returns an empty index using the given collation options.
func New(opts collate.Options) *Index {
	return &Index{
		opts:     opts,
		entries:  btree.New[*Entry](),
		workRefs: make(map[model.WorkID]int),
	}
}

// Clone returns an O(1) copy-on-write snapshot: the heading tree shares
// every node until one side mutates, and entries are immutable values
// replaced wholesale, so the clone's view is frozen. The workRefs map is
// shared — it is writer-side bookkeeping that snapshot readers never
// consult (Stats reports the copied distinct counter).
func (ix *Index) Clone() *Index {
	cp := *ix
	cp.entries = ix.entries.Clone()
	return &cp
}

// mutableCopy returns a copy of e safe to edit while the original stays
// visible to snapshot readers. Works and SeeAlso get fresh backing
// arrays; the work values inside still share their author/subject
// slices, which nothing ever mutates in place.
func (e *Entry) mutableCopy() *Entry {
	cp := &Entry{Author: e.Author}
	if len(e.Works) > 0 {
		cp.Works = append(make([]model.Work, 0, len(e.Works)+1), e.Works...)
	}
	if len(e.SeeAlso) > 0 {
		cp.SeeAlso = append(make([]model.Author, 0, len(e.SeeAlso)+1), e.SeeAlso...)
	}
	return cp
}

// Options returns the collation options the index was built with.
func (ix *Index) Options() collate.Options { return ix.opts }

// Add files w under each of its authors. Works must carry distinct IDs;
// re-adding an ID that is already filed under the same author replaces
// that posting.
func (ix *Index) Add(w *model.Work) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if w.ID == 0 {
		return fmt.Errorf("core: work %q has no ID", w.Title)
	}
	for _, a := range w.Authors {
		key := collate.KeyAuthor(a, ix.opts)
		e, ok := ix.entries.Get(key)
		if ok {
			e = e.mutableCopy()
		} else {
			e = &Entry{Author: a}
		}
		if e.insertWork(w) {
			if ix.workRefs[w.ID]++; ix.workRefs[w.ID] == 1 {
				ix.distinct++
			}
			ix.postings++
			if a.Student {
				ix.students++
			}
		}
		ix.entries.Set(key, e)
	}
	return nil
}

// Remove unfiles w from each of its authors; headings left with neither
// works nor cross-references are deleted. Removing a work that is not
// present is a no-op.
func (ix *Index) Remove(w *model.Work) {
	for _, a := range w.Authors {
		key := collate.KeyAuthor(a, ix.opts)
		e, ok := ix.entries.Get(key)
		if !ok {
			continue
		}
		cp := e.mutableCopy()
		if !cp.removeWork(w.ID) {
			continue
		}
		ix.postings--
		if a.Student {
			ix.students--
		}
		if ix.workRefs[w.ID]--; ix.workRefs[w.ID] <= 0 {
			delete(ix.workRefs, w.ID)
			ix.distinct--
		}
		if len(cp.Works) == 0 && len(cp.SeeAlso) == 0 {
			ix.entries.Delete(key)
		} else {
			ix.entries.Set(key, cp)
		}
	}
}

// AddSeeAlso records a cross-reference from one heading to another,
// creating the source heading if needed. Duplicate references are
// ignored; a self-reference is an error.
func (ix *Index) AddSeeAlso(from, to model.Author) error {
	if err := from.Validate(); err != nil {
		return err
	}
	if err := to.Validate(); err != nil {
		return err
	}
	if from.Display() == to.Display() {
		return fmt.Errorf("core: see-also from %q to itself", from.Display())
	}
	key := collate.KeyAuthor(from, ix.opts)
	e, ok := ix.entries.Get(key)
	if ok {
		for _, existing := range e.SeeAlso {
			if existing == to {
				return nil
			}
		}
		e = e.mutableCopy()
	} else {
		e = &Entry{Author: from}
	}
	e.SeeAlso = append(e.SeeAlso, to)
	sort.Slice(e.SeeAlso, func(i, j int) bool {
		return string(collate.KeyAuthor(e.SeeAlso[i], ix.opts)) <
			string(collate.KeyAuthor(e.SeeAlso[j], ix.opts))
	})
	ix.entries.Set(key, e)
	ix.crossRef++
	return nil
}

// RemoveSeeAlso deletes a cross-reference; the source heading is removed
// too if it has no works left. It reports whether the reference existed.
func (ix *Index) RemoveSeeAlso(from, to model.Author) bool {
	key := collate.KeyAuthor(from, ix.opts)
	e, ok := ix.entries.Get(key)
	if !ok {
		return false
	}
	for i, existing := range e.SeeAlso {
		if existing == to {
			cp := e.mutableCopy()
			cp.SeeAlso = append(cp.SeeAlso[:i], cp.SeeAlso[i+1:]...)
			ix.crossRef--
			if len(cp.Works) == 0 && len(cp.SeeAlso) == 0 {
				ix.entries.Delete(key)
			} else {
				ix.entries.Set(key, cp)
			}
			return true
		}
	}
	return false
}

// Lookup returns a copy of the entry for an exact author heading.
func (ix *Index) Lookup(a model.Author) (*Entry, bool) {
	e, ok := ix.entries.Get(collate.KeyAuthor(a, ix.opts))
	if !ok {
		return nil, false
	}
	return e.clone(), true
}

// Ascend visits every entry in print order until fn returns false.
// Entries passed to fn are live; fn must not mutate or retain them —
// use Lookup for a stable copy.
func (ix *Index) Ascend(fn func(*Entry) bool) {
	ix.entries.Ascend(func(_ []byte, e *Entry) bool { return fn(e) })
}

// AscendPrefix visits entries whose primary collation text starts with
// the folded prefix (e.g. "ab" matches Abdalla and Abrams), in order.
func (ix *Index) AscendPrefix(prefix string, fn func(*Entry) bool) {
	p := collate.PrimaryPrefix(prefix, ix.opts)
	ix.entries.AscendPrefix(p, func(_ []byte, e *Entry) bool { return fn(e) })
}

// AscendAfter visits entries strictly after the given author heading in
// print order, until fn returns false. Use the zero Author to start from
// the beginning. The heading itself need not exist.
func (ix *Index) AscendAfter(after model.Author, fn func(*Entry) bool) {
	if after.IsZero() {
		ix.Ascend(fn)
		return
	}
	// The smallest possible key strictly greater than after's key is the
	// key with a zero byte appended.
	lo := append(collate.KeyAuthor(after, ix.opts), 0)
	ix.entries.AscendRange(lo, nil, func(_ []byte, e *Entry) bool { return fn(e) })
}

// Sections groups entries by first letter for rendering. The returned
// entries are deep copies, safe to hold.
func (ix *Index) Sections() []Section {
	var sections []Section
	ix.entries.Ascend(func(_ []byte, e *Entry) bool {
		letter := collate.FirstLetter(e.Author, ix.opts)
		if n := len(sections); n == 0 || sections[n-1].Letter != letter {
			sections = append(sections, Section{Letter: letter})
		}
		s := &sections[len(sections)-1]
		s.Entries = append(s.Entries, e.clone())
		return true
	})
	return sections
}

// Stats returns current counters.
func (ix *Index) Stats() Stats {
	return Stats{
		Authors:      ix.entries.Len(),
		Works:        ix.distinct,
		Postings:     ix.postings,
		StudentNotes: ix.students,
		CrossRefs:    ix.crossRef,
	}
}

// Len returns the number of headings.
func (ix *Index) Len() int { return ix.entries.Len() }

// Rebuild constructs a fresh index from a corpus in one pass. It is the
// "full rebuild" baseline that incremental maintenance is measured
// against in experiment E3.
func Rebuild(opts collate.Options, works []*model.Work) (*Index, error) {
	ix := New(opts)
	for _, w := range works {
		if err := ix.Add(w); err != nil {
			return nil, fmt.Errorf("core: rebuild work %d: %w", w.ID, err)
		}
	}
	return ix, nil
}

// Load bulk-constructs an index over a complete corpus, bottom-up: the
// works filed under each heading accumulate in a map, each entry's
// postings are ordered with one stable pointer sort and materialized
// with one allocation (entries sort and materialize on parallel
// goroutines), and the heading tree is built with btree.BulkLoad from
// one sorted pass — no per-posting tree descent, no binary-search
// insertion, no node splits. For works with unique IDs the result is
// identical to New followed by Add for every work, down to the order of
// equal citation keys within an entry.
//
// Unlike Add, Load retains the given works read-only: entry postings
// share their author and subject arrays rather than deep-copying one
// clone per posting (nothing in the index ever mutates a filed work in
// place — insertWork replaces whole elements). Callers hand the corpus
// over and must not modify it afterwards.
func Load(opts collate.Options, works []*model.Work) (*Index, error) {
	ix := New(opts)
	ix.workRefs = make(map[model.WorkID]int, len(works))
	type accum struct {
		e    *Entry
		refs []*model.Work
	}
	entries := make(map[string]*accum)
	keys := make([]string, 0, len(works))
	// keyMemo caches each distinct author's collation key: in a whole
	// corpus the same author recurs once per work, and key construction
	// (folding, tiering) would otherwise dominate the accumulation pass.
	keyMemo := make(map[model.Author]string)
	var scratch []*accum // headings filed by the current work
	for _, w := range works {
		if err := w.Validate(); err != nil {
			return nil, fmt.Errorf("core: load work %d: %w", w.ID, err)
		}
		if w.ID == 0 {
			return nil, fmt.Errorf("core: work %q has no ID", w.Title)
		}
		scratch = scratch[:0]
		for _, a := range w.Authors {
			key, ok := keyMemo[a]
			if !ok {
				key = string(collate.KeyAuthor(a, opts))
				keyMemo[a] = key
			}
			ac, ok := entries[key]
			if !ok {
				ac = &accum{e: &Entry{Author: a}}
				entries[key] = ac
				keys = append(keys, key)
			}
			// A second listing of the same heading on one work is the
			// in-place replacement case for Add: the posting is filed once.
			dup := false
			for _, seen := range scratch {
				if seen == ac {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			scratch = append(scratch, ac)
			ac.refs = append(ac.refs, w)
			ix.workRefs[w.ID]++
			ix.postings++
			if a.Student {
				ix.students++
			}
		}
	}
	sort.Strings(keys)
	// Order and materialize each entry: reverse then stable-sort the
	// refs — insertWork files a new work before existing works with an
	// equal (citation, title) key, so sequential Adds leave equal keys
	// in reverse add order, and reverse-plus-stable-sort reproduces that
	// byte for byte — then clone into an exactly-sized Works slice.
	// Entries are independent, so the work fans out across cores.
	if err := parallel.Ranges(len(keys), func(lo, hi int) error {
		// Each entry gets its own exactly-sized Works slice (no shared
		// backing array: a later Remove must let this entry's postings
		// be collected without waiting for every sibling to go too).
		for _, k := range keys[lo:hi] {
			ac := entries[k]
			refs := ac.refs
			for i, j := 0, len(refs)-1; i < j; i, j = i+1, j-1 {
				refs[i], refs[j] = refs[j], refs[i]
			}
			sort.SliceStable(refs, func(i, j int) bool {
				if c := refs[i].Citation.Compare(refs[j].Citation); c != 0 {
					return c < 0
				}
				return strings.Compare(refs[i].Title, refs[j].Title) < 0
			})
			ac.e.Works = make([]model.Work, len(refs))
			for i, w := range refs {
				ac.e.Works[i] = *w // shallow: shares the retained corpus
			}
		}
		return nil
	}); err != nil {
		// Unreachable today (the callback never fails), but a fallible
		// future materialization must not be swallowed.
		return nil, err
	}
	pairs := make([]btree.Pair[*Entry], len(keys))
	for i, k := range keys {
		pairs[i] = btree.Pair[*Entry]{Key: []byte(k), Value: entries[k].e}
	}
	tree, err := btree.BulkLoad(pairs)
	if err != nil {
		// Unreachable: map keys are unique and just sorted.
		return nil, err
	}
	ix.entries = tree
	ix.distinct = len(ix.workRefs)
	return ix, nil
}

// SeeAlsoRef is one cross-reference pair for AddSeeAlsoBatch.
type SeeAlsoRef struct {
	From, To model.Author
}

// AddSeeAlsoBatch records a batch of cross-references under one
// validation pass and one SeeAlso sort per touched heading, instead of
// the per-ref validate + linear-dedupe + re-sort that N sequential
// AddSeeAlso calls pay. Every ref is validated before anything is
// recorded, so an invalid ref anywhere in the batch leaves the index
// unchanged. Duplicate refs (in the batch or already recorded) are
// ignored, exactly like AddSeeAlso.
func (ix *Index) AddSeeAlsoBatch(refs []SeeAlsoRef) error {
	if len(refs) == 0 {
		return nil
	}
	for _, ref := range refs {
		if err := ref.From.Validate(); err != nil {
			return err
		}
		if err := ref.To.Validate(); err != nil {
			return err
		}
		if ref.From.Display() == ref.To.Display() {
			return fmt.Errorf("core: see-also from %q to itself", ref.From.Display())
		}
	}
	// touched maps collation key → this batch's owned copy of the entry,
	// so each heading is copied once no matter how many refs hit it and
	// shared originals are never written.
	touched := make(map[string]*Entry)
	for _, ref := range refs {
		key := collate.KeyAuthor(ref.From, ix.opts)
		e, owned := touched[string(key)]
		if !owned {
			if orig, ok := ix.entries.Get(key); ok {
				e = orig.mutableCopy()
			} else {
				e = &Entry{Author: ref.From}
			}
			touched[string(key)] = e
		}
		dup := false
		for _, existing := range e.SeeAlso {
			if existing == ref.To {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		e.SeeAlso = append(e.SeeAlso, ref.To)
		ix.crossRef++
	}
	for k, e := range touched {
		sort.Slice(e.SeeAlso, func(i, j int) bool {
			return string(collate.KeyAuthor(e.SeeAlso[i], ix.opts)) <
				string(collate.KeyAuthor(e.SeeAlso[j], ix.opts))
		})
		ix.entries.Set([]byte(k), e)
	}
	return nil
}

// insertWork files w in citation order; returns false if the ID was
// already present (the posting is replaced in place).
func (e *Entry) insertWork(w *model.Work) bool {
	for i := range e.Works {
		if e.Works[i].ID == w.ID {
			e.Works[i] = *w.Clone()
			return false
		}
	}
	cp := *w.Clone()
	i := sort.Search(len(e.Works), func(i int) bool {
		if c := e.Works[i].Citation.Compare(cp.Citation); c != 0 {
			return c > 0
		}
		return strings.Compare(e.Works[i].Title, cp.Title) >= 0
	})
	e.Works = append(e.Works, model.Work{})
	copy(e.Works[i+1:], e.Works[i:])
	e.Works[i] = cp
	return true
}

func (e *Entry) removeWork(id model.WorkID) bool {
	for i := range e.Works {
		if e.Works[i].ID == id {
			e.Works = append(e.Works[:i], e.Works[i+1:]...)
			// Help the GC: clear the duplicated tail slot so the spliced
			// work's pointers are not pinned by the slice's capacity.
			if n := len(e.Works); n < cap(e.Works) {
				e.Works[:cap(e.Works)][n] = model.Work{}
			}
			return true
		}
	}
	return false
}
