// Package core implements the author index itself: an alphabetized,
// incrementally maintained mapping from authors to the works they wrote,
// with per-letter sections and "see also" cross-references — the data
// structure whose printed form is the front-matter artifact.
//
// Entries are keyed by collation key in a B+tree, so iteration order is
// print order. The index is not safe for concurrent mutation; the public
// facade serializes access.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/model"
)

// Entry is one author heading and the works filed under it. A heading
// with no works may still exist to carry cross-references.
type Entry struct {
	Author model.Author
	// Works are sorted by citation (volume, page, year), then title.
	Works []model.Work
	// SeeAlso lists alternate headings the reader should consult,
	// maintained in collation order.
	SeeAlso []model.Author
}

// Clone returns a deep copy so readers can hold results across
// mutations. Ascend callbacks receive live entries; cloning the visited
// entry directly avoids re-searching the tree with Lookup.
func (e *Entry) Clone() *Entry { return e.clone() }

// clone returns a deep copy so readers can hold results across mutations.
func (e *Entry) clone() *Entry {
	c := &Entry{Author: e.Author}
	c.Works = make([]model.Work, len(e.Works))
	for i := range e.Works {
		c.Works[i] = *e.Works[i].Clone()
	}
	c.SeeAlso = append([]model.Author(nil), e.SeeAlso...)
	return c
}

// Section is one letter group of the printed index.
type Section struct {
	Letter  byte // 'A'..'Z', or '#' for headings that file under none
	Entries []*Entry
}

// Stats summarizes index contents.
type Stats struct {
	Authors      int // distinct headings (entries)
	Works        int // distinct works
	Postings     int // author–work pairs
	StudentNotes int // postings under student headings
	CrossRefs    int // see-also references
}

// Index is the author index over a corpus of works.
type Index struct {
	opts    collate.Options
	entries *btree.Tree[*Entry]
	// workRefs counts how many headings each work appears under, so
	// Stats can report distinct works.
	workRefs map[model.WorkID]int
	postings int
	students int
	crossRef int
}

// New returns an empty index using the given collation options.
func New(opts collate.Options) *Index {
	return &Index{
		opts:     opts,
		entries:  btree.New[*Entry](),
		workRefs: make(map[model.WorkID]int),
	}
}

// Options returns the collation options the index was built with.
func (ix *Index) Options() collate.Options { return ix.opts }

// Add files w under each of its authors. Works must carry distinct IDs;
// re-adding an ID that is already filed under the same author replaces
// that posting.
func (ix *Index) Add(w *model.Work) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if w.ID == 0 {
		return fmt.Errorf("core: work %q has no ID", w.Title)
	}
	for _, a := range w.Authors {
		key := collate.KeyAuthor(a, ix.opts)
		e, ok := ix.entries.Get(key)
		if !ok {
			e = &Entry{Author: a}
			ix.entries.Set(key, e)
		}
		if e.insertWork(w) {
			ix.workRefs[w.ID]++
			ix.postings++
			if a.Student {
				ix.students++
			}
		}
	}
	return nil
}

// Remove unfiles w from each of its authors; headings left with neither
// works nor cross-references are deleted. Removing a work that is not
// present is a no-op.
func (ix *Index) Remove(w *model.Work) {
	for _, a := range w.Authors {
		key := collate.KeyAuthor(a, ix.opts)
		e, ok := ix.entries.Get(key)
		if !ok {
			continue
		}
		if e.removeWork(w.ID) {
			ix.postings--
			if a.Student {
				ix.students--
			}
			if ix.workRefs[w.ID]--; ix.workRefs[w.ID] <= 0 {
				delete(ix.workRefs, w.ID)
			}
		}
		if len(e.Works) == 0 && len(e.SeeAlso) == 0 {
			ix.entries.Delete(key)
		}
	}
}

// AddSeeAlso records a cross-reference from one heading to another,
// creating the source heading if needed. Duplicate references are
// ignored; a self-reference is an error.
func (ix *Index) AddSeeAlso(from, to model.Author) error {
	if err := from.Validate(); err != nil {
		return err
	}
	if err := to.Validate(); err != nil {
		return err
	}
	if from.Display() == to.Display() {
		return fmt.Errorf("core: see-also from %q to itself", from.Display())
	}
	key := collate.KeyAuthor(from, ix.opts)
	e, ok := ix.entries.Get(key)
	if !ok {
		e = &Entry{Author: from}
		ix.entries.Set(key, e)
	}
	for _, existing := range e.SeeAlso {
		if existing == to {
			return nil
		}
	}
	e.SeeAlso = append(e.SeeAlso, to)
	sort.Slice(e.SeeAlso, func(i, j int) bool {
		return string(collate.KeyAuthor(e.SeeAlso[i], ix.opts)) <
			string(collate.KeyAuthor(e.SeeAlso[j], ix.opts))
	})
	ix.crossRef++
	return nil
}

// RemoveSeeAlso deletes a cross-reference; the source heading is removed
// too if it has no works left. It reports whether the reference existed.
func (ix *Index) RemoveSeeAlso(from, to model.Author) bool {
	key := collate.KeyAuthor(from, ix.opts)
	e, ok := ix.entries.Get(key)
	if !ok {
		return false
	}
	for i, existing := range e.SeeAlso {
		if existing == to {
			e.SeeAlso = append(e.SeeAlso[:i], e.SeeAlso[i+1:]...)
			ix.crossRef--
			if len(e.Works) == 0 && len(e.SeeAlso) == 0 {
				ix.entries.Delete(key)
			}
			return true
		}
	}
	return false
}

// Lookup returns a copy of the entry for an exact author heading.
func (ix *Index) Lookup(a model.Author) (*Entry, bool) {
	e, ok := ix.entries.Get(collate.KeyAuthor(a, ix.opts))
	if !ok {
		return nil, false
	}
	return e.clone(), true
}

// Ascend visits every entry in print order until fn returns false.
// Entries passed to fn are live; fn must not mutate or retain them —
// use Lookup for a stable copy.
func (ix *Index) Ascend(fn func(*Entry) bool) {
	ix.entries.Ascend(func(_ []byte, e *Entry) bool { return fn(e) })
}

// AscendPrefix visits entries whose primary collation text starts with
// the folded prefix (e.g. "ab" matches Abdalla and Abrams), in order.
func (ix *Index) AscendPrefix(prefix string, fn func(*Entry) bool) {
	p := collate.PrimaryPrefix(prefix, ix.opts)
	ix.entries.AscendPrefix(p, func(_ []byte, e *Entry) bool { return fn(e) })
}

// AscendAfter visits entries strictly after the given author heading in
// print order, until fn returns false. Use the zero Author to start from
// the beginning. The heading itself need not exist.
func (ix *Index) AscendAfter(after model.Author, fn func(*Entry) bool) {
	if after.IsZero() {
		ix.Ascend(fn)
		return
	}
	// The smallest possible key strictly greater than after's key is the
	// key with a zero byte appended.
	lo := append(collate.KeyAuthor(after, ix.opts), 0)
	ix.entries.AscendRange(lo, nil, func(_ []byte, e *Entry) bool { return fn(e) })
}

// Sections groups entries by first letter for rendering. The returned
// entries are deep copies, safe to hold.
func (ix *Index) Sections() []Section {
	var sections []Section
	ix.entries.Ascend(func(_ []byte, e *Entry) bool {
		letter := collate.FirstLetter(e.Author, ix.opts)
		if n := len(sections); n == 0 || sections[n-1].Letter != letter {
			sections = append(sections, Section{Letter: letter})
		}
		s := &sections[len(sections)-1]
		s.Entries = append(s.Entries, e.clone())
		return true
	})
	return sections
}

// Stats returns current counters.
func (ix *Index) Stats() Stats {
	return Stats{
		Authors:      ix.entries.Len(),
		Works:        len(ix.workRefs),
		Postings:     ix.postings,
		StudentNotes: ix.students,
		CrossRefs:    ix.crossRef,
	}
}

// Len returns the number of headings.
func (ix *Index) Len() int { return ix.entries.Len() }

// Rebuild constructs a fresh index from a corpus in one pass. It is the
// "full rebuild" baseline that incremental maintenance is measured
// against in experiment E3.
func Rebuild(opts collate.Options, works []*model.Work) (*Index, error) {
	ix := New(opts)
	for _, w := range works {
		if err := ix.Add(w); err != nil {
			return nil, fmt.Errorf("core: rebuild work %d: %w", w.ID, err)
		}
	}
	return ix, nil
}

// insertWork files w in citation order; returns false if the ID was
// already present (the posting is replaced in place).
func (e *Entry) insertWork(w *model.Work) bool {
	for i := range e.Works {
		if e.Works[i].ID == w.ID {
			e.Works[i] = *w.Clone()
			return false
		}
	}
	cp := *w.Clone()
	i := sort.Search(len(e.Works), func(i int) bool {
		if c := e.Works[i].Citation.Compare(cp.Citation); c != 0 {
			return c > 0
		}
		return strings.Compare(e.Works[i].Title, cp.Title) >= 0
	})
	e.Works = append(e.Works, model.Work{})
	copy(e.Works[i+1:], e.Works[i:])
	e.Works[i] = cp
	return true
}

func (e *Entry) removeWork(id model.WorkID) bool {
	for i := range e.Works {
		if e.Works[i].ID == id {
			e.Works = append(e.Works[:i], e.Works[i+1:]...)
			return true
		}
	}
	return false
}
