package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/collate"
	"repro/internal/model"
	"repro/internal/names"
)

var nextTestID model.WorkID

func mkWork(t *testing.T, title string, cite string, authorStrs ...string) *model.Work {
	t.Helper()
	nextTestID++
	w := &model.Work{ID: nextTestID, Title: title}
	var err error
	if w.Citation, err = parseCite(cite); err != nil {
		t.Fatalf("bad cite %q: %v", cite, err)
	}
	for _, s := range authorStrs {
		w.Authors = append(w.Authors, names.MustParse(s))
	}
	return w
}

func parseCite(s string) (model.Citation, error) {
	var c model.Citation
	_, err := fmt.Sscanf(s, "%d:%d (%d)", &c.Volume, &c.Page, &c.Year)
	return c, err
}

func headings(ix *Index) []string {
	var out []string
	ix.Ascend(func(e *Entry) bool {
		out = append(out, e.Author.Display())
		return true
	})
	return out
}

func TestAddAndOrder(t *testing.T) {
	ix := New(collate.Default())
	works := []*model.Work{
		mkWork(t, "Essay on Coal", "76:337 (1974)", "Bondurant, Donald M."),
		mkWork(t, "Stop and Frisk", "71:394 (1969)", "Anderson, John M.*"),
		mkWork(t, "Welfare Hearings", "73:80 (1971)", "Albert, Michael C.*"),
		mkWork(t, "Ideas of Relevance to Law", "84:1 (1981)", "Adler, Mortimer J."),
	}
	for _, w := range works {
		if err := ix.Add(w); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	want := []string{
		"Adler, Mortimer J.",
		"Albert, Michael C.*",
		"Anderson, John M.*",
		"Bondurant, Donald M.",
	}
	got := headings(ix)
	if len(got) != len(want) {
		t.Fatalf("headings = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("headings = %v, want %v", got, want)
		}
	}
}

func TestMultiAuthorWork(t *testing.T) {
	ix := New(collate.Default())
	w := mkWork(t, "Suicide as a Compensable Claim", "86:369 (1983)",
		"Bastien, Christopher P.", "Batt, John R.")
	ix.Add(w)
	st := ix.Stats()
	if st.Authors != 2 || st.Works != 1 || st.Postings != 2 {
		t.Errorf("stats = %+v", st)
	}
	for _, a := range w.Authors {
		e, ok := ix.Lookup(a)
		if !ok || len(e.Works) != 1 || e.Works[0].ID != w.ID {
			t.Errorf("Lookup(%s) = %+v,%v", a.Display(), e, ok)
		}
	}
}

func TestWorksSortedByCitation(t *testing.T) {
	ix := New(collate.Default())
	a := "Cardi, Vincent P."
	w1 := mkWork(t, "UCC Article 2", "93:735 (1991)", a)
	w2 := mkWork(t, "Strip Mining", "75:319 (1973)", a)
	w3 := mkWork(t, "Consumer Credit", "77:401 (1975)", a)
	for _, w := range []*model.Work{w1, w2, w3} {
		ix.Add(w)
	}
	e, _ := ix.Lookup(names.MustParse(a))
	if len(e.Works) != 3 {
		t.Fatalf("works = %d", len(e.Works))
	}
	if e.Works[0].Citation.Volume != 75 || e.Works[1].Citation.Volume != 77 || e.Works[2].Citation.Volume != 93 {
		t.Errorf("citation order wrong: %v %v %v",
			e.Works[0].Citation, e.Works[1].Citation, e.Works[2].Citation)
	}
}

func TestStudentAndProfessionalAreDistinctHeadings(t *testing.T) {
	// The same person as a student (asterisked) and later as a
	// professional gets two headings, as the source material does.
	ix := New(collate.Default())
	ix.Add(mkWork(t, "Student Note", "81:675 (1979)", "Barrett, Joshua I.*"))
	ix.Add(mkWork(t, "Professional Article", "94:693 (1992)", "Barrett, Joshua I."))
	if ix.Len() != 2 {
		t.Fatalf("headings = %v", headings(ix))
	}
	st := ix.Stats()
	if st.StudentNotes != 1 {
		t.Errorf("StudentNotes = %d, want 1", st.StudentNotes)
	}
}

func TestRemove(t *testing.T) {
	ix := New(collate.Default())
	w1 := mkWork(t, "First", "90:1 (1988)", "Shared, Author", "Solo, Writer")
	w2 := mkWork(t, "Second", "90:50 (1988)", "Shared, Author")
	ix.Add(w1)
	ix.Add(w2)
	ix.Remove(w1)
	if _, ok := ix.Lookup(names.MustParse("Solo, Writer")); ok {
		t.Error("empty heading not deleted")
	}
	e, ok := ix.Lookup(names.MustParse("Shared, Author"))
	if !ok || len(e.Works) != 1 || e.Works[0].ID != w2.ID {
		t.Errorf("shared heading after remove = %+v,%v", e, ok)
	}
	st := ix.Stats()
	if st.Works != 1 || st.Postings != 1 || st.Authors != 1 {
		t.Errorf("stats after remove = %+v", st)
	}
	// Removing again is a no-op.
	ix.Remove(w1)
	if got := ix.Stats(); got != st {
		t.Errorf("idempotent remove changed stats: %+v", got)
	}
}

func TestAddValidation(t *testing.T) {
	ix := New(collate.Default())
	bad := &model.Work{Title: "x"}
	if err := ix.Add(bad); err == nil {
		t.Error("invalid work accepted")
	}
	w := mkWork(t, "ok", "90:1 (1988)", "Fam, G.")
	w.ID = 0
	if err := ix.Add(w); err == nil {
		t.Error("zero-ID work accepted")
	}
}

func TestReAddReplacesPosting(t *testing.T) {
	ix := New(collate.Default())
	w := mkWork(t, "Old Title", "90:1 (1988)", "Fam, G.")
	ix.Add(w)
	w2 := w.Clone()
	w2.Title = "New Title"
	ix.Add(w2)
	e, _ := ix.Lookup(names.MustParse("Fam, G."))
	if len(e.Works) != 1 || e.Works[0].Title != "New Title" {
		t.Errorf("re-add result: %+v", e.Works)
	}
	if st := ix.Stats(); st.Postings != 1 || st.Works != 1 {
		t.Errorf("stats after re-add: %+v", st)
	}
}

func TestSeeAlso(t *testing.T) {
	ix := New(collate.Default())
	ix.Add(mkWork(t, "Real Article", "90:1 (1988)", "Crain-Mountney, Marion"))
	from := names.MustParse("Mountney, Marion Crain")
	to := names.MustParse("Crain-Mountney, Marion")
	if err := ix.AddSeeAlso(from, to); err != nil {
		t.Fatalf("AddSeeAlso: %v", err)
	}
	e, ok := ix.Lookup(from)
	if !ok || len(e.SeeAlso) != 1 || len(e.Works) != 0 {
		t.Fatalf("cross-ref entry = %+v,%v", e, ok)
	}
	// Duplicate is ignored; self-reference is an error.
	if err := ix.AddSeeAlso(from, to); err != nil {
		t.Errorf("duplicate see-also errored: %v", err)
	}
	if st := ix.Stats(); st.CrossRefs != 1 {
		t.Errorf("CrossRefs = %d, want 1", st.CrossRefs)
	}
	if err := ix.AddSeeAlso(from, from); err == nil {
		t.Error("self see-also accepted")
	}
	// Removing the real work must not delete the pure cross-ref heading.
	if ix.Len() != 2 {
		t.Fatalf("Len = %d", ix.Len())
	}
}

func TestSections(t *testing.T) {
	ix := New(collate.Default())
	ix.Add(mkWork(t, "A1", "90:1 (1988)", "Abrams, Dennis M."))
	ix.Add(mkWork(t, "A2", "90:2 (1988)", "Ashe, Marie"))
	ix.Add(mkWork(t, "B1", "90:3 (1988)", "Bagge, Carl E."))
	ix.Add(mkWork(t, "V1", "90:4 (1988)", "Van Tol, Joan E."))
	secs := ix.Sections()
	if len(secs) != 3 {
		t.Fatalf("sections = %d, want 3 (A, B, V)", len(secs))
	}
	if secs[0].Letter != 'A' || len(secs[0].Entries) != 2 {
		t.Errorf("section A = %c/%d", secs[0].Letter, len(secs[0].Entries))
	}
	if secs[2].Letter != 'V' {
		t.Errorf("section 3 = %c, want V (particle grouping)", secs[2].Letter)
	}
	// Section entries are copies: mutating them must not affect the index.
	secs[0].Entries[0].Works[0].Title = "mutated"
	e, _ := ix.Lookup(names.MustParse("Abrams, Dennis M."))
	if e.Works[0].Title != "A1" {
		t.Error("Sections leaked internal state")
	}
}

func TestAscendPrefix(t *testing.T) {
	ix := New(collate.Default())
	for _, s := range []string{"Abdalla, Tarek F.*", "Abramovsky, Deborah", "Abrams, Dennis M.", "Adams, Alayne B."} {
		ix.Add(mkWork(t, "T "+s, "90:1 (1988)", s))
	}
	var got []string
	ix.AscendPrefix("abr", func(e *Entry) bool {
		got = append(got, e.Author.Family)
		return true
	})
	if len(got) != 2 || got[0] != "Abramovsky" || got[1] != "Abrams" {
		t.Errorf("prefix scan = %v", got)
	}
}

func TestLookupReturnsCopy(t *testing.T) {
	ix := New(collate.Default())
	ix.Add(mkWork(t, "Original", "90:1 (1988)", "Fam, G."))
	e, _ := ix.Lookup(names.MustParse("Fam, G."))
	e.Works[0].Title = "hacked"
	again, _ := ix.Lookup(names.MustParse("Fam, G."))
	if again.Works[0].Title != "Original" {
		t.Error("Lookup leaked internal state")
	}
}

// Incremental maintenance must converge to the same state as a rebuild.
func TestIncrementalEqualsRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	families := []string{"Smith", "Jones", "Müller", "Van Dyke", "McAdam", "O'Brien", "Lee"}
	var corpus []*model.Work
	inc := New(collate.Default())
	for i := 0; i < 400; i++ {
		nextTestID++
		w := &model.Work{
			ID:    nextTestID,
			Title: fmt.Sprintf("Title %d", i),
			Citation: model.Citation{
				Volume: 60 + r.Intn(40), Page: 1 + r.Intn(1500), Year: 1960 + r.Intn(40),
			},
			Authors: []model.Author{{
				Family:  families[r.Intn(len(families))],
				Given:   fmt.Sprintf("%c.", 'A'+r.Intn(26)),
				Student: r.Intn(3) == 0,
			}},
		}
		corpus = append(corpus, w)
		if err := inc.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	// Churn: remove a third, re-add half of those.
	removed := map[int]bool{}
	for i := 0; i < len(corpus); i += 3 {
		inc.Remove(corpus[i])
		removed[i] = true
	}
	for i := 0; i < len(corpus); i += 6 {
		inc.Add(corpus[i])
		delete(removed, i)
	}
	var live []*model.Work
	for i, w := range corpus {
		if !removed[i] {
			live = append(live, w)
		}
	}
	full, err := Rebuild(collate.Default(), live)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Stats() != full.Stats() {
		t.Fatalf("stats diverge: inc=%+v full=%+v", inc.Stats(), full.Stats())
	}
	// Entry-by-entry comparison in order.
	type flat struct {
		heading string
		ids     []model.WorkID
	}
	flatten := func(ix *Index) []flat {
		var out []flat
		ix.Ascend(func(e *Entry) bool {
			f := flat{heading: e.Author.Display()}
			for _, w := range e.Works {
				f.ids = append(f.ids, w.ID)
			}
			out = append(out, f)
			return true
		})
		return out
	}
	a, b := flatten(inc), flatten(full)
	if len(a) != len(b) {
		t.Fatalf("headings: inc=%d full=%d", len(a), len(b))
	}
	for i := range a {
		if a[i].heading != b[i].heading {
			t.Fatalf("heading %d: %q vs %q", i, a[i].heading, b[i].heading)
		}
		if len(a[i].ids) != len(b[i].ids) {
			t.Fatalf("%s: %v vs %v", a[i].heading, a[i].ids, b[i].ids)
		}
		// Same multiset of IDs (order may differ only when citations tie).
		sa := append([]model.WorkID(nil), a[i].ids...)
		sb := append([]model.WorkID(nil), b[i].ids...)
		sort.Slice(sa, func(x, y int) bool { return sa[x] < sa[y] })
		sort.Slice(sb, func(x, y int) bool { return sb[x] < sb[y] })
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("%s ids differ: %v vs %v", a[i].heading, a[i].ids, b[i].ids)
			}
		}
	}
}

func TestRemoveSeeAlsoCore(t *testing.T) {
	ix := New(collate.Default())
	from := names.MustParse("Old, Name")
	to := names.MustParse("New, Name")
	if ix.RemoveSeeAlso(from, to) {
		t.Error("removed nonexistent cross-ref")
	}
	if err := ix.AddSeeAlso(from, to); err != nil {
		t.Fatal(err)
	}
	other := names.MustParse("Third, Name")
	if err := ix.AddSeeAlso(from, other); err != nil {
		t.Fatal(err)
	}
	if !ix.RemoveSeeAlso(from, to) {
		t.Fatal("failed to remove existing cross-ref")
	}
	// Heading survives: it still carries the other reference.
	e, ok := ix.Lookup(from)
	if !ok || len(e.SeeAlso) != 1 || e.SeeAlso[0] != other {
		t.Fatalf("entry after partial removal: %+v,%v", e, ok)
	}
	if !ix.RemoveSeeAlso(from, other) {
		t.Fatal("failed to remove second cross-ref")
	}
	if _, ok := ix.Lookup(from); ok {
		t.Error("empty heading not deleted")
	}
	if st := ix.Stats(); st.CrossRefs != 0 {
		t.Errorf("CrossRefs = %d", st.CrossRefs)
	}
}

func TestAscendAfter(t *testing.T) {
	ix := New(collate.Default())
	headings := []string{"Adams, A.", "Baker, B.", "Clark, C.", "Davis, D."}
	for i, h := range headings {
		ix.Add(mkWork(t, fmt.Sprintf("W%d", i), fmt.Sprintf("90:%d (1988)", i+1), h))
	}
	var got []string
	ix.AscendAfter(names.MustParse("Baker, B."), func(e *Entry) bool {
		got = append(got, e.Author.Display())
		return true
	})
	if len(got) != 2 || got[0] != "Clark, C." || got[1] != "Davis, D." {
		t.Errorf("AscendAfter = %v", got)
	}
	// Nonexistent cursor between entries starts at the next heading.
	got = got[:0]
	ix.AscendAfter(names.MustParse("Bzzz, Q."), func(e *Entry) bool {
		got = append(got, e.Author.Display())
		return true
	})
	if len(got) != 2 || got[0] != "Clark, C." {
		t.Errorf("between-cursor AscendAfter = %v", got)
	}
	// Zero author = full scan.
	n := 0
	ix.AscendAfter(model.Author{}, func(*Entry) bool { n++; return true })
	if n != 4 {
		t.Errorf("zero-cursor scan = %d", n)
	}
	if ix.Options() != collate.Default() {
		t.Error("Options() mismatch")
	}
}

func TestStatsEmpty(t *testing.T) {
	ix := New(collate.Default())
	if st := ix.Stats(); st != (Stats{}) {
		t.Errorf("empty stats = %+v", st)
	}
}
