package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/model"
)

// TestLoadAllMatchesIncremental: the bulk-built index must be deeply
// equal to the incrementally-built one — same sections, entries, work
// order (including ties on equal citation keys), and counters — and the
// two must stay equal under subsequent Add/Remove traffic.
func TestLoadAllMatchesIncremental(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 4, Works: 900, ZipfS: 1.1})
	// Exercise the tie-order path: clones sharing (citation, title) with
	// distinct IDs, plus a work listing the same author twice.
	tied := *works[0].Clone()
	tied.ID = 9001
	works = append(works, &tied)
	doubled := *works[1].Clone()
	doubled.ID = 9002
	doubled.Authors = append(doubled.Authors, doubled.Authors[0])
	works = append(works, &doubled)

	inc := New(collate.Default())
	for _, w := range works {
		if err := inc.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	bulk, err := Load(collate.Default(), works)
	if err != nil {
		t.Fatal(err)
	}
	compareCoreIndexes(t, bulk, inc)

	// Subsequent mutations behave identically on both.
	r := rand.New(rand.NewSource(8))
	for i := 0; i < 200; i++ {
		if i%3 == 0 {
			w := works[r.Intn(len(works))]
			inc.Remove(w)
			bulk.Remove(w)
		} else {
			w := &model.Work{
				ID:       model.WorkID(20_000 + i),
				Title:    fmt.Sprintf("Fresh Work %d", i),
				Citation: model.Citation{Volume: 80, Page: i + 1, Year: 1977},
				Authors:  []model.Author{{Family: fmt.Sprintf("New%d", i%37), Given: "Q."}},
			}
			if err := inc.Add(w); err != nil {
				t.Fatal(err)
			}
			if err := bulk.Add(w); err != nil {
				t.Fatal(err)
			}
		}
	}
	compareCoreIndexes(t, bulk, inc)
}

func TestLoadAllRejectsInvalidWork(t *testing.T) {
	if _, err := Load(collate.Default(), []*model.Work{{ID: 1}}); err == nil {
		t.Fatal("Load accepted a work with no title or authors")
	}
	if _, err := Load(collate.Default(), []*model.Work{{
		Title:    "No ID",
		Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
		Authors:  []model.Author{{Family: "Smith", Given: "A."}},
	}}); err == nil {
		t.Fatal("Load accepted a work with no ID")
	}
}

func TestAddSeeAlsoBatchMatchesSequential(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 12, Works: 60})
	refs := make([]SeeAlsoRef, 0, 40)
	for i := 0; i < 40; i++ {
		from := works[i%len(works)].Authors[0]
		to := works[(i*7+3)%len(works)].Authors[0]
		if from.Display() == to.Display() {
			continue
		}
		refs = append(refs, SeeAlsoRef{From: from, To: to})
	}
	refs = append(refs, refs[0]) // duplicate inside the batch: ignored

	seq := New(collate.Default())
	batch := New(collate.Default())
	for _, w := range works {
		if err := seq.Add(w); err != nil {
			t.Fatal(err)
		}
		if err := batch.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, ref := range refs {
		if err := seq.AddSeeAlso(ref.From, ref.To); err != nil {
			t.Fatal(err)
		}
	}
	if err := batch.AddSeeAlsoBatch(refs); err != nil {
		t.Fatal(err)
	}
	compareCoreIndexes(t, batch, seq)

	// A self-reference anywhere in the batch leaves the index unchanged.
	before := batch.Stats()
	bad := append(append([]SeeAlsoRef(nil), refs[:3]...),
		SeeAlsoRef{From: works[0].Authors[0], To: works[0].Authors[0]})
	if err := batch.AddSeeAlsoBatch(bad); err == nil {
		t.Fatal("batch with a self-reference was accepted")
	}
	if got := batch.Stats(); got != before {
		t.Fatalf("failed batch mutated the index: %+v vs %+v", got, before)
	}
	compareCoreIndexes(t, batch, seq)
}

func compareCoreIndexes(t *testing.T, a, b *Index) {
	t.Helper()
	if as, bs := a.Stats(), b.Stats(); as != bs {
		t.Fatalf("stats diverge: %+v vs %+v", as, bs)
	}
	av, bv := a.Sections(), b.Sections()
	if !reflect.DeepEqual(av, bv) {
		if len(av) != len(bv) {
			t.Fatalf("section counts diverge: %d vs %d", len(av), len(bv))
		}
		for i := range av {
			if !reflect.DeepEqual(av[i], bv[i]) {
				t.Fatalf("section %c diverges", av[i].Letter)
			}
		}
		t.Fatal("sections diverge")
	}
}
