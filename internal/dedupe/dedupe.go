// Package dedupe suggests author headings that may refer to the same
// person: diacritic or case variants ("Muller" vs "Müller"), initialism
// variants ("Lewin, Jeff L." vs "Lewin, J. L.") and student/professional
// pairs ("Barrett, Joshua I.*" vs "Barrett, Joshua I."). Index editors
// review suggestions and record see-also cross-references for the ones
// that are real.
package dedupe

import (
	"sort"
	"strings"

	"repro/internal/model"
	"repro/internal/names"
)

// Reason classifies why two headings were paired.
type Reason uint8

// Suggestion reasons, strongest first.
const (
	// SpellingVariant: identical after diacritic/case folding.
	SpellingVariant Reason = iota
	// StudentVariant: identical except for the student marker.
	StudentVariant
	// InitialsVariant: same family name, given names agree on initials
	// with at least one side abbreviated.
	InitialsVariant
)

// String names the reason.
func (r Reason) String() string {
	switch r {
	case SpellingVariant:
		return "spelling-variant"
	case StudentVariant:
		return "student-variant"
	case InitialsVariant:
		return "initials-variant"
	}
	return "unknown"
}

// Suggestion is one candidate duplicate pair, A sorting before B by
// display string.
type Suggestion struct {
	A, B   model.Author
	Reason Reason
}

// Suggest examines a list of distinct author headings and returns
// candidate duplicate pairs, ordered by reason strength then display
// name. Input order does not matter; each unordered pair appears at most
// once, under its strongest reason.
func Suggest(authors []model.Author) []Suggestion {
	var out []Suggestion
	seen := map[[2]string]bool{}
	emit := func(a, b model.Author, r Reason) {
		if a.Display() > b.Display() {
			a, b = b, a
		}
		key := [2]string{a.Display(), b.Display()}
		if key[0] == key[1] || seen[key] {
			return
		}
		seen[key] = true
		out = append(out, Suggestion{A: a, B: b, Reason: r})
	}

	// Pass 1: exact fold-key collisions (spelling variants) and
	// student/professional pairs (fold-key equal ignoring the flag).
	byKey := map[string][]model.Author{}
	for _, a := range authors {
		byKey[names.Key(a)] = append(byKey[names.Key(a)], a)
	}
	for _, group := range byKey {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				if group[i].Student != group[j].Student {
					emit(group[i], group[j], StudentVariant)
				} else {
					emit(group[i], group[j], SpellingVariant)
				}
			}
		}
	}

	// Pass 2: same folded family + particle, given names compatible as
	// initialisms.
	byFamily := map[string][]model.Author{}
	for _, a := range authors {
		fk := names.Fold(a.Particle) + "|" + names.Fold(a.Family) + "|" + strings.ToLower(a.Suffix)
		byFamily[fk] = append(byFamily[fk], a)
	}
	for _, group := range byFamily {
		for i := 0; i < len(group); i++ {
			for j := i + 1; j < len(group); j++ {
				a, b := group[i], group[j]
				if names.Key(a) == names.Key(b) {
					continue // already handled in pass 1
				}
				if a.Student != b.Student {
					// Compare ignoring the marker: a student note and a
					// later article often share the person.
					a2, b2 := a, b
					a2.Student, b2.Student = false, false
					if initialsCompatible(a2.Given, b2.Given) {
						emit(a, b, InitialsVariant)
					}
					continue
				}
				if initialsCompatible(a.Given, b.Given) {
					emit(a, b, InitialsVariant)
				}
			}
		}
	}

	sort.Slice(out, func(i, j int) bool {
		if out[i].Reason != out[j].Reason {
			return out[i].Reason < out[j].Reason
		}
		if out[i].A.Display() != out[j].A.Display() {
			return out[i].A.Display() < out[j].A.Display()
		}
		return out[i].B.Display() < out[j].B.Display()
	})
	return out
}

// initialsCompatible reports whether two given-name strings could be the
// same person's: word for word, either both words fold-match or one is
// an initial of the other. At least one abbreviation must be involved
// (identical given names are not "variants"), and both must be non-empty.
func initialsCompatible(a, b string) bool {
	wa, wb := strings.Fields(names.Fold(a)), strings.Fields(names.Fold(b))
	if len(wa) == 0 || len(wb) == 0 {
		return false
	}
	if len(wa) != len(wb) {
		// Allow one side to simply stop early: "Jeff L." vs "Jeff".
		if len(wa) > len(wb) {
			wa = wa[:len(wb)]
		} else {
			wb = wb[:len(wa)]
		}
	}
	abbreviated := len(strings.Fields(a)) != len(strings.Fields(b))
	for i := range wa {
		x, y := strings.TrimSuffix(wa[i], "."), strings.TrimSuffix(wb[i], ".")
		switch {
		case x == y:
		case len(x) == 1 && strings.HasPrefix(y, x):
			abbreviated = true
		case len(y) == 1 && strings.HasPrefix(x, y):
			abbreviated = true
		default:
			return false
		}
	}
	return abbreviated
}
