package dedupe

import (
	"testing"

	"repro/internal/model"
	"repro/internal/names"
)

func suggestFrom(t *testing.T, headings ...string) []Suggestion {
	t.Helper()
	authors := make([]model.Author, len(headings))
	for i, h := range headings {
		authors[i] = names.MustParse(h)
	}
	return Suggest(authors)
}

func TestSpellingVariant(t *testing.T) {
	got := suggestFrom(t, "Müller, Jörg", "Muller, Jorg", "Totally, Different")
	if len(got) != 1 {
		t.Fatalf("suggestions = %+v", got)
	}
	if got[0].Reason != SpellingVariant {
		t.Errorf("reason = %v", got[0].Reason)
	}
	if got[0].A.Display() != "Muller, Jorg" || got[0].B.Display() != "Müller, Jörg" {
		t.Errorf("pair = %s / %s", got[0].A.Display(), got[0].B.Display())
	}
}

func TestStudentVariant(t *testing.T) {
	got := suggestFrom(t, "Barrett, Joshua I.*", "Barrett, Joshua I.")
	if len(got) != 1 || got[0].Reason != StudentVariant {
		t.Fatalf("suggestions = %+v", got)
	}
}

func TestInitialsVariant(t *testing.T) {
	got := suggestFrom(t, "Lewin, Jeff L.", "Lewin, J. L.")
	if len(got) != 1 || got[0].Reason != InitialsVariant {
		t.Fatalf("suggestions = %+v", got)
	}
	// Shorter given name is also compatible.
	got = suggestFrom(t, "Lewin, Jeff L.", "Lewin, J.")
	if len(got) != 1 || got[0].Reason != InitialsVariant {
		t.Fatalf("short-given suggestions = %+v", got)
	}
	// Student-professional across initials.
	got = suggestFrom(t, "Bryant, S. Benjamin*", "Bryant, Samuel Benjamin")
	if len(got) != 1 || got[0].Reason != InitialsVariant {
		t.Fatalf("student-initials suggestions = %+v", got)
	}
}

func TestNoFalsePositives(t *testing.T) {
	cases := [][]string{
		{"Lewin, Jeff L.", "Lewin, Greg L."},       // different first names
		{"Smith, A.", "Smythe, A."},                // different families
		{"Fisher, John W.", "Fisher, John W., II"}, // suffix distinguishes
		{"Brown, James M.", "Brown, Jay M."},       // J-initial but spelled differently
		{"Adams, Q.", "Baker, Q."},                 // unrelated
	}
	for _, headings := range cases {
		if got := suggestFrom(t, headings...); len(got) != 0 {
			t.Errorf("%v produced suggestions: %+v", headings, got)
		}
	}
}

func TestIdenticalHeadingsNotSuggested(t *testing.T) {
	if got := suggestFrom(t, "Same, Person", "Same, Person"); len(got) != 0 {
		t.Errorf("identical headings suggested: %+v", got)
	}
}

func TestFamilyOnlyHeadings(t *testing.T) {
	// Family-only headings have empty given names: never initials-paired.
	if got := suggestFrom(t, "Adler", "Adler, Mortimer J."); len(got) != 0 {
		t.Errorf("family-only pairing: %+v", got)
	}
}

func TestPairReportedOnceUnderStrongestReason(t *testing.T) {
	got := suggestFrom(t, "Cañas, María", "Canas, Maria", "Cañas, M.")
	// Pair 1: spelling variant (Cañas/Canas). Pairs with "Cañas, M.":
	// initials variants against both spellings.
	counts := map[Reason]int{}
	seen := map[string]bool{}
	for _, s := range got {
		key := s.A.Display() + "|" + s.B.Display()
		if seen[key] {
			t.Fatalf("pair %s reported twice", key)
		}
		seen[key] = true
		counts[s.Reason]++
	}
	if counts[SpellingVariant] != 1 || counts[InitialsVariant] != 2 {
		t.Errorf("reason distribution = %v (suggestions %+v)", counts, got)
	}
	// Order: spelling variants first.
	if got[0].Reason != SpellingVariant {
		t.Errorf("first suggestion reason = %v", got[0].Reason)
	}
}

func TestInitialsCompatible(t *testing.T) {
	tests := []struct {
		a, b string
		want bool
	}{
		{"Jeff L.", "J. L.", true},
		{"Jeff L.", "Jeff", true},
		{"Jeff L.", "Jeff L.", false}, // identical: not a variant
		{"Jeff L.", "Greg L.", false},
		{"", "J.", false},
		{"J. R.", "James Robert", true},
		{"Mary Ann", "M. A.", true},
		{"Mary Ann", "M. B.", false},
	}
	for _, tt := range tests {
		if got := initialsCompatible(tt.a, tt.b); got != tt.want {
			t.Errorf("initialsCompatible(%q,%q) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestReasonString(t *testing.T) {
	if SpellingVariant.String() != "spelling-variant" ||
		StudentVariant.String() != "student-variant" ||
		InitialsVariant.String() != "initials-variant" ||
		Reason(99).String() != "unknown" {
		t.Error("Reason.String mismatch")
	}
}
