package gen

import (
	"testing"

	"repro/internal/model"
	"repro/internal/names"
)

func TestDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, Works: 200}
	a := Generate(cfg)
	b := Generate(cfg)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatalf("work %d differs:\n%v\n%v", i, a[i], b[i])
		}
	}
	c := Generate(Config{Seed: 8, Works: 200})
	same := true
	for i := range a {
		if !a[i].Equal(c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical corpora")
	}
}

func TestAllWorksValid(t *testing.T) {
	for _, cfg := range []Config{
		{Seed: 1, Works: 500},
		{Seed: 2, Works: 500, ZipfS: 1.2},
		{Seed: 3, Works: 300, Plain: true},
		{Seed: 4, Works: 50, Volumes: 1},
	} {
		works := Generate(cfg)
		if len(works) != cfg.Works {
			t.Errorf("cfg %+v: generated %d works", cfg, len(works))
		}
		ids := map[model.WorkID]bool{}
		for _, w := range works {
			if err := w.Validate(); err != nil {
				t.Fatalf("cfg %+v: invalid work %v: %v", cfg, w, err)
			}
			if ids[w.ID] {
				t.Fatalf("duplicate ID %d", w.ID)
			}
			ids[w.ID] = true
		}
	}
}

func TestCitationsAdvance(t *testing.T) {
	works := Generate(Config{Seed: 5, Works: 300, Volumes: 5})
	for i := 1; i < len(works); i++ {
		if works[i].Citation.Compare(works[i-1].Citation) <= 0 {
			t.Fatalf("citations not strictly increasing at %d: %v then %v",
				i, works[i-1].Citation, works[i].Citation)
		}
	}
	// Volume range and year alignment.
	for _, w := range works {
		if w.Citation.Volume < 69 || w.Citation.Volume > 73 {
			t.Fatalf("volume %d out of range", w.Citation.Volume)
		}
		if w.Citation.Year != 1966+(w.Citation.Volume-69) {
			t.Fatalf("year %d misaligned with volume %d", w.Citation.Year, w.Citation.Volume)
		}
	}
}

func TestPlainSuppressesMessiness(t *testing.T) {
	works := Generate(Config{Seed: 6, Works: 400, Plain: true})
	for _, w := range works {
		for _, a := range w.Authors {
			if a.Particle != "" || a.Suffix != "" {
				t.Fatalf("plain corpus has particle/suffix: %+v", a)
			}
			if names.HasDiacritics(a.Family) || names.HasDiacritics(a.Given) {
				t.Fatalf("plain corpus has diacritics: %+v", a)
			}
		}
	}
}

func TestMessyCorpusHasVariety(t *testing.T) {
	works := Generate(Config{Seed: 7, Works: 2000})
	var diacritics, particles, suffixes, students, multi int
	for _, w := range works {
		if len(w.Authors) > 1 {
			multi++
		}
		for _, a := range w.Authors {
			if names.HasDiacritics(a.Family) {
				diacritics++
			}
			if a.Particle != "" {
				particles++
			}
			if a.Suffix != "" {
				suffixes++
			}
			if a.Student {
				students++
			}
		}
	}
	for name, n := range map[string]int{
		"diacritics": diacritics, "particles": particles,
		"suffixes": suffixes, "students": students, "multi-author": multi,
	} {
		if n == 0 {
			t.Errorf("2000-work corpus has no %s", name)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	count := func(zipfS float64) (maxShare float64) {
		works := Generate(Config{Seed: 9, Works: 3000, Authors: 300, ZipfS: zipfS})
		byAuthor := map[string]int{}
		for _, w := range works {
			for _, a := range w.Authors {
				byAuthor[a.Display()]++
			}
		}
		maxN := 0
		total := 0
		for _, n := range byAuthor {
			total += n
			if n > maxN {
				maxN = n
			}
		}
		return float64(maxN) / float64(total)
	}
	uniform := count(0)
	skewed := count(1.4)
	if skewed <= uniform*2 {
		t.Errorf("Zipf skew not evident: uniform max share %.4f, skewed %.4f", uniform, skewed)
	}
}

func TestAuthorPoolDistinct(t *testing.T) {
	pool := AuthorPool(Config{Seed: 10, Authors: 500, Works: 1})
	seen := map[string]bool{}
	for _, a := range pool {
		d := a.Display()
		if seen[d] {
			t.Fatalf("duplicate author %q", d)
		}
		seen[d] = true
		if err := a.Validate(); err != nil {
			t.Fatalf("invalid author %+v: %v", a, err)
		}
	}
	if len(pool) != 500 {
		t.Errorf("pool size %d", len(pool))
	}
}

func TestSubjectsGenerated(t *testing.T) {
	works := Generate(Config{Seed: 12, Works: 500})
	multi := 0
	for _, w := range works {
		if len(w.Subjects) == 0 {
			t.Fatalf("work %d has no subjects", w.ID)
		}
		if len(w.Subjects) > 1 {
			multi++
		}
		for _, s := range w.Subjects {
			if s == "" {
				t.Fatalf("work %d has empty subject", w.ID)
			}
		}
	}
	if multi == 0 {
		t.Error("no multi-subject works in 500")
	}
}

func TestStudentNoteAuthorsMarked(t *testing.T) {
	works := Generate(Config{Seed: 11, Works: 1000})
	for _, w := range works {
		if w.Kind == model.KindStudentNote && !w.Authors[0].Student {
			t.Fatalf("student note without student byline: %v", w)
		}
	}
}
