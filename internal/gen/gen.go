// Package gen produces deterministic synthetic bibliographic corpora for
// examples, tests and experiments. It substitutes for the proceedings
// corpus the original front-matter artifact was built from (which is not
// available offline) while exercising the same code paths: realistic
// name shapes (particles, suffixes, diacritics, student markers), Zipf
// author productivity, multi-author works and multi-volume runs.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Config controls corpus generation. Zero values select the documented
// defaults, so Config{Works: 1000} is a complete specification.
type Config struct {
	// Seed fixes the pseudo-random stream; equal configs generate equal
	// corpora. Zero means seed 1.
	Seed int64
	// Works is the number of works to generate (default 1000).
	Works int
	// Authors is the size of the author pool (default Works/3, min 10).
	Authors int
	// ZipfS skews papers-per-author; 0 disables skew (uniform). Values
	// must exceed 1 when set; 1.1 is a realistic default for "skewed".
	ZipfS float64
	// FirstVolume and Volumes define the volume run (defaults 69 and 27,
	// matching a long-running publication). FirstYear is the year of the
	// first volume (default 1966); each volume advances one year.
	FirstVolume int
	Volumes     int
	FirstYear   int
	// MultiAuthorProb is the chance a work has 2–3 authors (default 0.15).
	MultiAuthorProb float64
	// StudentProb is the chance an author in the pool is a student
	// (default 0.25).
	StudentProb float64
	// Plain suppresses diacritics, particles and suffixes in generated
	// names, for experiments that compare clean vs messy corpora.
	Plain bool
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Works <= 0 {
		c.Works = 1000
	}
	if c.Authors <= 0 {
		c.Authors = max(10, c.Works/3)
	}
	if c.FirstVolume <= 0 {
		c.FirstVolume = 69
	}
	if c.Volumes <= 0 {
		c.Volumes = 27
	}
	if c.FirstYear <= 0 {
		c.FirstYear = 1966
	}
	if c.MultiAuthorProb == 0 {
		c.MultiAuthorProb = 0.15
	}
	if c.StudentProb == 0 {
		c.StudentProb = 0.25
	}
	return c
}

var plainFamilies = []string{
	"Abbott", "Abrams", "Adler", "Allen", "Anderson", "Archer", "Bailey",
	"Barnes", "Barrett", "Bastress", "Bates", "Beeson", "Bell", "Bowman",
	"Brown", "Bryant", "Burke", "Campbell", "Cardi", "Carter", "Chapman",
	"Clark", "Cline", "Cole", "Collins", "Cooper", "Cox", "Crandall",
	"Curtis", "Davis", "Deem", "Dolan", "Duffy", "Eaton", "Elkins",
	"Ellis", "Emch", "Epstein", "Evans", "Farrell", "Fisher", "Flannery",
	"Fletcher", "Ford", "Foster", "Fox", "Frame", "Franks", "Friedman",
	"Gage", "Galloway", "Gardner", "Gibson", "Goodwin", "Graham", "Gray",
	"Greene", "Griffith", "Hall", "Hamilton", "Hardesty", "Harris",
	"Hedges", "Henshaw", "Hill", "Hogg", "Holland", "Hooks", "Horton",
	"Houle", "Hunt", "Hurney", "Jackson", "Jarrell", "Johnson", "Jones",
	"Kaplan", "Keeley", "Keller", "Kelly", "Kennedy", "Kincaid", "King",
	"Klise", "Koch", "Kurland", "Lane", "Lathrop", "Lawrence", "Layne",
	"Lee", "Levine", "Lewin", "Lewis", "Lilly", "Long", "Lopez",
	"Lorensen", "Lucas", "Lyons", "Madden", "Marks", "Martin", "Mason",
	"Matthews", "Maxwell", "Meadows", "Melton", "Miller", "Mills",
	"Minow", "Moore", "Moran", "Morgan", "Morris", "Murphy", "Myers",
	"Nagel", "Neely", "Newman", "Nichol", "Nix", "Norton", "Olson",
	"Palmer", "Parker", "Parness", "Patterson", "Paul", "Perry",
	"Peters", "Phillips", "Pierce", "Pope", "Porter", "Price", "Prunty",
	"Query", "Quick", "Ramsey", "Randolph", "Reed", "Reynolds", "Rhodes",
	"Rice", "Riley", "Roberts", "Robinson", "Rogers", "Rollins", "Rose",
	"Ross", "Rowe", "Russell", "Ryan", "Savage", "Schauer", "Scott",
	"Sharpe", "Shaw", "Short", "Simmons", "Simon", "Sims", "Slack",
	"Smith", "Snyder", "Solomon", "Spieler", "Squillace", "Stanley",
	"Steele", "Stephens", "Stewart", "Stone", "Strong", "Sullivan",
	"Summers", "Sutton", "Swisher", "Tanner", "Taylor", "Thomas",
	"Thompson", "Tinney", "Trumka", "Tucker", "Turner", "Tushnet",
	"Udall", "Vickers", "Volk", "Wagner", "Walker", "Wallace", "Ward",
	"Warren", "Watson", "Webb", "Weller", "Wells", "West", "Whisker",
	"White", "Wigal", "Wilkinson", "Williams", "Wilson", "Winter",
	"Wolfe", "Wood", "Woodrum", "Wright", "Yost", "Young", "Yun",
	"Zimmer",
}

var accentedFamilies = []string{
	"Álvarez", "Björk", "Çelik", "Dvořák", "Fernández", "García",
	"Gödel", "Jiménez", "Kovač", "Löwe", "Müller", "Nuñez", "Ødegaard",
	"Pérez", "Ruiz-Cañas", "Šimek", "Søndergaard", "Żukowski",
}

var particleFamilies = []struct{ particle, family string }{
	{"van", "Dyke"}, {"van der", "Berg"}, {"de", "Groot"}, {"de la", "Cruz"},
	{"von", "Neumann"}, {"di", "Stefano"}, {"ter", "Haar"}, {"la", "Fontaine"},
}

var givenNames = []string{
	"Aaron", "Alice", "Amy", "Andrew", "Ann", "Anthony", "Barbara",
	"Benjamin", "Brian", "Bruce", "Carl", "Carol", "Charles",
	"Christopher", "Clara", "Daniel", "David", "Deborah", "Dennis",
	"Diana", "Donald", "Dorothy", "Edward", "Elaine", "Elizabeth",
	"Emily", "Eric", "Frank", "Gary", "George", "Gerald", "Grace",
	"Harold", "Helen", "Henry", "Howard", "Irene", "James", "Jane",
	"Janet", "Jean", "Jeffrey", "Jennifer", "John", "Joseph", "Joshua",
	"Joyce", "Judith", "Karen", "Katherine", "Keith", "Kenneth",
	"Kevin", "Larry", "Laura", "Lawrence", "Linda", "Lisa", "Louis",
	"Margaret", "Mark", "Martha", "Martin", "Mary", "Michael",
	"Nancy", "Nicholas", "Pamela", "Patricia", "Patrick", "Paul",
	"Peter", "Philip", "Rachel", "Ralph", "Raymond", "Rebecca",
	"Richard", "Robert", "Roger", "Ronald", "Rose", "Russell", "Ruth",
	"Samuel", "Sandra", "Sarah", "Scott", "Stephen", "Steven", "Susan",
	"Thomas", "Timothy", "Virginia", "Walter", "William",
}

var suffixPool = []string{"Jr.", "Sr.", "II", "III", "IV"}

// Title vocabulary, assembled as "<lead> <topic> <tail>" patterns that
// read like the section headings of a law-review or systems index.
var (
	titleLeads = []string{
		"An Analysis of", "The Future of", "Reforming", "A Survey of",
		"Constitutional Limits on", "The Economics of", "Regulating",
		"A Critique of", "Judicial Review of", "The Law of",
		"Essay on", "Perspectives on", "Rethinking", "A Proposal for",
		"Enforcement of", "Liability for", "The Ethics of",
		"Developments in", "A Practitioner's Guide to", "Toward",
	}
	titleTopics = []string{
		"Surface Mining Reclamation", "Coalbed Methane Ownership",
		"Workers' Compensation", "the Clean Water Act",
		"Mine Safety Inspection", "Black Lung Benefits",
		"Comparative Negligence", "Products Liability",
		"the Uniform Commercial Code", "Equitable Distribution",
		"Ad Valorem Taxation", "Labor Arbitration",
		"Bankruptcy Exemptions", "Insider Trading",
		"Double Jeopardy", "Habeas Corpus Relief",
		"Zoning Ordinances", "Public School Financing",
		"Acid Rain Control", "Grievance Mediation",
		"the Right to Counsel", "Eminent Domain",
		"Severance Taxation", "Jury Selection",
		"Medical Malpractice", "Intestate Succession",
		"Pension Fund Withdrawal", "Secondary Boycotts",
		"Water Resources Planning", "Strip Mining Prohibition",
	}
	titleTails = []string{
		"in West Virginia", "Under Federal Law", "After the 1977 Act",
		"in the Coal Fields", "and Its Discontents",
		"in Appalachian Courts", "Revisited", "in Transition",
		"for the Coming Decade", "and the Public Trust", "",
		"in State and Federal Courts", "Under the Commerce Clause",
		"and Legislative Reform", "in Comparative Perspective", "",
	}
)

var kindWeights = []struct {
	kind   model.Kind
	weight int
}{
	{model.KindArticle, 55},
	{model.KindStudentNote, 25},
	{model.KindEssay, 8},
	{model.KindBookReview, 5},
	{model.KindComment, 4},
	{model.KindCaseNote, 2},
	{model.KindTribute, 1},
}

// AuthorPool generates cfg.Authors deterministic distinct authors.
func AuthorPool(cfg Config) []model.Author {
	cfg = cfg.withDefaults()
	r := rand.New(rand.NewSource(cfg.Seed))
	seen := make(map[string]bool, cfg.Authors)
	pool := make([]model.Author, 0, cfg.Authors)
	for len(pool) < cfg.Authors {
		a := randomAuthor(r, cfg)
		key := a.Display()
		if seen[key] {
			// Disambiguate the way indexes do: add a middle initial.
			a.Given = fmt.Sprintf("%s %c.", a.Given, 'A'+r.Intn(26))
			key = a.Display()
			if seen[key] {
				continue
			}
		}
		seen[key] = true
		pool = append(pool, a)
	}
	return pool
}

func randomAuthor(r *rand.Rand, cfg Config) model.Author {
	var a model.Author
	switch pick := r.Float64(); {
	case !cfg.Plain && pick < 0.08:
		a.Family = accentedFamilies[r.Intn(len(accentedFamilies))]
	case !cfg.Plain && pick < 0.14:
		pf := particleFamilies[r.Intn(len(particleFamilies))]
		a.Particle, a.Family = pf.particle, pf.family
	default:
		a.Family = plainFamilies[r.Intn(len(plainFamilies))]
	}
	a.Given = fmt.Sprintf("%s %c.", givenNames[r.Intn(len(givenNames))], 'A'+r.Intn(26))
	if !cfg.Plain && r.Float64() < 0.06 {
		a.Suffix = suffixPool[r.Intn(len(suffixPool))]
	}
	if r.Float64() < cfg.StudentProb {
		a.Student = true
	}
	return a
}

// Generate produces the corpus: cfg.Works works with IDs 1..N, sorted by
// citation (volume then page), exactly as a publication run accumulates.
func Generate(cfg Config) []*model.Work {
	cfg = cfg.withDefaults()
	pool := AuthorPool(cfg)
	r := rand.New(rand.NewSource(cfg.Seed + 1))

	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(r, cfg.ZipfS, 1, uint64(len(pool)-1))
	}
	pickAuthor := func() model.Author {
		if zipf != nil {
			return pool[int(zipf.Uint64())]
		}
		return pool[r.Intn(len(pool))]
	}

	// Works spread across volumes in order; pages advance within each
	// volume with realistic article-length gaps.
	perVolume := (cfg.Works + cfg.Volumes - 1) / cfg.Volumes
	works := make([]*model.Work, 0, cfg.Works)
	id := model.WorkID(1)
	for v := 0; v < cfg.Volumes && len(works) < cfg.Works; v++ {
		page := 1
		for i := 0; i < perVolume && len(works) < cfg.Works; i++ {
			title, topic := randomTitle(r)
			w := &model.Work{
				ID:    id,
				Title: title,
				Kind:  randomKind(r),
				Citation: model.Citation{
					Volume: cfg.FirstVolume + v,
					Page:   page,
					Year:   cfg.FirstYear + v,
				},
				Subjects: []string{topic},
			}
			if r.Float64() < 0.2 {
				if extra := titleTopics[r.Intn(len(titleTopics))]; extra != topic {
					w.Subjects = append(w.Subjects, extra)
				}
			}
			w.Authors = append(w.Authors, pickAuthor())
			if r.Float64() < cfg.MultiAuthorProb {
				for extra := 1 + r.Intn(2); extra > 0; extra-- {
					a := pickAuthor()
					if !containsAuthor(w.Authors, a) {
						w.Authors = append(w.Authors, a)
					}
				}
			}
			// Student notes carry student bylines; align the kind with
			// the first author when they disagree.
			if w.Kind == model.KindStudentNote && !w.Authors[0].Student {
				w.Authors[0].Student = true
			}
			works = append(works, w)
			page += 8 + r.Intn(60)
			id++
		}
	}
	return works
}

func randomTitle(r *rand.Rand) (title, topic string) {
	lead := titleLeads[r.Intn(len(titleLeads))]
	topic = titleTopics[r.Intn(len(titleTopics))]
	tail := titleTails[r.Intn(len(titleTails))]
	if tail == "" {
		return fmt.Sprintf("%s %s", lead, topic), topic
	}
	return fmt.Sprintf("%s %s %s", lead, topic, tail), topic
}

func randomKind(r *rand.Rand) model.Kind {
	total := 0
	for _, kw := range kindWeights {
		total += kw.weight
	}
	n := r.Intn(total)
	for _, kw := range kindWeights {
		if n < kw.weight {
			return kw.kind
		}
		n -= kw.weight
	}
	return model.KindArticle
}

func containsAuthor(as []model.Author, a model.Author) bool {
	for _, x := range as {
		if x == a {
			return true
		}
	}
	return false
}
