// Package trace is a stdlib-only, context-propagated span subsystem
// in the spirit of golang.org/x/net/trace. A root span is started per
// HTTP request (or CLI command) and carried through the layers via
// context.Context; each layer attaches child spans (lock wait vs hold,
// index scan, WAL encode vs fsync, render sections) so a single slow
// request explains itself.
//
// The design is always-on-cheap: when no span rides the context every
// operation is a nil-receiver no-op and StartSpan performs nothing but
// one ctx.Value lookup — zero allocations. Completed traces land in
// per-family lock-free rings (N most recent plus N slowest) served by
// GET /debug/traces, and traces over a configurable slowlog threshold
// are emitted as structured slog lines with their full span tree.
package trace

import (
	"context"
	"fmt"
	"log/slog"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one key/value annotation on a span (result counts, byte
// totals, query strings). Values are strings so the hot path never
// needs reflection.
type Attr struct {
	Key string `json:"key"`
	Val string `json:"val"`
}

// Span is one timed operation inside a trace. All methods are safe on
// a nil receiver so call sites never branch on whether tracing is
// enabled. Children may be attached concurrently (parallel index
// builds); the mutex guards only the slices, never the timing fields.
type Span struct {
	name  string
	start time.Time
	dur   atomic.Int64 // ns, set exactly once by End
	ends  atomic.Int32 // End effective only on the 1st call

	mu       sync.Mutex
	children []*Span
	attrs    []Attr

	// forced, on a root span, makes Finish treat the trace as slow
	// regardless of duration: retained in the rings and emitted on the
	// slowlog. The panic-recovery middleware sets it so every panicking
	// request leaves its span tree behind.
	forced atomic.Bool
}

// ForceSlowTrace marks the span's trace for unconditional slow-trace
// capture at Finish. Only meaningful on a root span; safe on nil.
func (s *Span) ForceSlowTrace() {
	if s == nil {
		return
	}
	s.forced.Store(true)
}

// StartChild creates and attaches a child span. Returns nil when the
// receiver is nil, so disabled-path callers pay nothing.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End records the span duration. Only the first call wins; doubled
// Ends (a defer racing an explicit call) are counted so tests can
// detect them via Check on the owning trace.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.ends.Add(1) != 1 {
		return
	}
	s.dur.Store(int64(time.Since(s.start)))
}

// Duration reports the recorded duration, 0 while the span is open.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.dur.Load())
}

// SetAttr annotates the span.
func (s *Span) SetAttr(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Val: val})
	s.mu.Unlock()
}

// SetInt annotates the span with an integer value (result counts,
// bytes written).
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, strconv.FormatInt(v, 10))
}

type ctxKey struct{}

// FromContext returns the span carried by ctx, nil when tracing is
// not enabled for this call chain.
func FromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// ContextWith returns a context carrying s. A nil span returns ctx
// unchanged.
func ContextWith(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// StartSpan starts a child of the span carried by ctx and returns a
// context carrying the child. When ctx carries no span this is the
// disabled path: it returns (ctx, nil) without allocating.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent, _ := ctx.Value(ctxKey{}).(*Span)
	if parent == nil {
		return ctx, nil
	}
	c := parent.StartChild(name)
	return context.WithValue(ctx, ctxKey{}, c), c
}

// Trace owns a root span plus the identity that correlates it with
// the access log (the X-Request-ID) and the op family it is filed
// under once finished.
type Trace struct {
	ID     string
	Family string
	Start  time.Time

	root   *Span
	tracer *Tracer
}

// Root exposes the root span (for tests and for attaching attrs at
// the request layer).
func (tr *Trace) Root() *Span {
	if tr == nil {
		return nil
	}
	return tr.root
}

// Duration is the root span duration; 0 until Finish.
func (tr *Trace) Duration() time.Duration { return tr.Root().Duration() }

// Config tunes a Tracer. The zero value is usable: no slowlog
// emission, keep every trace, rings of DefaultRingSize.
type Config struct {
	// Slowlog is the threshold at or above which a finished trace is
	// always retained and logged with its span tree. 0 disables the
	// slowlog (rings still fill).
	Slowlog time.Duration
	// SampleEvery admits 1 in N sub-threshold traces to the recent
	// ring (slow traces are always admitted). <=1 keeps every trace.
	SampleEvery int
	// RingSize is the per-family capacity of each of the two rings
	// (recent, slowest). <=0 means DefaultRingSize.
	RingSize int
	// Logger receives slowlog lines. nil disables emission.
	Logger *slog.Logger
}

// DefaultRingSize is the per-family ring capacity when Config.RingSize
// is unset.
const DefaultRingSize = 16

// Tracer files finished traces into per-family rings. A nil *Tracer
// is valid and inert, so callers thread it unconditionally.
type Tracer struct {
	cfg      Config
	families sync.Map // string -> *family
}

// NewTracer builds a tracer from cfg.
func NewTracer(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = DefaultRingSize
	}
	if cfg.SampleEvery < 1 {
		cfg.SampleEvery = 1
	}
	return &Tracer{cfg: cfg}
}

// Slowlog reports the configured slow-trace threshold.
func (t *Tracer) Slowlog() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.Slowlog
}

// StartRoot opens a new trace whose root span is carried by the
// returned context. id is the correlation id (request id); it may be
// empty. On a nil tracer this is the disabled path: (ctx, nil).
func (t *Tracer) StartRoot(ctx context.Context, id, name string) (context.Context, *Trace) {
	if t == nil {
		return ctx, nil
	}
	root := &Span{name: name, start: time.Now()}
	tr := &Trace{ID: id, Start: root.start, root: root, tracer: t}
	return context.WithValue(ctx, ctxKey{}, root), tr
}

// Finish ends the root span, files the trace under family, and emits
// a slowlog line when the trace crossed the threshold. Safe on nil.
func (tr *Trace) Finish(family string) {
	if tr == nil {
		return
	}
	tr.root.End()
	tr.Family = family
	t := tr.tracer
	dur := tr.root.Duration()
	slow := tr.root.forced.Load() || (t.cfg.Slowlog > 0 && dur >= t.cfg.Slowlog)
	f := t.family(family)
	f.offerSlow(tr)
	if slow || f.sample(t.cfg.SampleEvery) {
		f.keepRecent(tr)
	}
	if slow && t.cfg.Logger != nil {
		t.cfg.Logger.Warn("slow trace",
			"trace_id", tr.ID,
			"family", family,
			"dur", dur,
			"threshold", t.cfg.Slowlog,
			"spans", tr.CompactTree(),
		)
	}
}

// family is the pair of lock-free rings one op family retains.
//
// recent is a classic sequence ring: slot seq%size holds the
// seq-th admitted trace. slowest is kept by find-min + CAS-replace
// with bounded retries — contention only ever drops one candidate
// that raced with a slower one, never corrupts a slot.
type family struct {
	name    string
	seq     atomic.Uint64 // admissions to recent
	ticks   atomic.Uint64 // all finishes, drives sampling
	recent  []atomic.Pointer[Trace]
	slowest []atomic.Pointer[Trace]
}

func (t *Tracer) family(name string) *family {
	if v, ok := t.families.Load(name); ok {
		return v.(*family)
	}
	f := &family{
		name:    name,
		recent:  make([]atomic.Pointer[Trace], t.cfg.RingSize),
		slowest: make([]atomic.Pointer[Trace], t.cfg.RingSize),
	}
	v, _ := t.families.LoadOrStore(name, f)
	return v.(*family)
}

func (f *family) sample(every int) bool {
	n := f.ticks.Add(1)
	return every <= 1 || n%uint64(every) == 1
}

func (f *family) keepRecent(tr *Trace) {
	slot := (f.seq.Add(1) - 1) % uint64(len(f.recent))
	f.recent[slot].Store(tr)
}

// offerSlow inserts tr into the slowest ring iff it is slower than
// the current minimum. Bounded retries keep the path lock-free; a
// lost race means a concurrently-inserted trace was slower, which is
// an acceptable outcome for a diagnostics ring.
func (f *family) offerSlow(tr *Trace) {
	dur := tr.Duration()
	for attempt := 0; attempt < 4; attempt++ {
		minIdx, minTr := -1, (*Trace)(nil)
		var minDur time.Duration
		for i := range f.slowest {
			cur := f.slowest[i].Load()
			if cur == nil {
				minIdx, minTr = i, nil
				minDur = 0
				break
			}
			if minIdx == -1 || cur.Duration() < minDur {
				minIdx, minTr, minDur = i, cur, cur.Duration()
			}
		}
		if minTr != nil && dur <= minDur {
			return // not slower than anything retained
		}
		if f.slowest[minIdx].CompareAndSwap(minTr, tr) {
			return
		}
	}
}

// SpanData is the JSON-friendly snapshot of one span. Offsets are
// relative to the trace root so the tree is self-describing.
type SpanData struct {
	Name     string     `json:"name"`
	OffsetNS int64      `json:"offset_ns"`
	DurNS    int64      `json:"dur_ns"`
	Attrs    []Attr     `json:"attrs,omitempty"`
	Children []SpanData `json:"children,omitempty"`
}

// TraceData is the JSON-friendly snapshot of one finished trace.
type TraceData struct {
	ID     string    `json:"id,omitempty"`
	Family string    `json:"family"`
	Start  time.Time `json:"start"`
	DurNS  int64     `json:"dur_ns"`
	Root   SpanData  `json:"root"`
}

// FamilySnapshot is everything /debug/traces serves for one family.
type FamilySnapshot struct {
	Family  string      `json:"family"`
	Recent  []TraceData `json:"recent"`
	Slowest []TraceData `json:"slowest"`
}

// Data snapshots the trace into exportable form.
func (tr *Trace) Data() TraceData {
	return TraceData{
		ID:     tr.ID,
		Family: tr.Family,
		Start:  tr.Start,
		DurNS:  int64(tr.Duration()),
		Root:   tr.root.data(tr.Start),
	}
}

func (s *Span) data(base time.Time) SpanData {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	d := SpanData{
		Name:     s.name,
		OffsetNS: int64(s.start.Sub(base)),
		DurNS:    s.dur.Load(),
		Attrs:    attrs,
	}
	for _, c := range children {
		d.Children = append(d.Children, c.data(base))
	}
	return d
}

// Snapshot returns every family's retained traces, families sorted by
// name, recent traces newest-first, slowest slowest-first.
func (t *Tracer) Snapshot() []FamilySnapshot {
	if t == nil {
		return nil
	}
	var out []FamilySnapshot
	t.families.Range(func(k, v any) bool {
		f := v.(*family)
		fs := FamilySnapshot{Family: k.(string)}
		seq := f.seq.Load()
		n := uint64(len(f.recent))
		for i := uint64(0); i < n && i < seq; i++ {
			// newest-first: walk backwards from the last admitted slot.
			tr := f.recent[(seq-1-i)%n].Load()
			if tr != nil {
				fs.Recent = append(fs.Recent, tr.Data())
			}
		}
		for i := range f.slowest {
			if tr := f.slowest[i].Load(); tr != nil {
				fs.Slowest = append(fs.Slowest, tr.Data())
			}
		}
		sort.Slice(fs.Slowest, func(i, j int) bool { return fs.Slowest[i].DurNS > fs.Slowest[j].DurNS })
		out = append(out, fs)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

// CompactTree renders the span tree as a single compact line for the
// slowlog: name(dur key=val){child(dur) child(dur)}.
func (tr *Trace) CompactTree() string {
	if tr == nil {
		return ""
	}
	var b strings.Builder
	tr.root.compact(&b)
	return b.String()
}

func (s *Span) compact(b *strings.Builder) {
	s.mu.Lock()
	attrs := append([]Attr(nil), s.attrs...)
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	b.WriteString(s.name)
	b.WriteByte('(')
	b.WriteString(s.Duration().Round(time.Microsecond).String())
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	b.WriteByte(')')
	if len(children) > 0 {
		b.WriteByte('{')
		for i, c := range children {
			if i > 0 {
				b.WriteByte(' ')
			}
			c.compact(b)
		}
		b.WriteByte('}')
	}
}

// WriteText renders d as an indented tree, durations in human units.
func (d *SpanData) WriteText(b *strings.Builder, depth int) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	fmt.Fprintf(b, "%-9s %-9s %s",
		time.Duration(d.OffsetNS).Round(time.Microsecond),
		time.Duration(d.DurNS).Round(time.Microsecond),
		d.Name)
	for _, a := range d.Attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		b.WriteString(a.Val)
	}
	b.WriteByte('\n')
	for i := range d.Children {
		d.Children[i].WriteText(b, depth+1)
	}
}

// Check validates that the finished trace is well-formed: every span
// ended exactly once, and every child's window nests inside its
// parent's. Used by the -race propagation tests.
func (tr *Trace) Check() error {
	if tr == nil {
		return nil
	}
	return tr.root.check(nil)
}

func (s *Span) check(parent *Span) error {
	switch n := s.ends.Load(); {
	case n == 0:
		return fmt.Errorf("span %q never ended (orphaned)", s.name)
	case n > 1:
		return fmt.Errorf("span %q ended %d times", s.name, n)
	}
	if parent != nil {
		if s.start.Before(parent.start) {
			return fmt.Errorf("span %q starts before parent %q", s.name, parent.name)
		}
		pEnd := parent.start.Add(parent.Duration())
		if end := s.start.Add(s.Duration()); end.After(pEnd) {
			return fmt.Errorf("span %q (ends %v) outlives parent %q (ends %v)",
				s.name, end, parent.name, pEnd)
		}
	}
	s.mu.Lock()
	children := append([]*Span(nil), s.children...)
	s.mu.Unlock()
	for _, c := range children {
		if err := c.check(s); err != nil {
			return err
		}
	}
	return nil
}
