package trace

import (
	"context"
	"testing"
)

// BenchmarkDisabledPath is the cost every untraced operation pays now
// that the facade threads contexts unconditionally: one ctx.Value miss
// in StartSpan plus nil-receiver no-ops. This must stay at zero
// allocations and single-digit nanoseconds — it runs on every query.
func BenchmarkDisabledPath(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := StartSpan(ctx, "bench.op")
		sp.SetInt("hits", 42)
		child := sp.StartChild("bench.child")
		child.End()
		sp.End()
	}
}

// BenchmarkEnabledSpan prices the traced path: span allocation, child
// attachment, attrs, End. It bounds what a sampled request costs.
func BenchmarkEnabledSpan(b *testing.B) {
	tracer := NewTracer(Config{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ctx, tr := tracer.StartRoot(context.Background(), "bench", "bench root")
		_, sp := StartSpan(ctx, "bench.op")
		sp.SetInt("hits", 42)
		child := sp.StartChild("bench.child")
		child.End()
		sp.End()
		tr.Finish("bench")
	}
}
