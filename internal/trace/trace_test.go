package trace

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestDisabledPathIsInert(t *testing.T) {
	ctx := context.Background()
	ctx2, sp := StartSpan(ctx, "anything")
	if sp != nil {
		t.Fatalf("StartSpan on bare context returned a span")
	}
	if ctx2 != ctx {
		t.Fatalf("StartSpan on bare context returned a new context")
	}
	// All nil-receiver ops must be safe no-ops.
	sp.End()
	sp.SetAttr("k", "v")
	sp.SetInt("n", 1)
	if c := sp.StartChild("child"); c != nil {
		t.Fatalf("nil span produced a child")
	}
	if d := sp.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	var tr *Trace
	tr.Finish("fam")
	if err := tr.Check(); err != nil {
		t.Fatalf("nil trace Check: %v", err)
	}
	var tc *Tracer
	if ctx3, root := tc.StartRoot(ctx, "id", "op"); root != nil || ctx3 != ctx {
		t.Fatalf("nil tracer StartRoot not inert")
	}
	if s := tc.Snapshot(); s != nil {
		t.Fatalf("nil tracer snapshot = %v", s)
	}
}

func TestDisabledPathZeroAllocs(t *testing.T) {
	ctx := context.Background()
	if n := testing.AllocsPerRun(200, func() {
		c, sp := StartSpan(ctx, "op")
		sp.SetInt("hits", 42)
		sp.End()
		_ = c
	}); n != 0 {
		t.Fatalf("disabled StartSpan allocates %v per run, want 0", n)
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tc := NewTracer(Config{RingSize: 4})
	ctx, tr := tc.StartRoot(context.Background(), "req-1", "GET /works")
	if tr == nil {
		t.Fatal("no trace")
	}
	ctx, facade := StartSpan(ctx, "facade.search")
	_, scan := StartSpan(ctx, "engine.title_scan")
	scan.SetInt("hits", 7)
	scan.End()
	facade.End()
	tr.Finish("GET /works")
	if err := tr.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}

	snap := tc.Snapshot()
	if len(snap) != 1 || snap[0].Family != "GET /works" {
		t.Fatalf("snapshot = %+v", snap)
	}
	fs := snap[0]
	if len(fs.Recent) != 1 || len(fs.Slowest) != 1 {
		t.Fatalf("rings: recent=%d slowest=%d", len(fs.Recent), len(fs.Slowest))
	}
	td := fs.Recent[0]
	if td.ID != "req-1" || td.Root.Name != "GET /works" {
		t.Fatalf("trace data = %+v", td)
	}
	if len(td.Root.Children) != 1 || td.Root.Children[0].Name != "facade.search" {
		t.Fatalf("root children = %+v", td.Root.Children)
	}
	inner := td.Root.Children[0].Children
	if len(inner) != 1 || inner[0].Name != "engine.title_scan" {
		t.Fatalf("facade children = %+v", inner)
	}
	if len(inner[0].Attrs) != 1 || inner[0].Attrs[0] != (Attr{"hits", "7"}) {
		t.Fatalf("scan attrs = %+v", inner[0].Attrs)
	}
	if _, err := json.Marshal(snap); err != nil {
		t.Fatalf("snapshot not marshalable: %v", err)
	}
}

func TestRecentRingEvictsOldest(t *testing.T) {
	tc := NewTracer(Config{RingSize: 2})
	for i := 0; i < 5; i++ {
		_, tr := tc.StartRoot(context.Background(), "", "op")
		tr.Finish("fam")
	}
	snap := tc.Snapshot()
	if len(snap) != 1 || len(snap[0].Recent) != 2 {
		t.Fatalf("recent = %+v", snap)
	}
}

func TestSlowestRingKeepsSlowest(t *testing.T) {
	tc := NewTracer(Config{RingSize: 2})
	mk := func(d time.Duration) {
		_, tr := tc.StartRoot(context.Background(), "", "op")
		tr.root.start = tr.root.start.Add(-d) // backdate so Finish records ~d
		tr.Finish("fam")
	}
	mk(time.Millisecond)
	mk(50 * time.Millisecond)
	mk(200 * time.Millisecond)
	mk(2 * time.Millisecond) // faster than everything retained: dropped
	snap := tc.Snapshot()
	sl := snap[0].Slowest
	if len(sl) != 2 {
		t.Fatalf("slowest = %+v", sl)
	}
	if sl[0].DurNS < sl[1].DurNS {
		t.Fatalf("slowest not sorted desc: %v, %v", sl[0].DurNS, sl[1].DurNS)
	}
	if sl[1].DurNS < int64(40*time.Millisecond) {
		t.Fatalf("fast trace displaced a slow one: %v", sl[1].DurNS)
	}
}

func TestSampling(t *testing.T) {
	tc := NewTracer(Config{RingSize: 64, SampleEvery: 4})
	for i := 0; i < 16; i++ {
		_, tr := tc.StartRoot(context.Background(), "", "op")
		tr.Finish("fam")
	}
	snap := tc.Snapshot()
	if got := len(snap[0].Recent); got != 4 {
		t.Fatalf("sampled recent = %d, want 4 (1 in 4 of 16)", got)
	}
}

func TestSlowlogEmission(t *testing.T) {
	var buf strings.Builder
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	tc := NewTracer(Config{Slowlog: time.Nanosecond, SampleEvery: 1000, Logger: logger})
	ctx, tr := tc.StartRoot(context.Background(), "req-9", "POST /works")
	_, child := StartSpan(ctx, "wal.fsync")
	time.Sleep(time.Millisecond)
	child.End()
	tr.Finish("POST /works")
	out := buf.String()
	if !strings.Contains(out, "slow trace") || !strings.Contains(out, "req-9") {
		t.Fatalf("slowlog line missing: %q", out)
	}
	if !strings.Contains(out, "wal.fsync") {
		t.Fatalf("slowlog span tree missing child: %q", out)
	}
	// Slow traces bypass sampling and are always retained.
	if snap := tc.Snapshot(); len(snap) != 1 || len(snap[0].Recent) != 1 {
		t.Fatalf("slow trace not retained: %+v", snap)
	}
}

func TestCheckCatchesMalformedTrees(t *testing.T) {
	tc := NewTracer(Config{})
	ctx, tr := tc.StartRoot(context.Background(), "", "root")
	_, orphan := StartSpan(ctx, "never-ended")
	_ = orphan
	tr.Finish("fam")
	if err := tr.Check(); err == nil || !strings.Contains(err.Error(), "never ended") {
		t.Fatalf("orphan not caught: %v", err)
	}

	_, tr2 := tc.StartRoot(context.Background(), "", "root")
	tr2.Finish("fam")
	tr2.root.ends.Add(1) // simulate a double End
	if err := tr2.Check(); err == nil || !strings.Contains(err.Error(), "ended 2 times") {
		t.Fatalf("double end not caught: %v", err)
	}
}

func TestConcurrentChildrenRaceFree(t *testing.T) {
	tc := NewTracer(Config{})
	ctx, tr := tc.StartRoot(context.Background(), "", "parallel")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := StartSpan(ctx, "worker")
			sp.SetInt("i", int64(i))
			_, inner := StartSpan(ContextWith(context.Background(), sp), "inner")
			inner.End()
			sp.End()
		}(i)
	}
	wg.Wait()
	tr.Finish("fam")
	if err := tr.Check(); err != nil {
		t.Fatalf("Check after concurrent children: %v", err)
	}
	td := tr.Data()
	if len(td.Root.Children) != 8 {
		t.Fatalf("children = %d, want 8", len(td.Root.Children))
	}
	var b strings.Builder
	root := td.Root
	root.WriteText(&b, 0)
	if got := strings.Count(b.String(), "inner"); got != 8 {
		t.Fatalf("text tree inner count = %d:\n%s", got, b.String())
	}
}

func TestCompactTree(t *testing.T) {
	tc := NewTracer(Config{})
	ctx, tr := tc.StartRoot(context.Background(), "", "root")
	_, a := StartSpan(ctx, "a")
	a.SetAttr("k", "v")
	a.End()
	tr.Finish("fam")
	s := tr.CompactTree()
	if !strings.HasPrefix(s, "root(") || !strings.Contains(s, "{a(") || !strings.Contains(s, "k=v") {
		t.Fatalf("compact tree = %q", s)
	}
}
