// Package httpapi is the HTTP surface of the author-index engine: the
// read-mostly query API, the write endpoints, and the operational
// endpoints (health, readiness, Prometheus metrics, optional pprof).
// `authdex serve` and the loadgen harness both build their servers
// here, so the two surfaces cannot drift.
//
//	GET /stats                         counters as JSON
//	GET /authors?prefix=ab&n=20        headings by prefix
//	GET /authors/{heading}             one heading with works
//	GET /works/{id}                    one work
//	GET /search?q=surface+mining&n=20  boolean title search
//	GET /years?from=1980&to=1989&n=20  year-range scan
//	GET /volume?v=95                   volume scan
//	GET /index?format=text|tsv|md|csv|json   the rendered artifact
//	GET /metrics                       corpus bibliometrics summary
//	GET /rank?by=weighted&limit=10     top contributors by rank key
//	GET /authors/{heading}/metrics     one heading's bibliometrics
//	GET /graph                         coauthorship-network summary
//	GET /graph/path?from=A&to=B        shortest collaboration chain
//	GET /graph/central?limit=10        most central authors (PageRank)
//	POST /works                        add a work (JSON body)
//	POST /works:batch                  add N works in one group commit (JSON array)
//	GET /healthz                       liveness (always 200 while serving)
//	GET /readyz                        readiness (503 until boot checks pass)
//	GET /debug/metrics                 Prometheus text exposition
//	GET /debug/pprof/...               net/http/pprof (only with Config.Debug)
//
// Note the deliberate split: GET /metrics keeps its original meaning —
// corpus bibliometrics — while the Prometheus exposition lives at
// /debug/metrics, so existing scrapers of either never collide.
package httpapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	authorindex "repro"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Config tunes a Server. The zero value serves with a no-op logger,
// the process-wide obs.Default registry, no pprof and instant
// readiness.
type Config struct {
	// Logger receives one structured access-log record per request.
	// Nil discards access logs.
	Logger *slog.Logger
	// Registry is where request metrics land and what /debug/metrics
	// renders. Nil means obs.Default.
	Registry *obs.Registry
	// Debug mounts net/http/pprof under /debug/pprof/.
	Debug bool
	// VerifyOnBoot runs Index.Verify on a background goroutine at
	// construction; /readyz reports 503 until it passes, and keeps
	// reporting 503 (with the error) if it fails.
	VerifyOnBoot bool
	// Slowlog is the threshold at which a request's trace is always
	// retained and emitted as a structured log line with its span
	// tree. 0 disables the slowlog (traces still land in the
	// /debug/traces rings).
	Slowlog time.Duration
	// TraceSampleEvery admits 1 in N sub-threshold traces to the
	// recent ring; <=1 keeps every trace.
	TraceSampleEvery int
	// MaxInFlight caps concurrently served requests: excess requests
	// are shed with 503 + Retry-After before reaching a handler, so an
	// overloaded server degrades by queue-rejection instead of latency
	// collapse. /healthz, /readyz and /debug/ bypass the gate (an
	// overloaded server must still answer its operators). 0 disables.
	MaxInFlight int
}

// Server serves one open Index over HTTP. Build with New, mount with
// Handler.
type Server struct {
	ix  *authorindex.Index
	log *slog.Logger
	reg *obs.Registry
	cfg Config

	ready    atomic.Bool
	readyErr atomic.Value // string
	draining atomic.Bool
	admitted atomic.Int64

	inflight *obs.Gauge
	panics   *obs.Counter
	shed     *obs.Counter
	tracer   *trace.Tracer
	reqSeq   atomic.Uint64
	ridOnce  sync.Once
	ridSeed  string
	routes   map[string]*obs.Histogram // per-pattern latency, built in Handler
}

// New builds a Server and starts its boot checks. The index's Stats
// counters and the process runtime gauges are (re-)registered on the
// configured registry so /debug/metrics exposes them.
func New(ix *authorindex.Index, cfg Config) *Server {
	s := &Server{ix: ix, log: cfg.Logger, reg: cfg.Registry, cfg: cfg}
	if s.reg == nil {
		s.reg = obs.Default
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	ix.RegisterMetrics(s.reg)
	obs.RegisterProcess(s.reg)
	s.inflight = s.reg.Gauge("authdex_http_in_flight_requests",
		"Requests currently being served.")
	s.panics = s.reg.Counter("authdex_http_panics_total",
		"Requests whose handler panicked and was recovered to a 500.")
	s.shed = s.reg.Counter("authdex_http_requests_shed_total",
		"Requests rejected with 503 by the max-in-flight admission gate.")
	s.tracer = trace.NewTracer(trace.Config{
		Slowlog:     cfg.Slowlog,
		SampleEvery: cfg.TraceSampleEvery,
		Logger:      s.log,
	})
	if cfg.VerifyOnBoot {
		go func() {
			if err := ix.Verify(); err != nil {
				s.readyErr.Store(err.Error())
				s.log.Error("verify-on-boot failed", "error", err)
				return
			}
			s.ready.Store(true)
		}()
	} else {
		s.ready.Store(true)
	}
	return s
}

// Tracer exposes the request tracer (tests and embedding servers
// read its snapshot directly; everyone else scrapes /debug/traces).
func (s *Server) Tracer() *trace.Tracer { return s.tracer }

// Handler returns the fully wired handler: every route behind the
// telemetry middleware (request IDs, per-route metrics, access logs),
// plus the operational endpoints.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.routes = make(map[string]*obs.Histogram)
	for _, r := range []struct {
		pattern string
		h       http.HandlerFunc
	}{
		{"GET /stats", s.stats},
		{"GET /authors", s.authors},
		{"GET /authors/{heading}", s.author},
		{"GET /authors/{heading}/metrics", s.authorMetrics},
		{"GET /works/{id}", s.work},
		{"GET /search", s.search},
		{"GET /years", s.years},
		{"GET /volume", s.volume},
		{"GET /index", s.index},
		{"GET /titles", s.titles},
		{"GET /subjects", s.subjects},
		{"GET /subjects/{subject}", s.bySubject},
		{"GET /metrics", s.metrics},
		{"GET /rank", s.rank},
		{"GET /graph", s.graph},
		{"GET /graph/path", s.graphPath},
		{"GET /graph/central", s.graphCentral},
		{"POST /works", s.addWork},
		{"POST /works:batch", s.addWorksBatch},
		{"GET /healthz", s.healthz},
		{"GET /readyz", s.readyz},
		{"GET /debug/metrics", s.debugMetrics},
		{"GET /debug/traces", s.debugTraces},
	} {
		s.handle(mux, r.pattern, r.h)
	}
	if s.cfg.Debug {
		// pprof routes bypass the per-route histogram map (they are
		// operator tools, not workload) but still pass the middleware.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.routes[unmatchedRoute] = s.reg.Histogram(reqDurationMetric,
		reqDurationHelp, "route", unmatchedRoute)
	// Telemetry is outermost so shed and panicking requests still get
	// request IDs, metrics and access-log records; recovery sits above
	// admission so a panic inside the gate itself cannot leak the slot.
	return s.telemetry(s.recovery(s.admission(mux)))
}

// BeginShutdown flips /readyz to 503 "shutting down" so load balancers
// stop routing new work here while in-flight requests drain. It does
// not interrupt requests already being served — call http.Server
// Shutdown after this for the actual drain. Idempotent.
func (s *Server) BeginShutdown() {
	s.draining.Store(true)
}

// handle registers pattern on mux with the route-stamping wrapper and
// pre-creates the route's latency histogram. The handler runs under an
// http.handler span so the root span's direct children account for the
// whole request — time the finer spans miss (scheduler gaps, handler
// glue) still lands inside the handler window instead of vanishing.
func (s *Server) handle(mux *http.ServeMux, pattern string, h http.HandlerFunc) {
	s.routes[pattern] = s.reg.Histogram(reqDurationMetric, reqDurationHelp, "route", pattern)
	mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		stampRoute(r, pattern)
		ctx, sp := trace.StartSpan(r.Context(), "http.handler")
		if sp != nil {
			r = r.WithContext(ctx)
		}
		h(w, r)
		sp.End()
	})
}

// ---- operational handlers ----

// healthz is pure liveness: if the handler runs, the process is up.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "ok\n")
}

// readyz is readiness: the index finished Open (a constructed Server
// implies that), the optional verify-on-boot pass succeeded, and the
// server is not draining for shutdown. A degraded (read-only) index
// still reports ready — reads keep serving the last published
// snapshot and only writes 503 — but the body names the cause so
// operators and probes that inspect it can tell.
func (s *Server) readyz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		http.Error(w, "shutting down", http.StatusServiceUnavailable)
		return
	}
	if s.ready.Load() {
		if deg, cause := s.ix.Degraded(); deg {
			fmt.Fprintf(w, "degraded: %v\n", cause)
			return
		}
		io.WriteString(w, "ok\n")
		return
	}
	if msg, ok := s.readyErr.Load().(string); ok {
		http.Error(w, "verify failed: "+msg, http.StatusServiceUnavailable)
		return
	}
	http.Error(w, "starting: verify in progress", http.StatusServiceUnavailable)
}

func (s *Server) debugMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("metrics exposition", "error", err)
	}
}

// ---- shared helpers ----

func writeJSON(ctx context.Context, w http.ResponseWriter, v any) {
	_, sp := trace.StartSpan(ctx, "http.encode")
	defer sp.End()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// canceled reports whether the client already hung up, answering the
// 499 status used by proxies for the same condition. Handlers call it
// before expensive phases (render, list, rank, scan) so a dead
// connection never pays for work nobody will read; the middleware
// counts these under the "canceled" status label.
func canceled(w http.ResponseWriter, r *http.Request) bool {
	if r.Context().Err() == nil {
		return false
	}
	httpErr(w, StatusClientClosedRequest, "client closed request")
	return true
}

func httpErr(w http.ResponseWriter, code int, format string, args ...any) {
	http.Error(w, fmt.Sprintf(format, args...), code)
}

// writeIndexErr maps an index write failure onto the wire: a degraded
// (read-only) index answers 503 with Retry-After so well-behaved
// clients back off and retry against a recovered or failed-over
// replica, and the request's trace is tagged. The commit whose I/O
// failure tripped the latch returns the same 503 — the index, not the
// caller's data, is at fault. Everything else stays a 422.
func (s *Server) writeIndexErr(w http.ResponseWriter, r *http.Request, err error) {
	deg, _ := s.ix.Degraded()
	if deg || errors.Is(err, authorindex.ErrDegraded) {
		trace.FromContext(r.Context()).SetAttr("degraded", "true")
		w.Header().Set("Retry-After", "30")
		httpErr(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	httpErr(w, http.StatusUnprocessableEntity, "%v", err)
}

// limitParam reads the result limit from ?limit= (or the legacy ?n=)
// and clamps it with the helper every layer shares: missing, negative
// or unparseable values fall back to 20, zero and absurd values clamp
// to authorindex.MaxLimit.
func limitParam(r *http.Request) int {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		raw = r.URL.Query().Get("n")
	}
	if raw == "" {
		return 20
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		return 20
	}
	return authorindex.ClampLimit(n, 20)
}

// wire representations -------------------------------------------------

// Work is the wire form of one work, shared by responses and the POST
// /works and /works:batch request bodies.
type Work struct {
	ID       authorindex.WorkID `json:"id,omitempty"`
	Title    string             `json:"title"`
	Kind     string             `json:"kind"`
	Authors  []string           `json:"authors"`
	Citation string             `json:"citation"`
}

func toWireWork(w *authorindex.Work) Work {
	out := Work{
		ID:       w.ID,
		Title:    w.Title,
		Kind:     w.Kind.String(),
		Citation: w.Citation.String(),
	}
	for _, a := range w.Authors {
		out.Authors = append(out.Authors, authorindex.FormatAuthor(a))
	}
	return out
}

func toWireWorks(ws []*authorindex.Work) []Work {
	out := make([]Work, len(ws))
	for i, w := range ws {
		out[i] = toWireWork(w)
	}
	return out
}

// Entry is the wire form of one author heading.
type Entry struct {
	Heading string   `json:"heading"`
	SeeAlso []string `json:"seeAlso,omitempty"`
	Works   []Work   `json:"works"`
}

func toWireEntry(e *authorindex.Entry) Entry {
	out := Entry{Heading: authorindex.FormatAuthor(e.Author)}
	for _, ref := range e.SeeAlso {
		out.SeeAlso = append(out.SeeAlso, authorindex.FormatAuthor(ref))
	}
	for i := range e.Works {
		out.Works = append(out.Works, toWireWork(&e.Works[i]))
	}
	return out
}

// handlers --------------------------------------------------------------

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, s.ix.Stats())
}

func (s *Server) authors(w http.ResponseWriter, r *http.Request) {
	if canceled(w, r) {
		return
	}
	var entries []*authorindex.Entry
	if after := r.URL.Query().Get("after"); after != "" {
		entries = s.ix.AuthorsPageCtx(r.Context(), after, limitParam(r))
	} else {
		entries = s.ix.AuthorsCtx(r.Context(), r.URL.Query().Get("prefix"), limitParam(r))
	}
	out := make([]Entry, len(entries))
	for i, e := range entries {
		out[i] = toWireEntry(e)
	}
	writeJSON(r.Context(), w, out)
}

func (s *Server) author(w http.ResponseWriter, r *http.Request) {
	heading := r.PathValue("heading")
	entry, ok := s.ix.Author(heading)
	if !ok {
		httpErr(w, http.StatusNotFound, "no heading %q", heading)
		return
	}
	writeJSON(r.Context(), w, toWireEntry(entry))
}

func (s *Server) work(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "bad id: %v", err)
		return
	}
	work, ok := s.ix.GetCtx(r.Context(), authorindex.WorkID(id))
	if !ok {
		httpErr(w, http.StatusNotFound, "no work %d", id)
		return
	}
	writeJSON(r.Context(), w, toWireWork(work))
}

func (s *Server) search(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpErr(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	if canceled(w, r) {
		return
	}
	writeJSON(r.Context(), w, toWireWorks(s.ix.SearchCtx(r.Context(), q, limitParam(r))))
}

// intParam reads one required integer query parameter, normalizing
// every bad shape to one 400 with a message naming the parameter and
// what went wrong — a missing parameter reads differently from a
// malformed one, instead of both collapsing into a generic error.
func intParam(w http.ResponseWriter, r *http.Request, name string) (int, bool) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		httpErr(w, http.StatusBadRequest, "missing %s parameter", name)
		return 0, false
	}
	n, err := strconv.Atoi(raw)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%s must be an integer, got %q", name, raw)
		return 0, false
	}
	return n, true
}

func (s *Server) years(w http.ResponseWriter, r *http.Request) {
	from, ok := intParam(w, r, "from")
	if !ok {
		return
	}
	to, ok := intParam(w, r, "to")
	if !ok {
		return
	}
	if canceled(w, r) {
		return
	}
	writeJSON(r.Context(), w, toWireWorks(s.ix.YearRangeCtx(r.Context(), from, to, limitParam(r))))
}

func (s *Server) volume(w http.ResponseWriter, r *http.Request) {
	v, ok := intParam(w, r, "v")
	if !ok {
		return
	}
	if canceled(w, r) {
		return
	}
	writeJSON(r.Context(), w, toWireWorks(s.ix.VolumeWorksCtx(r.Context(), v, limitParam(r))))
}

func (s *Server) index(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if canceled(w, r) {
		return
	}
	switch f {
	case authorindex.JSON:
		w.Header().Set("Content-Type", "application/json")
	case authorindex.CSV:
		w.Header().Set("Content-Type", "text/csv; charset=utf-8")
	case authorindex.HTMLPage:
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	if err := s.ix.RenderCtx(r.Context(), w, authorindex.RenderOptions{Format: f}); err != nil {
		if r.Context().Err() != nil {
			// The render aborted because the client went away; headers
			// may already be out, so just stop writing.
			return
		}
		httpErr(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) titles(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("format")
	if name == "" {
		name = "text"
	}
	f, err := authorindex.ParseFormat(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if canceled(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if err := s.ix.RenderTitleIndex(w, authorindex.RenderOptions{Format: f}); err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
	}
}

func (s *Server) subjects(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, s.ix.Subjects())
}

func (s *Server) bySubject(w http.ResponseWriter, r *http.Request) {
	subject := r.PathValue("subject")
	if canceled(w, r) {
		return
	}
	works := s.ix.BySubjectCtx(r.Context(), subject, limitParam(r))
	if len(works) == 0 {
		httpErr(w, http.StatusNotFound, "no works under subject %q", subject)
		return
	}
	writeJSON(r.Context(), w, toWireWorks(works))
}

func (s *Server) metrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, s.ix.MetricsSummary())
}

func (s *Server) rank(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("by")
	if name == "" {
		name = "weighted"
	}
	by, err := authorindex.ParseRankKey(name)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	if canceled(w, r) {
		return
	}
	writeJSON(r.Context(), w, s.ix.TopAuthorsCtx(r.Context(), by, limitParam(r)))
}

func (s *Server) graph(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, s.ix.GraphSummary())
}

// Path is the /graph/path response: the chain plus its hop count.
type Path struct {
	From     string   `json:"from"`
	To       string   `json:"to"`
	Distance int      `json:"distance"`
	Path     []string `json:"path"`
}

func (s *Server) graphPath(w http.ResponseWriter, r *http.Request) {
	from := r.URL.Query().Get("from")
	to := r.URL.Query().Get("to")
	if from == "" || to == "" {
		httpErr(w, http.StatusBadRequest, "from and to parameters are required")
		return
	}
	path, ok := s.ix.CollaborationPath(from, to)
	if !ok {
		httpErr(w, http.StatusNotFound, "no collaboration path from %q to %q", from, to)
		return
	}
	writeJSON(r.Context(), w, Path{From: from, To: to, Distance: len(path) - 1, Path: path})
}

func (s *Server) graphCentral(w http.ResponseWriter, r *http.Request) {
	if canceled(w, r) {
		return
	}
	writeJSON(r.Context(), w, s.ix.TopCentralCtx(r.Context(), limitParam(r)))
}

func (s *Server) authorMetrics(w http.ResponseWriter, r *http.Request) {
	heading := r.PathValue("heading")
	m, ok := s.ix.AuthorMetrics(heading)
	if !ok {
		httpErr(w, http.StatusNotFound, "no heading %q", heading)
		return
	}
	writeJSON(r.Context(), w, m)
}

func (s *Server) addWork(w http.ResponseWriter, r *http.Request) {
	var in Work
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	work, err := fromWireWork(in)
	if err != nil {
		httpErr(w, http.StatusBadRequest, "%v", err)
		return
	}
	id, err := s.ix.AddCtx(r.Context(), work)
	if err != nil {
		s.writeIndexErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(r.Context(), w, map[string]authorindex.WorkID{"id": id})
}

// addWorksBatch accepts a JSON array of works and commits them as one
// batch: a single WAL append and fsync however many works arrive, and
// all-or-nothing visibility — one bad work rejects the whole request.
func (s *Server) addWorksBatch(w http.ResponseWriter, r *http.Request) {
	var in []Work
	if err := json.NewDecoder(r.Body).Decode(&in); err != nil {
		httpErr(w, http.StatusBadRequest, "bad body: %v", err)
		return
	}
	if len(in) == 0 {
		httpErr(w, http.StatusBadRequest, "empty batch")
		return
	}
	works := make([]authorindex.Work, len(in))
	for i, ww := range in {
		work, err := fromWireWork(ww)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "work %d: %v", i, err)
			return
		}
		works[i] = work
	}
	ids, err := s.ix.AddBatchCtx(r.Context(), works)
	if err != nil {
		s.writeIndexErr(w, r, err)
		return
	}
	w.WriteHeader(http.StatusCreated)
	writeJSON(r.Context(), w, map[string][]authorindex.WorkID{"ids": ids})
}

func fromWireWork(in Work) (authorindex.Work, error) {
	work := authorindex.Work{ID: in.ID, Title: in.Title}
	var err error
	if work.Citation, err = authorindex.ParseCitation(in.Citation); err != nil {
		return work, err
	}
	kindName := in.Kind
	if kindName == "" {
		kindName = "article"
	}
	if work.Kind, err = authorindex.ParseKind(strings.ToLower(kindName)); err != nil {
		return work, err
	}
	if len(in.Authors) == 0 {
		return work, errors.New("at least one author is required")
	}
	for _, h := range in.Authors {
		a, err := authorindex.ParseAuthor(h)
		if err != nil {
			return work, err
		}
		work.Authors = append(work.Authors, a)
	}
	return work, nil
}
