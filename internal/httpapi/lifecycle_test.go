package httpapi

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	authorindex "repro"
	"repro/internal/fault"
	"repro/internal/obs"
)

// chain composes the real middleware stack around an arbitrary handler,
// exactly as Handler() does around the mux, so the lifecycle tests can
// exercise panicking and blocking handlers the route table doesn't have.
func chain(s *Server, h http.Handler) http.Handler {
	return s.telemetry(s.recovery(s.admission(h)))
}

// TestRecoveryMiddleware: a panicking handler becomes a 500 with the
// panic counted, the stack logged, the trace force-retained, and the
// server keeps serving afterwards.
func TestRecoveryMiddleware(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &logBuf, mu: &mu}, nil))
	reg := obs.NewRegistry()
	ix := openIndex(t)
	// Slowlog far above any test duration and sampling effectively off:
	// the only way this trace is retained in the recent ring is the
	// forced capture from the recovery middleware.
	s := New(ix, Config{
		Logger:           logger,
		Registry:         reg,
		Slowlog:          time.Hour,
		TraceSampleEvery: 1 << 30,
	})
	ts := httptest.NewServer(chain(s, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	})))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/explode")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler returned %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(string(body), "internal server error") {
		t.Fatalf("panic response body = %q", body)
	}

	// The connection and the server survived.
	resp2, err := http.Get(ts.URL + "/explode")
	if err != nil {
		t.Fatalf("server did not survive a panic: %v", err)
	}
	resp2.Body.Close()

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "authdex_http_panics_total 2") {
		t.Errorf("panic counter not at 2:\n%s", sb.String())
	}

	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "panic recovered") || !strings.Contains(logged, "kaboom") {
		t.Errorf("panic not logged:\n%s", logged)
	}
	if !strings.Contains(logged, "lifecycle_test.go") {
		t.Errorf("panic log lacks a stack trace:\n%s", logged)
	}
	// ForceSlowTrace emitted the slowlog line despite the microsecond
	// duration, and the trace landed in the retained rings.
	if !strings.Contains(logged, "slow trace") {
		t.Errorf("forced trace did not hit the slowlog:\n%s", logged)
	}
	var found bool
	for _, fam := range s.Tracer().Snapshot() {
		if len(fam.Recent) > 0 {
			found = true
		}
	}
	if !found {
		t.Error("panicking request's trace not retained in any ring")
	}
}

// TestRecoveryAfterHeadersSent: a panic after the handler already
// started the response must not try to write a second header.
func TestRecoveryAfterHeadersSent(t *testing.T) {
	reg := obs.NewRegistry()
	s := New(openIndex(t), Config{Registry: reg})
	ts := httptest.NewServer(chain(s, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusAccepted)
		io.WriteString(w, "partial")
		panic("mid-stream")
	})))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want the 202 the handler sent", resp.StatusCode)
	}
	if strings.Contains(string(body), "internal server error") {
		t.Fatalf("recovery wrote an error body into a started response: %q", body)
	}
}

// TestAdmissionGateShedsOverLimit fills every in-flight slot with
// blocked requests, then checks that a concurrent burst is entirely
// shed with 503 + Retry-After while the operational endpoints still
// answer, and that the gate reopens once the slots drain.
func TestAdmissionGateShedsOverLimit(t *testing.T) {
	const limit, burst = 4, 16
	reg := obs.NewRegistry()
	s := New(openIndex(t), Config{Registry: reg, MaxInFlight: limit})
	release := make(chan struct{})
	started := make(chan struct{}, limit)
	mux := http.NewServeMux()
	mux.HandleFunc("/block", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		io.WriteString(w, "done")
	})
	mux.HandleFunc("/healthz", s.healthz)
	mux.HandleFunc("/readyz", s.readyz)
	ts := httptest.NewServer(chain(s, mux))
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < limit; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/block")
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < limit; i++ {
		<-started
	}

	// Every slot is held by a blocked request: the whole burst sheds.
	codes := make(chan int, burst)
	var retryAfterMissing sync.Map
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/block")
			if err != nil {
				codes <- -1
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusServiceUnavailable && resp.Header.Get("Retry-After") == "" {
				retryAfterMissing.Store(i, true)
			}
			codes <- resp.StatusCode
		}(i)
	}
	for i := 0; i < burst; i++ {
		if code := <-codes; code != http.StatusServiceUnavailable {
			t.Errorf("burst request got %d, want 503", code)
		}
	}
	retryAfterMissing.Range(func(k, v any) bool {
		t.Errorf("shed response %v lacked Retry-After", k)
		return true
	})

	// Operational endpoints bypass the gate even at capacity.
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s at capacity = %d, want 200", path, resp.StatusCode)
		}
	}

	close(release)
	wg.Wait()

	// Slots drained: the gate admits again.
	resp, err := http.Get(ts.URL + "/block")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after drain = %d, want 200", resp.StatusCode)
	}
	if n := s.admitted.Load(); n != 0 {
		t.Fatalf("admitted counter leaked: %d, want 0", n)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "authdex_http_requests_shed_total 16") {
		t.Errorf("shed counter not at %d:\n%s", burst, sb.String())
	}
}

// TestWriteEndpoints503WhenDegraded: once a write-path I/O failure
// latches the index read-only, the write endpoints answer 503 with
// Retry-After (including the commit that tripped the latch), /readyz
// stays 200 but names the cause, reads keep serving, and the degraded
// gauge flips on /debug/metrics.
func TestWriteEndpoints503WhenDegraded(t *testing.T) {
	in := fault.NewInjector(nil)
	ix, err := authorindex.Open(t.TempDir(), &authorindex.Options{FS: in})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(ix, Config{Registry: reg}).Handler())
	defer ts.Close()

	post := func(body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+"/works", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}
	work := `{"title":"Strip Mining","citation":"75:319 (1973)","authors":["Cardi, Vincent P."]}`
	if resp := post(work); resp.StatusCode != http.StatusCreated {
		t.Fatalf("healthy POST /works = %d, want 201", resp.StatusCode)
	}

	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpSync, Nth: 1, Err: syscall.EIO})
	// The commit whose fsync failed: 503, not a 422 blaming the client.
	if resp := post(work); resp.StatusCode != http.StatusServiceUnavailable ||
		resp.Header.Get("Retry-After") == "" {
		t.Fatalf("latch-tripping POST = %d (Retry-After %q), want 503 with Retry-After",
			resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// Every later write fails fast the same way.
	if resp := post(work); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST on degraded index = %d, want 503", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/works:batch", "application/json",
		strings.NewReader("["+work+"]"))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("batch POST on degraded index = %d, want 503 with Retry-After", resp.StatusCode)
	}

	// Still ready — reads serve the committed epoch — but the body says why.
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "degraded:") {
		t.Fatalf("degraded readyz = %d %q, want 200 with degraded cause", resp.StatusCode, body)
	}
	var works []Work
	if code := getJSON(t, ts.URL+"/search?q=mining", &works); code != http.StatusOK || len(works) != 1 {
		t.Fatalf("degraded search = %d with %d works, want 200 with 1", code, len(works))
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "authdex_degraded 1") {
		t.Errorf("authdex_degraded gauge not 1 on /debug/metrics:\n%s", sb.String())
	}
}

// TestBeginShutdownFlipsReadyz: after BeginShutdown readiness reports
// 503 "shutting down" while liveness and normal routes keep answering
// (the drain window).
func TestBeginShutdownFlipsReadyz(t *testing.T) {
	reg := obs.NewRegistry()
	ix := openIndex(t)
	s := New(ix, Config{Registry: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}

	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("readyz before shutdown = %d %q", code, body)
	}
	s.BeginShutdown()
	s.BeginShutdown() // idempotent
	code, body := get("/readyz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, "shutting down") {
		t.Fatalf("readyz after BeginShutdown = %d %q, want 503 shutting down", code, body)
	}
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after BeginShutdown = %d, want 200 (still live)", code)
	}
	if code, _ := get("/stats"); code != http.StatusOK {
		t.Fatalf("stats during drain = %d, want 200", code)
	}
}
