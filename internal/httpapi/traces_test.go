package httpapi

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func drive(t *testing.T, ts *httptest.Server, paths ...string) {
	t.Helper()
	for _, p := range paths {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
}

// TestDebugTraces: after traffic, the endpoint serves per-family span
// trees in both text and JSON, correlated with the access log by
// request ID, with the per-layer facade/engine spans visible.
func TestDebugTraces(t *testing.T) {
	ts, _ := testServer(t)
	drive(t, ts, "/search?q=mining", "/search?q=ownership", "/works/1", "/authors?prefix=le")

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"=== GET /search ===",
		"=== GET /works/{id} ===",
		"facade.search",
		"epoch=",
		"engine.title_scan",
		"http.encode",
		"id=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/debug/traces lacks %q:\n%s", want, out)
		}
	}

	// JSON form decodes into the exported snapshot type and records the
	// route pattern as the op family.
	var snap []trace.FamilySnapshot
	if code := getJSON(t, ts.URL+"/debug/traces?format=json", &snap); code != 200 {
		t.Fatalf("json status %d", code)
	}
	families := map[string]trace.FamilySnapshot{}
	for _, f := range snap {
		families[f.Family] = f
	}
	search, ok := families["GET /search"]
	if !ok {
		t.Fatalf("no GET /search family in %v", families)
	}
	if len(search.Recent) != 2 || len(search.Slowest) != 2 {
		t.Errorf("search rings: recent=%d slowest=%d, want 2/2", len(search.Recent), len(search.Slowest))
	}
	for _, td := range search.Slowest {
		if td.ID == "" {
			t.Error("trace missing request-ID correlation")
		}
		if td.DurNS <= 0 {
			t.Error("trace has no duration")
		}
	}
}

// TestDebugTracesFilters: family substring and min-duration filters
// narrow the output; a bad min is a 400.
func TestDebugTracesFilters(t *testing.T) {
	ts, _ := testServer(t)
	drive(t, ts, "/search?q=mining", "/works/1")

	resp, err := http.Get(ts.URL + "/debug/traces?family=search")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	out := string(body)
	if !strings.Contains(out, "GET /search") || strings.Contains(out, "GET /works") {
		t.Errorf("family filter leaked:\n%s", out)
	}

	// An absurd min filters everything out.
	resp, err = http.Get(ts.URL + "/debug/traces?min=10m")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "no traces retained") {
		t.Errorf("min=10m still shows traces:\n%s", body)
	}

	if code := getJSON(t, ts.URL+"/debug/traces?min=fast", nil); code != 400 {
		t.Errorf("bad min duration status = %d", code)
	}
}

// TestTraceLayerBreakdown: in the captured tree for a search request,
// the root's direct children (facade op + response encoding) must
// account for the bulk of the request — the acceptance bar for "the
// per-layer breakdown explains the request".
func TestTraceLayerBreakdown(t *testing.T) {
	ts, _ := testServer(t)
	drive(t, ts, "/search?q=mining+or+ownership")

	var snap []trace.FamilySnapshot
	if code := getJSON(t, ts.URL+"/debug/traces?format=json", &snap); code != 200 {
		t.Fatalf("status %d", code)
	}
	for _, fam := range snap {
		if fam.Family != "GET /search" {
			continue
		}
		td := fam.Slowest[0]
		var children int64
		for _, c := range td.Root.Children {
			children += c.DurNS
		}
		if children > td.Root.DurNS {
			t.Errorf("children (%dns) exceed root (%dns)", children, td.Root.DurNS)
		}
		// The spans must nest: every recorded child ends within the root.
		for _, c := range td.Root.Children {
			if c.OffsetNS+c.DurNS > td.Root.DurNS {
				t.Errorf("span %s (offset %d + dur %d) outlives root (%d)",
					c.Name, c.OffsetNS, c.DurNS, td.Root.DurNS)
			}
		}
		// The handler span makes the root's direct breakdown complete:
		// everything but middleware glue lands inside it, and the facade
		// and encode spans nest one level down.
		if len(td.Root.Children) != 1 || td.Root.Children[0].Name != "http.handler" {
			t.Fatalf("root children = %+v, want one http.handler span", td.Root.Children)
		}
		handler := td.Root.Children[0]
		var names []string
		for _, c := range handler.Children {
			names = append(names, c.Name)
		}
		want := map[string]bool{"facade.search": false, "http.encode": false}
		for _, n := range names {
			if _, ok := want[n]; ok {
				want[n] = true
			}
		}
		for n, seen := range want {
			if !seen {
				t.Errorf("http.handler lacks %q child (has %v)", n, names)
			}
		}
		return
	}
	t.Fatal("no GET /search family captured")
}

// TestCanceledRequestIs499: a request whose context is already gone
// when the handler runs is aborted with the client-closed-request
// status and counted under the "canceled" label, not an error code.
func TestCanceledRequestIs499(t *testing.T) {
	ix := openIndex(t)
	reg := obs.NewRegistry()
	h := New(ix, Config{Registry: reg}).Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/search?q=mining", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if want := `authdex_http_requests_total{route="GET /search",code="canceled"} 1`; !strings.Contains(sb.String(), want) {
		t.Errorf("exposition lacks %q:\n%s", want, sb.String())
	}
	if strings.Contains(sb.String(), `code="499"`) {
		t.Error(`canceled request leaked a code="499" series`)
	}
}

// TestCanceledRenderAborts: the render endpoint checks the context
// between sections, so a disconnect stops the (potentially huge) body
// mid-stream instead of rendering it all.
func TestCanceledRenderAborts(t *testing.T) {
	ix := openIndex(t)
	h := New(ix, Config{Registry: obs.NewRegistry()}).Handler()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/index?format=text", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Errorf("status = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

// TestTraceSampling: with SampleEvery configured, the recent ring only
// admits a fraction of sub-threshold requests while the slowest ring
// still sees everything.
func TestTraceSampling(t *testing.T) {
	ix := openIndex(t)
	ts := httptest.NewServer(New(ix, Config{Registry: obs.NewRegistry(), TraceSampleEvery: 8}).Handler())
	defer ts.Close()
	for i := 0; i < 16; i++ {
		drive(t, ts, "/healthz")
	}
	var snap []trace.FamilySnapshot
	if code := getJSON(t, ts.URL+"/debug/traces?format=json&family=healthz", &snap); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(snap) != 1 {
		t.Fatalf("families = %d", len(snap))
	}
	if got := len(snap[0].Recent); got != 2 {
		t.Errorf("recent admitted %d of 16 at 1-in-8 sampling, want 2", got)
	}
	if len(snap[0].Slowest) == 0 {
		t.Error("slowest ring empty despite traffic")
	}
}
