package httpapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	authorindex "repro"
	"repro/internal/obs"
)

// testServer builds the standard three-work fixture and serves it
// through the full Handler — middleware included — on its own registry
// so metric assertions never see another test's traffic.
func testServer(t *testing.T) (*httptest.Server, *authorindex.Index) {
	ts, ix, _ := testServerReg(t)
	return ts, ix
}

func testServerReg(t *testing.T) (*httptest.Server, *authorindex.Index, *obs.Registry) {
	t.Helper()
	ix, err := authorindex.Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	add := func(title, cite string, headings ...string) {
		w := authorindex.Work{Title: title}
		if w.Citation, err = authorindex.ParseCitation(cite); err != nil {
			t.Fatal(err)
		}
		for _, h := range headings {
			a, err := authorindex.ParseAuthor(h)
			if err != nil {
				t.Fatal(err)
			}
			w.Authors = append(w.Authors, a)
		}
		if _, err := ix.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	add("Strip Mining and Reclamation", "75:319 (1973)", "Cardi, Vincent P.")
	add("Coalbed Methane Ownership", "94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S.")
	ws := authorindex.Work{
		Title:    "Classified Work",
		Citation: authorindex.Citation{Volume: 80, Page: 1, Year: 1977},
		Authors:  []authorindex.Author{{Family: "Filed", Given: "Under S."}},
		Subjects: []string{"Mining Law"},
	}
	if _, err := ix.Add(ws); err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(ix, Config{Registry: reg}).Handler())
	t.Cleanup(ts.Close)
	return ts, ix, reg
}

func getJSON(t *testing.T, url string, into any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if into != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestServeStats(t *testing.T) {
	ts, _ := testServer(t)
	var st authorindex.Stats
	if code := getJSON(t, ts.URL+"/stats", &st); code != 200 {
		t.Fatalf("status %d", code)
	}
	if st.Works != 3 || st.Authors != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServeAuthors(t *testing.T) {
	ts, _ := testServer(t)
	var entries []struct {
		Heading string `json:"heading"`
		Works   []struct {
			Title string `json:"title"`
		} `json:"works"`
	}
	if code := getJSON(t, ts.URL+"/authors?prefix=le", &entries); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(entries) != 1 || entries[0].Heading != "Lewin, Jeff L." {
		t.Fatalf("entries = %+v", entries)
	}
	if len(entries[0].Works) != 1 {
		t.Errorf("works = %+v", entries[0].Works)
	}
}

func TestServeAuthorByHeading(t *testing.T) {
	ts, _ := testServer(t)
	var entry struct {
		Heading string `json:"heading"`
	}
	url := ts.URL + "/authors/" + strings.ReplaceAll("Cardi, Vincent P.", " ", "%20")
	if code := getJSON(t, url, &entry); code != 200 {
		t.Fatalf("status %d", code)
	}
	if entry.Heading != "Cardi, Vincent P." {
		t.Errorf("heading = %q", entry.Heading)
	}
	if code := getJSON(t, ts.URL+"/authors/Nobody,%20Known", nil); code != 404 {
		t.Errorf("missing author status = %d", code)
	}
}

func TestServeWork(t *testing.T) {
	ts, _ := testServer(t)
	var w struct {
		Title   string   `json:"title"`
		Authors []string `json:"authors"`
	}
	if code := getJSON(t, ts.URL+"/works/2", &w); code != 200 {
		t.Fatalf("status %d", code)
	}
	if w.Title != "Coalbed Methane Ownership" || len(w.Authors) != 2 {
		t.Errorf("work = %+v", w)
	}
	if code := getJSON(t, ts.URL+"/works/999", nil); code != 404 {
		t.Errorf("missing work status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/works/abc", nil); code != 400 {
		t.Errorf("bad id status = %d", code)
	}
}

func TestServeSearchYearsVolume(t *testing.T) {
	ts, _ := testServer(t)
	var works []struct {
		Title string `json:"title"`
	}
	if code := getJSON(t, ts.URL+"/search?q=reclamation", &works); code != 200 || len(works) != 1 {
		t.Errorf("search: code=%d works=%+v", code, works)
	}
	if code := getJSON(t, ts.URL+"/search", nil); code != 400 {
		t.Errorf("empty search status = %d", code)
	}
	works = nil
	if code := getJSON(t, ts.URL+"/years?from=1990&to=1995", &works); code != 200 || len(works) != 1 {
		t.Errorf("years: code=%d works=%+v", code, works)
	}
	if code := getJSON(t, ts.URL+"/years?from=x&to=y", nil); code != 400 {
		t.Errorf("bad years status = %d", code)
	}
	works = nil
	if code := getJSON(t, ts.URL+"/volume?v=75", &works); code != 200 || len(works) != 1 {
		t.Errorf("volume: code=%d works=%+v", code, works)
	}
}

// TestServeIntParamNormalization: every bad shape of a required integer
// parameter — missing, non-numeric, empty, trailing garbage, overflow —
// normalizes to one 400 whose message names the offending parameter,
// on both endpoints that share the helper.
func TestServeIntParamNormalization(t *testing.T) {
	ts, _ := testServer(t)
	cases := []struct {
		name     string
		path     string
		wantCode int
		wantMsg  string
	}{
		{"years missing from", "/years?to=1995", 400, "missing from parameter"},
		{"years missing to", "/years?from=1990", 400, "missing to parameter"},
		{"years missing both", "/years", 400, "missing from parameter"},
		{"years malformed from", "/years?from=abc&to=1995", 400, `from must be an integer, got "abc"`},
		{"years malformed to", "/years?from=1990&to=19x5", 400, `to must be an integer, got "19x5"`},
		{"years float from", "/years?from=1990.5&to=1995", 400, `from must be an integer`},
		{"years overflow", "/years?from=99999999999999999999&to=1995", 400, "from must be an integer"},
		{"volume missing v", "/volume", 400, "missing v parameter"},
		{"volume malformed v", "/volume?v=vii", 400, `v must be an integer, got "vii"`},
		{"volume empty v", "/volume?v=", 400, "missing v parameter"},
		{"years ok negative", "/years?from=-1&to=1995", 200, ""},
		{"volume ok", "/volume?v=75", 200, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Get(ts.URL + tc.path)
			if err != nil {
				t.Fatal(err)
			}
			body := make([]byte, 4096)
			n, _ := resp.Body.Read(body)
			resp.Body.Close()
			if resp.StatusCode != tc.wantCode {
				t.Fatalf("GET %s: status %d, want %d (body %q)", tc.path, resp.StatusCode, tc.wantCode, body[:n])
			}
			if tc.wantMsg != "" && !strings.Contains(string(body[:n]), tc.wantMsg) {
				t.Errorf("GET %s: body %q lacks %q", tc.path, body[:n], tc.wantMsg)
			}
		})
	}
}

func TestServeIndexAndTitles(t *testing.T) {
	ts, _ := testServer(t)
	resp, err := http.Get(ts.URL + "/index?format=text")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 1<<16)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "AUTHOR INDEX") {
		t.Error("index endpoint missing running head")
	}
	resp, err = http.Get(ts.URL + "/titles?format=tsv")
	if err != nil {
		t.Fatal(err)
	}
	n, _ = resp.Body.Read(body)
	resp.Body.Close()
	if !strings.Contains(string(body[:n]), "Coalbed Methane Ownership\t") {
		t.Errorf("titles endpoint output: %q", body[:n])
	}
	if code := getJSON(t, ts.URL+"/index?format=yaml", nil); code != 400 {
		t.Errorf("bad format status = %d", code)
	}
	// HTML format sets the right content type.
	resp, err = http.Get(ts.URL + "/index?format=html")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("html content type = %q", ct)
	}
	// Title index rejects CSV.
	if code := getJSON(t, ts.URL+"/titles?format=csv", nil); code != 400 {
		t.Errorf("titles csv status = %d", code)
	}
}

func TestServeSubjects(t *testing.T) {
	ts, _ := testServer(t)
	var subs []authorindex.SubjectCount
	if code := getJSON(t, ts.URL+"/subjects", &subs); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(subs) != 1 || subs[0].Subject != "Mining Law" || subs[0].Works != 1 {
		t.Fatalf("subjects = %+v", subs)
	}
	var works []struct {
		Title string `json:"title"`
	}
	if code := getJSON(t, ts.URL+"/subjects/Mining%20Law", &works); code != 200 || len(works) != 1 {
		t.Errorf("by subject: code=%d works=%+v", code, works)
	}
	if code := getJSON(t, ts.URL+"/subjects/Nothing%20Here", nil); code != 404 {
		t.Errorf("missing subject status = %d", code)
	}
}

func TestServeMetricsSummary(t *testing.T) {
	ts, _ := testServer(t)
	var sum authorindex.MetricsSummary
	if code := getJSON(t, ts.URL+"/metrics", &sum); code != 200 {
		t.Fatalf("status %d", code)
	}
	// 3 works, 4 headings; the two-author work contributes 2 postings.
	if sum.Works != 3 || sum.Authors != 4 || sum.Postings != 4 {
		t.Errorf("summary = %+v", sum)
	}
	if sum.SoloWorks != 2 || sum.Pairs != 1 || sum.Scheme != "harmonic" {
		t.Errorf("summary = %+v", sum)
	}
}

func TestServeRank(t *testing.T) {
	ts, ix := testServer(t)
	var top []authorindex.AuthorMetrics
	if code := getJSON(t, ts.URL+"/rank?by=weighted&limit=2", &top); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(top) != 2 {
		t.Fatalf("rank returned %d entries, want 2", len(top))
	}
	// The solo authors (credit 1.0) outrank the co-authors of the
	// two-author work.
	if top[0].Weighted != 1 || top[1].Weighted != 1 {
		t.Errorf("top credit = %v, %v", top[0].Weighted, top[1].Weighted)
	}
	// HTTP results must match the facade the CLI uses.
	facade := ix.TopAuthors(authorindex.ByWeighted, 2)
	for i := range top {
		if top[i].Heading != facade[i].Heading || top[i].Weighted != facade[i].Weighted {
			t.Errorf("rank[%d] = %+v, facade %+v", i, top[i], facade[i])
		}
	}
	// Default key is weighted; bad keys are 400.
	var dflt []authorindex.AuthorMetrics
	if code := getJSON(t, ts.URL+"/rank", &dflt); code != 200 || len(dflt) == 0 {
		t.Errorf("default rank: code=%d len=%d", code, len(dflt))
	}
	if code := getJSON(t, ts.URL+"/rank?by=citations", nil); code != 400 {
		t.Errorf("bad rank key status = %d", code)
	}
	// h-index ranking works end to end.
	var byH []authorindex.AuthorMetrics
	if code := getJSON(t, ts.URL+"/rank?by=h&limit=10", &byH); code != 200 || len(byH) == 0 {
		t.Errorf("rank by h: code=%d len=%d", code, len(byH))
	}
}

func TestServeAuthorMetrics(t *testing.T) {
	ts, _ := testServer(t)
	var m authorindex.AuthorMetrics
	url := ts.URL + "/authors/" + strings.ReplaceAll("Lewin, Jeff L.", " ", "%20") + "/metrics"
	if code := getJSON(t, url, &m); code != 200 {
		t.Fatalf("status %d", code)
	}
	if m.Heading != "Lewin, Jeff L." || m.Works != 1 || m.Collaborators != 1 {
		t.Errorf("metrics = %+v", m)
	}
	if m.TopCollaborators[0].Heading != "Peng, Syd S." {
		t.Errorf("collaborators = %+v", m.TopCollaborators)
	}
	if m.Weighted >= 1 || m.Weighted <= 0 {
		t.Errorf("first-author weighted credit = %v, want in (0, 1)", m.Weighted)
	}
	if code := getJSON(t, ts.URL+"/authors/Nobody,%20Known/metrics", nil); code != 404 {
		t.Errorf("missing author status = %d", code)
	}
}

// TestServeLimitClamping exercises the shared clamp across handlers:
// negative and garbage limits fall back to the default, zero and huge
// values clamp to MaxLimit instead of going unbounded.
func TestServeLimitClamping(t *testing.T) {
	ts, _ := testServer(t)
	for _, q := range []string{"limit=-5", "limit=abc", "n=-1", "limit=0", "limit=999999999"} {
		var top []authorindex.AuthorMetrics
		if code := getJSON(t, ts.URL+"/rank?"+q, &top); code != 200 {
			t.Errorf("rank?%s status = %d", q, code)
		}
		if len(top) == 0 || len(top) > authorindex.MaxLimit {
			t.Errorf("rank?%s returned %d entries", q, len(top))
		}
		var entries []Entry
		if code := getJSON(t, ts.URL+"/authors?"+strings.ReplaceAll(q, "limit", "n"), &entries); code != 200 {
			t.Errorf("authors?%s status = %d", q, code)
		}
	}
}

func TestServeAddWork(t *testing.T) {
	ts, ix := testServer(t)
	body := `{"title":"Posted Work","citation":"90:1 (1988)","authors":["Poster, Hyper T."]}`
	resp, err := http.Post(ts.URL+"/works", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string]authorindex.WorkID
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if w, ok := ix.Get(out["id"]); !ok || w.Title != "Posted Work" {
		t.Errorf("posted work = %v,%v", w, ok)
	}
	// Invalid bodies.
	for _, bad := range []string{
		`not json`,
		`{"title":"x","citation":"nope","authors":["A, B."]}`,
		`{"title":"x","citation":"90:1 (1988)","authors":[]}`,
		`{"title":"","citation":"90:1 (1988)","authors":["A, B."]}`,
	} {
		resp, err := http.Post(ts.URL+"/works", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			t.Errorf("bad body accepted: %s", bad)
		}
	}
}

func TestServeAddWorksBatch(t *testing.T) {
	ts, ix := testServer(t)
	before := ix.Len()
	body := `[
		{"title":"Batched One","citation":"91:1 (1989)","authors":["Pipeline, Walter A."]},
		{"title":"Batched Two","citation":"91:2 (1989)","authors":["Pipeline, Walter A.","Commit, Grace"]},
		{"title":"Batched Three","citation":"91:3 (1989)","authors":["Commit, Grace"]}
	]`
	resp, err := http.Post(ts.URL+"/works:batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out map[string][]authorindex.WorkID
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	ids := out["ids"]
	if len(ids) != 3 {
		t.Fatalf("ids = %v", ids)
	}
	for i, want := range []string{"Batched One", "Batched Two", "Batched Three"} {
		if w, ok := ix.Get(ids[i]); !ok || w.Title != want {
			t.Errorf("ids[%d]: got %v,%v want %q", i, w, ok, want)
		}
	}
	if ix.Len() != before+3 {
		t.Errorf("Len = %d, want %d", ix.Len(), before+3)
	}
	if st := ix.Stats(); st.BatchesCommitted == 0 {
		t.Error("batch endpoint did not group-commit")
	}

	// One bad work rejects the whole batch, atomically.
	mid := ix.Len()
	bad := `[
		{"title":"Fine","citation":"91:4 (1989)","authors":["Pipeline, Walter A."]},
		{"title":"","citation":"91:5 (1989)","authors":["Pipeline, Walter A."]}
	]`
	resp, err = http.Post(ts.URL+"/works:batch", "application/json", strings.NewReader(bad))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusCreated {
		t.Error("batch with invalid work accepted")
	}
	if ix.Len() != mid {
		t.Errorf("failed batch changed Len: %d -> %d", mid, ix.Len())
	}

	// Empty and malformed bodies.
	for _, b := range []string{`[]`, `not json`, `{"title":"obj not array"}`} {
		resp, err := http.Post(ts.URL+"/works:batch", "application/json", strings.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusCreated {
			t.Errorf("bad batch body accepted: %s", b)
		}
	}
}

func TestServeGraphSummary(t *testing.T) {
	ts, _ := testServer(t)
	var s authorindex.GraphSummary
	if code := getJSON(t, ts.URL+"/graph", &s); code != 200 {
		t.Fatalf("status %d", code)
	}
	// Fixture: Cardi solo, Lewin+Peng shared, Filed solo.
	if s.Nodes != 4 || s.Edges != 1 || s.Components != 3 || s.LargestComponent != 2 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.TopCentral) == 0 {
		t.Error("no central authors in summary")
	}
}

func TestServeGraphPath(t *testing.T) {
	ts, _ := testServer(t)
	var p Path
	url := ts.URL + "/graph/path?from=Lewin,+Jeff+L.&to=Peng,+Syd+S."
	if code := getJSON(t, url, &p); code != 200 {
		t.Fatalf("status %d", code)
	}
	if p.Distance != 1 || len(p.Path) != 2 || p.Path[1] != "Peng, Syd S." {
		t.Errorf("path = %+v", p)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Lewin,+Jeff+L.&to=Cardi,+Vincent+P.", nil); code != 404 {
		t.Errorf("disconnected pair gave %d, want 404", code)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Lewin,+Jeff+L.", nil); code != 400 {
		t.Errorf("missing to gave %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/graph/path?from=Nobody,+X.&to=Peng,+Syd+S.", nil); code != 404 {
		t.Errorf("unknown heading gave %d, want 404", code)
	}
}

func TestServeGraphCentral(t *testing.T) {
	ts, _ := testServer(t)
	var cs []authorindex.CentralAuthor
	if code := getJSON(t, ts.URL+"/graph/central?limit=2", &cs); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(cs) != 2 {
		t.Fatalf("got %d central authors, want 2", len(cs))
	}
	// The collaborating pair outranks the isolated authors.
	for _, c := range cs {
		if c.Heading != "Lewin, Jeff L." && c.Heading != "Peng, Syd S." {
			t.Errorf("unexpected central author %q", c.Heading)
		}
	}
}

func TestServeRankByCentral(t *testing.T) {
	ts, _ := testServer(t)
	var ms []authorindex.AuthorMetrics
	if code := getJSON(t, ts.URL+"/rank?by=central&limit=1", &ms); code != 200 {
		t.Fatalf("status %d", code)
	}
	if len(ms) != 1 {
		t.Fatalf("rank returned %d entries", len(ms))
	}
	if h := ms[0].Heading; h != "Lewin, Jeff L." && h != "Peng, Syd S." {
		t.Errorf("top central = %q", h)
	}
}
