package httpapi

import (
	"encoding/json"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/trace"
)

// debugTraces serves the retained request traces, in the spirit of
// golang.org/x/net/trace: per op family, the N most recent and the N
// slowest span trees, each correlated with the access log by its
// X-Request-ID.
//
//	GET /debug/traces                     text, all families
//	GET /debug/traces?format=json         machine-readable snapshot
//	GET /debug/traces?family=GET+/search  filter by route substring
//	GET /debug/traces?min=50ms            only traces at least this slow
func (s *Server) debugTraces(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var minDur time.Duration
	if raw := q.Get("min"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil {
			httpErr(w, http.StatusBadRequest, "bad min duration: %v", err)
			return
		}
		minDur = d
	}
	snap := filterTraces(s.tracer.Snapshot(), q.Get("family"), minDur)

	if q.Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			httpErr(w, http.StatusInternalServerError, "%v", err)
		}
		return
	}

	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if len(snap) == 0 {
		io.WriteString(w, "no traces retained (filters too narrow, or no requests yet)\n")
		return
	}
	var b strings.Builder
	for _, fam := range snap {
		b.WriteString("=== ")
		b.WriteString(fam.Family)
		b.WriteString(" ===\n")
		writeTraceGroup(&b, "slowest", fam.Slowest)
		writeTraceGroup(&b, "recent", fam.Recent)
		b.WriteByte('\n')
	}
	io.WriteString(w, b.String())
}

func writeTraceGroup(b *strings.Builder, title string, traces []trace.TraceData) {
	if len(traces) == 0 {
		return
	}
	b.WriteString("-- ")
	b.WriteString(title)
	b.WriteString(" --\n")
	for i := range traces {
		td := &traces[i]
		b.WriteString(td.Start.Format("15:04:05.000"))
		b.WriteByte(' ')
		b.WriteString(time.Duration(td.DurNS).Round(time.Microsecond).String())
		if td.ID != "" {
			b.WriteString("  id=")
			b.WriteString(td.ID)
		}
		b.WriteByte('\n')
		td.Root.WriteText(b, 1)
	}
}

// filterTraces narrows a snapshot to families containing the (case-
// insensitive) substring and traces at least min long. Empty filters
// pass everything; families left with no traces are dropped.
func filterTraces(snap []trace.FamilySnapshot, family string, min time.Duration) []trace.FamilySnapshot {
	family = strings.ToLower(family)
	var out []trace.FamilySnapshot
	for _, fam := range snap {
		if family != "" && !strings.Contains(strings.ToLower(fam.Family), family) {
			continue
		}
		if min > 0 {
			fam.Recent = filterMin(fam.Recent, min)
			fam.Slowest = filterMin(fam.Slowest, min)
		}
		if len(fam.Recent) == 0 && len(fam.Slowest) == 0 {
			continue
		}
		out = append(out, fam)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Family < out[j].Family })
	return out
}

func filterMin(traces []trace.TraceData, min time.Duration) []trace.TraceData {
	var out []trace.TraceData
	for _, td := range traces {
		if time.Duration(td.DurNS) >= min {
			out = append(out, td)
		}
	}
	return out
}
