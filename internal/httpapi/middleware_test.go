package httpapi

import (
	"bytes"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	authorindex "repro"
	"repro/internal/obs"
)

func openIndex(t *testing.T) *authorindex.Index {
	t.Helper()
	ix, err := authorindex.Open("", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ix.Close() })
	return ix
}

// TestRequestIDGeneratedAndLogged: a request without an X-Request-ID
// gets one generated, echoed in the response header, and written into
// the structured access log; a client-supplied ID is propagated as-is.
func TestRequestIDGeneratedAndLogged(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewTextHandler(&syncWriter{w: &logBuf, mu: &mu}, nil))
	reg := obs.NewRegistry()
	ts := httptest.NewServer(New(openIndex(t), Config{Logger: logger, Registry: reg}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rid := resp.Header.Get(RequestIDHeader)
	if rid == "" {
		t.Fatal("no X-Request-ID in response")
	}
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, "request_id="+rid) {
		t.Errorf("access log lacks request_id=%s:\n%s", rid, logged)
	}
	if !strings.Contains(logged, "route=\"GET /healthz\"") {
		t.Errorf("access log lacks route pattern:\n%s", logged)
	}

	// Client-supplied IDs are honored.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(RequestIDHeader, "client-chose-this")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "client-chose-this" {
		t.Errorf("client request ID not propagated: %q", got)
	}

	// Two generated IDs differ.
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if rid2 := resp2.Header.Get(RequestIDHeader); rid2 == rid {
		t.Errorf("two requests got the same generated ID %q", rid)
	}
}

type syncWriter struct {
	w  io.Writer
	mu *sync.Mutex
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

// TestStatusCodesCountedPerRoute: 2xx, 4xx and 5xx land on the counter
// series of the route that served them, and unrouted paths land on the
// "unmatched" label.
func TestStatusCodesCountedPerRoute(t *testing.T) {
	ts, _, reg := testServerReg(t)

	get := func(path string) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	get("/works/1")         // 200 on GET /works/{id}
	get("/works/999")       // 404 on GET /works/{id}
	get("/works/abc")       // 400 on GET /works/{id}
	get("/no/such/path")    // 404, unmatched
	get("/search")          // 400 on GET /search (missing q)
	get("/search?q=mining") // 200 on GET /search

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`authdex_http_requests_total{route="GET /works/{id}",code="200"} 1`,
		`authdex_http_requests_total{route="GET /works/{id}",code="404"} 1`,
		`authdex_http_requests_total{route="GET /works/{id}",code="400"} 1`,
		`authdex_http_requests_total{route="unmatched",code="404"} 1`,
		`authdex_http_requests_total{route="GET /search",code="400"} 1`,
		`authdex_http_requests_total{route="GET /search",code="200"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	// Latency histograms exist per route too.
	if !strings.Contains(out, `authdex_http_request_duration_seconds_count{route="GET /works/{id}"} 3`) {
		t.Errorf("per-route duration count missing:\n%s", out)
	}
}

// TestInFlightGauge: the gauge reads 1 while a handler is blocked
// inside the middleware and 0 again once every request completes.
func TestInFlightGauge(t *testing.T) {
	ix := openIndex(t)
	reg := obs.NewRegistry()
	s := New(ix, Config{Registry: reg})
	s.Handler() // builds the per-route histogram map the middleware reads

	release := make(chan struct{})
	observed := make(chan int64, 1)
	blocked := s.telemetry(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		observed <- s.inflight.Value()
		<-release
	}))

	srv := httptest.NewServer(blocked)
	defer srv.Close()
	done := make(chan error, 1)
	go func() {
		resp, err := http.Get(srv.URL + "/slow")
		if resp != nil {
			resp.Body.Close()
		}
		done <- err
	}()
	if got := <-observed; got != 1 {
		t.Errorf("in-flight during request = %d, want 1", got)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.inflight.Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("in-flight stuck at %d after completion", s.inflight.Value())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestHealthzReadyz(t *testing.T) {
	ts, _, _ := testServerReg(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}
	// Without verify-on-boot, readiness is immediate.
	if code := getJSON(t, ts.URL+"/readyz", nil); code != 200 {
		t.Errorf("readyz = %d", code)
	}
}

func TestReadyzVerifyOnBoot(t *testing.T) {
	ix := openIndex(t)
	reg := obs.NewRegistry()
	s := New(ix, Config{Registry: reg, VerifyOnBoot: true})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Verify on an empty in-memory index is fast; poll until ready.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		code := resp.StatusCode
		resp.Body.Close()
		if code == 200 {
			break
		}
		if code != http.StatusServiceUnavailable {
			t.Fatalf("readyz = %d while verifying", code)
		}
		if time.Now().After(deadline) {
			t.Fatal("readyz never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDebugMetricsExposition: /debug/metrics serves the Prometheus
// content type and, after traffic, a healthy number of series — the
// request metrics, the op histograms, the Stats promotions and the
// process gauges.
func TestDebugMetricsExposition(t *testing.T) {
	ts, _, reg := testServerReg(t)
	for _, p := range []string{"/stats", "/search?q=mining", "/works/1", "/authors?prefix=le"} {
		resp, err := http.Get(ts.URL + p)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{
		"authdex_http_request_duration_seconds",
		"authdex_http_requests_total",
		"authdex_http_in_flight_requests",
		"authdex_op_duration_seconds",
		"authdex_queries_served_total",
		"authdex_works 3",
		"authdex_go_goroutines",
		"authdex_process_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
	if n := reg.SeriesCount(); n < 20 {
		t.Errorf("only %d series exposed, want >= 20:\n%s", n, out)
	}
}

// TestPprofGatedByDebug: pprof routes exist only with Config.Debug.
func TestPprofGatedByDebug(t *testing.T) {
	ix := openIndex(t)
	off := httptest.NewServer(New(ix, Config{Registry: obs.NewRegistry()}).Handler())
	defer off.Close()
	resp, err := http.Get(off.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without -debug = %d, want 404", resp.StatusCode)
	}

	on := httptest.NewServer(New(ix, Config{Registry: obs.NewRegistry(), Debug: true}).Handler())
	defer on.Close()
	resp, err = http.Get(on.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with -debug = %d, want 200", resp.StatusCode)
	}
}

// TestAccessLogStatus: the logged status matches what the client saw,
// including error paths.
func TestAccessLogStatus(t *testing.T) {
	var logBuf bytes.Buffer
	var mu sync.Mutex
	logger := slog.New(slog.NewJSONHandler(&syncWriter{w: &logBuf, mu: &mu}, nil))
	ix := openIndex(t)
	ts := httptest.NewServer(New(ix, Config{Logger: logger, Registry: obs.NewRegistry()}).Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/works/42")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	mu.Lock()
	logged := logBuf.String()
	mu.Unlock()
	if !strings.Contains(logged, `"status":404`) {
		t.Errorf("access log lacks 404 status: %s", logged)
	}
	if !strings.Contains(logged, `"route":"GET /works/{id}"`) {
		t.Errorf("access log lacks route: %s", logged)
	}
	if !strings.Contains(logged, `"path":"/works/42"`) {
		t.Errorf("access log lacks path: %s", logged)
	}
}
