package httpapi

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/trace"
)

const (
	// RequestIDHeader carries the request ID. Incoming values are
	// propagated (so a gateway's IDs survive into the access log);
	// absent ones are generated.
	RequestIDHeader = "X-Request-ID"

	reqDurationMetric = "authdex_http_request_duration_seconds"
	reqDurationHelp   = "HTTP request latency by route pattern."
	reqTotalMetric    = "authdex_http_requests_total"
	reqTotalHelp      = "HTTP requests served by route pattern and status code."

	// unmatchedRoute labels requests no registered pattern claimed
	// (404s from the mux, pprof routes).
	unmatchedRoute = "unmatched"

	// StatusClientClosedRequest is the nginx-convention status for a
	// request aborted because the client disconnected. It is counted
	// under the "canceled" label rather than "499" so dashboards can
	// tell load-shedding from real errors.
	StatusClientClosedRequest = 499
)

// routeKey carries a pointer to the matched route pattern through the
// request context: the per-route wrapper stamps it after the mux picks
// a handler, and the outer middleware reads it once the handler
// returns. A pointer, because the middleware allocates the slot before
// routing happens.
type routeKey struct{}

func stampRoute(r *http.Request, pattern string) {
	if p, ok := r.Context().Value(routeKey{}).(*string); ok {
		*p = pattern
	}
}

// statusWriter captures the status code and response size the handler
// produced, defaulting to 200 for handlers that never call WriteHeader.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

// Flush forwards streaming flushes (the render endpoints produce large
// bodies) when the underlying writer supports them.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// telemetry wraps the routed mux with the full request pipeline:
// request-ID injection, the in-flight gauge, per-route latency
// histograms and status-code counters, and one structured access-log
// record per request.
func (s *Server) telemetry(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rid := r.Header.Get(RequestIDHeader)
		if rid == "" {
			rid = s.newRequestID()
		}
		w.Header().Set(RequestIDHeader, rid)

		route := unmatchedRoute
		ctx := context.WithValue(r.Context(), routeKey{}, &route)
		// The root span of this request's trace: every layer below
		// attaches children through the context. The op family is only
		// known after routing, so it is stamped at Finish.
		ctx, tr := s.tracer.StartRoot(ctx, rid, r.Method+" "+r.URL.Path)
		r = r.WithContext(ctx)

		s.inflight.Inc()
		defer s.inflight.Dec()

		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if sw.code == 0 {
			sw.code = http.StatusOK
		}
		elapsed := time.Since(start)

		tr.Root().SetInt("status", int64(sw.code))
		tr.Finish(route)

		if h, ok := s.routes[route]; ok {
			h.Observe(elapsed)
		} else {
			s.reg.Histogram(reqDurationMetric, reqDurationHelp, "route", route).Observe(elapsed)
		}
		code := fmt.Sprint(sw.code)
		if sw.code == StatusClientClosedRequest {
			code = "canceled"
		}
		s.reg.Counter(reqTotalMetric, reqTotalHelp,
			"route", route, "code", code).Inc()

		s.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("request_id", rid),
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.String("route", route),
			slog.Int("status", sw.code),
			slog.Int64("bytes", sw.bytes),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}

// recovery turns a handler panic into a 500 instead of killing the
// connection (and, under http.Server, only that goroutine — leaving a
// half-written epoch of telemetry). It counts the panic, logs the
// stack, and force-retains the request's trace so /debug/traces holds
// the span tree of every request that blew up. It sits inside
// telemetry, so the access log and per-route metrics still record the
// 500.
func (s *Server) recovery(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				// The sentinel for "drop this connection on purpose";
				// net/http handles it quietly upstream.
				panic(rec)
			}
			s.panics.Inc()
			trace.FromContext(r.Context()).ForceSlowTrace()
			s.log.Error("panic recovered",
				"panic", fmt.Sprint(rec),
				"method", r.Method,
				"path", r.URL.Path,
				"stack", string(debug.Stack()))
			// Only answer if the handler hadn't started the response;
			// telemetry's statusWriter knows.
			if sw, ok := w.(*statusWriter); !ok || sw.code == 0 {
				http.Error(w, "internal server error", http.StatusInternalServerError)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// admission is the max-in-flight gate: a cheap atomic reservation that
// sheds load with 503 + Retry-After once cfg.MaxInFlight requests are
// already in the house. Operational endpoints bypass it — health
// probes and debug scrapes must answer precisely when the server is
// too busy to do anything else.
func (s *Server) admission(next http.Handler) http.Handler {
	limit := int64(s.cfg.MaxInFlight)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if limit > 0 && !operational(r.URL.Path) {
			if s.admitted.Add(1) > limit {
				s.admitted.Add(-1)
				s.shed.Inc()
				w.Header().Set("Retry-After", "1")
				httpErr(w, http.StatusServiceUnavailable,
					"server at capacity (%d requests in flight)", limit)
				return
			}
			defer s.admitted.Add(-1)
		}
		next.ServeHTTP(w, r)
	})
}

// operational marks the paths that skip the admission gate.
func operational(path string) bool {
	return path == "/healthz" || path == "/readyz" || strings.HasPrefix(path, "/debug/")
}

// newRequestID returns a process-unique request ID: a random per-server
// prefix plus a sequence number, cheap enough for the hot path (no
// syscall after the first call).
func (s *Server) newRequestID() string {
	return fmt.Sprintf("%s-%08x", s.ridPrefix(), s.reqSeq.Add(1))
}

func (s *Server) ridPrefix() string {
	s.ridOnce.Do(func() {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			// A time-derived prefix is a fine fallback for telemetry IDs.
			copy(b[:], fmt.Sprintf("%04x", time.Now().UnixNano()&0xffff))
		}
		s.ridSeed = hex.EncodeToString(b[:])
	})
	return s.ridSeed
}
