package query

import (
	"reflect"
	"testing"

	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/metrics"
)

// TestEngineFeedsMetrics proves the engine keeps its tracker in sync
// through adds, replacements and removals, and that the incremental
// state matches a recovery-path rebuild exactly.
func TestEngineFeedsMetrics(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 3, Works: 200, ZipfS: 1.1})
	e := New(collate.Default())
	for _, w := range works {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	// Replace one work (same ID, different authors) and remove a batch.
	repl := works[10].Clone()
	repl.Authors = repl.Authors[:1]
	if err := e.Add(repl); err != nil {
		t.Fatal(err)
	}
	for _, w := range works[50:90] {
		e.Remove(w.ID)
	}

	before := e.Metrics().TopAuthors(metrics.ByWeighted, 0)
	sum := e.Metrics().Summary()
	if sum.Works != e.Len() {
		t.Fatalf("metrics track %d works, engine %d", sum.Works, e.Len())
	}
	e.RebuildMetrics()
	after := e.Metrics().TopAuthors(metrics.ByWeighted, 0)
	if !reflect.DeepEqual(before, after) {
		t.Fatal("incremental metrics differ from rebuilt metrics")
	}

	// Scheme swap rebuilds under the new weighting and keeps totals.
	e.SetMetricsScheme(metrics.Fractional)
	if got := e.Metrics().Weighting(); got != metrics.Fractional {
		t.Fatalf("scheme = %v", got)
	}
	if s := e.Metrics().Summary(); s.Works != sum.Works || s.Postings != sum.Postings {
		t.Fatalf("summary changed across scheme swap: %+v vs %+v", s, sum)
	}
	// Swapping to the current scheme is a no-op.
	tr := e.Metrics()
	e.SetMetricsScheme(metrics.Fractional)
	if e.Metrics() != tr {
		t.Error("same-scheme swap replaced the tracker")
	}
}

func TestEngineAuthorMetricsLookup(t *testing.T) {
	e := New(collate.Default())
	works := gen.Generate(gen.Config{Seed: 5, Works: 30})
	for _, w := range works {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	heading := works[0].Authors[0].Display()
	m, ok := e.AuthorMetrics(heading)
	if !ok || m.Heading != heading || m.Works < 1 {
		t.Fatalf("AuthorMetrics(%q) = %+v, %v", heading, m, ok)
	}
	if _, ok := e.AuthorMetrics("Nobody, Known"); ok {
		t.Error("lookup of unknown heading succeeded")
	}
	if _, ok := e.AuthorMetrics(""); ok {
		t.Error("lookup of empty heading succeeded")
	}
}

func TestClampLimit(t *testing.T) {
	tests := []struct{ n, def, want int }{
		{-1, 20, 20},
		{-100, 7, 7},
		{0, 20, MaxLimit},
		{1, 20, 1},
		{20, 20, 20},
		{MaxLimit, 20, MaxLimit},
		{MaxLimit + 1, 20, MaxLimit},
		{1 << 40, 20, MaxLimit},
	}
	for _, tc := range tests {
		if got := ClampLimit(tc.n, tc.def); got != tc.want {
			t.Errorf("ClampLimit(%d, %d) = %d, want %d", tc.n, tc.def, got, tc.want)
		}
	}
}
