// Package query combines the author index, the inverted title index and
// secondary year/volume indexes into one lookup engine: exact and prefix
// author lookups, boolean title search, and citation-range scans.
package query

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inverted"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/names"
)

// MaxLimit bounds every caller-supplied result limit so one request
// cannot ask for an unbounded result set.
const MaxLimit = 10_000

// ClampLimit normalizes a caller-supplied result limit, shared by the
// CLI and HTTP layers so both clamp identically: negative values fall
// back to def, zero ("all") and values above MaxLimit clamp to
// MaxLimit.
func ClampLimit(n, def int) int {
	switch {
	case n < 0:
		return def
	case n == 0 || n > MaxLimit:
		return MaxLimit
	default:
		return n
	}
}

// Engine owns every in-memory index over a corpus. It is not safe for
// concurrent mutation; the public facade serializes access.
type Engine struct {
	idx   *core.Index
	inv   *inverted.Index
	works map[model.WorkID]*model.Work
	// byYear and byVolume map fixed-width big-endian (key, id) pairs to
	// the work ID for ordered range scans.
	byYear   *btree.Tree[model.WorkID]
	byVolume *btree.Tree[model.WorkID]
	// bySubject maps collation keys of subject headings to their display
	// form and posting list, for subject lookups and enumeration.
	bySubject *btree.Tree[*subjectPosting]
	// met maintains per-author bibliometrics incrementally; every Add
	// and Remove feeds it. Behind the Tracker interface so later layers
	// (caching, sharding) can swap the implementation.
	met metrics.Tracker
	// gr maintains the coauthorship network incrementally; every Add and
	// Remove feeds it alongside the metrics tracker.
	gr   *graph.Graph
	coll collate.Options
}

type subjectPosting struct {
	display string
	ids     []model.WorkID // sorted
}

// New returns an empty engine with the given collation options and the
// default (harmonic) metrics scheme.
func New(opts collate.Options) *Engine {
	return NewWithScheme(opts, metrics.Harmonic)
}

// NewWithScheme returns an empty engine whose metrics tracker divides
// authorship credit under the given scheme.
func NewWithScheme(opts collate.Options, scheme metrics.Scheme) *Engine {
	return &Engine{
		idx:       core.New(opts),
		inv:       inverted.New(),
		works:     make(map[model.WorkID]*model.Work),
		byYear:    btree.New[model.WorkID](),
		byVolume:  btree.New[model.WorkID](),
		bySubject: btree.New[*subjectPosting](),
		met:       metrics.NewEngine(scheme),
		gr:        graph.New(0),
		coll:      opts,
	}
}

// Index exposes the underlying author index (for rendering and stats).
func (e *Engine) Index() *core.Index { return e.idx }

// Len returns the number of indexed works.
func (e *Engine) Len() int { return len(e.works) }

// Add indexes w everywhere. Re-adding an existing ID replaces the old
// version atomically (remove + add).
func (e *Engine) Add(w *model.Work) error {
	if err := w.Validate(); err != nil {
		return err
	}
	if w.ID == 0 {
		return fmt.Errorf("query: work %q has no ID", w.Title)
	}
	if _, exists := e.works[w.ID]; exists {
		e.Remove(w.ID)
	}
	cp := w.Clone()
	if err := e.idx.Add(cp); err != nil {
		return err
	}
	e.inv.Add(cp.ID, cp.Title)
	e.byYear.Set(scopedKey(cp.Citation.Year, cp.ID), cp.ID)
	e.byVolume.Set(scopedKey(cp.Citation.Volume, cp.ID), cp.ID)
	for _, s := range cp.Subjects {
		key := collate.KeyString(s, e.coll)
		p, ok := e.bySubject.Get(key)
		if !ok {
			p = &subjectPosting{display: s}
			e.bySubject.Set(key, p)
		}
		p.insert(cp.ID)
	}
	e.met.Add(cp)
	e.gr.Add(cp)
	e.works[cp.ID] = cp
	return nil
}

// Remove un-indexes the work with the given ID, returning it.
func (e *Engine) Remove(id model.WorkID) (*model.Work, bool) {
	w, ok := e.works[id]
	if !ok {
		return nil, false
	}
	e.idx.Remove(w)
	e.inv.Remove(id, w.Title)
	e.byYear.Delete(scopedKey(w.Citation.Year, id))
	e.byVolume.Delete(scopedKey(w.Citation.Volume, id))
	for _, s := range w.Subjects {
		key := collate.KeyString(s, e.coll)
		if p, ok := e.bySubject.Get(key); ok {
			p.remove(id)
			if len(p.ids) == 0 {
				e.bySubject.Delete(key)
			}
		}
	}
	e.met.Remove(w)
	e.gr.Remove(w)
	delete(e.works, id)
	return w.Clone(), true
}

func (p *subjectPosting) insert(id model.WorkID) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		return
	}
	p.ids = append(p.ids, 0)
	copy(p.ids[i+1:], p.ids[i:])
	p.ids[i] = id
}

func (p *subjectPosting) remove(id model.WorkID) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		p.ids = append(p.ids[:i], p.ids[i+1:]...)
	}
}

// Subjects returns every subject heading in collation order, with the
// number of works filed under each.
func (e *Engine) Subjects() []SubjectCount {
	var out []SubjectCount
	e.bySubject.Ascend(func(_ []byte, p *subjectPosting) bool {
		out = append(out, SubjectCount{Subject: p.display, Works: len(p.ids)})
		return true
	})
	return out
}

// SubjectCount pairs a subject heading with its work count.
type SubjectCount struct {
	Subject string
	Works   int
}

// BySubject returns the works filed under a subject heading (matched
// under the engine's collation: case- and diacritic-insensitive),
// citation order, capped at limit (<=0: no cap).
func (e *Engine) BySubject(subject string, limit int) []*model.Work {
	p, ok := e.bySubject.Get(collate.KeyString(subject, e.coll))
	if !ok {
		// The collation key includes original bytes at lower tiers, so an
		// exact Get only matches identical spellings; fall back to a scan
		// of the primary tier for case-insensitive matching.
		prefix := collate.PrimaryPrefix(subject, e.coll)
		e.bySubject.AscendPrefix(prefix, func(k []byte, cand *subjectPosting) bool {
			if bytes.Equal(collate.PrimaryPrefix(cand.display, e.coll), prefix) {
				p, ok = cand, true
				return false
			}
			return true
		})
		if !ok {
			return nil
		}
	}
	return e.resolve(append([]model.WorkID(nil), p.ids...), limit)
}

// AllWorks returns copies of every indexed work, in ID order.
func (e *Engine) AllWorks() []*model.Work {
	out := make([]*model.Work, 0, len(e.works))
	for _, w := range e.works {
		out = append(out, w.Clone())
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Work returns a copy of the work with the given ID.
func (e *Engine) Work(id model.WorkID) (*model.Work, bool) {
	w, ok := e.works[id]
	if !ok {
		return nil, false
	}
	return w.Clone(), true
}

// AuthorExact looks up a heading by its index-order string, e.g.
// "Lewin, Jeff L." or "Abdalla, Tarek F.*".
func (e *Engine) AuthorExact(heading string) (*core.Entry, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return nil, false
	}
	return e.idx.Lookup(a)
}

// AuthorPrefix returns up to limit entries whose heading starts with the
// folded prefix, in print order. limit <= 0 means no limit.
func (e *Engine) AuthorPrefix(prefix string, limit int) []*core.Entry {
	var out []*core.Entry
	e.idx.AscendPrefix(prefix, func(entry *core.Entry) bool {
		a := entry.Author
		got, ok := e.idx.Lookup(a) // deep copy for the caller
		if ok {
			out = append(out, got)
		}
		return limit <= 0 || len(out) < limit
	})
	return out
}

// AuthorPage returns up to limit entries strictly after the heading
// `after` (empty: from the start), in print order — a stable cursor for
// paging through the whole index. The next page's cursor is the last
// returned entry's Display() string.
func (e *Engine) AuthorPage(after string, limit int) []*core.Entry {
	var start model.Author
	if after != "" {
		a, err := names.Parse(after)
		if err != nil {
			return nil
		}
		start = a
	}
	if limit <= 0 {
		limit = 100
	}
	var out []*core.Entry
	e.idx.AscendAfter(start, func(entry *core.Entry) bool {
		got, ok := e.idx.Lookup(entry.Author)
		if ok {
			out = append(out, got)
		}
		return len(out) < limit
	})
	return out
}

// TitleSearch evaluates a boolean title query ("surface mining",
// "coal or gas", "mining -surface", "reclam*") and returns matching
// works in citation order, capped at limit (<=0: no cap).
func (e *Engine) TitleSearch(q string, limit int) []*model.Work {
	ids := e.inv.Search(q)
	return e.resolve(ids, limit)
}

// YearRange returns works published in [from, to] (inclusive), in
// citation order, capped at limit (<=0: no cap).
func (e *Engine) YearRange(from, to int, limit int) []*model.Work {
	if from > to {
		return nil
	}
	var ids []model.WorkID
	e.byYear.AscendRange(scopedKeyMin(from), scopedKeyMin(to+1), func(_ []byte, id model.WorkID) bool {
		ids = append(ids, id)
		return true
	})
	return e.resolve(ids, limit)
}

// Volume returns every work in the given volume, in citation order.
func (e *Engine) Volume(v int, limit int) []*model.Work {
	var ids []model.WorkID
	e.byVolume.AscendRange(scopedKeyMin(v), scopedKeyMin(v+1), func(_ []byte, id model.WorkID) bool {
		ids = append(ids, id)
		return true
	})
	return e.resolve(ids, limit)
}

// Metrics exposes the bibliometrics tracker (for stats and rendering).
func (e *Engine) Metrics() metrics.Tracker { return e.met }

// AuthorMetrics returns the bibliometrics snapshot for one heading
// given in index-order form, e.g. "Lewin, Jeff L.".
func (e *Engine) AuthorMetrics(heading string) (metrics.AuthorMetrics, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return metrics.AuthorMetrics{}, false
	}
	return e.met.Author(a.Display())
}

// TopAuthors returns up to limit author snapshots ranked by the given
// key, best first. ByCentrality is resolved against the coauthorship
// graph (the metrics tracker has no network view); every other key goes
// straight to the tracker.
func (e *Engine) TopAuthors(by metrics.RankKey, limit int) []metrics.AuthorMetrics {
	limit = ClampLimit(limit, 10)
	if by == metrics.ByCentrality {
		central := e.gr.TopCentral(limit)
		out := make([]metrics.AuthorMetrics, 0, len(central))
		for _, c := range central {
			if m, ok := e.met.Author(c.Heading); ok {
				out = append(out, m)
			}
		}
		return out
	}
	return e.met.TopAuthors(by, limit)
}

// Graph exposes the coauthorship network (for stats, rendering and the
// graph query surfaces).
func (e *Engine) Graph() *graph.Graph { return e.gr }

// CollaborationPath returns the shortest coauthorship chain between two
// headings given in index-order form, endpoints included. false when
// either heading is unknown or they are in different components.
func (e *Engine) CollaborationPath(from, to string) ([]string, bool) {
	fa, err := names.Parse(from)
	if err != nil {
		return nil, false
	}
	ta, err := names.Parse(to)
	if err != nil {
		return nil, false
	}
	return e.gr.Path(fa.Display(), ta.Display())
}

// Centrality returns a heading's PageRank score in the coauthorship
// network.
func (e *Engine) Centrality(heading string) (float64, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return 0, false
	}
	return e.gr.Centrality(a.Display())
}

// GraphConsistent reports whether the incremental coauthorship graph is
// byte-identical to one rebuilt from scratch over the indexed corpus.
// It reads the corpus in place (graph construction retains nothing), so
// verification costs no work copies.
func (e *Engine) GraphConsistent() bool {
	fresh := graph.New(e.gr.Damping())
	for _, w := range e.works {
		fresh.Add(w)
	}
	return fresh.Fingerprint() == e.gr.Fingerprint()
}

// RebuildGraph discards the incremental graph state and recomputes it
// from the indexed corpus — the recovery path when incremental state is
// suspect.
func (e *Engine) RebuildGraph() {
	works := make([]*model.Work, 0, len(e.works))
	for _, w := range e.works {
		works = append(works, w)
	}
	e.gr.Rebuild(works)
}

// SetMetricsScheme swaps the credit-weighting scheme, rebuilding the
// tracker from the corpus (the recovery path, O(corpus)).
func (e *Engine) SetMetricsScheme(scheme metrics.Scheme) {
	if e.met.Weighting() == scheme {
		return
	}
	e.met = metrics.NewEngine(scheme)
	for _, w := range e.works {
		e.met.Add(w)
	}
}

// RebuildMetrics discards the incremental metrics state and recomputes
// it from the indexed corpus.
func (e *Engine) RebuildMetrics() {
	works := make([]*model.Work, 0, len(e.works))
	for _, w := range e.works {
		works = append(works, w)
	}
	e.met.Rebuild(works)
}

// Stats aggregates counters across all indexes.
type Stats struct {
	core.Stats
	Terms int // distinct title terms in the inverted index
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	return Stats{Stats: e.idx.Stats(), Terms: e.inv.Terms()}
}

// resolve maps IDs to work copies sorted by citation, then title, then ID.
func (e *Engine) resolve(ids []model.WorkID, limit int) []*model.Work {
	out := make([]*model.Work, 0, len(ids))
	for _, id := range ids {
		if w, ok := e.works[id]; ok {
			out = append(out, w.Clone())
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if c := out[i].Citation.Compare(out[j].Citation); c != 0 {
			return c < 0
		}
		if out[i].Title != out[j].Title {
			return out[i].Title < out[j].Title
		}
		return out[i].ID < out[j].ID
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// scopedKey packs (scope, id) into a fixed-width big-endian key so that
// byte order equals numeric order.
func scopedKey(scope int, id model.WorkID) []byte {
	var k [12]byte
	binary.BigEndian.PutUint32(k[:4], uint32(scope))
	binary.BigEndian.PutUint64(k[4:], uint64(id))
	return k[:]
}

// scopedKeyMin is the smallest key with the given scope.
func scopedKeyMin(scope int) []byte {
	var k [12]byte
	binary.BigEndian.PutUint32(k[:4], uint32(scope))
	return k[:]
}
