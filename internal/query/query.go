// Package query combines the author index, the inverted title index and
// secondary year/volume indexes into one lookup engine: exact and prefix
// author lookups, boolean title search, and citation-range scans.
//
// The read path is allocation-light by design: every work gets a
// precomputed citation sort key at Add time, the secondary indexes are
// keyed on it so range scans stream out already in citation order, and
// query methods come in two flavors — the classic clone-returning form,
// and zero-copy *View variants that return live references so callers
// (the public facade) can move deep-copy work outside their lock.
package query

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/btree"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inverted"
	"repro/internal/metrics"
	"repro/internal/model"
	"repro/internal/names"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Index-mutation latency on the process-wide registry: what one work
// costs to file (or replace, or unfile) across all six indexes.
const mutHelp = "Latency of engine index mutations across all indexes."

var (
	mutAdd      = obs.Default.Histogram("authdex_index_mutation_duration_seconds", mutHelp, "op", "add")
	mutAddBatch = obs.Default.Histogram("authdex_index_mutation_duration_seconds", mutHelp, "op", "add_batch")
	mutRemove   = obs.Default.Histogram("authdex_index_mutation_duration_seconds", mutHelp, "op", "remove")
)

// loadPhase times one named phase of the LoadAll bulk build, so a slow
// cold start can be attributed to a specific index rather than guessed
// at from the total.
func loadPhase(phase string) *obs.Histogram {
	return obs.Default.Histogram("authdex_load_phase_duration_seconds",
		"Latency of LoadAll bulk-load phases.", "phase", phase)
}

// MaxLimit bounds every caller-supplied result limit so one request
// cannot ask for an unbounded result set.
const MaxLimit = 10_000

// ClampLimit normalizes a caller-supplied result limit, shared by the
// CLI and HTTP layers so both clamp identically: negative values fall
// back to def, zero ("all") and values above MaxLimit clamp to
// MaxLimit.
func ClampLimit(n, def int) int {
	switch {
	case n < 0:
		return def
	case n == 0 || n > MaxLimit:
		return MaxLimit
	default:
		return n
	}
}

// Engine owns every in-memory index over a corpus. Mutation requires
// external serialization (the public facade's write lock), but the
// corpus indexes follow a copy-on-write discipline: Clone is O(1), a
// mutation on one engine path-copies only the index nodes it touches,
// and filed values (*workEntry works, postings lists, author entries)
// are never edited in place. A cloned engine that is no longer mutated
// is therefore a frozen snapshot that any number of readers may use
// with no lock at all.
//
// The two trackers (met, gr) are the exception: they are live mutable
// structures shared across clones, guarded by trkMu — writers hold it
// only for the µs-scale incremental update, never across I/O, and the
// tracker read surfaces take the read side. Snapshot consistency is
// defined over the corpus indexes; tracker reads are current-state.
type Engine struct {
	idx *core.Index
	inv *inverted.Index
	// byID keys works on the big-endian work ID: point lookups descend
	// the tree, and a full ascent is the corpus in ID order.
	byID *btree.Tree[*workEntry]
	// byYear keys works on year ‖ citation key: a one-year scan streams
	// out already in citation order, and a multi-year scan is a
	// concatenation of citation-ordered runs.
	byYear *btree.Tree[*workEntry]
	// byCitation keys works on the citation key itself. The key leads
	// with the volume, so a per-volume scan is a prefix range that is
	// already in citation order — and a full ascent is the whole corpus
	// in citation order.
	byCitation *btree.Tree[*workEntry]
	// bySubject maps collation keys of subject headings to their display
	// form and posting list, for subject lookups and enumeration.
	bySubject *btree.Tree[*subjectPosting]
	// met maintains per-author bibliometrics incrementally; every Add
	// and Remove feeds it. Behind the Tracker interface so later layers
	// (caching, sharding) can swap the implementation. Shared across
	// clones; guarded by trkMu.
	met metrics.Tracker
	// gr maintains the coauthorship network incrementally; every Add and
	// Remove feeds it alongside the metrics tracker. Shared across
	// clones; guarded by trkMu.
	gr *graph.Graph
	// trkMu guards met and gr: mutations hold the write side for the
	// incremental update only; lock-free snapshot readers that consult
	// the trackers hold the read side. Shared across clones.
	trkMu *sync.RWMutex
	coll  collate.Options
	// qs is shared across clones so read-path counters accumulate
	// globally no matter which snapshot served the query.
	qs *queryCounters
	// arena tracks the bulk-load slab the engine's entries live in:
	// a removed work stays reachable through the shared slab until
	// CompactArena copies the survivors out. Shared by pointer across
	// clones (the slab is shared too), so the dead-slot count keeps
	// accumulating as the head engine is cloned per commit;
	// CompactArena installs a fresh one on the clone it runs against.
	// Nil when the engine was built by incremental Adds only.
	arena *arenaInfo
}

// Clone returns an O(1) copy-on-write snapshot of the engine: every
// corpus index shares its nodes with the original until one side
// mutates, and the trackers, counters and tracker lock are shared
// outright. The caller mutates the clone (under its write lock) and
// publishes it; the original — and every previously published clone —
// keeps a frozen, internally consistent corpus view.
func (e *Engine) Clone() *Engine {
	cp := *e
	cp.idx = e.idx.Clone()
	cp.inv = e.inv.Clone()
	cp.byID = e.byID.Clone()
	cp.byYear = e.byYear.Clone()
	cp.byCitation = e.byCitation.Clone()
	cp.bySubject = e.bySubject.Clone()
	return &cp
}

// workEntry is what the engine stores per work: the (immutable) work
// itself plus everything derived from it that Remove and the ordered
// read path would otherwise recompute per query.
type workEntry struct {
	w *model.Work
	// key is citationKey(w), computed once at Add. All ordered reads
	// compare these keys with bytes.Compare instead of calling
	// Citation.Compare and comparing titles per sort step.
	key []byte
	// subjKeys caches collate.KeyString for each of w.Subjects, so
	// Remove does not pay for collation keys Add already built.
	subjKeys [][]byte
	// inArena marks entries allocated in a bulk-load slab; Remove
	// counts them against the engine's arenaInfo so delete-heavy
	// workloads know when compaction pays.
	inArena bool
}

// arenaInfo is the occupancy ledger of one bulk-load slab: total slots
// and slots whose works have been removed but stay reachable while any
// slab sibling survives. dead is atomic because clones sharing the
// ledger publish concurrently with gauge reads; it may overcount by
// removals on clones that were later discarded (failed commits), which
// can only make compaction run early, never late.
type arenaInfo struct {
	total int
	dead  atomic.Int64
}

// ArenaCompactRatio is the dead-slot ratio at which the facade's
// delete paths trigger CompactArena on the writer clone.
const ArenaCompactRatio = 0.5

type subjectPosting struct {
	display string
	// refs is sorted by citation key, so subject lookups stream out
	// pre-ordered and never sort.
	refs []*workEntry
}

// New returns an empty engine with the given collation options and the
// default (harmonic) metrics scheme.
func New(opts collate.Options) *Engine {
	return NewWithScheme(opts, metrics.Harmonic)
}

// NewWithScheme returns an empty engine whose metrics tracker divides
// authorship credit under the given scheme.
func NewWithScheme(opts collate.Options, scheme metrics.Scheme) *Engine {
	return &Engine{
		idx:        core.New(opts),
		inv:        inverted.New(),
		byID:       btree.New[*workEntry](),
		byYear:     btree.New[*workEntry](),
		byCitation: btree.New[*workEntry](),
		bySubject:  btree.New[*subjectPosting](),
		met:        metrics.NewEngine(scheme),
		gr:         graph.New(0),
		trkMu:      &sync.RWMutex{},
		coll:       opts,
		qs:         &queryCounters{},
	}
}

// Index exposes the underlying author index (for rendering and stats).
func (e *Engine) Index() *core.Index { return e.idx }

// Len returns the number of indexed works.
func (e *Engine) Len() int { return e.byID.Len() }

// Add indexes w everywhere. Re-adding an existing ID replaces the old
// version atomically (remove + add).
func (e *Engine) Add(w *model.Work) error {
	defer mutAdd.Since(time.Now())
	if err := w.Validate(); err != nil {
		return err
	}
	if w.ID == 0 {
		return fmt.Errorf("query: work %q has no ID", w.Title)
	}
	if _, exists := e.byID.Get(idKey(w.ID)); exists {
		e.Remove(w.ID)
	}
	cp := w.Clone()
	if err := e.idx.Add(cp); err != nil {
		return err
	}
	e.inv.Add(cp.ID, cp.Title)
	we := &workEntry{w: cp, key: citationKey(cp)}
	e.byYear.Set(yearKey(cp.Citation.Year, we.key), we)
	e.byCitation.Set(we.key, we)
	if len(cp.Subjects) > 0 {
		we.subjKeys = make([][]byte, len(cp.Subjects))
	}
	for i, s := range cp.Subjects {
		key := collate.KeyString(s, e.coll)
		we.subjKeys[i] = key
		if p, ok := e.bySubject.Get(key); ok {
			if np, changed := p.withRef(we); changed {
				e.bySubject.Set(key, np)
			}
		} else {
			e.bySubject.Set(key, &subjectPosting{display: s, refs: []*workEntry{we}})
		}
	}
	e.trkMu.Lock()
	e.met.Add(cp)
	e.gr.Add(cp)
	e.trkMu.Unlock()
	e.byID.Set(idKey(cp.ID), we)
	return nil
}

// AddBatch indexes a batch of works in one pass, amortizing the
// per-work overhead Add cannot avoid: subject postings take unsorted
// appends and are key-sorted once per touched posting instead of paying
// one binary-search insertion per work, and the metrics, graph,
// inverted and citation-key indexes are all fed inside a single loop.
// Duplicate IDs within the batch behave like sequential Adds (the last
// occurrence wins); IDs already indexed are replaced.
//
// Every work is validated before anything is touched, and no mutation
// after that point can fail, so an invalid work anywhere in the batch
// leaves the engine byte-identical to its pre-batch state.
func (e *Engine) AddBatch(works []*model.Work) error {
	if len(works) == 0 {
		return nil
	}
	defer mutAddBatch.Since(time.Now())
	for _, w := range works {
		if err := w.Validate(); err != nil {
			return err
		}
		if w.ID == 0 {
			return fmt.Errorf("query: work %q has no ID", w.Title)
		}
	}
	// Sequential-Add semantics for duplicate IDs: only the last
	// occurrence survives, so index exactly that one.
	effective := works
	if hasDuplicateIDs(works) {
		last := make(map[model.WorkID]int, len(works))
		for i, w := range works {
			last[w.ID] = i
		}
		effective = make([]*model.Work, 0, len(last))
		for i, w := range works {
			if last[w.ID] == i {
				effective = append(effective, w)
			}
		}
	}
	// Replacements first, so the batch loop below only ever inserts.
	// Keep what was removed so the (unreachable) failure path below can
	// reinstate it.
	var replaced []*model.Work
	for _, w := range effective {
		if _, exists := e.byID.Get(idKey(w.ID)); exists {
			if old, ok := e.Remove(w.ID); ok {
				replaced = append(replaced, old)
			}
		}
	}
	// Batch-touched postings are accumulated in private copies (first
	// touch copies the filed posting, or starts a fresh one) that take
	// unsorted appends, then are key-sorted and filed once at the end —
	// the filed postings themselves are never mutated, so snapshot
	// readers iterating them stay undisturbed.
	touched := make(map[string]*subjectPosting)
	var added []model.WorkID
	for _, w := range effective {
		cp := w.Clone()
		if err := e.idx.Add(cp); err != nil {
			// Unreachable: Add only rejects what the validation pass
			// already accepted. Unwind anyway so the atomicity contract
			// holds even if a new failure mode appears: discard the
			// private posting copies (never filed), remove this batch's
			// works, reinstate the replaced versions (previously indexed,
			// so re-adding cannot fail).
			for _, id := range added {
				e.Remove(id)
			}
			for _, old := range replaced {
				e.Add(old)
			}
			return err
		}
		e.inv.Add(cp.ID, cp.Title)
		we := &workEntry{w: cp, key: citationKey(cp)}
		e.byYear.Set(yearKey(cp.Citation.Year, we.key), we)
		e.byCitation.Set(we.key, we)
		if len(cp.Subjects) > 0 {
			we.subjKeys = make([][]byte, len(cp.Subjects))
		}
		for i, s := range cp.Subjects {
			key := collate.KeyString(s, e.coll)
			we.subjKeys[i] = key
			p, ok := touched[string(key)]
			if !ok {
				if filed, inTree := e.bySubject.Get(key); inTree {
					p = &subjectPosting{display: filed.display,
						refs: append(make([]*workEntry, 0, len(filed.refs)+1), filed.refs...)}
				} else {
					p = &subjectPosting{display: s}
				}
				touched[string(key)] = p
			}
			p.refs = append(p.refs, we) // private copy; key-sorted below
		}
		e.trkMu.Lock()
		e.met.Add(cp)
		e.gr.Add(cp)
		e.trkMu.Unlock()
		e.byID.Set(idKey(cp.ID), we)
		added = append(added, cp.ID)
	}
	for k, p := range touched {
		p.restore()
		e.bySubject.Set([]byte(k), p)
	}
	return nil
}

// LoadAll bulk-loads a complete corpus into an empty engine — the cold
// start path Open uses instead of replaying the store one Add at a
// time. Every work is validated up front, citation sort keys are
// computed and sorted once, and each index is built bottom-up from the
// sorted corpus (btree.BulkLoad for the author, year, citation and
// subject trees; one sort per subject posting; the inverted index's map
// accumulator) while the metrics tracker and the coauthorship graph —
// both whole-corpus recomputations by definition — rebuild on parallel
// goroutines. The result is indistinguishable from Add-ing every work
// to a fresh engine, at a fraction of the cost.
//
// Works must carry unique non-zero IDs. Unlike Add, LoadAll retains
// the given works instead of cloning them: callers hand them over as
// shared read-only records (the store and the engine both guarantee a
// work is never mutated in place) and must not modify them afterwards.
// Any error leaves the engine empty and usable.
func (e *Engine) LoadAll(works []*model.Work) error {
	return e.LoadAllCtx(context.Background(), works)
}

// LoadAllCtx is LoadAll carrying a trace context: the load is one
// "engine.load_all" span with a child per build phase, including one
// per parallel goroutine — the span tree shows which index dominated a
// slow cold start. The parallel children are attached and ended on
// their own goroutines; wg.Wait orders every child End before the
// parent's, keeping the tree well-formed.
func (e *Engine) LoadAllCtx(ctx context.Context, works []*model.Work) error {
	return e.loadAll(ctx, works, true)
}

// LoadCorpus is LoadAll minus the tracker rebuild: it loads one
// shard's partition of the corpus into a peer engine whose metrics
// tracker and coauthorship graph are shared with every other shard.
// Rebuilding those per partition would clobber the other shards'
// contributions, so the shard coordinator loads every partition first
// and then calls RebuildTrackers once with the full corpus.
func (e *Engine) LoadCorpus(ctx context.Context, works []*model.Work) error {
	return e.loadAll(ctx, works, false)
}

func (e *Engine) loadAll(ctx context.Context, works []*model.Work, withTrackers bool) error {
	if e.byID.Len() > 0 || e.idx.Len() > 0 {
		// idx.Len counts headings, so see-also-only entries (a
		// cross-reference recorded before any work) block the load too
		// rather than being silently discarded with the replaced index.
		return fmt.Errorf("query: bulk load into an engine already holding %d works, %d headings",
			e.byID.Len(), e.idx.Len())
	}
	if len(works) == 0 {
		return nil
	}
	defer loadPhase("total").Since(time.Now())
	_, load := trace.StartSpan(ctx, "engine.load_all")
	load.SetInt("works", int64(len(works)))
	defer load.End()
	// A bulk load's entire job is growing a large live heap; garbage
	// collection during it re-marks that growing live set over and over
	// for nothing, so relax the pacer for the duration (restored when
	// the last concurrent load finishes). Peak memory during a big cold
	// start rises accordingly.
	if len(works) >= 10_000 {
		defer relaxGC()()
	}
	// Per-work validation is core.Load's job below (it runs the same
	// checks this engine's Add would); the only cross-work invariant is
	// ID uniqueness. Citation-key computation is per-work independent
	// and fans out across cores.
	validateStart := time.Now()
	validateSpan := load.StartChild("load.validate")
	seen := make(map[model.WorkID]struct{}, len(works))
	for _, w := range works {
		if w.ID == 0 {
			validateSpan.End()
			return fmt.Errorf("query: work %q has no ID", w.Title)
		}
		if _, dup := seen[w.ID]; dup {
			validateSpan.End()
			return fmt.Errorf("query: duplicate work ID %d in bulk load", w.ID)
		}
		seen[w.ID] = struct{}{}
	}
	validateSpan.End()
	loadPhase("validate").Since(validateStart)
	// One arena allocation for every entry: the structs are tiny, live
	// together for the index's whole life, and number in the corpus size.
	keysStart := time.Now()
	keysSpan := load.StartChild("load.sort_keys")
	arena := make([]workEntry, len(works))
	entries := make([]*workEntry, len(works))
	if err := parallel.Ranges(len(works), func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			arena[i] = workEntry{w: works[i], key: citationKey(works[i]), inArena: true}
			entries[i] = &arena[i]
		}
		return nil
	}); err != nil {
		keysSpan.End()
		return err
	}
	// One citation-key sort: every ordered index below derives from this
	// pass instead of paying a per-work tree descent.
	sorted := append(make(byCitKey, 0, len(entries)), entries...)
	sort.Sort(sorted)
	keysSpan.End()
	loadPhase("sort_keys").Since(keysStart)

	// The index builds run concurrently: the author index (the most
	// expensive — it clones one work per posting), the inverted title
	// index, the ordered trees, the subject postings, and the two
	// whole-corpus trackers. Each build is independent and writes only
	// its own slot; errors (all unreachable after the validation pass
	// above, since it mirrors every builder's checks) propagate and
	// leave the engine empty.
	var (
		wg         sync.WaitGroup
		idx        *core.Index
		inv        *inverted.Index
		byID       *btree.Tree[*workEntry]
		byYear     *btree.Tree[*workEntry]
		byCitation *btree.Tree[*workEntry]
		bySubject  *btree.Tree[*subjectPosting]
		errs       [5]error
	)
	wg.Add(5)
	go func() {
		defer wg.Done()
		defer loadPhase("id_index").Since(time.Now())
		defer load.StartChild("load.id_index").End()
		byID, errs[4] = loadIDTree(entries)
	}()
	go func() {
		defer wg.Done()
		defer loadPhase("author_index").Since(time.Now())
		defer load.StartChild("load.author_index").End()
		idx, errs[0] = core.Load(e.coll, works)
	}()
	go func() {
		defer wg.Done()
		defer loadPhase("inverted").Since(time.Now())
		defer load.StartChild("load.inverted").End()
		docs := make([]inverted.Doc, len(works))
		for i, w := range works {
			docs[i] = inverted.Doc{ID: w.ID, Text: w.Title}
		}
		inv = inverted.Load(docs)
	}()
	go func() {
		defer wg.Done()
		defer loadPhase("citation_trees").Since(time.Now())
		defer load.StartChild("load.citation_trees").End()
		byCitation, byYear, errs[1], errs[2] = loadCitationTrees(sorted)
	}()
	go func() {
		defer wg.Done()
		defer loadPhase("subjects").Since(time.Now())
		defer load.StartChild("load.subjects").End()
		bySubject, errs[3] = e.loadSubjects(entries, sorted)
	}()
	if withTrackers {
		wg.Add(2)
		go func() {
			defer wg.Done()
			defer loadPhase("metrics").Since(time.Now())
			defer load.StartChild("load.metrics").End()
			e.met.Rebuild(works)
		}()
		go func() {
			defer wg.Done()
			defer loadPhase("graph").Since(time.Now())
			defer load.StartChild("load.graph").End()
			e.gr.Rebuild(works)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			if withTrackers {
				// Reset the trackers the parallel rebuilds touched so the
				// engine is left exactly as empty as it started.
				e.met.Rebuild(nil)
				e.gr.Rebuild(nil)
			}
			return err
		}
	}
	e.idx, e.inv, e.byID = idx, inv, byID
	e.byYear, e.byCitation, e.bySubject = byYear, byCitation, bySubject
	e.arena = &arenaInfo{total: len(works)}
	return nil
}

// relaxGCState tracks how many bulk loads are in flight so the GC
// pacer is raised once and restored exactly when the last one ends —
// overlapping loads (several indexes opening in one process) must not
// leave the raised setting behind.
var relaxGCState struct {
	mu    sync.Mutex
	depth int
	old   int
}

// relaxGC raises GOGC to 300 for the duration between the call and the
// returned restore func. A pacer that is already laxer (GOGC off, or
// above 300) is left untouched. Safe for concurrent and nested use.
func relaxGC() func() {
	s := &relaxGCState
	s.mu.Lock()
	if s.depth == 0 {
		s.old = debug.SetGCPercent(300)
		if s.old < 0 || s.old > 300 {
			debug.SetGCPercent(s.old) // app already runs laxer; keep it
		}
	}
	s.depth++
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		if s.depth--; s.depth == 0 {
			debug.SetGCPercent(s.old)
		}
		s.mu.Unlock()
	}
}

// byCitKey sorts work entries by citation key bytes; a concrete
// sort.Interface keeps the corpus-wide bulk-load sort free of
// reflection-based swapping.
type byCitKey []*workEntry

func (s byCitKey) Len() int           { return len(s) }
func (s byCitKey) Less(i, j int) bool { return bytes.Compare(s[i].key, s[j].key) < 0 }
func (s byCitKey) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// byWorkID sorts work entries by ID for the byID bulk build; a concrete
// sort.Interface for the same reason as byCitKey.
type byWorkID []*workEntry

func (s byWorkID) Len() int           { return len(s) }
func (s byWorkID) Less(i, j int) bool { return s[i].w.ID < s[j].w.ID }
func (s byWorkID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// loadIDTree bulk-builds the byID tree from the input-ordered entries.
func loadIDTree(entries []*workEntry) (*btree.Tree[*workEntry], error) {
	ordered := append(make(byWorkID, 0, len(entries)), entries...)
	sort.Sort(ordered)
	pairs := make([]btree.Pair[*workEntry], len(ordered))
	for i, we := range ordered {
		pairs[i] = btree.Pair[*workEntry]{Key: idKey(we.w.ID), Value: we}
	}
	return btree.BulkLoad(pairs)
}

// loadCitationTrees bulk-builds byCitation and byYear from entries
// sorted by citation key. The byYear key order (year ‖ citation key)
// follows from one stable re-sort on the year alone — skipped entirely
// when years already ascend in citation order, the common corpus shape
// where volumes track years.
func loadCitationTrees(sorted []*workEntry) (byCitation, byYear *btree.Tree[*workEntry], citErr, yearErr error) {
	pairs := make([]btree.Pair[*workEntry], len(sorted))
	for i, we := range sorted {
		pairs[i] = btree.Pair[*workEntry]{Key: we.key, Value: we}
	}
	byCitation, citErr = btree.BulkLoad(pairs)
	byYearEntries := sorted
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1].w.Citation.Year > sorted[i].w.Citation.Year {
			byYearEntries = append([]*workEntry(nil), sorted...)
			sort.Stable(byYearOrder(byYearEntries))
			break
		}
	}
	yearPairs := make([]btree.Pair[*workEntry], len(byYearEntries))
	for i, we := range byYearEntries {
		yearPairs[i] = btree.Pair[*workEntry]{Key: yearKey(we.w.Citation.Year, we.key), Value: we}
	}
	byYear, yearErr = btree.BulkLoad(yearPairs)
	return byCitation, byYear, citErr, yearErr
}

// byYearOrder stably re-sorts citation-ordered entries on the year
// alone, yielding year ‖ citation-key order without reflection.
type byYearOrder []*workEntry

func (s byYearOrder) Len() int           { return len(s) }
func (s byYearOrder) Less(i, j int) bool { return s[i].w.Citation.Year < s[j].w.Citation.Year }
func (s byYearOrder) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// loadSubjects accumulates the subject postings in two passes: an
// input-order pass creates each posting (so its display form comes from
// the first work filing it, like sequential Adds) and caches the
// per-work subject keys, then a pass over the citation-sorted entries
// appends every ref already in key order — no per-posting sort at all,
// only an adjacent-duplicate drop — before the tree is built bottom-up.
func (e *Engine) loadSubjects(entries, sorted []*workEntry) (*btree.Tree[*subjectPosting], error) {
	postings := make(map[string]*subjectPosting)
	order := make([]string, 0, 64)
	// Subject headings repeat across a corpus far more than they vary;
	// memoize the collation key per distinct spelling. The shared key
	// bytes are read-only everywhere (posting lookups and Remove).
	keyMemo := make(map[string][]byte)
	for _, we := range entries {
		w := we.w
		if len(w.Subjects) > 0 {
			we.subjKeys = make([][]byte, len(w.Subjects))
		}
		for i, s := range w.Subjects {
			key, ok := keyMemo[s]
			if !ok {
				key = collate.KeyString(s, e.coll)
				keyMemo[s] = key
			}
			we.subjKeys[i] = key
			if _, ok := postings[string(key)]; !ok {
				postings[string(key)] = &subjectPosting{display: s}
				order = append(order, string(key))
			}
		}
	}
	for _, we := range sorted {
		for _, key := range we.subjKeys {
			p := postings[string(key)]
			// A work listing one subject twice arrives adjacent (same
			// citation key); keep the first, exactly like insert would.
			if n := len(p.refs); n > 0 && p.refs[n-1] == we {
				continue
			}
			p.refs = append(p.refs, we)
		}
	}
	sort.Strings(order)
	pairs := make([]btree.Pair[*subjectPosting], len(order))
	for i, k := range order {
		pairs[i] = btree.Pair[*subjectPosting]{Key: []byte(k), Value: postings[k]}
	}
	return btree.BulkLoad(pairs)
}

// hasDuplicateIDs reports whether two works in the batch share an ID.
func hasDuplicateIDs(works []*model.Work) bool {
	seen := make(map[model.WorkID]struct{}, len(works))
	for _, w := range works {
		if _, dup := seen[w.ID]; dup {
			return true
		}
		seen[w.ID] = struct{}{}
	}
	return false
}

// Remove un-indexes the work with the given ID, returning it. The
// unlinked entry is left intact, never zeroed: a pinned snapshot may
// still hold it in its own trees and postings. (Bulk-loaded entries
// live in a shared arena, so a removed work stays reachable while any
// arena sibling survives — the price of torn-read-free snapshots.)
func (e *Engine) Remove(id model.WorkID) (*model.Work, bool) {
	we, ok := e.byID.Get(idKey(id))
	if !ok {
		return nil, false
	}
	defer mutRemove.Since(time.Now())
	w := we.w
	e.idx.Remove(w)
	e.inv.Remove(id, w.Title)
	e.byYear.Delete(yearKey(w.Citation.Year, we.key))
	e.byCitation.Delete(we.key)
	for _, key := range we.subjKeys {
		if p, ok := e.bySubject.Get(key); ok {
			if np, changed := p.withoutRef(we); changed {
				if len(np.refs) == 0 {
					e.bySubject.Delete(key)
				} else {
					e.bySubject.Set(key, np)
				}
			}
		}
	}
	e.trkMu.Lock()
	e.met.Remove(w)
	e.gr.Remove(w)
	e.trkMu.Unlock()
	e.byID.Delete(idKey(id))
	if we.inArena && e.arena != nil {
		e.arena.dead.Add(1)
	}
	return w.Clone(), true
}

// withRef returns a copy of p with we inserted in citation-key order,
// or (p, false) when an equal key is already filed. Filed postings are
// never mutated in place — snapshot readers may be iterating them — so
// every mutation goes copy, modify, re-file.
func (p *subjectPosting) withRef(we *workEntry) (*subjectPosting, bool) {
	i := sort.Search(len(p.refs), func(i int) bool { return bytes.Compare(p.refs[i].key, we.key) >= 0 })
	if i < len(p.refs) && bytes.Equal(p.refs[i].key, we.key) {
		return p, false
	}
	refs := make([]*workEntry, len(p.refs)+1)
	copy(refs, p.refs[:i])
	refs[i] = we
	copy(refs[i+1:], p.refs[i:])
	return &subjectPosting{display: p.display, refs: refs}, true
}

// withoutRef returns a copy of p with we removed, or (p, false) when it
// is not filed. See withRef for the copy-on-write discipline.
func (p *subjectPosting) withoutRef(we *workEntry) (*subjectPosting, bool) {
	i := sort.Search(len(p.refs), func(i int) bool { return bytes.Compare(p.refs[i].key, we.key) >= 0 })
	if i >= len(p.refs) || p.refs[i] != we {
		return p, false
	}
	refs := make([]*workEntry, 0, len(p.refs)-1)
	refs = append(refs, p.refs[:i]...)
	refs = append(refs, p.refs[i+1:]...)
	return &subjectPosting{display: p.display, refs: refs}, true
}

// restore re-establishes the sorted-by-key invariant on a private
// (batch-owned, not yet filed) posting after a batch of unsorted
// appends: one sort per touched posting instead of one insertion per
// work, plus a compaction that drops duplicate keys (a work listing the
// same subject twice) exactly as withRef would have.
func (p *subjectPosting) restore() {
	sort.Slice(p.refs, func(i, j int) bool { return bytes.Compare(p.refs[i].key, p.refs[j].key) < 0 })
	out := p.refs[:0]
	for i, we := range p.refs {
		if i > 0 && bytes.Equal(we.key, out[len(out)-1].key) {
			continue
		}
		out = append(out, we)
	}
	p.refs = out
}

// Subjects returns every subject heading in collation order, with the
// number of works filed under each.
func (e *Engine) Subjects() []SubjectCount {
	var out []SubjectCount
	e.bySubject.Ascend(func(_ []byte, p *subjectPosting) bool {
		out = append(out, SubjectCount{Subject: p.display, Works: len(p.refs)})
		return true
	})
	return out
}

// SubjectCount pairs a subject heading with its work count.
type SubjectCount struct {
	Subject string
	Works   int
}

// BySubject returns copies of the works filed under a subject heading
// (matched under the engine's collation: case- and diacritic-
// insensitive), citation order, capped at limit (<=0: no cap).
func (e *Engine) BySubject(subject string, limit int) []*model.Work {
	return e.CloneWorks(e.BySubjectView(subject, limit))
}

// BySubjectView is BySubject without the deep copies: it returns live
// references, already in citation order and truncated to limit, cloning
// nothing. See TitleSearchView for the ownership rules.
func (e *Engine) BySubjectView(subject string, limit int) []*model.Work {
	e.qs.queries.Add(1)
	p, ok := e.bySubject.Get(collate.KeyString(subject, e.coll))
	if !ok {
		// The collation key includes original bytes at lower tiers, so an
		// exact Get only matches identical spellings; fall back to a scan
		// of the primary tier for case-insensitive matching.
		prefix := collate.PrimaryPrefix(subject, e.coll)
		e.bySubject.AscendPrefix(prefix, func(k []byte, cand *subjectPosting) bool {
			if bytes.Equal(collate.PrimaryPrefix(cand.display, e.coll), prefix) {
				p, ok = cand, true
				return false
			}
			return true
		})
		if !ok {
			return nil
		}
	}
	e.qs.scanned.Add(uint64(8 * len(p.refs)))
	return worksOf(truncateRefs(p.refs, limit))
}

// AllWorks returns copies of every indexed work, in ID order.
func (e *Engine) AllWorks() []*model.Work {
	return e.CloneWorks(e.AllWorksView())
}

// AllWorksView returns live references to every indexed work, in ID
// order — one byID ascent, no sort. See TitleSearchView for the
// ownership rules.
func (e *Engine) AllWorksView() []*model.Work {
	out := make([]*model.Work, 0, e.byID.Len())
	e.byID.Ascend(func(_ []byte, we *workEntry) bool {
		out = append(out, we.w)
		return true
	})
	return out
}

// Work returns a copy of the work with the given ID.
func (e *Engine) Work(id model.WorkID) (*model.Work, bool) {
	w, ok := e.WorkView(id)
	if !ok {
		return nil, false
	}
	return e.CloneWork(w), true
}

// WorkView returns a live reference to the work with the given ID. See
// TitleSearchView for the ownership rules.
func (e *Engine) WorkView(id model.WorkID) (*model.Work, bool) {
	we, ok := e.byID.Get(idKey(id))
	if !ok {
		return nil, false
	}
	return we.w, true
}

// AuthorExact looks up a heading by its index-order string, e.g.
// "Lewin, Jeff L." or "Abdalla, Tarek F.*".
func (e *Engine) AuthorExact(heading string) (*core.Entry, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return nil, false
	}
	return e.idx.Lookup(a)
}

// AuthorPrefix returns up to limit entries whose heading starts with the
// folded prefix, in print order. limit <= 0 means no limit.
func (e *Engine) AuthorPrefix(prefix string, limit int) []*core.Entry {
	var out []*core.Entry
	e.idx.AscendPrefix(prefix, func(entry *core.Entry) bool {
		// Copy straight from the visited entry; a Lookup here would
		// re-search the tree for an entry we are already holding.
		out = append(out, entry.Clone())
		return limit <= 0 || len(out) < limit
	})
	return out
}

// DefaultAuthorPageLimit is the page size AuthorPage applies when the
// caller passes a non-positive limit. Exported so sharded fan-out can
// apply the same default to each shard before merging.
const DefaultAuthorPageLimit = 100

// AuthorPage returns up to limit entries strictly after the heading
// `after` (empty: from the start), in print order — a stable cursor for
// paging through the whole index. The next page's cursor is the last
// returned entry's Display() string.
func (e *Engine) AuthorPage(after string, limit int) []*core.Entry {
	var start model.Author
	if after != "" {
		a, err := names.Parse(after)
		if err != nil {
			return nil
		}
		start = a
	}
	if limit <= 0 {
		limit = DefaultAuthorPageLimit
	}
	var out []*core.Entry
	e.idx.AscendAfter(start, func(entry *core.Entry) bool {
		out = append(out, entry.Clone())
		return len(out) < limit
	})
	return out
}

// TitleSearch evaluates a boolean title query ("surface mining",
// "coal or gas", "mining -surface", "reclam*") and returns copies of
// matching works in citation order, capped at limit (<=0: no cap).
func (e *Engine) TitleSearch(q string, limit int) []*model.Work {
	return e.CloneWorks(e.TitleSearchView(q, limit))
}

// TitleSearchView is TitleSearch without the deep copies: the returned
// works are live references owned by the engine, in citation order and
// truncated to limit before anything is copied.
//
// Ownership rules for every *View method: callers must treat the works
// as read-only and must deep-copy (CloneWorks) anything they hand out
// or mutate. Indexed works are immutable — replacement swaps in a new
// clone — so a view stays safe to read even after the caller's lock is
// released and a concurrent mutation has removed the work.
func (e *Engine) TitleSearchView(q string, limit int) []*model.Work {
	return e.TitleSearchViewCtx(context.Background(), q, limit)
}

// TitleSearchViewCtx is TitleSearchView carrying a trace context: the
// scan is one "engine.title_scan" span with the postings intersection
// recorded as a child, both annotated with result counts.
func (e *Engine) TitleSearchViewCtx(ctx context.Context, q string, limit int) []*model.Work {
	ctx, scan := trace.StartSpan(ctx, "engine.title_scan")
	defer scan.End()
	e.qs.queries.Add(1)
	_, isect := trace.StartSpan(ctx, "inverted.intersect")
	ids, st := e.inv.EvalWithStats(inverted.ParseQuery(q))
	isect.SetInt("postings_bytes", int64(st.PostingsBytes))
	isect.SetInt("matches", int64(len(ids)))
	isect.End()
	e.qs.scanned.Add(uint64(st.PostingsBytes))
	refs := make([]*workEntry, 0, len(ids))
	for _, id := range ids {
		if we, ok := e.byID.Get(idKey(id)); ok {
			refs = append(refs, we)
		}
	}
	sortRefs(refs)
	out := worksOf(truncateRefs(refs, limit))
	scan.SetInt("hits", int64(len(out)))
	return out
}

// YearRange returns copies of works published in [from, to] (inclusive),
// in citation order, capped at limit (<=0: no cap).
func (e *Engine) YearRange(from, to int, limit int) []*model.Work {
	return e.CloneWorks(e.YearRangeView(from, to, limit))
}

// YearRangeView is YearRange without the deep copies. See
// TitleSearchView for the ownership rules.
func (e *Engine) YearRangeView(from, to int, limit int) []*model.Work {
	if from > to {
		return nil
	}
	e.qs.queries.Add(1)
	// A single-year scan streams out of byYear already in citation
	// order, so it can stop at limit; a multi-year scan concatenates
	// per-year citation-ordered runs and may need one key sort (skipped
	// when volumes track years, the common corpus shape).
	single := from == to
	var refs []*workEntry
	scanned := 0
	e.byYear.AscendRange(yearKeyMin(from), yearKeyMin(to+1), func(_ []byte, we *workEntry) bool {
		refs = append(refs, we)
		scanned += 8
		return !(single && limit > 0 && len(refs) >= limit)
	})
	e.qs.scanned.Add(uint64(scanned))
	if !single {
		sortRefs(refs)
	}
	return worksOf(truncateRefs(refs, limit))
}

// Volume returns copies of every work in the given volume, in citation
// order.
func (e *Engine) Volume(v int, limit int) []*model.Work {
	return e.CloneWorks(e.VolumeView(v, limit))
}

// VolumeView is Volume without the deep copies. The byCitation tree
// leads with the volume, so the scan is already in citation order and
// stops as soon as limit works have been seen. See TitleSearchView for
// the ownership rules.
func (e *Engine) VolumeView(v, limit int) []*model.Work {
	e.qs.queries.Add(1)
	var refs []*workEntry
	e.byCitation.AscendRange(volumeKeyMin(v), volumeKeyMin(v+1), func(_ []byte, we *workEntry) bool {
		refs = append(refs, we)
		return limit <= 0 || len(refs) < limit
	})
	e.qs.scanned.Add(uint64(8 * len(refs)))
	return worksOf(refs)
}

// CloneWorks deep-copies a view into caller-owned works, counting the
// clones. It takes no engine lock and reads only immutable works, so
// the facade calls it after releasing its read lock.
func (e *Engine) CloneWorks(view []*model.Work) []*model.Work {
	if view == nil {
		return nil
	}
	out := make([]*model.Work, len(view))
	for i, w := range view {
		out[i] = w.Clone()
	}
	e.qs.cloned.Add(uint64(len(view)))
	return out
}

// CloneWork deep-copies one viewed work, counting the clone.
func (e *Engine) CloneWork(w *model.Work) *model.Work {
	e.qs.cloned.Add(1)
	return w.Clone()
}

// Metrics exposes the bibliometrics tracker. The tracker is shared and
// mutable across clones: callers outside the facade's write lock must
// go through the locked wrappers (MetricsSummary, AuthorMetrics,
// TopAuthors) or ReadTrackers instead.
func (e *Engine) Metrics() metrics.Tracker { return e.met }

// MetricsSummary returns the corpus-wide bibliometrics summary under
// the shared tracker read lock.
func (e *Engine) MetricsSummary() metrics.Summary {
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.met.Summary()
}

// ReadTrackers runs fn with the shared tracker read lock held, handing
// it the metrics tracker and the coauthorship graph. Lock-free snapshot
// readers that need multiple tracker reads to be mutually consistent
// (rendering appendices, stats aggregation) use this instead of the
// individual wrappers.
func (e *Engine) ReadTrackers(fn func(met metrics.Tracker, gr *graph.Graph)) {
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	fn(e.met, e.gr)
}

// AuthorMetrics returns the bibliometrics snapshot for one heading
// given in index-order form, e.g. "Lewin, Jeff L.".
func (e *Engine) AuthorMetrics(heading string) (metrics.AuthorMetrics, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return metrics.AuthorMetrics{}, false
	}
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.met.Author(a.Display())
}

// TopAuthors returns up to limit author snapshots ranked by the given
// key, best first. ByCentrality is resolved against the coauthorship
// graph (the metrics tracker has no network view); every other key goes
// straight to the tracker.
func (e *Engine) TopAuthors(by metrics.RankKey, limit int) []metrics.AuthorMetrics {
	limit = ClampLimit(limit, 10)
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	if by == metrics.ByCentrality {
		central := e.gr.TopCentral(limit)
		out := make([]metrics.AuthorMetrics, 0, len(central))
		for _, c := range central {
			if m, ok := e.met.Author(c.Heading); ok {
				out = append(out, m)
			}
		}
		return out
	}
	return e.met.TopAuthors(by, limit)
}

// Graph exposes the coauthorship network. Shared and mutable across
// clones, like Metrics — callers outside the facade's write lock go
// through the locked wrappers or ReadTrackers.
func (e *Engine) Graph() *graph.Graph { return e.gr }

// GraphNeighbors returns a heading's coauthors, strongest tie first,
// under the shared tracker read lock.
func (e *Engine) GraphNeighbors(heading string) []graph.Neighbor {
	a, err := names.Parse(heading)
	if err != nil {
		return nil
	}
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.Neighbors(a.Display())
}

// GraphSummary returns the coauthorship network summary under the
// shared tracker read lock.
func (e *Engine) GraphSummary() graph.Summary {
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.Summarize()
}

// TopCentral returns the limit most central authors under the shared
// tracker read lock.
func (e *Engine) TopCentral(limit int) []graph.CentralAuthor {
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.TopCentral(limit)
}

// GraphCounts returns the network's node, edge and component counts
// under the shared tracker read lock.
func (e *Engine) GraphCounts() (nodes, edges, components int) {
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.Nodes(), e.gr.Edges(), e.gr.Components()
}

// CollaborationPath returns the shortest coauthorship chain between two
// headings given in index-order form, endpoints included. false when
// either heading is unknown or they are in different components.
func (e *Engine) CollaborationPath(from, to string) ([]string, bool) {
	fa, err := names.Parse(from)
	if err != nil {
		return nil, false
	}
	ta, err := names.Parse(to)
	if err != nil {
		return nil, false
	}
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.Path(fa.Display(), ta.Display())
}

// Centrality returns a heading's PageRank score in the coauthorship
// network.
func (e *Engine) Centrality(heading string) (float64, bool) {
	a, err := names.Parse(heading)
	if err != nil {
		return 0, false
	}
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return e.gr.Centrality(a.Display())
}

// GraphConsistent reports whether the incremental coauthorship graph is
// byte-identical to one rebuilt from scratch over the indexed corpus.
// It reads the corpus in place (graph construction retains nothing), so
// verification costs no work copies.
func (e *Engine) GraphConsistent() bool {
	e.trkMu.RLock()
	fresh := graph.New(e.gr.Damping())
	e.trkMu.RUnlock()
	e.byID.Ascend(func(_ []byte, we *workEntry) bool {
		fresh.Add(we.w)
		return true
	})
	e.trkMu.RLock()
	defer e.trkMu.RUnlock()
	return fresh.Fingerprint() == e.gr.Fingerprint()
}

// corpusWorks collects live references to every indexed work in ID
// order — the input for whole-corpus tracker rebuilds.
func (e *Engine) corpusWorks() []*model.Work {
	works := make([]*model.Work, 0, e.byID.Len())
	e.byID.Ascend(func(_ []byte, we *workEntry) bool {
		works = append(works, we.w)
		return true
	})
	return works
}

// RebuildGraph discards the incremental graph state and recomputes it
// from the indexed corpus — the recovery path when incremental state is
// suspect. The replacement is built off to the side and swapped in
// whole, so concurrent tracker readers never observe a half-built
// graph; the engine (a not-yet-published clone on the facade's recovery
// path) then carries the fresh graph forward.
func (e *Engine) RebuildGraph() {
	e.trkMu.RLock()
	fresh := graph.New(e.gr.Damping())
	e.trkMu.RUnlock()
	fresh.Rebuild(e.corpusWorks())
	e.trkMu.Lock()
	e.gr = fresh
	e.trkMu.Unlock()
}

// SetMetricsScheme swaps the credit-weighting scheme, rebuilding the
// tracker from the corpus (the recovery path, O(corpus)). Like
// RebuildGraph, the replacement tracker is built aside and swapped in
// whole.
func (e *Engine) SetMetricsScheme(scheme metrics.Scheme) {
	e.trkMu.RLock()
	same := e.met.Weighting() == scheme
	e.trkMu.RUnlock()
	if same {
		return
	}
	fresh := metrics.NewEngine(scheme)
	for _, w := range e.corpusWorks() {
		fresh.Add(w)
	}
	e.trkMu.Lock()
	e.met = fresh
	e.trkMu.Unlock()
}

// RebuildMetrics discards the incremental metrics state and recomputes
// it from the indexed corpus. Like RebuildGraph, the replacement
// tracker is built aside and swapped in whole.
func (e *Engine) RebuildMetrics() {
	e.trkMu.RLock()
	fresh := metrics.NewEngine(e.met.Weighting())
	e.trkMu.RUnlock()
	fresh.Rebuild(e.corpusWorks())
	e.trkMu.Lock()
	e.met = fresh
	e.trkMu.Unlock()
}

// CorpusFingerprint hashes the engine's corpus — every work ID and
// citation key in ID order, plus the author-heading and title-term
// counts — into one FNV-1a value. Two calls on the same frozen snapshot
// always agree no matter how far the live engine has moved on; the
// concurrency hammer pins a snapshot and asserts exactly that.
func (e *Engine) CorpusFingerprint() uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	mix := func(b []byte) {
		for _, c := range b {
			h ^= uint64(c)
			h *= prime64
		}
	}
	e.byID.Ascend(func(k []byte, we *workEntry) bool {
		mix(k)
		mix(we.key)
		return true
	})
	h ^= uint64(e.idx.Len())
	h *= prime64
	h ^= uint64(e.inv.Terms())
	h *= prime64
	return h
}

// queryCounters is the engine-internal mutable form of QueryStats.
// Counters are atomic because facade reads run concurrently and
// lock-free; the struct is shared by pointer across engine clones so
// the totals span every snapshot.
type queryCounters struct {
	queries atomic.Uint64
	cloned  atomic.Uint64
	scanned atomic.Uint64
}

// QueryStats counts read-path work since the engine was created.
type QueryStats struct {
	// Queries is the number of ordered read queries served (title
	// search, year range, volume and subject lookups).
	Queries uint64
	// WorksCloned is the number of result works deep-copied for
	// callers. The zero-copy read path keeps this near the number of
	// works actually returned, not the number matched.
	WorksCloned uint64
	// PostingsBytes is the volume of posting entries examined while
	// answering queries (8 bytes per posting visited).
	PostingsBytes uint64
}

// QueryStats returns a snapshot of the read-path counters. Safe to call
// concurrently with reads.
func (e *Engine) QueryStats() QueryStats {
	return QueryStats{
		Queries:       e.qs.queries.Load(),
		WorksCloned:   e.qs.cloned.Load(),
		PostingsBytes: e.qs.scanned.Load(),
	}
}

// Stats aggregates counters across all indexes.
type Stats struct {
	core.Stats
	Terms int        // distinct title terms in the inverted index
	Query QueryStats // read-path counters
}

// Stats returns current counters.
func (e *Engine) Stats() Stats {
	return Stats{Stats: e.idx.Stats(), Terms: e.inv.Terms(), Query: e.QueryStats()}
}

// sortRefs orders refs by their precomputed citation keys. The check
// pass makes already-ordered inputs (single-year scans, volume scans,
// year ranges whose volumes track years) free; unordered inputs pay one
// memcmp sort — no Citation.Compare calls, no clones.
func sortRefs(refs []*workEntry) {
	for i := 1; i < len(refs); i++ {
		if bytes.Compare(refs[i-1].key, refs[i].key) > 0 {
			sort.Slice(refs, func(a, b int) bool {
				return bytes.Compare(refs[a].key, refs[b].key) < 0
			})
			return
		}
	}
}

// truncateRefs caps refs at limit (<=0: no cap) without copying.
func truncateRefs(refs []*workEntry, limit int) []*workEntry {
	if limit > 0 && len(refs) > limit {
		return refs[:limit]
	}
	return refs
}

// worksOf projects entries onto their works. The result is a fresh
// slice (so posting arrays never escape) holding live references.
func worksOf(refs []*workEntry) []*model.Work {
	out := make([]*model.Work, len(refs))
	for i, we := range refs {
		out[i] = we.w
	}
	return out
}

// citationKey builds the precomputed read-path sort key:
//
//	volume(8) ‖ page(8) ‖ year(4) ‖ title (NUL-escaped) ‖ 0x00 0x00 ‖ id(8)
//
// all big-endian, so bytes.Compare orders keys exactly as the classic
// comparator did: Citation.Compare, then title, then ID. A 0x00 title
// byte is escaped to 0x00 0x01 so the 0x00 0x00 terminator cannot be
// confused with title content, keeping prefix titles ("abc" vs "abcd")
// ordered correctly regardless of the ID bytes that follow.
func citationKey(w *model.Work) []byte {
	k := make([]byte, 20, 20+len(w.Title)+2+8)
	binary.BigEndian.PutUint64(k[0:8], uint64(w.Citation.Volume))
	binary.BigEndian.PutUint64(k[8:16], uint64(w.Citation.Page))
	binary.BigEndian.PutUint32(k[16:20], uint32(w.Citation.Year))
	for i := 0; i < len(w.Title); i++ {
		b := w.Title[i]
		k = append(k, b)
		if b == 0 {
			k = append(k, 1)
		}
	}
	k = append(k, 0, 0)
	var id [8]byte
	binary.BigEndian.PutUint64(id[:], uint64(w.ID))
	return append(k, id[:]...)
}

// idKey is the byID tree key: the work ID, big-endian, so the tree
// ascends in ID order.
func idKey(id model.WorkID) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(id))
	return k[:]
}

// yearKey prefixes a citation key with the big-endian year so byYear
// scans group by year and order by citation within each year.
func yearKey(year int, citKey []byte) []byte {
	k := make([]byte, 4, 4+len(citKey))
	binary.BigEndian.PutUint32(k, uint32(year))
	return append(k, citKey...)
}

// yearKeyMin is the smallest byYear key for the given year.
func yearKeyMin(year int) []byte {
	var k [4]byte
	binary.BigEndian.PutUint32(k[:], uint32(year))
	return k[:]
}

// volumeKeyMin is the smallest citation key for the given volume.
func volumeKeyMin(v int) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], uint64(v))
	return k[:]
}
