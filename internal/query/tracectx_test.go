package query

import (
	"context"
	"testing"

	"repro/internal/collate"
	"repro/internal/trace"
)

func treeNames(d *trace.SpanData, into map[string]int) {
	into[d.Name]++
	for i := range d.Children {
		treeNames(&d.Children[i], into)
	}
}

// TestLoadAllCtxSpanTree: the bulk load records one span per parallel
// build phase plus the serial validate and sort passes, the tree stays
// well-formed even though six goroutines attach children concurrently,
// and the whole thing runs clean under -race.
func TestLoadAllCtxSpanTree(t *testing.T) {
	works := loadAllCorpus(t, 400)
	e := New(collate.Default())
	tracer := trace.NewTracer(trace.Config{})
	ctx, tr := tracer.StartRoot(context.Background(), "", "test load")
	if err := e.LoadAllCtx(ctx, works); err != nil {
		t.Fatal(err)
	}
	tr.Finish("test load")
	if err := tr.Check(); err != nil {
		t.Fatalf("malformed trace: %v", err)
	}

	root := tr.Data().Root
	names := map[string]int{}
	treeNames(&root, names)
	for _, want := range []string{
		"engine.load_all",
		"load.validate",
		"load.sort_keys",
		"load.author_index",
		"load.inverted",
		"load.citation_trees",
		"load.subjects",
		"load.metrics",
		"load.graph",
	} {
		if names[want] != 1 {
			t.Errorf("span %q appears %d times, want 1 (tree: %v)", want, names[want], names)
		}
	}
}

// TestLoadAllCtxErrorEndsSpans: a rejected load (duplicate IDs) still
// leaves a well-formed tree — no orphaned validate span.
func TestLoadAllCtxErrorEndsSpans(t *testing.T) {
	works := loadAllCorpus(t, 50)
	works = append(works, works[0]) // duplicate ID: validate rejects
	e := New(collate.Default())
	tracer := trace.NewTracer(trace.Config{})
	ctx, tr := tracer.StartRoot(context.Background(), "", "test load reject")
	if err := e.LoadAllCtx(ctx, works); err == nil {
		t.Fatal("duplicate-ID corpus accepted")
	}
	tr.Finish("test load reject")
	if err := tr.Check(); err != nil {
		t.Fatalf("malformed trace after rejected load: %v", err)
	}
}
