// Engine-level tests for the sharding primitives: XOR fingerprints
// that combine across partitions, peer engines sharing one tracker
// view, and arena compaction on delete-heavy engines.
package query

import (
	"testing"

	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
)

// TestMergeXorFingerprintPartitionInvariant: the XOR of per-partition
// fingerprints must equal the whole-corpus fingerprint no matter how
// the corpus is split — the property Verify's per-shard fold rests on.
func TestMergeXorFingerprintPartitionInvariant(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 11, Works: 400, ZipfS: 1.1})
	whole := New(collate.Default())
	for _, w := range works {
		if err := whole.Add(w.Clone()); err != nil {
			t.Fatal(err)
		}
	}
	want := whole.XorFingerprint()
	if want == 0 {
		t.Fatal("whole-corpus fingerprint is zero; test corpus too trivial")
	}

	for _, nParts := range []int{2, 3, 7} {
		engines := make([]*Engine, nParts)
		engines[0] = New(collate.Default())
		for i := 1; i < nParts; i++ {
			engines[i] = engines[0].NewPeer()
		}
		for i, w := range works {
			if err := engines[i%nParts].Add(w.Clone()); err != nil {
				t.Fatal(err)
			}
		}
		var x uint64
		for _, e := range engines {
			x ^= e.XorFingerprint()
		}
		if x != want {
			t.Errorf("%d-way partition fingerprints fold to %016x, want %016x", nParts, x, want)
		}
	}

	// The fold also matches a per-work XOR straight off the models —
	// what Verify computes from the store side.
	var storeSide uint64
	for _, w := range works {
		storeSide ^= WorkFingerprint(w)
	}
	if storeSide != want {
		t.Errorf("store-side fold %016x, want %016x", storeSide, want)
	}
}

// TestShardPeerSharesTrackers: a peer engine must observe the metrics
// and graph mutations of its sibling — they are whole-corpus
// structures shared across shards.
func TestShardPeerSharesTrackers(t *testing.T) {
	a := New(collate.Default())
	b := a.NewPeer()
	w := &model.Work{
		ID:       1,
		Title:    "Shared Tracker Proof",
		Citation: model.Citation{Volume: 70, Page: 1, Year: 1968},
		Authors:  []model.Author{{Family: "Peer", Given: "P."}},
	}
	if err := a.Add(w); err != nil {
		t.Fatal(err)
	}
	if got := len(b.TopAuthors(metrics.ByWorks, 10)); got != 1 {
		t.Fatalf("peer sees %d tracked authors, want 1", got)
	}
	if b.Len() != 0 {
		t.Fatal("peer corpus must stay disjoint")
	}
}

// TestCompactArenaDropsDeadSlots: compaction on a delete-heavy engine
// resets the slab to exactly the survivors while every surviving work
// and the fingerprint stay intact.
func TestCompactArenaDropsDeadSlots(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 5, Works: 100, ZipfS: 1.1})
	e := New(collate.Default())
	clones := make([]*model.Work, len(works))
	for i, w := range works {
		clones[i] = w.Clone()
	}
	if err := e.LoadAll(clones); err != nil {
		t.Fatal(err)
	}
	if total, dead := e.ArenaStats(); total != 100 || dead != 0 {
		t.Fatalf("arena after LoadAll = (%d, %d), want (100, 0)", total, dead)
	}
	for _, w := range works[:60] {
		if _, ok := e.Remove(w.ID); !ok {
			t.Fatalf("Remove(%d) missed", w.ID)
		}
	}
	if total, dead := e.ArenaStats(); total != 100 || dead != 60 {
		t.Fatalf("arena after removals = (%d, %d), want (100, 60)", total, dead)
	}
	before := e.XorFingerprint()

	e.CompactArena()
	if total, dead := e.ArenaStats(); total != 40 || dead != 0 {
		t.Fatalf("arena after compaction = (%d, %d), want (40, 0)", total, dead)
	}
	if got := e.XorFingerprint(); got != before {
		t.Fatalf("compaction changed the fingerprint: %016x -> %016x", before, got)
	}
	if e.Len() != 40 {
		t.Fatalf("Len after compaction = %d, want 40", e.Len())
	}
	for _, w := range works[60:] {
		got, ok := e.WorkView(w.ID)
		if !ok {
			t.Fatalf("survivor %d missing after compaction", w.ID)
		}
		if got.Title != w.Title {
			t.Fatalf("survivor %d corrupted: %q", w.ID, got.Title)
		}
	}
	// The compacted engine keeps working: mutations and re-compaction.
	if _, ok := e.Remove(works[60].ID); !ok {
		t.Fatal("Remove after compaction failed")
	}
	if total, dead := e.ArenaStats(); total != 40 || dead != 1 {
		t.Fatalf("arena after post-compaction removal = (%d, %d), want (40, 1)", total, dead)
	}
	e.CompactArena()
	if total, dead := e.ArenaStats(); total != 39 || dead != 0 {
		t.Fatalf("arena after second compaction = (%d, %d), want (39, 0)", total, dead)
	}
}

// TestCompactArenaEmptyEngine: compacting an engine whose corpus was
// fully deleted clears the slab entirely.
func TestCompactArenaEmptyEngine(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 6, Works: 10, ZipfS: 1.1})
	e := New(collate.Default())
	clones := make([]*model.Work, len(works))
	for i, w := range works {
		clones[i] = w.Clone()
	}
	if err := e.LoadAll(clones); err != nil {
		t.Fatal(err)
	}
	for _, w := range works {
		e.Remove(w.ID)
	}
	e.CompactArena()
	if total, dead := e.ArenaStats(); total != 0 || dead != 0 {
		t.Fatalf("arena after compacting empty engine = (%d, %d), want (0, 0)", total, dead)
	}
}
