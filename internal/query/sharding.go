// Sharding support: peer engines over disjoint corpus partitions that
// share one tracker view, order-independent corpus fingerprints that
// XOR-combine across shards, the work comparator the k-way shard merges
// use, and the arena compaction pass delete-heavy shards trigger.
package query

import (
	"strings"
	"sync"

	"repro/internal/btree"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/inverted"
	"repro/internal/metrics"
	"repro/internal/model"
)

// NewPeer returns an empty engine that shares e's cross-shard state:
// the metrics tracker, the coauthorship graph, their lock, the
// read-path counters and the collation options. Shards hold disjoint
// corpus partitions, but bibliometrics and the coauthorship network are
// whole-corpus structures (an author's works span shards), so every
// peer feeds the one shared pair under the shared trkMu.
func (e *Engine) NewPeer() *Engine {
	return &Engine{
		idx:        core.New(e.coll),
		inv:        inverted.New(),
		byID:       btree.New[*workEntry](),
		byYear:     btree.New[*workEntry](),
		byCitation: btree.New[*workEntry](),
		bySubject:  btree.New[*subjectPosting](),
		met:        e.met,
		gr:         e.gr,
		trkMu:      e.trkMu,
		coll:       e.coll,
		qs:         e.qs,
	}
}

// ReplaceTrackers swaps the shared tracker pair on this engine (one
// not-yet-published writer clone on the coordinator's rebuild path).
// The coordinator builds the replacements aside from the full corpus,
// then calls this on each shard's clone before publishing them all, so
// every shard flips to the fresh pair while concurrent tracker readers
// keep a consistent (old) view until the swap.
func (e *Engine) ReplaceTrackers(met metrics.Tracker, gr *graph.Graph) {
	e.trkMu.Lock()
	e.met = met
	e.gr = gr
	e.trkMu.Unlock()
}

// RebuildTrackers recomputes the shared metrics tracker and
// coauthorship graph from the full corpus, the two rebuilds running in
// parallel — the cold-start companion to LoadCorpus: every shard loads
// its partition without touching the trackers, then the coordinator
// calls this once with all works. Callers must hold write
// serialization over every peer; no tracker readers may be active.
func (e *Engine) RebuildTrackers(works []*model.Work) {
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		e.met.Rebuild(works)
	}()
	go func() {
		defer wg.Done()
		e.gr.Rebuild(works)
	}()
	wg.Wait()
}

// CompareWorks orders works exactly as the precomputed citation keys
// do: Citation.Compare (volume, page, year), then title, then ID. The
// scatter-gather layer's k-way merges use it on per-shard results whose
// keys are no longer attached (the works are already clones).
func CompareWorks(a, b *model.Work) int {
	if c := a.Citation.Compare(b.Citation); c != 0 {
		return c
	}
	if c := strings.Compare(a.Title, b.Title); c != 0 {
		return c
	}
	switch {
	case a.ID < b.ID:
		return -1
	case a.ID > b.ID:
		return 1
	}
	return 0
}

// WorkFingerprint hashes one work's indexed identity — its ID key and
// citation key — with FNV-1a. XOR over a corpus is order- and
// partition-independent, so per-shard XorFingerprints combine with ^
// into exactly the value an unsharded engine over the same corpus
// computes; Verify exploits that to check shards against the store
// without gathering the corpus in one place.
func WorkFingerprint(w *model.Work) uint64 {
	return fingerprintKeys(idKey(w.ID), citationKey(w))
}

func fingerprintKeys(idk, citk []byte) uint64 {
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for _, c := range idk {
		h ^= uint64(c)
		h *= prime64
	}
	for _, c := range citk {
		h ^= uint64(c)
		h *= prime64
	}
	return h
}

// XorFingerprint XORs WorkFingerprint over every indexed work, reusing
// the precomputed keys. Two calls on the same frozen snapshot always
// agree; XOR across shards equals the whole-corpus value.
func (e *Engine) XorFingerprint() uint64 {
	var x uint64
	e.byID.Ascend(func(k []byte, we *workEntry) bool {
		x ^= fingerprintKeys(k, we.key)
		return true
	})
	return x
}

// KeyedSubject pairs a subject count with the collation key the
// bySubject tree filed it under, so cross-shard merges compare stored
// keys instead of recomputing one per subject per shard. The key
// aliases the tree's bytes; callers must not mutate it.
type KeyedSubject struct {
	Key []byte
	SubjectCount
}

// KeyedSubjects is Subjects with each heading's collation key attached.
func (e *Engine) KeyedSubjects() []KeyedSubject {
	out := make([]KeyedSubject, 0, e.bySubject.Len())
	e.bySubject.Ascend(func(k []byte, p *subjectPosting) bool {
		out = append(out, KeyedSubject{Key: k, SubjectCount: SubjectCount{Subject: p.display, Works: len(p.refs)}})
		return true
	})
	return out
}

// ArenaStats reports the bulk-load slab's occupancy: total slots and
// slots whose works have been removed but stay pinned by surviving
// siblings. (0, 0) when the engine carries no slab. The dead count may
// overcount by removals on discarded clones (failed commits), which
// only makes compaction run early.
func (e *Engine) ArenaStats() (total, dead int) {
	if e.arena == nil {
		return 0, 0
	}
	return e.arena.total, int(e.arena.dead.Load())
}

// CompactArena copies every surviving entry out of the shared
// bulk-load slab into a fresh, exactly-sized one and rebuilds the
// entry-holding trees around the copies, so the old slab — and the
// removed works it pins — becomes collectable once the last snapshot
// referencing it drains. It runs on a not-yet-published writer clone:
// published snapshots keep the old entries and are never touched.
// Incrementally-added (non-slab) entries are copied in too, so after
// compaction the whole corpus lives in one slab again.
func (e *Engine) CompactArena() {
	n := e.byID.Len()
	if n == 0 {
		e.arena = nil
		return
	}
	fresh := make([]workEntry, 0, n)
	remap := make(map[*workEntry]*workEntry, n)
	e.byID.Ascend(func(_ []byte, we *workEntry) bool {
		fresh = append(fresh, workEntry{w: we.w, key: we.key, subjKeys: we.subjKeys, inArena: true})
		remap[we] = &fresh[len(fresh)-1]
		return true
	})
	// Each tree is rebuilt bottom-up from its own ascent — keys arrive
	// sorted and unique, and the key bytes are allocated apart from the
	// tree nodes, so reusing them is safe.
	remapTree := func(t *btree.Tree[*workEntry]) (*btree.Tree[*workEntry], error) {
		pairs := make([]btree.Pair[*workEntry], 0, t.Len())
		t.Ascend(func(k []byte, we *workEntry) bool {
			pairs = append(pairs, btree.Pair[*workEntry]{Key: k, Value: remap[we]})
			return true
		})
		return btree.BulkLoad(pairs)
	}
	byID, err1 := remapTree(e.byID)
	byYear, err2 := remapTree(e.byYear)
	byCitation, err3 := remapTree(e.byCitation)
	spairs := make([]btree.Pair[*subjectPosting], 0, e.bySubject.Len())
	e.bySubject.Ascend(func(k []byte, p *subjectPosting) bool {
		refs := make([]*workEntry, len(p.refs))
		for i, we := range p.refs {
			refs[i] = remap[we]
		}
		spairs = append(spairs, btree.Pair[*subjectPosting]{Key: k, Value: &subjectPosting{display: p.display, refs: refs}})
		return true
	})
	bySubject, err4 := btree.BulkLoad(spairs)
	if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
		// Unreachable (ascents hand over unique sorted keys); keep the
		// old slab rather than publish half-rebuilt trees.
		return
	}
	e.byID, e.byYear, e.byCitation, e.bySubject = byID, byYear, byCitation, bySubject
	e.arena = &arenaInfo{total: len(fresh)}
}
