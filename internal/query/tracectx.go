package query

import (
	"context"

	"repro/internal/model"
	"repro/internal/trace"
)

// Ctx variants of the view methods: identical semantics, plus one
// engine-scan span with the result count attached. The non-ctx
// methods delegate through context.Background(), which is the
// zero-allocation disabled path (TitleSearchViewCtx lives next to its
// implementation in query.go because the postings intersection gets
// its own child span there).

// YearRangeViewCtx is YearRangeView carrying a trace context.
func (e *Engine) YearRangeViewCtx(ctx context.Context, from, to, limit int) []*model.Work {
	_, sp := trace.StartSpan(ctx, "engine.year_scan")
	out := e.YearRangeView(from, to, limit)
	sp.SetInt("hits", int64(len(out)))
	sp.End()
	return out
}

// BySubjectViewCtx is BySubjectView carrying a trace context.
func (e *Engine) BySubjectViewCtx(ctx context.Context, subject string, limit int) []*model.Work {
	_, sp := trace.StartSpan(ctx, "engine.subject_scan")
	out := e.BySubjectView(subject, limit)
	sp.SetInt("hits", int64(len(out)))
	sp.End()
	return out
}

// VolumeViewCtx is VolumeView carrying a trace context.
func (e *Engine) VolumeViewCtx(ctx context.Context, v, limit int) []*model.Work {
	_, sp := trace.StartSpan(ctx, "engine.volume_scan")
	out := e.VolumeView(v, limit)
	sp.SetInt("hits", int64(len(out)))
	sp.End()
	return out
}

// AllWorksViewCtx is AllWorksView carrying a trace context.
func (e *Engine) AllWorksViewCtx(ctx context.Context) []*model.Work {
	_, sp := trace.StartSpan(ctx, "engine.all_scan")
	out := e.AllWorksView()
	sp.SetInt("hits", int64(len(out)))
	sp.End()
	return out
}
