package query

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/collate"
	"repro/internal/model"
)

// refLess is the classic result comparator the precomputed key replaces:
// Citation.Compare, then title, then ID. Every ordered read must stay
// byte-identical to it.
func refLess(a, b *model.Work) bool {
	if c := a.Citation.Compare(b.Citation); c != 0 {
		return c < 0
	}
	if a.Title != b.Title {
		return a.Title < b.Title
	}
	return a.ID < b.ID
}

func randWork(r *rand.Rand, id model.WorkID) *model.Work {
	titles := []string{
		"Surface Mining", "Surface Mining Reclamation", "abc", "abcd",
		"Zoning", "zoning", "École Études", "a\x00b", "a\x00", "a",
		"Double Jeopardy Revisited", "", "\x00",
	}
	return &model.Work{
		ID:    id,
		Title: titles[r.Intn(len(titles))],
		Citation: model.Citation{
			Volume: 1 + r.Intn(5),
			Page:   1 + r.Intn(7),
			Year:   1970 + r.Intn(4),
		},
	}
}

// TestCitationKeyMatchesCompare is the citation-order invariant property
// test: sorting randomized works by the precomputed key (bytes.Compare)
// must order them exactly as the classic comparator does. The title pool
// deliberately includes prefix pairs ("abc"/"abcd"), NUL bytes and empty
// titles, and the citation ranges are tight so ties at every tier occur.
func TestCitationKeyMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for round := 0; round < 50; round++ {
		works := make([]*model.Work, 200)
		for i := range works {
			works[i] = randWork(r, model.WorkID(r.Uint64()))
		}
		byKey := append([]*model.Work(nil), works...)
		keys := make(map[*model.Work][]byte, len(works))
		for _, w := range works {
			keys[w] = citationKey(w)
		}
		sort.Slice(byKey, func(i, j int) bool { return bytes.Compare(keys[byKey[i]], keys[byKey[j]]) < 0 })
		byRef := append([]*model.Work(nil), works...)
		sort.Slice(byRef, func(i, j int) bool { return refLess(byRef[i], byRef[j]) })
		for i := range byKey {
			if byKey[i] != byRef[i] {
				t.Fatalf("round %d: order diverges at %d:\n key order: %v (title %q)\n ref order: %v (title %q)",
					round, i, byKey[i], byKey[i].Title, byRef[i], byRef[i].Title)
			}
		}
	}
}

// TestCitationKeyUnique: keys embed the ID, so no two distinct works may
// collide even with identical citations and titles.
func TestCitationKeyUnique(t *testing.T) {
	a := &model.Work{ID: 1, Title: "Same", Citation: model.Citation{Volume: 1, Page: 1, Year: 1990}}
	b := &model.Work{ID: 2, Title: "Same", Citation: model.Citation{Volume: 1, Page: 1, Year: 1990}}
	ka, kb := citationKey(a), citationKey(b)
	if bytes.Equal(ka, kb) {
		t.Fatal("identical keys for distinct IDs")
	}
	if bytes.Compare(ka, kb) >= 0 {
		t.Fatal("ID tiebreak ordered 2 before 1")
	}
}

// engineQueriesMatchReference cross-checks every ordered read against a
// reference filter-sort-truncate over the raw corpus.
func TestEngineQueriesMatchReference(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	e := New(collate.Default())
	subjects := []string{"Surface Mining Reclamation", "Double Jeopardy", "Équité"}
	var corpus []*model.Work
	for i := 1; i <= 400; i++ {
		w := randWork(r, model.WorkID(i))
		if w.Title == "" || bytes.ContainsRune([]byte(w.Title), 0) {
			w.Title = "Untitled Matter" // engine validation rejects empty titles
		}
		w.Authors = []model.Author{{Family: "Fam", Given: "G."}}
		// Random citations decorrelate volume from year, forcing the
		// multi-year merge path to actually reorder.
		w.Citation = model.Citation{Volume: 1 + r.Intn(20), Page: 1 + r.Intn(300), Year: 1970 + r.Intn(10)}
		if r.Intn(2) == 0 {
			w.Subjects = []string{subjects[r.Intn(len(subjects))]}
		}
		corpus = append(corpus, w)
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	reference := func(match func(*model.Work) bool, limit int) []*model.Work {
		var out []*model.Work
		for _, w := range corpus {
			if match(w) {
				out = append(out, w)
			}
		}
		sort.Slice(out, func(i, j int) bool { return refLess(out[i], out[j]) })
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	check := func(name string, got, want []*model.Work) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s: %d works, want %d", name, len(got), len(want))
		}
		for i := range got {
			if !got[i].Equal(want[i]) {
				t.Fatalf("%s: result %d = %v, want %v", name, i, got[i], want[i])
			}
		}
	}
	for _, limit := range []int{0, 1, 7, 1000} {
		check("TitleSearch(mining)", e.TitleSearch("mining", limit), reference(func(w *model.Work) bool {
			return w.Title == "Surface Mining" || w.Title == "Surface Mining Reclamation"
		}, limit))
		check("TitleSearch(surface mining)", e.TitleSearch("surface mining", limit), reference(func(w *model.Work) bool {
			return w.Title == "Surface Mining" || w.Title == "Surface Mining Reclamation"
		}, limit))
		check("YearRange(single)", e.YearRange(1973, 1973, limit), reference(func(w *model.Work) bool {
			return w.Citation.Year == 1973
		}, limit))
		check("YearRange(multi)", e.YearRange(1971, 1977, limit), reference(func(w *model.Work) bool {
			return w.Citation.Year >= 1971 && w.Citation.Year <= 1977
		}, limit))
		check("Volume", e.Volume(5, limit), reference(func(w *model.Work) bool {
			return w.Citation.Volume == 5
		}, limit))
		check("BySubject(exact)", e.BySubject("Double Jeopardy", limit), reference(func(w *model.Work) bool {
			return len(w.Subjects) == 1 && w.Subjects[0] == "Double Jeopardy"
		}, limit))
		// Lower-cased, diacritic-stripped spellings miss the exact
		// collation key and take the primary-tier fallback scan.
		check("BySubject(fallback)", e.BySubject("equite", limit), reference(func(w *model.Work) bool {
			return len(w.Subjects) == 1 && w.Subjects[0] == "Équité"
		}, limit))
	}
	// Remove a third of the corpus and re-check: postings re-keyed on
	// citation keys must shrink consistently.
	var kept []*model.Work
	for i, w := range corpus {
		if i%3 == 0 {
			if _, ok := e.Remove(w.ID); !ok {
				t.Fatalf("Remove(%d) missed", w.ID)
			}
		} else {
			kept = append(kept, w)
		}
	}
	corpus = kept
	check("TitleSearch after removes", e.TitleSearch("mining", 0), reference(func(w *model.Work) bool {
		return w.Title == "Surface Mining" || w.Title == "Surface Mining Reclamation"
	}, 0))
	check("YearRange after removes", e.YearRange(1970, 1979, 0), reference(func(w *model.Work) bool { return true }, 0))
}

// TestQueryStatsCounters checks the read-path counters move, and only
// for the work actually done: a limited query clones limit works even
// when many more match.
func TestQueryStatsCounters(t *testing.T) {
	e := New(collate.Default())
	for i := 1; i <= 50; i++ {
		w := &model.Work{
			ID:       model.WorkID(i),
			Title:    "Strip Mining Prohibition",
			Authors:  []model.Author{{Family: "Fam"}},
			Citation: model.Citation{Volume: 1, Page: i, Year: 1980},
		}
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	before := e.QueryStats()
	if got := e.TitleSearch("mining", 5); len(got) != 5 {
		t.Fatalf("TitleSearch = %d works", len(got))
	}
	after := e.QueryStats()
	if after.Queries != before.Queries+1 {
		t.Errorf("Queries %d -> %d, want +1", before.Queries, after.Queries)
	}
	if cloned := after.WorksCloned - before.WorksCloned; cloned != 5 {
		t.Errorf("WorksCloned += %d, want 5 (limit), not 50 (matches)", cloned)
	}
	if after.PostingsBytes <= before.PostingsBytes {
		t.Errorf("PostingsBytes did not grow: %d -> %d", before.PostingsBytes, after.PostingsBytes)
	}
	// Views clone nothing.
	mid := e.QueryStats()
	if view := e.TitleSearchView("mining", 0); len(view) != 50 {
		t.Fatalf("view = %d works", len(view))
	}
	if got := e.QueryStats(); got.WorksCloned != mid.WorksCloned {
		t.Errorf("view cloned %d works", got.WorksCloned-mid.WorksCloned)
	}
}

// TestViewResultsAreLiveAndOrdered: a view must return the engine's own
// work pointers (zero copy) in citation order, and CloneWorks must
// detach them.
func TestViewResultsAreLiveAndOrdered(t *testing.T) {
	e := fixture(t)
	view := e.TitleSearchView("mining", 0)
	if len(view) != 2 {
		t.Fatalf("view = %d works", len(view))
	}
	if inner, ok := e.WorkView(view[0].ID); !ok || inner != view[0] {
		t.Error("view did not return the engine's live reference")
	}
	cloned := e.CloneWorks(view)
	if cloned[0] == view[0] {
		t.Error("CloneWorks returned a live reference")
	}
	if !cloned[0].Equal(view[0]) {
		t.Error("clone differs from original")
	}
}
