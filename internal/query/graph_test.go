package query

import (
	"testing"

	"repro/internal/collate"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
)

func graphWork(id model.WorkID, families ...string) *model.Work {
	w := &model.Work{ID: id, Title: "Work", Citation: model.Citation{Volume: 1, Page: int(id), Year: 1990}}
	for _, f := range families {
		w.Authors = append(w.Authors, model.Author{Family: f, Given: "A."})
	}
	return w
}

func TestEngineFeedsGraph(t *testing.T) {
	e := New(collate.Default())
	for _, w := range []*model.Work{
		graphWork(1, "Lewin", "Peng"),
		graphWork(2, "Peng", "Cardi"),
		graphWork(3, "Solo"),
	} {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	g := e.Graph()
	if g.Nodes() != 4 || g.Edges() != 2 {
		t.Fatalf("nodes=%d edges=%d", g.Nodes(), g.Edges())
	}
	// The graph's edge count and the metrics tracker's pair count are
	// independently maintained views of the same structure.
	if pairs := e.Metrics().Summary().Pairs; pairs != g.Edges() {
		t.Errorf("metrics pairs %d != graph edges %d", pairs, g.Edges())
	}

	p, ok := e.CollaborationPath("Lewin, A.", "Cardi, A.")
	if !ok || len(p) != 3 || p[1] != "Peng, A." {
		t.Errorf("path = %v, %v", p, ok)
	}
	if _, ok := e.CollaborationPath("Lewin, A.", "Solo, A."); ok {
		t.Error("path to disconnected author")
	}
	if _, ok := e.CollaborationPath("", "Cardi, A."); ok {
		t.Error("path from unparseable heading")
	}
	if c, ok := e.Centrality("Peng, A."); !ok || c <= 0 {
		t.Errorf("centrality = %g, %v", c, ok)
	}

	// Replacing a work (re-Add with same ID) keeps the graph exact.
	if err := e.Add(graphWork(2, "Peng", "Adler")); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Degree("Cardi, A."); ok {
		t.Error("Cardi survived replacement of its only work")
	}
	if d, _ := g.Degree("Adler, A."); d != 1 {
		t.Errorf("deg(Adler) = %d", d)
	}

	// Removal feeds the graph too.
	e.Remove(3)
	if g.Nodes() != 3 {
		t.Errorf("nodes after remove = %d, want 3", g.Nodes())
	}
}

func TestTopAuthorsByCentrality(t *testing.T) {
	e := New(collate.Default())
	// Hub collaborates with three spokes; a prolific loner has more works.
	works := []*model.Work{
		graphWork(1, "Hub", "SpokeA"),
		graphWork(2, "Hub", "SpokeB"),
		graphWork(3, "Hub", "SpokeC"),
		graphWork(4, "Loner"),
		graphWork(5, "Loner"),
		graphWork(6, "Loner"),
		graphWork(7, "Loner"),
	}
	for _, w := range works {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	top := e.TopAuthors(metrics.ByCentrality, 3)
	if len(top) != 3 {
		t.Fatalf("got %d ranked authors", len(top))
	}
	if top[0].Heading != "Hub, A." {
		t.Errorf("most central = %s, want Hub", top[0].Heading)
	}
	// The snapshots are full metrics snapshots, ordered by the graph.
	if top[0].Works != 3 || top[0].Collaborators != 3 {
		t.Errorf("snapshot = %+v", top[0])
	}
	byWorks := e.TopAuthors(metrics.ByWorks, 1)
	if byWorks[0].Heading != "Loner, A." {
		t.Errorf("most prolific = %s, want Loner", byWorks[0].Heading)
	}
}

func TestRebuildGraph(t *testing.T) {
	e := New(collate.Default())
	for _, w := range []*model.Work{
		graphWork(1, "A", "B"),
		graphWork(2, "B", "C"),
	} {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Graph().Fingerprint()
	e.RebuildGraph()
	if got := e.Graph().Fingerprint(); got != before {
		t.Error("RebuildGraph changed state over an unchanged corpus")
	}
	if e.Graph().Fingerprint() != graph.NewFromWorks(0, e.AllWorks()).Fingerprint() {
		t.Error("engine graph differs from a from-scratch build")
	}
}
