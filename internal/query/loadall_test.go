package query

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/metrics"
	"repro/internal/model"
)

// engineFingerprint serializes everything observable about an engine —
// the author index (entries, work order, see-alsos), the citation and
// year trees, the subject postings, the inverted index, the metrics
// tracker and the coauthorship graph — so two engines can be compared
// byte for byte.
func engineFingerprint(e *Engine) string {
	var b strings.Builder
	for _, sec := range e.idx.Sections() {
		fmt.Fprintf(&b, "section %c\n", sec.Letter)
		for _, entry := range sec.Entries {
			fmt.Fprintf(&b, " %s student=%v\n", entry.Author.Display(), entry.Author.Student)
			for _, w := range entry.Works {
				fmt.Fprintf(&b, "  work %d %q %d:%d (%d) %v %v\n",
					w.ID, w.Title, w.Citation.Volume, w.Citation.Page, w.Citation.Year, w.Kind, w.Subjects)
			}
			for _, sa := range entry.SeeAlso {
				fmt.Fprintf(&b, "  seealso %s\n", sa.Display())
			}
		}
	}
	fmt.Fprintf(&b, "byCitation:")
	e.byCitation.Ascend(func(k []byte, we *workEntry) bool {
		fmt.Fprintf(&b, " %d/%x", we.w.ID, k)
		return true
	})
	fmt.Fprintf(&b, "\nbyYear:")
	e.byYear.Ascend(func(k []byte, we *workEntry) bool {
		fmt.Fprintf(&b, " %d/%x", we.w.ID, k)
		return true
	})
	fmt.Fprintf(&b, "\nsubjects:\n")
	e.bySubject.Ascend(func(k []byte, p *subjectPosting) bool {
		fmt.Fprintf(&b, " %x %q:", k, p.display)
		for _, we := range p.refs {
			fmt.Fprintf(&b, " %d", we.w.ID)
		}
		fmt.Fprintf(&b, "\n")
		return true
	})
	fmt.Fprintf(&b, "inv: %d terms, %d docs\n", e.inv.Terms(), e.inv.Docs())
	for _, q := range []string{"surface mining", "coal or gas", "mining -surface", "reclam*", "liability", "taxation"} {
		fmt.Fprintf(&b, "search %q: %v\n", q, e.inv.Search(q))
	}
	fmt.Fprintf(&b, "metrics: %+v\n", e.met.Summary())
	for _, m := range e.met.TopAuthors(metrics.ByWorks, 0) {
		fmt.Fprintf(&b, " %+v\n", m)
	}
	fmt.Fprintf(&b, "graph: %s damping=%g\n", e.gr.Fingerprint(), e.gr.Damping())
	fmt.Fprintf(&b, "works: %d\n", e.byID.Len())
	return b.String()
}

func loadAllCorpus(t *testing.T, n int) []*model.Work {
	t.Helper()
	works := gen.Generate(gen.Config{Seed: 21, Works: n, ZipfS: 1.1})
	// Equal-citation-key ties and duplicate subjects exercise the
	// order-sensitive paths bulk loading must reproduce exactly.
	tied := *works[0].Clone()
	tied.ID = model.WorkID(n + 500)
	works = append(works, &tied)
	doubledSubj := *works[1].Clone()
	doubledSubj.ID = model.WorkID(n + 501)
	doubledSubj.Subjects = append(doubledSubj.Subjects, doubledSubj.Subjects[0])
	works = append(works, &doubledSubj)
	return works
}

// TestLoadAllEquivalence is the tentpole's correctness proof at the
// engine level: LoadAll must produce an engine byte-identical to one
// built by sequential Add — across every index, the metrics tracker and
// the graph — and the two must stay identical under subsequent
// mutations.
func TestLoadAllEquivalence(t *testing.T) {
	works := loadAllCorpus(t, 1200)
	inc := New(collate.Default())
	for _, w := range works {
		if err := inc.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	bulk := New(collate.Default())
	clones := make([]*model.Work, len(works))
	for i, w := range works {
		clones[i] = w.Clone()
	}
	if err := bulk.LoadAll(clones); err != nil {
		t.Fatal(err)
	}
	if got, want := engineFingerprint(bulk), engineFingerprint(inc); got != want {
		t.Fatalf("bulk-loaded engine diverges from incrementally-built engine:\n%s", firstDiff(got, want))
	}

	// Subsequent mutations: adds (fresh and replacing), removes.
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 250; i++ {
		switch i % 4 {
		case 0:
			w := works[r.Intn(len(works))]
			inc.Remove(w.ID)
			bulk.Remove(w.ID)
		case 1: // replace an existing ID with new content
			w := works[r.Intn(len(works))].Clone()
			w.Title = fmt.Sprintf("Replaced Title %d", i)
			if err := inc.Add(w); err != nil {
				t.Fatal(err)
			}
			if err := bulk.Add(w.Clone()); err != nil {
				t.Fatal(err)
			}
		default:
			w := &model.Work{
				ID:       model.WorkID(50_000 + i),
				Title:    fmt.Sprintf("Post-Load Work %d on Severance Taxation", i),
				Citation: model.Citation{Volume: 70 + i%9, Page: i + 1, Year: 1967 + i%9},
				Authors:  []model.Author{{Family: fmt.Sprintf("Late%d", i%41), Given: "Z."}},
				Subjects: []string{"Severance Taxation"},
			}
			if err := inc.Add(w); err != nil {
				t.Fatal(err)
			}
			if err := bulk.Add(w.Clone()); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got, want := engineFingerprint(bulk), engineFingerprint(inc); got != want {
		t.Fatalf("engines diverge after post-load mutations:\n%s", firstDiff(got, want))
	}
}

// TestLoadAllScheme: a bulk load must respect a non-default metrics
// scheme and graph damping configured before the load.
func TestLoadAllSchemeAndDamping(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 6, Works: 300, ZipfS: 1.1})
	inc := NewWithScheme(collate.Default(), metrics.Geometric)
	inc.Graph().SetDamping(0.7)
	for _, w := range works {
		if err := inc.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	bulk := NewWithScheme(collate.Default(), metrics.Geometric)
	bulk.Graph().SetDamping(0.7)
	clones := make([]*model.Work, len(works))
	for i, w := range works {
		clones[i] = w.Clone()
	}
	if err := bulk.LoadAll(clones); err != nil {
		t.Fatal(err)
	}
	if got, want := engineFingerprint(bulk), engineFingerprint(inc); got != want {
		t.Fatalf("engines diverge under non-default scheme/damping:\n%s", firstDiff(got, want))
	}
}

func TestLoadAllRejections(t *testing.T) {
	ok := &model.Work{
		ID:       1,
		Title:    "Fine",
		Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
		Authors:  []model.Author{{Family: "Smith", Given: "A."}},
	}
	cases := []struct {
		name  string
		works []*model.Work
	}{
		{"invalid work", []*model.Work{{ID: 2}}},
		{"zero ID", []*model.Work{{
			Title:    "No ID",
			Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
			Authors:  []model.Author{{Family: "Jones", Given: "B."}},
		}}},
		{"duplicate IDs", []*model.Work{ok, ok.Clone()}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := New(collate.Default())
			if err := e.LoadAll(tc.works); err == nil {
				t.Fatal("LoadAll accepted a bad corpus")
			}
			// The engine must be left empty and fully usable.
			if e.Len() != 0 {
				t.Fatalf("engine holds %d works after failed load", e.Len())
			}
			if err := e.Add(ok.Clone()); err != nil {
				t.Fatalf("engine unusable after failed load: %v", err)
			}
			if got := e.met.Summary().Works; got != 1 {
				t.Fatalf("metrics track %d works after failed load + Add", got)
			}
		})
	}
}

func TestLoadAllNonEmptyEngineRejected(t *testing.T) {
	e := New(collate.Default())
	w := &model.Work{
		ID:       1,
		Title:    "Already Here",
		Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
		Authors:  []model.Author{{Family: "Smith", Given: "A."}},
	}
	if err := e.Add(w); err != nil {
		t.Fatal(err)
	}
	if err := e.LoadAll([]*model.Work{w.Clone()}); err == nil {
		t.Fatal("LoadAll accepted a non-empty engine")
	}

	// A heading that exists only to carry a cross-reference must block
	// the load too — replacing the index would silently discard it.
	e2 := New(collate.Default())
	if err := e2.Index().AddSeeAlso(
		model.Author{Family: "Mountney", Given: "Marion"},
		model.Author{Family: "Crain-Mountney", Given: "Marion"},
	); err != nil {
		t.Fatal(err)
	}
	if err := e2.LoadAll([]*model.Work{w.Clone()}); err == nil {
		t.Fatal("LoadAll accepted an engine holding a see-also-only heading")
	}
}

func TestLoadAllEmptyCorpus(t *testing.T) {
	e := New(collate.Default())
	if err := e.LoadAll(nil); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d", e.Len())
	}
	if got := e.TitleSearch("anything", 10); len(got) != 0 {
		t.Fatalf("search on empty engine = %v", got)
	}
}

// TestLoadAllSearchPaths drives the public query surfaces of a
// bulk-loaded engine against an incrementally-built reference.
func TestLoadAllSearchPaths(t *testing.T) {
	works := loadAllCorpus(t, 800)
	inc := New(collate.Default())
	for _, w := range works {
		if err := inc.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	bulk := New(collate.Default())
	clones := make([]*model.Work, len(works))
	for i, w := range works {
		clones[i] = w.Clone()
	}
	if err := bulk.LoadAll(clones); err != nil {
		t.Fatal(err)
	}
	checkSame := func(name string, a, b []*model.Work) {
		t.Helper()
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d results", name, len(a), len(b))
		}
		for i := range a {
			if !a[i].Equal(b[i]) {
				t.Fatalf("%s: result %d diverges: %v vs %v", name, i, a[i], b[i])
			}
		}
	}
	checkSame("TitleSearch", bulk.TitleSearch("surface mining", 50), inc.TitleSearch("surface mining", 50))
	checkSame("YearRange", bulk.YearRange(1967, 1975, 0), inc.YearRange(1967, 1975, 0))
	checkSame("Volume", bulk.Volume(71, 0), inc.Volume(71, 0))
	subjects := inc.Subjects()
	if bs := bulk.Subjects(); len(bs) != len(subjects) {
		t.Fatalf("Subjects: %d vs %d", len(bs), len(subjects))
	}
	for _, sc := range subjects {
		checkSame("BySubject "+sc.Subject, bulk.BySubject(sc.Subject, 0), inc.BySubject(sc.Subject, 0))
	}
	if a, b := bulk.AuthorPrefix("s", 25), inc.AuthorPrefix("s", 25); len(a) != len(b) {
		t.Fatalf("AuthorPrefix: %d vs %d", len(a), len(b))
	}
}

// firstDiff trims two long fingerprints to the first line where they
// diverge, for readable failures.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return fmt.Sprintf("line %d:\n got: %s\nwant: %s", i+1, g[i], w[i])
		}
	}
	return fmt.Sprintf("lengths differ: got %d lines, want %d", len(g), len(w))
}
