package query

import (
	"fmt"
	"testing"

	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/model"
)

// fingerprintEngine reduces an engine to everything AddBatch touches:
// index stats, term count, metrics summary, graph fingerprint, subject
// headings with counts, and a citation-ordered ID walk of the corpus.
func fingerprintEngine(t *testing.T, e *Engine) string {
	t.Helper()
	out := fmt.Sprintf("stats=%+v terms=%d metrics=%+v graph=%s subjects=%v ids=",
		e.idx.Stats(), e.inv.Terms(), e.met.Summary(), e.gr.Fingerprint(), e.Subjects())
	e.byCitation.Ascend(func(_ []byte, we *workEntry) bool {
		out += fmt.Sprint(we.w.ID, ";")
		return true
	})
	e.byYear.Ascend(func(_ []byte, we *workEntry) bool {
		out += fmt.Sprint(we.w.ID, ":")
		return true
	})
	return out
}

func TestAddBatchMatchesSequentialAdd(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 7, Works: 400, ZipfS: 1.1})
	seq := New(collate.Default())
	for _, w := range works {
		if err := seq.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	for _, chunk := range []int{1, 7, 64, 400} {
		batch := New(collate.Default())
		for start := 0; start < len(works); start += chunk {
			end := min(start+chunk, len(works))
			if err := batch.AddBatch(works[start:end]); err != nil {
				t.Fatalf("AddBatch chunk=%d: %v", chunk, err)
			}
		}
		if got, want := fingerprintEngine(t, batch), fingerprintEngine(t, seq); got != want {
			t.Fatalf("chunk=%d: batched engine differs from sequential", chunk)
		}
		// Ordered reads must agree too.
		for _, q := range []string{"surface mining", "coal or gas", "reclam*"} {
			a, b := seq.TitleSearch(q, 0), batch.TitleSearch(q, 0)
			if len(a) != len(b) {
				t.Fatalf("chunk=%d: search %q: %d vs %d hits", chunk, q, len(a), len(b))
			}
			for i := range a {
				if a[i].ID != b[i].ID {
					t.Fatalf("chunk=%d: search %q result %d: %d vs %d", chunk, q, i, a[i].ID, b[i].ID)
				}
			}
		}
		if !batch.GraphConsistent() {
			t.Fatalf("chunk=%d: incremental graph differs from rebuild", chunk)
		}
	}
}

func TestAddBatchInvalidWorkLeavesEngineUntouched(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 3, Works: 100})
	e := New(collate.Default())
	if err := e.AddBatch(works[:50]); err != nil {
		t.Fatal(err)
	}
	before := fingerprintEngine(t, e)

	bad := append([]*model.Work(nil), works[50:]...)
	invalid := works[60].Clone()
	invalid.Title = "" // fails validation
	bad[5] = invalid
	if err := e.AddBatch(bad); err == nil {
		t.Fatal("batch with invalid work accepted")
	}
	if after := fingerprintEngine(t, e); after != before {
		t.Fatal("failed batch mutated the engine")
	}

	noID := works[70].Clone()
	noID.ID = 0
	if err := e.AddBatch([]*model.Work{works[51].Clone(), noID}); err == nil {
		t.Fatal("batch with zero-ID work accepted")
	}
	if after := fingerprintEngine(t, e); after != before {
		t.Fatal("failed zero-ID batch mutated the engine")
	}
}

func TestAddBatchDuplicateIDsLastWins(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 5, Works: 20})
	a := works[3].Clone()
	b := works[4].Clone()
	b.ID = a.ID
	b.Title = "The Survivor Edition"

	seq := New(collate.Default())
	if err := seq.Add(a); err != nil {
		t.Fatal(err)
	}
	if err := seq.Add(b); err != nil {
		t.Fatal(err)
	}
	batch := New(collate.Default())
	if err := batch.AddBatch([]*model.Work{a, b}); err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprintEngine(t, batch), fingerprintEngine(t, seq); got != want {
		t.Fatal("duplicate-ID batch differs from sequential re-add")
	}
	w, ok := batch.Work(a.ID)
	if !ok || w.Title != "The Survivor Edition" {
		t.Fatalf("last duplicate did not win: %+v", w)
	}
	if batch.Len() != 1 {
		t.Errorf("Len = %d, want 1", batch.Len())
	}
}

func TestAddBatchReplacesExistingIDs(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 11, Works: 60})
	e := New(collate.Default())
	if err := e.AddBatch(works[:40]); err != nil {
		t.Fatal(err)
	}
	// Replace 10 indexed works (new titles/subjects under old IDs) while
	// also adding 20 fresh ones, all in one batch.
	replacement := make([]*model.Work, 0, 30)
	for i := 0; i < 10; i++ {
		cp := works[i].Clone()
		cp.Title = fmt.Sprintf("Replaced Title %d", i)
		cp.Subjects = []string{"Replacement Studies"}
		replacement = append(replacement, cp)
	}
	replacement = append(replacement, works[40:]...)
	if err := e.AddBatch(replacement); err != nil {
		t.Fatal(err)
	}
	if e.Len() != 60 {
		t.Fatalf("Len = %d, want 60", e.Len())
	}
	for i := 0; i < 10; i++ {
		w, ok := e.Work(works[i].ID)
		if !ok || w.Title != fmt.Sprintf("Replaced Title %d", i) {
			t.Fatalf("work %d not replaced: %+v", works[i].ID, w)
		}
	}
	if got := e.BySubject("Replacement Studies", 0); len(got) != 10 {
		t.Fatalf("subject posting holds %d works, want 10", len(got))
	}
	if !e.GraphConsistent() {
		t.Fatal("graph inconsistent after replacement batch")
	}
	// Removing everything batched must leave a pristine engine.
	for _, w := range replacement {
		e.Remove(w.ID)
	}
	for i := 10; i < 40; i++ {
		e.Remove(works[i].ID)
	}
	if e.Len() != 0 {
		t.Fatalf("Len = %d after removing all, want 0", e.Len())
	}
	if got := len(e.Subjects()); got != 0 {
		t.Fatalf("%d subject postings survived full removal", got)
	}
}

func TestAddBatchEmptyAndSubjectDuplicates(t *testing.T) {
	e := New(collate.Default())
	if err := e.AddBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
	// A work listing the same subject twice must file once, exactly as
	// the sequential path dedupes.
	w := &model.Work{
		ID:       1,
		Title:    "Doubled Subject",
		Authors:  []model.Author{{Family: "Dup"}},
		Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
		Subjects: []string{"Mining Law", "Mining Law"},
	}
	if err := e.AddBatch([]*model.Work{w}); err != nil {
		t.Fatal(err)
	}
	if got := e.BySubject("Mining Law", 0); len(got) != 1 {
		t.Fatalf("duplicate subject filed %d postings, want 1", len(got))
	}
}
