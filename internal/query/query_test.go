package query

import (
	"testing"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/names"
)

func addWork(t *testing.T, e *Engine, id model.WorkID, title, cite string, authors ...string) *model.Work {
	t.Helper()
	w := &model.Work{ID: id, Title: title, Citation: citeparse.MustParse(cite)}
	for _, a := range authors {
		w.Authors = append(w.Authors, names.MustParse(a))
	}
	if err := e.Add(w); err != nil {
		t.Fatalf("Add(%s): %v", title, err)
	}
	return w
}

func fixture(t *testing.T) *Engine {
	t.Helper()
	e := New(collate.Default())
	addWork(t, e, 1, "Strip Mining and Reclamation", "75:319 (1973)", "Cardi, Vincent P.")
	addWork(t, e, 2, "The Consumer Credit and Protection Act", "77:401 (1975)", "Cardi, Vincent P.")
	addWork(t, e, 3, "Surface Mining Control", "81:553 (1979)", "Udall, Morris K.")
	addWork(t, e, 4, "Coalbed Methane Ownership", "94:563 (1992)", "Lewin, Jeff L.", "Peng, Syd S.")
	addWork(t, e, 5, "Comparative Negligence Overview", "82:473 (1980)", "Cady, Thomas C.")
	return e
}

func TestAuthorExact(t *testing.T) {
	e := fixture(t)
	entry, ok := e.AuthorExact("Cardi, Vincent P.")
	if !ok || len(entry.Works) != 2 {
		t.Fatalf("AuthorExact = %+v,%v", entry, ok)
	}
	// Works in citation order.
	if entry.Works[0].Citation.Volume != 75 {
		t.Errorf("first work vol = %d", entry.Works[0].Citation.Volume)
	}
	if _, ok := e.AuthorExact("Nobody, At All"); ok {
		t.Error("missing author found")
	}
	if _, ok := e.AuthorExact(""); ok {
		t.Error("empty heading found")
	}
}

func TestAuthorPrefix(t *testing.T) {
	e := fixture(t)
	got := e.AuthorPrefix("ca", 0)
	if len(got) != 2 {
		t.Fatalf("prefix ca = %d entries", len(got))
	}
	if got[0].Author.Family != "Cady" || got[1].Author.Family != "Cardi" {
		t.Errorf("order: %s, %s", got[0].Author.Display(), got[1].Author.Display())
	}
	if got := e.AuthorPrefix("ca", 1); len(got) != 1 {
		t.Errorf("limit ignored: %d", len(got))
	}
	if got := e.AuthorPrefix("zz", 0); len(got) != 0 {
		t.Errorf("zz matched %d", len(got))
	}
}

func TestTitleSearch(t *testing.T) {
	e := fixture(t)
	got := e.TitleSearch("mining", 0)
	if len(got) != 2 {
		t.Fatalf("mining = %d works", len(got))
	}
	// Citation order: 75 before 81.
	if got[0].ID != 1 || got[1].ID != 3 {
		t.Errorf("order = %d, %d", got[0].ID, got[1].ID)
	}
	if got := e.TitleSearch("mining -strip", 0); len(got) != 1 || got[0].ID != 3 {
		t.Errorf("NOT query = %v", got)
	}
	if got := e.TitleSearch("coal*", 0); len(got) != 1 || got[0].ID != 4 {
		t.Errorf("prefix query = %v", got)
	}
	if got := e.TitleSearch("mining", 1); len(got) != 1 {
		t.Errorf("limit ignored")
	}
}

func TestYearRangeAndVolume(t *testing.T) {
	e := fixture(t)
	got := e.YearRange(1973, 1979, 0)
	if len(got) != 3 {
		t.Fatalf("1973-1979 = %d works", len(got))
	}
	for _, w := range got {
		if w.Citation.Year < 1973 || w.Citation.Year > 1979 {
			t.Errorf("year %d out of range", w.Citation.Year)
		}
	}
	if got := e.YearRange(1990, 1980, 0); got != nil {
		t.Error("inverted range returned results")
	}
	if got := e.YearRange(1800, 3000, 2); len(got) != 2 {
		t.Error("limit ignored in YearRange")
	}
	vol := e.Volume(77, 0)
	if len(vol) != 1 || vol[0].ID != 2 {
		t.Errorf("Volume(77) = %v", vol)
	}
	if got := e.Volume(999, 0); len(got) != 0 {
		t.Error("phantom volume")
	}
}

func TestRemove(t *testing.T) {
	e := fixture(t)
	w, ok := e.Remove(4)
	if !ok || w.ID != 4 {
		t.Fatalf("Remove = %v,%v", w, ok)
	}
	if _, ok := e.Remove(4); ok {
		t.Error("double remove succeeded")
	}
	if got := e.TitleSearch("coalbed", 0); len(got) != 0 {
		t.Error("removed work still searchable")
	}
	if _, ok := e.AuthorExact("Peng, Syd S."); ok {
		t.Error("heading survives with no works")
	}
	if got := e.YearRange(1992, 1992, 0); len(got) != 0 {
		t.Error("removed work still in year index")
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d", e.Len())
	}
}

func TestReAddReplaces(t *testing.T) {
	e := fixture(t)
	w := &model.Work{
		ID:       3,
		Title:    "A Renamed Article",
		Citation: citeparse.MustParse("85:100 (1983)"),
		Authors:  []model.Author{names.MustParse("Udall, Morris K.")},
	}
	if err := e.Add(w); err != nil {
		t.Fatal(err)
	}
	if got := e.TitleSearch("surface", 0); len(got) != 0 {
		t.Error("old title still indexed after replace")
	}
	if got := e.TitleSearch("renamed", 0); len(got) != 1 {
		t.Error("new title not indexed")
	}
	if got := e.Volume(81, 0); len(got) != 0 {
		t.Error("old volume entry survives")
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d, want 5", e.Len())
	}
}

func TestAddValidation(t *testing.T) {
	e := New(collate.Default())
	if err := e.Add(&model.Work{Title: "x"}); err == nil {
		t.Error("invalid work accepted")
	}
	w := &model.Work{
		Title:    "no id",
		Citation: citeparse.MustParse("90:1 (1988)"),
		Authors:  []model.Author{{Family: "F"}},
	}
	if err := e.Add(w); err == nil {
		t.Error("zero-ID work accepted")
	}
}

func TestResultsAreCopies(t *testing.T) {
	e := fixture(t)
	got := e.TitleSearch("mining", 0)
	got[0].Title = "mutated"
	again, _ := e.Work(got[0].ID)
	if again.Title == "mutated" {
		t.Error("TitleSearch leaked internal state")
	}
}

func TestStats(t *testing.T) {
	e := fixture(t)
	st := e.Stats()
	if st.Works != 5 || st.Authors != 5 || st.Postings != 6 {
		t.Errorf("stats = %+v", st)
	}
	if st.Terms == 0 {
		t.Error("no inverted terms")
	}
}

func TestAllWorks(t *testing.T) {
	e := fixture(t)
	all := e.AllWorks()
	if len(all) != 5 {
		t.Fatalf("AllWorks = %d", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i].ID <= all[i-1].ID {
			t.Fatal("AllWorks not in ID order")
		}
	}
	all[0].Title = "mutated"
	if w, _ := e.Work(all[0].ID); w.Title == "mutated" {
		t.Error("AllWorks leaked internal state")
	}
}

func TestAuthorPage(t *testing.T) {
	e := fixture(t)
	first := e.AuthorPage("", 2)
	if len(first) != 2 {
		t.Fatalf("first page = %d entries", len(first))
	}
	second := e.AuthorPage(first[1].Author.Display(), 10)
	if len(second) == 0 {
		t.Fatal("second page empty")
	}
	if second[0].Author.Display() == first[1].Author.Display() {
		t.Error("cursor entry repeated on next page")
	}
	total := len(first) + len(second)
	if all := e.AuthorPage("", 0); len(all) != total {
		t.Errorf("pages total %d, default-limit scan %d", total, len(all))
	}
	if got := e.AuthorPage("***", 5); got != nil {
		t.Errorf("bad cursor returned %d entries", len(got))
	}
}

func TestSubjects(t *testing.T) {
	e := New(collate.Default())
	w1 := &model.Work{
		ID: 1, Title: "One", Citation: citeparse.MustParse("90:1 (1988)"),
		Authors:  []model.Author{{Family: "A"}},
		Subjects: []string{"Mining Law", "Property"},
	}
	w2 := &model.Work{
		ID: 2, Title: "Two", Citation: citeparse.MustParse("91:1 (1989)"),
		Authors:  []model.Author{{Family: "B"}},
		Subjects: []string{"Mining Law"},
	}
	if err := e.Add(w1); err != nil {
		t.Fatal(err)
	}
	if err := e.Add(w2); err != nil {
		t.Fatal(err)
	}
	subs := e.Subjects()
	if len(subs) != 2 || subs[0].Subject != "Mining Law" || subs[0].Works != 2 {
		t.Fatalf("Subjects = %+v", subs)
	}
	got := e.BySubject("Mining Law", 0)
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("BySubject = %v", got)
	}
	// Case-insensitive match through the collation fallback.
	if got := e.BySubject("mining law", 0); len(got) != 2 {
		t.Errorf("case-insensitive subject lookup = %d", len(got))
	}
	if got := e.BySubject("Unknown Topic", 0); got != nil {
		t.Errorf("phantom subject = %v", got)
	}
	// Removal maintenance.
	e.Remove(1)
	subs = e.Subjects()
	if len(subs) != 1 || subs[0].Works != 1 {
		t.Fatalf("after remove: %+v", subs)
	}
	e.Remove(2)
	if len(e.Subjects()) != 0 {
		t.Error("subject headings survive with no works")
	}
}

func TestLargeGeneratedCorpus(t *testing.T) {
	e := New(collate.Default())
	works := gen.Generate(gen.Config{Seed: 31, Works: 2000})
	for _, w := range works {
		if err := e.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	if e.Len() != 2000 {
		t.Fatalf("Len = %d", e.Len())
	}
	// Every work is findable through the year index.
	total := 0
	for y := 1960; y < 2010; y++ {
		total += len(e.YearRange(y, y, 0))
	}
	if total != 2000 {
		t.Errorf("year index covers %d works", total)
	}
	// Spot-check author lookup for every 97th work.
	for i := 0; i < len(works); i += 97 {
		a := works[i].Authors[0]
		entry, ok := e.Index().Lookup(a)
		if !ok {
			t.Fatalf("author %q missing", a.Display())
		}
		found := false
		for _, w := range entry.Works {
			if w.ID == works[i].ID {
				found = true
			}
		}
		if !found {
			t.Fatalf("work %d not under %q", works[i].ID, a.Display())
		}
	}
}
