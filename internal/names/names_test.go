package names

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want model.Author
	}{
		{"Abdalla, Tarek F.*", model.Author{Family: "Abdalla", Given: "Tarek F.", Student: true}},
		{"Adler, Mortimer J.", model.Author{Family: "Adler", Given: "Mortimer J."}},
		{"Fisher, John W., II", model.Author{Family: "Fisher", Given: "John W.", Suffix: "II"}},
		{"Copenhaver, John T., Jr.", model.Author{Family: "Copenhaver", Given: "John T.", Suffix: "Jr."}},
		{"Van Tol, Joan E.", model.Author{Family: "Tol", Particle: "Van", Given: "Joan E."}},
		{"de la Cruz, Maria", model.Author{Family: "Cruz", Particle: "de la", Given: "Maria"}},
		{"van der Berg, Ludwig", model.Author{Family: "Berg", Particle: "van der", Given: "Ludwig"}},
		{"Adler", model.Author{Family: "Adler"}},
		{"Hooks, Benjamin L.", model.Author{Family: "Hooks", Given: "Benjamin L."}},
		{"Southworth, Louis S., II*", model.Author{Family: "Southworth", Given: "Louis S.", Suffix: "II", Student: true}},
		{"  Jones ,  Amy  ", model.Author{Family: "Jones", Given: "Amy"}},
		// Double student marker collapses to one flag.
		{"Smith, A.**", model.Author{Family: "Smith", Given: "A.", Student: true}},
		// Compound family name with no particle stays intact.
		{"Bates-Smith, Pamela A.", model.Author{Family: "Bates-Smith", Given: "Pamela A."}},
		{"Crain Mountney, Marion", model.Author{Family: "Crain Mountney", Given: "Marion"}},
		// Unknown trailing component is part of the given names.
		{"Grey, Jean, Phoenix", model.Author{Family: "Grey", Given: "Jean Phoenix"}},
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{"", "   ", "*", " ** "} {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseFormatRoundTrip(t *testing.T) {
	inputs := []string{
		"Abdalla, Tarek F.*",
		"Fisher, John W., II",
		"Van Tol, Joan E.",
		"de la Cruz, Maria",
		"Adler",
		"Copenhaver, John T., Jr.",
	}
	for _, in := range inputs {
		a := MustParse(in)
		if got := Format(a); got != in {
			t.Errorf("Format(Parse(%q)) = %q", in, got)
		}
		// And parsing the formatted output is a fixed point.
		if again := MustParse(Format(a)); again != a {
			t.Errorf("Parse(Format(%+v)) = %+v", a, again)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on empty input")
		}
	}()
	MustParse("")
}

func TestCanonicalSuffix(t *testing.T) {
	tests := []struct {
		in    string
		canon string
		ok    bool
	}{
		{"Jr", "Jr.", true},
		{"jr.", "Jr.", true},
		{"III", "III", true},
		{"iii", "III", true},
		{"Esq", "Esq.", true},
		{"Phoenix", "", false},
	}
	for _, tt := range tests {
		canon, ok := CanonicalSuffix(tt.in)
		if ok != tt.ok || canon != tt.canon {
			t.Errorf("CanonicalSuffix(%q) = %q,%v want %q,%v", tt.in, canon, ok, tt.canon, tt.ok)
		}
	}
}

func TestInitials(t *testing.T) {
	tests := []struct {
		a    model.Author
		want string
	}{
		{model.Author{Family: "Lewin", Given: "Jeff L."}, "J.L."},
		{model.Author{Family: "Adler"}, ""},
		{model.Author{Family: "Kafka", Given: "Élodie Marie"}, "É.M."},
	}
	for _, tt := range tests {
		if got := Initials(tt.a); got != tt.want {
			t.Errorf("Initials(%+v) = %q, want %q", tt.a, got, tt.want)
		}
	}
}

func TestFold(t *testing.T) {
	tests := []struct{ in, want string }{
		{"Müller", "muller"},
		{"GÖDEL", "godel"},
		{"Straße", "strasse"},
		{"Łukasiewicz", "lukasiewicz"},
		{"Ørsted", "orsted"},
		{"Þór", "thor"},
		{"Æthelred", "aethelred"},
		{"plain ascii", "plain ascii"},
		{"O'Brien", "o'brien"},
		{"Dvořák", "dvorak"},
		{"Ñandú", "nandu"},
		// Decomposed e + combining acute folds like precomposed é.
		{"Café", "cafe"},
		{"", ""},
	}
	for _, tt := range tests {
		if got := Fold(tt.in); got != tt.want {
			t.Errorf("Fold(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestFoldIdempotent(t *testing.T) {
	f := func(s string) bool { return Fold(Fold(s)) == Fold(s) }
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHasDiacritics(t *testing.T) {
	tests := []struct {
		in   string
		want bool
	}{
		{"Müller", true},
		{"Muller", false},
		{"Café", true},
		{"日本", false}, // non-Latin but no diacritics in our table
	}
	for _, tt := range tests {
		if got := HasDiacritics(tt.in); got != tt.want {
			t.Errorf("HasDiacritics(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestFoldRune(t *testing.T) {
	tests := []struct {
		in   rune
		want string
	}{
		{'A', "a"}, {'z', "z"}, {'ß', "ss"}, {'Ø', "o"}, {'́', ""}, {'7', "7"},
	}
	for _, tt := range tests {
		if got := FoldRune(tt.in); got != tt.want {
			t.Errorf("FoldRune(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestKeyMatchesAcrossSpellings(t *testing.T) {
	a := MustParse("Müller, Jörg")
	b := MustParse("Muller, Jorg")
	if Key(a) != Key(b) {
		t.Errorf("Key(%q) != Key(%q): %q vs %q", Format(a), Format(b), Key(a), Key(b))
	}
	c := MustParse("Muller, Georg")
	if Key(a) == Key(c) {
		t.Error("distinct names share key")
	}
	// Suffix distinguishes.
	d := MustParse("Fisher, John W., II")
	e := MustParse("Fisher, John W.")
	if Key(d) == Key(e) {
		t.Error("suffix ignored in key")
	}
}

func TestIsParticle(t *testing.T) {
	for _, p := range []string{"van", "Van", "DE", " la "} {
		if !IsParticle(p) {
			t.Errorf("IsParticle(%q) = false", p)
		}
	}
	if IsParticle("smith") {
		t.Error(`IsParticle("smith") = true`)
	}
}

func TestSplitParticleKeepsLastWordAsFamily(t *testing.T) {
	// Even if every word is a particle, the last word must stay the family.
	p, f := splitParticle("van der")
	if f == "" {
		t.Errorf("splitParticle('van der') lost family: particle=%q family=%q", p, f)
	}
}
