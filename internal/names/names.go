// Package names parses and normalizes personal names as they appear in
// author indexes: inverted "Family, Given, Suffix" strings with optional
// nobiliary particles, generational suffixes, and the trailing asterisk
// that marks student-written material. It also provides locale-free
// diacritic folding used for matching and collation.
package names

import (
	"errors"
	"fmt"
	"strings"
	"unicode"

	"repro/internal/model"
)

// ErrEmpty is returned when a name string contains no usable content.
var ErrEmpty = errors.New("names: empty name")

// suffixes recognized as generational or honorific suffixes when they
// appear as a comma-separated trailing component. Keys are upper-case
// fold(token) forms; values are the canonical rendering.
var suffixes = map[string]string{
	"JR":   "Jr.",
	"JR.":  "Jr.",
	"SR":   "Sr.",
	"SR.":  "Sr.",
	"II":   "II",
	"III":  "III",
	"IV":   "IV",
	"V":    "V",
	"ESQ":  "Esq.",
	"ESQ.": "Esq.",
	"M.D.": "M.D.",
	"PH.D": "Ph.D.",
}

// particles are nobiliary particles recognized at the head of a family
// name ("Van Tol", "de la Cruz"). Lookup is case-insensitive.
var particles = map[string]bool{
	"van": true, "von": true, "de": true, "del": true, "della": true,
	"da": true, "di": true, "dos": true, "du": true, "la": true,
	"le": true, "der": true, "den": true, "ter": true, "ten": true,
	"st.": true, "saint": true, "al": true, "el": true, "bin": true,
	"ibn": true, "af": true, "av": true, "zu": true, "zur": true,
}

// CanonicalSuffix normalizes a suffix token ("JR", "jr.") to its canonical
// form ("Jr."); ok is false when the token is not a known suffix.
func CanonicalSuffix(tok string) (canon string, ok bool) {
	canon, ok = suffixes[strings.ToUpper(strings.TrimSpace(tok))]
	return canon, ok
}

// IsParticle reports whether tok is a recognized nobiliary particle.
func IsParticle(tok string) bool {
	return particles[strings.ToLower(strings.TrimSpace(tok))]
}

// Parse converts an index-order name string into a structured author.
//
// Accepted shapes (student asterisk may trail any of them):
//
//	"Abdalla, Tarek F.*"        → Family, Given, Student
//	"Fisher, John W., II"       → Family, Given, Suffix
//	"Van Tol, Joan E."          → Particle, Family, Given
//	"Adler"                     → Family only
//	"de la Cruz, Maria"         → multi-word particle
//
// Parse never guesses a natural-order interpretation: a string without a
// comma is treated as a bare family name (possibly with particles).
func Parse(s string) (model.Author, error) {
	var a model.Author
	s = strings.TrimSpace(s)
	if s == "" {
		return a, ErrEmpty
	}
	// Student-note marker: the footnote convention attaches an asterisk
	// to the name; treat one anywhere (conventionally trailing) as the
	// marker and strip every occurrence so names stay asterisk-free.
	if strings.Contains(s, "*") {
		a.Student = true
		s = strings.TrimSpace(strings.ReplaceAll(s, "*", ""))
	}
	if s == "" {
		return model.Author{}, ErrEmpty
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	// Drop empty trailing components left by a stripped marker
	// ("Name, J.,*" → "Name, J.,").
	for len(parts) > 1 && parts[len(parts)-1] == "" {
		parts = parts[:len(parts)-1]
	}
	// Family (with possible particles) is the first component. A family
	// name must contain at least one letter or digit; pure punctuation
	// (e.g. a stray "*") is not a heading.
	a.Particle, a.Family = splitParticle(parts[0])
	if a.Family == "" || !hasWordChar(a.Family) {
		return model.Author{}, fmt.Errorf("names: %q has no family name", s)
	}
	rest := parts[1:]
	// A trailing known suffix component becomes the suffix.
	if n := len(rest); n > 0 {
		if canon, ok := CanonicalSuffix(rest[n-1]); ok {
			a.Suffix = canon
			rest = rest[:n-1]
		}
	}
	// Everything else is the given name(s). Multiple leftover components
	// (rare: "Name, Given, Extra") are joined with a space.
	given := make([]string, 0, len(rest))
	for _, r := range rest {
		if r != "" {
			given = append(given, r)
		}
	}
	a.Given = strings.Join(given, " ")
	return a, nil
}

// MustParse is Parse for tests and static tables; it panics on error.
func MustParse(s string) model.Author {
	a, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return a
}

// splitParticle separates leading nobiliary particles from a family-name
// string: "Van der Berg" → ("Van der", "Berg"). All words but the last
// must be particles for the split to apply; otherwise the whole string is
// the family name (so "Smith Jones" stays a compound family name).
func splitParticle(fam string) (particle, family string) {
	words := strings.Fields(fam)
	if len(words) < 2 {
		return "", strings.Join(words, " ")
	}
	cut := 0
	for cut < len(words)-1 && IsParticle(words[cut]) {
		cut++
	}
	if cut == 0 {
		return "", strings.Join(words, " ")
	}
	return strings.Join(words[:cut], " "), strings.Join(words[cut:], " ")
}

// Format renders the author in canonical index order; it is the inverse
// of Parse for every author Parse can produce.
func Format(a model.Author) string { return a.Display() }

// Initials returns the author's given-name initials, e.g. "Jeff L." → "J.L.".
func Initials(a model.Author) string {
	var b strings.Builder
	for _, w := range strings.Fields(a.Given) {
		r := firstLetter(w)
		if r == 0 {
			continue
		}
		b.WriteRune(r)
		b.WriteByte('.')
	}
	return b.String()
}

func firstLetter(w string) rune {
	for _, r := range w {
		if isLetter(r) {
			return r
		}
	}
	return 0
}

func isLetter(r rune) bool {
	return r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z' || r >= 0x80
}

// hasWordChar reports whether s contains at least one letter or digit.
func hasWordChar(s string) bool {
	for _, r := range s {
		if unicode.IsLetter(r) || unicode.IsDigit(r) {
			return true
		}
	}
	return false
}

// Key returns a fold-normalized matching key for the author: particle,
// family and given names folded and lower-cased, suffix canonicalized.
// Two spellings of the same name ("Muller" / "Müller") share a key.
func Key(a model.Author) string {
	var b strings.Builder
	b.WriteString(Fold(a.Family))
	b.WriteByte('|')
	b.WriteString(Fold(a.Given))
	b.WriteByte('|')
	b.WriteString(Fold(a.Particle))
	b.WriteByte('|')
	b.WriteString(strings.ToLower(a.Suffix))
	return b.String()
}
