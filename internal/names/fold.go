package names

import (
	"strings"
	"unicode"
)

// foldTable maps accented and ligature runes from Latin-1 Supplement and
// Latin Extended-A/B to unaccented ASCII equivalents, following the
// conventions index compilers use (ß→ss, æ→ae, ø→o, Đ→D, Ł→L). Runes not
// present fold to themselves (after lower-casing).
var foldTable = map[rune]string{
	'À': "a", 'Á': "a", 'Â': "a", 'Ã': "a", 'Ä': "a", 'Å': "a", 'Ā': "a", 'Ă': "a", 'Ą': "a",
	'à': "a", 'á': "a", 'â': "a", 'ã': "a", 'ä': "a", 'å': "a", 'ā': "a", 'ă': "a", 'ą': "a",
	'Æ': "ae", 'æ': "ae",
	'Ç': "c", 'ç': "c", 'Ć': "c", 'ć': "c", 'Ĉ': "c", 'ĉ': "c", 'Ċ': "c", 'ċ': "c", 'Č': "c", 'č': "c",
	'Ď': "d", 'ď': "d", 'Đ': "d", 'đ': "d", 'Ð': "d", 'ð': "d",
	'È': "e", 'É': "e", 'Ê': "e", 'Ë': "e", 'Ē': "e", 'Ĕ': "e", 'Ė': "e", 'Ę': "e", 'Ě': "e",
	'è': "e", 'é': "e", 'ê': "e", 'ë': "e", 'ē': "e", 'ĕ': "e", 'ė': "e", 'ę': "e", 'ě': "e",
	'Ĝ': "g", 'ĝ': "g", 'Ğ': "g", 'ğ': "g", 'Ġ': "g", 'ġ': "g", 'Ģ': "g", 'ģ': "g",
	'Ĥ': "h", 'ĥ': "h", 'Ħ': "h", 'ħ': "h",
	'Ì': "i", 'Í': "i", 'Î': "i", 'Ï': "i", 'Ĩ': "i", 'Ī': "i", 'Ĭ': "i", 'Į': "i", 'İ': "i",
	'ì': "i", 'í': "i", 'î': "i", 'ï': "i", 'ĩ': "i", 'ī': "i", 'ĭ': "i", 'į': "i", 'ı': "i",
	'Ĵ': "j", 'ĵ': "j",
	'Ķ': "k", 'ķ': "k",
	'Ĺ': "l", 'ĺ': "l", 'Ļ': "l", 'ļ': "l", 'Ľ': "l", 'ľ': "l", 'Ł': "l", 'ł': "l",
	'Ñ': "n", 'ñ': "n", 'Ń': "n", 'ń': "n", 'Ņ': "n", 'ņ': "n", 'Ň': "n", 'ň': "n",
	'Ò': "o", 'Ó': "o", 'Ô': "o", 'Õ': "o", 'Ö': "o", 'Ø': "o", 'Ō': "o", 'Ŏ': "o", 'Ő': "o",
	'ò': "o", 'ó': "o", 'ô': "o", 'õ': "o", 'ö': "o", 'ø': "o", 'ō': "o", 'ŏ': "o", 'ő': "o",
	'Œ': "oe", 'œ': "oe",
	'Ŕ': "r", 'ŕ': "r", 'Ŗ': "r", 'ŗ': "r", 'Ř': "r", 'ř': "r",
	'Ś': "s", 'ś': "s", 'Ŝ': "s", 'ŝ': "s", 'Ş': "s", 'ş': "s", 'Š': "s", 'š': "s",
	'ß': "ss", 'ẞ': "ss",
	'Ţ': "t", 'ţ': "t", 'Ť': "t", 'ť': "t", 'Ŧ': "t", 'ŧ': "t",
	'Ù': "u", 'Ú': "u", 'Û': "u", 'Ü': "u", 'Ũ': "u", 'Ū': "u", 'Ŭ': "u", 'Ů': "u", 'Ű': "u", 'Ų': "u",
	'ù': "u", 'ú': "u", 'û': "u", 'ü': "u", 'ũ': "u", 'ū': "u", 'ŭ': "u", 'ů': "u", 'ű': "u", 'ų': "u",
	'Ŵ': "w", 'ŵ': "w",
	'Ý': "y", 'ý': "y", 'ÿ': "y", 'Ŷ': "y", 'ŷ': "y", 'Ÿ': "y",
	'Ź': "z", 'ź': "z", 'Ż': "z", 'ż': "z", 'Ž': "z", 'ž': "z",
	'Þ': "th", 'þ': "th",
}

// Fold lower-cases s and strips diacritics using foldTable; combining
// marks (category Mn) are removed so pre-decomposed input folds the same
// way as precomposed input. Characters with no mapping pass through
// lower-cased.
func Fold(s string) string {
	// Fast path: pure ASCII with no upper-case letters.
	ascii := true
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 0x80 || (c >= 'A' && c <= 'Z') {
			ascii = false
			break
		}
	}
	if ascii {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		switch {
		case r < 0x80:
			if r >= 'A' && r <= 'Z' {
				r += 'a' - 'A'
			}
			b.WriteRune(r)
		case unicode.Is(unicode.Mn, r):
			// combining mark: drop
		default:
			if rep, ok := foldTable[r]; ok {
				b.WriteString(rep)
			} else {
				b.WriteRune(unicode.ToLower(r))
			}
		}
	}
	return b.String()
}

// HasDiacritics reports whether s contains any rune the fold table would
// rewrite or any combining mark.
func HasDiacritics(s string) bool {
	for _, r := range s {
		if r < 0x80 {
			continue
		}
		if _, ok := foldTable[r]; ok {
			return true
		}
		if unicode.Is(unicode.Mn, r) {
			return true
		}
	}
	return false
}

// FoldRune folds a single rune to its unaccented lower-case expansion.
// ASCII letters are lower-cased; unmapped runes return themselves
// lower-cased.
func FoldRune(r rune) string {
	if r < 0x80 {
		if r >= 'A' && r <= 'Z' {
			r += 'a' - 'A'
		}
		return string(r)
	}
	if unicode.Is(unicode.Mn, r) {
		return ""
	}
	if rep, ok := foldTable[r]; ok {
		return rep
	}
	return string(unicode.ToLower(r))
}
