package names

import "testing"

// FuzzParse checks that Parse never panics and that Parse∘Format is a
// fixed point: once a string parses, formatting and re-parsing it
// reproduces the same structured author.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"Abdalla, Tarek F.*",
		"Fisher, John W., II",
		"Van Tol, Joan E.",
		"de la Cruz, Maria",
		"Müller, Jörg",
		"O'Brien, Seán",
		"Smith",
		"a,b,c,d,e",
		", , ,",
		"*, *",
		"x, Jr.",
		" weird space",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		a, err := Parse(s)
		if err != nil {
			return
		}
		if a.Family == "" {
			t.Fatalf("Parse(%q) returned author without family: %+v", s, a)
		}
		again, err := Parse(Format(a))
		if err != nil {
			t.Fatalf("Format(%+v) = %q does not re-parse: %v", a, Format(a), err)
		}
		if again != a {
			t.Fatalf("Parse∘Format not a fixed point: %+v → %q → %+v", a, Format(a), again)
		}
	})
}

// FuzzFold checks that Fold never panics and is idempotent.
func FuzzFold(f *testing.F) {
	for _, seed := range []string{"Müller", "ßßß", "日本", "", "\xff\xfe", "Łukasiewicz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		once := Fold(s)
		if Fold(once) != once {
			t.Fatalf("Fold not idempotent on %q: %q vs %q", s, once, Fold(once))
		}
	})
}
