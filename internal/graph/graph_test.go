package graph

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

// work builds a test work with one author heading per family name.
func work(id model.WorkID, families ...string) *model.Work {
	w := &model.Work{ID: id, Title: "T", Citation: model.Citation{Volume: 1, Page: int(id), Year: 1990}}
	for _, f := range families {
		w.Authors = append(w.Authors, model.Author{Family: f})
	}
	return w
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.Nodes() != 0 || g.Edges() != 0 || g.Components() != 0 || g.LargestComponent() != 0 {
		t.Fatalf("empty graph not empty: %+v", g.Summarize())
	}
	if _, ok := g.Path("A", "B"); ok {
		t.Error("path in empty graph")
	}
	if _, ok := g.Centrality("A"); ok {
		t.Error("centrality in empty graph")
	}
	if len(g.TopCentral(5)) != 0 {
		t.Error("central authors in empty graph")
	}
	s := g.Summarize()
	if s.Density != 0 || s.Works != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestAddRemoveBasics(t *testing.T) {
	g := New(0)
	g.Add(work(1, "A", "B"))
	g.Add(work(2, "A", "B"))
	g.Add(work(3, "B", "C"))
	g.Add(work(4, "D"))

	if g.Nodes() != 4 || g.Edges() != 2 || g.Works() != 3+1 {
		t.Fatalf("nodes=%d edges=%d works=%d", g.Nodes(), g.Edges(), g.Works())
	}
	if d, _ := g.Degree("B"); d != 2 {
		t.Errorf("deg(B) = %d, want 2", d)
	}
	if wd, _ := g.WeightedDegree("A"); wd != 2 {
		t.Errorf("wdeg(A) = %d, want 2 (two shared works with B)", wd)
	}
	if g.Components() != 2 { // {A,B,C} and {D}
		t.Errorf("components = %d, want 2", g.Components())
	}
	if g.LargestComponent() != 3 {
		t.Errorf("largest = %d, want 3", g.LargestComponent())
	}

	// Duplicate add is a no-op.
	g.Add(work(1, "A", "B"))
	if g.Works() != 4 {
		t.Errorf("duplicate add changed works to %d", g.Works())
	}

	ns := g.Neighbors("B")
	if len(ns) != 2 || ns[0].Heading != "A" || ns[0].Works != 2 || ns[1].Heading != "C" {
		t.Errorf("neighbors(B) = %+v", ns)
	}

	// Removing work 2 lowers the A–B weight but keeps the edge.
	g.Remove(work(2, "A", "B"))
	if g.Edges() != 2 {
		t.Errorf("edges after weight drop = %d, want 2", g.Edges())
	}
	// Removing an untracked ID is a no-op.
	g.Remove(work(99, "A", "B"))
	if g.Works() != 3 {
		t.Errorf("untracked remove changed works to %d", g.Works())
	}
	// Removing work 1 deletes the A–B edge — and A itself, which
	// appeared on no other work.
	g.Remove(work(1, "A", "B"))
	if g.Edges() != 1 {
		t.Errorf("edges after edge delete = %d, want 1", g.Edges())
	}
	if _, ok := g.Degree("A"); ok {
		t.Error("A still present after its last work was removed")
	}
	if g.Components() != 2 { // {B,C} {D}
		t.Errorf("components = %d, want 2", g.Components())
	}
}

// TestRemovalSplitsComponent covers the lazy union-find rebuild: cutting
// the bridge of a path graph must split its component in two.
func TestRemovalSplitsComponent(t *testing.T) {
	g := New(0)
	g.Add(work(1, "A", "B"))
	g.Add(work(2, "B", "C")) // bridge
	g.Add(work(3, "C", "D"))
	if g.Components() != 1 {
		t.Fatalf("components = %d, want 1", g.Components())
	}
	if !g.SameComponent("A", "D") {
		t.Fatal("A and D should be connected")
	}
	g.Remove(work(2, "B", "C"))
	if g.Components() != 2 {
		t.Errorf("components after cut = %d, want 2", g.Components())
	}
	if g.SameComponent("A", "D") {
		t.Error("A and D still connected after bridge removal")
	}
	if _, ok := g.Path("A", "D"); ok {
		t.Error("path exists across severed bridge")
	}
	if p, ok := g.Path("A", "B"); !ok || len(p) != 2 {
		t.Errorf("path A-B = %v, %v", p, ok)
	}
	// Re-adding the bridge reconnects (additions union incrementally on
	// top of the lazily rebuilt state).
	g.Add(work(2, "B", "C"))
	if g.Components() != 1 || !g.SameComponent("A", "D") {
		t.Errorf("components after re-add = %d", g.Components())
	}
}

// TestSelfCollaboration: a heading listed twice on one work counts once
// and earns no self-edge.
func TestSelfCollaboration(t *testing.T) {
	g := New(0)
	g.Add(work(1, "A", "A"))
	if g.Nodes() != 1 || g.Edges() != 0 {
		t.Fatalf("nodes=%d edges=%d, want 1/0", g.Nodes(), g.Edges())
	}
	if d, ok := g.Degree("A"); !ok || d != 0 {
		t.Errorf("deg(A) = %d, want 0", d)
	}
	g.Add(work(2, "A", "B", "A"))
	if g.Edges() != 1 {
		t.Errorf("edges = %d, want 1 (A-B once)", g.Edges())
	}
	if wd, _ := g.WeightedDegree("A"); wd != 1 {
		t.Errorf("wdeg(A) = %d, want 1", wd)
	}
	g.Remove(work(2, "A", "B", "A"))
	g.Remove(work(1, "A", "A"))
	if g.Nodes() != 0 || g.Edges() != 0 {
		t.Errorf("graph not empty after inverse removes: %+v", g.Summarize())
	}
}

func TestPath(t *testing.T) {
	g := New(0)
	g.Add(work(1, "A", "B"))
	g.Add(work(2, "B", "C"))
	g.Add(work(3, "C", "D"))
	g.Add(work(4, "A", "E"))
	g.Add(work(5, "E", "D"))
	g.Add(work(6, "X", "Y")) // disconnected island

	// The short route via E beats the longer chain via B and C.
	p, ok := g.Path("A", "D")
	if !ok || len(p) != 3 || p[1] != "E" {
		t.Fatalf("path A-D = %v, want [A E D]", p)
	}
	for i := 0; i < 10; i++ {
		again, _ := g.Path("A", "D")
		for j := range p {
			if again[j] != p[j] {
				t.Fatalf("nondeterministic path: %v vs %v", again, p)
			}
		}
	}
	if d, ok := g.Distance("A", "D"); !ok || d != 2 {
		t.Errorf("distance A-D = %d, want 2", d)
	}
	if d, ok := g.Distance("A", "C"); !ok || d != 2 {
		t.Errorf("distance A-C = %d, want 2", d)
	}
	if p, ok := g.Path("A", "A"); !ok || len(p) != 1 {
		t.Errorf("self path = %v", p)
	}
	if _, ok := g.Path("A", "X"); ok {
		t.Error("path to disconnected island")
	}
	if _, ok := g.Distance("A", "Nobody"); ok {
		t.Error("distance to unknown heading")
	}
	if _, ok := g.Path("Nobody", "A"); ok {
		t.Error("path from unknown heading")
	}
}

func TestCentrality(t *testing.T) {
	g := New(0)
	// Star: H collaborates with each of S1..S4; H must rank first.
	g.Add(work(1, "H", "S1"))
	g.Add(work(2, "H", "S2"))
	g.Add(work(3, "H", "S3"))
	g.Add(work(4, "H", "S4"))
	g.Add(work(5, "Loner"))

	top := g.TopCentral(0)
	if len(top) != 6 {
		t.Fatalf("top lists %d authors, want 6", len(top))
	}
	if top[0].Heading != "H" {
		t.Errorf("most central = %s, want H", top[0].Heading)
	}
	sum := 0.0
	for _, c := range top {
		sum += c.Score
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("centrality sums to %g, want 1", sum)
	}
	// Spokes are symmetric: identical scores.
	scores := map[string]float64{}
	for _, c := range top {
		scores[c.Heading] = c.Score
	}
	for _, s := range []string{"S2", "S3", "S4"} {
		if math.Abs(scores[s]-scores["S1"]) > 1e-12 {
			t.Errorf("asymmetric spoke scores: %s=%g S1=%g", s, scores[s], scores["S1"])
		}
	}
	if scores["Loner"] >= scores["S1"] {
		t.Errorf("isolated author outranks a spoke: %g >= %g", scores["Loner"], scores["S1"])
	}
	if c, ok := g.Centrality("H"); !ok || c != scores["H"] {
		t.Errorf("Centrality(H) = %g, want %g", c, scores["H"])
	}
	if len(g.TopCentral(2)) != 2 {
		t.Error("limit not applied")
	}
}

func TestDamping(t *testing.T) {
	g := New(2.5) // invalid: falls back
	if g.Damping() != DefaultDamping {
		t.Errorf("damping = %g, want default", g.Damping())
	}
	g.Add(work(1, "H", "S1"))
	g.Add(work(2, "H", "S2"))
	before, _ := g.Centrality("H")
	g.SetDamping(0.5)
	after, _ := g.Centrality("H")
	if before == after {
		t.Error("damping change did not move scores")
	}
	g.SetDamping(-1)
	if g.Damping() != DefaultDamping {
		t.Errorf("invalid SetDamping gave %g", g.Damping())
	}
	g.SetDamping(math.NaN())
	if g.Damping() != DefaultDamping {
		t.Errorf("NaN SetDamping gave %g", g.Damping())
	}
	if New(math.NaN()).Damping() != DefaultDamping {
		t.Error("New(NaN) kept NaN damping")
	}
	// Lower damping flattens toward uniform: H's advantage shrinks.
	if !(after < before) {
		t.Errorf("damping 0.5 should shrink hub score: %g -> %g", before, after)
	}
}

// TestIncrementalMatchesRebuild is the core invariant: after a
// randomized Add/Remove sequence the incremental state is byte-identical
// to a from-scratch rebuild over the surviving works.
func TestIncrementalMatchesRebuild(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 7, Works: 400, ZipfS: 1.1})
	g := New(0)
	r := rand.New(rand.NewSource(42))
	live := make(map[int]bool)
	for round := 0; round < 2000; round++ {
		i := r.Intn(len(works))
		if live[i] {
			g.Remove(works[i])
			delete(live, i)
		} else {
			g.Add(works[i])
			live[i] = true
		}
	}
	var survivors []*model.Work
	for i := range works {
		if live[i] {
			survivors = append(survivors, works[i])
		}
	}
	fresh := NewFromWorks(0, survivors)
	if g.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("incremental graph state differs from from-scratch rebuild")
	}
	if g.Components() != fresh.Components() {
		t.Errorf("components: incremental %d, rebuild %d", g.Components(), fresh.Components())
	}
	if g.LargestComponent() != fresh.LargestComponent() {
		t.Errorf("largest: incremental %d, rebuild %d", g.LargestComponent(), fresh.LargestComponent())
	}
	gt, ft := g.TopCentral(10), fresh.TopCentral(10)
	for i := range gt {
		if gt[i] != ft[i] {
			t.Errorf("top-central[%d]: incremental %+v, rebuild %+v", i, gt[i], ft[i])
		}
	}
	// Removing everything returns to the empty state.
	for i := range works {
		if live[i] {
			g.Remove(works[i])
		}
	}
	if g.Fingerprint() != New(0).Fingerprint() {
		t.Error("graph not empty after removing every work")
	}
}

func TestRebuildRecovery(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 3, Works: 100, ZipfS: 1.1})
	g := NewFromWorks(0, works)
	fp := g.Fingerprint()
	sum := g.Summarize()
	g.Rebuild(works)
	if g.Fingerprint() != fp {
		t.Error("Rebuild changed the fingerprint")
	}
	if got := g.Summarize(); got.Components != sum.Components || got.Edges != sum.Edges {
		t.Errorf("Rebuild changed summary: %+v vs %+v", got, sum)
	}
}

func TestSummarize(t *testing.T) {
	g := New(0)
	g.Add(work(1, "A", "B"))
	g.Add(work(2, "C"))
	s := g.Summarize()
	if s.Nodes != 3 || s.Edges != 1 || s.Components != 2 || s.LargestComponent != 2 {
		t.Errorf("summary = %+v", s)
	}
	want := 2 * 1.0 / (3 * 2) // 2E / V(V-1)
	if math.Abs(s.Density-want) > 1e-12 {
		t.Errorf("density = %g, want %g", s.Density, want)
	}
	if s.Damping != DefaultDamping || len(s.TopCentral) != 3 {
		t.Errorf("summary = %+v", s)
	}
}
