// Package graph maintains the coauthorship network over the indexed
// corpus: authors are nodes, and two authors share an undirected edge
// weighted by the number of works they co-signed. On top of the
// adjacency structure it answers collaboration paths (Erdős-style BFS
// distances), connected components (union-find, rebuilt lazily after an
// edge deletion), degree and weighted degree, and an iterative
// PageRank-style centrality with a configurable damping factor.
//
// The engine is incremental under the same discipline as
// metrics.Tracker: Add and Remove update the adjacency structure in
// O(authors-per-work²) time with no dependence on corpus size, and a
// Remove exactly inverts the matching Add, so an incrementally
// maintained graph is indistinguishable from one rebuilt from scratch
// (Fingerprint renders the canonical state byte-for-byte for that
// cross-check). Derived views — components, centrality — are cached and
// recomputed deterministically when the structure has changed.
//
// The package consumes the corpus rather than indexing it; the query
// engine owns a Graph and feeds it every mutation.
package graph

import (
	"sort"
	"strings"
	"sync"

	"repro/internal/model"
)

// DefaultDamping is the PageRank damping factor used when none is
// configured; 0.85 is the value the original algorithm recommends.
const DefaultDamping = 0.85

// pageRankIters bounds the power iteration; convergence on corpus-sized
// graphs arrives far earlier.
const pageRankIters = 100

// pageRankEpsilon stops the iteration once the total rank movement per
// node falls below it.
const pageRankEpsilon = 1e-10

// topCentral caps the ranked list embedded in a Summary.
const topCentral = 5

// node is the live per-heading state. Counters only — derived views are
// materialized on read.
type node struct {
	// adj maps co-author heading to the number of shared works.
	adj map[string]int
	// works counts works this heading appears on; the node exists while
	// it is positive (a solo author is an isolated node).
	works int
	// wdegree is the sum of adj weights, maintained incrementally.
	wdegree int
}

// Graph is the incremental coauthorship network engine. Mutations
// (Add, Remove, Rebuild, SetDamping) are not safe for concurrent use —
// the owning layer serializes them against everything else — but read
// methods may run concurrently with each other: the internal mutex
// guards the lazily (re)computed component and centrality caches, so
// callers holding only a read lock on the owning layer stay race-free.
type Graph struct {
	damping float64
	nodes   map[string]*node
	tracked map[model.WorkID]struct{}
	edges   int // distinct undirected pairs with weight > 0

	// mu guards the lazy caches below (comp and pr with their dirty
	// flags) during concurrent reads. Mutations run exclusively, so the
	// primary structures above need no lock.
	mu sync.Mutex

	// comp is the union-find parent map over headings. Additions union
	// incrementally; deletions mark it dirty and the next component query
	// rebuilds it from the adjacency structure.
	comp      map[string]string
	compDirty bool
	compCount int

	// pr caches the last PageRank vector; any mutation invalidates it.
	pr      map[string]float64
	prDirty bool

	// display memoizes heading construction during Rebuild; nil (a
	// plain Display pass-through) outside it.
	display model.DisplayMemo
	// hscratch is the reusable headings buffer. Mutations are serialized
	// by the owning layer and no caller retains the slice past its call,
	// so one buffer suffices.
	hscratch []string
}

// New returns an empty graph. A damping factor outside (0, 1) — NaN
// included — falls back to DefaultDamping.
func New(damping float64) *Graph {
	if !(damping > 0 && damping < 1) {
		damping = DefaultDamping
	}
	return &Graph{
		damping: damping,
		nodes:   make(map[string]*node),
		tracked: make(map[model.WorkID]struct{}),
		comp:    make(map[string]string),
	}
}

// NewFromWorks builds a graph from scratch over a corpus — the
// from-scratch baseline incremental state is verified against.
func NewFromWorks(damping float64, works []*model.Work) *Graph {
	g := New(damping)
	for _, w := range works {
		g.Add(w)
	}
	return g
}

// Damping returns the PageRank damping factor in effect.
func (g *Graph) Damping() float64 { return g.damping }

// SetDamping changes the damping factor (values outside (0, 1) — NaN
// included — fall back to DefaultDamping) and invalidates the
// centrality cache.
func (g *Graph) SetDamping(d float64) {
	if !(d > 0 && d < 1) {
		d = DefaultDamping
	}
	if d != g.damping {
		g.damping = d
		g.prDirty = true
	}
}

// Nodes returns the number of authors in the network.
func (g *Graph) Nodes() int { return len(g.nodes) }

// Edges returns the number of distinct collaborating pairs.
func (g *Graph) Edges() int { return g.edges }

// Works returns the number of works folded into the graph.
func (g *Graph) Works() int { return len(g.tracked) }

// headings returns one entry per distinct heading on w, in first-seen
// order — computed identically by Add and Remove so removal inverts
// addition exactly. A heading listed at several positions (a
// self-collaboration) counts once and earns no self-edge.
func (g *Graph) headings(w *model.Work) []string {
	out := g.hscratch[:0]
	for _, a := range w.Authors {
		h := g.heading(a)
		dup := false
		for _, x := range out {
			if x == h {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, h)
		}
	}
	g.hscratch = out
	return out
}

// heading returns a.Display(), memoized while a Rebuild is running.
func (g *Graph) heading(a model.Author) string { return g.display.Display(a) }

// Add folds w into the network in O(len(w.Authors)²) time (the
// quadratic term is the pairwise edge update; author lists are short).
// Adding an ID that is already tracked is a no-op.
func (g *Graph) Add(w *model.Work) {
	if w == nil || len(w.Authors) == 0 {
		return
	}
	if _, dup := g.tracked[w.ID]; dup {
		return
	}
	g.tracked[w.ID] = struct{}{}
	hs := g.headings(w)
	for _, h := range hs {
		n, ok := g.nodes[h]
		if !ok {
			n = &node{adj: make(map[string]int)}
			g.nodes[h] = n
			if !g.compDirty {
				g.comp[h] = h
				g.compCount++
			}
		}
		n.works++
	}
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			a, b := g.nodes[hs[i]], g.nodes[hs[j]]
			a.adj[hs[j]]++
			a.wdegree++
			b.adj[hs[i]]++
			b.wdegree++
			if a.adj[hs[j]] == 1 {
				g.edges++
				if !g.compDirty {
					g.union(hs[i], hs[j])
				}
			}
		}
	}
	g.prDirty = true
}

// Remove exactly inverts the Add of the same work. Removing an
// untracked ID is a no-op. Deleting an edge or a node marks the
// component structure dirty; the next component query rebuilds it.
func (g *Graph) Remove(w *model.Work) {
	if w == nil || len(w.Authors) == 0 {
		return
	}
	if _, ok := g.tracked[w.ID]; !ok {
		return
	}
	delete(g.tracked, w.ID)
	hs := g.headings(w)
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			a, b := g.nodes[hs[i]], g.nodes[hs[j]]
			if a == nil || b == nil {
				continue
			}
			a.adj[hs[j]]--
			a.wdegree--
			b.adj[hs[i]]--
			b.wdegree--
			if a.adj[hs[j]] <= 0 {
				delete(a.adj, hs[j])
				delete(b.adj, hs[i])
				g.edges--
				g.compDirty = true
			}
		}
	}
	for _, h := range hs {
		n := g.nodes[h]
		if n == nil {
			continue
		}
		if n.works--; n.works <= 0 {
			delete(g.nodes, h)
			g.compDirty = true
		}
	}
	g.prDirty = true
}

// Rebuild resets the graph and re-adds the corpus in one pass — the
// recovery path when incremental state is suspect.
func (g *Graph) Rebuild(works []*model.Work) {
	// Presize for the common author-to-work ratio so a cold rebuild does
	// not pay map growth rehashes all the way up.
	g.nodes = make(map[string]*node, max(len(g.nodes), len(works)/3))
	g.tracked = make(map[model.WorkID]struct{}, len(works))
	g.comp = make(map[string]string, len(works)/3)
	g.edges, g.compCount = 0, 0
	g.compDirty, g.prDirty = false, true
	g.display = make(model.DisplayMemo)
	defer func() { g.display = nil }()
	for _, w := range works {
		g.Add(w)
	}
}

// ---- degree ----

// Degree returns the number of distinct co-authors of a heading.
func (g *Graph) Degree(heading string) (int, bool) {
	n, ok := g.nodes[heading]
	if !ok {
		return 0, false
	}
	return len(n.adj), true
}

// WeightedDegree returns the total shared-work count across all of a
// heading's collaborations.
func (g *Graph) WeightedDegree(heading string) (int, bool) {
	n, ok := g.nodes[heading]
	if !ok {
		return 0, false
	}
	return n.wdegree, true
}

// Neighbors returns a heading's co-authors with shared-work counts,
// heaviest first (ties broken by heading ascending).
func (g *Graph) Neighbors(heading string) []Neighbor {
	n, ok := g.nodes[heading]
	if !ok {
		return nil
	}
	out := make([]Neighbor, 0, len(n.adj))
	for h, w := range n.adj {
		out = append(out, Neighbor{Heading: h, Works: w})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Works != out[j].Works {
			return out[i].Works > out[j].Works
		}
		return out[i].Heading < out[j].Heading
	})
	return out
}

// Neighbor pairs a co-author heading with the number of shared works.
type Neighbor struct {
	Heading string `json:"heading"`
	Works   int    `json:"works"`
}

// ---- components (union-find with lazy rebuild) ----

// find resolves the union-find root with path compression.
func (g *Graph) find(h string) string {
	root := h
	for g.comp[root] != root {
		root = g.comp[root]
	}
	for g.comp[h] != root {
		g.comp[h], h = root, g.comp[h]
	}
	return root
}

// union merges the components of a and b.
func (g *Graph) union(a, b string) {
	ra, rb := g.find(a), g.find(b)
	if ra == rb {
		return
	}
	// Deterministic orientation (smaller root wins) keeps the structure
	// independent of map iteration order.
	if rb < ra {
		ra, rb = rb, ra
	}
	g.comp[rb] = ra
	g.compCount--
}

// rebuildComponents recomputes the union-find from the adjacency
// structure, O(nodes + edges) — the lazy path after a deletion.
func (g *Graph) rebuildComponents() {
	g.comp = make(map[string]string, len(g.nodes))
	g.compCount = len(g.nodes)
	for h := range g.nodes {
		g.comp[h] = h
	}
	for h, n := range g.nodes {
		for other := range n.adj {
			g.union(h, other)
		}
	}
	g.compDirty = false
}

// Components returns the number of connected components (isolated
// authors count as singleton components).
func (g *Graph) Components() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.compDirty {
		g.rebuildComponents()
	}
	return g.compCount
}

// SameComponent reports whether two headings are connected by any chain
// of collaborations. Unknown headings are in no component.
func (g *Graph) SameComponent(a, b string) bool {
	if _, ok := g.nodes[a]; !ok {
		return false
	}
	if _, ok := g.nodes[b]; !ok {
		return false
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.compDirty {
		g.rebuildComponents()
	}
	return g.find(a) == g.find(b)
}

// LargestComponent returns the size of the biggest connected component.
func (g *Graph) LargestComponent() int {
	if len(g.nodes) == 0 {
		return 0
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.compDirty {
		g.rebuildComponents()
	}
	sizes := make(map[string]int, g.compCount)
	best := 0
	for h := range g.nodes {
		r := g.find(h)
		sizes[r]++
		if sizes[r] > best {
			best = sizes[r]
		}
	}
	return best
}

// ---- collaboration paths ----

// Path returns the shortest collaboration chain between two headings,
// endpoints included, and whether one exists. The distance is
// len(path)-1 collaborations (Erdős-style). A heading reaches itself
// with a single-element path. The union-find answers the reachability
// question first, so cross-component queries never pay for a BFS.
func (g *Graph) Path(from, to string) ([]string, bool) {
	if _, ok := g.nodes[from]; !ok {
		return nil, false
	}
	if _, ok := g.nodes[to]; !ok {
		return nil, false
	}
	if from == to {
		return []string{from}, true
	}
	if !g.SameComponent(from, to) {
		return nil, false
	}
	// BFS with sorted neighbor expansion: among equal-length paths the
	// lexicographically earliest is found, so results are deterministic.
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		next := make([]string, 0, len(g.nodes[cur].adj))
		for h := range g.nodes[cur].adj {
			if _, seen := prev[h]; !seen {
				next = append(next, h)
			}
		}
		sort.Strings(next)
		for _, h := range next {
			prev[h] = cur
			if h == to {
				var path []string
				for at := to; at != from; at = prev[at] {
					path = append(path, at)
				}
				path = append(path, from)
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, true
			}
			queue = append(queue, h)
		}
	}
	return nil, false // unreachable: SameComponent said yes
}

// Distance returns the number of collaboration hops between two
// headings, or false when they are disconnected or unknown.
func (g *Graph) Distance(from, to string) (int, bool) {
	p, ok := g.Path(from, to)
	if !ok {
		return 0, false
	}
	return len(p) - 1, true
}

// ---- centrality (weighted PageRank) ----

// pageRank computes (or returns the cached) PageRank vector. Rank flows
// along edges proportional to their weight; isolated authors hold the
// teleport mass only. Iteration order is sorted, so the result is
// deterministic for a given structure. A fresh map is built on every
// recompute, so callers may keep reading a previously returned vector.
func (g *Graph) pageRank() map[string]float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	if !g.prDirty && g.pr != nil {
		return g.pr
	}
	n := len(g.nodes)
	pr := make(map[string]float64, n)
	if n == 0 {
		g.pr, g.prDirty = pr, false
		return pr
	}
	order := make([]string, 0, n)
	for h := range g.nodes {
		order = append(order, h)
	}
	sort.Strings(order)
	for _, h := range order {
		pr[h] = 1 / float64(n)
	}
	d := g.damping
	base := (1 - d) / float64(n)
	next := make(map[string]float64, n)
	for iter := 0; iter < pageRankIters; iter++ {
		// Isolated nodes (weighted degree 0) have nowhere to send their
		// damped mass; redistribute it uniformly so rank still sums to 1.
		dangling := 0.0
		for _, h := range order {
			if g.nodes[h].wdegree == 0 {
				dangling += pr[h]
			}
		}
		spread := base + d*dangling/float64(n)
		for _, h := range order {
			next[h] = spread
		}
		for _, h := range order {
			node := g.nodes[h]
			if node.wdegree == 0 {
				continue
			}
			share := d * pr[h] / float64(node.wdegree)
			for other, w := range node.adj {
				next[other] += share * float64(w)
			}
		}
		delta := 0.0
		for _, h := range order {
			diff := next[h] - pr[h]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
			pr[h] = next[h]
		}
		if delta < pageRankEpsilon*float64(n) {
			break
		}
	}
	g.pr, g.prDirty = pr, false
	return pr
}

// Centrality returns a heading's PageRank score (scores across the
// network sum to 1).
func (g *Graph) Centrality(heading string) (float64, bool) {
	if _, ok := g.nodes[heading]; !ok {
		return 0, false
	}
	return g.pageRank()[heading], true
}

// CentralAuthor pairs a heading with its centrality score.
type CentralAuthor struct {
	Heading string  `json:"heading"`
	Score   float64 `json:"score"`
}

// TopCentral returns up to limit authors by centrality descending (ties
// broken by heading ascending). limit <= 0 means all.
func (g *Graph) TopCentral(limit int) []CentralAuthor {
	pr := g.pageRank()
	out := make([]CentralAuthor, 0, len(pr))
	for h, s := range pr {
		out = append(out, CentralAuthor{Heading: h, Score: s})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Heading < out[j].Heading
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// ---- summary & verification ----

// Summary aggregates network-level statistics.
type Summary struct {
	Nodes int `json:"nodes"`
	Edges int `json:"edges"`
	// Works counts works folded into the graph.
	Works int `json:"works"`
	// Components counts connected components; LargestComponent is the
	// size of the biggest one.
	Components       int `json:"components"`
	LargestComponent int `json:"largestComponent"`
	// Density is edges over possible pairs, 2E / (V·(V−1)).
	Density float64 `json:"density"`
	// Damping is the PageRank damping factor the scores were computed
	// under; TopCentral lists the most central authors, best first.
	Damping    float64         `json:"damping"`
	TopCentral []CentralAuthor `json:"topCentral,omitempty"`
}

// Density returns edges over possible pairs, 2E / (V·(V−1)); zero for
// graphs with fewer than two nodes.
func (g *Graph) Density() float64 {
	v, e := len(g.nodes), g.edges
	if v < 2 {
		return 0
	}
	return 2 * float64(e) / (float64(v) * float64(v-1))
}

// Summarize returns network-level aggregates with the top-central list.
func (g *Graph) Summarize() Summary {
	return Summary{
		Nodes:            g.Nodes(),
		Edges:            g.Edges(),
		Works:            g.Works(),
		Components:       g.Components(),
		LargestComponent: g.LargestComponent(),
		Density:          g.Density(),
		Damping:          g.damping,
		TopCentral:       g.TopCentral(topCentral),
	}
}

// Fingerprint renders the canonical graph state — every node with its
// work count and sorted weighted adjacency, plus the tracked work IDs —
// as a deterministic byte string. Two graphs over the same corpus are
// byte-identical here regardless of the mutation order that produced
// them; Verify paths compare an incremental graph against
// NewFromWorks this way.
func (g *Graph) Fingerprint() string {
	hs := make([]string, 0, len(g.nodes))
	for h := range g.nodes {
		hs = append(hs, h)
	}
	sort.Strings(hs)
	var b strings.Builder
	for _, h := range hs {
		n := g.nodes[h]
		b.WriteString(h)
		writeInt(&b, n.works)
		ns := make([]string, 0, len(n.adj))
		for o := range n.adj {
			ns = append(ns, o)
		}
		sort.Strings(ns)
		for _, o := range ns {
			b.WriteByte('\t')
			b.WriteString(o)
			writeInt(&b, n.adj[o])
		}
		b.WriteByte('\n')
	}
	ids := make([]uint64, 0, len(g.tracked))
	for id := range g.tracked {
		ids = append(ids, uint64(id))
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		writeInt(&b, int(id))
	}
	return b.String()
}

// writeInt appends "=<n>" without the fmt machinery (Fingerprint runs
// inside Verify on every invariant check).
func writeInt(b *strings.Builder, n int) {
	b.WriteByte('=')
	if n < 0 {
		b.WriteByte('-')
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
		if n == 0 {
			break
		}
	}
	b.Write(buf[i:])
}
