// Package ingest parses rendered index data back into work records. It
// understands the TSV machine format and the CSV format emitted by the
// render package; postings that share a title, kind and citation are
// merged back into one multi-author work.
package ingest

import (
	"bufio"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/citeparse"
	"repro/internal/model"
	"repro/internal/names"
)

// ErrSyntax is wrapped by all parse failures in strict mode.
var ErrSyntax = errors.New("ingest: syntax error")

// Options configures parsing.
type Options struct {
	// Lenient skips malformed lines (counting them in Result.Skipped)
	// instead of failing.
	Lenient bool
}

// CrossRef is a "see also" reference recovered from the input.
type CrossRef struct {
	From, To model.Author
}

// Result is the outcome of an ingest run.
type Result struct {
	// Works are the recovered records, IDs assigned 1..N in first-
	// appearance order. Multi-author postings are merged.
	Works []*model.Work
	// CrossRefs are recovered see-also references.
	CrossRefs []CrossRef
	// Skipped counts malformed lines dropped in lenient mode.
	Skipped int
}

// mergeState accumulates postings into works.
type mergeState struct {
	byKey map[string]*model.Work
	res   Result
}

func newMergeState() *mergeState {
	return &mergeState{byKey: make(map[string]*model.Work)}
}

func (m *mergeState) addPosting(a model.Author, title string, kind model.Kind, c model.Citation, subjects []string) {
	key := fmt.Sprintf("%s\x00%d\x00%d:%d:%d", title, kind, c.Volume, c.Page, c.Year)
	w, ok := m.byKey[key]
	if !ok {
		w = &model.Work{
			ID:       model.WorkID(len(m.res.Works) + 1),
			Title:    title,
			Kind:     kind,
			Citation: c,
		}
		m.byKey[key] = w
		m.res.Works = append(m.res.Works, w)
	}
	if len(w.Subjects) == 0 && len(subjects) > 0 {
		w.Subjects = subjects
	}
	for _, existing := range w.Authors {
		if existing == a {
			return
		}
	}
	w.Authors = append(w.Authors, a)
}

// splitSubjects parses the " | "-joined subject column.
func splitSubjects(s string) []string {
	var out []string
	for _, part := range strings.Split(s, "|") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// TSV parses the tab-separated machine format produced by render.Render
// with Format TSV: author, title, kind, citation columns. Blank lines and
// lines starting with '#' are ignored.
func TSV(r io.Reader, opts Options) (*Result, error) {
	m := newMergeState()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if err := parseTSVLine(m, line); err != nil {
			if opts.Lenient {
				m.res.Skipped++
				continue
			}
			return nil, fmt.Errorf("%w: line %d: %v", ErrSyntax, lineNo, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ingest: read: %w", err)
	}
	return &m.res, nil
}

func parseTSVLine(m *mergeState, line string) error {
	fields := strings.Split(line, "\t")
	if len(fields) != 4 && len(fields) != 5 {
		return fmt.Errorf("expected 4 or 5 tab-separated fields, got %d", len(fields))
	}
	author, err := names.Parse(fields[0])
	if err != nil {
		return fmt.Errorf("author: %v", err)
	}
	title := strings.TrimSpace(fields[1])
	if title == "" {
		return errors.New("empty title")
	}
	kindStr := strings.TrimSpace(fields[2])
	if kindStr == "see-also" {
		target, err := names.Parse(title)
		if err != nil {
			return fmt.Errorf("see-also target: %v", err)
		}
		m.res.CrossRefs = append(m.res.CrossRefs, CrossRef{From: author, To: target})
		return nil
	}
	kind, err := model.ParseKind(kindStr)
	if err != nil {
		return err
	}
	cite, err := citeparse.Parse(fields[3])
	if err != nil {
		return err
	}
	if err := cite.Validate(); err != nil {
		return err
	}
	var subjects []string
	if len(fields) == 5 {
		subjects = splitSubjects(fields[4])
	}
	if err := validatePosting(author, title, kind, cite, subjects); err != nil {
		return err
	}
	m.addPosting(author, title, kind, cite, subjects)
	return nil
}

// validatePosting runs the model validation over a would-be posting so
// malformed field content (control characters and the like) is rejected
// at parse time rather than surfacing later.
func validatePosting(a model.Author, title string, kind model.Kind, c model.Citation, subjects []string) error {
	w := model.Work{
		ID: 1, Title: title, Kind: kind, Citation: c,
		Authors: []model.Author{a}, Subjects: subjects,
	}
	return w.Validate()
}

// csvHeader must match the render package's CSV layout.
var csvHeader = []string{
	"family", "given", "particle", "suffix", "student",
	"title", "kind", "volume", "page", "year", "subjects",
}

// CSV parses the CSV format produced by render.Render with Format CSV.
func CSV(r io.Reader, opts Options) (*Result, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = len(csvHeader)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("%w: missing header: %v", ErrSyntax, err)
	}
	for i, col := range csvHeader {
		if i >= len(header) || !strings.EqualFold(header[i], col) {
			return nil, fmt.Errorf("%w: header column %d is %q, want %q", ErrSyntax, i, header[i], col)
		}
	}
	m := newMergeState()
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if opts.Lenient {
				m.res.Skipped++
				continue
			}
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
		if err := parseCSVRecord(m, rec); err != nil {
			if opts.Lenient {
				m.res.Skipped++
				continue
			}
			return nil, fmt.Errorf("%w: %v", ErrSyntax, err)
		}
	}
	return &m.res, nil
}

func parseCSVRecord(m *mergeState, rec []string) error {
	student, err := strconv.ParseBool(rec[4])
	if err != nil {
		return fmt.Errorf("student flag: %v", err)
	}
	a := model.Author{
		Family:   rec[0],
		Given:    rec[1],
		Particle: rec[2],
		Suffix:   rec[3],
		Student:  student,
	}
	if err := a.Validate(); err != nil {
		return err
	}
	kind, err := model.ParseKind(rec[6])
	if err != nil {
		return err
	}
	var c model.Citation
	for _, f := range []struct {
		dst  *int
		s    string
		name string
	}{
		{&c.Volume, rec[7], "volume"},
		{&c.Page, rec[8], "page"},
		{&c.Year, rec[9], "year"},
	} {
		v, err := strconv.Atoi(strings.TrimSpace(f.s))
		if err != nil {
			return fmt.Errorf("%s: %v", f.name, err)
		}
		*f.dst = v
	}
	if err := c.Validate(); err != nil {
		return err
	}
	title := strings.TrimSpace(rec[5])
	if title == "" {
		return errors.New("empty title")
	}
	subjects := splitSubjects(rec[10])
	if err := validatePosting(a, title, kind, c, subjects); err != nil {
		return err
	}
	m.addPosting(a, title, kind, c, subjects)
	return nil
}
