package ingest

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/model"
	"repro/internal/render"
)

const sampleTSV = `Abdalla, Tarek F.*	Allegheny-Pittsburgh Coal Co.	case-note	91:973 (1989)
Adler, Mortimer J.	Ideas of Relevance to Law	article	84:1 (1981)
Lewin, Jeff L.	Unlocking the Fire	article	94:563 (1992)
Peng, Syd S.	Unlocking the Fire	article	94:563 (1992)
Tol, Joan E.	Van Tol, Joan E.	see-also	
`

func TestTSVBasic(t *testing.T) {
	res, err := TSV(strings.NewReader(sampleTSV), Options{})
	if err != nil {
		t.Fatalf("TSV: %v", err)
	}
	if len(res.Works) != 3 {
		t.Fatalf("works = %d, want 3 (merged)", len(res.Works))
	}
	if len(res.CrossRefs) != 1 {
		t.Fatalf("crossrefs = %d, want 1", len(res.CrossRefs))
	}
	// Multi-author merge.
	var unlocking *model.Work
	for _, w := range res.Works {
		if w.Title == "Unlocking the Fire" {
			unlocking = w
		}
	}
	if unlocking == nil || len(unlocking.Authors) != 2 {
		t.Fatalf("merge failed: %+v", unlocking)
	}
	// Student flag survives.
	if !res.Works[0].Authors[0].Student {
		t.Error("student flag lost")
	}
	// IDs assigned in order.
	for i, w := range res.Works {
		if w.ID != model.WorkID(i+1) {
			t.Errorf("work %d has ID %d", i, w.ID)
		}
		if err := w.Validate(); err != nil {
			t.Errorf("ingested work invalid: %v", err)
		}
	}
	if ref := res.CrossRefs[0]; ref.From.Family != "Tol" || ref.To.Particle != "Van" {
		t.Errorf("crossref = %+v", ref)
	}
}

func TestTSVCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\n" + sampleTSV
	res, err := TSV(strings.NewReader(in), Options{})
	if err != nil || len(res.Works) != 3 {
		t.Errorf("comments/blanks broke parse: %v, %d works", err, len(res.Works))
	}
}

func TestTSVStrictErrors(t *testing.T) {
	bad := []string{
		"only two\tfields\n",
		"Auth, A.\tTitle\tarticle\tnot-a-cite\n",
		"Auth, A.\tTitle\tno-such-kind\t90:1 (1988)\n",
		"Auth, A.\t\tarticle\t90:1 (1988)\n",
		"\tTitle\tarticle\t90:1 (1988)\n",
		"Auth, A.\tTitle\tarticle\t0:1 (1988)\n", // fails citation Validate
	}
	for _, in := range bad {
		if _, err := TSV(strings.NewReader(in), Options{}); !errors.Is(err, ErrSyntax) {
			t.Errorf("strict parse of %q: err=%v, want ErrSyntax", in, err)
		}
	}
}

func TestTSVLenientSkips(t *testing.T) {
	in := sampleTSV + "garbage line without tabs\nAuth, A.\tTitle\tarticle\tbad\n"
	res, err := TSV(strings.NewReader(in), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient parse: %v", err)
	}
	if res.Skipped != 2 {
		t.Errorf("Skipped = %d, want 2", res.Skipped)
	}
	if len(res.Works) != 3 {
		t.Errorf("works = %d, want 3", len(res.Works))
	}
}

func TestCSVRoundTrip(t *testing.T) {
	// Build an index, render CSV, ingest it back: same postings.
	works := gen.Generate(gen.Config{Seed: 21, Works: 120})
	ix, err := core.Rebuild(collate.Default(), works)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := render.Render(&buf, ix, render.Options{Format: render.CSV}); err != nil {
		t.Fatal(err)
	}
	res, err := CSV(bytes.NewReader(buf.Bytes()), Options{})
	if err != nil {
		t.Fatalf("CSV ingest: %v", err)
	}
	if res.Skipped != 0 {
		t.Errorf("skipped %d rows", res.Skipped)
	}
	ix2, err := core.Rebuild(collate.Default(), res.Works)
	if err != nil {
		t.Fatal(err)
	}
	s1, s2 := ix.Stats(), ix2.Stats()
	if s1.Authors != s2.Authors || s1.Postings != s2.Postings || s1.Works != s2.Works {
		t.Errorf("round trip stats: %+v vs %+v", s1, s2)
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	if _, err := CSV(strings.NewReader("a,b,c\n"), Options{}); !errors.Is(err, ErrSyntax) {
		t.Errorf("bad header: %v", err)
	}
	if _, err := CSV(strings.NewReader(""), Options{}); !errors.Is(err, ErrSyntax) {
		t.Errorf("empty input: %v", err)
	}
}

// The TSV render → ingest → render loop must be a fixed point.
func TestTSVRenderIngestFixedPoint(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 22, Works: 200})
	ix, err := core.Rebuild(collate.Default(), works)
	if err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := render.Render(&first, ix, render.Options{Format: render.TSV}); err != nil {
		t.Fatal(err)
	}
	res, err := TSV(bytes.NewReader(first.Bytes()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ix2, err := core.Rebuild(collate.Default(), res.Works)
	if err != nil {
		t.Fatal(err)
	}
	var second bytes.Buffer
	if err := render.Render(&second, ix2, render.Options{Format: render.TSV}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("TSV render→ingest→render is not a fixed point")
		// Show the first divergence to ease debugging.
		a := strings.Split(first.String(), "\n")
		b := strings.Split(second.String(), "\n")
		for i := 0; i < len(a) && i < len(b); i++ {
			if a[i] != b[i] {
				t.Logf("line %d:\n  first:  %q\n  second: %q", i+1, a[i], b[i])
				break
			}
		}
	}
}
