package ingest

import (
	"strings"
	"testing"
)

// FuzzTSV feeds arbitrary text to the lenient TSV parser: it must never
// panic, and every recovered work must validate.
func FuzzTSV(f *testing.F) {
	f.Add("Abdalla, Tarek F.*\tTitle\tarticle\t91:973 (1989)\n")
	f.Add("A, B.\tT\tarticle\t90:1 (1988)\tMining Law | Property\n")
	f.Add("Tol, J.\tVan Tol, J.\tsee-also\t\n")
	f.Add("# comment\n\n\t\t\t\n")
	f.Add("a\tb\tc\td\te\tf\n")
	f.Fuzz(func(t *testing.T, in string) {
		res, err := TSV(strings.NewReader(in), Options{Lenient: true})
		if err != nil {
			// Only scanner-level failures (e.g. over-long lines) may error
			// in lenient mode.
			return
		}
		for _, w := range res.Works {
			if err := w.Validate(); err != nil {
				t.Fatalf("lenient TSV produced invalid work %v from %q: %v", w, in, err)
			}
		}
	})
}

// FuzzCSV feeds arbitrary text to the lenient CSV parser.
func FuzzCSV(f *testing.F) {
	header := "family,given,particle,suffix,student,title,kind,volume,page,year,subjects\n"
	f.Add(header + "Lewin,Jeff L.,,,false,Title,article,94,563,1992,Mining Law\n")
	f.Add(header + ",,,,,x,y,z,0,0,\n")
	f.Add("not,a,header\n")
	f.Fuzz(func(t *testing.T, in string) {
		res, err := CSV(strings.NewReader(in), Options{Lenient: true})
		if err != nil {
			return // bad header is a legitimate hard error
		}
		for _, w := range res.Works {
			if err := w.Validate(); err != nil {
				t.Fatalf("lenient CSV produced invalid work %v from %q: %v", w, in, err)
			}
		}
	})
}
