package render

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/collate"
	"repro/internal/model"
)

// TitleIndex renders the companion front-matter artifact: a title index,
// listing works alphabetized by title with their authors and citations.
// Only the Text, TSV and Markdown formats are supported; titles collate
// with the same options as author headings.
//
// Cumulative index issues traditionally print both artifacts back to
// back (AUTHOR INDEX, then TITLE INDEX); callers pass the same works the
// author index was built from.
func TitleIndex(w io.Writer, works []*model.Work, coll collate.Options, opts Options) error {
	if opts.RunningHead == "" {
		opts.RunningHead = "TITLE INDEX"
	}
	sorted := make([]*model.Work, len(works))
	copy(sorted, works)
	sort.SliceStable(sorted, func(i, j int) bool {
		ki := collate.KeyString(indexableTitle(sorted[i].Title), coll)
		kj := collate.KeyString(indexableTitle(sorted[j].Title), coll)
		if c := bytes.Compare(ki, kj); c != 0 {
			return c < 0
		}
		return sorted[i].Citation.Compare(sorted[j].Citation) < 0
	})
	switch opts.Format {
	case Text:
		return titleIndexText(w, sorted, coll, opts)
	case TSV:
		return titleIndexTSV(w, sorted)
	case Markdown:
		return titleIndexMarkdown(w, sorted, coll, opts)
	default:
		return fmt.Errorf("render: title index does not support format %s", opts.Format)
	}
}

// indexableTitle drops leading articles ("A", "An", "The") the way index
// compilers file titles.
func indexableTitle(title string) string {
	for _, art := range [...]string{"The ", "A ", "An ", "the ", "a ", "an "} {
		if strings.HasPrefix(title, art) && len(title) > len(art) {
			return title[len(art):]
		}
	}
	return title
}

func titleLetter(title string, coll collate.Options) byte {
	t := indexableTitle(title)
	key := collate.PrimaryPrefix(t, coll)
	for _, c := range key {
		if c >= 'a' && c <= 'z' {
			return c - 'a' + 'A'
		}
		if c >= '0' && c <= '9' {
			return '#'
		}
	}
	return '#'
}

func titleIndexText(w io.Writer, works []*model.Work, coll collate.Options, opts Options) error {
	width := opts.pageWidth()
	citeW := 16
	titleW := (width - citeW - 2) * 3 / 5
	authorW := width - citeW - 2 - titleW
	p := &textPager{w: w, opts: opts}

	var lastLetter byte
	for _, work := range works {
		if !opts.NoSections {
			if l := titleLetter(work.Title, coll); l != lastLetter {
				lastLetter = l
				p.emit("")
				p.emit(center(fmt.Sprintf("— %c —", l), width))
				p.emit("")
			}
		}
		authors := make([]string, len(work.Authors))
		for i, a := range work.Authors {
			authors[i] = a.Display()
		}
		titleLines := wrap(work.Title, titleW)
		authorLines := wrap(strings.Join(authors, "; "), authorW)
		n := max(len(titleLines), len(authorLines))
		for i := 0; i < n; i++ {
			t, a, c := "", "", ""
			if i < len(titleLines) {
				t = titleLines[i]
			}
			if i < len(authorLines) {
				a = authorLines[i]
			}
			if i == 0 {
				c = work.Citation.String()
			}
			p.emit(fmt.Sprintf("%-*s %-*s %*s", titleW, t, authorW, a, citeW, c))
		}
	}
	if p.err != nil {
		return fmt.Errorf("render: title index: %w", p.err)
	}
	if p.line == 0 && p.page == 0 {
		p.header()
	}
	return p.err
}

func titleIndexTSV(w io.Writer, works []*model.Work) error {
	var b strings.Builder
	for _, work := range works {
		authors := make([]string, len(work.Authors))
		for i, a := range work.Authors {
			authors[i] = a.Display()
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n",
			work.Title, strings.Join(authors, "; "), work.Kind, work.Citation)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func titleIndexMarkdown(w io.Writer, works []*model.Work, coll collate.Options, opts Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", opts.runningHead())
	if vol := opts.Volume.String(); vol != "" {
		fmt.Fprintf(&b, "\n_%s_\n", vol)
	}
	var lastLetter byte
	for _, work := range works {
		if !opts.NoSections {
			if l := titleLetter(work.Title, coll); l != lastLetter {
				lastLetter = l
				fmt.Fprintf(&b, "\n## %c\n\n", l)
			}
		}
		authors := make([]string, len(work.Authors))
		for i, a := range work.Authors {
			authors[i] = a.Display()
		}
		fmt.Fprintf(&b, "- *%s* — %s, %s\n",
			mdEscape(work.Title), mdEscape(strings.Join(authors, "; ")), work.Citation)
	}
	_, err := io.WriteString(w, b.String())
	return err
}
