package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/model"
	"repro/internal/names"
)

func subjectFixture() []*model.Work {
	mk := func(id model.WorkID, title, cite, author string, subjects ...string) *model.Work {
		return &model.Work{
			ID: id, Title: title,
			Citation: citeparse.MustParse(cite),
			Authors:  []model.Author{names.MustParse(author)},
			Subjects: subjects,
		}
	}
	return []*model.Work{
		mk(1, "Strip Mining Overview", "75:319 (1973)", "Cardi, Vincent P.", "Mining Law"),
		mk(2, "Methane Rights", "94:563 (1992)", "Lewin, Jeff L.", "Mining Law", "Property"),
		mk(3, "Jury Selection Reform", "87:219 (1984)", "DiSalvo, Charles R.", "Civil Procedure"),
		mk(4, "Orphan Work", "90:1 (1988)", "Nobody, Files"), // no subjects
	}
}

func TestSubjectIndexGrouping(t *testing.T) {
	var buf bytes.Buffer
	if err := SubjectIndex(&buf, subjectFixture(), collate.Default(), Options{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	// 1 + 2 + 1 + 1 postings (work 2 under two subjects).
	if len(lines) != 5 {
		t.Fatalf("lines = %d: %v", len(lines), lines)
	}
	// Group order: (unclassified) < Civil Procedure < Mining Law < Property.
	wantPrefixes := []string{"(unclassified)", "Civil Procedure", "Mining Law", "Mining Law", "Property"}
	for i, p := range wantPrefixes {
		if !strings.HasPrefix(lines[i], p+"\t") {
			t.Fatalf("line %d = %q, want subject %q", i, lines[i], p)
		}
	}
	// Within Mining Law: citation order (75 before 94).
	if !strings.Contains(lines[2], "75:319") || !strings.Contains(lines[3], "94:563") {
		t.Errorf("citation order inside group wrong: %v", lines[2:4])
	}
}

func TestSubjectIndexText(t *testing.T) {
	var buf bytes.Buffer
	err := SubjectIndex(&buf, subjectFixture(), collate.Default(), Options{
		Format: Text,
		Volume: model.Volume{Publication: "W. VA. L. REV.", Number: 95, Year: 1993},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SUBJECT INDEX", "MINING LAW", "CIVIL PROCEDURE", "Methane Rights", "94:563 (1992)"} {
		if !strings.Contains(out, want) {
			t.Errorf("subject index missing %q", want)
		}
	}
	for i, line := range strings.Split(out, "\n") {
		if n := len([]rune(line)); n > 78 {
			t.Fatalf("line %d too wide (%d): %q", i, n, line)
		}
	}
}

func TestSubjectIndexMarkdownAndErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := SubjectIndex(&buf, subjectFixture(), collate.Default(), Options{Format: Markdown}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "## Mining Law") {
		t.Error("markdown heading missing")
	}
	for _, f := range []Format{CSV, JSON} {
		if err := SubjectIndex(&buf, nil, collate.Default(), Options{Format: f}); err == nil {
			t.Errorf("format %s accepted", f)
		}
	}
}

func TestSubjectIndexEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := SubjectIndex(&buf, nil, collate.Default(), Options{Format: Text}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "SUBJECT INDEX") {
		t.Error("empty subject index lacks header")
	}
}
