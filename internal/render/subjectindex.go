package render

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/collate"
	"repro/internal/model"
)

// SubjectIndex renders the third front-matter artifact: works grouped
// under their editorial subject headings, headings alphabetized by the
// given collation, works within a heading in citation order. Works with
// no subjects are filed under "(unclassified)". Text, TSV and Markdown
// formats are supported.
func SubjectIndex(w io.Writer, works []*model.Work, coll collate.Options, opts Options) error {
	if opts.RunningHead == "" {
		opts.RunningHead = "SUBJECT INDEX"
	}
	groups := groupBySubject(works, coll)
	switch opts.Format {
	case Text:
		return subjectIndexText(w, groups, opts)
	case TSV:
		return subjectIndexTSV(w, groups)
	case Markdown:
		return subjectIndexMarkdown(w, groups, opts)
	default:
		return fmt.Errorf("render: subject index does not support format %s", opts.Format)
	}
}

// Unclassified is the heading for works without subjects.
const Unclassified = "(unclassified)"

type subjectGroup struct {
	subject string
	works   []*model.Work
}

func groupBySubject(works []*model.Work, coll collate.Options) []subjectGroup {
	byKey := map[string]*subjectGroup{}
	for _, w := range works {
		subjects := w.Subjects
		if len(subjects) == 0 {
			subjects = []string{Unclassified}
		}
		for _, s := range subjects {
			g, ok := byKey[s]
			if !ok {
				g = &subjectGroup{subject: s}
				byKey[s] = g
			}
			g.works = append(g.works, w)
		}
	}
	groups := make([]subjectGroup, 0, len(byKey))
	for _, g := range byKey {
		sort.SliceStable(g.works, func(i, j int) bool {
			return g.works[i].Citation.Compare(g.works[j].Citation) < 0
		})
		groups = append(groups, *g)
	}
	sort.Slice(groups, func(i, j int) bool {
		return bytes.Compare(
			collate.KeyString(groups[i].subject, coll),
			collate.KeyString(groups[j].subject, coll)) < 0
	})
	return groups
}

func subjectIndexText(w io.Writer, groups []subjectGroup, opts Options) error {
	width := opts.pageWidth()
	citeW := 16
	bodyW := width - citeW - 1
	p := &textPager{w: w, opts: opts}
	for _, g := range groups {
		p.emit("")
		p.emit(strings.ToUpper(g.subject))
		for _, work := range g.works {
			authors := make([]string, len(work.Authors))
			for i, a := range work.Authors {
				authors[i] = a.Display()
			}
			entry := fmt.Sprintf("%s — %s", work.Title, strings.Join(authors, "; "))
			lines := wrap(entry, bodyW-2)
			for i, line := range lines {
				cite := ""
				if i == 0 {
					cite = work.Citation.String()
				}
				p.emit(fmt.Sprintf("  %-*s %*s", bodyW-2, line, citeW-1, cite))
			}
		}
	}
	if p.err != nil {
		return fmt.Errorf("render: subject index: %w", p.err)
	}
	if p.line == 0 && p.page == 0 {
		p.header()
	}
	return p.err
}

func subjectIndexTSV(w io.Writer, groups []subjectGroup) error {
	var b strings.Builder
	for _, g := range groups {
		for _, work := range g.works {
			authors := make([]string, len(work.Authors))
			for i, a := range work.Authors {
				authors[i] = a.Display()
			}
			fmt.Fprintf(&b, "%s\t%s\t%s\t%s\n",
				g.subject, work.Title, strings.Join(authors, "; "), work.Citation)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func subjectIndexMarkdown(w io.Writer, groups []subjectGroup, opts Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", opts.runningHead())
	if vol := opts.Volume.String(); vol != "" {
		fmt.Fprintf(&b, "\n_%s_\n", vol)
	}
	for _, g := range groups {
		fmt.Fprintf(&b, "\n## %s\n\n", mdEscape(g.subject))
		for _, work := range g.works {
			authors := make([]string, len(work.Authors))
			for i, a := range work.Authors {
				authors[i] = a.Display()
			}
			fmt.Fprintf(&b, "- *%s* — %s, %s\n",
				mdEscape(work.Title), mdEscape(strings.Join(authors, "; ")), work.Citation)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}
