package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/model"
	"repro/internal/names"
)

func titleFixture() []*model.Work {
	mk := func(id model.WorkID, title, cite, author string) *model.Work {
		return &model.Work{
			ID: id, Title: title,
			Citation: citeparse.MustParse(cite),
			Authors:  []model.Author{names.MustParse(author)},
		}
	}
	return []*model.Work{
		mk(1, "The Silent Revolution in Nuisance Law", "92:235 (1989)", "Lewin, Jeff L."),
		mk(2, "A Survey of Strip Mining", "75:319 (1973)", "Cardi, Vincent P."),
		mk(3, "Zoning Ordinances Revisited", "78:522 (1976)", "Bailey, John P.*"),
		mk(4, "An Economic Analysis of Antitrust Law", "88:677 (1986)", "Cirace, John"),
		mk(5, "Ideas of Relevance to Law", "84:1 (1981)", "Adler, Mortimer J."),
	}
}

func TestTitleIndexOrderIgnoresArticles(t *testing.T) {
	var buf bytes.Buffer
	if err := TitleIndex(&buf, titleFixture(), collate.Default(), Options{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	// Filing order: Economic (An), Ideas, Silent (The), Survey (A), Zoning.
	wantOrder := []string{"An Economic", "Ideas", "The Silent", "A Survey", "Zoning"}
	for i, prefix := range wantOrder {
		if !strings.HasPrefix(lines[i], prefix) {
			t.Fatalf("line %d = %q, want prefix %q\nall: %v", i, lines[i], prefix, lines)
		}
	}
}

func TestTitleIndexTextLayout(t *testing.T) {
	var buf bytes.Buffer
	err := TitleIndex(&buf, titleFixture(), collate.Default(), Options{
		Format: Text,
		Volume: model.Volume{Publication: "W. VA. L. REV.", Number: 95, Year: 1993},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"TITLE INDEX", "— E —", "— Z —", "92:235 (1989)", "Lewin, Jeff L."} {
		if !strings.Contains(out, want) {
			t.Errorf("text title index missing %q", want)
		}
	}
	for i, line := range strings.Split(out, "\n") {
		if n := len([]rune(line)); n > 78 {
			t.Fatalf("line %d too wide (%d): %q", i, n, line)
		}
	}
}

func TestTitleIndexMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := TitleIndex(&buf, titleFixture(), collate.Default(), Options{Format: Markdown}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TITLE INDEX") || !strings.Contains(out, "## S") {
		t.Errorf("markdown title index malformed:\n%s", out)
	}
}

func TestTitleIndexUnsupportedFormats(t *testing.T) {
	for _, f := range []Format{CSV, JSON} {
		var buf bytes.Buffer
		if err := TitleIndex(&buf, titleFixture(), collate.Default(), Options{Format: f}); err == nil {
			t.Errorf("format %s accepted", f)
		}
	}
}

func TestTitleIndexEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := TitleIndex(&buf, nil, collate.Default(), Options{Format: Text}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "TITLE INDEX") {
		t.Error("empty title index lacks header")
	}
}

func TestIndexableTitle(t *testing.T) {
	tests := []struct{ in, want string }{
		{"The Silent Revolution", "Silent Revolution"},
		{"A Survey", "Survey"},
		{"An Essay", "Essay"},
		{"Theories of Law", "Theories of Law"}, // "The" must match a whole word
		{"Analysis", "Analysis"},
		{"The ", "The "}, // nothing after the article: unchanged
	}
	for _, tt := range tests {
		if got := indexableTitle(tt.in); got != tt.want {
			t.Errorf("indexableTitle(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestTitleIndexDoesNotMutateInput(t *testing.T) {
	works := titleFixture()
	first := works[0].Title
	var buf bytes.Buffer
	if err := TitleIndex(&buf, works, collate.Default(), Options{Format: TSV}); err != nil {
		t.Fatal(err)
	}
	if works[0].Title != first {
		t.Error("TitleIndex reordered or mutated caller slice contents")
	}
}
