package render

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/model"
)

// statsFixture builds a tiny index plus its metrics tracker.
func statsFixture(t *testing.T) (*core.Index, *Statistics) {
	t.Helper()
	works := []*model.Work{
		{ID: 1, Title: "Solo Study", Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
			Authors: []model.Author{{Family: "Alpha", Given: "A."}}},
		{ID: 2, Title: "Joint Effort", Citation: model.Citation{Volume: 1, Page: 50, Year: 1991},
			Authors: []model.Author{{Family: "Alpha", Given: "A."}, {Family: "Beta", Given: "B."}}},
	}
	ix, err := core.Rebuild(collate.Default(), works)
	if err != nil {
		t.Fatal(err)
	}
	tr := metrics.NewEngine(metrics.Harmonic)
	for _, w := range works {
		tr.Add(w)
	}
	return ix, BuildStatistics(tr, 10)
}

func TestBuildStatistics(t *testing.T) {
	_, st := statsFixture(t)
	if st.Works != 2 || st.Authors != 2 || st.Postings != 3 {
		t.Errorf("totals = %+v", st)
	}
	if len(st.Top) != 2 || st.Top[0].Heading != "Alpha, A." {
		t.Errorf("top = %+v", st.Top)
	}
	if BuildStatistics(nil, 5) != nil {
		t.Error("BuildStatistics(nil) != nil")
	}
}

func TestTextAppendix(t *testing.T) {
	ix, st := statsFixture(t)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: Text, Appendix: st}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "— STATISTICS —") {
		t.Error("text output missing statistics rule")
	}
	if !strings.Contains(out, "2 works · 2 contributors") {
		t.Errorf("text output missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "Alpha, A.") || !strings.Contains(out, "collabs") {
		t.Errorf("text output missing table:\n%s", out)
	}
	// Without the appendix the rule must not appear.
	buf.Reset()
	if err := Render(&buf, ix, Options{Format: Text}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "STATISTICS") {
		t.Error("appendix rendered without being requested")
	}
}

func TestMarkdownAppendix(t *testing.T) {
	ix, st := statsFixture(t)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: Markdown, Appendix: st}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Statistics") {
		t.Error("markdown output missing statistics heading")
	}
	if !strings.Contains(out, "| rank | author |") {
		t.Errorf("markdown output missing table header:\n%s", out)
	}
	if strings.Count(out, "\n| ") < 3 { // header + divider + 2 rows
		t.Errorf("markdown table rows missing:\n%s", out)
	}
}

func TestJSONAppendix(t *testing.T) {
	ix, st := statsFixture(t)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: JSON, Appendix: st}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Sections   []json.RawMessage `json:"sections"`
		Statistics *Statistics       `json:"statistics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Statistics == nil || doc.Statistics.Works != 2 || len(doc.Statistics.Top) != 2 {
		t.Errorf("json statistics = %+v", doc.Statistics)
	}
	// Appendix-free JSON omits the member entirely.
	buf.Reset()
	if err := Render(&buf, ix, Options{Format: JSON}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "statistics") {
		t.Error("json output has statistics without the option")
	}
}

// TSV and CSV are round-trip formats; the appendix must never leak in.
func TestMachineFormatsIgnoreAppendix(t *testing.T) {
	ix, st := statsFixture(t)
	for _, f := range []Format{TSV, CSV} {
		var with, without bytes.Buffer
		if err := Render(&with, ix, Options{Format: f, Appendix: st}); err != nil {
			t.Fatal(err)
		}
		if err := Render(&without, ix, Options{Format: f}); err != nil {
			t.Fatal(err)
		}
		if with.String() != without.String() {
			t.Errorf("%v output changed by appendix", f)
		}
	}
}

func TestEmptyAppendixTable(t *testing.T) {
	ix := core.New(collate.Default())
	st := BuildStatistics(metrics.NewEngine(metrics.Harmonic), 10)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: Text, Appendix: st}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no contributors)") {
		t.Errorf("empty appendix output:\n%s", buf.String())
	}
}
