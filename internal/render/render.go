// Package render turns an author index into its printed forms: the
// classic three-column text pages the front-matter artifact uses, plus
// Markdown, CSV, JSON and a tab-separated machine format that round-trips
// through the ingest package.
package render

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/trace"
)

// Format selects the output encoding.
type Format int

// Supported formats.
const (
	Text Format = iota
	TSV
	Markdown
	CSV
	JSON
	HTMLPage
)

var formatNames = map[string]Format{
	"text": Text, "tsv": TSV, "markdown": Markdown, "md": Markdown,
	"csv": CSV, "json": JSON, "html": HTMLPage,
}

// ParseFormat converts a format name ("text", "tsv", "markdown", "csv",
// "json") into a Format.
func ParseFormat(s string) (Format, error) {
	f, ok := formatNames[strings.ToLower(s)]
	if !ok {
		return 0, fmt.Errorf("render: unknown format %q", s)
	}
	return f, nil
}

// String names the format.
func (f Format) String() string {
	switch f {
	case Text:
		return "text"
	case TSV:
		return "tsv"
	case Markdown:
		return "markdown"
	case CSV:
		return "csv"
	case JSON:
		return "json"
	case HTMLPage:
		return "html"
	}
	return fmt.Sprintf("format(%d)", int(f))
}

// Options configures rendering. The zero value renders unpaginated text
// at 78 columns with section headings.
type Options struct {
	Format Format
	// Volume labels the running head ("Proc. VLDB vol. 26 (2000)").
	Volume model.Volume
	// RunningHead is the page header title; default "AUTHOR INDEX".
	RunningHead string
	// PageWidth is the text page width in characters (default 78, min 40).
	PageWidth int
	// PageLength paginates text output at this many body lines per page;
	// zero disables pagination.
	PageLength int
	// NoSections suppresses the per-letter headings in text/Markdown.
	NoSections bool
	// Statistics appends the contributor-summary appendix (Text,
	// Markdown and JSON formats). The facade fills Appendix from its
	// metrics tracker when this is set.
	Statistics bool
	// StatsLimit caps the ranked contributor table (default 10).
	StatsLimit int
	// Appendix is the statistics payload rendered when non-nil. Callers
	// going through the facade set Statistics instead and let it build
	// this; direct render callers supply it themselves (see
	// BuildStatistics).
	Appendix *Statistics
	// Network appends the collaboration-network appendix (Text, Markdown
	// and JSON formats). The facade fills NetworkAppendix from its
	// coauthorship graph when this is set.
	Network bool
	// NetworkLimit caps the ranked centrality table (default 10).
	NetworkLimit int
	// NetworkAppendix is the network payload rendered when non-nil;
	// direct render callers supply it themselves (see BuildNetwork).
	NetworkAppendix *NetworkStats
}

func (o Options) runningHead() string {
	if o.RunningHead == "" {
		return "AUTHOR INDEX"
	}
	return o.RunningHead
}

func (o Options) pageWidth() int {
	if o.PageWidth <= 0 {
		return 78
	}
	if o.PageWidth < 40 {
		return 40
	}
	return o.PageWidth
}

// Render writes the index to w in the selected format.
func Render(w io.Writer, ix *core.Index, opts Options) error {
	return RenderCtx(context.Background(), w, ix, opts)
}

// RenderCtx is Render carrying a trace context: section collection and
// encoding are recorded as child spans (text output gets one span per
// letter section), and cancellation is honored between phases — a
// client that hung up stops a large render early with ctx.Err().
func RenderCtx(ctx context.Context, w io.Writer, ix *core.Index, opts Options) error {
	ctx, sp := trace.StartSpan(ctx, "render")
	sp.SetAttr("format", opts.Format.String())
	defer sp.End()
	_, secSpan := trace.StartSpan(ctx, "render.sections")
	sections := ix.Sections()
	secSpan.SetInt("sections", int64(len(sections)))
	secSpan.End()
	if err := ctx.Err(); err != nil {
		return err
	}
	return encodeSections(ctx, w, sections, opts)
}

// RenderSectionsCtx renders pre-collected sections in the selected
// format — the scatter-gather path: the sharded facade merges per-shard
// sections in print order and hands the result here. The span shape and
// output are identical to RenderCtx fed an index holding the same
// entries.
func RenderSectionsCtx(ctx context.Context, w io.Writer, sections []core.Section, opts Options) error {
	ctx, sp := trace.StartSpan(ctx, "render")
	sp.SetAttr("format", opts.Format.String())
	defer sp.End()
	if err := ctx.Err(); err != nil {
		return err
	}
	return encodeSections(ctx, w, sections, opts)
}

// encodeSections dispatches collected sections to the per-format
// encoders, timing non-text encodes under one render.encode span.
func encodeSections(ctx context.Context, w io.Writer, sections []core.Section, opts Options) error {
	if opts.Format == Text {
		return renderText(ctx, w, sections, opts)
	}
	_, enc := trace.StartSpan(ctx, "render.encode")
	defer enc.End()
	switch opts.Format {
	case TSV:
		return renderTSV(w, sections)
	case Markdown:
		return renderMarkdown(w, sections, opts)
	case CSV:
		return renderCSV(w, sections)
	case JSON:
		return renderJSON(w, sections, opts)
	case HTMLPage:
		return htmlSections(w, sections, opts)
	}
	return fmt.Errorf("render: unknown format %d", int(opts.Format))
}

// ---- text ----

type textPager struct {
	w          io.Writer
	opts       Options
	line, page int
	err        error
}

func (p *textPager) emit(s string) {
	if p.err != nil {
		return
	}
	if p.line == 0 {
		p.header()
		if p.err != nil {
			return
		}
	}
	if _, err := io.WriteString(p.w, s+"\n"); err != nil {
		p.err = err
		return
	}
	p.line++
	if p.opts.PageLength > 0 && p.line >= p.opts.PageLength {
		p.line = 0
		if _, err := io.WriteString(p.w, "\n"); err != nil {
			p.err = err
		}
	}
}

func (p *textPager) header() {
	p.page++
	width := p.opts.pageWidth()
	head := center(p.opts.runningHead(), width)
	lines := []string{head}
	if vol := p.opts.Volume.String(); vol != "" {
		lines = append(lines, center(fmt.Sprintf("%s — page %d", vol, p.page), width))
	}
	lines = append(lines, strings.Repeat("─", width))
	for _, l := range lines {
		if _, err := io.WriteString(p.w, l+"\n"); err != nil {
			p.err = err
			return
		}
	}
}

func renderText(ctx context.Context, w io.Writer, sections []core.Section, opts Options) error {
	parent := trace.FromContext(ctx)
	width := opts.pageWidth()
	// Column plan: author | gap | title | gap | citation.
	citeW := 16
	authorW := (width - citeW - 2) * 2 / 5
	titleW := width - citeW - 2 - authorW
	p := &textPager{w: w, opts: opts}

	row := func(author, title, cite string) {
		titleLines := wrap(title, titleW)
		authorLines := wrap(author, authorW)
		n := max(len(titleLines), len(authorLines))
		for i := 0; i < n; i++ {
			a, t, c := "", "", ""
			if i < len(authorLines) {
				a = authorLines[i]
			}
			if i < len(titleLines) {
				t = titleLines[i]
			}
			if i == 0 {
				c = cite
			}
			p.emit(fmt.Sprintf("%-*s %-*s %*s", authorW, a, titleW, t, citeW, c))
		}
	}

	for _, sec := range sections {
		// A disconnected client stops a large text render at the next
		// section boundary instead of formatting pages nobody will read.
		if err := ctx.Err(); err != nil {
			return err
		}
		secSpan := parent.StartChild("render.section " + string(sec.Letter))
		secSpan.SetInt("entries", int64(len(sec.Entries)))
		if !opts.NoSections {
			p.emit("")
			p.emit(center(fmt.Sprintf("— %c —", sec.Letter), width))
			p.emit("")
		}
		for _, e := range sec.Entries {
			name := e.Author.Display()
			for _, ref := range e.SeeAlso {
				row(name, "See also: "+ref.Display(), "")
			}
			for _, work := range e.Works {
				row(name, work.Title, work.Citation.String())
			}
		}
		secSpan.End()
	}
	if opts.Appendix != nil {
		appendTextStats(p, opts.Appendix)
	}
	if opts.NetworkAppendix != nil {
		appendTextNetwork(p, opts.NetworkAppendix)
	}
	if p.err != nil {
		return fmt.Errorf("render: text: %w", p.err)
	}
	if p.line == 0 && p.page == 0 {
		// Completely empty index: still emit the header for context.
		p.header()
	}
	return p.err
}

func center(s string, width int) string {
	if len(s) >= width {
		return s
	}
	pad := (width - len(s)) / 2
	return strings.Repeat(" ", pad) + s
}

// wrap greedily wraps s into lines at most width runes wide, hard-breaking
// words longer than the width.
func wrap(s string, width int) []string {
	if width < 1 {
		width = 1
	}
	words := strings.Fields(s)
	if len(words) == 0 {
		return []string{""}
	}
	var lines []string
	cur := ""
	flush := func() {
		if cur != "" {
			lines = append(lines, cur)
			cur = ""
		}
	}
	for _, word := range words {
		for len([]rune(word)) > width {
			flush()
			r := []rune(word)
			lines = append(lines, string(r[:width]))
			word = string(r[width:])
		}
		switch {
		case cur == "":
			cur = word
		case len([]rune(cur))+1+len([]rune(word)) <= width:
			cur += " " + word
		default:
			flush()
			cur = word
		}
	}
	flush()
	return lines
}

// ---- TSV (machine round-trip format) ----

// renderTSV emits one posting per line:
//
//	author display <TAB> title <TAB> kind <TAB> vol:page (year) [<TAB> subjects]
//
// The optional fifth column carries subject headings joined by " | ".
// Cross-references are encoded with the pseudo-kind "see-also" and the
// target heading in the title column.
func renderTSV(w io.Writer, sections []core.Section) error {
	var b strings.Builder
	for _, sec := range sections {
		for _, e := range sec.Entries {
			name := e.Author.Display()
			for _, ref := range e.SeeAlso {
				fmt.Fprintf(&b, "%s\t%s\tsee-also\t\n", name, ref.Display())
			}
			for _, work := range e.Works {
				fmt.Fprintf(&b, "%s\t%s\t%s\t%s", name, work.Title, work.Kind, work.Citation)
				if len(work.Subjects) > 0 {
					fmt.Fprintf(&b, "\t%s", strings.Join(work.Subjects, " | "))
				}
				b.WriteByte('\n')
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// ---- Markdown ----

func renderMarkdown(w io.Writer, sections []core.Section, opts Options) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# %s\n", opts.runningHead())
	if vol := opts.Volume.String(); vol != "" {
		fmt.Fprintf(&b, "\n_%s_\n", vol)
	}
	for _, sec := range sections {
		if !opts.NoSections {
			fmt.Fprintf(&b, "\n## %c\n\n", sec.Letter)
		}
		for _, e := range sec.Entries {
			name := e.Author.Display()
			for _, ref := range e.SeeAlso {
				fmt.Fprintf(&b, "- **%s** — *see also* %s\n", mdEscape(name), mdEscape(ref.Display()))
			}
			for _, work := range e.Works {
				fmt.Fprintf(&b, "- **%s** — %s, %s\n", mdEscape(name), mdEscape(work.Title), work.Citation)
			}
		}
	}
	if opts.Appendix != nil {
		appendMarkdownStats(&b, opts.Appendix)
	}
	if opts.NetworkAppendix != nil {
		appendMarkdownNetwork(&b, opts.NetworkAppendix)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func mdEscape(s string) string {
	r := strings.NewReplacer("*", `\*`, "_", `\_`, "`", "\\`", "[", `\[`, "]", `\]`)
	return r.Replace(s)
}

// ---- CSV ----

// csvHeader is the column layout shared with the ingest package;
// subjects are joined with " | " in the final column.
var csvHeader = []string{
	"family", "given", "particle", "suffix", "student",
	"title", "kind", "volume", "page", "year", "subjects",
}

func renderCSV(w io.Writer, sections []core.Section) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("render: csv: %w", err)
	}
	for _, sec := range sections {
		for _, e := range sec.Entries {
			a := e.Author
			for _, work := range e.Works {
				rec := []string{
					a.Family, a.Given, a.Particle, a.Suffix,
					strconv.FormatBool(a.Student),
					work.Title, work.Kind.String(),
					strconv.Itoa(work.Citation.Volume),
					strconv.Itoa(work.Citation.Page),
					strconv.Itoa(work.Citation.Year),
					strings.Join(work.Subjects, " | "),
				}
				if err := cw.Write(rec); err != nil {
					return fmt.Errorf("render: csv: %w", err)
				}
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("render: csv: %w", err)
	}
	return nil
}

// ---- JSON ----

// jsonDoc mirrors the section structure for the JSON encoding.
type jsonDoc struct {
	Sections []jsonSection `json:"sections"`
	// Statistics carries the contributor appendix when requested.
	Statistics *Statistics `json:"statistics,omitempty"`
	// Network carries the collaboration-network appendix when requested.
	Network *NetworkStats `json:"network,omitempty"`
}

type jsonSection struct {
	Letter  string      `json:"letter"`
	Entries []jsonEntry `json:"entries"`
}

type jsonEntry struct {
	Author  jsonAuthor `json:"author"`
	Works   []jsonWork `json:"works,omitempty"`
	SeeAlso []string   `json:"seeAlso,omitempty"`
}

type jsonAuthor struct {
	Family   string `json:"family"`
	Given    string `json:"given,omitempty"`
	Particle string `json:"particle,omitempty"`
	Suffix   string `json:"suffix,omitempty"`
	Student  bool   `json:"student,omitempty"`
}

type jsonWork struct {
	Title    string `json:"title"`
	Kind     string `json:"kind"`
	Citation string `json:"citation"`
}

func renderJSON(w io.Writer, sections []core.Section, opts Options) error {
	doc := jsonDoc{
		Sections:   make([]jsonSection, 0, len(sections)),
		Statistics: opts.Appendix,
		Network:    opts.NetworkAppendix,
	}
	for _, sec := range sections {
		js := jsonSection{Letter: string(sec.Letter)}
		for _, e := range sec.Entries {
			je := jsonEntry{Author: jsonAuthor{
				Family:   e.Author.Family,
				Given:    e.Author.Given,
				Particle: e.Author.Particle,
				Suffix:   e.Author.Suffix,
				Student:  e.Author.Student,
			}}
			for _, ref := range e.SeeAlso {
				je.SeeAlso = append(je.SeeAlso, ref.Display())
			}
			for _, work := range e.Works {
				je.Works = append(je.Works, jsonWork{
					Title:    work.Title,
					Kind:     work.Kind.String(),
					Citation: work.Citation.String(),
				})
			}
			js.Entries = append(js.Entries, je)
		}
		doc.Sections = append(doc.Sections, js)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("render: json: %w", err)
	}
	return nil
}
