package render

import (
	"fmt"
	"html/template"
	"io"

	"repro/internal/core"
)

// htmlTemplate renders the author index as a standalone page: a letter
// navigation bar, one section per letter, one definition-list entry per
// heading. All interpolation is through html/template, so titles and
// names are escaped.
var htmlTemplate = template.Must(template.New("index").Parse(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{{.Head}}{{with .Volume}} — {{.}}{{end}}</title>
<style>
body { font-family: Georgia, serif; max-width: 60rem; margin: 2rem auto; padding: 0 1rem; }
h1 { text-align: center; letter-spacing: .3em; }
.volume { text-align: center; font-style: italic; margin-bottom: 2rem; }
nav { text-align: center; margin: 1rem 0 2rem; }
nav a { margin: 0 .25rem; text-decoration: none; }
h2 { border-bottom: 1px solid #999; }
dt { font-weight: bold; margin-top: .6rem; }
dd { margin: 0 0 0 2rem; }
.cite { color: #555; white-space: nowrap; }
.seealso { font-style: italic; }
</style>
</head>
<body>
<h1>{{.Head}}</h1>
{{with .Volume}}<div class="volume">{{.}}</div>{{end}}
<nav>{{range .Sections}}<a href="#sec-{{.Letter}}">{{.Letter}}</a>{{end}}</nav>
{{range .Sections}}<section id="sec-{{.Letter}}">
<h2>{{.Letter}}</h2>
<dl>
{{range .Entries}}<dt>{{.Heading}}</dt>
{{range .SeeAlso}}<dd class="seealso">see also {{.}}</dd>
{{end}}{{range .Works}}<dd>{{.Title}} <span class="cite">{{.Citation}}</span></dd>
{{end}}{{end}}</dl>
</section>
{{end}}</body>
</html>
`))

type htmlDoc struct {
	Head     string
	Volume   string
	Sections []htmlSection
}

type htmlSection struct {
	Letter  string
	Entries []htmlEntry
}

type htmlEntry struct {
	Heading string
	SeeAlso []string
	Works   []htmlWork
}

type htmlWork struct {
	Title    string
	Citation string
}

// HTML renders the author index as a standalone HTML page.
func HTML(w io.Writer, ix *core.Index, opts Options) error {
	return htmlSections(w, ix.Sections(), opts)
}

// htmlSections renders pre-collected sections as the HTML page — the
// shared body of HTML and the scatter-gather render path, which merges
// per-shard sections before encoding.
func htmlSections(w io.Writer, sections []core.Section, opts Options) error {
	doc := htmlDoc{Head: opts.runningHead(), Volume: opts.Volume.String()}
	for _, sec := range sections {
		hs := htmlSection{Letter: string(sec.Letter)}
		for _, e := range sec.Entries {
			he := htmlEntry{Heading: e.Author.Display()}
			for _, ref := range e.SeeAlso {
				he.SeeAlso = append(he.SeeAlso, ref.Display())
			}
			for _, work := range e.Works {
				he.Works = append(he.Works, htmlWork{Title: work.Title, Citation: work.Citation.String()})
			}
			hs.Entries = append(hs.Entries, he)
		}
		doc.Sections = append(doc.Sections, hs)
	}
	if err := htmlTemplate.Execute(w, doc); err != nil {
		return fmt.Errorf("render: html: %w", err)
	}
	return nil
}
