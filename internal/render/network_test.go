package render

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func networkFixture(t *testing.T) (*core.Index, *graph.Graph) {
	t.Helper()
	works := []*model.Work{
		{ID: 1, Title: "Joint Work", Citation: model.Citation{Volume: 1, Page: 1, Year: 1990},
			Authors: []model.Author{{Family: "Lewin", Given: "Jeff L."}, {Family: "Peng", Given: "Syd S."}}},
		{ID: 2, Title: "Solo Work", Citation: model.Citation{Volume: 1, Page: 9, Year: 1991},
			Authors: []model.Author{{Family: "Adler", Given: "Mortimer J."}}},
	}
	ix, err := core.Rebuild(collate.Default(), works)
	if err != nil {
		t.Fatal(err)
	}
	return ix, graph.NewFromWorks(0, works)
}

func TestNetworkAppendixText(t *testing.T) {
	ix, g := networkFixture(t)
	var buf bytes.Buffer
	err := Render(&buf, ix, Options{Format: Text, NetworkAppendix: BuildNetwork(g, 0)})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "— COLLABORATION NETWORK —") {
		t.Errorf("no network rule in:\n%s", out)
	}
	if !strings.Contains(out, "3 authors · 1 collaborating pairs · 2 components (largest 2)") {
		t.Errorf("summary line missing in:\n%s", out)
	}
	if !strings.Contains(out, "Lewin, Jeff L.") {
		t.Errorf("centrality table missing in:\n%s", out)
	}
}

func TestNetworkAppendixMarkdown(t *testing.T) {
	ix, g := networkFixture(t)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: Markdown, NetworkAppendix: BuildNetwork(g, 2)}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "## Collaboration Network") {
		t.Errorf("no section in:\n%s", out)
	}
	if strings.Count(out, "| ") < 3 { // header + separator + at least one row
		t.Errorf("no table in:\n%s", out)
	}
	// The limit caps the table (the index body above still lists Adler).
	_, table, _ := strings.Cut(out, "## Collaboration Network")
	if strings.Contains(table, "Adler") {
		t.Errorf("limit 2 still lists the 3rd author:\n%s", table)
	}
}

func TestNetworkAppendixJSON(t *testing.T) {
	ix, g := networkFixture(t)
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: JSON, NetworkAppendix: BuildNetwork(g, 0)}); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Network *NetworkStats `json:"network"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Network == nil {
		t.Fatal("no network member")
	}
	if doc.Network.Nodes != 3 || doc.Network.Edges != 1 || len(doc.Network.Top) != 3 {
		t.Errorf("network = %+v", doc.Network)
	}
}

func TestNetworkUnsupportedFormats(t *testing.T) {
	for _, f := range []Format{TSV, CSV, HTMLPage} {
		if NetworkSupported(f) {
			t.Errorf("%s claims network support", f)
		}
	}
	if BuildNetwork(nil, 5) != nil {
		t.Error("BuildNetwork(nil) != nil")
	}
}

func TestNetworkAppendixEmptyGraph(t *testing.T) {
	ix, err := core.Rebuild(collate.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: Text, NetworkAppendix: BuildNetwork(graph.New(0), 0)}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "(no authors)") {
		t.Errorf("empty-graph appendix:\n%s", buf.String())
	}
}
