// Statistics appendix: the contributor summary that closes the printed
// index. Text gets an aligned table under a "— STATISTICS —" rule,
// Markdown a table section, JSON a structured "statistics" member. The
// machine round-trip formats (TSV, CSV) never carry the appendix.

package render

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Statistics is the data behind the contributor-summary appendix. The
// facade fills it from the metrics tracker when Options.Statistics is
// set; callers below the facade may populate it directly.
type Statistics struct {
	// Scheme names the credit-weighting scheme the values were computed
	// under.
	Scheme string `json:"scheme"`
	// Works, Authors and Postings are corpus totals.
	Works    int `json:"works"`
	Authors  int `json:"authors"`
	Postings int `json:"postings"`
	// SoloWorks counts single-author works; Pairs distinct collaborating
	// author pairs.
	SoloWorks int `json:"soloWorks"`
	Pairs     int `json:"pairs"`
	// Top lists the ranked contributors, best first.
	Top []metrics.AuthorMetrics `json:"top"`
}

// statsFromSummary pairs a corpus summary with a ranked contributor
// list into the appendix payload.
func statsFromSummary(s metrics.Summary, top []metrics.AuthorMetrics) *Statistics {
	return &Statistics{
		Scheme:    s.Scheme,
		Works:     s.Works,
		Authors:   s.Authors,
		Postings:  s.Postings,
		SoloWorks: s.SoloWorks,
		Pairs:     s.Pairs,
		Top:       top,
	}
}

// StatisticsSupported reports whether the format renders the appendix;
// the machine round-trip formats (TSV, CSV) and HTML never carry it, so
// callers can skip building it for them.
func StatisticsSupported(f Format) bool {
	return f == Text || f == Markdown || f == JSON
}

// BuildStatistics assembles the appendix from a metrics tracker: the
// corpus summary plus the top contributors by position-weighted credit.
// limit <= 0 defaults to 10.
func BuildStatistics(t metrics.Tracker, limit int) *Statistics {
	if t == nil {
		return nil
	}
	if limit <= 0 {
		limit = 10
	}
	return statsFromSummary(t.Summary(), t.TopAuthors(metrics.ByWeighted, limit))
}

// statsColumns renders the ranked contributor table shared by the text
// and Markdown appendixes: one row per author, credit to three decimal
// places.
func statsColumns(st *Statistics) (header []string, rows [][]string) {
	header = []string{"rank", "author", "works", "first", "credit", "frac", "h", "collabs"}
	for i, m := range st.Top {
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			m.Heading,
			fmt.Sprint(m.Works),
			fmt.Sprint(m.FirstAuthored),
			fmt.Sprintf("%.3f", m.Weighted),
			fmt.Sprintf("%.3f", m.Fractional),
			fmt.Sprint(m.HIndex),
			fmt.Sprint(m.Collaborators),
		})
	}
	return header, rows
}

// summaryLine renders the one-line corpus totals shown above the table.
func (st *Statistics) summaryLine() string {
	return fmt.Sprintf("%d works · %d contributors · %d postings · %d solo · %d collaborating pairs · scheme: %s",
		st.Works, st.Authors, st.Postings, st.SoloWorks, st.Pairs, st.Scheme)
}

// appendTextStats emits the appendix through the text pager so it pages
// and headers like the body.
func appendTextStats(p *textPager, st *Statistics) {
	width := p.opts.pageWidth()
	p.emit("")
	p.emit(center("— STATISTICS —", width))
	p.emit("")
	p.emit(st.summaryLine())
	p.emit("")
	header, rows := statsColumns(st)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 1 { // author column is left-aligned
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	p.emit(line(header))
	for _, r := range rows {
		p.emit(line(r))
	}
	if len(rows) == 0 {
		p.emit("(no contributors)")
	}
}

// appendMarkdownStats emits the appendix as a "## Statistics" section
// with a contributor table.
func appendMarkdownStats(b *strings.Builder, st *Statistics) {
	fmt.Fprintf(b, "\n## Statistics\n\n%s\n\n", st.summaryLine())
	header, rows := statsColumns(st)
	fmt.Fprintf(b, "| %s |\n", strings.Join(header, " | "))
	b.WriteString("|" + strings.Repeat(" --- |", len(header)) + "\n")
	for _, r := range rows {
		for i, c := range r {
			r[i] = mdEscape(c)
		}
		fmt.Fprintf(b, "| %s |\n", strings.Join(r, " | "))
	}
}
