package render

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/names"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtureIndex builds a small, fixed index exercising every rendering
// feature: students, suffixes, particles, multi-work authors, wrapping
// titles and a cross-reference.
func fixtureIndex(t *testing.T) *core.Index {
	t.Helper()
	ix := core.New(collate.Default())
	add := func(id model.WorkID, title, cite string, kind model.Kind, authors ...string) {
		w := &model.Work{ID: id, Title: title, Kind: kind, Citation: citeparse.MustParse(cite)}
		for _, a := range authors {
			w.Authors = append(w.Authors, names.MustParse(a))
		}
		if err := ix.Add(w); err != nil {
			t.Fatal(err)
		}
	}
	add(1, "Allegheny-Pittsburgh Coal Co. v. County Commission of Webster County",
		"91:973 (1989)", model.KindCaseNote, "Abdalla, Tarek F.*")
	add(2, "Ideas of Relevance to Law", "84:1 (1981)", model.KindArticle, "Adler, Mortimer J.")
	add(3, "Unlocking the Fire: A Proposal for Judicial or Legislative Determination of the Ownership of Coalbed Methane",
		"94:563 (1992)", model.KindArticle, "Lewin, Jeff L.", "Peng, Syd S.", "Ameri, Samuel J.")
	add(4, "The Silent Revolution in West Virginia's Law of Nuisance",
		"92:235 (1989)", model.KindArticle, "Lewin, Jeff L.")
	add(5, "Crisis in Higher Education Governance", "91:1 (1988)", model.KindArticle, "Van Tol, Joan E.")
	add(6, "Joint Tenancy in West Virginia: A Progressive Court Looks at Traditional Property Rights",
		"91:267 (1988)", model.KindArticle, "Fisher, John W., II")
	if err := ix.AddSeeAlso(names.MustParse("Tol, Joan E."), names.MustParse("Van Tol, Joan E.")); err != nil {
		t.Fatal(err)
	}
	return ix
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (run with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

func renderTo(t *testing.T, ix *core.Index, opts Options) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Render(&buf, ix, opts); err != nil {
		t.Fatalf("Render(%v): %v", opts.Format, err)
	}
	return buf.Bytes()
}

func TestGoldenText(t *testing.T) {
	ix := fixtureIndex(t)
	out := renderTo(t, ix, Options{
		Format: Text,
		Volume: model.Volume{Publication: "W. VA. L. REV.", Number: 95, Year: 1993},
	})
	checkGolden(t, "index.txt", out)
}

func TestGoldenTextPaginated(t *testing.T) {
	ix := fixtureIndex(t)
	out := renderTo(t, ix, Options{
		Format:     Text,
		PageLength: 12,
		PageWidth:  72,
		Volume:     model.Volume{Publication: "W. VA. L. REV.", Number: 95, Year: 1993},
	})
	checkGolden(t, "index_paged.txt", out)
	// Each page must start with the running head.
	pages := strings.Split(strings.TrimRight(string(out), "\n"), "\n\n")
	if len(pages) < 2 {
		t.Fatalf("expected pagination to produce multiple pages, got %d", len(pages))
	}
}

func TestGoldenMarkdown(t *testing.T) {
	out := renderTo(t, fixtureIndex(t), Options{Format: Markdown})
	checkGolden(t, "index.md", out)
}

func TestGoldenTSV(t *testing.T) {
	out := renderTo(t, fixtureIndex(t), Options{Format: TSV})
	checkGolden(t, "index.tsv", out)
}

func TestTextContainsEveryPosting(t *testing.T) {
	ix := fixtureIndex(t)
	out := string(renderTo(t, ix, Options{Format: Text}))
	for _, want := range []string{
		"Abdalla, Tarek F.*",
		"Adler, Mortimer J.",
		"Fisher, John W., II",
		"Lewin, Jeff L.",
		"Van Tol, Joan E.",
		"91:973 (1989)",
		"94:563 (1992)",
		"See also: Van Tol, Joan E.",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}
	// Multi-author works appear once per author heading.
	if got := strings.Count(out, "94:563 (1992)"); got != 3 {
		t.Errorf("three-author work printed %d times, want 3", got)
	}
}

func TestTextLineWidth(t *testing.T) {
	for _, width := range []int{60, 78, 100} {
		out := renderTo(t, fixtureIndex(t), Options{Format: Text, PageWidth: width})
		for i, line := range strings.Split(string(out), "\n") {
			if n := len([]rune(line)); n > width {
				t.Fatalf("width %d: line %d is %d wide: %q", width, i+1, n, line)
			}
		}
	}
}

func TestCSVParsesBack(t *testing.T) {
	out := renderTo(t, fixtureIndex(t), Options{Format: CSV})
	r := csv.NewReader(bytes.NewReader(out))
	recs, err := r.ReadAll()
	if err != nil {
		t.Fatalf("csv parse: %v", err)
	}
	if !reflect.DeepEqual(recs[0], csvHeader) {
		t.Errorf("header = %v", recs[0])
	}
	// 6 works → 8 postings (3-author work appears 3×).
	if len(recs) != 9 {
		t.Errorf("csv rows = %d, want 9 (header + 8 postings)", len(recs))
	}
}

func TestJSONWellFormed(t *testing.T) {
	out := renderTo(t, fixtureIndex(t), Options{Format: JSON})
	var doc struct {
		Sections []struct {
			Letter  string `json:"letter"`
			Entries []struct {
				Author struct {
					Family  string `json:"family"`
					Student bool   `json:"student"`
				} `json:"author"`
				Works []struct {
					Title    string `json:"title"`
					Citation string `json:"citation"`
				} `json:"works"`
				SeeAlso []string `json:"seeAlso"`
			} `json:"entries"`
		} `json:"sections"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("json parse: %v", err)
	}
	if len(doc.Sections) == 0 || doc.Sections[0].Letter != "A" {
		t.Errorf("sections = %+v", doc.Sections)
	}
	foundSeeAlso := false
	for _, s := range doc.Sections {
		for _, e := range s.Entries {
			if len(e.SeeAlso) > 0 {
				foundSeeAlso = true
			}
		}
	}
	if !foundSeeAlso {
		t.Error("see-also lost in JSON")
	}
}

func TestEmptyIndex(t *testing.T) {
	ix := core.New(collate.Default())
	for _, f := range []Format{Text, TSV, Markdown, CSV, JSON} {
		var buf bytes.Buffer
		if err := Render(&buf, ix, Options{Format: f}); err != nil {
			t.Errorf("empty index, format %v: %v", f, err)
		}
	}
}

func TestParseFormat(t *testing.T) {
	for name, want := range formatNames {
		got, err := ParseFormat(name)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v,%v", name, got, err)
		}
	}
	if _, err := ParseFormat("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
	if Text.String() != "text" || JSON.String() != "json" {
		t.Error("Format.String mismatch")
	}
}

func TestPageWidthClamp(t *testing.T) {
	// Widths under 40 are clamped to 40; output must not exceed it.
	out := renderTo(t, fixtureIndex(t), Options{Format: Text, PageWidth: 10})
	for i, line := range strings.Split(string(out), "\n") {
		if n := len([]rune(line)); n > 40 {
			t.Fatalf("clamped width: line %d is %d wide: %q", i, n, line)
		}
	}
}

func TestWrap(t *testing.T) {
	tests := []struct {
		in    string
		width int
		want  []string
	}{
		{"short", 10, []string{"short"}},
		{"two words", 6, []string{"two", "words"}},
		{"", 10, []string{""}},
		{"exactfit!!", 10, []string{"exactfit!!"}},
		{"superlonghyphenlessword", 8, []string{"superlon", "ghyphenl", "essword"}},
		{"a b c d", 3, []string{"a b", "c d"}},
	}
	for _, tt := range tests {
		got := wrap(tt.in, tt.width)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("wrap(%q,%d) = %q, want %q", tt.in, tt.width, got, tt.want)
		}
	}
}
