package render

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/citeparse"
	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/names"
)

func TestHTMLRender(t *testing.T) {
	ix := fixtureIndex(t)
	var buf bytes.Buffer
	err := Render(&buf, ix, Options{
		Format: HTMLPage,
		Volume: model.Volume{Publication: "W. VA. L. REV.", Number: 95, Year: 1993},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"AUTHOR INDEX",
		"Abdalla, Tarek F.*",
		`id="sec-A"`,
		"94:563 (1992)",
		"see also Van Tol, Joan E.",
		"W. VA. L. REV. vol. 95 (1993)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("html missing %q", want)
		}
	}
}

func TestHTMLEscapesContent(t *testing.T) {
	ix := core.New(collate.Default())
	w := &model.Work{
		ID:       1,
		Title:    `<script>alert("xss")</script> & Sons`,
		Citation: citeparse.MustParse("90:1 (1988)"),
		Authors:  []model.Author{names.MustParse(`O'<b>Bold</b>, A.`)},
	}
	if err := ix.Add(w); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Render(&buf, ix, Options{Format: HTMLPage}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<script>alert") || strings.Contains(out, "<b>Bold</b>") {
		t.Error("HTML injection not escaped")
	}
	if !strings.Contains(out, "&lt;script&gt;") {
		t.Error("escaped title missing")
	}
}

func TestHTMLEmptyIndex(t *testing.T) {
	var buf bytes.Buffer
	if err := Render(&buf, core.New(collate.Default()), Options{Format: HTMLPage}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "AUTHOR INDEX") {
		t.Error("empty html page missing head")
	}
}

func TestParseFormatHTML(t *testing.T) {
	f, err := ParseFormat("html")
	if err != nil || f != HTMLPage || f.String() != "html" {
		t.Errorf("ParseFormat(html) = %v,%v", f, err)
	}
}
