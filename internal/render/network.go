// Network appendix: the collaboration-network summary that can close
// the printed index after (or instead of) the contributor statistics.
// Text gets an aligned table under a "— COLLABORATION NETWORK —" rule,
// Markdown a table section, JSON a structured "network" member. The
// machine round-trip formats (TSV, CSV) never carry it.

package render

import (
	"fmt"
	"strings"

	"repro/internal/graph"
)

// NetworkStats is the data behind the collaboration-network appendix.
// The facade fills it from the coauthorship graph when Options.Network
// is set; callers below the facade may populate it directly.
type NetworkStats struct {
	// Nodes, Edges and Works are network totals; Components counts
	// connected components and LargestComponent the size of the biggest.
	Nodes            int `json:"nodes"`
	Edges            int `json:"edges"`
	Works            int `json:"works"`
	Components       int `json:"components"`
	LargestComponent int `json:"largestComponent"`
	// Density is edges over possible pairs, 2E / (V·(V−1)).
	Density float64 `json:"density"`
	// Damping names the PageRank damping factor the centrality scores
	// were computed under.
	Damping float64 `json:"damping"`
	// Top lists the most central authors, best first.
	Top []graph.CentralAuthor `json:"top"`
}

// NetworkSupported reports whether the format renders the network
// appendix — the same formats that carry the statistics appendix.
func NetworkSupported(f Format) bool { return StatisticsSupported(f) }

// BuildNetwork assembles the appendix from a coauthorship graph: the
// network counts plus the top authors by centrality. limit <= 0
// defaults to 10. Fields are read directly rather than via Summarize so
// only one centrality sort (at the caller's limit) runs.
func BuildNetwork(g *graph.Graph, limit int) *NetworkStats {
	if g == nil {
		return nil
	}
	if limit <= 0 {
		limit = 10
	}
	return &NetworkStats{
		Nodes:            g.Nodes(),
		Edges:            g.Edges(),
		Works:            g.Works(),
		Components:       g.Components(),
		LargestComponent: g.LargestComponent(),
		Density:          g.Density(),
		Damping:          g.Damping(),
		Top:              g.TopCentral(limit),
	}
}

// networkColumns renders the ranked centrality table shared by the text
// and Markdown appendixes.
func networkColumns(st *NetworkStats) (header []string, rows [][]string) {
	header = []string{"rank", "author", "centrality"}
	for i, c := range st.Top {
		rows = append(rows, []string{
			fmt.Sprint(i + 1),
			c.Heading,
			fmt.Sprintf("%.6f", c.Score),
		})
	}
	return header, rows
}

// networkSummaryLine renders the one-line totals shown above the table.
func (st *NetworkStats) networkSummaryLine() string {
	return fmt.Sprintf("%d authors · %d collaborating pairs · %d components (largest %d) · density %.6f · damping %.2f",
		st.Nodes, st.Edges, st.Components, st.LargestComponent, st.Density, st.Damping)
}

// appendTextNetwork emits the appendix through the text pager so it
// pages and headers like the body.
func appendTextNetwork(p *textPager, st *NetworkStats) {
	width := p.opts.pageWidth()
	p.emit("")
	p.emit(center("— COLLABORATION NETWORK —", width))
	p.emit("")
	p.emit(st.networkSummaryLine())
	p.emit("")
	header, rows := networkColumns(st)
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i == 1 { // author column is left-aligned
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = fmt.Sprintf("%*s", widths[i], c)
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	p.emit(line(header))
	for _, r := range rows {
		p.emit(line(r))
	}
	if len(rows) == 0 {
		p.emit("(no authors)")
	}
}

// appendMarkdownNetwork emits the appendix as a "## Collaboration
// Network" section with a centrality table.
func appendMarkdownNetwork(b *strings.Builder, st *NetworkStats) {
	fmt.Fprintf(b, "\n## Collaboration Network\n\n%s\n\n", st.networkSummaryLine())
	header, rows := networkColumns(st)
	fmt.Fprintf(b, "| %s |\n", strings.Join(header, " | "))
	b.WriteString("|" + strings.Repeat(" --- |", len(header)) + "\n")
	for _, r := range rows {
		for i, c := range r {
			r[i] = mdEscape(c)
		}
		fmt.Fprintf(b, "| %s |\n", strings.Join(r, " | "))
	}
}
