// Package parallel provides the small fan-out helper the bulk-load
// paths share: split an index range into one contiguous chunk per
// worker and run them concurrently.
package parallel

import (
	"runtime"
	"sync"
)

// minParallel is the range size below which fanning out costs more than
// it saves; smaller inputs run inline.
const minParallel = 4096

// Ranges splits [0, n) into one contiguous range per worker and runs fn
// on each concurrently, returning the first error. Workers are capped
// at min(GOMAXPROCS, 8); small inputs run fn(0, n) inline.
func Ranges(n int, fn func(lo, hi int) error) error {
	workers := min(runtime.GOMAXPROCS(0), 8)
	if n < minParallel || workers == 1 {
		return fn(0, n)
	}
	stride := (n + workers - 1) / workers
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * stride
		if lo >= n {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = fn(lo, hi)
		}(w, lo, min(lo+stride, n))
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
