// Package shard coordinates N hash-partitioned query.Engine shards.
// Works are assigned by work ID, author cross-references by collation
// key, so every record has exactly one home shard. Each shard keeps its
// own copy-on-write snapshot chain (epoch-pinned lock-free reads, as in
// the unsharded facade) and its own write mutex, so writers touching
// different shards commit in parallel; batch writes spanning shards
// lock only the shards they touch, in ascending ID order. Reads pin
// every shard's current epoch and k-way merge the per-shard results.
//
// Global operations (Verify, Close, tracker rebuilds) exclude all
// writers at once through the Map's writer gate: every per-shard writer
// holds the gate's read side for its entire commit — including store
// operations performed before its shard lock is known — and global
// operations take the write side, after which no shard lock is needed
// at all.
package shard

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/query"
)

// Epoch is one published engine snapshot of one shard, plus its reader
// bookkeeping. Reclamation is reference-counted exactly as in the
// unsharded facade: one reference for being the shard's current epoch,
// one per active reader; the last one out retires the epoch and steps
// the map-wide alive counter down.
type Epoch struct {
	Eng *query.Engine
	// Seq increments per publication across the whole map; traces
	// record it so a slow read can be correlated with the snapshot that
	// served it.
	Seq uint64
	// Shard is the owning shard's ID, for trace and gauge labels.
	Shard int
	// pins counts outstanding references: one for being the current
	// epoch, plus one per active reader.
	pins atomic.Int64
	// drained latches the single transition to zero pins, so a late
	// pin/release pair racing the swap cannot step the counter twice.
	drained atomic.Bool
	alive   *atomic.Int64
}

// Release drops one reference; the last one out retires the epoch.
func (ep *Epoch) Release() {
	if ep.pins.Add(-1) == 0 && ep.drained.CompareAndSwap(false, true) {
		ep.alive.Add(-1)
	}
}

// Shard is one partition: a snapshot chain and the mutex serializing
// its writers.
type Shard struct {
	id   int
	m    *Map
	mu   sync.Mutex
	snap atomic.Pointer[Epoch]
}

// ID returns the shard's index in the map.
func (s *Shard) ID() int { return s.id }

// Lock serializes writers on this shard. Multi-shard writers must
// acquire shard locks in ascending ID order, and every writer must hold
// the map's writer gate (BeginWrite) first.
func (s *Shard) Lock() { s.mu.Lock() }

// Unlock releases the shard's writer mutex.
func (s *Shard) Unlock() { s.mu.Unlock() }

// Head returns the shard's current engine — the base a writer clones.
// Only meaningful while holding the shard lock (or the map's write-side
// gate); readers use Pin.
func (s *Shard) Head() *query.Engine { return s.snap.Load().Eng }

// Pin acquires the shard's current epoch for a lock-free read. The
// recheck handles the race with a concurrent publish: a pin that landed
// on an epoch after it was replaced is backed out and retried.
func (s *Shard) Pin() *Epoch {
	for {
		ep := s.snap.Load()
		ep.pins.Add(1)
		if s.snap.Load() == ep {
			return ep
		}
		ep.Release()
	}
}

// Publish makes eng the engine every subsequent read and write on this
// shard sees. Callers hold the shard lock (writers on one shard are
// serialized). Returns the new epoch so callers can record its Seq.
func (s *Shard) Publish(eng *query.Engine) *Epoch {
	ep := &Epoch{Eng: eng, Seq: s.m.seq.Add(1), Shard: s.id, alive: &s.m.alive}
	ep.pins.Store(1)
	s.m.alive.Add(1)
	if old := s.snap.Swap(ep); old != nil {
		old.Release() // drop the replaced epoch's current-reference
	}
	return ep
}

// Map is the shard coordinator: the shard set, routing, the map-wide
// epoch bookkeeping, and the writer gate global operations use to
// exclude every writer at once.
type Map struct {
	shards []*Shard
	seq    atomic.Uint64
	alive  atomic.Int64
	// excl is the writer gate. Per-shard writers hold the read side for
	// their entire commit — it is shared, so writers on different
	// shards still run in parallel — and global operations (Verify,
	// Close, tracker rebuilds) take the write side: once held, no
	// writer is in flight anywhere and no shard lock is needed.
	excl sync.RWMutex
}

// New builds a map of n shards (n < 1 is treated as 1), each seeded
// with the engine mk returns for its index and published as that
// shard's first epoch.
func New(n int, mk func(i int) *query.Engine) *Map {
	if n < 1 {
		n = 1
	}
	m := &Map{shards: make([]*Shard, n)}
	for i := range m.shards {
		s := &Shard{id: i, m: m}
		m.shards[i] = s
		s.Publish(mk(i))
	}
	return m
}

// N returns the shard count.
func (m *Map) N() int { return len(m.shards) }

// Shard returns shard i.
func (m *Map) Shard(i int) *Shard { return m.shards[i] }

// All returns the shard slice in ID order. Callers must not modify it.
func (m *Map) All() []*Shard { return m.shards }

// ForWork routes a work ID to its home shard: a fibonacci-style
// multiplicative scramble so sequentially assigned IDs spread evenly.
func (m *Map) ForWork(id model.WorkID) int {
	if len(m.shards) == 1 {
		return 0
	}
	return int((uint64(id) * 0x9E3779B97F4A7C15) % uint64(len(m.shards)))
}

// ForKey routes a collation key (an author heading) to its home shard
// via FNV-1a, so cross-references land deterministically across
// restarts.
func (m *Map) ForKey(key []byte) int {
	if len(m.shards) == 1 {
		return 0
	}
	const offset64, prime64 = uint64(14695981039346656037), uint64(1099511628211)
	h := offset64
	for _, c := range key {
		h ^= uint64(c)
		h *= prime64
	}
	return int(h % uint64(len(m.shards)))
}

// BeginWrite enters the writer gate (shared side). Every writer calls
// it before its first store or shard-lock operation and holds it
// through publish; writers on different shards proceed in parallel.
func (m *Map) BeginWrite() { m.excl.RLock() }

// EndWrite leaves the writer gate.
func (m *Map) EndWrite() { m.excl.RUnlock() }

// LockAll takes the writer gate exclusively: it returns once no writer
// is in flight on any shard and blocks new ones until UnlockAll.
// Holders may read and replace every shard's head without shard locks.
func (m *Map) LockAll() { m.excl.Lock() }

// UnlockAll releases the exclusive writer gate.
func (m *Map) UnlockAll() { m.excl.Unlock() }

// EpochsAlive reports how many snapshot epochs across all shards have
// not yet been reclaimed. Quiescent value is the shard count (one
// current epoch per shard).
func (m *Map) EpochsAlive() int64 { return m.alive.Load() }

// View is one pinned epoch per shard, in shard order — a consistent-
// enough multi-shard read: each shard's view is internally consistent,
// while cross-shard atomicity is intentionally relaxed (a batch
// spanning shards may be visible on some shards before others).
type View struct {
	Epochs []*Epoch
}

// PinAll pins every shard's current epoch.
func (m *Map) PinAll() View {
	eps := make([]*Epoch, len(m.shards))
	for i, s := range m.shards {
		eps[i] = s.Pin()
	}
	return View{Epochs: eps}
}

// Release drops every pin in the view.
func (v View) Release() {
	for _, ep := range v.Epochs {
		ep.Release()
	}
}

// Gather runs fn once per pinned epoch and returns the results in
// shard order. Concurrency is capped at GOMAXPROCS with the calling
// goroutine counted as a worker: per-shard work is ~1/N of the
// unsharded cost, so running shards beyond the core count in parallel
// buys nothing and a goroutine per shard per read melts down under
// load on small machines — at GOMAXPROCS=1 the whole gather runs
// inline with zero goroutines.
func Gather[T any](eps []*Epoch, fn func(i int, ep *Epoch) T) []T {
	out := make([]T, len(eps))
	workers := min(len(eps), runtime.GOMAXPROCS(0))
	if workers <= 1 {
		for i, ep := range eps {
			out[i] = fn(i, ep)
		}
		return out
	}
	var next atomic.Int64
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= len(eps) {
				return
			}
			out[i] = fn(i, eps[i])
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers-1; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	work()
	wg.Wait()
	return out
}
