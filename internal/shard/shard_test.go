package shard

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/query"
)

func mkMap(n int) *Map {
	return New(n, func(i int) *query.Engine { return query.New(collate.Default()) })
}

func TestShardRoutingDeterministic(t *testing.T) {
	m1, m2 := mkMap(8), mkMap(8)
	hit := make(map[int]int)
	for id := model.WorkID(1); id <= 1000; id++ {
		si := m1.ForWork(id)
		if si < 0 || si >= 8 {
			t.Fatalf("ForWork(%d) = %d out of range", id, si)
		}
		if got := m2.ForWork(id); got != si {
			t.Fatalf("ForWork(%d) differs across maps: %d vs %d", id, si, got)
		}
		hit[si]++
	}
	// The multiplicative scramble must spread sequential IDs: every
	// shard sees a reasonable share of 1000 sequential IDs.
	for si := 0; si < 8; si++ {
		if hit[si] < 50 {
			t.Errorf("shard %d received only %d of 1000 sequential IDs", si, hit[si])
		}
	}

	keys := [][]byte{[]byte("smith, a."), []byte("jones, b."), []byte(""), []byte("müller, c.")}
	for _, k := range keys {
		si := m1.ForKey(k)
		if si < 0 || si >= 8 {
			t.Fatalf("ForKey(%q) = %d out of range", k, si)
		}
		if got := m2.ForKey(k); got != si {
			t.Fatalf("ForKey(%q) differs across maps", k)
		}
	}

	// A single-shard map routes everything to shard 0.
	s1 := mkMap(1)
	for id := model.WorkID(1); id <= 50; id++ {
		if s1.ForWork(id) != 0 {
			t.Fatal("single-shard ForWork != 0")
		}
	}
	if s1.ForKey([]byte("anything")) != 0 {
		t.Fatal("single-shard ForKey != 0")
	}
}

func TestShardPinPublishReclaim(t *testing.T) {
	m := mkMap(2)
	if got := m.EpochsAlive(); got != 2 {
		t.Fatalf("EpochsAlive after New = %d, want 2", got)
	}
	s := m.Shard(0)
	ep := s.Pin()
	if ep.Shard != 0 {
		t.Errorf("pinned epoch Shard = %d, want 0", ep.Shard)
	}
	// Publishing while a reader holds the old epoch keeps both alive.
	s.Lock()
	s.Publish(query.New(collate.Default()))
	s.Unlock()
	if got := m.EpochsAlive(); got != 3 {
		t.Fatalf("EpochsAlive with pinned old epoch = %d, want 3", got)
	}
	ep.Release()
	if got := m.EpochsAlive(); got != 2 {
		t.Fatalf("EpochsAlive after release = %d, want 2", got)
	}
	// Seq strictly increases across publications.
	old := s.Pin()
	s.Lock()
	fresh := s.Publish(query.New(collate.Default()))
	s.Unlock()
	if fresh.Seq <= old.Seq {
		t.Errorf("Seq not increasing: %d -> %d", old.Seq, fresh.Seq)
	}
	old.Release()

	v := m.PinAll()
	if len(v.Epochs) != 2 || v.Epochs[0].Shard != 0 || v.Epochs[1].Shard != 1 {
		t.Fatalf("PinAll view malformed: %+v", v.Epochs)
	}
	v.Release()
	if got := m.EpochsAlive(); got != 2 {
		t.Fatalf("EpochsAlive after view release = %d, want 2", got)
	}
}

func TestShardGatherOrder(t *testing.T) {
	m := mkMap(5)
	v := m.PinAll()
	defer v.Release()
	got := Gather(v.Epochs, func(i int, ep *Epoch) int { return ep.Shard * 10 })
	for i, g := range got {
		if g != i*10 {
			t.Fatalf("Gather order broken: %v", got)
		}
	}
}

func work(id int, vol, page, year int, title string) *model.Work {
	return &model.Work{
		ID:       model.WorkID(id),
		Title:    title,
		Citation: model.Citation{Volume: vol, Page: page, Year: year},
		Authors:  []model.Author{{Family: "Author", Given: "A."}},
	}
}

func TestMergeWorksAgainstSort(t *testing.T) {
	parts := [][]*model.Work{
		{work(1, 70, 10, 1968, "Alpha"), work(4, 80, 5, 1978, "Delta"), work(7, 95, 300, 1993, "Golf")},
		{work(2, 70, 10, 1968, "Bravo"), work(5, 80, 5, 1978, "Delta")},
		nil,
		{work(3, 60, 1, 1958, "Charlie"), work(6, 99, 1, 1997, "Foxtrot")},
	}
	// Reference: concatenate in shard order, stable-sort by the same
	// comparator — exactly the tie-to-lower-shard contract.
	var all []*model.Work
	for _, p := range parts {
		all = append(all, p...)
	}
	sort.SliceStable(all, func(i, j int) bool { return query.CompareWorks(all[i], all[j]) < 0 })

	got := MergeWorks([][]*model.Work{
		append([]*model.Work(nil), parts[0]...),
		append([]*model.Work(nil), parts[1]...),
		nil,
		append([]*model.Work(nil), parts[3]...),
	}, 0)
	if len(got) != len(all) {
		t.Fatalf("merged %d works, want %d", len(got), len(all))
	}
	for i := range all {
		if got[i].ID != all[i].ID {
			t.Fatalf("position %d: got work %d, want %d", i, got[i].ID, all[i].ID)
		}
	}

	// Limit caps the merge without disturbing the prefix.
	capped := MergeWorks([][]*model.Work{
		append([]*model.Work(nil), parts[0]...),
		append([]*model.Work(nil), parts[1]...),
		nil,
		append([]*model.Work(nil), parts[3]...),
	}, 3)
	if len(capped) != 3 {
		t.Fatalf("limit=3 returned %d works", len(capped))
	}
	for i := 0; i < 3; i++ {
		if capped[i].ID != all[i].ID {
			t.Fatalf("capped position %d: got %d, want %d", i, capped[i].ID, all[i].ID)
		}
	}

	// Single non-empty input comes back as-is (the shards=1 fast path).
	solo := []*model.Work{work(9, 1, 1, 1960, "Solo")}
	if got := MergeWorks([][]*model.Work{nil, solo, nil}, 0); len(got) != 1 || got[0] != solo[0] {
		t.Fatal("single-input fast path did not pass through")
	}
}

func entry(family, given string, works ...model.Work) *core.Entry {
	return &core.Entry{Author: model.Author{Family: family, Given: given}, Works: works}
}

func TestMergeEntriesCrossShardAuthor(t *testing.T) {
	coll := collate.Default()
	// "Shared, S." has works on both shards with interleaved citations;
	// each shard also carries authors the other lacks.
	sharedA := entry("Shared", "S.",
		*work(1, 70, 10, 1968, "On Shard Zero"),
		*work(3, 90, 5, 1988, "Late Work"))
	sharedA.SeeAlso = []model.Author{{Family: "Jones", Given: "B."}, {Family: "Smith", Given: "A."}}
	sharedB := entry("Shared", "S.",
		*work(2, 80, 2, 1978, "On Shard One"))
	sharedB.SeeAlso = []model.Author{{Family: "Smith", Given: "A."}, {Family: "Young", Given: "Z."}}

	parts := [][]*core.Entry{
		{entry("Adams", "A.", *work(10, 60, 1, 1958, "First")), sharedA},
		{entry("Brown", "B.", *work(11, 61, 2, 1959, "Second")), sharedB},
	}
	got := MergeEntries(parts, coll, 0)
	if len(got) != 3 {
		t.Fatalf("merged %d entries, want 3 (Adams, Brown, Shared)", len(got))
	}
	// Print order by collation key.
	for i := 1; i < len(got); i++ {
		if bytes.Compare(collate.KeyAuthor(got[i-1].Author, coll), collate.KeyAuthor(got[i].Author, coll)) >= 0 {
			t.Fatalf("entries out of print order at %d", i)
		}
	}
	var shared *core.Entry
	for _, e := range got {
		if e.Author.Family == "Shared" {
			shared = e
		}
	}
	if shared == nil {
		t.Fatal("cross-shard author missing from merge")
	}
	if len(shared.Works) != 3 {
		t.Fatalf("cross-shard author has %d works, want 3", len(shared.Works))
	}
	for i, wantID := range []model.WorkID{1, 2, 3} {
		if shared.Works[i].ID != wantID {
			t.Fatalf("cross-shard works out of citation order: %v", shared.Works)
		}
	}
	// SeeAlso is the deduplicated union in collation order.
	if len(shared.SeeAlso) != 3 {
		t.Fatalf("SeeAlso union has %d refs, want 3: %v", len(shared.SeeAlso), shared.SeeAlso)
	}
	for i, want := range []string{"Jones", "Smith", "Young"} {
		if shared.SeeAlso[i].Family != want {
			t.Fatalf("SeeAlso[%d] = %v, want family %s", i, shared.SeeAlso[i], want)
		}
	}

	// Limit counts merged entries, not input occurrences.
	if capped := MergeEntries([][]*core.Entry{
		{entry("Adams", "A.", *work(10, 60, 1, 1958, "First")), sharedA},
		{entry("Brown", "B.", *work(11, 61, 2, 1959, "Second")), sharedB},
	}, coll, 2); len(capped) != 2 {
		t.Fatalf("limit=2 returned %d entries", len(capped))
	}
}

func TestMergeSubjectsSumsCounts(t *testing.T) {
	coll := collate.Default()
	keyed := func(subject string, works int) query.KeyedSubject {
		return query.KeyedSubject{
			Key:          collate.KeyString(subject, coll),
			SubjectCount: query.SubjectCount{Subject: subject, Works: works},
		}
	}
	parts := [][]query.KeyedSubject{
		{keyed("mining", 3), keyed("zoning", 1)},
		{keyed("mining", 2), keyed("taxation", 4)},
		nil,
	}
	got := MergeSubjects(parts)
	want := map[string]int{"mining": 5, "taxation": 4, "zoning": 1}
	if len(got) != len(want) {
		t.Fatalf("merged %d subjects, want %d: %v", len(got), len(want), got)
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(collate.KeyString(got[i-1].Subject, coll), collate.KeyString(got[i].Subject, coll)) >= 0 {
			t.Fatalf("subjects out of collation order: %v", got)
		}
	}
	for _, sc := range got {
		if want[sc.Subject] != sc.Works {
			t.Errorf("subject %q has %d works, want %d", sc.Subject, sc.Works, want[sc.Subject])
		}
	}
}

func TestMergeSectionsRegroupsLetters(t *testing.T) {
	coll := collate.Default()
	secA := core.Section{Letter: 'A', Entries: []*core.Entry{
		entry("Abbott", "A.", *work(1, 60, 1, 1958, "One")),
	}}
	secC0 := core.Section{Letter: 'C', Entries: []*core.Entry{
		entry("Cole", "C.", *work(2, 61, 2, 1959, "Two")),
	}}
	secB := core.Section{Letter: 'B', Entries: []*core.Entry{
		entry("Baker", "B.", *work(3, 62, 3, 1960, "Three")),
	}}
	secC1 := core.Section{Letter: 'C', Entries: []*core.Entry{
		entry("Carr", "C.", *work(4, 63, 4, 1961, "Four")),
	}}
	got := MergeSections([][]core.Section{{secA, secC0}, {secB, secC1}}, coll)
	var shape []string
	for _, s := range got {
		shape = append(shape, fmt.Sprintf("%c:%d", s.Letter, len(s.Entries)))
	}
	want := []string{"A:1", "B:1", "C:2"}
	if len(shape) != len(want) {
		t.Fatalf("section shape %v, want %v", shape, want)
	}
	for i := range want {
		if shape[i] != want[i] {
			t.Fatalf("section shape %v, want %v", shape, want)
		}
	}
	// Within the merged C section: Carr files before Cole.
	c := got[2]
	if c.Entries[0].Author.Family != "Carr" || c.Entries[1].Author.Family != "Cole" {
		t.Fatalf("C section out of order: %v, %v", c.Entries[0].Author, c.Entries[1].Author)
	}

	// Single non-empty input passes through untouched.
	solo := [][]core.Section{nil, {secA}}
	if got := MergeSections(solo, coll); len(got) != 1 || got[0].Letter != 'A' {
		t.Fatal("single-input fast path did not pass through")
	}
}
