package shard

import (
	"bytes"
	"strings"

	"repro/internal/collate"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/query"
)

// The k-way merges below all share one shape: per-shard inputs arrive
// already ordered (the engines stream results pre-sorted), so merging
// is a min-pick over one cursor per shard. Ties break toward the lower
// shard index, which makes every merge deterministic. With one
// non-empty input — always the case at shards=1 — the input is
// returned as-is, so the unsharded configuration pays nothing.

// MergeWorks merges per-shard citation-ordered work lists into one
// citation-ordered list, capped at limit (<=0: no cap). Inputs are
// consumed as-is; callers must not reuse them.
func MergeWorks(parts [][]*model.Work, limit int) []*model.Work {
	if single, only := singleWorks(parts); single {
		if limit > 0 && len(only) > limit {
			only = only[:limit]
		}
		return only
	}
	idx := make([]int, len(parts))
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if limit > 0 && limit < total {
		total = limit
	}
	out := make([]*model.Work, 0, total)
	for {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || query.CompareWorks(p[idx[i]], parts[best][idx[best]]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		out = append(out, parts[best][idx[best]])
		idx[best]++
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

func singleWorks(parts [][]*model.Work) (bool, []*model.Work) {
	nonEmpty, last := 0, -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			last = i
		}
	}
	if nonEmpty == 0 {
		return true, nil
	}
	if nonEmpty == 1 {
		return true, parts[last]
	}
	return false, nil
}

// MergeEntries merges per-shard print-ordered author entries into one
// print-ordered list, capped at limit (<=0: no cap). An author whose
// works span shards appears once per shard in the inputs; the merged
// entry carries the works of every occurrence in citation order and the
// union of their cross-references, with the display form taken from the
// lowest shard. Inputs are consumed as-is; callers must not reuse them.
func MergeEntries(parts [][]*core.Entry, coll collate.Options, limit int) []*core.Entry {
	nonEmpty, last := 0, -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		out := parts[last]
		if limit > 0 && len(out) > limit {
			out = out[:limit]
		}
		return out
	}
	idx := make([]int, len(parts))
	keys := make([][]byte, len(parts))
	load := func(i int) {
		if idx[i] < len(parts[i]) {
			keys[i] = collate.KeyAuthor(parts[i][idx[i]].Author, coll)
		} else {
			keys[i] = nil
		}
	}
	for i := range parts {
		load(i)
	}
	var out []*core.Entry
	for {
		best := -1
		for i := range parts {
			if keys[i] == nil {
				continue
			}
			if best < 0 || bytes.Compare(keys[i], keys[best]) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		merged := parts[best][idx[best]]
		bk := keys[best]
		idx[best]++
		load(best)
		for i := best + 1; i < len(parts); i++ {
			if keys[i] != nil && bytes.Equal(keys[i], bk) {
				merged = mergeEntry(merged, parts[i][idx[i]], coll)
				idx[i]++
				load(i)
			}
		}
		out = append(out, merged)
		if limit > 0 && len(out) >= limit {
			break
		}
	}
	return out
}

// mergeEntry combines two same-heading entries from different shards:
// works merge in (citation, title) order with a's kept first on equal
// keys, cross-references union in collation order.
func mergeEntry(a, b *core.Entry, coll collate.Options) *core.Entry {
	out := &core.Entry{Author: a.Author}
	out.Works = make([]model.Work, 0, len(a.Works)+len(b.Works))
	i, j := 0, 0
	for i < len(a.Works) && j < len(b.Works) {
		if compareEntryWorks(&a.Works[i], &b.Works[j]) <= 0 {
			out.Works = append(out.Works, a.Works[i])
			i++
		} else {
			out.Works = append(out.Works, b.Works[j])
			j++
		}
	}
	out.Works = append(out.Works, a.Works[i:]...)
	out.Works = append(out.Works, b.Works[j:]...)
	out.SeeAlso = mergeSeeAlso(a.SeeAlso, b.SeeAlso, coll)
	return out
}

// compareEntryWorks orders entry postings exactly as core.insertWork
// files them: citation, then title.
func compareEntryWorks(a, b *model.Work) int {
	if c := a.Citation.Compare(b.Citation); c != 0 {
		return c
	}
	return strings.Compare(a.Title, b.Title)
}

// mergeSeeAlso unions two collation-ordered cross-reference lists,
// dropping exact duplicates.
func mergeSeeAlso(a, b []model.Author, coll collate.Options) []model.Author {
	if len(b) == 0 {
		return a
	}
	if len(a) == 0 {
		return b
	}
	out := make([]model.Author, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		c := bytes.Compare(collate.KeyAuthor(a[i], coll), collate.KeyAuthor(b[j], coll))
		switch {
		case c < 0:
			out = append(out, a[i])
			i++
		case c > 0:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			if a[i] == b[j] {
				j++
			}
			i++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// MergeSubjects merges per-shard collation-ordered subject counts,
// summing the work counts of headings present on several shards. The
// display form comes from the lowest shard. Inputs carry the collation
// keys their engines filed them under (KeyedSubjects), so the merge
// never computes a key.
func MergeSubjects(parts [][]query.KeyedSubject) []query.SubjectCount {
	nonEmpty, last := 0, -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		out := make([]query.SubjectCount, len(parts[last]))
		for i, ks := range parts[last] {
			out[i] = ks.SubjectCount
		}
		return out
	}
	idx := make([]int, len(parts))
	var out []query.SubjectCount
	for {
		best := -1
		for i, p := range parts {
			if idx[i] >= len(p) {
				continue
			}
			if best < 0 || bytes.Compare(p[idx[i]].Key, parts[best][idx[best]].Key) < 0 {
				best = i
			}
		}
		if best < 0 {
			break
		}
		sc := parts[best][idx[best]].SubjectCount
		bk := parts[best][idx[best]].Key
		idx[best]++
		for i := best + 1; i < len(parts); i++ {
			if idx[i] < len(parts[i]) && bytes.Equal(parts[i][idx[i]].Key, bk) {
				sc.Works += parts[i][idx[i]].Works
				idx[i]++
			}
		}
		out = append(out, sc)
	}
	return out
}

// MergeSections merges per-shard letter-grouped sections: entries are
// flattened, merged in print order, and regrouped by first letter —
// the same grouping core.Index.Sections applies.
func MergeSections(parts [][]core.Section, coll collate.Options) []core.Section {
	nonEmpty, last := 0, -1
	for i, p := range parts {
		if len(p) > 0 {
			nonEmpty++
			last = i
		}
	}
	if nonEmpty == 0 {
		return nil
	}
	if nonEmpty == 1 {
		return parts[last]
	}
	entryParts := make([][]*core.Entry, len(parts))
	for i, secs := range parts {
		for _, s := range secs {
			entryParts[i] = append(entryParts[i], s.Entries...)
		}
	}
	merged := MergeEntries(entryParts, coll, 0)
	var out []core.Section
	for _, e := range merged {
		letter := collate.FirstLetter(e.Author, coll)
		if n := len(out); n == 0 || out[n-1].Letter != letter {
			out = append(out, core.Section{Letter: letter})
		}
		s := &out[len(out)-1]
		s.Entries = append(s.Entries, e)
	}
	return out
}
