// Package collate builds memcmp-able sort keys for author names and plain
// strings, implementing the alphabetization rules indexes actually use:
// diacritic-insensitive primary ordering, letter-by-letter or word-by-word
// schemes, optional Mc→Mac expansion, and generational suffix ordering.
//
// Keys are byte strings such that bytes.Compare(Key(a), Key(b)) orders
// entries exactly as the index should print them, so ordered containers
// need no callback comparators and keys can be stored durably.
//
// Key layout (three tiers separated by 0x01, terminated implicitly):
//
//	primary   folded base letters; field separator 0x02; word separator
//	          0x03 (word-by-word scheme only)
//	secondary lower-cased original bytes (diacritics distinguish here)
//	tertiary  original bytes (case distinguishes here)
//
// All structural bytes (0x01–0x03) sort below every letter and digit, so
// "Smith" sorts before "Smithe" and (word-by-word) "De Long" before
// "Deford".
package collate

import (
	"strings"

	"repro/internal/model"
	"repro/internal/names"
)

// Scheme selects how multi-word names interleave.
type Scheme uint8

const (
	// LetterByLetter ignores spaces, hyphens and apostrophes entirely:
	// "De Long" sorts as "delong", after "Deford".
	LetterByLetter Scheme = iota
	// WordByWord treats a word break as sorting before any letter:
	// "De Long" sorts before "Deford". This is the convention most
	// author indexes (and this package's default Options) use.
	WordByWord
)

// String names the scheme.
func (s Scheme) String() string {
	if s == WordByWord {
		return "word-by-word"
	}
	return "letter-by-letter"
}

// Options configures key construction. The zero value is letter-by-letter
// with no Mc expansion; use Default() for the conventional index setup.
type Options struct {
	Scheme Scheme
	// McAsMac expands a leading "Mc" in family names to "Mac" for primary
	// ordering, interfiling McDonald with MacDonald.
	McAsMac bool
	// GroupParticle, when set, sorts "Van Tol" under V (particle included
	// in the primary key). When clear, particles are ignored at the
	// primary tier and "Van Tol" files under T.
	GroupParticle bool
}

// Default returns the conventional configuration: word-by-word, Mc→Mac
// off, particles grouped (filed under the particle, as the source
// material's index does: "Van Tol" under V).
func Default() Options {
	return Options{Scheme: WordByWord, GroupParticle: true}
}

// Structural bytes. All are below '0' (0x30) and 'a' (0x61).
const (
	tierSep  = 0x01
	fieldSep = 0x02
	wordSep  = 0x03
)

// suffixRank orders generational suffixes the way genealogy does rather
// than alphabetically: Sr. precedes Jr. precedes II, III, IV, V. Unknown
// suffixes rank after all known ones and fall back to folded-text order.
var suffixRank = map[string]byte{
	"":     0,
	"sr.":  1,
	"jr.":  2,
	"ii":   3,
	"iii":  4,
	"iv":   5,
	"v":    6,
	"esq.": 7,
}

// KeyAuthor builds the sort key for an author under the given options.
func KeyAuthor(a model.Author, o Options) []byte {
	var b keyBuilder
	b.opts = o

	// --- primary tier ---
	fam := a.Family
	if o.McAsMac {
		fam = expandMc(fam)
	}
	if o.GroupParticle && a.Particle != "" {
		b.primaryText(a.Particle)
		b.primaryWordBreak()
	}
	b.primaryText(fam)
	b.buf = append(b.buf, fieldSep)
	b.primaryText(a.Given)
	b.buf = append(b.buf, fieldSep)
	b.buf = append(b.buf, suffixByte(a.Suffix))
	b.primaryText(a.Suffix)
	if !o.GroupParticle && a.Particle != "" {
		// Particle still breaks ties between otherwise-identical names.
		b.buf = append(b.buf, fieldSep)
		b.primaryText(a.Particle)
	}

	// --- secondary and tertiary tiers ---
	orig := a.Display()
	b.buf = append(b.buf, tierSep)
	b.buf = append(b.buf, strings.ToLower(orig)...)
	b.buf = append(b.buf, tierSep)
	b.buf = append(b.buf, orig...)
	return b.buf
}

// KeyString builds a sort key for an arbitrary string (titles, headings)
// using the same tier rules.
func KeyString(s string, o Options) []byte {
	var b keyBuilder
	b.opts = o
	b.primaryText(s)
	b.buf = append(b.buf, tierSep)
	b.buf = append(b.buf, strings.ToLower(s)...)
	b.buf = append(b.buf, tierSep)
	b.buf = append(b.buf, s...)
	return b.buf
}

// PrimaryPrefix returns the primary-tier key bytes for a string prefix;
// useful for prefix scans over keys built by KeyAuthor/KeyString. The
// result contains no tier separator, so it prefix-matches full keys whose
// primary tier begins with the folded prefix.
func PrimaryPrefix(s string, o Options) []byte {
	var b keyBuilder
	b.opts = o
	b.primaryText(s)
	return b.buf
}

// Compare orders two authors under o; it is the reference semantics that
// bytes.Compare over KeyAuthor must agree with.
func Compare(a, b model.Author, o Options) int {
	ka, kb := KeyAuthor(a, o), KeyAuthor(b, o)
	return compareBytes(ka, kb)
}

func compareBytes(a, b []byte) int {
	switch {
	case string(a) < string(b):
		return -1
	case string(a) > string(b):
		return 1
	}
	return 0
}

// FirstLetter returns the upper-case section letter an author files under
// ('A'–'Z'), or '#' when the primary key starts with a non-letter.
func FirstLetter(a model.Author, o Options) byte {
	head := a.Family
	if o.GroupParticle && a.Particle != "" {
		head = a.Particle
	}
	if o.McAsMac {
		head = expandMc(head)
	}
	folded := names.Fold(head)
	for i := 0; i < len(folded); i++ {
		c := folded[i]
		switch {
		case c >= 'a' && c <= 'z':
			return c - 'a' + 'A'
		case c >= '0' && c <= '9' || c >= 0x80:
			// Digit-led and non-Latin headings file under the symbol
			// section rather than a letter.
			return '#'
		}
		// Leading punctuation ("'t Hooft") is skipped.
	}
	return '#'
}

type keyBuilder struct {
	buf  []byte
	opts Options
}

// primaryText appends the folded primary-tier bytes of s.
func (b *keyBuilder) primaryText(s string) {
	for _, r := range s {
		switch {
		case r == ' ' || r == ' ':
			b.primaryWordBreak()
		case r == '-' || r == '\'' || r == '.' || r == ',' || r == '’':
			// joined punctuation: letter-by-letter always drops it;
			// word-by-word treats hyphen as a word break.
			if r == '-' {
				b.primaryWordBreak()
			}
		default:
			b.buf = append(b.buf, names.FoldRune(r)...)
		}
	}
}

func (b *keyBuilder) primaryWordBreak() {
	if b.opts.Scheme != WordByWord {
		return
	}
	// Collapse runs of breaks; never lead with one.
	if n := len(b.buf); n > 0 && b.buf[n-1] != wordSep && b.buf[n-1] != fieldSep {
		b.buf = append(b.buf, wordSep)
	}
}

func suffixByte(suffix string) byte {
	if r, ok := suffixRank[strings.ToLower(strings.TrimSpace(suffix))]; ok {
		return r + '0' // keep ranks printable and above structural bytes
	}
	return 'z' // unknown suffixes sort last, then by folded text
}

// expandMc rewrites a leading "Mc" (capital M, lowercase c, then an
// upper-case letter) as "Mac" so McDonald interfiles with MacDonald.
func expandMc(fam string) string {
	if len(fam) >= 3 && fam[0] == 'M' && fam[1] == 'c' && fam[2] >= 'A' && fam[2] <= 'Z' {
		return "Mac" + fam[2:]
	}
	return fam
}
