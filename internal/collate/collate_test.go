package collate

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/names"
)

func sortedDisplay(t *testing.T, o Options, raw ...string) []string {
	t.Helper()
	authors := make([]model.Author, len(raw))
	for i, s := range raw {
		authors[i] = names.MustParse(s)
	}
	sort.Slice(authors, func(i, j int) bool {
		return bytes.Compare(KeyAuthor(authors[i], o), KeyAuthor(authors[j], o)) < 0
	})
	out := make([]string, len(authors))
	for i, a := range authors {
		out[i] = a.Display()
	}
	return out
}

func TestOrderBasicAlphabetical(t *testing.T) {
	got := sortedDisplay(t, Default(),
		"Bryant, S. Benjamin",
		"Abdalla, Tarek F.*",
		"Cardi, Vincent P.",
		"Abramovsky, Deborah",
		"Abrams, Dennis M.",
	)
	want := []string{
		"Abdalla, Tarek F.*",
		"Abramovsky, Deborah",
		"Abrams, Dennis M.",
		"Bryant, S. Benjamin",
		"Cardi, Vincent P.",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order[%d] = %q, want %q (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestFamilyBeatsGiven(t *testing.T) {
	// "Smith, Z." must precede "Smithe, A.": the family-name field
	// terminates before the given name is considered.
	got := sortedDisplay(t, Default(), "Smithe, A.", "Smith, Z.")
	if got[0] != "Smith, Z." {
		t.Errorf("got %v, want Smith first", got)
	}
}

func TestSchemes(t *testing.T) {
	// Word-by-word: "De Long" < "Deford"; letter-by-letter: reversed.
	wbw := sortedDisplay(t, Options{Scheme: WordByWord, GroupParticle: true}, "Deford, A.", "De Long, B.")
	if wbw[0] != "De Long, B." {
		t.Errorf("word-by-word: got %v, want De Long first", wbw)
	}
	lbl := sortedDisplay(t, Options{Scheme: LetterByLetter, GroupParticle: true}, "Deford, A.", "De Long, B.")
	if lbl[0] != "Deford, A." {
		t.Errorf("letter-by-letter: got %v, want Deford first", lbl)
	}
}

func TestHyphenIsWordBreakInWordByWord(t *testing.T) {
	// Bates-Smith files as "bates smith" word-by-word.
	wbw := sortedDisplay(t, Default(), "Batesson, Q.", "Bates-Smith, Pamela A.")
	if wbw[0] != "Bates-Smith, Pamela A." {
		t.Errorf("got %v, want Bates-Smith first", wbw)
	}
}

func TestMcAsMac(t *testing.T) {
	// With expansion, McAteer files as "MacAteer" and so interfiles
	// before MacLeod.
	with := Options{Scheme: WordByWord, McAsMac: true, GroupParticle: true}
	got := sortedDisplay(t, with, "McAteer, J. Davitt", "MacLeod, John A.", "Maxwell, Robert E.")
	want := []string{"McAteer, J. Davitt", "MacLeod, John A.", "Maxwell, Robert E."}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Mc→Mac order = %v, want %v", got, want)
		}
	}
	without := Default()
	got = sortedDisplay(t, without, "McAteer, J. Davitt", "MacLeod, John A.", "Maxwell, Robert E.")
	want = []string{"MacLeod, John A.", "Maxwell, Robert E.", "McAteer, J. Davitt"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("plain order = %v, want %v", got, want)
		}
	}
}

func TestParticleGrouping(t *testing.T) {
	grouped := Default() // Van Tol under V
	got := sortedDisplay(t, grouped, "Tol, Q.", "Van Tol, Joan E.", "Udall, Morris K.")
	want := []string{"Tol, Q.", "Udall, Morris K.", "Van Tol, Joan E."}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("grouped = %v, want %v", got, want)
		}
	}
	// Ungrouped, both file under Tol and order by given name (Joan < Q.).
	ungrouped := Options{Scheme: WordByWord, GroupParticle: false} // Van Tol under T
	got = sortedDisplay(t, ungrouped, "Tol, Q.", "Van Tol, Joan E.", "Udall, Morris K.")
	want = []string{"Van Tol, Joan E.", "Tol, Q.", "Udall, Morris K."}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ungrouped = %v, want %v", got, want)
		}
	}
}

func TestSuffixGenerationalOrder(t *testing.T) {
	got := sortedDisplay(t, Default(),
		"Fisher, John W., III",
		"Fisher, John W.",
		"Fisher, John W., Jr.",
		"Fisher, John W., Sr.",
		"Fisher, John W., II",
	)
	want := []string{
		"Fisher, John W.",
		"Fisher, John W., Sr.",
		"Fisher, John W., Jr.",
		"Fisher, John W., II",
		"Fisher, John W., III",
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("suffix order = %v, want %v", got, want)
		}
	}
}

func TestDiacriticsSecondaryTier(t *testing.T) {
	// Primary-equal names order by diacritics: plain before accented.
	got := sortedDisplay(t, Default(), "Müller, Jörg", "Muller, Jorg", "Mullen, A.")
	want := []string{"Mullen, A.", "Muller, Jorg", "Müller, Jörg"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diacritic order = %v, want %v", got, want)
		}
	}
}

func TestCaseTertiaryTier(t *testing.T) {
	a := model.Author{Family: "DeLong", Given: "A."}
	b := model.Author{Family: "Delong", Given: "A."}
	ka, kb := KeyAuthor(a, Default()), KeyAuthor(b, Default())
	if bytes.Equal(ka, kb) {
		t.Fatal("case-differing names share a key")
	}
	if bytes.Compare(ka, kb) > 0 {
		t.Error("upper-case variant should sort first at the tertiary tier")
	}
}

func TestStudentFlagDoesNotReorder(t *testing.T) {
	a := model.Author{Family: "Lewin", Given: "Jeff L."}
	b := a
	b.Student = true
	ka, kb := KeyAuthor(a, Default()), KeyAuthor(b, Default())
	// Keys differ (tertiary tier sees the asterisk) but primary tiers match.
	pa := bytes.SplitN(ka, []byte{tierSep}, 2)[0]
	pb := bytes.SplitN(kb, []byte{tierSep}, 2)[0]
	if !bytes.Equal(pa, pb) {
		t.Error("student flag changed primary tier")
	}
	if bytes.Equal(ka, kb) {
		t.Error("student flag invisible to full key; entries would collide")
	}
}

func TestFirstLetter(t *testing.T) {
	tests := []struct {
		in   string
		o    Options
		want byte
	}{
		{"Abdalla, Tarek F.*", Default(), 'A'},
		{"Van Tol, Joan E.", Default(), 'V'},
		{"Van Tol, Joan E.", Options{GroupParticle: false}, 'T'},
		{"Ørsted, Hans", Default(), 'O'},
		{"McAteer, J. Davitt", Options{McAsMac: true}, 'M'},
		{"'t Hooft, G.", Options{}, 'T'},
	}
	for _, tt := range tests {
		a := names.MustParse(tt.in)
		if got := FirstLetter(a, tt.o); got != tt.want {
			t.Errorf("FirstLetter(%q, %+v) = %c, want %c", tt.in, tt.o, got, tt.want)
		}
	}
}

func TestPrimaryPrefixMatchesFullKey(t *testing.T) {
	o := Default()
	a := names.MustParse("Abdalla, Tarek F.*")
	key := KeyAuthor(a, o)
	for _, p := range []string{"A", "Ab", "abd", "ABDALLA"} {
		prefix := PrimaryPrefix(p, o)
		if !bytes.HasPrefix(key, prefix) {
			t.Errorf("key for %q does not start with PrimaryPrefix(%q)=%x", a.Display(), p, prefix)
		}
	}
	if bytes.HasPrefix(key, PrimaryPrefix("Abe", o)) {
		t.Error("non-matching prefix matched")
	}
}

func TestKeyStringOrdersTitles(t *testing.T) {
	o := Default()
	titles := []string{"Zoning Basics", "an essay", "An Essay", "Áccent First"}
	sort.Slice(titles, func(i, j int) bool {
		return bytes.Compare(KeyString(titles[i], o), KeyString(titles[j], o)) < 0
	})
	want := []string{"Áccent First", "An Essay", "an essay", "Zoning Basics"}
	for i := range want {
		if titles[i] != want[i] {
			t.Fatalf("title order = %v, want %v", titles, want)
		}
	}
}

func TestNonLatinAndDigitHeadings(t *testing.T) {
	o := Default()
	// A name with no Latin-foldable head letter files under '#'.
	cjk := model.Author{Family: "田中", Given: "一郎"}
	if got := FirstLetter(cjk, o); got != '#' {
		t.Errorf("CJK FirstLetter = %c, want #", got)
	}
	num := model.Author{Family: "3M Collective"}
	if got := FirstLetter(num, o); got != '#' {
		t.Errorf("digit FirstLetter = %c, want #", got)
	}
	// Keys still order deterministically and non-equal.
	ka := KeyAuthor(cjk, o)
	kb := KeyAuthor(num, o)
	if bytes.Equal(ka, kb) {
		t.Error("distinct non-Latin headings share a key")
	}
	// Digits sort before letters at the primary tier.
	letter := model.Author{Family: "Abel"}
	if bytes.Compare(kb, KeyAuthor(letter, o)) >= 0 {
		t.Error("digit-led heading does not precede letters")
	}
}

func TestSchemeString(t *testing.T) {
	if LetterByLetter.String() != "letter-by-letter" || WordByWord.String() != "word-by-word" {
		t.Error("Scheme.String mismatch")
	}
}

// randomAuthor builds authors from a constrained alphabet so collisions
// and near-misses are common.
func randomAuthor(r *rand.Rand) model.Author {
	pick := func(choices []string) string { return choices[r.Intn(len(choices))] }
	return model.Author{
		Family:   pick([]string{"Smith", "Smyth", "smith", "Smith-Jones", "Sm ith", "Müller", "Muller", "McAdam", "MacAdam", "Ó Baoill"}),
		Given:    pick([]string{"", "A.", "a.", "Ann B.", "Ánn"}),
		Particle: pick([]string{"", "van", "de la", "Van"}),
		Suffix:   pick([]string{"", "Jr.", "Sr.", "II", "III", "XVII"}),
		Student:  r.Intn(2) == 0,
	}
}

func TestKeyIsTotalOrderQuick(t *testing.T) {
	// Antisymmetry + key equality iff author equality under Display.
	for _, o := range []Options{Default(), {}, {Scheme: WordByWord, McAsMac: true}, {GroupParticle: true}} {
		f := func(seed int64) bool {
			r := rand.New(rand.NewSource(seed))
			a, b := randomAuthor(r), randomAuthor(r)
			ka, kb := KeyAuthor(a, o), KeyAuthor(b, o)
			c1, c2 := bytes.Compare(ka, kb), bytes.Compare(kb, ka)
			if c1 != -c2 {
				return false
			}
			if c1 == 0 {
				// Equal keys must mean identical tertiary (original) text.
				return a.Display() == b.Display()
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
			t.Errorf("options %+v: %v", o, err)
		}
	}
}

func TestKeyDeterministic(t *testing.T) {
	a := names.MustParse("Van Tol, Joan E.")
	if !bytes.Equal(KeyAuthor(a, Default()), KeyAuthor(a, Default())) {
		t.Error("KeyAuthor not deterministic")
	}
}
