// Package citeparse parses and formats the "volume:page (year)" citation
// strings that author indexes print, tolerating the spacing variations
// found in scanned source material.
package citeparse

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/model"
)

// ErrSyntax is wrapped by all parse failures.
var ErrSyntax = errors.New("citeparse: invalid citation")

// Format renders c in canonical form, e.g. "95:1365 (1993)".
func Format(c model.Citation) string { return c.String() }

// Parse reads a citation of the form "95:1365 (1993)". Whitespace around
// tokens is tolerated ("95 : 1365(1993)"), as is a missing year
// ("95:1365"), which yields Year==0 and fails Validate; callers decide
// whether that is acceptable.
func Parse(s string) (model.Citation, error) {
	var c model.Citation
	rest := strings.TrimSpace(s)
	if rest == "" {
		return c, fmt.Errorf("%w: empty string", ErrSyntax)
	}

	var err error
	c.Volume, rest, err = leadingInt(rest, "volume")
	if err != nil {
		return model.Citation{}, err
	}
	rest = strings.TrimSpace(rest)
	if !strings.HasPrefix(rest, ":") {
		return model.Citation{}, fmt.Errorf("%w: missing ':' in %q", ErrSyntax, s)
	}
	rest = strings.TrimSpace(rest[1:])
	c.Page, rest, err = leadingInt(rest, "page")
	if err != nil {
		return model.Citation{}, err
	}
	rest = strings.TrimSpace(rest)
	if rest == "" {
		return c, nil // no year
	}
	if !strings.HasPrefix(rest, "(") || !strings.HasSuffix(rest, ")") {
		return model.Citation{}, fmt.Errorf("%w: malformed year in %q", ErrSyntax, s)
	}
	inner := strings.TrimSpace(rest[1 : len(rest)-1])
	c.Year, rest, err = leadingInt(inner, "year")
	if err != nil {
		return model.Citation{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return model.Citation{}, fmt.Errorf("%w: trailing text %q", ErrSyntax, rest)
	}
	return c, nil
}

// MustParse is Parse for tests and static tables; it panics on error.
func MustParse(s string) model.Citation {
	c, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return c
}

// leadingInt consumes a decimal integer from the front of s.
func leadingInt(s, what string) (v int, rest string, err error) {
	i := 0
	for i < len(s) && s[i] >= '0' && s[i] <= '9' {
		if v > (1<<31-1)/10 {
			return 0, "", fmt.Errorf("%w: %s overflows", ErrSyntax, what)
		}
		v = v*10 + int(s[i]-'0')
		i++
	}
	if i == 0 {
		return 0, "", fmt.Errorf("%w: expected %s digits at %q", ErrSyntax, what, s)
	}
	return v, s[i:], nil
}
