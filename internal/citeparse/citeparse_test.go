package citeparse

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestParse(t *testing.T) {
	tests := []struct {
		in   string
		want model.Citation
	}{
		{"95:1365 (1993)", model.Citation{Volume: 95, Page: 1365, Year: 1993}},
		{"69:1 (1966)", model.Citation{Volume: 69, Page: 1, Year: 1966}},
		{"  82 : 1241 ( 1980 ) ", model.Citation{Volume: 82, Page: 1241, Year: 1980}},
		{"95:1365(1993)", model.Citation{Volume: 95, Page: 1365, Year: 1993}},
		{"95:1365", model.Citation{Volume: 95, Page: 1365, Year: 0}}, // year optional at parse level
	}
	for _, tt := range tests {
		got, err := Parse(tt.in)
		if err != nil {
			t.Errorf("Parse(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Parse(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"", "   ", "abc", "95", "95:", ":1365", "95:1365 1993",
		"95:1365 (19x3)", "95:1365 (1993", "95:1365 (1993) extra",
		"95:1365 ()", "999999999999999999999:1 (1993)",
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		} else if !errors.Is(err, ErrSyntax) {
			t.Errorf("Parse(%q) error %v does not wrap ErrSyntax", in, err)
		}
	}
}

func TestRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := model.Citation{
			Volume: 1 + r.Intn(500),
			Page:   1 + r.Intn(5000),
			Year:   1800 + r.Intn(300),
		}
		got, err := Parse(Format(c))
		return err == nil && got == c
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMustParse(t *testing.T) {
	if MustParse("95:1365 (1993)") != (model.Citation{Volume: 95, Page: 1365, Year: 1993}) {
		t.Error("MustParse wrong value")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic on bad input")
		}
	}()
	MustParse("nope")
}
