package inverted

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

// TestBulkLoadMatchesIncremental: Load over a corpus must be
// indistinguishable from Add-ing every doc to an empty index — same doc
// and term counts, same postings per term, same query results — and the
// two must stay identical under subsequent Add/Remove traffic.
func TestBulkLoadMatchesIncremental(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 9, Works: 1200, ZipfS: 1.1})
	inc := New()
	docs := make([]Doc, 0, len(works))
	for _, w := range works {
		inc.Add(w.ID, w.Title)
		docs = append(docs, Doc{ID: w.ID, Text: w.Title})
	}
	bulk := Load(docs)
	compareIndexes(t, bulk, inc, works)

	// Subsequent mutations on a bulk-built index behave identically.
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			w := works[r.Intn(len(works))]
			inc.Remove(w.ID, w.Title)
			bulk.Remove(w.ID, w.Title)
		} else {
			id := model.WorkID(10_000 + i)
			text := fmt.Sprintf("Fresh Title %d on Surface Mining", i)
			inc.Add(id, text)
			bulk.Add(id, text)
		}
	}
	compareIndexes(t, bulk, inc, works)
}

func TestBulkLoadEmptyAndStopwordDocs(t *testing.T) {
	bulk := Load([]Doc{
		{ID: 1, Text: "the of and"}, // all stopwords: indexes nothing
		{ID: 2, Text: "Coalbed Methane"},
	})
	if bulk.Docs() != 1 {
		t.Fatalf("Docs = %d, want 1 (stopword-only doc contributes nothing)", bulk.Docs())
	}
	if got := bulk.Postings("coalbed"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("Postings(coalbed) = %v", got)
	}
	if empty := Load(nil); empty.Docs() != 0 || empty.Terms() != 0 {
		t.Fatalf("Load(nil) not empty: %d docs, %d terms", empty.Docs(), empty.Terms())
	}
}

func compareIndexes(t *testing.T, bulk, inc *Index, works []*model.Work) {
	t.Helper()
	if bulk.Docs() != inc.Docs() {
		t.Fatalf("Docs: bulk %d, incremental %d", bulk.Docs(), inc.Docs())
	}
	if bulk.Terms() != inc.Terms() {
		t.Fatalf("Terms: bulk %d, incremental %d", bulk.Terms(), inc.Terms())
	}
	for _, w := range works {
		for _, tok := range Tokenize(w.Title) {
			b, i := bulk.Postings(tok), inc.Postings(tok)
			if !reflect.DeepEqual(b, i) {
				t.Fatalf("Postings(%q): bulk %v, incremental %v", tok, b, i)
			}
		}
	}
	for _, q := range []string{"surface mining", "coal or gas", "mining -surface", "reclam*", "liability"} {
		if b, i := bulk.Search(q), inc.Search(q); !reflect.DeepEqual(b, i) {
			t.Fatalf("Search(%q): bulk %v, incremental %v", q, b, i)
		}
	}
}
