package inverted

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"The Law of Coal, Oil and Gas", []string{"law", "coal", "oil", "gas"}},
		{"Drugs, Ideology, and the Deconstitutionalization of Criminal Procedure",
			[]string{"drugs", "ideology", "deconstitutionalization", "criminal", "procedure"}},
		{"Rule 10b-5 and Santa Fe", []string{"rule", "10b", "5", "santa", "fe"}},
		{"Écologie Générale", []string{"ecologie", "generale"}},
		{"", nil},
		{"of the and", nil},
		{"United States v. Law", []string{"united", "states", "law"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddRemovePostings(t *testing.T) {
	ix := New()
	ix.Add(1, "Surface Mining Control")
	ix.Add(2, "Surface Rights in West Virginia")
	ix.Add(3, "Deep Coal Mines")
	if ix.Docs() != 3 {
		t.Errorf("Docs = %d, want 3", ix.Docs())
	}
	if got := ix.Postings("surface"); !reflect.DeepEqual(got, []model.WorkID{1, 2}) {
		t.Errorf("Postings(surface) = %v", got)
	}
	// Case and diacritics fold on lookup.
	if got := ix.Postings("SÚRFACE"); !reflect.DeepEqual(got, []model.WorkID{1, 2}) {
		t.Errorf("Postings(folded) = %v", got)
	}
	ix.Remove(1, "Surface Mining Control")
	if got := ix.Postings("surface"); !reflect.DeepEqual(got, []model.WorkID{2}) {
		t.Errorf("after remove, Postings(surface) = %v", got)
	}
	if got := ix.Postings("control"); got != nil {
		t.Errorf("empty term not deleted: %v", got)
	}
	if ix.Docs() != 2 {
		t.Errorf("Docs after remove = %d, want 2", ix.Docs())
	}
}

func TestAddIdempotent(t *testing.T) {
	ix := New()
	ix.Add(5, "Coal Coal Coal")
	ix.Add(5, "Coal Coal Coal")
	if got := ix.Postings("coal"); !reflect.DeepEqual(got, []model.WorkID{5}) {
		t.Errorf("duplicate add produced %v", got)
	}
	if ix.Docs() != 1 {
		t.Errorf("Docs = %d, want 1", ix.Docs())
	}
}

func TestParseQuery(t *testing.T) {
	tests := []struct {
		in   string
		want Query
	}{
		{"surface mining", Query{All: []Atom{{Term: "surface"}, {Term: "mining"}}}},
		{"coal or gas", Query{Any: []Atom{{Term: "coal"}, {Term: "gas"}}}},
		{"mining -surface", Query{All: []Atom{{Term: "mining"}}, None: []Atom{{Term: "surface"}}}},
		{"reclam*", Query{All: []Atom{{Term: "reclam", Prefix: true}}}},
		{"coal or gas or oil", Query{Any: []Atom{{Term: "coal"}, {Term: "gas"}, {Term: "oil"}}}},
		{"tax coal or gas", Query{All: []Atom{{Term: "tax"}}, Any: []Atom{{Term: "coal"}, {Term: "gas"}}}},
		{"", Query{}},
		{"the of", Query{}}, // stopwords vanish
	}
	for _, tt := range tests {
		got := ParseQuery(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func buildCorpus() (*Index, map[model.WorkID]string) {
	ix := New()
	docs := map[model.WorkID]string{
		1: "Surface Mining Control and Reclamation",
		2: "Reclamation of Orphaned Mined Lands",
		3: "Coal Mining Machinery Cases",
		4: "Ownership of Coalbed Methane Gas",
		5: "The Federal Coal Leasing Waltz",
		6: "Acid Rain and the Clean Air Act",
	}
	for id, title := range docs {
		ix.Add(id, title)
	}
	return ix, docs
}

func TestSearch(t *testing.T) {
	ix, _ := buildCorpus()
	tests := []struct {
		q    string
		want []model.WorkID
	}{
		{"mining", []model.WorkID{1, 3}},
		{"mining reclamation", []model.WorkID{1}},
		{"coal or coalbed", []model.WorkID{3, 4, 5}},
		{"mining -coal", []model.WorkID{1}},
		{"reclam*", []model.WorkID{1, 2}},
		{"min* coal", []model.WorkID{3}},
		{"nonexistent", nil},
		{"-coal", nil}, // NOT-only has no universe
		{"", nil},
		// "coal" ANDs with (leasing OR methane); doc 4 has "coalbed",
		// not "coal", so only doc 5 qualifies.
		{"coal leasing or methane", []model.WorkID{5}},
		{"coal* leasing or methane", []model.WorkID{4, 5}},
	}
	for _, tt := range tests {
		got := ix.Search(tt.q)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Search(%q) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

// bruteForce evaluates a query by scanning every document, as the ground
// truth for property testing.
func bruteForce(docs map[model.WorkID]string, q Query) []model.WorkID {
	tokensOf := func(title string) map[string]bool {
		m := map[string]bool{}
		for _, tok := range Tokenize(title) {
			m[tok] = true
		}
		return m
	}
	match := func(toks map[string]bool, a Atom) bool {
		if !a.Prefix {
			return toks[a.Term]
		}
		for tok := range toks {
			if strings.HasPrefix(tok, a.Term) {
				return true
			}
		}
		return false
	}
	var out []model.WorkID
	if q.IsEmpty() {
		return nil
	}
	for id, title := range docs {
		toks := tokensOf(title)
		ok := len(q.All) > 0 || len(q.Any) > 0
		for _, a := range q.All {
			if !match(toks, a) {
				ok = false
				break
			}
		}
		if ok && len(q.Any) > 0 {
			anyOK := false
			for _, a := range q.Any {
				if match(toks, a) {
					anyOK = true
					break
				}
			}
			ok = anyOK
		}
		if ok {
			for _, a := range q.None {
				if match(toks, a) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var vocab = []string{"coal", "mine", "mining", "surface", "gas", "oil", "tax",
	"law", "act", "reform", "safety", "water", "clean", "rights", "virginia"}

func randomDocs(r *rand.Rand, n int) map[model.WorkID]string {
	docs := make(map[model.WorkID]string, n)
	for i := 0; i < n; i++ {
		words := make([]string, 1+r.Intn(6))
		for j := range words {
			words[j] = vocab[r.Intn(len(vocab))]
		}
		docs[model.WorkID(i+1)] = strings.Join(words, " ")
	}
	return docs
}

func randomQuery(r *rand.Rand) Query {
	var q Query
	atom := func() Atom {
		term := vocab[r.Intn(len(vocab))]
		if r.Intn(4) == 0 {
			term = term[:1+r.Intn(len(term))]
			return Atom{Term: term, Prefix: true}
		}
		return Atom{Term: term}
	}
	for i := 0; i < r.Intn(3); i++ {
		q.All = append(q.All, atom())
	}
	for i := 0; i < r.Intn(3); i++ {
		q.Any = append(q.Any, atom())
	}
	for i := 0; i < r.Intn(2); i++ {
		q.None = append(q.None, atom())
	}
	return q
}

func TestEvalMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 1+r.Intn(60))
		ix := New()
		for id, title := range docs {
			ix.Add(id, title)
		}
		for trial := 0; trial < 10; trial++ {
			q := randomQuery(r)
			got := ix.Eval(q)
			want := bruteForce(docs, q)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d query %+v: got %v want %v", seed, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemoveEverythingEmptiesIndex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	docs := randomDocs(r, 50)
	ix := New()
	for id, title := range docs {
		ix.Add(id, title)
	}
	for id, title := range docs {
		ix.Remove(id, title)
	}
	if ix.Docs() != 0 || ix.Terms() != 0 {
		t.Errorf("after removing all: docs=%d terms=%d", ix.Docs(), ix.Terms())
	}
}

func TestExpandPrefixLimit(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		ix.Add(model.WorkID(i+1), fmt.Sprintf("term%02d unique", i))
	}
	all := ix.ExpandPrefix("term", 0)
	if len(all) != 10 {
		t.Errorf("unlimited expansion = %d ids", len(all))
	}
	capped := ix.ExpandPrefix("term", 3)
	if len(capped) != 3 {
		t.Errorf("capped expansion = %d ids, want 3", len(capped))
	}
}

func TestSetOps(t *testing.T) {
	a := []model.WorkID{1, 3, 5, 7}
	b := []model.WorkID{3, 4, 5, 8}
	if got := intersectInto(nil, a, b); !reflect.DeepEqual(got, []model.WorkID{3, 5}) {
		t.Errorf("intersect = %v", got)
	}
	if got := union(a, b); !reflect.DeepEqual(got, []model.WorkID{1, 3, 4, 5, 7, 8}) {
		t.Errorf("union = %v", got)
	}
	if got := subtractInto(nil, a, b); !reflect.DeepEqual(got, []model.WorkID{1, 7}) {
		t.Errorf("subtract = %v", got)
	}
	if got := union(nil, nil); len(got) != 0 {
		t.Errorf("union(nil,nil) = %v", got)
	}
}

// TestSeek pins down the galloping search: smallest index >= from whose
// element is >= x, across window edges and overshoots.
func TestSeek(t *testing.T) {
	b := []model.WorkID{2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
	tests := []struct {
		from int
		x    model.WorkID
		want int
	}{
		{0, 1, 0}, {0, 2, 0}, {0, 3, 1}, {0, 11, 5}, {0, 20, 9},
		{0, 21, 10}, {3, 8, 3}, {3, 7, 3}, {5, 13, 6}, {9, 20, 9},
		{10, 5, 10}, {0, 19, 9},
	}
	for _, tt := range tests {
		if got := seek(b, tt.from, tt.x); got != tt.want {
			t.Errorf("seek(b, %d, %d) = %d, want %d", tt.from, tt.x, got, tt.want)
		}
	}
	if got := seek(nil, 0, 1); got != 0 {
		t.Errorf("seek(nil) = %d", got)
	}
}

// TestIntersectGallopEquivalence drives intersectInto through both the
// linear and galloping regimes against a map-based reference, including
// heavily skewed list sizes.
func TestIntersectGallopEquivalence(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	randList := func(n, max int) []model.WorkID {
		seen := map[model.WorkID]bool{}
		for len(seen) < n {
			seen[model.WorkID(1+r.Intn(max))] = true
		}
		out := make([]model.WorkID, 0, n)
		for id := range seen {
			out = append(out, id)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for round := 0; round < 200; round++ {
		na, nb := 1+r.Intn(40), 1+r.Intn(2000)
		a, b := randList(na, 500), randList(nb, 5000)
		want := []model.WorkID{}
		inB := map[model.WorkID]bool{}
		for _, x := range b {
			inB[x] = true
		}
		for _, x := range a {
			if inB[x] {
				want = append(want, x)
			}
		}
		got := intersectInto(nil, a, b)
		if !reflect.DeepEqual(append([]model.WorkID{}, got...), want) {
			t.Fatalf("round %d: intersect(|%d|,|%d|) = %v, want %v", round, na, nb, got, want)
		}
		// In-place over the owned accumulator, both argument orders.
		acc := append([]model.WorkID(nil), a...)
		if got := intersectInto(acc, acc, b); !reflect.DeepEqual(append([]model.WorkID{}, got...), want) {
			t.Fatalf("round %d: in-place intersect diverged", round)
		}
		acc = append([]model.WorkID(nil), b...)
		if got := intersectInto(acc, acc, a); !reflect.DeepEqual(append([]model.WorkID{}, got...), want) {
			t.Fatalf("round %d: in-place swapped intersect diverged", round)
		}
		// Subtract against the same reference.
		wantSub := []model.WorkID{}
		for _, x := range a {
			if !inB[x] {
				wantSub = append(wantSub, x)
			}
		}
		if got := subtractInto(nil, a, b); !reflect.DeepEqual(append([]model.WorkID{}, got...), wantSub) {
			t.Fatalf("round %d: subtract diverged", round)
		}
	}
}

// TestEvalMatchesNaive replays random boolean queries against a
// tokenize-and-scan reference over a random corpus.
func TestEvalMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	vocab := []string{"surface", "mining", "coal", "gas", "water", "law", "tax", "mine", "mineral", "rights"}
	ix := New()
	docs := map[model.WorkID][]string{}
	for i := 1; i <= 300; i++ {
		n := 1 + r.Intn(5)
		toks := make([]string, n)
		for j := range toks {
			toks[j] = vocab[r.Intn(len(vocab))]
		}
		docs[model.WorkID(i)] = toks
		ix.Add(model.WorkID(i), strings.Join(toks, " "))
	}
	queries := []string{
		"surface mining", "coal", "mining -surface", "coal or gas",
		"min* rights", "surface mining coal gas water", "law tax mine",
		"coal or gas -water", "surface surface", "nosuchterm",
		"nosuchterm mining", "-coal",
	}
	for _, qs := range queries {
		q := ParseQuery(qs)
		got, st := ix.EvalWithStats(q)
		var want []model.WorkID
		for id := model.WorkID(1); id <= 300; id++ {
			if matchNaive(docs[id], q) {
				want = append(want, id)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("Eval(%q) = %d ids, want %d", qs, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Eval(%q)[%d] = %d, want %d", qs, i, got[i], want[i])
			}
		}
		// An empty AND operand short-circuits before touching the other
		// lists, so only non-empty results must report scan volume.
		if len(got) > 0 && st.PostingsBytes == 0 {
			t.Errorf("Eval(%q) matched %d ids but reported zero postings scanned", qs, len(got))
		}
	}
}

func matchNaive(toks []string, q Query) bool {
	has := func(a Atom) bool {
		for _, tok := range toks {
			if a.Prefix && strings.HasPrefix(tok, a.Term) || !a.Prefix && tok == a.Term {
				return true
			}
		}
		return false
	}
	if len(q.All) == 0 && len(q.Any) == 0 {
		return false
	}
	for _, a := range q.All {
		if !has(a) {
			return false
		}
	}
	if len(q.Any) > 0 {
		ok := false
		for _, a := range q.Any {
			if has(a) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	for _, a := range q.None {
		if has(a) {
			return false
		}
	}
	return true
}

// TestEvalDoesNotAliasPostings: mutating a result must never corrupt the
// index's internal postings.
func TestEvalDoesNotAliasPostings(t *testing.T) {
	ix := New()
	ix.Add(1, "coal mining")
	ix.Add(2, "coal washing")
	got := ix.Eval(ParseQuery("coal"))
	if len(got) != 2 {
		t.Fatalf("Eval = %v", got)
	}
	got[0] = 999
	if again := ix.Eval(ParseQuery("coal")); !reflect.DeepEqual(again, []model.WorkID{1, 2}) {
		t.Fatalf("postings corrupted by caller mutation: %v", again)
	}
}
