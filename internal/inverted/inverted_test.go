package inverted

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/model"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"The Law of Coal, Oil and Gas", []string{"law", "coal", "oil", "gas"}},
		{"Drugs, Ideology, and the Deconstitutionalization of Criminal Procedure",
			[]string{"drugs", "ideology", "deconstitutionalization", "criminal", "procedure"}},
		{"Rule 10b-5 and Santa Fe", []string{"rule", "10b", "5", "santa", "fe"}},
		{"Écologie Générale", []string{"ecologie", "generale"}},
		{"", nil},
		{"of the and", nil},
		{"United States v. Law", []string{"united", "states", "law"}},
	}
	for _, tt := range tests {
		got := Tokenize(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestAddRemovePostings(t *testing.T) {
	ix := New()
	ix.Add(1, "Surface Mining Control")
	ix.Add(2, "Surface Rights in West Virginia")
	ix.Add(3, "Deep Coal Mines")
	if ix.Docs() != 3 {
		t.Errorf("Docs = %d, want 3", ix.Docs())
	}
	if got := ix.Postings("surface"); !reflect.DeepEqual(got, []model.WorkID{1, 2}) {
		t.Errorf("Postings(surface) = %v", got)
	}
	// Case and diacritics fold on lookup.
	if got := ix.Postings("SÚRFACE"); !reflect.DeepEqual(got, []model.WorkID{1, 2}) {
		t.Errorf("Postings(folded) = %v", got)
	}
	ix.Remove(1, "Surface Mining Control")
	if got := ix.Postings("surface"); !reflect.DeepEqual(got, []model.WorkID{2}) {
		t.Errorf("after remove, Postings(surface) = %v", got)
	}
	if got := ix.Postings("control"); got != nil {
		t.Errorf("empty term not deleted: %v", got)
	}
	if ix.Docs() != 2 {
		t.Errorf("Docs after remove = %d, want 2", ix.Docs())
	}
}

func TestAddIdempotent(t *testing.T) {
	ix := New()
	ix.Add(5, "Coal Coal Coal")
	ix.Add(5, "Coal Coal Coal")
	if got := ix.Postings("coal"); !reflect.DeepEqual(got, []model.WorkID{5}) {
		t.Errorf("duplicate add produced %v", got)
	}
	if ix.Docs() != 1 {
		t.Errorf("Docs = %d, want 1", ix.Docs())
	}
}

func TestParseQuery(t *testing.T) {
	tests := []struct {
		in   string
		want Query
	}{
		{"surface mining", Query{All: []Atom{{Term: "surface"}, {Term: "mining"}}}},
		{"coal or gas", Query{Any: []Atom{{Term: "coal"}, {Term: "gas"}}}},
		{"mining -surface", Query{All: []Atom{{Term: "mining"}}, None: []Atom{{Term: "surface"}}}},
		{"reclam*", Query{All: []Atom{{Term: "reclam", Prefix: true}}}},
		{"coal or gas or oil", Query{Any: []Atom{{Term: "coal"}, {Term: "gas"}, {Term: "oil"}}}},
		{"tax coal or gas", Query{All: []Atom{{Term: "tax"}}, Any: []Atom{{Term: "coal"}, {Term: "gas"}}}},
		{"", Query{}},
		{"the of", Query{}}, // stopwords vanish
	}
	for _, tt := range tests {
		got := ParseQuery(tt.in)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("ParseQuery(%q) = %+v, want %+v", tt.in, got, tt.want)
		}
	}
}

func buildCorpus() (*Index, map[model.WorkID]string) {
	ix := New()
	docs := map[model.WorkID]string{
		1: "Surface Mining Control and Reclamation",
		2: "Reclamation of Orphaned Mined Lands",
		3: "Coal Mining Machinery Cases",
		4: "Ownership of Coalbed Methane Gas",
		5: "The Federal Coal Leasing Waltz",
		6: "Acid Rain and the Clean Air Act",
	}
	for id, title := range docs {
		ix.Add(id, title)
	}
	return ix, docs
}

func TestSearch(t *testing.T) {
	ix, _ := buildCorpus()
	tests := []struct {
		q    string
		want []model.WorkID
	}{
		{"mining", []model.WorkID{1, 3}},
		{"mining reclamation", []model.WorkID{1}},
		{"coal or coalbed", []model.WorkID{3, 4, 5}},
		{"mining -coal", []model.WorkID{1}},
		{"reclam*", []model.WorkID{1, 2}},
		{"min* coal", []model.WorkID{3}},
		{"nonexistent", nil},
		{"-coal", nil}, // NOT-only has no universe
		{"", nil},
		// "coal" ANDs with (leasing OR methane); doc 4 has "coalbed",
		// not "coal", so only doc 5 qualifies.
		{"coal leasing or methane", []model.WorkID{5}},
		{"coal* leasing or methane", []model.WorkID{4, 5}},
	}
	for _, tt := range tests {
		got := ix.Search(tt.q)
		if !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Search(%q) = %v, want %v", tt.q, got, tt.want)
		}
	}
}

// bruteForce evaluates a query by scanning every document, as the ground
// truth for property testing.
func bruteForce(docs map[model.WorkID]string, q Query) []model.WorkID {
	tokensOf := func(title string) map[string]bool {
		m := map[string]bool{}
		for _, tok := range Tokenize(title) {
			m[tok] = true
		}
		return m
	}
	match := func(toks map[string]bool, a Atom) bool {
		if !a.Prefix {
			return toks[a.Term]
		}
		for tok := range toks {
			if strings.HasPrefix(tok, a.Term) {
				return true
			}
		}
		return false
	}
	var out []model.WorkID
	if q.IsEmpty() {
		return nil
	}
	for id, title := range docs {
		toks := tokensOf(title)
		ok := len(q.All) > 0 || len(q.Any) > 0
		for _, a := range q.All {
			if !match(toks, a) {
				ok = false
				break
			}
		}
		if ok && len(q.Any) > 0 {
			anyOK := false
			for _, a := range q.Any {
				if match(toks, a) {
					anyOK = true
					break
				}
			}
			ok = anyOK
		}
		if ok {
			for _, a := range q.None {
				if match(toks, a) {
					ok = false
					break
				}
			}
		}
		if ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

var vocab = []string{"coal", "mine", "mining", "surface", "gas", "oil", "tax",
	"law", "act", "reform", "safety", "water", "clean", "rights", "virginia"}

func randomDocs(r *rand.Rand, n int) map[model.WorkID]string {
	docs := make(map[model.WorkID]string, n)
	for i := 0; i < n; i++ {
		words := make([]string, 1+r.Intn(6))
		for j := range words {
			words[j] = vocab[r.Intn(len(vocab))]
		}
		docs[model.WorkID(i+1)] = strings.Join(words, " ")
	}
	return docs
}

func randomQuery(r *rand.Rand) Query {
	var q Query
	atom := func() Atom {
		term := vocab[r.Intn(len(vocab))]
		if r.Intn(4) == 0 {
			term = term[:1+r.Intn(len(term))]
			return Atom{Term: term, Prefix: true}
		}
		return Atom{Term: term}
	}
	for i := 0; i < r.Intn(3); i++ {
		q.All = append(q.All, atom())
	}
	for i := 0; i < r.Intn(3); i++ {
		q.Any = append(q.Any, atom())
	}
	for i := 0; i < r.Intn(2); i++ {
		q.None = append(q.None, atom())
	}
	return q
}

func TestEvalMatchesBruteForceQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		docs := randomDocs(r, 1+r.Intn(60))
		ix := New()
		for id, title := range docs {
			ix.Add(id, title)
		}
		for trial := 0; trial < 10; trial++ {
			q := randomQuery(r)
			got := ix.Eval(q)
			want := bruteForce(docs, q)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Logf("seed %d query %+v: got %v want %v", seed, q, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRemoveEverythingEmptiesIndex(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	docs := randomDocs(r, 50)
	ix := New()
	for id, title := range docs {
		ix.Add(id, title)
	}
	for id, title := range docs {
		ix.Remove(id, title)
	}
	if ix.Docs() != 0 || ix.Terms() != 0 {
		t.Errorf("after removing all: docs=%d terms=%d", ix.Docs(), ix.Terms())
	}
}

func TestExpandPrefixLimit(t *testing.T) {
	ix := New()
	for i := 0; i < 10; i++ {
		ix.Add(model.WorkID(i+1), fmt.Sprintf("term%02d unique", i))
	}
	all := ix.ExpandPrefix("term", 0)
	if len(all) != 10 {
		t.Errorf("unlimited expansion = %d ids", len(all))
	}
	capped := ix.ExpandPrefix("term", 3)
	if len(capped) != 3 {
		t.Errorf("capped expansion = %d ids, want 3", len(capped))
	}
}

func TestSetOps(t *testing.T) {
	a := []model.WorkID{1, 3, 5, 7}
	b := []model.WorkID{3, 4, 5, 8}
	if got := intersect(append([]model.WorkID(nil), a...), b); !reflect.DeepEqual(got, []model.WorkID{3, 5}) {
		t.Errorf("intersect = %v", got)
	}
	if got := union(a, b); !reflect.DeepEqual(got, []model.WorkID{1, 3, 4, 5, 7, 8}) {
		t.Errorf("union = %v", got)
	}
	if got := subtract(append([]model.WorkID(nil), a...), b); !reflect.DeepEqual(got, []model.WorkID{1, 7}) {
		t.Errorf("subtract = %v", got)
	}
	if got := union(nil, nil); len(got) != 0 {
		t.Errorf("union(nil,nil) = %v", got)
	}
}
