// Package inverted implements a small inverted index over work titles:
// folded tokens map to sorted postings lists of work IDs, with boolean
// AND/OR/NOT evaluation and trailing-* prefix expansion. Terms live in a
// B+tree so prefix queries are ordered scans.
package inverted

import (
	"sort"
	"strings"

	"repro/internal/btree"
	"repro/internal/model"
	"repro/internal/names"
)

// stopwords are dropped at tokenization time; they carry no selectivity
// in bibliographic titles.
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "as": true, "at": true,
	"by": true, "for": true, "from": true, "in": true, "into": true,
	"is": true, "it": true, "its": true, "of": true, "on": true,
	"or": true, "the": true, "to": true, "under": true, "upon": true,
	"with": true, "v": true, "vs": true,
}

// Tokenize folds text and splits it into index terms: lower-cased,
// diacritic-free, punctuation-separated, stopwords removed, duplicates
// preserved (callers dedupe if needed).
func Tokenize(text string) []string { return appendTokens(nil, text) }

// appendTokens is Tokenize into a caller-supplied buffer, so bulk
// passes can reuse one slice across a whole corpus.
func appendTokens(toks []string, text string) []string {
	folded := names.Fold(text)
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := folded[start:end]
		start = -1
		if !stopwords[tok] {
			toks = append(toks, tok)
		}
	}
	for i, r := range folded {
		if r >= 'a' && r <= 'z' || r >= '0' && r <= '9' {
			if start < 0 {
				start = i
			}
			continue
		}
		flush(i)
	}
	flush(len(folded))
	return toks
}

// Index maps terms to postings. It is not safe for concurrent mutation.
//
// Mutations are copy-on-write at postings granularity: a filed
// *postings value is never edited in place — the mutating method builds
// a fresh list and replaces the tree value — so a Clone taken before
// the mutation keeps a frozen view that readers may borrow from
// without coordination.
type Index struct {
	terms *btree.Tree[*postings]
	docs  int
}

type postings struct {
	ids []model.WorkID // sorted, unique, immutable once filed
}

// New returns an empty index.
func New() *Index { return &Index{terms: btree.New[*postings]()} }

// Clone returns an O(1) copy-on-write snapshot sharing every term node
// and postings list until one side mutates.
func (ix *Index) Clone() *Index {
	cp := *ix
	cp.terms = ix.terms.Clone()
	return &cp
}

// Doc is one (id, text) item for Load.
type Doc struct {
	ID   model.WorkID
	Text string
}

// Load bulk-builds an index over a complete corpus: docs are ordered by
// ID once so every postings list is sorted by construction, postings
// accumulate in a map, and the term tree is constructed bottom-up — no
// per-term tree descent, no per-ID binary-search insertion, no per-list
// sort. For docs with unique IDs (the engine's cold-start contract) the
// result is identical to Add-ing every doc to an empty index.
//
// Like the other bulk loaders, Load takes the slice over: it sorts docs
// in place, so callers must not rely on their ordering afterwards.
func Load(docs []Doc) *Index {
	// One integer sort up front replaces a sort per postings list: IDs
	// append in ascending order for every term.
	sort.Sort(byDocID(docs))
	terms := make(map[string][]model.WorkID)
	n := 0
	var scratch []string // one token buffer for the whole corpus
	for _, d := range docs {
		scratch = uniq(appendTokens(scratch[:0], d.Text))
		if len(scratch) == 0 {
			continue
		}
		n++
		for _, tok := range scratch {
			ids := terms[tok]
			// Adjacent duplicates are the only possible ones (ascending
			// IDs), mirroring Add's re-add idempotence.
			if len(ids) > 0 && ids[len(ids)-1] == d.ID {
				continue
			}
			terms[tok] = append(ids, d.ID)
		}
	}
	pairs := make([]btree.Pair[*postings], 0, len(terms))
	for tok, ids := range terms {
		pairs = append(pairs, btree.Pair[*postings]{Key: []byte(tok), Value: &postings{ids: ids}})
	}
	sort.Slice(pairs, func(i, j int) bool { return string(pairs[i].Key) < string(pairs[j].Key) })
	tree, err := btree.BulkLoad(pairs)
	if err != nil {
		// Unreachable: map keys are unique and just sorted.
		panic(err)
	}
	return &Index{terms: tree, docs: n}
}

// byDocID sorts docs ascending by work ID.
type byDocID []Doc

func (s byDocID) Len() int           { return len(s) }
func (s byDocID) Less(i, j int) bool { return s[i].ID < s[j].ID }
func (s byDocID) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Docs returns the number of documents added (and not yet removed).
func (ix *Index) Docs() int { return ix.docs }

// Terms returns the number of distinct terms currently indexed.
func (ix *Index) Terms() int { return ix.terms.Len() }

// Add indexes text under id. Adding the same id twice with the same text
// is idempotent.
func (ix *Index) Add(id model.WorkID, text string) {
	added := false
	for _, tok := range uniq(Tokenize(text)) {
		key := []byte(tok)
		p, ok := ix.terms.Get(key)
		if !ok {
			p = &postings{}
		}
		if np, ok := p.withID(id); ok {
			ix.terms.Set(key, np)
			added = true
		}
	}
	if added {
		ix.docs++
	}
}

// Remove un-indexes text for id; text must be the same string that was
// added. Terms whose postings become empty are deleted.
func (ix *Index) Remove(id model.WorkID, text string) {
	removed := false
	for _, tok := range uniq(Tokenize(text)) {
		key := []byte(tok)
		p, ok := ix.terms.Get(key)
		if !ok {
			continue
		}
		np, changed := p.withoutID(id)
		if !changed {
			continue
		}
		removed = true
		if len(np.ids) == 0 {
			ix.terms.Delete(key)
		} else {
			ix.terms.Set(key, np)
		}
	}
	if removed {
		ix.docs--
	}
}

// Postings returns a copy of the postings list for an exact term.
func (ix *Index) Postings(term string) []model.WorkID {
	p, ok := ix.terms.Get([]byte(names.Fold(term)))
	if !ok {
		return nil
	}
	return append([]model.WorkID(nil), p.ids...)
}

// ExpandPrefix returns the union of postings for every term starting
// with prefix, capped at limit terms (0 = no cap). Matching lists are
// gathered first and merged in one sort+compact pass, instead of paying
// a reallocating pairwise union per term.
func (ix *Index) ExpandPrefix(prefix string, limit int) []model.WorkID {
	var lists [][]model.WorkID
	total, n := 0, 0
	ix.terms.AscendPrefix([]byte(names.Fold(prefix)), func(_ []byte, p *postings) bool {
		lists = append(lists, p.ids)
		total += len(p.ids)
		n++
		return limit == 0 || n < limit
	})
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return append([]model.WorkID(nil), lists[0]...)
	}
	acc := make([]model.WorkID, 0, total)
	for _, l := range lists {
		acc = append(acc, l...)
	}
	sort.Slice(acc, func(i, j int) bool { return acc[i] < acc[j] })
	out := acc[:1]
	for _, x := range acc[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// withID returns a fresh postings list with id inserted in order, or
// (p, false) when id was already present. The receiver is never
// modified: borrowed views of it stay valid.
func (p *postings) withID(id model.WorkID) (*postings, bool) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i < len(p.ids) && p.ids[i] == id {
		return p, false
	}
	ids := make([]model.WorkID, len(p.ids)+1)
	copy(ids, p.ids[:i])
	ids[i] = id
	copy(ids[i+1:], p.ids[i:])
	return &postings{ids: ids}, true
}

// withoutID returns a fresh postings list with id removed, or (p,
// false) when id was absent. The receiver is never modified.
func (p *postings) withoutID(id model.WorkID) (*postings, bool) {
	i := sort.Search(len(p.ids), func(i int) bool { return p.ids[i] >= id })
	if i >= len(p.ids) || p.ids[i] != id {
		return p, false
	}
	ids := make([]model.WorkID, len(p.ids)-1)
	copy(ids, p.ids[:i])
	copy(ids[i:], p.ids[i+1:])
	return &postings{ids: ids}, true
}

// Query is a parsed boolean title query.
type Query struct {
	All  []Atom // every atom must match (AND)
	Any  []Atom // at least one must match, if non-empty (OR)
	None []Atom // none may match (NOT)
}

// Atom is one query term, optionally a prefix pattern.
type Atom struct {
	Term   string
	Prefix bool
}

// IsEmpty reports whether the query constrains nothing.
func (q Query) IsEmpty() bool { return len(q.All) == 0 && len(q.Any) == 0 && len(q.None) == 0 }

// ParseQuery reads a query string: whitespace-separated terms are ANDed;
// terms prefixed "-" are excluded; "or" between terms moves both into the
// OR group; a trailing "*" makes a term a prefix pattern. Terms are
// folded like indexed text.
//
//	"surface mining"      → All: surface, mining
//	"coal or gas"         → Any: coal, gas
//	"mining -surface"     → All: mining; None: surface
//	"reclam*"             → All: reclam* (prefix)
func ParseQuery(s string) Query {
	fields := strings.Fields(s)
	var q Query
	// First pass: find OR groups (a or b or c).
	used := make([]bool, len(fields))
	for i, f := range fields {
		if strings.EqualFold(f, "or") && i > 0 && i < len(fields)-1 {
			used[i] = true
			for _, j := range [2]int{i - 1, i + 1} {
				if !used[j] {
					if a, ok := makeAtom(fields[j]); ok && !strings.HasPrefix(fields[j], "-") {
						q.Any = append(q.Any, a)
						used[j] = true
					}
				}
			}
		}
	}
	for i, f := range fields {
		if used[i] {
			continue
		}
		neg := strings.HasPrefix(f, "-")
		f = strings.TrimPrefix(f, "-")
		a, ok := makeAtom(f)
		if !ok {
			continue
		}
		if neg {
			q.None = append(q.None, a)
		} else {
			q.All = append(q.All, a)
		}
	}
	return q
}

func makeAtom(f string) (Atom, bool) {
	prefix := strings.HasSuffix(f, "*")
	f = strings.TrimSuffix(f, "*")
	toks := Tokenize(f)
	if len(toks) == 0 {
		return Atom{}, false
	}
	// Multi-token atoms ("o'brien") keep only the first token; the rest
	// would have been separate fields anyway.
	return Atom{Term: toks[0], Prefix: prefix}, true
}

// ScanStats reports how much postings data one evaluation examined.
type ScanStats struct {
	// PostingsBytes counts 8 bytes per posting entry in every list the
	// evaluator materialized or intersected against.
	PostingsBytes int
}

// Eval runs the query and returns matching IDs in ascending order. An
// empty query returns nil.
func (ix *Index) Eval(q Query) []model.WorkID {
	ids, _ := ix.EvalWithStats(q)
	return ids
}

// EvalWithStats is Eval plus a report of the postings volume scanned.
//
// Positive lists are intersected smallest-first: exact-term postings are
// borrowed from the index (zero copy), the running intersection lives in
// one scratch buffer reused across terms, and when one list is much
// longer than the accumulator the merge gallops (exponential search)
// through it instead of stepping linearly.
func (ix *Index) EvalWithStats(q Query) ([]model.WorkID, ScanStats) {
	var st ScanStats
	if q.IsEmpty() {
		return nil, st
	}
	matchAtom := func(a Atom) []model.WorkID {
		var ids []model.WorkID
		if a.Prefix {
			ids = ix.ExpandPrefix(a.Term, 0)
		} else if p, ok := ix.terms.Get([]byte(names.Fold(a.Term))); ok {
			ids = p.ids // borrowed: read-only until copied below
		}
		st.PostingsBytes += 8 * len(ids)
		return ids
	}
	lists := make([][]model.WorkID, 0, len(q.All)+1)
	for _, a := range q.All {
		ids := matchAtom(a)
		if len(ids) == 0 {
			return nil, st
		}
		lists = append(lists, ids)
	}
	if len(q.Any) > 0 {
		var anyIDs []model.WorkID
		for _, a := range q.Any {
			anyIDs = union(anyIDs, matchAtom(a))
		}
		// The OR group behaves as one more AND operand, like the classic
		// evaluator's trailing acc ∩ anyIDs step.
		lists = append(lists, anyIDs)
	}
	if len(lists) == 0 {
		// NOT-only queries match nothing: there is no universe to subtract
		// from without a positive term.
		return nil, st
	}
	// Smallest-first insertion sort: query atom counts are tiny, and
	// sort.Slice's closure would be the hot path's only allocations.
	for i := 1; i < len(lists); i++ {
		for j := i; j > 0 && len(lists[j]) < len(lists[j-1]); j-- {
			lists[j], lists[j-1] = lists[j-1], lists[j]
		}
	}
	acc := lists[0]
	owned := false // whether acc is a scratch buffer we may overwrite
	for _, l := range lists[1:] {
		if len(acc) == 0 {
			break
		}
		if !owned {
			acc = intersectInto(make([]model.WorkID, 0, len(acc)), acc, l)
			owned = true
		} else {
			acc = intersectInto(acc, acc, l)
		}
	}
	for _, a := range q.None {
		if len(acc) == 0 {
			break
		}
		ex := matchAtom(a)
		if len(ex) == 0 {
			continue
		}
		if !owned {
			acc = subtractInto(make([]model.WorkID, 0, len(acc)), acc, ex)
			owned = true
		} else {
			acc = subtractInto(acc, acc, ex)
		}
	}
	if !owned {
		// Single positive term: hand out a copy, never the live postings.
		acc = append([]model.WorkID(nil), acc...)
	}
	return acc, st
}

// Search parses and evaluates q in one step.
func (ix *Index) Search(q string) []model.WorkID { return ix.Eval(ParseQuery(q)) }

// gallopRatio is the size skew at which the intersection switches from
// a linear merge to galloping through the longer list; near-equal lists
// merge faster linearly.
const gallopRatio = 8

// intersectInto writes a ∩ b into dst[:0] and returns it. dst may alias
// a or b: the write index never catches up with either read frontier.
func intersectInto(dst, a, b []model.WorkID) []model.WorkID {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := dst[:0]
	if len(b) >= gallopRatio*len(a) {
		j := 0
		for _, x := range a {
			j = seek(b, j, x)
			if j >= len(b) {
				break
			}
			if b[j] == x {
				out = append(out, x)
				j++
			}
		}
		return out
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// seek returns the smallest index >= from with b[index] >= x, galloping
// forward exponentially and then binary-searching the final window.
func seek(b []model.WorkID, from int, x model.WorkID) int {
	if from >= len(b) || b[from] >= x {
		return from
	}
	step := 1
	for from+step < len(b) && b[from+step] < x {
		step <<= 1
	}
	hi := from + step
	if hi > len(b) {
		hi = len(b)
	}
	lo := from + step>>1 // b[lo] < x: either b[from] or the last passed probe
	return lo + sort.Search(hi-lo, func(i int) bool { return b[lo+i] >= x })
}

func union(a, b []model.WorkID) []model.WorkID {
	out := make([]model.WorkID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// subtractInto writes a \ b into dst[:0] and returns it. dst may alias
// a; b is galloped through like the intersection path.
func subtractInto(dst, a, b []model.WorkID) []model.WorkID {
	out := dst[:0]
	j := 0
	for _, x := range a {
		j = seek(b, j, x)
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

func uniq(toks []string) []string {
	if len(toks) < 2 {
		return toks
	}
	// Titles carry a handful of terms; a linear scan dedupes without the
	// per-call map a longer input would want.
	if len(toks) <= 16 {
		out := toks[:1]
		for _, t := range toks[1:] {
			dup := false
			for _, x := range out {
				if x == t {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, t)
			}
		}
		return out
	}
	seen := make(map[string]bool, len(toks))
	out := toks[:0]
	for _, t := range toks {
		if !seen[t] {
			seen[t] = true
			out = append(out, t)
		}
	}
	return out
}
