package inverted

import (
	"strings"
	"testing"
)

// FuzzTokenize checks the tokenizer's invariants on arbitrary input: it
// never panics, every token is non-empty, lower-case alphanumeric and
// stopword-free, it is idempotent (tokenizing the joined tokens yields
// the same tokens), and an index round-trip through Add/Remove leaves
// no residue.
func FuzzTokenize(f *testing.F) {
	for _, seed := range []string{
		"Surface Mining Control and Reclamation",
		"The Coalbed-Methane Question: Who Owns It?",
		"ÀÇÇÉÑTS and Ümläuts",
		"a an and of the", // all stopwords
		"  --  ",
		"",
		"\xff\xfe broken utf8",
		"numbers 123 mixed4alpha",
		"日本語のタイトル",
		strings.Repeat("long ", 50),
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, s string) {
		toks := Tokenize(s)
		for _, tok := range toks {
			if tok == "" {
				t.Fatalf("Tokenize(%q) produced an empty token", s)
			}
			if stopwords[tok] {
				t.Fatalf("Tokenize(%q) kept stopword %q", s, tok)
			}
			for _, r := range tok {
				if !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9') {
					t.Fatalf("Tokenize(%q) produced non-folded token %q", s, tok)
				}
			}
		}
		again := Tokenize(strings.Join(toks, " "))
		if len(again) != len(toks) {
			t.Fatalf("Tokenize not idempotent on %q: %v vs %v", s, toks, again)
		}
		for i := range toks {
			if again[i] != toks[i] {
				t.Fatalf("Tokenize not idempotent on %q: %v vs %v", s, toks, again)
			}
		}
		// Add/Remove round trip leaves the index empty.
		ix := New()
		ix.Add(1, s)
		if len(toks) == 0 && ix.Terms() != 0 {
			t.Fatalf("tokenless text %q still indexed %d terms", s, ix.Terms())
		}
		ix.Remove(1, s)
		if ix.Terms() != 0 || ix.Docs() != 0 {
			t.Fatalf("index not empty after Add/Remove of %q: %d terms, %d docs", s, ix.Terms(), ix.Docs())
		}
	})
}
