package model

import "testing"

// FuzzDecodeWork feeds arbitrary bytes to the work decoder: it must
// never panic, and any successful decode must re-encode to something
// that decodes to an equal work.
func FuzzDecodeWork(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0, 0})
	f.Add(AppendWork(nil, &Work{
		ID: 7, Title: "Seed", Kind: KindArticle,
		Authors:  []Author{{Family: "F", Given: "G", Student: true}},
		Citation: Citation{Volume: 95, Page: 1365, Year: 1993},
		Subjects: []string{"Mining Law"},
	}))
	f.Fuzz(func(t *testing.T, p []byte) {
		w, n, err := DecodeWork(p)
		if err != nil {
			return
		}
		if n > len(p) {
			t.Fatalf("consumed %d of %d bytes", n, len(p))
		}
		re := AppendWork(nil, w)
		w2, m, err := DecodeWork(re)
		if err != nil || m != len(re) || !w2.Equal(w) {
			t.Fatalf("re-encode not stable: %v (m=%d len=%d)", err, m, len(re))
		}
	})
}
