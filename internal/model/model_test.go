package model

import (
	"math/rand"

	"strings"
	"testing"
	"testing/quick"
)

func validWork() *Work {
	return &Work{
		ID:    7,
		Title: "Unlocking the Fire",
		Kind:  KindArticle,
		Authors: []Author{
			{Family: "Lewin", Given: "Jeff L."},
			{Family: "Peng", Given: "Syd S.", Student: true},
		},
		Citation: Citation{Volume: 94, Page: 563, Year: 1992},
	}
}

func TestCitationString(t *testing.T) {
	tests := []struct {
		c    Citation
		want string
	}{
		{Citation{Volume: 95, Page: 1365, Year: 1993}, "95:1365 (1993)"},
		{Citation{Volume: 1, Page: 1, Year: 2000}, "1:1 (2000)"},
		{Citation{}, ""},
	}
	for _, tt := range tests {
		if got := tt.c.String(); got != tt.want {
			t.Errorf("Citation%+v.String() = %q, want %q", tt.c, got, tt.want)
		}
	}
}

func TestCitationValidate(t *testing.T) {
	tests := []struct {
		name string
		c    Citation
		ok   bool
	}{
		{"valid", Citation{95, 1365, 1993}, true},
		{"zero volume", Citation{0, 1, 1993}, false},
		{"negative page", Citation{1, -3, 1993}, false},
		{"ancient year", Citation{1, 1, 1500}, false},
		{"future year ok", Citation{1, 1, 2099}, true},
		{"absurd year", Citation{1, 1, 10000}, false},
	}
	for _, tt := range tests {
		err := tt.c.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestCitationCompare(t *testing.T) {
	a := Citation{94, 563, 1992}
	tests := []struct {
		b    Citation
		want int
	}{
		{Citation{94, 563, 1992}, 0},
		{Citation{95, 1, 1993}, -1},
		{Citation{93, 999, 1991}, 1},
		{Citation{94, 564, 1992}, -1},
		{Citation{94, 563, 1993}, -1},
	}
	for _, tt := range tests {
		if got := a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", a, tt.b, got, tt.want)
		}
	}
}

func TestKindRoundTrip(t *testing.T) {
	for k := Kind(0); k < kindMax; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("sonnet"); err == nil {
		t.Error("ParseKind accepted unknown kind")
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) reported valid")
	}
}

func TestAuthorDisplay(t *testing.T) {
	tests := []struct {
		a    Author
		want string
	}{
		{Author{Family: "Abdalla", Given: "Tarek F.", Student: true}, "Abdalla, Tarek F.*"},
		{Author{Family: "Tol", Particle: "Van", Given: "Joan E."}, "Van Tol, Joan E."},
		{Author{Family: "Fisher", Given: "John W.", Suffix: "II"}, "Fisher, John W., II"},
		{Author{Family: "Adler"}, "Adler"},
	}
	for _, tt := range tests {
		if got := tt.a.Display(); got != tt.want {
			t.Errorf("Display() = %q, want %q", got, tt.want)
		}
	}
}

func TestAuthorNaturalOrder(t *testing.T) {
	a := Author{Family: "Tol", Particle: "Van", Given: "Joan E.", Suffix: "Jr."}
	if got, want := a.NaturalOrder(), "Joan E. Van Tol, Jr."; got != want {
		t.Errorf("NaturalOrder() = %q, want %q", got, want)
	}
}

func TestAuthorValidate(t *testing.T) {
	if err := (Author{Given: "No Family"}).Validate(); err == nil {
		t.Error("author without family name validated")
	}
	if err := (Author{Family: "Tab\tName"}).Validate(); err == nil {
		t.Error("author with tab in name validated")
	}
	if err := (Author{Family: "Okay"}).Validate(); err != nil {
		t.Errorf("valid author rejected: %v", err)
	}
}

func TestWorkValidate(t *testing.T) {
	base := validWork()
	if err := base.Validate(); err != nil {
		t.Fatalf("valid work rejected: %v", err)
	}
	mutations := []struct {
		name string
		f    func(*Work)
	}{
		{"empty title", func(w *Work) { w.Title = "  " }},
		{"tab in title", func(w *Work) { w.Title = "a\tb" }},
		{"no authors", func(w *Work) { w.Authors = nil }},
		{"bad author", func(w *Work) { w.Authors[0].Family = "" }},
		{"bad citation", func(w *Work) { w.Citation.Volume = 0 }},
		{"bad kind", func(w *Work) { w.Kind = Kind(99) }},
	}
	for _, m := range mutations {
		w := validWork()
		m.f(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: Validate() accepted invalid work", m.name)
		}
	}
	var nilWork *Work
	if err := nilWork.Validate(); err == nil {
		t.Error("nil work validated")
	}
}

func TestWorkCloneIsDeep(t *testing.T) {
	w := validWork()
	c := w.Clone()
	if !w.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c.Authors[0].Family = "Changed"
	if w.Authors[0].Family == "Changed" {
		t.Error("mutating clone changed original authors")
	}
	if (*Work)(nil).Clone() != nil {
		t.Error("Clone of nil should be nil")
	}
}

func TestWorkEqual(t *testing.T) {
	a, b := validWork(), validWork()
	if !a.Equal(b) {
		t.Fatal("identical works unequal")
	}
	b.Authors = b.Authors[:1]
	if a.Equal(b) {
		t.Error("works with different author counts equal")
	}
	var n *Work
	if a.Equal(n) || !n.Equal(nil) {
		t.Error("nil comparison wrong")
	}
}

func TestWorkString(t *testing.T) {
	s := validWork().String()
	for _, want := range []string{"#7", "Lewin, Jeff L.", "Unlocking the Fire", "94:563 (1992)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
	if got := (*Work)(nil).String(); got != "<nil work>" {
		t.Errorf("nil String() = %q", got)
	}
}

func TestVolumeString(t *testing.T) {
	v := Volume{Publication: "Proc. VLDB", Number: 26, Year: 2000}
	if got, want := v.String(), "Proc. VLDB vol. 26 (2000)"; got != want {
		t.Errorf("Volume.String() = %q, want %q", got, want)
	}
	if got := (Volume{}).String(); got != "" {
		t.Errorf("zero Volume.String() = %q, want empty", got)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	w := validWork()
	buf := AppendWork(nil, w)
	got, n, err := DecodeWork(buf)
	if err != nil {
		t.Fatalf("DecodeWork: %v", err)
	}
	if n != len(buf) {
		t.Errorf("consumed %d of %d bytes", n, len(buf))
	}
	if !got.Equal(w) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, w)
	}
}

func TestEncodeDecodeConcatenated(t *testing.T) {
	// Two works back to back must decode with correct consumption offsets.
	a, b := validWork(), validWork()
	b.ID, b.Title = 8, "Second Work"
	buf := AppendWork(AppendWork(nil, a), b)
	first, n, err := DecodeWork(buf)
	if err != nil {
		t.Fatal(err)
	}
	second, m, err := DecodeWork(buf[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(buf) {
		t.Errorf("consumed %d+%d of %d", n, m, len(buf))
	}
	if !first.Equal(a) || !second.Equal(b) {
		t.Error("concatenated decode mismatch")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := AppendWork(nil, validWork())
	// Truncation at every prefix length must fail cleanly, never panic.
	for i := 0; i < len(good); i++ {
		if _, _, err := DecodeWork(good[:i]); err == nil {
			t.Errorf("truncated decode at %d bytes succeeded", i)
		}
	}
	// Wrong version byte.
	bad := append([]byte{99}, good[1:]...)
	if _, _, err := DecodeWork(bad); err == nil {
		t.Error("wrong version accepted")
	}
	// Absurd author count must be rejected without huge allocation.
	w := validWork()
	w.Authors = nil
	buf := AppendWork(nil, w)
	// The final uvarint is the author count (0); replace it with a huge one.
	huge := append(buf[:len(buf)-1], 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeWork(huge); err == nil {
		t.Error("absurd author count accepted")
	}
}

func TestSubjectsRoundTripAndValidation(t *testing.T) {
	w := validWork()
	w.Subjects = []string{"Mining Law", "Property"}
	if err := w.Validate(); err != nil {
		t.Fatalf("subjects rejected: %v", err)
	}
	buf := AppendWork(nil, w)
	got, n, err := DecodeWork(buf)
	if err != nil || n != len(buf) || !got.Equal(w) {
		t.Fatalf("subject round trip: %v (n=%d)", err, n)
	}
	// Clone deep-copies subjects.
	c := w.Clone()
	c.Subjects[0] = "Changed"
	if w.Subjects[0] == "Changed" {
		t.Error("Clone shares subjects slice")
	}
	// Equal notices subject differences.
	d := validWork()
	d.Subjects = []string{"Mining Law"}
	if w.Equal(d) {
		t.Error("Equal ignored subjects")
	}
	// Validation failures.
	bad := validWork()
	bad.Subjects = []string{"  "}
	if err := bad.Validate(); err == nil {
		t.Error("blank subject accepted")
	}
	bad.Subjects = []string{"a\tb"}
	if err := bad.Validate(); err == nil {
		t.Error("tab in subject accepted")
	}
}

func TestDecodeVersion1BackCompat(t *testing.T) {
	// A version-1 record is a version-2 record minus the subject section;
	// build one by stripping the trailing zero subject count.
	w := validWork()
	buf := AppendWork(nil, w)
	v1 := append([]byte(nil), buf[:len(buf)-1]...) // drop subject count (0)
	v1[0] = 1                                      // stamp old version
	got, n, err := DecodeWork(v1)
	if err != nil {
		t.Fatalf("v1 decode: %v", err)
	}
	if n != len(v1) || !got.Equal(w) {
		t.Errorf("v1 decode mismatch: n=%d got=%v", n, got)
	}
	// Future versions are rejected.
	v9 := append([]byte(nil), buf...)
	v9[0] = 9
	if _, _, err := DecodeWork(v9); err == nil {
		t.Error("future version accepted")
	}
}

// quickWork builds a structurally valid work from fuzz inputs.
func quickWork(r *rand.Rand) *Work {
	sanitize := func(s string) string {
		s = strings.Map(func(c rune) rune {
			if c == '\t' || c == '\n' || c == '\r' {
				return ' '
			}
			return c
		}, s)
		return s
	}
	randStr := func() string {
		n := r.Intn(12)
		b := make([]rune, n)
		for i := range b {
			b[i] = rune(32 + r.Intn(500)) // include multibyte runes
		}
		return sanitize(string(b))
	}
	w := &Work{
		ID:    WorkID(r.Uint64()),
		Title: "t" + randStr(),
		Kind:  Kind(r.Intn(int(kindMax))),
		Citation: Citation{
			Volume: 1 + r.Intn(200),
			Page:   1 + r.Intn(3000),
			Year:   1900 + r.Intn(150),
		},
	}
	for i := 0; i <= r.Intn(4); i++ {
		w.Authors = append(w.Authors, Author{
			Family:   "f" + randStr(),
			Given:    randStr(),
			Particle: randStr(),
			Suffix:   randStr(),
			Student:  r.Intn(2) == 0,
		})
	}
	return w
}

func TestEncodeDecodeQuick(t *testing.T) {
	f := func(seed int64) bool {
		w := quickWork(rand.New(rand.NewSource(seed)))
		buf := AppendWork(nil, w)
		got, n, err := DecodeWork(buf)
		return err == nil && n == len(buf) && got.Equal(w)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeNeverPanicsQuick(t *testing.T) {
	// Random byte soup must never panic the decoder.
	f := func(p []byte) bool {
		defer func() {
			if rec := recover(); rec != nil {
				t.Fatalf("DecodeWork panicked on %x: %v", p, rec)
			}
		}()
		w, n, err := DecodeWork(p)
		if err == nil {
			// On success, re-encoding and re-decoding must be a fixed point
			// (byte equality can differ for non-canonical varints in p).
			re := AppendWork(nil, w)
			w2, m, err2 := DecodeWork(re)
			return n <= len(p) && err2 == nil && m == len(re) && w2.Equal(w)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}
