// Package model defines the bibliographic record types shared by every
// component of the author-index engine: authors, works, citations and
// volumes. The types are plain data with validation helpers; persistence
// encodings live in encode.go.
package model

import (
	"errors"
	"fmt"
	"strings"
)

// WorkID uniquely identifies a work within one store. IDs are allocated
// monotonically by the storage layer and are never reused.
type WorkID uint64

// Kind classifies a work the way front matter traditionally does.
type Kind uint8

// Work kinds. KindArticle is the zero value and the default.
const (
	KindArticle Kind = iota
	KindStudentNote
	KindEssay
	KindBookReview
	KindComment
	KindCaseNote
	KindTribute
	kindMax // sentinel: all valid kinds are < kindMax
)

var kindNames = [...]string{
	KindArticle:     "article",
	KindStudentNote: "student-note",
	KindEssay:       "essay",
	KindBookReview:  "book-review",
	KindComment:     "comment",
	KindCaseNote:    "case-note",
	KindTribute:     "tribute",
}

// String returns the lowercase hyphenated name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < kindMax }

// ParseKind converts a kind name (as produced by Kind.String) back into a
// Kind. It returns an error for unknown names.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("model: unknown kind %q", s)
}

// Citation locates a work inside a publication run: volume, first page and
// publication year, rendered in the traditional "vol:page (year)" form.
type Citation struct {
	Volume int
	Page   int
	Year   int
}

// String renders the citation as "95:1365 (1993)". A zero citation renders
// as an empty string.
func (c Citation) String() string {
	if c == (Citation{}) {
		return ""
	}
	return fmt.Sprintf("%d:%d (%d)", c.Volume, c.Page, c.Year)
}

// Validate reports whether the citation fields are individually plausible.
func (c Citation) Validate() error {
	switch {
	case c.Volume <= 0:
		return fmt.Errorf("model: citation volume %d out of range", c.Volume)
	case c.Page <= 0:
		return fmt.Errorf("model: citation page %d out of range", c.Page)
	case c.Year < 1600 || c.Year > 9999:
		return fmt.Errorf("model: citation year %d out of range", c.Year)
	}
	return nil
}

// Compare orders citations by volume, then page, then year. It returns a
// negative, zero, or positive value in the manner of strings.Compare.
func (c Citation) Compare(o Citation) int {
	switch {
	case c.Volume != o.Volume:
		return cmpInt(c.Volume, o.Volume)
	case c.Page != o.Page:
		return cmpInt(c.Page, o.Page)
	default:
		return cmpInt(c.Year, o.Year)
	}
}

func cmpInt(a, b int) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Author is one structured author name. Names are stored decomposed so
// that collation, rendering and matching can each make their own choices.
//
// Family is required; every other field may be empty. Particle holds
// nobiliary particles ("van", "de la") that precede the family name in
// natural order but are usually ignored for primary sorting. Student marks
// student-written material, rendered as a trailing asterisk in the
// traditional format.
type Author struct {
	Family   string
	Given    string
	Particle string
	Suffix   string
	Student  bool
}

// IsZero reports whether the author has no name at all.
func (a Author) IsZero() bool {
	return a.Family == "" && a.Given == "" && a.Particle == "" && a.Suffix == ""
}

// Validate checks the structural invariants of an author record.
func (a Author) Validate() error {
	if strings.TrimSpace(a.Family) == "" {
		return errors.New("model: author family name is required")
	}
	for _, part := range [...]struct{ name, v string }{
		{"family", a.Family}, {"given", a.Given},
		{"particle", a.Particle}, {"suffix", a.Suffix},
	} {
		if strings.ContainsAny(part.v, "\t\n\r") {
			return fmt.Errorf("model: author %s name contains control characters", part.name)
		}
	}
	return nil
}

// Display renders the author in index order: "Family, Given, Suffix" with
// the particle folded back in front of the family name and a trailing
// asterisk for student material, e.g. "Van Tol, Joan E." or
// "Abdalla, Tarek F.*".
func (a Author) Display() string {
	var b strings.Builder
	if a.Particle != "" {
		b.WriteString(a.Particle)
		b.WriteByte(' ')
	}
	b.WriteString(a.Family)
	if a.Given != "" {
		b.WriteString(", ")
		b.WriteString(a.Given)
	}
	if a.Suffix != "" {
		b.WriteString(", ")
		b.WriteString(a.Suffix)
	}
	if a.Student {
		b.WriteByte('*')
	}
	return b.String()
}

// DisplayMemo memoizes Author.Display across a whole-corpus pass, where
// the same author recurs once per work and heading construction would
// otherwise dominate. A nil memo passes through to Display; engines
// attach one for the duration of a rebuild and drop it afterwards. Not
// safe for concurrent use.
type DisplayMemo map[Author]string

// Display returns a.Display(), memoized when m is non-nil.
func (m DisplayMemo) Display(a Author) string {
	if m == nil {
		return a.Display()
	}
	h, ok := m[a]
	if !ok {
		h = a.Display()
		m[a] = h
	}
	return h
}

// NaturalOrder renders the author in reading order: "Joan E. Van Tol".
func (a Author) NaturalOrder() string {
	var parts []string
	if a.Given != "" {
		parts = append(parts, a.Given)
	}
	if a.Particle != "" {
		parts = append(parts, a.Particle)
	}
	parts = append(parts, a.Family)
	s := strings.Join(parts, " ")
	if a.Suffix != "" {
		s += ", " + a.Suffix
	}
	return s
}

// Equal reports whether two authors are identical field-for-field.
func (a Author) Equal(o Author) bool { return a == o }

// Work is one indexed publication: a title, its authors, and where it
// appears. The zero Work is invalid; use Validate before storing.
type Work struct {
	ID       WorkID
	Title    string
	Kind     Kind
	Authors  []Author
	Citation Citation
	// Subjects are optional editorial classification headings; the
	// subject index files the work under each of them.
	Subjects []string
}

// Validate checks that the work can be indexed: it must have a title, at
// least one valid author, a plausible citation and a known kind.
func (w *Work) Validate() error {
	if w == nil {
		return errors.New("model: nil work")
	}
	if strings.TrimSpace(w.Title) == "" {
		return errors.New("model: work title is required")
	}
	if strings.ContainsAny(w.Title, "\t\n\r") {
		return errors.New("model: work title contains control characters")
	}
	if !w.Kind.Valid() {
		return fmt.Errorf("model: invalid kind %d", uint8(w.Kind))
	}
	if len(w.Authors) == 0 {
		return errors.New("model: work needs at least one author")
	}
	for i := range w.Authors {
		if err := w.Authors[i].Validate(); err != nil {
			return fmt.Errorf("author %d: %w", i, err)
		}
	}
	if err := w.Citation.Validate(); err != nil {
		return err
	}
	for i, s := range w.Subjects {
		if strings.TrimSpace(s) == "" {
			return fmt.Errorf("model: subject %d is empty", i)
		}
		if strings.ContainsAny(s, "\t\n\r") {
			return fmt.Errorf("model: subject %d contains control characters", i)
		}
	}
	return nil
}

// Clone returns a deep copy of the work. The authors and subjects
// slices are copied so the clone may be mutated independently.
func (w *Work) Clone() *Work {
	if w == nil {
		return nil
	}
	c := *w
	c.Authors = make([]Author, len(w.Authors))
	copy(c.Authors, w.Authors)
	if w.Subjects != nil {
		c.Subjects = make([]string, len(w.Subjects))
		copy(c.Subjects, w.Subjects)
	}
	return &c
}

// Equal reports whether two works are identical, including IDs.
func (w *Work) Equal(o *Work) bool {
	if w == nil || o == nil {
		return w == o
	}
	if w.ID != o.ID || w.Title != o.Title || w.Kind != o.Kind || w.Citation != o.Citation {
		return false
	}
	if len(w.Authors) != len(o.Authors) || len(w.Subjects) != len(o.Subjects) {
		return false
	}
	for i := range w.Authors {
		if w.Authors[i] != o.Authors[i] {
			return false
		}
	}
	for i := range w.Subjects {
		if w.Subjects[i] != o.Subjects[i] {
			return false
		}
	}
	return true
}

// String renders a one-line summary of the work for logs and errors.
func (w *Work) String() string {
	if w == nil {
		return "<nil work>"
	}
	names := make([]string, len(w.Authors))
	for i, a := range w.Authors {
		names[i] = a.Display()
	}
	return fmt.Sprintf("#%d %s — %q %s", w.ID, strings.Join(names, "; "), w.Title, w.Citation)
}

// Volume describes one bound volume of a publication run; it exists so
// renderers can emit accurate running heads.
type Volume struct {
	Publication string // e.g. "W. VA. L. REV." or "Proc. VLDB"
	Number      int
	Year        int
}

// String renders "Publication vol. N (Year)".
func (v Volume) String() string {
	if v.Publication == "" && v.Number == 0 {
		return ""
	}
	return fmt.Sprintf("%s vol. %d (%d)", v.Publication, v.Number, v.Year)
}
