package model

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary encoding of works, used by the storage layer for WAL records and
// snapshots. The format is versioned, length-prefixed and self-contained:
//
//	byte    version (currently 2)
//	uvarint ID
//	byte    kind
//	string  title
//	uvarint volume, page, year
//	uvarint author count, then per author:
//	        string family, given, particle, suffix; byte studentFlag
//	uvarint subject count, then that many strings   (version ≥ 2)
//
// where string is uvarint length followed by raw bytes. Version 1
// records (no subject section) are still decoded.

const encodeVersion = 2

// ErrBadEncoding is wrapped by all decode failures.
var ErrBadEncoding = errors.New("model: bad work encoding")

// AppendWork appends the binary encoding of w to dst and returns the
// extended slice.
func AppendWork(dst []byte, w *Work) []byte {
	dst = append(dst, encodeVersion)
	dst = binary.AppendUvarint(dst, uint64(w.ID))
	dst = append(dst, byte(w.Kind))
	dst = appendString(dst, w.Title)
	dst = binary.AppendUvarint(dst, uint64(w.Citation.Volume))
	dst = binary.AppendUvarint(dst, uint64(w.Citation.Page))
	dst = binary.AppendUvarint(dst, uint64(w.Citation.Year))
	dst = binary.AppendUvarint(dst, uint64(len(w.Authors)))
	for _, a := range w.Authors {
		dst = AppendAuthor(dst, a)
	}
	dst = binary.AppendUvarint(dst, uint64(len(w.Subjects)))
	for _, s := range w.Subjects {
		dst = appendString(dst, s)
	}
	return dst
}

// Interner deduplicates decoded strings across works, so a recovery
// pass over a whole corpus shares one allocation per distinct author
// name part or subject heading instead of one per occurrence. The zero
// value is not usable; call NewInterner. Not safe for concurrent use.
type Interner struct {
	m map[string]string
}

// NewInterner returns an empty interner.
func NewInterner() *Interner { return &Interner{m: make(map[string]string)} }

func (in *Interner) intern(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	if s, ok := in.m[string(b)]; ok { // no-copy map probe
		return s
	}
	s := string(b)
	in.m[s] = s
	return s
}

// DecodeWork decodes one work from the front of p, returning the work and
// the number of bytes consumed.
func DecodeWork(p []byte) (*Work, int, error) {
	return DecodeWorkInterned(p, nil)
}

// DecodeWorkInterned is DecodeWork with repeated-string deduplication:
// author name parts and subject headings — the fields that recur across
// a corpus — are resolved through in, so bulk recovery allocates each
// distinct string once. A nil interner decodes like DecodeWork. Titles
// are never interned (they rarely repeat).
func DecodeWorkInterned(p []byte, in *Interner) (*Work, int, error) {
	d := decoder{p: p, in: in}
	version := d.byte()
	if d.err == nil && (version < 1 || version > encodeVersion) {
		d.err = fmt.Errorf("%w: version %d", ErrBadEncoding, version)
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	var w Work
	w.ID = WorkID(d.uvarint())
	w.Kind = Kind(d.byte())
	w.Title = d.string()
	w.Citation.Volume = int(d.uvarint())
	w.Citation.Page = int(d.uvarint())
	w.Citation.Year = int(d.uvarint())
	n := d.uvarint()
	if d.err == nil && n > uint64(len(d.p)) {
		// An author costs at least 5 bytes (four empty strings plus the
		// student flag), so more authors than remaining bytes is corrupt.
		d.err = fmt.Errorf("%w: author count %d exceeds input", ErrBadEncoding, n)
	}
	if d.err == nil && n > 0 {
		w.Authors = make([]Author, 0, n)
		for i := uint64(0); i < n && d.err == nil; i++ {
			var a Author
			a.Family = d.internedString()
			a.Given = d.internedString()
			a.Particle = d.internedString()
			a.Suffix = d.internedString()
			a.Student = d.byte() != 0
			w.Authors = append(w.Authors, a)
		}
	}
	if version >= 2 {
		m := d.uvarint()
		if d.err == nil && m > uint64(len(d.p)) {
			d.err = fmt.Errorf("%w: subject count %d exceeds input", ErrBadEncoding, m)
		}
		if d.err == nil && m > 0 {
			w.Subjects = make([]string, 0, m)
			for i := uint64(0); i < m && d.err == nil; i++ {
				w.Subjects = append(w.Subjects, d.internedString())
			}
		}
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	return &w, d.off, nil
}

// AppendAuthor appends the binary encoding of a single author (the same
// per-author layout AppendWork uses) to dst.
func AppendAuthor(dst []byte, a Author) []byte {
	dst = appendString(dst, a.Family)
	dst = appendString(dst, a.Given)
	dst = appendString(dst, a.Particle)
	dst = appendString(dst, a.Suffix)
	if a.Student {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// DecodeAuthor decodes one author from the front of p, returning the
// author and the number of bytes consumed.
func DecodeAuthor(p []byte) (Author, int, error) {
	d := decoder{p: p}
	var a Author
	a.Family = d.string()
	a.Given = d.string()
	a.Particle = d.string()
	a.Suffix = d.string()
	a.Student = d.byte() != 0
	if d.err != nil {
		return Author{}, 0, d.err
	}
	return a, d.off, nil
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decoder tracks position and the first error while pulling fields off a
// byte slice; once err is set every accessor returns a zero value.
type decoder struct {
	p   []byte
	off int
	err error
	in  *Interner // nil: no string deduplication
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated %s at offset %d", ErrBadEncoding, what, d.off)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.p) {
		d.fail("byte")
		return 0
	}
	b := d.p[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.p[d.off:])
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.off += n
	return v
}

// stringBytes decodes one length-prefixed string field and returns the
// raw bytes, still aliasing the input buffer; string() and
// internedString() differ only in how they materialize them.
func (d *decoder) stringBytes() []byte {
	n := d.uvarint()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.p)-d.off) {
		d.fail("string")
		return nil
	}
	b := d.p[d.off : d.off+int(n)]
	d.off += int(n)
	return b
}

func (d *decoder) string() string {
	return string(d.stringBytes())
}

// internedString is string() resolved through the decoder's interner,
// when one is attached.
func (d *decoder) internedString() string {
	if d.in == nil {
		return d.string()
	}
	return d.in.intern(d.stringBytes())
}
