package obs

import (
	"math"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry. Values (nanoseconds) are filed into
// log-scaled buckets: every power of two is split into 2^histSubBits
// sub-buckets, so a bucket's width is at most 1/2^histSubBits of its
// lower bound — a recorded value is reproducible from its bucket to
// within 12.5% relative error, which is what makes the extracted
// p50/p95/p99/p999 trustworthy without storing samples. Values below
// 2^(histSubBits+1) get a bucket each (exact). The scheme is pure
// integer math (one bits.Len64, one shift) so Observe stays in the
// tens of nanoseconds.
const (
	histSubBits  = 3
	histSubCount = 1 << histSubBits
	// numBuckets covers every uint64: the top value 2^64-1 lands in
	// bucket (64-histSubBits-1)*histSubCount + histSubCount*2 - 1.
	numBuckets = (64-histSubBits-1)*histSubCount + 2*histSubCount
)

// bucketIndex files a non-negative value into its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	n := bits.Len64(u)
	if n <= histSubBits+1 {
		return int(u) // small values are exact
	}
	shift := uint(n - histSubBits - 1)
	return int(shift)*histSubCount + int(u>>shift)
}

// bucketUpper returns the inclusive upper bound of bucket i — the
// largest value that files into it.
func bucketUpper(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	shift := uint(i/histSubCount - 1)
	top := uint64(i%histSubCount + histSubCount)
	upper := (top << shift) + (uint64(1) << shift) - 1
	if upper > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(upper)
}

// bucketLower returns the inclusive lower bound of bucket i.
func bucketLower(i int) int64 {
	if i < 2*histSubCount {
		return int64(i)
	}
	shift := uint(i/histSubCount - 1)
	return int64(uint64(i%histSubCount+histSubCount) << shift)
}

// Histogram is a fixed-bucket latency histogram. Observations are
// nanosecond durations; negative values clamp to zero. All fields are
// atomics, so concurrent recording never blocks and a snapshot taken
// during recording is a consistent-enough view for telemetry (bucket
// counts and the total may momentarily disagree by in-flight
// observations).
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	max     atomic.Int64
	buckets [numBuckets]atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveNs(int64(d)) }

// Since records the time elapsed since start — `defer h.Since(time.Now())`
// is the idiomatic one-line instrumentation of a method.
func (h *Histogram) Since(start time.Time) { h.ObserveNs(int64(time.Since(start))) }

// ObserveNs records one value in nanoseconds.
func (h *Histogram) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.count.Add(1)
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
	for {
		old := h.max.Load()
		if ns <= old || h.max.CompareAndSwap(old, ns) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram for quantile extraction and
// exposition. The snapshot is immutable and self-consistent: quantiles
// are computed against the sum of its own bucket counts.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n > 0 {
			s.buckets = append(s.buckets, bucketCount{index: i, n: n})
			s.total += n
		}
	}
	return s
}

type bucketCount struct {
	index int
	n     int64
}

// HistogramSnapshot is a point-in-time copy of a Histogram.
type HistogramSnapshot struct {
	Count int64 // observations recorded
	Sum   int64 // total nanoseconds recorded
	Max   int64 // largest value recorded
	// buckets holds only the non-empty buckets in index order; total is
	// the sum of their counts (used as the quantile denominator so a
	// snapshot racing with writers stays self-consistent).
	buckets []bucketCount
	total   int64
}

// Quantile returns the value at quantile q in [0, 1] in nanoseconds:
// the inclusive upper bound of the bucket holding the q-th ranked
// observation, so the true sample quantile lies within the bucket's
// width (≤ 12.5%) below the returned value. Returns 0 on an empty
// snapshot; q outside [0, 1] clamps.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.total == 0 {
		return 0
	}
	switch {
	case q < 0 || math.IsNaN(q):
		q = 0
	case q > 1:
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range s.buckets {
		cum += b.n
		if cum >= rank {
			return bucketUpper(b.index)
		}
	}
	return bucketUpper(s.buckets[len(s.buckets)-1].index) // unreachable
}

// Cumulative calls fn for every non-empty bucket in ascending order
// with the bucket's inclusive upper bound (ns) and the cumulative
// observation count through it — the exact shape Prometheus histogram
// exposition wants.
func (s HistogramSnapshot) Cumulative(fn func(upperNs int64, cum int64)) {
	var cum int64
	for _, b := range s.buckets {
		cum += b.n
		fn(bucketUpper(b.index), cum)
	}
}

// Mean returns the mean observation in nanoseconds, 0 when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
