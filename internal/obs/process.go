package obs

import (
	"runtime"
	"time"
)

var processStart = time.Now()

// RegisterProcess registers Go runtime and process-level gauges on r:
// goroutine count, heap in use, cumulative GC cycles and pauses, and
// process uptime. Safe to call more than once (callbacks are replaced).
func RegisterProcess(r *Registry) {
	r.GaugeFunc("authdex_go_goroutines",
		"Number of goroutines.",
		func() float64 { return float64(runtime.NumGoroutine()) })
	r.GaugeFunc("authdex_go_heap_inuse_bytes",
		"Heap bytes in use.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.HeapInuse) })
	r.CounterFunc("authdex_go_gc_cycles_total",
		"Completed GC cycles.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.NumGC) })
	r.CounterFunc("authdex_go_gc_pause_seconds_total",
		"Cumulative GC stop-the-world pause time.",
		func() float64 { var m runtime.MemStats; runtime.ReadMemStats(&m); return float64(m.PauseTotalNs) / 1e9 })
	r.CounterFunc("authdex_process_uptime_seconds",
		"Seconds since the process started.",
		func() float64 { return time.Since(processStart).Seconds() })
}
