package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Default is the process-wide registry every layer instruments into;
// `authdex serve` exposes it at GET /debug/metrics.
var Default = NewRegistry()

// metricKind discriminates what a series holds.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindCounterFunc
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindGauge, kindGaugeFunc:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one (name, labels) instrument inside a family.
type series struct {
	labels  []string // alternating key, value
	counter *Counter
	gauge   *Gauge
	fn      func() float64 // counterFunc / gaugeFunc callback
	hist    *Histogram
}

// family groups every series sharing a metric name.
type family struct {
	name, help string
	kind       metricKind
	series     map[string]*series // keyed by label signature
}

// Registry is a concurrency-safe collection of metric families. The
// getters are get-or-create: asking twice for the same (name, labels)
// returns the same instrument, so packages can declare metrics
// independently and still share series. Asking for an existing name
// with a different metric type panics — that is a programming error.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Counter returns the counter registered under name and labels
// (alternating key, value), creating it on first use.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrCreate(kindCounter, name, help, labels)
	return s.counter
}

// Gauge returns the gauge registered under name and labels, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrCreate(kindGauge, name, help, labels)
	return s.gauge
}

// CounterFunc registers a callback sampled at exposition time as a
// counter series — how existing monotonic counters (WAL syncs, queries
// served) are promoted into metrics without restructuring their owners.
// Re-registering the same (name, labels) replaces the callback.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrCreate(kindCounterFunc, name, help, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// GaugeFunc registers a callback sampled at exposition time as a gauge
// series. Re-registering the same (name, labels) replaces the callback.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrCreate(kindGaugeFunc, name, help, labels)
	r.mu.Lock()
	s.fn = fn
	r.mu.Unlock()
}

// Histogram returns the histogram registered under name and labels,
// creating it on first use.
func (r *Registry) Histogram(name, help string, labels ...string) *Histogram {
	s := r.getOrCreate(kindHistogram, name, help, labels)
	return s.hist
}

func (r *Registry) getOrCreate(kind metricKind, name, help string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: metric %q given %d label strings, want key/value pairs", name, len(labels)))
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for i := 0; i < len(labels); i += 2 {
		if !validName(labels[i]) {
			panic(fmt.Sprintf("obs: metric %q has invalid label name %q", name, labels[i]))
		}
	}
	sig := labelSignature(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: append([]string(nil), labels...)}
		switch kind {
		case kindCounter:
			s.counter = &Counter{}
		case kindGauge:
			s.gauge = &Gauge{}
		case kindHistogram:
			s.hist = &Histogram{}
		}
		f.series[sig] = s
	}
	return s
}

// SeriesCount returns the number of sample series the registry would
// expose: one per counter/gauge series, and per histogram its non-empty
// buckets plus the +Inf bucket, _sum and _count lines.
func (r *Registry) SeriesCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, f := range r.families {
		for _, s := range f.series {
			if f.kind == kindHistogram {
				snap := s.hist.Snapshot()
				n += len(snap.buckets) + 3
			} else {
				n++
			}
		}
	}
	return n
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4), families and series in deterministic sorted
// order. Histograms emit cumulative `le` buckets (only the non-empty
// ones, plus +Inf) with nanosecond bounds converted to seconds, and
// `_sum` in seconds — the convention for *_seconds metrics.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := r.families[name]
		sigs := make([]string, 0, len(f.series))
		for sig := range f.series {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range sigs {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				writeSample(&b, f.name, "", s.labels, "", formatInt(s.counter.Value()))
			case kindGauge:
				writeSample(&b, f.name, "", s.labels, "", formatInt(s.gauge.Value()))
			case kindCounterFunc, kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				writeSample(&b, f.name, "", s.labels, "", formatFloat(v))
			case kindHistogram:
				snap := s.hist.Snapshot()
				snap.Cumulative(func(upperNs, cum int64) {
					writeSample(&b, f.name, "_bucket", s.labels,
						formatFloat(float64(upperNs)/1e9), formatInt(cum))
				})
				writeSample(&b, f.name, "_bucket", s.labels, "+Inf", formatInt(snap.total))
				writeSample(&b, f.name, "_sum", s.labels, "", formatFloat(float64(snap.Sum)/1e9))
				writeSample(&b, f.name, "_count", s.labels, "", formatInt(snap.Count))
			}
		}
	}
	r.mu.RUnlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// writeSample emits one exposition line. le, when non-empty, is
// appended as the trailing `le` label (histogram buckets).
func writeSample(b *strings.Builder, name, suffix string, labels []string, le, value string) {
	b.WriteString(name)
	b.WriteString(suffix)
	if len(labels) > 0 || le != "" {
		b.WriteByte('{')
		for i := 0; i < len(labels); i += 2 {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(labels[i+1]))
			b.WriteByte('"')
		}
		if le != "" {
			if len(labels) > 0 {
				b.WriteByte(',')
			}
			b.WriteString(`le="`)
			b.WriteString(le)
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// labelSignature builds the map key for a label set. Label order is
// part of the identity, which callers keep stable by construction.
func labelSignature(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i := 0; i < len(labels); i += 2 {
		b.WriteString(labels[i])
		b.WriteByte('=')
		b.WriteString(labels[i+1])
		b.WriteByte(',')
	}
	return b.String()
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(c >= '0' && c <= '9' && i > 0)
		if !ok {
			return false
		}
	}
	return true
}

func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
