package obs

import (
	"strings"
	"testing"
)

func TestRegistryGetOrCreate(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", "route", "/a")
	b := r.Counter("x_total", "help", "route", "/a")
	if a != b {
		t.Error("same (name, labels) returned distinct counters")
	}
	c := r.Counter("x_total", "help", "route", "/b")
	if a == c {
		t.Error("distinct labels shared a counter")
	}
	h1 := r.Histogram("y_seconds", "help")
	h2 := r.Histogram("y_seconds", "help")
	if h1 != h2 {
		t.Error("same histogram name returned distinct histograms")
	}
}

func TestRegistryTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m_total", "help")
}

func TestRegistryInvalidNamesPanic(t *testing.T) {
	r := NewRegistry()
	for _, bad := range []string{"", "0leading", "has space", "dash-ed"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", bad)
				}
			}()
			r.Counter(bad, "help")
		}()
	}
	// Odd label count panics too.
	defer func() {
		if recover() == nil {
			t.Error("odd label count did not panic")
		}
	}()
	r.Counter("fine_total", "help", "only_key")
}

// TestExpositionGolden pins the exact Prometheus text rendering:
// deterministic family and series order, HELP/TYPE comments, label
// escaping, cumulative histogram buckets in seconds with +Inf, _sum
// and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("authdex_requests_total", "Requests served.", "route", "GET /search", "code", "200").Add(5)
	r.Counter("authdex_requests_total", "Requests served.", "route", "GET /search", "code", "404").Inc()
	r.Gauge("authdex_inflight", "In-flight requests.").Set(2)
	r.GaugeFunc("authdex_works", "Stored works.", func() float64 { return 42 })
	r.Counter("authdex_odd_label_total", "Escaping check.", "q", `quo"te\back`+"\nline").Inc()

	h := r.Histogram("authdex_op_seconds", "Op latency.", "op", "search")
	// 100ns files into exact bucket... no: 100 > 15, bucket upper is
	// deterministic; three spread-out values pin three bucket lines.
	h.ObserveNs(10)      // exact bucket, upper 10ns = 1e-08s
	h.ObserveNs(1000)    // bucket [960, 1023] → le 1.023e-06
	h.ObserveNs(1000000) // bucket [983040, 1048575] → le 0.001048575

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP authdex_inflight In-flight requests.
# TYPE authdex_inflight gauge
authdex_inflight 2
# HELP authdex_odd_label_total Escaping check.
# TYPE authdex_odd_label_total counter
authdex_odd_label_total{q="quo\"te\\back\nline"} 1
# HELP authdex_op_seconds Op latency.
# TYPE authdex_op_seconds histogram
authdex_op_seconds_bucket{op="search",le="1e-08"} 1
authdex_op_seconds_bucket{op="search",le="1.023e-06"} 2
authdex_op_seconds_bucket{op="search",le="0.001048575"} 3
authdex_op_seconds_bucket{op="search",le="+Inf"} 3
authdex_op_seconds_sum{op="search"} 0.00100101
authdex_op_seconds_count{op="search"} 3
# HELP authdex_requests_total Requests served.
# TYPE authdex_requests_total counter
authdex_requests_total{route="GET /search",code="200"} 5
authdex_requests_total{route="GET /search",code="404"} 1
# HELP authdex_works Stored works.
# TYPE authdex_works gauge
authdex_works 42
`
	if got := sb.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSeriesCount(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	r.Gauge("b", "")
	h := r.Histogram("c_seconds", "")
	h.ObserveNs(5)
	h.ObserveNs(5000)
	// counter + gauge + histogram (2 non-empty buckets + Inf/_sum/_count).
	if got := r.SeriesCount(); got != 2+2+3 {
		t.Errorf("SeriesCount = %d, want 7", got)
	}
}

func TestRegisterProcess(t *testing.T) {
	r := NewRegistry()
	RegisterProcess(r)
	RegisterProcess(r) // idempotent: callbacks replaced, no panic
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"authdex_go_goroutines", "authdex_go_heap_inuse_bytes", "authdex_process_uptime_seconds"} {
		if !strings.Contains(out, want) {
			t.Errorf("process exposition lacks %s:\n%s", want, out)
		}
	}
}
