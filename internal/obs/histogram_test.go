package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"time"
)

// TestBucketBoundaries pins the bucket geometry: indexes are monotone,
// contiguous, and every value files into a bucket whose [lower, upper]
// range contains it, with upper-lower bounded by lower/8 (12.5%).
func TestBucketBoundaries(t *testing.T) {
	// Small values are exact.
	for v := int64(0); v < 2*histSubCount; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d, want %d", v, got, v)
		}
		if lo, up := bucketLower(int(v)), bucketUpper(int(v)); lo != v || up != v {
			t.Fatalf("bucket %d bounds [%d, %d], want exact", v, lo, up)
		}
	}
	// Bucket edges are contiguous: upper(i)+1 == lower(i+1).
	for i := 0; i < numBuckets-1; i++ {
		up, nextLo := bucketUpper(i), bucketLower(i+1)
		if up == math.MaxInt64 {
			continue // clamped top bucket
		}
		if up+1 != nextLo {
			t.Fatalf("bucket %d upper %d, bucket %d lower %d: not contiguous", i, up, i+1, nextLo)
		}
	}
	// Every probed value lands inside its bucket, and the bucket is
	// narrow: width ≤ lower/8 for values past the exact range.
	probe := []int64{16, 17, 100, 1023, 1024, 4095, 1e6, 123456789, 1e12, math.MaxInt64}
	for _, v := range probe {
		i := bucketIndex(v)
		lo, up := bucketLower(i), bucketUpper(i)
		if v < lo || v > up {
			t.Fatalf("value %d filed into bucket %d [%d, %d]", v, i, lo, up)
		}
		if width := up - lo + 1; up != math.MaxInt64 && width > lo/histSubCount {
			t.Errorf("bucket %d [%d, %d] width %d exceeds lower/%d", i, lo, up, width, histSubCount)
		}
	}
	// Negative observations clamp to zero.
	var h Histogram
	h.ObserveNs(-5)
	if got := h.Snapshot().Quantile(1); got != 0 {
		t.Errorf("negative observation landed at %d, want 0", got)
	}
}

// TestQuantileProperty is the property test against a sorted-sample
// reference: for random workloads, the histogram quantile must be the
// upper bound of exactly the bucket holding the reference sample
// quantile — i.e. ref ≤ hist and both in the same bucket.
func TestQuantileProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	quantiles := []float64{0, 0.5, 0.95, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5000)
		samples := make([]int64, n)
		var h Histogram
		for i := range samples {
			var v int64
			switch trial % 3 {
			case 0: // uniform microseconds
				v = rng.Int63n(1_000_000)
			case 1: // log-uniform: ns to seconds
				v = int64(math.Exp(rng.Float64() * math.Log(1e9)))
			default: // heavy-tailed
				v = int64(rng.ExpFloat64() * 50_000)
			}
			samples[i] = v
			h.ObserveNs(v)
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		snap := h.Snapshot()
		for _, q := range quantiles {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			ref := samples[rank-1]
			got := snap.Quantile(q)
			if got < ref {
				t.Fatalf("trial %d n=%d q=%g: hist %d below reference %d", trial, n, q, got, ref)
			}
			if bucketIndex(got) != bucketIndex(ref) {
				t.Fatalf("trial %d n=%d q=%g: hist %d (bucket %d) and reference %d (bucket %d) disagree",
					trial, n, q, got, bucketIndex(got), ref, bucketIndex(ref))
			}
		}
	}
}

func TestHistogramEmptyAndCountSum(t *testing.T) {
	var h Histogram
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty quantile = %d", got)
	}
	h.ObserveNs(100)
	h.ObserveNs(300)
	h.Observe(600 * time.Nanosecond)
	snap := h.Snapshot()
	if snap.Count != 3 || snap.Sum != 1000 || snap.Max != 600 {
		t.Errorf("snapshot = count %d sum %d max %d", snap.Count, snap.Sum, snap.Max)
	}
	if m := snap.Mean(); m < 333 || m > 334 {
		t.Errorf("mean = %g", m)
	}
	// NaN and out-of-range quantiles clamp instead of panicking.
	if v := snap.Quantile(math.NaN()); v == 0 {
		t.Error("NaN quantile returned 0 on a populated histogram")
	}
	if lo, hi := snap.Quantile(-1), snap.Quantile(2); lo == 0 || hi < lo {
		t.Errorf("clamped quantiles = %d, %d", lo, hi)
	}
}

// TestConcurrentRecording hammers one histogram and the counters from
// many goroutines; run under -race this is the data-race proof, and the
// final counts must balance exactly.
func TestConcurrentRecording(t *testing.T) {
	const goroutines, perG = 8, 5000
	var h Histogram
	var c Counter
	var g Gauge
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for j := 0; j < perG; j++ {
				h.ObserveNs(rng.Int63n(1_000_000))
				c.Inc()
				g.Inc()
				g.Dec()
			}
		}(int64(i))
	}
	wg.Wait()
	if h.Count() != goroutines*perG {
		t.Errorf("histogram count = %d, want %d", h.Count(), goroutines*perG)
	}
	snap := h.Snapshot()
	if snap.total != goroutines*perG {
		t.Errorf("bucket total = %d, want %d", snap.total, goroutines*perG)
	}
	if c.Value() != goroutines*perG {
		t.Errorf("counter = %d", c.Value())
	}
	if g.Value() != 0 {
		t.Errorf("gauge = %d, want 0", g.Value())
	}
}

// TestConcurrentRegistry exercises get-or-create and exposition racing
// with recording.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				r.Counter("test_shared_total", "shared").Inc()
				r.Histogram("test_shared_seconds", "shared", "op", "x").ObserveNs(int64(j))
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for j := 0; j < 50; j++ {
			var sink discard
			if err := r.WritePrometheus(&sink); err != nil {
				t.Errorf("WritePrometheus: %v", err)
			}
		}
	}()
	wg.Wait()
	if got := r.Counter("test_shared_total", "shared").Value(); got != 2000 {
		t.Errorf("shared counter = %d, want 2000", got)
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }

// BenchmarkHistogramObserve is the acceptance benchmark: recording one
// observation must stay under 100ns.
func BenchmarkHistogramObserve(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.ObserveNs(int64(i) * 37)
	}
}

// BenchmarkHistogramObserveParallel measures the contended path every
// HTTP request shares.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i += 37
			h.ObserveNs(i)
		}
	})
}

// BenchmarkTimedSection measures the full `defer h.Since(time.Now())`
// pattern the facade uses — two clock reads plus the observation.
func BenchmarkTimedSection(b *testing.B) {
	var h Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Since(time.Now())
	}
}
