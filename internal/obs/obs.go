// Package obs is the zero-dependency telemetry layer under the
// author-index engine: atomic counters and gauges, lock-cheap
// fixed-bucket latency histograms with log-scaled buckets and quantile
// extraction, a process-wide default registry, and Prometheus
// text-format exposition.
//
// Every instrument is safe for concurrent use and built from atomics on
// the hot path — recording a histogram observation costs a handful of
// uncontended atomic adds (see BenchmarkHistogramObserve), so layers as
// hot as the WAL fsync path and the facade read path can record every
// operation unconditionally.
//
// Instruments are created through a Registry, which deduplicates by
// (name, labels) so independently initialized packages can share
// series, and renders everything it holds in Prometheus text format:
//
//	reqs := obs.Default.Counter("authdex_http_requests_total",
//		"HTTP requests served.", "route", "GET /search", "code", "200")
//	reqs.Inc()
//	lat := obs.Default.Histogram("authdex_op_duration_seconds",
//		"Facade operation latency.", "op", "search")
//	defer lat.Since(time.Now())
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing int64. The zero value is ready
// to use, but counters almost always come from Registry.Counter so they
// are exposed.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Negative n is ignored: counters only go up.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous int64 value that can go up and down (queue
// depths, in-flight requests). The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Timer returns a func that records the elapsed time since the call
// into h — `defer obs.Timer(h)()` times a whole function body.
func Timer(h *Histogram) func() {
	start := time.Now()
	return func() { h.Observe(time.Since(start)) }
}
