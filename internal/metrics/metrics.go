// Package metrics maintains per-author bibliometric statistics over the
// indexed corpus: work counts by kind and year, fractional and
// position-weighted authorship credit (Abbas-style counting schemes),
// an h-index-style productivity score over per-year output, and
// co-author collaboration degree.
//
// The engine is incremental: Add and Remove update every statistic in
// O(authors-per-work) time with no dependence on corpus size, and a
// Remove exactly inverts the matching Add, so an incrementally
// maintained engine is indistinguishable from one rebuilt from scratch.
// Credit is accumulated in integer millionths of a work so that the
// guarantee holds bit-for-bit: integer addition is order-independent,
// where floating-point accumulation would drift with mutation order.
//
// The package consumes the corpus rather than building an index of it;
// the query engine owns a Tracker and feeds it every mutation.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/model"
)

// Scheme selects how one work's unit of credit is divided among its
// authors. Every scheme gives earlier positions at least as much weight
// as later ones and (up to integer rounding) sums to one per work.
type Scheme uint8

// Counting schemes, in the order of how steeply they favor the first
// author. Harmonic is the default and the scheme the bibliometrics
// literature most often recommends for position-weighted credit.
const (
	// Harmonic weights position i by 1/i, normalized: w_i = (1/i)/H(k).
	Harmonic Scheme = iota
	// Arithmetic (proportional) weights position i by k+1-i, normalized.
	Arithmetic
	// Geometric halves the weight at each position: w_i ∝ 2^(-i).
	Geometric
	// Fractional splits credit evenly: w_i = 1/k for all positions.
	Fractional
)

var schemeNames = [...]string{
	Harmonic:   "harmonic",
	Arithmetic: "arithmetic",
	Geometric:  "geometric",
	Fractional: "fractional",
}

// String names the scheme.
func (s Scheme) String() string {
	if int(s) < len(schemeNames) {
		return schemeNames[s]
	}
	return fmt.Sprintf("scheme(%d)", uint8(s))
}

// Valid reports whether s is a defined scheme.
func (s Scheme) Valid() bool { return int(s) < len(schemeNames) }

// ParseScheme converts a scheme name back into a Scheme.
func ParseScheme(name string) (Scheme, error) {
	for i, n := range schemeNames {
		if n == strings.ToLower(name) {
			return Scheme(i), nil
		}
	}
	return 0, fmt.Errorf("metrics: unknown scheme %q", name)
}

// RankKey selects the statistic TopAuthors orders by.
type RankKey uint8

// Ranking keys.
const (
	ByWorks RankKey = iota
	ByWeighted
	ByFractional
	ByHIndex
	ByCollaborators
	ByFirstAuthored
	// ByCentrality ranks by coauthorship-network PageRank. The score
	// lives in the graph engine, not this tracker, so the query layer
	// resolves this key against its graph; a bare metrics Engine falls
	// back to ByWorks ordering for it.
	ByCentrality
)

var rankNames = [...]string{
	ByWorks:         "works",
	ByWeighted:      "weighted",
	ByFractional:    "fractional",
	ByHIndex:        "h",
	ByCollaborators: "collabs",
	ByFirstAuthored: "first",
	ByCentrality:    "central",
}

// String names the rank key.
func (k RankKey) String() string {
	if int(k) < len(rankNames) {
		return rankNames[k]
	}
	return fmt.Sprintf("rankkey(%d)", uint8(k))
}

// ParseRankKey converts a rank-key name ("works", "weighted",
// "fractional", "h", "collabs", "first", "central") into a RankKey.
func ParseRankKey(name string) (RankKey, error) {
	switch strings.ToLower(name) {
	case "collaborators":
		return ByCollaborators, nil
	case "h-index", "hindex":
		return ByHIndex, nil
	case "centrality", "pagerank":
		return ByCentrality, nil
	}
	for i, n := range rankNames {
		if n == strings.ToLower(name) {
			return RankKey(i), nil
		}
	}
	return 0, fmt.Errorf("metrics: unknown rank key %q", name)
}

// Collaborator pairs a co-author heading with the number of shared works.
type Collaborator struct {
	Heading string `json:"heading"`
	Works   int    `json:"works"`
}

// AuthorMetrics is the full statistics snapshot for one heading. Credit
// values are in units of whole works (a solo article is worth 1.0).
type AuthorMetrics struct {
	Heading string `json:"heading"`
	// Works counts distinct works filed under the heading.
	Works int `json:"works"`
	// FirstAuthored counts works where this heading is listed first.
	FirstAuthored int `json:"firstAuthored"`
	// ByKind counts works per kind name.
	ByKind map[string]int `json:"byKind,omitempty"`
	// ByYear counts works per publication year; works with a zero or
	// negative (unknown) year are counted in Works but not here.
	ByYear map[int]int `json:"byYear,omitempty"`
	// Fractional is uniform 1/k credit summed over the author's works.
	Fractional float64 `json:"fractional"`
	// Weighted is position-weighted credit under the engine's Scheme.
	Weighted float64 `json:"weighted"`
	// HIndex is the productivity h-index over per-year output: the
	// largest h such that the author has h years with ≥ h works each.
	HIndex int `json:"hIndex"`
	// Collaborators counts distinct co-author headings.
	Collaborators int `json:"collaborators"`
	// TopCollaborators lists the most frequent co-authors, best first.
	TopCollaborators []Collaborator `json:"topCollaborators,omitempty"`
}

// Summary aggregates corpus-level collaboration statistics.
type Summary struct {
	Scheme   string `json:"scheme"`
	Authors  int    `json:"authors"`
	Works    int    `json:"works"`
	Postings int    `json:"postings"` // distinct author–work pairs
	// SoloWorks counts works with exactly one distinct heading.
	SoloWorks int `json:"soloWorks"`
	// Pairs counts distinct collaborating heading pairs.
	Pairs int `json:"pairs"`
	// MeanAuthorsPerWork is Postings / Works.
	MeanAuthorsPerWork float64 `json:"meanAuthorsPerWork"`
}

// Tracker is the interface the query engine programs against, so later
// work (caching, sharding) can swap the implementation.
type Tracker interface {
	// Add folds one work into every statistic. Adding an ID that is
	// already tracked is a no-op; replace by Remove then Add.
	Add(w *model.Work)
	// Remove exactly inverts the Add of the same work.
	Remove(w *model.Work)
	// Rebuild resets the tracker and re-adds the given corpus — the
	// recovery path when incremental state is suspect.
	Rebuild(works []*model.Work)
	// Author returns the snapshot for one heading in Display form.
	Author(heading string) (AuthorMetrics, bool)
	// TopAuthors returns up to limit snapshots ordered by the rank key
	// descending (ties broken by heading ascending). limit <= 0: all.
	TopAuthors(by RankKey, limit int) []AuthorMetrics
	// Summary returns corpus-level aggregates.
	Summary() Summary
	// Len returns the number of tracked headings.
	Len() int
	// Weighting returns the position-weighting scheme in effect.
	Weighting() Scheme
}

// topCollaborators caps the per-author co-author list in snapshots.
const topCollaborators = 5

// microUnit is the integer credit resolution: one work = 1e6 micro.
const microUnit = 1_000_000

// authorStats is the live per-heading state. Counters only — snapshots
// are materialized on read.
type authorStats struct {
	author    model.Author
	works     int
	first     int
	byKind    map[model.Kind]int
	byYear    map[int]int
	fracMicro int64
	wgtMicro  int64
	coauthors map[string]int // heading -> shared works
}

// Engine is the incremental Tracker implementation.
type Engine struct {
	scheme   Scheme
	authors  map[string]*authorStats // keyed by Author.Display()
	tracked  map[model.WorkID]struct{}
	postings int
	solo     int
	// display memoizes heading construction during Rebuild; nil (a
	// plain Display pass-through) outside it.
	display model.DisplayMemo
	// dscratch is the reusable deltas buffer for the single-author fast
	// path. Mutations are serialized by the owning layer and no caller
	// retains the slice past its call, so one buffer suffices.
	dscratch [1]delta
}

// heading returns a.Display(), memoized while a Rebuild is running.
func (e *Engine) heading(a model.Author) string { return e.display.Display(a) }

// NewEngine returns an empty tracker using the given counting scheme.
// An invalid scheme falls back to Harmonic rather than silently zeroing
// every weight; callers that want an error should check Scheme.Valid.
func NewEngine(scheme Scheme) *Engine {
	if !scheme.Valid() {
		scheme = Harmonic
	}
	return &Engine{
		scheme:  scheme,
		authors: make(map[string]*authorStats),
		tracked: make(map[model.WorkID]struct{}),
	}
}

// Weighting returns the scheme the engine divides credit with.
func (e *Engine) Weighting() Scheme { return e.scheme }

// Len returns the number of tracked headings.
func (e *Engine) Len() int { return len(e.authors) }

// delta is the per-(work, heading) contribution, computed identically
// by Add and Remove so removal inverts addition exactly.
type delta struct {
	author    model.Author
	first     bool
	fracMicro int64
	wgtMicro  int64
}

// deltas returns one entry per distinct heading on w, in first-position
// order. A heading listed at several positions earns the credit of each
// position but counts as one work. Solo works — the bulk of any
// bibliography — take an allocation-free fast path over a reusable
// buffer; callers never retain the slice past their call.
func (e *Engine) deltas(w *model.Work) []delta {
	k := len(w.Authors)
	if k == 1 {
		e.dscratch[0] = delta{
			author:    w.Authors[0],
			first:     true,
			fracMicro: microUnit,
			wgtMicro:  positionMicro(e.scheme, 1, 1),
		}
		return e.dscratch[:]
	}
	index := make(map[string]int, k)
	out := make([]delta, 0, k)
	for i, a := range w.Authors {
		h := e.heading(a)
		j, ok := index[h]
		if !ok {
			j = len(out)
			index[h] = j
			out = append(out, delta{author: a, first: i == 0})
		}
		out[j].fracMicro += microUnit / int64(k)
		out[j].wgtMicro += positionMicro(e.scheme, i+1, k)
	}
	return out
}

// positionMicro returns the credit, in micro-works, that position i
// (1-based) of k earns under scheme s. Deterministic in (s, i, k), so
// adds and removes of the same work always agree.
func positionMicro(s Scheme, i, k int) int64 {
	var w float64
	switch s {
	case Fractional:
		return microUnit / int64(k)
	case Harmonic:
		var h float64
		for j := 1; j <= k; j++ {
			h += 1 / float64(j)
		}
		w = (1 / float64(i)) / h
	case Arithmetic:
		w = float64(2*(k+1-i)) / float64(k*(k+1))
	case Geometric:
		// w_i = 2^(k-i)/(2^k - 1), written overflow-safe.
		w = math.Pow(0.5, float64(i)) / (1 - math.Pow(0.5, float64(k)))
	}
	return int64(math.Round(w * microUnit))
}

// Add folds w into every statistic in O(len(w.Authors)²) time (the
// quadratic term is the co-author matrix; author lists are short).
func (e *Engine) Add(w *model.Work) {
	if w == nil || len(w.Authors) == 0 {
		return
	}
	if _, dup := e.tracked[w.ID]; dup {
		return
	}
	e.tracked[w.ID] = struct{}{}
	ds := e.deltas(w)
	for _, d := range ds {
		h := e.heading(d.author)
		st, ok := e.authors[h]
		if !ok {
			st = &authorStats{
				author:    d.author,
				byKind:    make(map[model.Kind]int),
				byYear:    make(map[int]int),
				coauthors: make(map[string]int),
			}
			e.authors[h] = st
		}
		st.works++
		if d.first {
			st.first++
		}
		st.byKind[w.Kind]++
		if w.Citation.Year > 0 {
			st.byYear[w.Citation.Year]++
		}
		st.fracMicro += d.fracMicro
		st.wgtMicro += d.wgtMicro
		e.postings++
	}
	if len(ds) == 1 {
		e.solo++
	}
	for i := range ds {
		hi := e.heading(ds[i].author)
		for j := range ds {
			if i != j {
				e.authors[hi].coauthors[e.heading(ds[j].author)]++
			}
		}
	}
}

// Remove inverts the Add of the same work. Removing an untracked ID is
// a no-op.
func (e *Engine) Remove(w *model.Work) {
	if w == nil || len(w.Authors) == 0 {
		return
	}
	if _, ok := e.tracked[w.ID]; !ok {
		return
	}
	delete(e.tracked, w.ID)
	ds := e.deltas(w)
	for i := range ds {
		hi := ds[i].author.Display()
		st := e.authors[hi]
		if st == nil {
			continue
		}
		for j := range ds {
			if i == j {
				continue
			}
			hj := ds[j].author.Display()
			if st.coauthors[hj]--; st.coauthors[hj] <= 0 {
				delete(st.coauthors, hj)
			}
		}
	}
	for _, d := range ds {
		h := d.author.Display()
		st := e.authors[h]
		if st == nil {
			continue
		}
		st.works--
		if d.first {
			st.first--
		}
		if st.byKind[w.Kind]--; st.byKind[w.Kind] <= 0 {
			delete(st.byKind, w.Kind)
		}
		if y := w.Citation.Year; y > 0 {
			if st.byYear[y]--; st.byYear[y] <= 0 {
				delete(st.byYear, y)
			}
		}
		st.fracMicro -= d.fracMicro
		st.wgtMicro -= d.wgtMicro
		e.postings--
		if st.works <= 0 {
			delete(e.authors, h)
		}
	}
	if len(ds) == 1 {
		e.solo--
	}
}

// Rebuild resets the engine and re-adds the corpus in one pass, with
// heading construction memoized across the whole corpus.
func (e *Engine) Rebuild(works []*model.Work) {
	// Presize for the common author-to-work ratio so a cold rebuild does
	// not pay map growth rehashes all the way up.
	e.authors = make(map[string]*authorStats, max(len(e.authors), len(works)/3))
	e.tracked = make(map[model.WorkID]struct{}, len(works))
	e.postings, e.solo = 0, 0
	e.display = make(model.DisplayMemo)
	defer func() { e.display = nil }()
	for _, w := range works {
		e.Add(w)
	}
}

// Author returns the snapshot for one heading in Display form.
func (e *Engine) Author(heading string) (AuthorMetrics, bool) {
	st, ok := e.authors[heading]
	if !ok {
		return AuthorMetrics{}, false
	}
	return e.snapshot(heading, st), true
}

// snapshot materializes one AuthorMetrics from live counters.
func (e *Engine) snapshot(heading string, st *authorStats) AuthorMetrics {
	m := AuthorMetrics{
		Heading:       heading,
		Works:         st.works,
		FirstAuthored: st.first,
		Fractional:    float64(st.fracMicro) / microUnit,
		Weighted:      float64(st.wgtMicro) / microUnit,
		HIndex:        hIndex(st.byYear),
		Collaborators: len(st.coauthors),
	}
	if len(st.byKind) > 0 {
		m.ByKind = make(map[string]int, len(st.byKind))
		for k, n := range st.byKind {
			m.ByKind[k.String()] = n
		}
	}
	if len(st.byYear) > 0 {
		m.ByYear = make(map[int]int, len(st.byYear))
		for y, n := range st.byYear {
			m.ByYear[y] = n
		}
	}
	if len(st.coauthors) > 0 {
		cs := make([]Collaborator, 0, len(st.coauthors))
		for h, n := range st.coauthors {
			cs = append(cs, Collaborator{Heading: h, Works: n})
		}
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].Works != cs[j].Works {
				return cs[i].Works > cs[j].Works
			}
			return cs[i].Heading < cs[j].Heading
		})
		if len(cs) > topCollaborators {
			cs = cs[:topCollaborators]
		}
		m.TopCollaborators = cs
	}
	return m
}

// hIndex computes the productivity h-index over per-year counts: the
// largest h such that h years have at least h works each.
func hIndex(byYear map[int]int) int {
	counts := make([]int, 0, len(byYear))
	for _, n := range byYear {
		counts = append(counts, n)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	h := 0
	for i, n := range counts {
		if n < i+1 {
			break
		}
		h = i + 1
	}
	return h
}

// rankValue returns the sort key for one heading under a rank key. All
// keys compare descending; raw integer counters avoid materializing
// snapshots for headings that will not make the cut.
func rankValue(by RankKey, st *authorStats) int64 {
	switch by {
	case ByWeighted:
		return st.wgtMicro
	case ByFractional:
		return st.fracMicro
	case ByHIndex:
		return int64(hIndex(st.byYear))
	case ByCollaborators:
		return int64(len(st.coauthors))
	case ByFirstAuthored:
		return int64(st.first)
	default:
		return int64(st.works)
	}
}

// TopAuthors returns up to limit snapshots ordered by the rank key
// descending, ties broken by heading ascending. limit <= 0 means all.
func (e *Engine) TopAuthors(by RankKey, limit int) []AuthorMetrics {
	type ranked struct {
		heading string
		st      *authorStats
		value   int64
	}
	rs := make([]ranked, 0, len(e.authors))
	for h, st := range e.authors {
		rs = append(rs, ranked{heading: h, st: st, value: rankValue(by, st)})
	}
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].value != rs[j].value {
			return rs[i].value > rs[j].value
		}
		return rs[i].heading < rs[j].heading
	})
	if limit > 0 && len(rs) > limit {
		rs = rs[:limit]
	}
	out := make([]AuthorMetrics, len(rs))
	for i, r := range rs {
		out[i] = e.snapshot(r.heading, r.st)
	}
	return out
}

// Summary returns corpus-level aggregates. Pair counting walks the
// co-author maps (O(authors)); everything else is pre-maintained.
func (e *Engine) Summary() Summary {
	s := Summary{
		Scheme:    e.scheme.String(),
		Authors:   len(e.authors),
		Works:     len(e.tracked),
		Postings:  e.postings,
		SoloWorks: e.solo,
	}
	edges := 0
	for _, st := range e.authors {
		edges += len(st.coauthors)
	}
	s.Pairs = edges / 2
	if s.Works > 0 {
		s.MeanAuthorsPerWork = float64(s.Postings) / float64(s.Works)
	}
	return s
}
