package metrics

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"repro/internal/gen"
	"repro/internal/model"
)

func work(id model.WorkID, year int, headings ...string) *model.Work {
	w := &model.Work{
		ID:       id,
		Title:    "T",
		Citation: model.Citation{Volume: 1, Page: int(id), Year: year},
	}
	for _, h := range headings {
		w.Authors = append(w.Authors, model.Author{Family: h})
	}
	return w
}

func TestSchemeAndRankKeyRoundTrip(t *testing.T) {
	for _, s := range []Scheme{Harmonic, Arithmetic, Geometric, Fractional} {
		got, err := ParseScheme(s.String())
		if err != nil || got != s {
			t.Errorf("ParseScheme(%q) = %v, %v", s.String(), got, err)
		}
	}
	if _, err := ParseScheme("nope"); err == nil {
		t.Error("ParseScheme accepted unknown name")
	}
	for _, k := range []RankKey{ByWorks, ByWeighted, ByFractional, ByHIndex, ByCollaborators, ByFirstAuthored} {
		got, err := ParseRankKey(k.String())
		if err != nil || got != k {
			t.Errorf("ParseRankKey(%q) = %v, %v", k.String(), got, err)
		}
	}
	for name, want := range map[string]RankKey{"collaborators": ByCollaborators, "h-index": ByHIndex, "WEIGHTED": ByWeighted} {
		if got, err := ParseRankKey(name); err != nil || got != want {
			t.Errorf("ParseRankKey(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseRankKey("nope"); err == nil {
		t.Error("ParseRankKey accepted unknown name")
	}
}

// TestPositionWeights checks each scheme's weight table on small author
// lists: first position dominates, weights are non-increasing, and a
// work's total credit is one (within integer rounding).
func TestPositionWeights(t *testing.T) {
	for _, s := range []Scheme{Harmonic, Arithmetic, Geometric, Fractional} {
		for k := 1; k <= 12; k++ {
			var sum int64
			prev := int64(math.MaxInt64)
			for i := 1; i <= k; i++ {
				w := positionMicro(s, i, k)
				if w <= 0 {
					t.Fatalf("%v: w(%d of %d) = %d, want > 0", s, i, k, w)
				}
				if w > prev {
					t.Fatalf("%v: w(%d of %d) = %d increased from %d", s, i, k, w, prev)
				}
				prev = w
				sum += w
			}
			// Integer division/rounding loses at most k micro per work.
			if diff := microUnit - sum; diff < -int64(k) || diff > int64(k) {
				t.Errorf("%v k=%d: weights sum to %d micro, want ≈ %d", s, k, sum, microUnit)
			}
			if k > 1 && s != Fractional {
				if first, last := positionMicro(s, 1, k), positionMicro(s, k, k); first <= last {
					t.Errorf("%v k=%d: first weight %d not > last %d", s, k, first, last)
				}
			}
		}
	}
}

// TestAuthorMetricsTable drives the weighting edge cases the subsystem
// must define: single-author works, long author lists, unknown years,
// and a heading repeated on one work.
func TestAuthorMetricsTable(t *testing.T) {
	manyAuthors := make([]string, 12)
	for i := range manyAuthors {
		manyAuthors[i] = string(rune('A' + i))
	}
	tests := []struct {
		name  string
		works []*model.Work
		check func(t *testing.T, e *Engine)
	}{
		{
			name:  "single author keeps whole credit",
			works: []*model.Work{work(1, 1990, "Solo")},
			check: func(t *testing.T, e *Engine) {
				m, ok := e.Author("Solo")
				if !ok {
					t.Fatal("Solo not tracked")
				}
				if m.Works != 1 || m.FirstAuthored != 1 || m.Collaborators != 0 {
					t.Errorf("metrics = %+v", m)
				}
				if m.Weighted != 1 || m.Fractional != 1 {
					t.Errorf("credit = %v / %v, want 1 / 1", m.Weighted, m.Fractional)
				}
				if m.HIndex != 1 {
					t.Errorf("h = %d, want 1", m.HIndex)
				}
			},
		},
		{
			name:  "more than ten authors",
			works: []*model.Work{work(1, 1990, manyAuthors...)},
			check: func(t *testing.T, e *Engine) {
				first, _ := e.Author("A")
				last, _ := e.Author("L")
				if first.Weighted <= last.Weighted {
					t.Errorf("first credit %v not > last %v", first.Weighted, last.Weighted)
				}
				if first.Collaborators != 11 || last.Collaborators != 11 {
					t.Errorf("collaborators = %d / %d, want 11", first.Collaborators, last.Collaborators)
				}
				if got := len(first.TopCollaborators); got != topCollaborators {
					t.Errorf("top collaborators = %d, want %d", got, topCollaborators)
				}
				var total float64
				for _, h := range manyAuthors {
					m, _ := e.Author(h)
					total += m.Weighted
					if m.Fractional != 1.0/12 {
						// 1e6/12 micro exactly, truncated.
						if math.Abs(m.Fractional-1.0/12) > 1e-5 {
							t.Errorf("%s fractional = %v", h, m.Fractional)
						}
					}
				}
				if math.Abs(total-1) > 1e-4 {
					t.Errorf("total weighted credit = %v, want ≈ 1", total)
				}
			},
		},
		{
			name:  "zero year counts the work but not the year",
			works: []*model.Work{work(1, 0, "NoYear"), work(2, 1990, "NoYear")},
			check: func(t *testing.T, e *Engine) {
				m, _ := e.Author("NoYear")
				if m.Works != 2 {
					t.Errorf("works = %d, want 2", m.Works)
				}
				if len(m.ByYear) != 1 || m.ByYear[1990] != 1 {
					t.Errorf("byYear = %v, want {1990: 1}", m.ByYear)
				}
				if m.HIndex != 1 {
					t.Errorf("h = %d, want 1 (unknown year excluded)", m.HIndex)
				}
			},
		},
		{
			name:  "author listed twice on one work",
			works: []*model.Work{work(1, 1990, "Twice", "Other", "Twice")},
			check: func(t *testing.T, e *Engine) {
				m, _ := e.Author("Twice")
				if m.Works != 1 {
					t.Errorf("works = %d, want 1 (one distinct work)", m.Works)
				}
				if m.Collaborators != 1 || m.TopCollaborators[0].Heading != "Other" {
					t.Errorf("collaborators = %+v (self-collaboration?)", m.TopCollaborators)
				}
				// Positions 1 and 3 of 3 both pay out to the heading.
				want := float64(positionMicro(Harmonic, 1, 3)+positionMicro(Harmonic, 3, 3)) / microUnit
				if m.Weighted != want {
					t.Errorf("weighted = %v, want %v", m.Weighted, want)
				}
				o, _ := e.Author("Other")
				if o.Collaborators != 1 {
					t.Errorf("Other collaborators = %d, want 1", o.Collaborators)
				}
			},
		},
		{
			name: "h index needs repeated productive years",
			works: []*model.Work{
				work(1, 1990, "H"), work(2, 1990, "H"), work(3, 1990, "H"),
				work(4, 1991, "H"), work(5, 1991, "H"),
				work(6, 1992, "H"),
			},
			check: func(t *testing.T, e *Engine) {
				m, _ := e.Author("H")
				// Year counts 3,2,1 → h = 2.
				if m.HIndex != 2 {
					t.Errorf("h = %d, want 2", m.HIndex)
				}
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			e := NewEngine(Harmonic)
			for _, w := range tc.works {
				e.Add(w)
			}
			tc.check(t, e)
		})
	}
}

// TestIncrementalMatchesRebuild is the core invariant: N adds followed
// by M removes yields byte-identical snapshots to a fresh Rebuild over
// the surviving works, for every scheme.
func TestIncrementalMatchesRebuild(t *testing.T) {
	works := gen.Generate(gen.Config{Seed: 7, Works: 400, ZipfS: 1.2})
	for _, s := range []Scheme{Harmonic, Arithmetic, Geometric, Fractional} {
		t.Run(s.String(), func(t *testing.T) {
			inc := NewEngine(s)
			for _, w := range works {
				inc.Add(w)
			}
			// Remove every third work.
			var kept []*model.Work
			for i, w := range works {
				if i%3 == 0 {
					inc.Remove(w)
				} else {
					kept = append(kept, w)
				}
			}
			fresh := NewEngine(s)
			fresh.Rebuild(kept)

			a := inc.TopAuthors(ByWeighted, 0)
			b := fresh.TopAuthors(ByWeighted, 0)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("incremental and rebuilt snapshots differ (%d vs %d authors)", len(a), len(b))
			}
			aj, _ := json.Marshal(a)
			bj, _ := json.Marshal(b)
			if string(aj) != string(bj) {
				t.Fatal("incremental and rebuilt snapshots not byte-identical")
			}
			if !reflect.DeepEqual(inc.Summary(), fresh.Summary()) {
				t.Fatalf("summaries differ: %+v vs %+v", inc.Summary(), fresh.Summary())
			}
		})
	}
}

func TestRemoveAllLeavesEmptyEngine(t *testing.T) {
	e := NewEngine(Harmonic)
	ws := []*model.Work{
		work(1, 1990, "A", "B"),
		work(2, 1991, "B", "C"),
	}
	for _, w := range ws {
		e.Add(w)
	}
	for _, w := range ws {
		e.Remove(w)
	}
	if e.Len() != 0 {
		t.Errorf("engine holds %d authors after removing everything", e.Len())
	}
	s := e.Summary()
	if s.Works != 0 || s.Postings != 0 || s.SoloWorks != 0 || s.Pairs != 0 {
		t.Errorf("summary = %+v, want zeros", s)
	}
}

func TestAddRemoveIdempotence(t *testing.T) {
	e := NewEngine(Harmonic)
	w := work(1, 1990, "A")
	e.Add(w)
	e.Add(w) // duplicate ID: no-op
	if m, _ := e.Author("A"); m.Works != 1 {
		t.Errorf("works = %d after double add", m.Works)
	}
	e.Remove(w)
	e.Remove(w) // already gone: no-op
	if e.Len() != 0 {
		t.Errorf("%d authors after double remove", e.Len())
	}
	e.Add(nil)
	e.Remove(nil)
}

func TestTopAuthorsOrderingAndLimit(t *testing.T) {
	e := NewEngine(Harmonic)
	e.Add(work(1, 1990, "Busy"))
	e.Add(work(2, 1991, "Busy"))
	e.Add(work(3, 1990, "Mid", "Busy"))
	e.Add(work(4, 1992, "Solo"))
	top := e.TopAuthors(ByWorks, 2)
	if len(top) != 2 || top[0].Heading != "Busy" || top[0].Works != 3 {
		t.Fatalf("top = %+v", top)
	}
	// Ties (Mid and Solo both have 1 work) break by heading.
	all := e.TopAuthors(ByWorks, 0)
	if len(all) != 3 || all[1].Heading != "Mid" || all[2].Heading != "Solo" {
		t.Fatalf("all = %+v", all)
	}
	byC := e.TopAuthors(ByCollaborators, 1)
	if byC[0].Collaborators != 1 {
		t.Fatalf("byCollaborators = %+v", byC)
	}
	byF := e.TopAuthors(ByFirstAuthored, 1)
	if byF[0].Heading != "Busy" || byF[0].FirstAuthored != 2 {
		t.Fatalf("byFirst = %+v", byF)
	}
	if byH := e.TopAuthors(ByHIndex, 1); byH[0].Heading != "Busy" {
		t.Fatalf("byH = %+v", byH)
	}
	if byFr := e.TopAuthors(ByFractional, 1); byFr[0].Heading != "Busy" {
		t.Fatalf("byFractional = %+v", byFr)
	}
}

func TestSummary(t *testing.T) {
	e := NewEngine(Arithmetic)
	e.Add(work(1, 1990, "A", "B"))
	e.Add(work(2, 1991, "A"))
	s := e.Summary()
	if s.Scheme != "arithmetic" || s.Authors != 2 || s.Works != 2 || s.Postings != 3 {
		t.Errorf("summary = %+v", s)
	}
	if s.SoloWorks != 1 || s.Pairs != 1 {
		t.Errorf("solo/pairs = %d/%d, want 1/1", s.SoloWorks, s.Pairs)
	}
	if s.MeanAuthorsPerWork != 1.5 {
		t.Errorf("mean authors per work = %v, want 1.5", s.MeanAuthorsPerWork)
	}
}
