package wal

import (
	"errors"
	"syscall"
	"testing"

	"repro/internal/fault"
)

// replayStrings collects every replayed payload as a string.
func replayStrings(t *testing.T, dir string) []string {
	t.Helper()
	var got []string
	if _, err := Replay(dir, func(p []byte) error {
		got = append(got, string(p))
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got
}

func TestFaultSyncFailureLatchesAndNeverRefsyncs(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	l, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append([]byte("committed")); err != nil {
		t.Fatalf("append: %v", err)
	}
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpSync, Nth: 1, Err: syscall.EIO})
	if err := l.Append([]byte("doomed")); err == nil {
		t.Fatal("append with failing fsync succeeded")
	}
	if failed, ferr := l.Failed(); !failed || !errors.Is(ferr, syscall.EIO) {
		t.Fatalf("Failed() = (%v, %v), want latched EIO", failed, ferr)
	}
	syncs := in.OpCalls(fault.OpSync)

	// The latch is sticky: later writes fail fast with ErrDegraded and —
	// the fsyncgate rule — the fd is never fsynced again, not even by
	// Close. The injected rule was fail-once, so a retried fsync would
	// have "succeeded" and shown up in the op counter.
	if err := l.Append([]byte("rejected")); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("append after latch = %v, want ErrDegraded", err)
	}
	if err := l.Sync(); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("sync after latch = %v, want ErrDegraded", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close of failed log: %v", err)
	}
	if got := in.OpCalls(fault.OpSync); got != syncs {
		t.Fatalf("fsync attempted after failure: %d calls, want %d", got, syncs)
	}

	// The un-fsynced frame was truncated away: only the committed record
	// replays, so the failed commit cannot resurface after a reopen.
	if got := replayStrings(t, dir); len(got) != 1 || got[0] != "committed" {
		t.Fatalf("replayed %q, want just the committed record", got)
	}
}

func TestFaultShortWriteTornFrameAbsentOnReplay(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	l, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append([]byte("committed")); err != nil {
		t.Fatalf("append: %v", err)
	}
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpWrite, Nth: 1, Err: syscall.EIO, Short: 5})
	if err := l.Append([]byte("torn-record")); err == nil {
		t.Fatal("append with torn write succeeded")
	}
	if failed, _ := l.Failed(); !failed {
		t.Fatal("short write did not latch the log")
	}
	l.Close()
	if got := replayStrings(t, dir); len(got) != 1 || got[0] != "committed" {
		t.Fatalf("replayed %q, want just the committed record", got)
	}

	// A clean reopen starts a fresh, un-failed log over the same dir.
	l2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if failed, _ := l2.Failed(); failed {
		t.Fatal("reopened log inherited the failure latch")
	}
	if err := l2.Append([]byte("after")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := replayStrings(t, dir); len(got) != 2 || got[1] != "after" {
		t.Fatalf("replayed %q, want committed+after", got)
	}
}

func TestFaultBatchWriteFailureAtomicallyAbsent(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	l, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpWrite, Nth: 1, Err: syscall.ENOSPC})
	err = l.AppendBatch([][]byte{[]byte("b1"), []byte("b2")})
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("batch append = %v, want ENOSPC", err)
	}
	if err := l.AppendBatch([][]byte{[]byte("b3")}); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("batch after latch = %v, want ErrDegraded", err)
	}
	st := l.Stats()
	if st.Appends != 0 || st.Records != 0 {
		t.Fatalf("failed batch counted in stats: %+v", st)
	}
	l.Close()
	if got := replayStrings(t, dir); len(got) != 0 {
		t.Fatalf("replayed %q, want nothing", got)
	}
}

func TestFaultResetFailureLatches(t *testing.T) {
	dir := t.TempDir()
	in := fault.NewInjector(nil)
	l, err := Open(dir, Options{FS: in})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := l.Append([]byte("kept")); err != nil {
		t.Fatalf("append: %v", err)
	}
	in.Arm()
	in.Fail(fault.Rule{Op: fault.OpRemove, Nth: 1, Err: syscall.EACCES})
	if err := l.Reset(); !errors.Is(err, syscall.EACCES) {
		t.Fatalf("reset = %v, want EACCES", err)
	}
	if failed, _ := l.Failed(); !failed {
		t.Fatal("failed reset did not latch the log")
	}
	if err := l.Append([]byte("x")); !errors.Is(err, fault.ErrDegraded) {
		t.Fatalf("append after failed reset = %v, want ErrDegraded", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
