package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// FuzzReplay hammers scanSegment — the parser every recovery path
// funnels through — with arbitrary segment bytes. Whatever the input,
// it must never panic, must report a valid-prefix length inside the
// file, and that prefix must itself rescan cleanly to the same record
// count (the fixpoint property Open relies on when it truncates a torn
// tail).
func FuzzReplay(f *testing.F) {
	// Seed corpus: real segments in several shapes, plus broken variants.
	seedDir := f.TempDir()
	l, err := Open(seedDir, Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("seed-record-%02d", i))); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.AppendBatch([][]byte{[]byte("batched-1"), []byte("batched-2")}); err != nil {
		f.Fatal(err)
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	segs, err := listSegments(seedDir)
	if err != nil || len(segs) == 0 {
		f.Fatalf("seed segments: %v err=%v", segs, err)
	}
	real, err := os.ReadFile(filepath.Join(seedDir, segs[0].name))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(real)                    // intact segment
	f.Add(real[:len(real)-3])      // torn tail
	f.Add(real[:headerSize])       // bare header
	f.Add([]byte{})                // empty file
	f.Add([]byte("not a segment")) // garbage
	flipped := append([]byte(nil), real...)
	flipped[headerSize+2] ^= 0xff // corrupt payload byte
	f.Add(flipped)
	badLen := append([]byte(nil), real...)
	badLen[1] = 0xff // absurd frame length
	f.Add(badLen)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, segmentName(1))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		valid, n, err := scanSegment(path, func(p []byte) error {
			if len(p) == 0 {
				return errors.New("delivered empty payload")
			}
			return nil
		})
		if err != nil && !errors.Is(err, errTorn) {
			t.Fatalf("scanSegment returned non-torn error: %v", err)
		}
		if valid < 0 || valid > int64(len(data)) {
			t.Fatalf("valid prefix %d outside [0, %d]", valid, len(data))
		}
		if n < 0 {
			t.Fatalf("negative record count %d", n)
		}
		// Fixpoint: the reported prefix must rescan cleanly, delivering
		// exactly the same records.
		if err := os.WriteFile(path, data[:valid], 0o644); err != nil {
			t.Fatal(err)
		}
		valid2, n2, err2 := scanSegment(path, nil)
		if err2 != nil {
			t.Fatalf("valid prefix did not rescan cleanly: %v", err2)
		}
		if valid2 != valid || n2 != n {
			t.Fatalf("rescan of valid prefix: (%d, %d) != (%d, %d)", valid2, n2, valid, n)
		}
	})
}
