package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestAppendBatchRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	var want [][]byte
	var batch [][]byte
	for i := 0; i < 40; i++ {
		p := []byte(fmt.Sprintf("batch-record-%03d", i))
		want = append(want, p)
		batch = append(batch, p)
	}
	if err := l.AppendBatch(batch); err != nil {
		t.Fatalf("AppendBatch: %v", err)
	}
	// Singles and batches interleave freely.
	if err := l.Append([]byte("single")); err != nil {
		t.Fatal(err)
	}
	want = append(want, []byte("single"))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// The group-commit contract: N records, one append, one fsync.
func TestAppendBatchSingleFsync(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{}) // fsync on
	defer l.Close()
	batch := make([][]byte, 64)
	for i := range batch {
		batch[i] = []byte(fmt.Sprintf("r%04d", i))
	}
	before := l.Stats()
	if err := l.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	st := l.Stats()
	if got := st.Appends - before.Appends; got != 1 {
		t.Errorf("batch cost %d appends, want 1", got)
	}
	if got := st.Records - before.Records; got != 64 {
		t.Errorf("batch recorded %d records, want 64", got)
	}
	if got := st.Syncs - before.Syncs; got != 1 {
		t.Errorf("batch issued %d fsyncs, want exactly 1", got)
	}
}

func TestAppendBatchValidation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	defer l.Close()
	if err := l.AppendBatch(nil); err != nil {
		t.Errorf("empty batch should be a no-op, got %v", err)
	}
	if err := l.AppendBatch([][]byte{[]byte("ok"), nil}); err == nil {
		t.Error("batch with empty payload accepted")
	}
	big := make([]byte, maxRecord+1)
	if err := l.AppendBatch([][]byte{[]byte("ok"), big}); err == nil {
		t.Error("batch with oversize payload accepted")
	}
	// A rejected batch must write nothing, not a prefix.
	if got := replayAll(t, dir); len(got) != 0 {
		t.Errorf("rejected batches leaked %d records into the log", len(got))
	}
	if st := l.Stats(); st.Records != 0 {
		t.Errorf("rejected batches counted %d records", st.Records)
	}
}

func TestAppendBatchClosed(t *testing.T) {
	l := openT(t, t.TempDir(), Options{NoSync: true})
	l.Close()
	if err := l.AppendBatch([][]byte{[]byte("x")}); err != ErrClosed {
		t.Errorf("AppendBatch after close: %v, want ErrClosed", err)
	}
}

func TestAppendBatchRotates(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 128, NoSync: true})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 6; i++ {
		if err := l.AppendBatch([][]byte{payload}); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Errorf("expected batch appends to rotate segments, got %d", len(segs))
	}
	if got := replayAll(t, dir); len(got) != 6 {
		t.Errorf("replayed %d records, want 6", len(got))
	}
}

// TestCrashTornTailEveryOffset is the exhaustive torn-tail sweep: a log
// whose final record is cut at EVERY possible byte offset must replay
// to exactly the committed prefix — never an error, never a phantom
// record, never a corrupted payload.
func TestCrashTornTailEveryOffset(t *testing.T) {
	master := t.TempDir()
	l := openT(t, master, Options{NoSync: true})
	var want [][]byte
	for i := 0; i < 6; i++ {
		p := []byte(fmt.Sprintf("committed-%d-%s", i, bytes.Repeat([]byte{byte('a' + i)}, 10+i)))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(master)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v err=%v", segs, err)
	}
	segData, err := os.ReadFile(filepath.Join(master, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}
	lastStart := len(segData) - headerSize - len(want[len(want)-1])
	for cut := lastStart; cut <= len(segData); cut++ {
		dir := t.TempDir()
		path := filepath.Join(dir, segs[0].name)
		if err := os.WriteFile(path, segData[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		var got [][]byte
		if _, err := Replay(dir, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: replay error %v", cut, err)
		}
		wantN := len(want) - 1
		if cut == len(segData) {
			wantN = len(want)
		}
		if len(got) != wantN {
			t.Fatalf("cut=%d: replayed %d records, want %d", cut, len(got), wantN)
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("cut=%d: record %d = %q, want %q", cut, i, got[i], want[i])
			}
		}
		// Open must truncate the tear and accept new appends cleanly.
		l2, err := Open(dir, Options{NoSync: true})
		if err != nil {
			t.Fatalf("cut=%d: reopen: %v", cut, err)
		}
		if err := l2.Append([]byte("post-crash")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		if err := l2.Close(); err != nil {
			t.Fatal(err)
		}
		var after [][]byte
		if _, err := Replay(dir, func(p []byte) error {
			after = append(after, append([]byte(nil), p...))
			return nil
		}); err != nil {
			t.Fatalf("cut=%d: replay after recovery: %v", cut, err)
		}
		if len(after) != wantN+1 || string(after[wantN]) != "post-crash" {
			t.Fatalf("cut=%d: post-recovery log holds %d records", cut, len(after))
		}
	}
}
