// Package wal implements a segmented write-ahead log with CRC-framed
// records and torn-tail recovery. Records are opaque payloads; the
// storage layer defines their meaning.
//
// On-disk layout: a directory of segment files named wal-<16 hex digits>.seg,
// numbered from 1, each a concatenation of frames:
//
//	byte   magic 0x57 ('W')
//	uint32 payload length (little endian)
//	uint32 CRC-32C of the payload
//	bytes  payload
//
// A crash can leave a torn frame only at the very end of the newest
// segment; Open truncates it and Replay tolerates it. A bad frame
// anywhere else is real corruption and is reported as ErrCorrupt.
//
// AppendBatch is the group-commit primitive: N records in one buffered
// write and one fsync. Stats counts appends, records and fsyncs so
// callers can assert the amortization.
package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Write-path latency, recorded on the process-wide registry: every
// fsync the log issues and every frame-encode pass. fsync dominates
// commit latency by orders of magnitude; exposing both makes the gap
// visible in /debug/metrics.
var (
	fsyncHist = obs.Default.Histogram("authdex_wal_fsync_duration_seconds",
		"Latency of WAL fsync calls.")
	encodeHist = obs.Default.Histogram("authdex_wal_frame_encode_duration_seconds",
		"Latency of WAL frame encoding, one observation per append.")
)

const (
	frameMagic  = 0x57
	headerSize  = 1 + 4 + 4
	segPrefix   = "wal-"
	segSuffix   = ".seg"
	maxRecord   = 64 << 20 // frames larger than this are treated as corruption
	defaultSeg  = 4 << 20
	segNameDigs = 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors reported by the package.
var (
	ErrCorrupt = errors.New("wal: corrupt log")
	ErrClosed  = errors.New("wal: log is closed")
)

// Options configures a Log. The zero value is usable: 4 MiB segments,
// fsync on every append.
type Options struct {
	// SegmentSize is the byte threshold after which a new segment file is
	// started. Zero means the 4 MiB default.
	SegmentSize int64
	// NoSync skips fsync after each append. Throughput rises sharply and
	// the most recent appends may be lost on power failure; the log is
	// still never corrupted beyond the torn tail.
	NoSync bool
	// FS is the filesystem seam the write path goes through. Nil means
	// the real filesystem. The recovery path (Replay, torn-tail scan)
	// always reads through the os package directly.
	FS fault.FS
}

func (o *Options) segmentSize() int64 {
	if o.SegmentSize <= 0 {
		return defaultSeg
	}
	return o.SegmentSize
}

func (o *Options) fs() fault.FS {
	if o.FS == nil {
		return fault.OS
	}
	return o.FS
}

// Log is an open write-ahead log. Methods are safe for concurrent use.
type Log struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       fault.File
	seg     uint64 // index of the open segment
	size    int64  // bytes written to the open segment
	total   int64  // bytes across all segments
	closed  bool
	failed  bool  // sticky: a write-path I/O error latched the log read-only
	failErr error // the error that latched failed
	scratch []byte
	st      Stats
}

// Stats counts write-path work since the log was opened. The group-
// commit invariant — a batch of N records costs one append and at most
// one fsync — is asserted against these counters by the storage and
// facade test suites.
type Stats struct {
	// Appends is the number of append calls (Append and AppendBatch
	// each count once, however many records they carry).
	Appends int64
	// Records is the number of records written.
	Records int64
	// Syncs is the number of fsyncs issued (appends, explicit Sync,
	// segment rotation and Close all count).
	Syncs int64
}

// Stats returns a snapshot of the write-path counters.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.st
}

// Open opens (creating if needed) the log in dir. The newest existing
// segment is scanned and any torn tail is truncated away; appends then
// continue into it, or into a fresh segment if it is already full.
func Open(dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open: %w", err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	l := &Log{dir: dir, opts: opts}
	for _, s := range segs[:max(0, len(segs)-1)] {
		fi, err := os.Stat(filepath.Join(dir, s.name))
		if err != nil {
			return nil, fmt.Errorf("wal: open: %w", err)
		}
		l.total += fi.Size()
	}
	if len(segs) == 0 {
		if err := l.openSegment(1); err != nil {
			return nil, err
		}
		return l, nil
	}
	last := segs[len(segs)-1]
	path := filepath.Join(dir, last.name)
	valid, _, err := scanSegment(path, nil)
	if err != nil && !errors.Is(err, errTorn) {
		return nil, err
	}
	if err := os.Truncate(path, valid); err != nil {
		return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if valid >= opts.segmentSize() {
		l.total += valid
		if err := l.openSegment(last.index + 1); err != nil {
			return nil, err
		}
		return l, nil
	}
	f, err := opts.fs().OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open segment: %w", err)
	}
	l.f, l.seg, l.size = f, last.index, valid
	l.total += valid
	return l, nil
}

// Append writes one record. The payload must be non-empty and smaller
// than the 64 MiB frame limit. When the record is durable (or buffered,
// under NoSync) Append returns nil.
func (l *Log) Append(p []byte) error { return l.AppendCtx(context.Background(), p) }

// AppendCtx is Append carrying a trace context: frame encoding and the
// fsync are recorded as separate child spans so slow commits attribute
// their latency to CPU (encode) or the disk (fsync).
func (l *Log) AppendCtx(ctx context.Context, p []byte) error {
	if len(p) == 0 {
		return errors.New("wal: empty payload")
	}
	if len(p) > maxRecord {
		return fmt.Errorf("wal: payload %d bytes exceeds frame limit", len(p))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return fault.ErrDegraded
	}
	if l.size >= l.opts.segmentSize() {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	encStart := time.Now()
	encSpan := trace.FromContext(ctx).StartChild("wal.encode")
	l.scratch = appendFrame(l.scratch[:0], p)
	encSpan.SetInt("bytes", int64(len(l.scratch)))
	encSpan.End()
	encodeHist.Since(encStart)
	if _, err := l.f.Write(l.scratch); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: append: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.syncLockedCtx(ctx); err != nil {
			l.failLocked(err)
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	n := int64(len(l.scratch))
	l.size += n
	l.total += n
	l.st.Appends++
	l.st.Records++
	return nil
}

// AppendBatch writes N records as one group commit: every frame is
// encoded into a single buffered write and made durable by a single
// fsync (none under NoSync), so a batch of N records costs 1/N of the
// per-record durability overhead. Frames are laid down contiguously in
// append order; a crash mid-batch can tear the write at any byte, which
// replay resolves to a prefix of the batch's frames — callers that need
// all-or-nothing visibility must encode the batch as one record (the
// storage layer does). An empty batch is a no-op.
func (l *Log) AppendBatch(payloads [][]byte) error {
	return l.AppendBatchCtx(context.Background(), payloads)
}

// AppendBatchCtx is AppendBatch carrying a trace context; see
// AppendCtx for the spans recorded.
func (l *Log) AppendBatchCtx(ctx context.Context, payloads [][]byte) error {
	if len(payloads) == 0 {
		return nil
	}
	total := 0
	for _, p := range payloads {
		if len(p) == 0 {
			return errors.New("wal: empty payload")
		}
		if len(p) > maxRecord {
			return fmt.Errorf("wal: payload %d bytes exceeds frame limit", len(p))
		}
		total += headerSize + len(p)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return fault.ErrDegraded
	}
	if l.size >= l.opts.segmentSize() {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	if cap(l.scratch) < total {
		l.scratch = make([]byte, 0, total)
	}
	encStart := time.Now()
	encSpan := trace.FromContext(ctx).StartChild("wal.encode")
	l.scratch = l.scratch[:0]
	for _, p := range payloads {
		l.scratch = appendFrame(l.scratch, p)
	}
	encSpan.SetInt("bytes", int64(len(l.scratch)))
	encSpan.SetInt("records", int64(len(payloads)))
	encSpan.End()
	encodeHist.Since(encStart)
	if _, err := l.f.Write(l.scratch); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: append batch: %w", err)
	}
	if !l.opts.NoSync {
		if err := l.syncLockedCtx(ctx); err != nil {
			l.failLocked(err)
			return fmt.Errorf("wal: sync: %w", err)
		}
	}
	n := int64(len(l.scratch))
	l.size += n
	l.total += n
	l.st.Appends++
	l.st.Records += int64(len(payloads))
	return nil
}

// appendFrame encodes one record frame onto dst.
func appendFrame(dst, p []byte) []byte {
	dst = append(dst, frameMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(p)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(p, castagnoli))
	return append(dst, p...)
}

// syncLocked issues one fsync on the open segment, counting it and
// timing it. Every fsync the log performs funnels through here.
func (l *Log) syncLocked() error { return l.syncLockedCtx(context.Background()) }

func (l *Log) syncLockedCtx(ctx context.Context) error {
	l.st.Syncs++
	start := time.Now()
	span := trace.FromContext(ctx).StartChild("wal.fsync")
	err := l.f.Sync()
	span.End()
	fsyncHist.Since(start)
	return err
}

// failLocked latches the log read-only after a write-path I/O error.
// The open segment is best-effort truncated back to its last committed
// size so bytes buffered past the failure point — a torn frame after a
// failed write, an un-fsynced frame after a failed fsync — cannot
// resurface on replay. The fd is never fsynced again: after a failed
// fsync the kernel may have dropped the dirty pages while marking them
// clean, so a retried fsync can report success for data that was lost
// (the "fsyncgate" failure mode). Every later append returns
// fault.ErrDegraded.
func (l *Log) failLocked(err error) {
	if l.failed {
		return
	}
	l.failed = true
	l.failErr = err
	if l.f != nil {
		l.f.Truncate(l.size) // best effort; replay tolerates a torn tail anyway
	}
}

// Failed reports whether a write-path I/O error has latched the log
// read-only, and the error that did.
func (l *Log) Failed() (bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.failed, l.failErr
}

// Sync forces buffered appends to stable storage. Only meaningful with
// NoSync; otherwise every Append already synced. A failed log is never
// fsynced again.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return fault.ErrDegraded
	}
	if err := l.syncLocked(); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: sync: %w", err)
	}
	return nil
}

// Size returns the total bytes across all segments, including the open one.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Reset deletes every segment and starts an empty one; the storage layer
// calls this immediately after writing a snapshot. A partial failure —
// the old segment close, a segment remove, the fresh-segment create —
// latches the log read-only; leftover segments only re-deliver records
// the snapshot already holds, which replay applies idempotently.
func (l *Log) Reset() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.failed {
		return fault.ErrDegraded
	}
	if err := l.f.Close(); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: reset: %w", err)
	}
	segs, err := listSegments(l.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if err := l.opts.fs().Remove(filepath.Join(l.dir, s.name)); err != nil {
			l.failLocked(err)
			return fmt.Errorf("wal: reset: %w", err)
		}
	}
	l.total = 0
	if err := l.openSegmentLocked(1); err != nil {
		l.failLocked(err)
		return err
	}
	return nil
}

// Close flushes and closes the log. Further operations return ErrClosed.
// A failed log is closed without the flush — never re-fsync a failed fd
// — and without reporting an error: degradation was already surfaced
// when it latched.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	l.closed = true
	if l.failed {
		l.f.Close() // best effort: release the fd, keep the latched error
		return nil
	}
	if err := l.syncLocked(); err != nil {
		l.failLocked(err)
		l.f.Close()
		return fmt.Errorf("wal: close: %w", err)
	}
	return l.f.Close()
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.f.Close(); err != nil {
		l.failLocked(err)
		return fmt.Errorf("wal: rotate: %w", err)
	}
	if err := l.openSegmentLocked(l.seg + 1); err != nil {
		l.failLocked(err)
		return err
	}
	return nil
}

func (l *Log) openSegment(index uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.openSegmentLocked(index)
}

func (l *Log) openSegmentLocked(index uint64) error {
	name := segmentName(index)
	f, err := l.opts.fs().OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	l.f, l.seg, l.size = f, index, 0
	return nil
}

// Replay invokes fn for every intact record across all segments in
// order. A torn frame at the tail of the newest segment ends the replay
// cleanly; a bad frame anywhere else returns ErrCorrupt. fn errors abort
// the replay. The returned count is the number of records delivered.
func Replay(dir string, fn func(payload []byte) error) (int, error) {
	segs, err := listSegments(dir)
	if err != nil {
		return 0, err
	}
	total := 0
	for i, s := range segs {
		last := i == len(segs)-1
		path := filepath.Join(dir, s.name)
		valid, n, err := scanSegment(path, fn)
		total += n
		if err != nil {
			if errors.Is(err, errTorn) && last {
				return total, nil
			}
			if errors.Is(err, errTorn) {
				return total, fmt.Errorf("%w: torn frame mid-log in %s at offset %d", ErrCorrupt, s.name, valid)
			}
			return total, err
		}
	}
	return total, nil
}

// errTorn marks an incomplete or CRC-failing frame; callers decide
// whether its position makes it benign (tail) or fatal (middle).
var errTorn = errors.New("wal: torn frame")

// scanSegment reads frames from path, calling fn (if non-nil) per
// payload. It returns the byte offset of the end of the last intact
// frame, the number of intact frames, and errTorn if the segment ends in
// a damaged frame.
func scanSegment(path string, fn func([]byte) error) (validLen int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: scan: %w", err)
	}
	defer f.Close()
	var (
		hdr [headerSize]byte
		buf []byte
		off int64
	)
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			if err == io.EOF {
				return off, n, nil // clean end
			}
			return off, n, errTorn // partial header
		}
		if hdr[0] != frameMagic {
			return off, n, errTorn
		}
		length := binary.LittleEndian.Uint32(hdr[1:5])
		want := binary.LittleEndian.Uint32(hdr[5:9])
		if length == 0 || length > maxRecord {
			return off, n, errTorn
		}
		if cap(buf) < int(length) {
			buf = make([]byte, length)
		}
		buf = buf[:length]
		if _, err := io.ReadFull(f, buf); err != nil {
			return off, n, errTorn // partial payload
		}
		if crc32.Checksum(buf, castagnoli) != want {
			return off, n, errTorn
		}
		if fn != nil {
			if err := fn(buf); err != nil {
				return off, n, err
			}
		}
		off += int64(headerSize) + int64(length)
		n++
	}
}

type segment struct {
	name  string
	index uint64
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hexPart := name[len(segPrefix) : len(name)-len(segSuffix)]
		idx, err := strconv.ParseUint(hexPart, 16, 64)
		if err != nil {
			continue // foreign file; ignore
		}
		segs = append(segs, segment{name: name, index: idx})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].index < segs[j].index })
	return segs, nil
}

func segmentName(index uint64) string {
	return fmt.Sprintf("%s%0*x%s", segPrefix, segNameDigs, index, segSuffix)
}
