package wal

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func openT(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func replayAll(t *testing.T, dir string) [][]byte {
	t.Helper()
	var got [][]byte
	n, err := Replay(dir, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if n != len(got) {
		t.Fatalf("Replay count %d != delivered %d", n, len(got))
	}
	return got
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	var want [][]byte
	for i := 0; i < 100; i++ {
		p := []byte(fmt.Sprintf("record-%03d", i))
		want = append(want, p)
		if err := l.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestAppendValidation(t *testing.T) {
	l := openT(t, t.TempDir(), Options{NoSync: true})
	defer l.Close()
	if err := l.Append(nil); err == nil {
		t.Error("empty payload accepted")
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 256, NoSync: true})
	payload := bytes.Repeat([]byte("x"), 100)
	for i := 0; i < 10; i++ {
		if err := l.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Errorf("expected rotation to produce >=3 segments, got %d", len(segs))
	}
	if got := replayAll(t, dir); len(got) != 10 {
		t.Errorf("replayed %d records across segments, want 10", len(got))
	}
}

func TestReopenAppendsToExistingSegment(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	if err := l.Append([]byte("first")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = openT(t, dir, Options{NoSync: true})
	if err := l.Append([]byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 2 || string(got[0]) != "first" || string(got[1]) != "second" {
		t.Errorf("reopen lost records: %q", got)
	}
	// A single small log should still be one segment.
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Errorf("expected 1 segment, got %d", len(segs))
	}
}

func TestTornTailIsRecovered(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[len(segs)-1].name)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear off the last 3 bytes, simulating a crash mid-write.
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	got := replayAll(t, dir)
	if len(got) != 4 {
		t.Fatalf("after torn tail replayed %d records, want 4", len(got))
	}
	// Re-open truncates the tear; appends must produce a clean log.
	l = openT(t, dir, Options{NoSync: true})
	if err := l.Append([]byte("after-crash")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got = replayAll(t, dir)
	if len(got) != 5 || string(got[4]) != "after-crash" {
		t.Fatalf("post-recovery log wrong: %q", got)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	for i := 0; i < 3; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := filepath.Join(dir, segs[0].name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte inside the FIRST record: CRC must catch it and,
	// because later intact records follow, replay stops at the flip.
	data[headerSize+10] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	n, err := Replay(dir, func([]byte) error { return nil })
	if err == nil {
		// Tolerated as torn tail only if this was the last segment, but
		// records after the flip are then silently lost.
		if n != 0 {
			t.Fatalf("corruption skipped %d records without error", n)
		}
	}
}

func TestMidLogCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64, NoSync: true})
	for i := 0; i < 6; i++ {
		if err := l.Append(bytes.Repeat([]byte{byte('a' + i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need >=2 segments, got %d", len(segs))
	}
	// Corrupt the FIRST segment (not the last): must be ErrCorrupt.
	path := filepath.Join(dir, segs[0].name)
	data, _ := os.ReadFile(path)
	data[headerSize+5] ^= 0xff
	os.WriteFile(path, data, 0o644)
	_, err := Replay(dir, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("mid-log corruption returned %v, want ErrCorrupt", err)
	}
}

func TestReplayCallbackError(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	for i := 0; i < 3; i++ {
		l.Append([]byte{byte(i + 1)})
	}
	l.Close()
	boom := errors.New("boom")
	n, err := Replay(dir, func(p []byte) error {
		if p[0] == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("callback error not propagated: %v", err)
	}
	if n != 1 {
		t.Errorf("delivered %d records before error, want 1", n)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 64, NoSync: true})
	for i := 0; i < 5; i++ {
		l.Append(bytes.Repeat([]byte("z"), 50))
	}
	if err := l.Reset(); err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if got := replayAll(t, dir); len(got) != 0 {
		t.Errorf("records survived Reset: %d", len(got))
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if l.Size() == 0 {
		t.Error("Size() zero after append")
	}
	l.Close()
	got := replayAll(t, dir)
	if len(got) != 1 || string(got[0]) != "fresh" {
		t.Errorf("post-reset log = %q", got)
	}
}

func TestClosedOperationsFail(t *testing.T) {
	l := openT(t, t.TempDir(), Options{NoSync: true})
	l.Close()
	if err := l.Append([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("Append after close: %v", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrClosed) {
		t.Errorf("Sync after close: %v", err)
	}
	if err := l.Reset(); !errors.Is(err, ErrClosed) {
		t.Errorf("Reset after close: %v", err)
	}
	if err := l.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double Close: %v", err)
	}
}

func TestReplayEmptyOrMissingDir(t *testing.T) {
	n, err := Replay(filepath.Join(t.TempDir(), "nonexistent"), nil)
	if err != nil || n != 0 {
		t.Errorf("missing dir: n=%d err=%v", n, err)
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hello"), 0o644)
	os.WriteFile(filepath.Join(dir, "wal-zzzz.seg"), []byte("junk"), 0o644)
	l := openT(t, dir, Options{NoSync: true})
	l.Append([]byte("ok"))
	l.Close()
	if got := replayAll(t, dir); len(got) != 1 {
		t.Errorf("foreign files disturbed replay: %d records", len(got))
	}
}

func TestSizeAccounting(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 128, NoSync: true})
	for i := 0; i < 10; i++ {
		l.Append(bytes.Repeat([]byte("q"), 40))
	}
	want := int64(10 * (headerSize + 40))
	if got := l.Size(); got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
	l.Close()
}

func TestExplicitSync(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{NoSync: true})
	if err := l.Append([]byte("buffered")); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	l.Close()
	if got := replayAll(t, dir); len(got) != 1 {
		t.Errorf("after sync: %d records", len(got))
	}
}

func TestOversizePayloadRejected(t *testing.T) {
	l := openT(t, t.TempDir(), Options{NoSync: true})
	defer l.Close()
	big := make([]byte, maxRecord+1)
	if err := l.Append(big); err == nil {
		t.Error("oversize payload accepted")
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openT(t, dir, Options{SegmentSize: 4096, NoSync: true})
	const goroutines, perG = 8, 200
	done := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				if err := l.Append([]byte(fmt.Sprintf("g%02d-%04d", g, i))); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-done; err != nil {
			t.Fatalf("concurrent append: %v", err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Every record must replay intact, and per-goroutine order must hold.
	lastSeen := map[byte]int{}
	n, err := Replay(dir, func(p []byte) error {
		var g, i int
		if _, err := fmt.Sscanf(string(p), "g%02d-%04d", &g, &i); err != nil {
			return fmt.Errorf("bad record %q: %v", p, err)
		}
		if prev, ok := lastSeen[byte(g)]; ok && i != prev+1 {
			return fmt.Errorf("goroutine %d order broken: %d after %d", g, i, prev)
		}
		lastSeen[byte(g)] = i
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != goroutines*perG {
		t.Errorf("replayed %d records, want %d", n, goroutines*perG)
	}
}

// Property: any sequence of appends with arbitrary payloads and any tear
// point in the final segment replays to a strict prefix of the appended
// records.
func TestTornTailPrefixPropertyQuick(t *testing.T) {
	f := func(seed int64, tear uint8) bool {
		r := rand.New(rand.NewSource(seed))
		dir := t.TempDir()
		l, err := Open(dir, Options{SegmentSize: 512, NoSync: true})
		if err != nil {
			return false
		}
		var want [][]byte
		for i := 0; i < 20; i++ {
			p := make([]byte, 1+r.Intn(100))
			r.Read(p)
			want = append(want, p)
			if err := l.Append(p); err != nil {
				return false
			}
		}
		l.Close()
		segs, _ := listSegments(dir)
		path := filepath.Join(dir, segs[len(segs)-1].name)
		fi, _ := os.Stat(path)
		cut := int64(tear)%fi.Size() + 1
		os.Truncate(path, fi.Size()-cut)
		var got [][]byte
		if _, err := Replay(dir, func(p []byte) error {
			got = append(got, append([]byte(nil), p...))
			return nil
		}); err != nil {
			return false
		}
		if len(got) > len(want) {
			return false
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
