// Package fault is the filesystem seam under the durable write path.
//
// The WAL and storage layers never touch the os package directly for
// write-side I/O; they go through a fault.FS. In production that is the
// passthrough OS implementation. In tests an Injector wraps it and can
// fail the Nth call of any operation with a chosen error, a short
// write, or a sticky (fail-forever) pattern — deterministically, so a
// chaos suite can sweep a single fault across every I/O call site of
// every write operation.
//
// The package also owns ErrDegraded, the sentinel for the sticky
// read-only mode the index enters after a write-path I/O failure. It
// lives here — below both wal and storage — so either layer can report
// it without an import cycle.
package fault

import (
	"errors"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// ErrDegraded is returned by every write once the index has latched
// read-only after a write-path I/O failure. Reads keep serving; the
// latch clears only on reopen.
var ErrDegraded = errors.New("degraded: write path disabled after an I/O failure; index is read-only")

// Op identifies one class of filesystem operation for injection rules
// and per-op call counters.
type Op string

const (
	// OpAny matches every operation in a Rule.
	OpAny Op = ""

	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpOpenFile Op = "openfile"
	OpRename   Op = "rename"
	OpRemove   Op = "remove"
	OpWrite    Op = "write"
	OpSync     Op = "sync"
	OpClose    Op = "close"
	OpTruncate Op = "truncate"
)

// File is the handle surface the durable write path needs. *os.File
// satisfies it.
type File interface {
	io.Writer
	Sync() error
	Close() error
	Truncate(size int64) error
	Name() string
}

// FS is the filesystem seam. Open is used read-only (directory fsync);
// Create and OpenFile produce writable handles.
type FS interface {
	Open(name string) (File, error)
	Create(name string) (File, error)
	OpenFile(name string, flag int, perm iofs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
}

// OS is the passthrough FS used when no injector is installed.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error)   { return os.Open(name) }
func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }

// Rule arms one deterministic failure.
type Rule struct {
	// Op restricts the rule to one operation class; OpAny matches all.
	Op Op
	// Path, when non-empty, restricts the rule to paths containing it
	// as a substring.
	Path string
	// Nth fires the rule on the Nth matching armed call (1-based).
	// Zero fires on every matching call.
	Nth int64
	// Err is the error injected when the rule fires. Rules with a nil
	// Err never fire.
	Err error
	// Short, for OpWrite rules, is the number of bytes actually written
	// before Err is returned — a torn write. Zero writes nothing.
	Short int
	// Sticky keeps the rule firing on every matching call at or after
	// Nth, instead of exactly once (fail-then-succeed).
	Sticky bool
}

// Injector is a deterministic fault-injecting FS wrapper. It only
// counts and fails calls made while armed, so test setup and teardown
// run clean; the operation under test is bracketed by Arm/Disarm.
type Injector struct {
	inner FS

	mu    sync.Mutex
	armed bool
	calls int64
	perOp map[Op]int64
	log   []string
	rules []*armedRule
	hits  int64
}

type armedRule struct {
	Rule
	seen int64
}

// NewInjector wraps inner (nil means the real filesystem).
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS
	}
	return &Injector{inner: inner, perOp: make(map[Op]int64)}
}

// Arm starts counting calls and applying rules.
func (in *Injector) Arm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = true
}

// Disarm makes the injector a pure passthrough again. Counters and
// rules are kept.
func (in *Injector) Disarm() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.armed = false
}

// Reset clears rules, counters and the call log; the armed state is
// unchanged.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.calls = 0
	in.perOp = make(map[Op]int64)
	in.log = nil
	in.rules = nil
	in.hits = 0
}

// Fail installs a rule. Rules are checked in installation order; the
// first that fires wins.
func (in *Injector) Fail(r Rule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &armedRule{Rule: r})
}

// Calls returns the number of armed FS calls observed since the last
// Reset.
func (in *Injector) Calls() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls
}

// OpCalls returns the number of armed calls observed for one op.
func (in *Injector) OpCalls(op Op) int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.perOp[op]
}

// Hits returns how many times any rule has fired.
func (in *Injector) Hits() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.hits
}

// CallLog returns the armed calls seen so far as "op base-name" lines,
// for failure messages in sweeping tests.
func (in *Injector) CallLog() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.log...)
}

// check records one armed call and consults the rules. The returned
// short count is meaningful only for OpWrite when err is non-nil.
func (in *Injector) check(op Op, path string) (short int, err error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if !in.armed {
		return 0, nil
	}
	in.calls++
	in.perOp[op]++
	in.log = append(in.log, string(op)+" "+filepath.Base(path))
	for _, r := range in.rules {
		if r.Err == nil {
			continue
		}
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		r.seen++
		fire := r.Nth == 0 || r.seen == r.Nth || (r.Sticky && r.seen > r.Nth)
		if fire {
			in.hits++
			return r.Short, r.Err
		}
	}
	return 0, nil
}

func (in *Injector) Open(name string) (File, error) {
	if _, err := in.check(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := in.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Create(name string) (File, error) {
	if _, err := in.check(OpCreate, name); err != nil {
		return nil, err
	}
	f, err := in.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) OpenFile(name string, flag int, perm iofs.FileMode) (File, error) {
	if _, err := in.check(OpOpenFile, name); err != nil {
		return nil, err
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{in: in, f: f}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if _, err := in.check(OpRename, oldpath); err != nil {
		return err
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	if _, err := in.check(OpRemove, name); err != nil {
		return err
	}
	return in.inner.Remove(name)
}

// injFile routes the handle ops back through the injector.
type injFile struct {
	in *Injector
	f  File
}

func (fl *injFile) Write(p []byte) (int, error) {
	short, err := fl.in.check(OpWrite, fl.f.Name())
	if err != nil {
		n := 0
		if short > 0 {
			n, _ = fl.f.Write(p[:min(short, len(p))])
		}
		return n, err
	}
	return fl.f.Write(p)
}

func (fl *injFile) Sync() error {
	if _, err := fl.in.check(OpSync, fl.f.Name()); err != nil {
		return err
	}
	return fl.f.Sync()
}

func (fl *injFile) Close() error {
	if _, err := fl.in.check(OpClose, fl.f.Name()); err != nil {
		fl.f.Close() // release the fd regardless; the error stands
		return err
	}
	return fl.f.Close()
}

func (fl *injFile) Truncate(size int64) error {
	if _, err := fl.in.check(OpTruncate, fl.f.Name()); err != nil {
		return err
	}
	return fl.f.Truncate(size)
}

func (fl *injFile) Name() string { return fl.f.Name() }
