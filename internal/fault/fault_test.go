package fault

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestFaultPassthroughDisarmed(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Fail(Rule{Op: OpAny, Nth: 1, Err: syscall.EIO})
	// Not armed: the rule must not fire and nothing is counted.
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := in.Calls(); got != 0 {
		t.Fatalf("disarmed injector counted %d calls, want 0", got)
	}
	if got, err := os.ReadFile(filepath.Join(dir, "a")); err != nil || string(got) != "hello" {
		t.Fatalf("file content %q err %v, want hello", got, err)
	}
}

func TestFaultNthCallFailsOnce(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm()
	in.Fail(Rule{Op: OpWrite, Nth: 2, Err: syscall.ENOSPC})
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Write([]byte("one")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("two")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("write 2 err = %v, want ENOSPC", err)
	}
	// Fail-then-succeed: the non-sticky rule fired exactly once.
	if _, err := f.Write([]byte("three")); err != nil {
		t.Fatalf("write 3: %v", err)
	}
	if got := in.Hits(); got != 1 {
		t.Fatalf("hits = %d, want 1", got)
	}
	if got := in.OpCalls(OpWrite); got != 3 {
		t.Fatalf("write calls = %d, want 3", got)
	}
}

func TestFaultStickyKeepsFailing(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm()
	in.Fail(Rule{Op: OpSync, Nth: 1, Err: syscall.EIO, Sticky: true})
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.EIO) {
			t.Fatalf("sync %d err = %v, want EIO", i, err)
		}
	}
	if got := in.Hits(); got != 3 {
		t.Fatalf("hits = %d, want 3", got)
	}
}

func TestFaultShortWrite(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm()
	in.Fail(Rule{Op: OpWrite, Nth: 1, Err: syscall.EIO, Short: 3})
	f, err := in.Create(filepath.Join(dir, "a"))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	n, err := f.Write([]byte("abcdef"))
	if !errors.Is(err, syscall.EIO) || n != 3 {
		t.Fatalf("short write = (%d, %v), want (3, EIO)", n, err)
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "a"))
	if err != nil || string(got) != "abc" {
		t.Fatalf("torn file content %q err %v, want abc", got, err)
	}
}

func TestFaultPathFilterAndOpCounts(t *testing.T) {
	dir := t.TempDir()
	in := NewInjector(nil)
	in.Arm()
	in.Fail(Rule{Op: OpRename, Path: "victim", Nth: 1, Err: syscall.EXDEV})
	ok := filepath.Join(dir, "ok")
	victim := filepath.Join(dir, "victim")
	for _, p := range []string{ok, victim} {
		f, err := in.Create(p)
		if err != nil {
			t.Fatalf("create %s: %v", p, err)
		}
		f.Close()
	}
	if err := in.Rename(ok, ok+".moved"); err != nil {
		t.Fatalf("rename ok: %v", err)
	}
	if err := in.Rename(victim, victim+".moved"); !errors.Is(err, syscall.EXDEV) {
		t.Fatalf("rename victim err = %v, want EXDEV", err)
	}
	if _, err := os.Stat(victim); err != nil {
		t.Fatalf("victim should be untouched after injected rename failure: %v", err)
	}
	if got := in.OpCalls(OpRename); got != 2 {
		t.Fatalf("rename calls = %d, want 2", got)
	}
	if got := in.OpCalls(OpCreate); got != 2 {
		t.Fatalf("create calls = %d, want 2", got)
	}
	if len(in.CallLog()) != int(in.Calls()) {
		t.Fatalf("call log length %d != calls %d", len(in.CallLog()), in.Calls())
	}
}
