package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/model"
	"repro/internal/wal"
)

func work(title string, vol, page, year int, authors ...string) *model.Work {
	w := &model.Work{
		Title:    title,
		Citation: model.Citation{Volume: vol, Page: page, Year: year},
	}
	for _, a := range authors {
		w.Authors = append(w.Authors, model.Author{Family: a})
	}
	if len(w.Authors) == 0 {
		w.Authors = []model.Author{{Family: "Anon"}}
	}
	return w
}

func openT(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, Options{WAL: wal.Options{NoSync: true}})
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func TestInMemoryCRUD(t *testing.T) {
	s := openT(t, "")
	defer s.Close()
	id, err := s.Put(work("First", 1, 1, 2000, "Alpha"))
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if id != 1 {
		t.Errorf("first ID = %d, want 1", id)
	}
	got, ok := s.Get(id)
	if !ok || got.Title != "First" {
		t.Fatalf("Get = %v,%v", got, ok)
	}
	// Returned work is a copy.
	got.Title = "mutated"
	if again, _ := s.Get(id); again.Title != "First" {
		t.Error("Get returned a shared pointer")
	}
	if err := s.Delete(id); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, ok := s.Get(id); ok {
		t.Error("deleted work still present")
	}
	if err := s.Delete(id); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
}

func TestPutValidates(t *testing.T) {
	s := openT(t, "")
	defer s.Close()
	if _, err := s.Put(&model.Work{Title: "no authors", Citation: model.Citation{Volume: 1, Page: 1, Year: 2000}}); err == nil {
		t.Error("invalid work accepted")
	}
}

func TestIDAssignment(t *testing.T) {
	s := openT(t, "")
	defer s.Close()
	a, _ := s.Put(work("A", 1, 1, 2000))
	w := work("B", 1, 2, 2000)
	w.ID = 50
	b, _ := s.Put(w)
	c, _ := s.Put(work("C", 1, 3, 2000))
	if a != 1 || b != 50 || c != 51 {
		t.Errorf("IDs = %d,%d,%d want 1,50,51", a, b, c)
	}
	// Overwrite via explicit ID.
	w2 := work("B-revised", 1, 2, 2001)
	w2.ID = 50
	if _, err := s.Put(w2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(50); got.Title != "B-revised" {
		t.Error("overwrite did not take")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestDurabilityAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	var ids []model.WorkID
	for i := 0; i < 20; i++ {
		id, err := s.Put(work(fmt.Sprintf("W%02d", i), 90, i+1, 1990, "Fam"))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	s.Delete(ids[3])
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 19 {
		t.Fatalf("recovered %d works, want 19", s2.Len())
	}
	if _, ok := s2.Get(ids[3]); ok {
		t.Error("deleted work resurrected")
	}
	if w, ok := s2.Get(ids[7]); !ok || w.Title != "W07" {
		t.Errorf("Get(%d) = %v,%v", ids[7], w, ok)
	}
	// Fresh IDs must not collide with recovered ones.
	nid, _ := s2.Put(work("new", 90, 99, 1990))
	if nid != 21 {
		t.Errorf("post-recovery ID = %d, want 21", nid)
	}
}

func TestCompactAndRecoverFromSnapshot(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 50; i++ {
		s.Put(work(fmt.Sprintf("W%02d", i), 90, i+1, 1990))
	}
	if err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	st := s.Stats()
	if st.SnapshotBytes == 0 {
		t.Error("no snapshot written")
	}
	if st.WALBytes != 0 {
		t.Errorf("WAL not reset: %d bytes", st.WALBytes)
	}
	// More writes after the snapshot land in the fresh WAL.
	s.Put(work("post-snap", 90, 99, 1990))
	s.Close()

	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 51 {
		t.Fatalf("recovered %d works, want 51", s2.Len())
	}
}

func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{WAL: wal.Options{NoSync: true}, CompactEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		s.Put(work(fmt.Sprintf("W%02d", i), 90, i+1, 1990))
	}
	st := s.Stats()
	if st.SnapshotBytes == 0 {
		t.Error("auto-compact never fired")
	}
	s.Close()
	s2 := openT(t, dir)
	defer s2.Close()
	if s2.Len() != 25 {
		t.Errorf("recovered %d, want 25", s2.Len())
	}
}

func TestCrashSimulationTornWAL(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 10; i++ {
		s.Put(work(fmt.Sprintf("W%02d", i), 90, i+1, 1990))
	}
	s.Close()
	// Tear bytes off the WAL tail: the last put may vanish, nothing else.
	walDir := filepath.Join(dir, walSubdir)
	entries, err := os.ReadDir(walDir)
	if err != nil {
		t.Fatal(err)
	}
	last := entries[len(entries)-1]
	p := filepath.Join(walDir, last.Name())
	fi, _ := os.Stat(p)
	if err := os.Truncate(p, fi.Size()-5); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir)
	defer s2.Close()
	if got := s2.Len(); got != 9 {
		t.Errorf("after torn WAL: %d works, want 9", got)
	}
	for i := 0; i < 9; i++ {
		if _, ok := s2.Get(model.WorkID(i + 1)); !ok {
			t.Errorf("work %d lost", i+1)
		}
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	for i := 0; i < 5; i++ {
		s.Put(work(fmt.Sprintf("W%d", i), 90, i+1, 1990))
	}
	s.Compact()
	s.Close()
	path := filepath.Join(dir, snapshotFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0xff
	os.WriteFile(path, data, 0o644)
	if _, err := Open(dir, Options{WAL: wal.Options{NoSync: true}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("corrupt snapshot: Open returned %v, want ErrCorrupt", err)
	}
}

func TestForEach(t *testing.T) {
	s := openT(t, "")
	defer s.Close()
	for i := 0; i < 10; i++ {
		s.Put(work(fmt.Sprintf("W%d", i), 90, i+1, 1990))
	}
	seen := map[string]bool{}
	err := s.ForEach(func(w *model.Work) error {
		seen[w.Title] = true
		return nil
	})
	if err != nil || len(seen) != 10 {
		t.Errorf("ForEach: err=%v seen=%d", err, len(seen))
	}
	boom := errors.New("boom")
	n := 0
	err = s.ForEach(func(w *model.Work) error {
		n++
		return boom
	})
	if !errors.Is(err, boom) || n != 1 {
		t.Errorf("ForEach error propagation: err=%v n=%d", err, n)
	}
}

func TestClosedOperations(t *testing.T) {
	s := openT(t, t.TempDir())
	s.Close()
	if _, err := s.Put(work("x", 1, 1, 2000)); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close: %v", err)
	}
	if err := s.Delete(1); !errors.Is(err, ErrClosed) {
		t.Errorf("Delete after close: %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Errorf("Compact after close: %v", err)
	}
	if err := s.Close(); !errors.Is(err, ErrClosed) {
		t.Errorf("double close: %v", err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	s := openT(t, t.TempDir())
	defer s.Close()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 200; i++ {
				switch r.Intn(3) {
				case 0:
					s.Put(work(fmt.Sprintf("g%d-%d", g, i), 90, 1+r.Intn(1000), 1990))
				case 1:
					s.Get(model.WorkID(1 + r.Intn(100)))
				case 2:
					s.Len()
				}
			}
		}(g)
	}
	wg.Wait()
}

// Model check: random Put/Delete mirrored against a map, with periodic
// compaction and reopen, must always recover the exact model state.
func TestRecoveryModelCheck(t *testing.T) {
	dir := t.TempDir()
	mdl := map[model.WorkID]string{}
	r := rand.New(rand.NewSource(99))
	s := openT(t, dir)
	for round := 0; round < 5; round++ {
		for op := 0; op < 100; op++ {
			switch r.Intn(4) {
			case 0, 1: // put
				title := fmt.Sprintf("t-%d-%d", round, op)
				id, err := s.Put(work(title, 90, 1+r.Intn(1000), 1990))
				if err != nil {
					t.Fatal(err)
				}
				mdl[id] = title
			case 2: // delete random known id
				for id := range mdl {
					if err := s.Delete(id); err != nil {
						t.Fatal(err)
					}
					delete(mdl, id)
					break
				}
			case 3: // compact occasionally
				if op%37 == 0 {
					if err := s.Compact(); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		s.Close()
		s = openT(t, dir)
		if s.Len() != len(mdl) {
			t.Fatalf("round %d: recovered %d works, model has %d", round, s.Len(), len(mdl))
		}
		for id, title := range mdl {
			w, ok := s.Get(id)
			if !ok || w.Title != title {
				t.Fatalf("round %d: id %d = %v,%v want %q", round, id, w, ok, title)
			}
		}
	}
	s.Close()
}

func TestUnknownWALOpIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	s.Put(work("x", 1, 1, 2000))
	s.Close()
	// Append a record with an op tag the store does not know.
	l, err := wal.Open(filepath.Join(dir, walSubdir), wal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte{99, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if _, err := Open(dir, Options{WAL: wal.Options{NoSync: true}}); !errors.Is(err, ErrCorrupt) {
		t.Errorf("unknown op: Open returned %v, want ErrCorrupt", err)
	}
}

func TestCrossRefDurability(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir)
	ref := CrossRef{
		From: model.Author{Family: "Mountney", Given: "Marion"},
		To:   model.Author{Family: "Crain-Mountney", Given: "Marion"},
	}
	other := CrossRef{
		From: model.Author{Family: "A"},
		To:   model.Author{Family: "B"},
	}
	if err := s.AddCrossRef(ref); err != nil {
		t.Fatalf("AddCrossRef: %v", err)
	}
	if err := s.AddCrossRef(ref); err != nil {
		t.Fatalf("duplicate AddCrossRef: %v", err)
	}
	if err := s.AddCrossRef(other); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteCrossRef(other); err != nil {
		t.Fatalf("DeleteCrossRef: %v", err)
	}
	if err := s.DeleteCrossRef(other); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete: %v", err)
	}
	// Survive WAL replay.
	s.Close()
	s = openT(t, dir)
	if got := s.CrossRefs(); len(got) != 1 || got[0] != ref {
		t.Fatalf("after replay: %+v", got)
	}
	// Survive snapshot + replay.
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = openT(t, dir)
	defer s.Close()
	if got := s.CrossRefs(); len(got) != 1 || got[0] != ref {
		t.Fatalf("after snapshot: %+v", got)
	}
	// Validation.
	if err := s.AddCrossRef(CrossRef{}); err == nil {
		t.Error("empty cross-ref accepted")
	}
}

func TestStats(t *testing.T) {
	s := openT(t, "")
	st := s.Stats()
	if !st.InMemory || st.Works != 0 {
		t.Errorf("in-memory stats = %+v", st)
	}
	s.Close()

	dir := t.TempDir()
	s2 := openT(t, dir)
	defer s2.Close()
	s2.Put(work("x", 1, 1, 2000))
	st = s2.Stats()
	if st.InMemory || st.WALBytes == 0 || st.Works != 1 || st.NextID != 2 {
		t.Errorf("durable stats = %+v", st)
	}
}
